(* scopeopt: command-line driver for the CSE-aware SCOPE-like optimizer.

   Subcommands:
     parse       - parse a script and print its AST
     explain     - print the logical DAG and the memo with shared groups
     optimize    - run both optimizers and print plans, costs and statistics
     run         - optimize, execute on the simulated cluster, show outputs
     serve       - long-running engine over a stream of script submissions,
                   with a fingerprint-keyed plan cache and cross-script CSE
     report      - optimize + execute, emit a machine-readable run report
     check-trace - validate a Chrome trace file written by --trace
     lint        - optimize, then run the full static-analysis audit
     workload    - print a built-in workload script (S1-S4, LS1, LS2)

   Scripts are read from a file argument or from one of the built-in
   workloads via --builtin.  [optimize] and [run] accept --audit to run
   the same audit as [lint] after printing their reports, and --trace to
   record the whole pipeline as Chrome trace-event JSON (Perfetto). *)

open Cmdliner

let read_script file builtin =
  match (file, builtin) with
  | Some f, None ->
      let ic = open_in f in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
  | None, Some name -> (
      match
        List.assoc_opt (String.uppercase_ascii name)
          (Sworkload.Paper_scripts.all
          @ [
              ("LS1", Sworkload.Large_gen.ls1 ());
              ("LS2", Sworkload.Large_gen.ls2 ());
              ("IND", Sworkload.Paper_scripts.independent_pair);
            ])
      with
      | Some s -> Ok s
      | None -> Error (`Msg (Printf.sprintf "unknown builtin workload %S" name)))
  | Some _, Some _ -> Error (`Msg "give either a file or --builtin, not both")
  | None, None -> Error (`Msg "give a script file or --builtin NAME")

let make_catalog script =
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files catalog script;
  catalog

(* Write [contents] to [path], closing the descriptor on every path and
   removing the partial file when the write fails, so an ENOSPC or
   permission error cannot leave a truncated artifact behind. *)
let write_file path contents =
  let oc = open_out path in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !ok then try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      output_string oc contents;
      flush oc;
      ok := true)

(* --- common arguments -------------------------------------------------- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "builtin"; "b" ] ~docv:"NAME"
        ~doc:"Built-in workload: S1, S2, S3, S4, IND, LS1 or LS2.")

let machines_arg =
  Arg.(
    value & opt int 25
    & info [ "machines"; "m" ] ~docv:"N" ~doc:"Simulated cluster size.")

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget" ] ~docv:"SECONDS" ~doc:"Optimization time budget.")

let no_ext_arg =
  Arg.(
    value & flag
    & info [ "no-extensions" ]
        ~doc:"Disable the Section VIII large-script extensions.")

let no_prune_arg =
  Arg.(
    value & flag
    & info [ "no-prune" ]
        ~doc:
          "Disable the phase-2 round-pruning layers (dominance filtering, \
           branch-and-bound round aborts, cross-round winner reuse) and \
           enumerate every round exhaustively.  The chosen plan is \
           identical either way; this is the ablation baseline the \
           equivalence tests and CI drift gate compare against.")

(* Base optimizer configuration from the shared CLI flags. *)
let base_config ~no_ext ~no_prune =
  let c = if no_ext then Cse.Config.no_extensions else Cse.Config.default in
  if no_prune then Cse.Config.no_pruning c else c

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"PREFIX"
        ~doc:
          "Write Graphviz renderings of both plans to \
           $(docv)-conventional.dot and $(docv)-cse.dot.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ]
        ~doc:"Log re-optimization rounds and phase summaries to stderr.")

let inject_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "inject-faults" ] ~docv:"SEED"
        ~doc:
          "With $(b,run): execute a second time under deterministic fault \
           injection seeded with $(docv), recover by recomputing lost \
           stages, and require the outputs to be byte-identical to the \
           fault-free run.")

let rate_arg =
  Arg.(
    value & opt float 0.15
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Per-stage-completion fault probability for --inject-faults, in \
           [0, 1).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers"; "j" ] ~docv:"N"
        ~doc:
          "Executor domain-pool width for $(b,run): independent stages and \
           per-machine vertex loops execute on $(docv) OCaml domains.  \
           Outputs and fault/retry counters are identical for every value; \
           only wall time changes.")

let batch_size_arg =
  Arg.(
    value
    & opt int Sexec.Engine.default_batch_size
    & info [ "batch-size" ] ~docv:"N"
        ~doc:
          "Columnar batch granularity of the executor: stage outputs are \
           chunked into batches of at most $(docv) rows.  Outputs and \
           fault/retry counters are identical for every value; only wall \
           time and the batch counters change.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the whole pipeline (optimization phases, stage-graph \
           construction, per-stage execution spans across worker domains) \
           as Chrome trace-event JSON into $(docv); load it at \
           ui.perfetto.dev.  Executed stages are cross-checked against \
           the trace (SA045).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile-kernels" ]
        ~doc:
          "Record per-kernel batch-processing time histograms \
           (exec.kernel_seconds, labeled by kernel and stage) during \
           execution.  Off by default: the disabled path is a single \
           atomic load per kernel invocation and outputs are \
           byte-identical either way.")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "After optimizing, run the full static-analysis audit — the \
           per-layer passes (memo, sharing, logical-DAG, plan-DAG, stage \
           graph) plus the deep cross-layer SA05x passes (semantic \
           equivalence, column lineage, stage interference) — and fail on \
           any error-severity diagnostic.")

(* Run every analyzer pass over a finished pipeline report; returns the
   exit code from the diagnostic severity mapping. *)
let run_audit ~deep ~strict ~cluster ~catalog r =
  let diags = Sanalysis.Audit.report ~deep ~cluster ~catalog r in
  if diags = [] then Fmt.pr "audit clean: no diagnostics@."
  else Fmt.pr "%a" Sanalysis.Diag.pp_report diags;
  Fmt.pr "%a" Sanalysis.Diag.pp_summary diags;
  let fail_on =
    if strict then Sanalysis.Diag.Warning else Sanalysis.Diag.Error
  in
  Sanalysis.Diag.exit_code ~fail_on diags

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* Map the frontend's exceptions to cmdliner error messages so a bad
   script exits with a one-line diagnostic instead of a backtrace. *)
let guard f script =
  match f script with
  | r -> r
  | exception Slang.Parser.Error (msg, _) -> Error (`Msg msg)
  | exception Slang.Lexer.Error (msg, _) -> Error (`Msg msg)
  | exception Slogical.Binder.Error msg -> Error (`Msg msg)
  | exception Cse.Pipeline.No_plan msg -> Error (`Msg msg)

let with_script f =
  Term.(
    const (fun file builtin -> Result.bind (read_script file builtin) (guard f))
    $ file_arg $ builtin_arg)

(* --- parse ------------------------------------------------------------- *)

let parse_cmd =
  let run file builtin =
    Result.bind (read_script file builtin) (fun script ->
        match Slang.Parser.parse_script script with
        | ast ->
            Fmt.pr "%a@." Slang.Ast.pp ast;
            Ok ()
        | exception Slang.Parser.Error (msg, _) -> Error (`Msg msg)
        | exception Slang.Lexer.Error (msg, _) -> Error (`Msg msg))
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a script and print the AST")
    Term.(term_result (const run $ file_arg $ builtin_arg))

(* --- explain ----------------------------------------------------------- *)

let explain_cmd =
  let f script =
    let catalog = make_catalog script in
    let ast = Slang.Parser.parse_script script in
    let dag = Slogical.Binder.bind ~catalog ast in
    Fmt.pr "=== logical operator DAG (%d operators) ===@.%a@."
      (Slogical.Dag.size dag) Slogical.Dag.pp dag;
    let memo = Smemo.Memo.of_dag ~catalog ~machines:25 dag in
    let shared = Cse.Spool.identify memo in
    Fmt.pr "=== memo after Algorithm 1 ===@.%a@." Smemo.Memo.pp memo;
    Fmt.pr "shared groups:@.";
    List.iter
      (fun (s : Cse.Spool.shared) ->
        Fmt.pr "  spool %d over group %d, %d consumers@." s.Cse.Spool.spool
          s.Cse.Spool.under s.Cse.Spool.initial_consumers)
      shared;
    Ok ()
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Print the logical DAG and the memo")
    Term.(term_result (with_script f))

(* --- optimize ---------------------------------------------------------- *)

let exec_counters (c : Sexec.Engine.counters) =
  [
    ("exec.stages_run", c.Sexec.Engine.stages_run);
    ("exec.vertices_run", c.Sexec.Engine.vertices_run);
    ("exec.batches", c.Sexec.Engine.batches);
    ("exec.retries", c.Sexec.Engine.retries);
    ("exec.recomputed_rows", c.Sexec.Engine.recomputed_rows);
    ("exec.partitions_lost", c.Sexec.Engine.partitions_lost);
    ("exec.machines_failed", c.Sexec.Engine.machines_failed);
  ]

let exec_summary workers (v : Sexec.Validate.outcome) =
  {
    Cse.Pipeline.workers;
    batch_size = v.Sexec.Validate.batch_size;
    batches = v.Sexec.Validate.counters.Sexec.Engine.batches;
    wall_s = v.Sexec.Validate.wall;
    busy_s = v.Sexec.Validate.busy;
  }

(* Finish an in-progress trace: stop, merge, write the Chrome file, then
   hold it to the well-formedness checker and — when stages executed —
   the SA045 audit against the engine's per-run attempt counts. *)
let finish_trace ?(ppf = Fmt.stdout) ~attempts path =
  Sobs.Trace.stop ();
  let events = Sobs.Trace.collect () in
  match Sobs.Trace.export ~path events with
  | exception Sys_error msg -> Error (`Msg msg)
  | () ->
  Fmt.pf ppf "wrote %s (%d events%s)@." path (List.length events)
    (match Sobs.Trace.dropped () with
    | 0 -> ""
    | d -> Printf.sprintf ", %d dropped" d);
  match Sobs.Trace.check events with
  | _ :: _ as errs ->
      List.iter (fun e -> Fmt.epr "trace: %s@." e) errs;
      Error (`Msg "trace is not well-formed")
  | [] -> (
      let diags = Sanalysis.Trace_audit.run ~attempts events in
      if diags <> [] then Fmt.pf ppf "%a" Sanalysis.Diag.pp_report diags;
      (* propagate the worst severity to the process exit status instead
         of silently swallowing non-error findings *)
      match Sanalysis.Diag.worst diags with
      | Some Sanalysis.Diag.Error -> Error (`Msg "trace audit (SA045) failed")
      | Some _ | None -> Ok ())

let optimize run_exec =
  let f machines budget no_ext no_prune verbose audit dot inject rate workers
      batch_size trace profile script =
    setup_logs verbose;
    Sexec.Profile.set profile;
    if trace <> None then Sobs.Trace.start ();
    let attempts_acc = ref [] in
    let catalog = make_catalog script in
    let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
    let config = { (base_config ~no_ext ~no_prune) with Cse.Config.audit } in
    let budget = Option.map (fun s -> Sopt.Budget.create ~max_seconds:s ()) budget in
    let r = Cse.Pipeline.run ~config ?budget ~cluster ~catalog script in
    Fmt.pr "=== conventional plan (estimated cost %.5g; %.3f s) ===@.%a@."
      r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.conventional_time
      Sphys.Plan_pp.pp r.Cse.Pipeline.conventional_plan;
    Fmt.pr
      "=== CSE plan (estimated cost %.5g; %.3f s; %d rounds over %d shared \
       groups) ===@.%a@."
      r.Cse.Pipeline.cse_cost r.Cse.Pipeline.cse_time
      r.Cse.Pipeline.rounds_executed
      (List.length r.Cse.Pipeline.shared)
      Sphys.Plan_pp.pp r.Cse.Pipeline.cse_plan;
    Fmt.pr "cost ratio %.1f%% (a reduction of %.1f%%)@.@."
      (100.0 *. Cse.Pipeline.ratio r)
      (Cse.Pipeline.reduction_percent r);
    Fmt.pr "%a" Cse.Pipeline.pp_steps r;
    Option.iter
      (fun prefix ->
        let write suffix plan =
          let file = prefix ^ "-" ^ suffix ^ ".dot" in
          write_file file (Sphys.Plan_pp.to_dot ~name:suffix plan);
          Fmt.pr "wrote %s@." file
        in
        write "conventional" r.Cse.Pipeline.conventional_plan;
        write "cse" r.Cse.Pipeline.cse_plan)
      dot;
    let exec_result =
      if not run_exec then Ok ()
      else begin
        let v =
          Sexec.Validate.check ~verify_props:true ~workers ~batch_size
            ~machines catalog r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
        in
        attempts_acc := !attempts_acc @ [ v.Sexec.Validate.attempts ];
        r.Cse.Pipeline.exec <- Some (exec_summary workers v);
        Fmt.pr
          "execution: results %s; %d rows shuffled, %d rows extracted, shared \
           results materialized %d time(s), read %d time(s)@."
          (if v.Sexec.Validate.ok then
             "match the reference (delivered properties verified)"
           else "MISMATCH")
          v.Sexec.Validate.counters.Sexec.Engine.rows_shuffled
          v.Sexec.Validate.counters.Sexec.Engine.rows_extracted
          v.Sexec.Validate.counters.Sexec.Engine.spool_executions
          v.Sexec.Validate.counters.Sexec.Engine.spool_reads;
        Fmt.pr "staged: %d stage(s), %d vertex executions@."
          v.Sexec.Validate.counters.Sexec.Engine.stages_run
          v.Sexec.Validate.counters.Sexec.Engine.vertices_run;
        Fmt.pr "%a" Cse.Pipeline.pp_exec (exec_summary workers v);
        List.iter (fun m -> Fmt.pr "  %s@." m) v.Sexec.Validate.mismatches;
        let injected =
          match inject with
          | None -> Ok ()
          | Some seed -> (
              match Sexec.Faults.spec ~rate seed with
              | exception Invalid_argument msg -> Error (`Msg msg)
              | faults ->
                  let vf =
                    Sexec.Validate.check ~verify_props:true ~faults ~workers
                      ~batch_size ~machines catalog r.Cse.Pipeline.dag
                      r.Cse.Pipeline.cse_plan
                  in
                  attempts_acc := !attempts_acc @ [ vf.Sexec.Validate.attempts ];
                  let identical =
                    Sexec.Validate.identical_outputs v.Sexec.Validate.outputs
                      vf.Sexec.Validate.outputs
                  in
                  Fmt.pr
                    "fault injection (seed %d, rate %.2f): outputs %s the \
                     fault-free run%s@."
                    seed rate
                    (if identical then "byte-identical to" else "DIVERGE from")
                    (if vf.Sexec.Validate.ok then ""
                     else "; reference MISMATCH");
                  Fmt.pr "%a" Cse.Pipeline.pp_counters
                    (exec_counters vf.Sexec.Validate.counters);
                  Fmt.pr "stage attempts: %s@."
                    (String.concat ","
                       (Array.to_list
                          (Array.map string_of_int vf.Sexec.Validate.attempts)));
                  List.iter (fun m -> Fmt.pr "  %s@." m)
                    vf.Sexec.Validate.mismatches;
                  if vf.Sexec.Validate.ok && identical then Ok ()
                  else Error (`Msg "fault-injected execution diverged"))
        in
        if profile then
          Fmt.pr "%s" (Sobs.Metrics.to_prom (Sexec.Profile.snapshot ()));
        if not v.Sexec.Validate.ok then Error (`Msg "execution mismatch")
        else injected
      end
    in
    let trace_result =
      match trace with
      | None -> Ok ()
      | Some path -> finish_trace ~attempts:!attempts_acc path
    in
    match exec_result with
    | Error _ as e -> e
    | Ok () -> (
        match trace_result with
        | Error _ as e -> e
        | Ok () ->
            if config.Cse.Config.audit then begin
              let code = run_audit ~deep:true ~strict:false ~cluster ~catalog r in
              if code <> 0 then Error (`Msg "audit found errors") else Ok ()
            end
            else Ok ())
  in
  Term.(
    term_result
      (const (fun m b e np v a d i p w bs t pk file builtin ->
           Result.bind (read_script file builtin)
             (guard (f m b e np v a d i p w bs t pk)))
      $ machines_arg $ budget_arg $ no_ext_arg $ no_prune_arg $ verbose_arg
      $ audit_arg $ dot_arg $ inject_arg $ rate_arg $ workers_arg
      $ batch_size_arg $ trace_arg $ profile_arg $ file_arg $ builtin_arg))

let optimize_cmd =
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Optimize a script with and without the CSE framework")
    (optimize false)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Optimize and execute on the simulated cluster, validating results")
    (optimize true)

(* --- serve -------------------------------------------------------------- *)

(* The long-running multi-script engine: read a session stream (file,
   stdin, or the built-in generator), submit scripts to Sserve.Engine,
   flush batches, and report plan-cache and cross-script sharing
   figures.  With --trace PREFIX each batch gets its own trace epoch and
   file (PREFIX-batchN.json), checked and SA045-audited against that
   batch's stage attempts; with --audit every distinct optimization
   behind a batch — cached plans included — goes through the deep strict
   static-analysis audit. *)
let serve_cmd =
  let gen_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen" ] ~docv:"N"
          ~doc:
            "Generate a session stream of $(docv) scripts with the built-in \
             generator instead of reading one (duplicates, alias-renamed \
             variants, batched shared-scan pairs, one catalog bump).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed for --gen.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one run report as JSON (schema scopecse-run-report/5, \
             with the serve and metrics sections) on stdout; the \
             per-batch narration moves to stderr.")
  in
  let trace_prefix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:
            "Record each batch in its own trace epoch and write \
             $(docv)-batchN.json per batch, checked for well-formedness \
             and cross-checked against that batch's stage attempts \
             (SA045).")
  in
  let stats_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-file" ] ~docv:"PATH"
          ~doc:
            "Rewrite $(docv) with a JSON metrics snapshot (the engine's \
             registry plus any kernel profile) after every \
             --stats-interval batches and at exit — live stats exposition \
             for a watching scraper.")
  in
  let stats_interval_arg =
    Arg.(
      value & opt int 1
      & info [ "stats-interval" ] ~docv:"N"
          ~doc:"Batches between --stats-file rewrites (default every batch.)")
  in
  let serve_inject_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-faults" ] ~docv:"SEED"
          ~doc:
            "Execute every batch under deterministic fault injection \
             seeded with $(docv) (rate from --fault-rate).  Lost \
             partitions are recovered by recomputing stages; when a \
             stage exhausts its attempt budget the flight recorder is \
             dumped and serve exits non-zero.")
  in
  let f machines workers batch_size no_ext no_prune verbose audit json trace
      budget gen seed stats_file stats_interval profile inject rate file =
    setup_logs verbose;
    Sexec.Profile.set profile;
    let out = if json then Fmt.epr else Fmt.pr in
    let catalog = Relalg.Catalog.default () in
    Sworkload.Session_gen.register catalog;
    let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
    let config = base_config ~no_ext ~no_prune in
    let faults =
      match inject with
      | None -> Ok None
      | Some seed -> (
          match Sexec.Faults.spec ~rate seed with
          | exception Invalid_argument msg -> Error (`Msg msg)
          | spec -> Ok (Some spec))
    in
    Result.bind faults @@ fun faults ->
    let engine =
      Sserve.Engine.create ~config ?max_seconds:budget ~cluster ~workers
        ~batch_size ?faults catalog
    in
    (* The flight recorder rides in the trace ring whenever no explicit
       --trace session owns the tracer. *)
    if trace = None then Sobs.Flight.enable ();
    let stats_rows () =
      Sobs.Metrics.snapshot (Sserve.Engine.metrics engine)
      @ Sexec.Profile.snapshot ()
    in
    let stats_json () =
      Sobs.Json.to_string (Sobs.Metrics.to_json (stats_rows ()))
    in
    let write_stats () =
      Option.iter (fun path -> write_file path (stats_json ())) stats_file
    in
    let flight_dump reason =
      match Sobs.Flight.dump ~metrics:(stats_json ()) ~prefix:"scopeopt-serve" () with
      | paths ->
          out "flight recorder dumped (%s): %s@." reason
            (String.concat ", " paths)
      | exception Sys_error msg -> out "flight dump failed: %s@." msg
    in
    let next =
      match (gen, file) with
      | Some _, Some _ -> Error (`Msg "give either a stream file or --gen, not both")
      | Some n, None ->
          let items =
            ref
              (Sserve.Session.items_of_string
                 (Sworkload.Session_gen.generate ~seed ~scripts:n ()))
          in
          Ok
            (fun () ->
              match !items with
              | [] -> None
              | it :: rest ->
                  items := rest;
                  Some it)
      | None, Some f ->
          let ic = open_in f in
          at_exit (fun () -> close_in_noerr ic);
          Ok (fun () -> Sserve.Session.read ic)
      | None, None -> Ok (fun () -> Sserve.Session.read stdin)
    in
    Result.bind next (fun next ->
        let failed = ref 0 and audit_failed = ref 0 and trace_failed = ref 0 in
        let batch_json = ref [] in
        let batches_done = ref 0 in
        let tenant = ref None in
        let flush () =
          match Sserve.Engine.flush engine with
          | None -> ()
          | Some b ->
              List.iter
                (fun (r : Sserve.Engine.session_result) ->
                  match r.Sserve.Engine.status with
                  | Sserve.Engine.Failed msg ->
                      incr failed;
                      out "batch %d: %s FAILED: %s@." b.Sserve.Engine.seq
                        r.Sserve.Engine.id msg
                  | Sserve.Engine.Done { cache_hit; combined } ->
                      out
                        "batch %d: %s %s%s cse cost %.5g (conventional \
                         %.5g), %d output(s), %d row(s)@."
                        b.Sserve.Engine.seq r.Sserve.Engine.id
                        (if cache_hit then "cache hit" else "cache miss")
                        (if combined then ", combined run" else "")
                        r.Sserve.Engine.cse_cost
                        r.Sserve.Engine.conventional_cost
                        (List.length r.Sserve.Engine.outputs)
                        r.Sserve.Engine.rows)
                b.Sserve.Engine.results;
              if b.Sserve.Engine.combined then
                out
                  "batch %d: combined cost %.5g vs solo sum %.5g; %d \
                   cross-script share(s)@."
                  b.Sserve.Engine.seq
                  (Option.value ~default:0.0 b.Sserve.Engine.combined_cost)
                  (Option.value ~default:0.0 b.Sserve.Engine.solo_cost_sum)
                  b.Sserve.Engine.cross_script_shares;
              (match trace with
              | None -> ()
              | Some prefix -> (
                  let path =
                    Printf.sprintf "%s-batch%d.json" prefix b.Sserve.Engine.seq
                  in
                  match
                    finish_trace
                      ~ppf:(if json then Fmt.stderr else Fmt.stdout)
                      ~attempts:b.Sserve.Engine.attempts path
                  with
                  | Ok () -> ()
                  | Error (`Msg msg) ->
                      incr trace_failed;
                      out "batch %d: trace: %s@." b.Sserve.Engine.seq msg));
              if audit then
                List.iter
                  (fun r ->
                    (* like run_audit ~deep ~strict, but narrating through
                       [out] so --json keeps stdout pure JSON *)
                    let diags =
                      Sanalysis.Audit.report ~deep:true ~cluster ~catalog r
                    in
                    if diags <> [] then
                      out "%a%a" Sanalysis.Diag.pp_report diags
                        Sanalysis.Diag.pp_summary diags;
                    if
                      Sanalysis.Diag.exit_code
                        ~fail_on:Sanalysis.Diag.Warning diags
                      <> 0
                    then incr audit_failed)
                  b.Sserve.Engine.reports;
              (if json then
                let num f = Sobs.Json.Num f in
                let int i = num (float_of_int i) in
                let opt = function None -> Sobs.Json.Null | Some c -> num c in
                batch_json :=
                  Sobs.Json.Obj
                    [
                      ("seq", int b.Sserve.Engine.seq);
                      ("combined", Sobs.Json.Bool b.Sserve.Engine.combined);
                      ("combined_cost", opt b.Sserve.Engine.combined_cost);
                      ("solo_cost_sum", opt b.Sserve.Engine.solo_cost_sum);
                      ( "cross_script_shares",
                        int b.Sserve.Engine.cross_script_shares );
                      ("wall_s", num b.Sserve.Engine.wall_s);
                      ( "sessions",
                        Sobs.Json.Arr
                          (List.map
                             (fun (r : Sserve.Engine.session_result) ->
                               Sobs.Json.Obj
                                 (( "id",
                                    Sobs.Json.Str r.Sserve.Engine.id )
                                 :: (match r.Sserve.Engine.fingerprint with
                                    | None -> []
                                    | Some fp ->
                                        (* fingerprints exceed double
                                           precision: keep them exact *)
                                        [
                                          ( "fingerprint",
                                            Sobs.Json.Str (string_of_int fp)
                                          );
                                        ])
                                 @
                                 match r.Sserve.Engine.status with
                                 | Sserve.Engine.Failed msg ->
                                     [
                                       ("status", Sobs.Json.Str "failed");
                                       ("error", Sobs.Json.Str msg);
                                     ]
                                 | Sserve.Engine.Done { cache_hit; combined }
                                   ->
                                     [
                                       ("status", Sobs.Json.Str "done");
                                       ( "cache_hit",
                                         Sobs.Json.Bool cache_hit );
                                       ("combined", Sobs.Json.Bool combined);
                                       ( "conventional_cost",
                                         num
                                           r.Sserve.Engine.conventional_cost
                                       );
                                       ("cse_cost", num r.Sserve.Engine.cse_cost);
                                       ( "outputs",
                                         int
                                           (List.length
                                              r.Sserve.Engine.outputs) );
                                       ("rows", int r.Sserve.Engine.rows);
                                     ]))
                             b.Sserve.Engine.results) );
                    ]
                  :: !batch_json);
              incr batches_done;
              if !batches_done mod max 1 stats_interval = 0 then write_stats ()
        in
        let rec loop () =
          match next () with
          | None -> flush ()
          | Some (Sserve.Session.Script { id; text }) ->
              if trace <> None && Sserve.Engine.pending_count engine = 0 then
                Sobs.Trace.start ();
              Sserve.Engine.submit ?tenant:!tenant engine ~id ~text;
              loop ()
          | Some Sserve.Session.Flush ->
              flush ();
              loop ()
          | Some (Sserve.Session.Tenant name) ->
              tenant := Some name;
              loop ()
          | Some Sserve.Session.Stats ->
              out "%s@?" (Sobs.Metrics.to_prom (stats_rows ()));
              loop ()
          | Some Sserve.Session.Dump ->
              flight_dump "#dump";
              loop ()
          | Some Sserve.Session.Catalog_bump ->
              flush ();
              let purged = Sserve.Engine.catalog_bump engine in
              out "catalog bump: statistics epoch %d, %d cache entr%s purged@."
                (Relalg.Catalog.version catalog)
                purged
                (if purged = 1 then "y" else "ies");
              loop ()
          | Some Sserve.Session.Quit -> flush ()
        in
        match loop () with
        | exception Sserve.Session.Protocol_error msg ->
            write_stats ();
            Error (`Msg msg)
        | exception Sexec.Scheduler.Recovery_exhausted { stage; attempts } ->
            (* a stage burned its whole attempt budget: dump the recent-
               span window and the metrics so the post-mortem needs no
               rerun, then fail loudly *)
            flight_dump "recovery exhaustion";
            write_stats ();
            Error
              (`Msg
                (Printf.sprintf
                   "stage %d exhausted its recovery budget after %d \
                    attempt(s); flight recorder dumped"
                   stage attempts))
        | () ->
            write_stats ();
            let t = Sserve.Engine.totals engine in
            out
              "serve: sessions=%d batches=%d cache_hits=%d cache_misses=%d \
               cache_invalidations=%d cache_size=%d combined_runs=%d \
               cross_script_shares=%d@."
              t.Sserve.Engine.sessions t.Sserve.Engine.batches
              t.Sserve.Engine.cache_hits t.Sserve.Engine.cache_misses
              t.Sserve.Engine.cache_invalidations t.Sserve.Engine.cache_size
              t.Sserve.Engine.combined_runs
              t.Sserve.Engine.cross_script_shares;
            if json then begin
              let int i = Sobs.Json.Num (float_of_int i) in
              print_string
                (Sobs.Json.to_string
                   (Sobs.Json.Obj
                      [
                        ( "schema",
                          Sobs.Json.Str "scopecse-run-report/5" );
                        ("machines", int machines);
                        ( "serve",
                          Sobs.Json.Obj
                            [
                              ("sessions", int t.Sserve.Engine.sessions);
                              ("batches", int t.Sserve.Engine.batches);
                              ("cache_hits", int t.Sserve.Engine.cache_hits);
                              ( "cache_misses",
                                int t.Sserve.Engine.cache_misses );
                              ( "cache_invalidations",
                                int t.Sserve.Engine.cache_invalidations );
                              ("cache_size", int t.Sserve.Engine.cache_size);
                              ( "combined_runs",
                                int t.Sserve.Engine.combined_runs );
                              ( "cross_script_shares",
                                int t.Sserve.Engine.cross_script_shares );
                              ( "batches_detail",
                                Sobs.Json.Arr (List.rev !batch_json) );
                            ] );
                        ( "metrics",
                          Sobs.Metrics.to_json (stats_rows ()) );
                      ]))
            end;
            (* hold the engine's own registry to its accounting story
               (SA046); an inconsistent snapshot is a serve failure, with
               the flight window dumped for the post-mortem *)
            let sa46 =
              Sanalysis.Serve_audit.run
                ~cache_entries:
                  (Sserve.Plan_cache.size (Sserve.Engine.cache engine))
                (Sobs.Metrics.snapshot (Sserve.Engine.metrics engine))
            in
            if sa46 <> [] then begin
              out "%a" Sanalysis.Diag.pp_report sa46;
              flight_dump "SA046 metrics audit failure"
            end;
            if !failed > 0 then
              Error (`Msg (Printf.sprintf "%d session(s) failed" !failed))
            else if sa46 <> [] then
              Error (`Msg "serve metrics audit (SA046) failed")
            else if !audit_failed > 0 then
              Error
                (`Msg (Printf.sprintf "%d audit failure(s)" !audit_failed))
            else if !trace_failed > 0 then
              Error
                (`Msg (Printf.sprintf "%d trace failure(s)" !trace_failed))
            else Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-running multi-script engine over a session stream \
          (file, stdin, or --gen): scripts are normalized and served from a \
          fingerprint-keyed plan cache (hits skip bind/optimize entirely; a \
          catalog bump invalidates), and concurrently-batched fresh scripts \
          are optimized as one combined memo so common subexpressions \
          across scripts share scans and spools in a single executor run")
    Term.(
      term_result
        (const f $ machines_arg $ workers_arg $ batch_size_arg $ no_ext_arg
       $ no_prune_arg $ verbose_arg $ audit_arg $ json_arg $ trace_prefix_arg
       $ budget_arg $ gen_arg $ seed_arg $ stats_file_arg
       $ stats_interval_arg $ profile_arg $ serve_inject_arg $ rate_arg
       $ file_arg))

(* --- report ------------------------------------------------------------ *)

let json_of_hist (s : Sobs.Hist.summary) =
  Sobs.Json.Obj
    [
      ("count", Sobs.Json.Num (float_of_int s.Sobs.Hist.count));
      ("sum", Sobs.Json.Num s.Sobs.Hist.sum);
      ("p50", Sobs.Json.Num s.Sobs.Hist.p50);
      ("p90", Sobs.Json.Num s.Sobs.Hist.p90);
      ("min", Sobs.Json.Num s.Sobs.Hist.min);
      ("max", Sobs.Json.Num s.Sobs.Hist.max);
      ( "buckets",
        Sobs.Json.Arr
          (List.map
             (fun (ub, c) ->
               Sobs.Json.Arr
                 [ Sobs.Json.Num ub; Sobs.Json.Num (float_of_int c) ])
             s.Sobs.Hist.buckets) );
    ]

(* The machine-readable run report.  Schema "scopecse-run-report/5":
   optimization costs and task counts from the pipeline report — since /2
   including the round-pruning tallies (rounds_pruned,
   rounds_aborted_bound, phase2_winner_reuse_hits) — the execution
   outcome (wall, per-worker busy, utilization, per-stage timeline with
   wave depths), full counter deltas and histogram summaries.  /3 adds
   the optional "serve" section emitted by the serve subcommand (plan
   cache and cross-script sharing figures); single-script reports omit
   it.  /4 adds the vectorized executor's batch figures to "execution"
   (batch_size, batches; the rows-per-batch histogram rides along in
   "histograms" as exec.batch_rows).  /5 adds "min" to histogram
   summaries, the "kernel_profile" metrics rows (per-kernel
   batch-processing time histograms labeled by kernel and stage; empty
   unless --profile-kernels) and, on serve reports, the "metrics"
   section (the engine's structured registry snapshot).  Documented in
   README.md; new fields may be added, existing ones keep their
   meaning. *)
let json_report ~machines ~workers (r : Cse.Pipeline.report)
    (v : Sexec.Validate.outcome) ~counters =
  let num f = Sobs.Json.Num f in
  let int i = num (float_of_int i) in
  let graph = Sexec.Stage.build r.Cse.Pipeline.cse_plan in
  let depths = Sexec.Stage.depths graph in
  let stages =
    Sobs.Json.Arr
      (List.init (Array.length v.Sexec.Validate.attempts) (fun sid ->
           Sobs.Json.Obj
             [
               ("id", int sid);
               ("depth", int depths.(sid));
               ("attempts", int v.Sexec.Validate.attempts.(sid));
               ("seconds", num v.Sexec.Validate.seconds.(sid));
             ]))
  in
  let exec_sum = exec_summary workers v in
  Sobs.Json.Obj
    [
      ("schema", Sobs.Json.Str "scopecse-run-report/5");
      ("machines", int machines);
      ( "optimization",
        Sobs.Json.Obj
          [
            ("conventional_cost", num r.Cse.Pipeline.conventional_cost);
            ("cse_cost", num r.Cse.Pipeline.cse_cost);
            ("cost_ratio", num (Cse.Pipeline.ratio r));
            ("conventional_tasks", int r.Cse.Pipeline.conventional_tasks);
            ("cse_tasks", int r.Cse.Pipeline.cse_tasks);
            ("conventional_time_s", num r.Cse.Pipeline.conventional_time);
            ("cse_time_s", num r.Cse.Pipeline.cse_time);
            ("shared_groups", int (List.length r.Cse.Pipeline.shared));
            ("rounds_executed", int r.Cse.Pipeline.rounds_executed);
            ("rounds_naive", int r.Cse.Pipeline.rounds_naive);
            ("rounds_sequential", int r.Cse.Pipeline.rounds_sequential);
            ("rounds_pruned", int r.Cse.Pipeline.rounds_pruned);
            ( "rounds_aborted_bound",
              int r.Cse.Pipeline.rounds_aborted_bound );
            ( "phase2_winner_reuse_hits",
              int r.Cse.Pipeline.phase2_winner_reuse_hits );
            ( "budget_exhausted",
              Sobs.Json.Bool r.Cse.Pipeline.budget_exhausted );
            ( "lcas",
              Sobs.Json.Arr
                (List.map
                   (fun (s, l) ->
                     Sobs.Json.Obj [ ("shared", int s); ("lca", int l) ])
                   r.Cse.Pipeline.lcas) );
          ] );
      ( "execution",
        Sobs.Json.Obj
          [
            ("ok", Sobs.Json.Bool v.Sexec.Validate.ok);
            ("workers", int workers);
            ("batch_size", int v.Sexec.Validate.batch_size);
            ( "batches",
              int v.Sexec.Validate.counters.Sexec.Engine.batches );
            ("wall_s", num v.Sexec.Validate.wall);
            ( "busy_s",
              Sobs.Json.Arr
                (Array.to_list (Array.map num v.Sexec.Validate.busy)) );
            ("utilization", num (Cse.Pipeline.utilization exec_sum));
            ("stage_count", int (Array.length v.Sexec.Validate.attempts));
            ("stage_depth", int (1 + Array.fold_left max (-1) depths));
            ("stages", stages);
          ] );
      ( "counters",
        Sobs.Json.Obj (List.map (fun (n, c) -> (n, int c)) counters) );
      ( "histograms",
        Sobs.Json.Obj
          (List.map (fun (n, s) -> (n, json_of_hist s)) (Sobs.Hist.snapshot ()))
      );
      ("kernel_profile", Sobs.Metrics.to_json (Sexec.Profile.snapshot ()));
    ]

let report_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the run report as JSON (schema scopecse-run-report/5) \
             instead of the human-readable summary.")
  in
  let f machines budget no_ext no_prune verbose workers batch_size trace
      profile json script =
    setup_logs verbose;
    Sexec.Profile.set profile;
    if trace <> None then Sobs.Trace.start ();
    let counters_before = Sutil.Counters.baseline () in
    let catalog = make_catalog script in
    let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
    let config = base_config ~no_ext ~no_prune in
    let budget =
      Option.map (fun s -> Sopt.Budget.create ~max_seconds:s ()) budget
    in
    let r = Cse.Pipeline.run ~config ?budget ~cluster ~catalog script in
    let v =
      Sexec.Validate.check ~verify_props:true ~workers ~batch_size ~machines
        catalog r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
    in
    r.Cse.Pipeline.exec <- Some (exec_summary workers v);
    let counters = Sutil.Counters.deltas counters_before in
    let trace_result =
      match trace with
      | None -> Ok ()
      | Some path ->
          finish_trace ~attempts:[ v.Sexec.Validate.attempts ] path
    in
    if json then
      print_string
        (Sobs.Json.to_string (json_report ~machines ~workers r v ~counters))
    else begin
      Fmt.pr "%a" Cse.Pipeline.pp_steps r;
      Fmt.pr "%a" Cse.Pipeline.pp_exec (exec_summary workers v);
      Fmt.pr "%a" Cse.Pipeline.pp_counters counters;
      Fmt.pr "%a" Sobs.Hist.pp ();
      if profile then
        Fmt.pr "%s" (Sobs.Metrics.to_prom (Sexec.Profile.snapshot ()))
    end;
    if not v.Sexec.Validate.ok then Error (`Msg "execution mismatch")
    else trace_result
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Optimize and execute a script, then emit one run report: plan \
          costs, task counts, counter deltas, histograms, per-stage \
          timeline and worker utilization (--json for the machine-readable \
          form)")
    Term.(
      term_result
        (const (fun m b e np v w bs t pk j file builtin ->
             Result.bind (read_script file builtin)
               (guard (f m b e np v w bs t pk j)))
        $ machines_arg $ budget_arg $ no_ext_arg $ no_prune_arg $ verbose_arg
        $ workers_arg $ batch_size_arg $ trace_arg $ profile_arg $ json_arg
        $ file_arg $ builtin_arg))

(* --- check-trace -------------------------------------------------------- *)

let check_trace_cmd =
  let f file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Sobs.Trace.parse_doc s with
    | exception Sobs.Trace.Malformed msg -> Error (`Msg msg)
    | (ring, events) -> (
        match Sobs.Trace.check ~ring events with
        | [] ->
            let tids =
              List.sort_uniq compare
                (List.map (fun (e : Sobs.Trace.event) -> e.Sobs.Trace.tid)
                   events)
            in
            Fmt.pr "trace OK%s: %d events across %d worker(s)@."
              (if ring then
                 " (flight-recorder ring; dropped-oldest truncation \
                  tolerated)"
               else "")
              (List.length events) (List.length tids);
            Ok ()
        | errs ->
            List.iter (fun e -> Fmt.pr "%s@." e) errs;
            Error
              (`Msg
                (Printf.sprintf "%d well-formedness violation(s)"
                   (List.length errs))))
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:
         "Parse a Chrome trace-event file written by --trace or dumped by \
          the flight recorder and check its well-formedness (balanced \
          spans, per-worker monotone timestamps; ring-flagged dumps \
          tolerate the truncation artifacts of overwriting the oldest \
          events, and nothing else)")
    Term.(
      term_result
        (const f
        $ Arg.(
            required
            & pos 0 (some file) None
            & info [] ~docv:"TRACE" ~doc:"Trace JSON file.")))

(* --- lint -------------------------------------------------------------- *)

let lint_cmd =
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Fail on warnings as well as errors.")
  in
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also run the cross-layer SA05x passes: canonical semantic \
             equivalence of every physical output against the bound logical \
             DAG, column lineage, spool/enforcer content preservation and \
             the stage-graph interference audit.")
  in
  let list_codes_arg =
    Arg.(
      value & flag
      & info [ "list-codes" ]
          ~doc:
            "Print the diagnostic-code catalog (code, severity, layer, \
             description) and exit; no script is needed.")
  in
  let f machines budget no_ext no_prune verbose strict deep script =
    setup_logs verbose;
    let catalog = make_catalog script in
    let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
    let config = base_config ~no_ext ~no_prune in
    let budget =
      Option.map (fun s -> Sopt.Budget.create ~max_seconds:s ()) budget
    in
    match Cse.Pipeline.run ~config ?budget ~cluster ~catalog script with
    | r -> (
        Fmt.pr
          "optimized: %d operators, %d shared groups, conventional %.5g, CSE \
           %.5g@."
          (Slogical.Dag.size r.Cse.Pipeline.dag)
          (List.length r.Cse.Pipeline.shared)
          r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost;
        match run_audit ~deep ~strict ~cluster ~catalog r with
        | 0 -> Ok ()
        | code -> exit code)
    | exception Slang.Parser.Error (msg, _) -> Error (`Msg msg)
    | exception Slang.Lexer.Error (msg, _) -> Error (`Msg msg)
    | exception Slogical.Binder.Error msg -> Error (`Msg msg)
    | exception Cse.Pipeline.No_plan msg -> Error (`Msg msg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Optimize a script, then run the full static-analysis audit (memo \
          auditor, sharing auditor, logical-DAG lint, plan-DAG lint, stage \
          audit; --deep adds the cross-layer SA05x passes); exits non-zero \
          on error diagnostics")
    Term.(
      term_result
        (const (fun m b e np v s d codes file builtin ->
             if codes then begin
               Fmt.pr "%a" Sanalysis.Diag.pp_catalog ();
               Ok ()
             end
             else Result.bind (read_script file builtin) (f m b e np v s d))
        $ machines_arg $ budget_arg $ no_ext_arg $ no_prune_arg $ verbose_arg
        $ strict_arg $ deep_arg $ list_codes_arg $ file_arg $ builtin_arg))

(* --- workload ---------------------------------------------------------- *)

let workload_cmd =
  let run name =
    match read_script None (Some name) with
    | Ok s ->
        print_string s;
        Ok ()
    | Error e -> Error e
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Print a built-in workload script")
    Term.(
      term_result
        (const run
        $ Arg.(
            required
            & pos 0 (some string) None
            & info [] ~docv:"NAME" ~doc:"S1, S2, S3, S4, IND, LS1 or LS2.")))

let main =
  Cmd.group
    (Cmd.info "scopeopt" ~version:"1.0.0"
       ~doc:
         "Cost-based common-subexpression optimization for cloud query \
          processing (ICDE 2012 reproduction)")
    [
      parse_cmd;
      explain_cmd;
      optimize_cmd;
      run_cmd;
      serve_cmd;
      report_cmd;
      check_trace_cmd;
      lint_cmd;
      workload_cmd;
    ]

let () = exit (Cmd.eval main)
