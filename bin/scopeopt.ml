(* scopeopt: command-line driver for the CSE-aware SCOPE-like optimizer.

   Subcommands:
     parse       - parse a script and print its AST
     explain     - print the logical DAG and the memo with shared groups
     optimize    - run both optimizers and print plans, costs and statistics
     run         - optimize, execute on the simulated cluster, show outputs
     report      - optimize + execute, emit a machine-readable run report
     check-trace - validate a Chrome trace file written by --trace
     lint        - optimize, then run the full static-analysis audit
     workload    - print a built-in workload script (S1-S4, LS1, LS2)

   Scripts are read from a file argument or from one of the built-in
   workloads via --builtin.  [optimize] and [run] accept --audit to run
   the same audit as [lint] after printing their reports, and --trace to
   record the whole pipeline as Chrome trace-event JSON (Perfetto). *)

open Cmdliner

let read_script file builtin =
  match (file, builtin) with
  | Some f, None ->
      let ic = open_in f in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
  | None, Some name -> (
      match
        List.assoc_opt (String.uppercase_ascii name)
          (Sworkload.Paper_scripts.all
          @ [
              ("LS1", Sworkload.Large_gen.ls1 ());
              ("LS2", Sworkload.Large_gen.ls2 ());
              ("IND", Sworkload.Paper_scripts.independent_pair);
            ])
      with
      | Some s -> Ok s
      | None -> Error (`Msg (Printf.sprintf "unknown builtin workload %S" name)))
  | Some _, Some _ -> Error (`Msg "give either a file or --builtin, not both")
  | None, None -> Error (`Msg "give a script file or --builtin NAME")

let make_catalog script =
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files catalog script;
  catalog

(* --- common arguments -------------------------------------------------- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "builtin"; "b" ] ~docv:"NAME"
        ~doc:"Built-in workload: S1, S2, S3, S4, IND, LS1 or LS2.")

let machines_arg =
  Arg.(
    value & opt int 25
    & info [ "machines"; "m" ] ~docv:"N" ~doc:"Simulated cluster size.")

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget" ] ~docv:"SECONDS" ~doc:"Optimization time budget.")

let no_ext_arg =
  Arg.(
    value & flag
    & info [ "no-extensions" ]
        ~doc:"Disable the Section VIII large-script extensions.")

let no_prune_arg =
  Arg.(
    value & flag
    & info [ "no-prune" ]
        ~doc:
          "Disable the phase-2 round-pruning layers (dominance filtering, \
           branch-and-bound round aborts, cross-round winner reuse) and \
           enumerate every round exhaustively.  The chosen plan is \
           identical either way; this is the ablation baseline the \
           equivalence tests and CI drift gate compare against.")

(* Base optimizer configuration from the shared CLI flags. *)
let base_config ~no_ext ~no_prune =
  let c = if no_ext then Cse.Config.no_extensions else Cse.Config.default in
  if no_prune then Cse.Config.no_pruning c else c

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"PREFIX"
        ~doc:
          "Write Graphviz renderings of both plans to \
           $(docv)-conventional.dot and $(docv)-cse.dot.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ]
        ~doc:"Log re-optimization rounds and phase summaries to stderr.")

let inject_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "inject-faults" ] ~docv:"SEED"
        ~doc:
          "With $(b,run): execute a second time under deterministic fault \
           injection seeded with $(docv), recover by recomputing lost \
           stages, and require the outputs to be byte-identical to the \
           fault-free run.")

let rate_arg =
  Arg.(
    value & opt float 0.15
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Per-stage-completion fault probability for --inject-faults, in \
           [0, 1).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers"; "j" ] ~docv:"N"
        ~doc:
          "Executor domain-pool width for $(b,run): independent stages and \
           per-machine vertex loops execute on $(docv) OCaml domains.  \
           Outputs and fault/retry counters are identical for every value; \
           only wall time changes.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the whole pipeline (optimization phases, stage-graph \
           construction, per-stage execution spans across worker domains) \
           as Chrome trace-event JSON into $(docv); load it at \
           ui.perfetto.dev.  Executed stages are cross-checked against \
           the trace (SA045).")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "After optimizing, run the full static-analysis audit — the \
           per-layer passes (memo, sharing, logical-DAG, plan-DAG, stage \
           graph) plus the deep cross-layer SA05x passes (semantic \
           equivalence, column lineage, stage interference) — and fail on \
           any error-severity diagnostic.")

(* Run every analyzer pass over a finished pipeline report; returns the
   exit code from the diagnostic severity mapping. *)
let run_audit ~deep ~strict ~cluster ~catalog r =
  let diags = Sanalysis.Audit.report ~deep ~cluster ~catalog r in
  if diags = [] then Fmt.pr "audit clean: no diagnostics@."
  else Fmt.pr "%a" Sanalysis.Diag.pp_report diags;
  Fmt.pr "%a" Sanalysis.Diag.pp_summary diags;
  let fail_on =
    if strict then Sanalysis.Diag.Warning else Sanalysis.Diag.Error
  in
  Sanalysis.Diag.exit_code ~fail_on diags

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* Map the frontend's exceptions to cmdliner error messages so a bad
   script exits with a one-line diagnostic instead of a backtrace. *)
let guard f script =
  match f script with
  | r -> r
  | exception Slang.Parser.Error (msg, _) -> Error (`Msg msg)
  | exception Slang.Lexer.Error (msg, _) -> Error (`Msg msg)
  | exception Slogical.Binder.Error msg -> Error (`Msg msg)
  | exception Cse.Pipeline.No_plan msg -> Error (`Msg msg)

let with_script f =
  Term.(
    const (fun file builtin -> Result.bind (read_script file builtin) (guard f))
    $ file_arg $ builtin_arg)

(* --- parse ------------------------------------------------------------- *)

let parse_cmd =
  let run file builtin =
    Result.bind (read_script file builtin) (fun script ->
        match Slang.Parser.parse_script script with
        | ast ->
            Fmt.pr "%a@." Slang.Ast.pp ast;
            Ok ()
        | exception Slang.Parser.Error (msg, _) -> Error (`Msg msg)
        | exception Slang.Lexer.Error (msg, _) -> Error (`Msg msg))
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a script and print the AST")
    Term.(term_result (const run $ file_arg $ builtin_arg))

(* --- explain ----------------------------------------------------------- *)

let explain_cmd =
  let f script =
    let catalog = make_catalog script in
    let ast = Slang.Parser.parse_script script in
    let dag = Slogical.Binder.bind ~catalog ast in
    Fmt.pr "=== logical operator DAG (%d operators) ===@.%a@."
      (Slogical.Dag.size dag) Slogical.Dag.pp dag;
    let memo = Smemo.Memo.of_dag ~catalog ~machines:25 dag in
    let shared = Cse.Spool.identify memo in
    Fmt.pr "=== memo after Algorithm 1 ===@.%a@." Smemo.Memo.pp memo;
    Fmt.pr "shared groups:@.";
    List.iter
      (fun (s : Cse.Spool.shared) ->
        Fmt.pr "  spool %d over group %d, %d consumers@." s.Cse.Spool.spool
          s.Cse.Spool.under s.Cse.Spool.initial_consumers)
      shared;
    Ok ()
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Print the logical DAG and the memo")
    Term.(term_result (with_script f))

(* --- optimize ---------------------------------------------------------- *)

let exec_counters (c : Sexec.Engine.counters) =
  [
    ("exec.stages_run", c.Sexec.Engine.stages_run);
    ("exec.vertices_run", c.Sexec.Engine.vertices_run);
    ("exec.retries", c.Sexec.Engine.retries);
    ("exec.recomputed_rows", c.Sexec.Engine.recomputed_rows);
    ("exec.partitions_lost", c.Sexec.Engine.partitions_lost);
    ("exec.machines_failed", c.Sexec.Engine.machines_failed);
  ]

let exec_summary workers (v : Sexec.Validate.outcome) =
  {
    Cse.Pipeline.workers;
    wall_s = v.Sexec.Validate.wall;
    busy_s = v.Sexec.Validate.busy;
  }

(* Finish an in-progress trace: stop, merge, write the Chrome file, then
   hold it to the well-formedness checker and — when stages executed —
   the SA045 audit against the engine's per-run attempt counts. *)
let finish_trace ~attempts path =
  Sobs.Trace.stop ();
  let events = Sobs.Trace.collect () in
  let oc = open_out path in
  Sobs.Trace.write_chrome oc events;
  close_out oc;
  Fmt.pr "wrote %s (%d events%s)@." path (List.length events)
    (match Sobs.Trace.dropped () with
    | 0 -> ""
    | d -> Printf.sprintf ", %d dropped" d);
  match Sobs.Trace.check events with
  | _ :: _ as errs ->
      List.iter (fun e -> Fmt.epr "trace: %s@." e) errs;
      Error (`Msg "trace is not well-formed")
  | [] -> (
      let diags = Sanalysis.Trace_audit.run ~attempts events in
      if diags <> [] then Fmt.pr "%a" Sanalysis.Diag.pp_report diags;
      (* propagate the worst severity to the process exit status instead
         of silently swallowing non-error findings *)
      match Sanalysis.Diag.worst diags with
      | Some Sanalysis.Diag.Error -> Error (`Msg "trace audit (SA045) failed")
      | Some _ | None -> Ok ())

let optimize run_exec =
  let f machines budget no_ext no_prune verbose audit dot inject rate workers
      trace script =
    setup_logs verbose;
    if trace <> None then Sobs.Trace.start ();
    let attempts_acc = ref [] in
    let catalog = make_catalog script in
    let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
    let config = { (base_config ~no_ext ~no_prune) with Cse.Config.audit } in
    let budget = Option.map (fun s -> Sopt.Budget.create ~max_seconds:s ()) budget in
    let r = Cse.Pipeline.run ~config ?budget ~cluster ~catalog script in
    Fmt.pr "=== conventional plan (estimated cost %.5g; %.3f s) ===@.%a@."
      r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.conventional_time
      Sphys.Plan_pp.pp r.Cse.Pipeline.conventional_plan;
    Fmt.pr
      "=== CSE plan (estimated cost %.5g; %.3f s; %d rounds over %d shared \
       groups) ===@.%a@."
      r.Cse.Pipeline.cse_cost r.Cse.Pipeline.cse_time
      r.Cse.Pipeline.rounds_executed
      (List.length r.Cse.Pipeline.shared)
      Sphys.Plan_pp.pp r.Cse.Pipeline.cse_plan;
    Fmt.pr "cost ratio %.1f%% (a reduction of %.1f%%)@.@."
      (100.0 *. Cse.Pipeline.ratio r)
      (Cse.Pipeline.reduction_percent r);
    Fmt.pr "%a" Cse.Pipeline.pp_steps r;
    Option.iter
      (fun prefix ->
        let write suffix plan =
          let file = prefix ^ "-" ^ suffix ^ ".dot" in
          let oc = open_out file in
          output_string oc (Sphys.Plan_pp.to_dot ~name:suffix plan);
          close_out oc;
          Fmt.pr "wrote %s@." file
        in
        write "conventional" r.Cse.Pipeline.conventional_plan;
        write "cse" r.Cse.Pipeline.cse_plan)
      dot;
    let exec_result =
      if not run_exec then Ok ()
      else begin
        let v =
          Sexec.Validate.check ~verify_props:true ~workers ~machines catalog
            r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
        in
        attempts_acc := !attempts_acc @ [ v.Sexec.Validate.attempts ];
        r.Cse.Pipeline.exec <- Some (exec_summary workers v);
        Fmt.pr
          "execution: results %s; %d rows shuffled, %d rows extracted, shared \
           results materialized %d time(s), read %d time(s)@."
          (if v.Sexec.Validate.ok then
             "match the reference (delivered properties verified)"
           else "MISMATCH")
          v.Sexec.Validate.counters.Sexec.Engine.rows_shuffled
          v.Sexec.Validate.counters.Sexec.Engine.rows_extracted
          v.Sexec.Validate.counters.Sexec.Engine.spool_executions
          v.Sexec.Validate.counters.Sexec.Engine.spool_reads;
        Fmt.pr "staged: %d stage(s), %d vertex executions@."
          v.Sexec.Validate.counters.Sexec.Engine.stages_run
          v.Sexec.Validate.counters.Sexec.Engine.vertices_run;
        Fmt.pr "%a" Cse.Pipeline.pp_exec (exec_summary workers v);
        List.iter (fun m -> Fmt.pr "  %s@." m) v.Sexec.Validate.mismatches;
        let injected =
          match inject with
          | None -> Ok ()
          | Some seed -> (
              match Sexec.Faults.spec ~rate seed with
              | exception Invalid_argument msg -> Error (`Msg msg)
              | faults ->
                  let vf =
                    Sexec.Validate.check ~verify_props:true ~faults ~workers
                      ~machines catalog r.Cse.Pipeline.dag
                      r.Cse.Pipeline.cse_plan
                  in
                  attempts_acc := !attempts_acc @ [ vf.Sexec.Validate.attempts ];
                  let identical =
                    Sexec.Validate.identical_outputs v.Sexec.Validate.outputs
                      vf.Sexec.Validate.outputs
                  in
                  Fmt.pr
                    "fault injection (seed %d, rate %.2f): outputs %s the \
                     fault-free run%s@."
                    seed rate
                    (if identical then "byte-identical to" else "DIVERGE from")
                    (if vf.Sexec.Validate.ok then ""
                     else "; reference MISMATCH");
                  Fmt.pr "%a" Cse.Pipeline.pp_counters
                    (exec_counters vf.Sexec.Validate.counters);
                  Fmt.pr "stage attempts: %s@."
                    (String.concat ","
                       (Array.to_list
                          (Array.map string_of_int vf.Sexec.Validate.attempts)));
                  List.iter (fun m -> Fmt.pr "  %s@." m)
                    vf.Sexec.Validate.mismatches;
                  if vf.Sexec.Validate.ok && identical then Ok ()
                  else Error (`Msg "fault-injected execution diverged"))
        in
        if not v.Sexec.Validate.ok then Error (`Msg "execution mismatch")
        else injected
      end
    in
    let trace_result =
      match trace with
      | None -> Ok ()
      | Some path -> finish_trace ~attempts:!attempts_acc path
    in
    match exec_result with
    | Error _ as e -> e
    | Ok () -> (
        match trace_result with
        | Error _ as e -> e
        | Ok () ->
            if config.Cse.Config.audit then begin
              let code = run_audit ~deep:true ~strict:false ~cluster ~catalog r in
              if code <> 0 then Error (`Msg "audit found errors") else Ok ()
            end
            else Ok ())
  in
  Term.(
    term_result
      (const (fun m b e np v a d i p w t file builtin ->
           Result.bind (read_script file builtin)
             (guard (f m b e np v a d i p w t)))
      $ machines_arg $ budget_arg $ no_ext_arg $ no_prune_arg $ verbose_arg
      $ audit_arg $ dot_arg $ inject_arg $ rate_arg $ workers_arg $ trace_arg
      $ file_arg $ builtin_arg))

let optimize_cmd =
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Optimize a script with and without the CSE framework")
    (optimize false)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Optimize and execute on the simulated cluster, validating results")
    (optimize true)

(* --- report ------------------------------------------------------------ *)

let json_of_hist (s : Sobs.Hist.summary) =
  Sobs.Json.Obj
    [
      ("count", Sobs.Json.Num (float_of_int s.Sobs.Hist.count));
      ("sum", Sobs.Json.Num s.Sobs.Hist.sum);
      ("p50", Sobs.Json.Num s.Sobs.Hist.p50);
      ("p90", Sobs.Json.Num s.Sobs.Hist.p90);
      ("max", Sobs.Json.Num s.Sobs.Hist.max);
      ( "buckets",
        Sobs.Json.Arr
          (List.map
             (fun (ub, c) ->
               Sobs.Json.Arr
                 [ Sobs.Json.Num ub; Sobs.Json.Num (float_of_int c) ])
             s.Sobs.Hist.buckets) );
    ]

(* The machine-readable run report.  Schema "scopecse-run-report/2":
   optimization costs and task counts from the pipeline report — since /2
   including the round-pruning tallies (rounds_pruned,
   rounds_aborted_bound, phase2_winner_reuse_hits) — the execution
   outcome (wall, per-worker busy, utilization, per-stage timeline with
   wave depths), full counter deltas and histogram summaries.
   Documented in README.md; new fields may be added, existing ones keep
   their meaning. *)
let json_report ~machines ~workers (r : Cse.Pipeline.report)
    (v : Sexec.Validate.outcome) ~counters =
  let num f = Sobs.Json.Num f in
  let int i = num (float_of_int i) in
  let graph = Sexec.Stage.build r.Cse.Pipeline.cse_plan in
  let depths = Sexec.Stage.depths graph in
  let stages =
    Sobs.Json.Arr
      (List.init (Array.length v.Sexec.Validate.attempts) (fun sid ->
           Sobs.Json.Obj
             [
               ("id", int sid);
               ("depth", int depths.(sid));
               ("attempts", int v.Sexec.Validate.attempts.(sid));
               ("seconds", num v.Sexec.Validate.seconds.(sid));
             ]))
  in
  let exec_sum = exec_summary workers v in
  Sobs.Json.Obj
    [
      ("schema", Sobs.Json.Str "scopecse-run-report/2");
      ("machines", int machines);
      ( "optimization",
        Sobs.Json.Obj
          [
            ("conventional_cost", num r.Cse.Pipeline.conventional_cost);
            ("cse_cost", num r.Cse.Pipeline.cse_cost);
            ("cost_ratio", num (Cse.Pipeline.ratio r));
            ("conventional_tasks", int r.Cse.Pipeline.conventional_tasks);
            ("cse_tasks", int r.Cse.Pipeline.cse_tasks);
            ("conventional_time_s", num r.Cse.Pipeline.conventional_time);
            ("cse_time_s", num r.Cse.Pipeline.cse_time);
            ("shared_groups", int (List.length r.Cse.Pipeline.shared));
            ("rounds_executed", int r.Cse.Pipeline.rounds_executed);
            ("rounds_naive", int r.Cse.Pipeline.rounds_naive);
            ("rounds_sequential", int r.Cse.Pipeline.rounds_sequential);
            ("rounds_pruned", int r.Cse.Pipeline.rounds_pruned);
            ( "rounds_aborted_bound",
              int r.Cse.Pipeline.rounds_aborted_bound );
            ( "phase2_winner_reuse_hits",
              int r.Cse.Pipeline.phase2_winner_reuse_hits );
            ( "budget_exhausted",
              Sobs.Json.Bool r.Cse.Pipeline.budget_exhausted );
            ( "lcas",
              Sobs.Json.Arr
                (List.map
                   (fun (s, l) ->
                     Sobs.Json.Obj [ ("shared", int s); ("lca", int l) ])
                   r.Cse.Pipeline.lcas) );
          ] );
      ( "execution",
        Sobs.Json.Obj
          [
            ("ok", Sobs.Json.Bool v.Sexec.Validate.ok);
            ("workers", int workers);
            ("wall_s", num v.Sexec.Validate.wall);
            ( "busy_s",
              Sobs.Json.Arr
                (Array.to_list (Array.map num v.Sexec.Validate.busy)) );
            ("utilization", num (Cse.Pipeline.utilization exec_sum));
            ("stage_count", int (Array.length v.Sexec.Validate.attempts));
            ("stage_depth", int (1 + Array.fold_left max (-1) depths));
            ("stages", stages);
          ] );
      ( "counters",
        Sobs.Json.Obj (List.map (fun (n, c) -> (n, int c)) counters) );
      ( "histograms",
        Sobs.Json.Obj
          (List.map (fun (n, s) -> (n, json_of_hist s)) (Sobs.Hist.snapshot ()))
      );
    ]

let report_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the run report as JSON (schema scopecse-run-report/2) \
             instead of the human-readable summary.")
  in
  let f machines budget no_ext no_prune verbose workers trace json script =
    setup_logs verbose;
    if trace <> None then Sobs.Trace.start ();
    let counters_before = Sutil.Counters.snapshot () in
    let catalog = make_catalog script in
    let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
    let config = base_config ~no_ext ~no_prune in
    let budget =
      Option.map (fun s -> Sopt.Budget.create ~max_seconds:s ()) budget
    in
    let r = Cse.Pipeline.run ~config ?budget ~cluster ~catalog script in
    let v =
      Sexec.Validate.check ~verify_props:true ~workers ~machines catalog
        r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
    in
    r.Cse.Pipeline.exec <- Some (exec_summary workers v);
    let counters = Sutil.Counters.since counters_before in
    let trace_result =
      match trace with
      | None -> Ok ()
      | Some path ->
          finish_trace ~attempts:[ v.Sexec.Validate.attempts ] path
    in
    if json then
      print_string
        (Sobs.Json.to_string (json_report ~machines ~workers r v ~counters))
    else begin
      Fmt.pr "%a" Cse.Pipeline.pp_steps r;
      Fmt.pr "%a" Cse.Pipeline.pp_exec (exec_summary workers v);
      Fmt.pr "%a" Cse.Pipeline.pp_counters counters;
      Fmt.pr "%a" Sobs.Hist.pp ()
    end;
    if not v.Sexec.Validate.ok then Error (`Msg "execution mismatch")
    else trace_result
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Optimize and execute a script, then emit one run report: plan \
          costs, task counts, counter deltas, histograms, per-stage \
          timeline and worker utilization (--json for the machine-readable \
          form)")
    Term.(
      term_result
        (const (fun m b e np v w t j file builtin ->
             Result.bind (read_script file builtin)
               (guard (f m b e np v w t j)))
        $ machines_arg $ budget_arg $ no_ext_arg $ no_prune_arg $ verbose_arg
        $ workers_arg $ trace_arg $ json_arg $ file_arg $ builtin_arg))

(* --- check-trace -------------------------------------------------------- *)

let check_trace_cmd =
  let f file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Sobs.Trace.parse_chrome s with
    | exception Sobs.Trace.Malformed msg -> Error (`Msg msg)
    | events -> (
        match Sobs.Trace.check events with
        | [] ->
            let tids =
              List.sort_uniq compare
                (List.map (fun (e : Sobs.Trace.event) -> e.Sobs.Trace.tid)
                   events)
            in
            Fmt.pr "trace OK: %d events across %d worker(s)@."
              (List.length events) (List.length tids);
            Ok ()
        | errs ->
            List.iter (fun e -> Fmt.pr "%s@." e) errs;
            Error
              (`Msg
                (Printf.sprintf "%d well-formedness violation(s)"
                   (List.length errs))))
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:
         "Parse a Chrome trace-event file written by --trace and check its \
          well-formedness (balanced spans, per-worker monotone timestamps)")
    Term.(
      term_result
        (const f
        $ Arg.(
            required
            & pos 0 (some file) None
            & info [] ~docv:"TRACE" ~doc:"Trace JSON file.")))

(* --- lint -------------------------------------------------------------- *)

let lint_cmd =
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Fail on warnings as well as errors.")
  in
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also run the cross-layer SA05x passes: canonical semantic \
             equivalence of every physical output against the bound logical \
             DAG, column lineage, spool/enforcer content preservation and \
             the stage-graph interference audit.")
  in
  let list_codes_arg =
    Arg.(
      value & flag
      & info [ "list-codes" ]
          ~doc:
            "Print the diagnostic-code catalog (code, severity, layer, \
             description) and exit; no script is needed.")
  in
  let f machines budget no_ext no_prune verbose strict deep script =
    setup_logs verbose;
    let catalog = make_catalog script in
    let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
    let config = base_config ~no_ext ~no_prune in
    let budget =
      Option.map (fun s -> Sopt.Budget.create ~max_seconds:s ()) budget
    in
    match Cse.Pipeline.run ~config ?budget ~cluster ~catalog script with
    | r -> (
        Fmt.pr
          "optimized: %d operators, %d shared groups, conventional %.5g, CSE \
           %.5g@."
          (Slogical.Dag.size r.Cse.Pipeline.dag)
          (List.length r.Cse.Pipeline.shared)
          r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost;
        match run_audit ~deep ~strict ~cluster ~catalog r with
        | 0 -> Ok ()
        | code -> exit code)
    | exception Slang.Parser.Error (msg, _) -> Error (`Msg msg)
    | exception Slang.Lexer.Error (msg, _) -> Error (`Msg msg)
    | exception Slogical.Binder.Error msg -> Error (`Msg msg)
    | exception Cse.Pipeline.No_plan msg -> Error (`Msg msg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Optimize a script, then run the full static-analysis audit (memo \
          auditor, sharing auditor, logical-DAG lint, plan-DAG lint, stage \
          audit; --deep adds the cross-layer SA05x passes); exits non-zero \
          on error diagnostics")
    Term.(
      term_result
        (const (fun m b e np v s d codes file builtin ->
             if codes then begin
               Fmt.pr "%a" Sanalysis.Diag.pp_catalog ();
               Ok ()
             end
             else Result.bind (read_script file builtin) (f m b e np v s d))
        $ machines_arg $ budget_arg $ no_ext_arg $ no_prune_arg $ verbose_arg
        $ strict_arg $ deep_arg $ list_codes_arg $ file_arg $ builtin_arg))

(* --- workload ---------------------------------------------------------- *)

let workload_cmd =
  let run name =
    match read_script None (Some name) with
    | Ok s ->
        print_string s;
        Ok ()
    | Error e -> Error e
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Print a built-in workload script")
    Term.(
      term_result
        (const run
        $ Arg.(
            required
            & pos 0 (some string) None
            & info [] ~docv:"NAME" ~doc:"S1, S2, S3, S4, IND, LS1 or LS2.")))

let main =
  Cmd.group
    (Cmd.info "scopeopt" ~version:"1.0.0"
       ~doc:
         "Cost-based common-subexpression optimization for cloud query \
          processing (ICDE 2012 reproduction)")
    [
      parse_cmd;
      explain_cmd;
      optimize_cmd;
      run_cmd;
      report_cmd;
      check_trace_cmd;
      lint_cmd;
      workload_cmd;
    ]

let () = exit (Cmd.eval main)
