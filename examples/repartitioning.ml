(* Figure 1(b): the repartitioning options for the output of a shared node,
   and the containment property the whole paper rests on -- a data set
   hash-partitioned on {B} is also partitioned on {A,B,C}, because all the
   rows that agree on (A,B,C) agree on B and are therefore co-located.

   The example materializes the figure's little relation on a simulated
   3-machine cluster, repartitions it both ways and checks grouping
   co-location.

   Run with:  dune exec examples/repartitioning.exe *)

open Relalg

let schema =
  [
    Schema.column "A" Schema.Tint;
    Schema.column "B" Schema.Tint;
    Schema.column "C" Schema.Tint;
    Schema.column "D" Schema.Tint;
  ]

(* the rows of Figure 1(b) *)
let rows =
  [
    [| 1; 1; 1; 1 |]; [| 1; 1; 3; 2 |]; [| 1; 2; 2; 3 |]; [| 2; 2; 2; 4 |];
  ]
  |> List.map (fun a -> Array.map (fun x -> Value.Int x) a)

let show_partitions title (parts : Value.t array list array) =
  Fmt.pr "%s@." title;
  Array.iteri
    (fun m part ->
      Fmt.pr "  machine %d: %s@." m
        (String.concat "  "
           (List.map
              (fun row ->
                Printf.sprintf "(%s)"
                  (String.concat ","
                     (Array.to_list (Array.map Value.to_string row))))
              part)))
    parts

(* Re-use the engine's routing logic through a tiny hand-built plan. *)
let repartition ~machines cols =
  let catalog = Catalog.create () in
  let engine = Sexec.Engine.create ~machines catalog in
  let d =
    Sexec.Engine.dist_of_parts schema
      (let parts = Array.make machines [] in
       List.iteri (fun i row -> parts.(i mod machines) <- parts.(i mod machines) @ [ row ]) rows;
       parts)
  in
  let d' = Sexec.Engine.exchange engine d (Colset.of_list cols) in
  Array.init machines (Sexec.Engine.part_rows d')

let co_located parts key_cols =
  (* every group of rows agreeing on [key_cols] lives on one machine *)
  let idx = List.map (fun c -> Schema.index c schema) key_cols in
  let homes = Hashtbl.create 8 in
  let ok = ref true in
  Array.iteri
    (fun m part ->
      List.iter
        (fun row ->
          let key = List.map (fun i -> row.(i)) idx in
          match Hashtbl.find_opt homes key with
          | Some m0 when m0 <> m -> ok := false
          | Some _ -> ()
          | None -> Hashtbl.add homes key m)
        part)
    parts;
  !ok

let () =
  let machines = 3 in
  let on_abc = repartition ~machines [ "A"; "B"; "C" ] in
  let on_b = repartition ~machines [ "B" ] in
  show_partitions "Partitioning on {A,B,C}:" on_abc;
  show_partitions "Partitioning on {B}:" on_b;
  Fmt.pr "@.partitioned on {A,B,C}, grouped on {A,B,C} co-located: %b@."
    (co_located on_abc [ "A"; "B"; "C" ]);
  Fmt.pr "partitioned on {B},     grouped on {A,B,C} co-located: %b@."
    (co_located on_b [ "A"; "B"; "C" ]);
  Fmt.pr "partitioned on {B},     grouped on {A,B}   co-located: %b@."
    (co_located on_b [ "A"; "B" ]);
  Fmt.pr "partitioned on {B},     grouped on {B,C}   co-located: %b@."
    (co_located on_b [ "B"; "C" ]);
  Fmt.pr
    "@.This is why enforcing {B} at the shared node lets both consumers —@.\
     grouping on {A,B} and on {B,C} — run without further repartitioning.@."
