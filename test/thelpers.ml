(* Shared helpers for the test suites. *)

let default_catalog () = Relalg.Catalog.default ()

(* Parse and bind a script against the default catalog. *)
let bind ?(catalog = default_catalog ()) script =
  Slogical.Binder.bind ~catalog (Slang.Parser.parse_script script)

let memo_of ?(catalog = default_catalog ()) ?(machines = 25) script =
  Smemo.Memo.of_dag ~catalog ~machines (bind ~catalog script)

(* Assert a plan passes the independent validity checker. *)
let assert_valid_plan name plan =
  match Sphys.Plan_check.validate plan with
  | Ok () -> ()
  | Error errs ->
      Alcotest.failf "%s: invalid plan:\n%s" name
        (Sphys.Plan_check.violations_to_string errs)

(* Run the full pipeline on a script with the default catalog.  Tests run
   the full static-analysis audit on every optimized plan (the
   Cse.Config.audit knob); pass a config with [audit = false] to skip. *)
let pipeline ?(config = { Cse.Config.default with Cse.Config.audit = true })
    ?budget ?(catalog = default_catalog ()) script =
  let r = Cse.Pipeline.run ~config ?budget ~catalog script in
  if config.Cse.Config.audit then
    Sanalysis.Audit.assert_clean ~cluster:Scost.Cluster.default ~catalog r;
  r

(* Operator multiset of a plan, as short names. *)
let op_names plan =
  List.map Sphys.Physop.short_name (Sphys.Plan.operators plan)
  |> List.sort String.compare

let count_op name plan =
  List.length (List.filter (String.equal name) (op_names plan))

(* Count operators over physically-distinct nodes: a shared (spool) subtree
   referenced several times is walked once. *)
let distinct_count_op name plan =
  let seen = ref [] in
  let count = ref 0 in
  let rec go (n : Sphys.Plan.t) =
    if not (List.exists (fun p -> p == n) !seen) then begin
      seen := n :: !seen;
      if Sphys.Physop.short_name n.Sphys.Plan.op = name then incr count;
      List.iter go n.Sphys.Plan.children
    end
  in
  go plan;
  !count

let colset = Relalg.Colset.of_list

(* Alcotest testables *)
let colset_t = Alcotest.testable Relalg.Colset.pp Relalg.Colset.equal
let value_t = Alcotest.testable Relalg.Value.pp Relalg.Value.equal

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
