(* The mutation-tested audit contract (lib/analysis/mutate.ml).

   Each mutation corrupts one structure the optimizer or executor trusts
   and demands the responsible analyzer report its specific SA code;
   Mutate.verify additionally rejects vacuous experiments (baseline
   already dirty or already carrying the code).  The corpus-shape tests
   pin the guarantees the audit harness advertises: at least twenty
   distinct corruptions, unique labels, and coverage of every layer of
   the diagnostic catalog. *)

module Mutate = Sanalysis.Mutate

let test_mutation (m : Mutate.mutation) () =
  match Mutate.verify m with Ok () -> () | Error msg -> Alcotest.fail msg

let test_corpus_size () =
  let n = List.length Mutate.all in
  if n < 20 then Alcotest.failf "only %d mutations in the corpus, need >= 20" n

let test_names_unique () =
  let names = List.map (fun (m : Mutate.mutation) -> m.Mutate.mname) Mutate.all in
  let dups =
    List.filter
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      (List.sort_uniq String.compare names)
  in
  if dups <> [] then
    Alcotest.failf "duplicate mutation names: %s" (String.concat ", " dups)

let test_codes_cataloged () =
  List.iter
    (fun (m : Mutate.mutation) ->
      match Sanalysis.Diag.find_entry m.Mutate.mcode with
      | Some _ -> ()
      | None ->
          Alcotest.failf "%s expects %s, which is not in the catalog"
            m.Mutate.mname m.Mutate.mcode)
    Mutate.all

let test_layer_coverage () =
  (* every layer with corruptible structures has at least one mutation;
     "trace" is exercised by test_analysis over synthetic span streams *)
  let covered =
    List.filter_map
      (fun (m : Mutate.mutation) ->
        Option.map
          (fun (e : Sanalysis.Diag.entry) -> e.Sanalysis.Diag.layer)
          (Sanalysis.Diag.find_entry m.Mutate.mcode))
      Mutate.all
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun layer ->
      if not (List.mem layer covered) then
        Alcotest.failf "no mutation targets the %s layer" layer)
    [ "memo"; "sharing"; "logical"; "plan"; "stages"; "cross-layer" ]

let () =
  Alcotest.run "mutation"
    [
      ( "corpus shape",
        [
          Alcotest.test_case "at least 20 mutations" `Quick test_corpus_size;
          Alcotest.test_case "names unique" `Quick test_names_unique;
          Alcotest.test_case "codes cataloged" `Quick test_codes_cataloged;
          Alcotest.test_case "every layer covered" `Quick test_layer_coverage;
        ] );
      ( "mutations",
        List.map
          (fun (m : Mutate.mutation) ->
            Alcotest.test_case m.Mutate.mname `Quick (test_mutation m))
          Mutate.all );
    ]
