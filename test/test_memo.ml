(* Memo structure tests. *)

let test_of_dag_s1 () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  Alcotest.(check int) "7 groups" 7 (Smemo.Memo.size memo);
  Alcotest.(check int) "7 expressions" 7 (Smemo.Memo.expr_count memo);
  let root = Smemo.Memo.root_group memo in
  match (List.hd (Smemo.Memo.exprs root)).Smemo.Memo.mop with
  | Slogical.Logop.Sequence -> ()
  | _ -> Alcotest.fail "root is the sequence"

let test_parents () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let parents = Smemo.Memo.parents memo in
  (* group 1 = GB(A,B,C) has the two consumer GBs as parents *)
  Alcotest.(check int) "shared group has 2 parents" 2 (List.length parents.(1));
  Alcotest.(check (list int)) "root has no parents" []
    parents.(memo.Smemo.Memo.root)

let test_redirect () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  (* create a spool over group 1 manually and redirect *)
  let g1 = Smemo.Memo.group memo 1 in
  let spool =
    Smemo.Memo.add_group memo
      { Smemo.Memo.mop = Slogical.Logop.Spool; children = [ 1 ] }
      g1.Smemo.Memo.schema
  in
  Smemo.Memo.redirect memo ~from_:1 ~to_:spool.Smemo.Memo.id
    ~except:spool.Smemo.Memo.id;
  let parents = Smemo.Memo.parents memo in
  Alcotest.(check int) "spool took over the consumers" 2
    (List.length parents.(spool.Smemo.Memo.id));
  Alcotest.(check (list int)) "group 1 now feeds only the spool"
    [ spool.Smemo.Memo.id ] parents.(1)

let test_reachable () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let live = Smemo.Memo.reachable memo in
  Alcotest.(check bool) "all initial groups reachable" true
    (Array.for_all Fun.id (Array.sub live 0 7))

let test_add_expr_dedup () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let g = Smemo.Memo.group memo 1 in
  let e = List.hd (Smemo.Memo.exprs g) in
  Smemo.Memo.add_expr memo g e;
  Alcotest.(check int) "duplicate expression ignored" 1
    (List.length (Smemo.Memo.exprs g))

let test_exploration_adds_two_stage () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let g = Smemo.Memo.group memo 1 in
  Sopt.Rules.explore memo g ~phase:1;
  Alcotest.(check int) "global/local expression added" 2
    (List.length (Smemo.Memo.exprs g));
  (* idempotent per phase *)
  Sopt.Rules.explore memo g ~phase:1;
  Alcotest.(check int) "idempotent" 2 (List.length (Smemo.Memo.exprs g));
  (* re-exploring in phase 2 must not duplicate the rewrite *)
  let before = Smemo.Memo.size memo in
  g.Smemo.Memo.explored_phase <- 1;
  Sopt.Rules.explore memo g ~phase:2;
  Alcotest.(check int) "no new group in phase 2" before (Smemo.Memo.size memo);
  Alcotest.(check int) "no new expr in phase 2" 2
    (List.length (Smemo.Memo.exprs g))

let test_group_children () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let root = Smemo.Memo.root_group memo in
  Alcotest.(check (list int)) "sequence children" [ 3; 5 ]
    (Smemo.Memo.group_children root)

(* Regression for the quadratic add_expr (structural List.mem scan plus
   [exprs @ [e]] append): a wide exploration adding thousands of distinct
   expressions must stay fast, preserve insertion order, and dedup every
   re-insertion. *)
let test_add_expr_wide () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let g = Smemo.Memo.group memo 1 in
  let base = List.hd (Smemo.Memo.exprs g) in
  (* distinct equivalent expressions over an existing child group: filters
     with distinct predicates *)
  let alt i =
    {
      Smemo.Memo.mop =
        Slogical.Logop.Filter
          {
            pred =
              Relalg.Expr.Cmp
                ( Relalg.Expr.Le,
                  Relalg.Expr.Col "A",
                  Relalg.Expr.Lit (Relalg.Value.Int i) );
          };
      children = [ 0 ];
    }
  in
  let n = 5000 in
  let started = Unix.gettimeofday () in
  for i = 1 to n do
    Smemo.Memo.add_expr memo g (alt i)
  done;
  (* re-adding every one of them is a no-op *)
  for i = 1 to n do
    Smemo.Memo.add_expr memo g (alt i)
  done;
  let elapsed = Unix.gettimeofday () -. started in
  let es = Smemo.Memo.exprs g in
  Alcotest.(check int) "all distinct expressions kept" (n + 1)
    (List.length es);
  Alcotest.(check bool) "insertion order preserved" true
    (List.hd es = base && List.nth es 1 = alt 1 && List.nth es n = alt n);
  (* the old quadratic implementation needs tens of seconds here; the
     hashtable-backed one is effectively instant.  A generous bound keeps
     the assertion robust on slow CI machines. *)
  Alcotest.(check bool)
    (Printf.sprintf "wide exploration fast enough (%.3fs)" elapsed)
    true (elapsed < 5.0)

(* Brute-force reference for the incrementally-maintained referrer tables:
   recompute parents/reachable from scratch by scanning every group's
   expressions, and compare after a mutation sequence. *)
let brute_parents (memo : Smemo.Memo.t) =
  let live = Array.make (Smemo.Memo.size memo) false in
  let rec visit id =
    if not live.(id) then begin
      live.(id) <- true;
      List.iter visit (Smemo.Memo.group_children (Smemo.Memo.group memo id))
    end
  in
  visit memo.Smemo.Memo.root;
  let ps = Array.make (Smemo.Memo.size memo) [] in
  Smemo.Memo.iter_groups memo (fun g ->
      if live.(g.Smemo.Memo.id) then
        List.iter
          (fun c ->
            if not (List.mem g.Smemo.Memo.id ps.(c)) then
              ps.(c) <- g.Smemo.Memo.id :: ps.(c))
          (Smemo.Memo.group_children g));
  (live, Array.map (List.sort_uniq Int.compare) ps)

let check_incremental_consistency memo label =
  let live_ref, parents_ref = brute_parents memo in
  let live = Smemo.Memo.reachable memo in
  let parents = Smemo.Memo.parents memo in
  Alcotest.(check (array bool)) (label ^ ": reachable") live_ref live;
  Alcotest.(check (array (list int))) (label ^ ": parents") parents_ref parents

let test_incremental_maintenance () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s3 in
  check_incremental_consistency memo "fresh memo";
  (* run the full CSE identification (merges + spool insertion) *)
  let _shared = Cse.Spool.identify memo in
  check_incremental_consistency memo "after identify";
  (* exploration adds groups and expressions *)
  Smemo.Memo.iter_groups memo (fun g -> Sopt.Rules.explore memo g ~phase:1);
  check_incremental_consistency memo "after exploration";
  (* a manual redirect through a fresh spool *)
  let target = List.hd (Smemo.Memo.group_children (Smemo.Memo.root_group memo)) in
  let tg = Smemo.Memo.group memo target in
  let spool =
    Smemo.Memo.add_group memo
      { Smemo.Memo.mop = Slogical.Logop.Spool; children = [ target ] }
      tg.Smemo.Memo.schema
  in
  Smemo.Memo.redirect memo ~from_:target ~to_:spool.Smemo.Memo.id
    ~except:spool.Smemo.Memo.id;
  check_incremental_consistency memo "after manual redirect";
  (* wholesale replacement keeps the tables consistent too *)
  let root = Smemo.Memo.root_group memo in
  Smemo.Memo.set_exprs memo root (Smemo.Memo.exprs root);
  check_incremental_consistency memo "after set_exprs"

let () =
  Alcotest.run "memo"
    [
      ( "structure",
        [
          Alcotest.test_case "of_dag" `Quick test_of_dag_s1;
          Alcotest.test_case "parents" `Quick test_parents;
          Alcotest.test_case "redirect" `Quick test_redirect;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "add_expr dedup" `Quick test_add_expr_dedup;
          Alcotest.test_case "add_expr wide exploration" `Quick
            test_add_expr_wide;
          Alcotest.test_case "incremental referrers" `Quick
            test_incremental_maintenance;
          Alcotest.test_case "group children" `Quick test_group_children;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "two-stage aggregation" `Quick
            test_exploration_adds_two_stage;
        ] );
    ]
