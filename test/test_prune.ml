(* Round-pruning soundness (ISSUE 7).

   The three pruning layers — dominance filtering of round candidates,
   the branch-and-bound round abort, and cross-round winner reuse — are
   pure search-space reductions: they must never change the chosen plan.
   Equivalence suite: the builtin workloads (S1-S4, IND, LS1, LS2) and
   30 random scripts optimized twice, pruned (default) vs exhaustive
   ([Cse.Config.no_pruning]), asserting identical chosen-plan cost,
   operator multiset and canonical algebra forms.  Unit tests pin the
   dominance order's edge cases and the pruned-space round accounting. *)

open Sphys

let exhaustive = Cse.Config.no_pruning Cse.Config.default

(* Canonical forms of every output of a plan, interned in [ctx] so the
   ids are comparable across the two runs. *)
let canon_outputs ctx plan =
  Sanalysis.Canon.of_physical ctx plan
  |> List.map (fun ((o : Sanalysis.Canon.out), _) ->
         (o.Sanalysis.Canon.file, o.Sanalysis.Canon.cid))
  |> List.sort compare

let assert_equivalent name ?cluster ~catalog script =
  let pruned = Cse.Pipeline.run ?cluster ~catalog script in
  let exact = Cse.Pipeline.run ~config:exhaustive ?cluster ~catalog script in
  if not (Float.equal pruned.Cse.Pipeline.cse_cost exact.Cse.Pipeline.cse_cost)
  then
    Alcotest.failf "%s: pruned cost %.17g <> exhaustive cost %.17g" name
      pruned.Cse.Pipeline.cse_cost exact.Cse.Pipeline.cse_cost;
  Alcotest.(check (list string))
    (name ^ ": operator multiset")
    (Thelpers.op_names exact.Cse.Pipeline.cse_plan)
    (Thelpers.op_names pruned.Cse.Pipeline.cse_plan);
  let ctx = Sanalysis.Canon.create () in
  Alcotest.(check (list (pair string int)))
    (name ^ ": canonical forms")
    (canon_outputs ctx exact.Cse.Pipeline.cse_plan)
    (canon_outputs ctx pruned.Cse.Pipeline.cse_plan);
  (* pruning only removes rounds; it never executes more than the
     exhaustive run and never spends more optimizer tasks *)
  if pruned.Cse.Pipeline.rounds_executed > exact.Cse.Pipeline.rounds_executed
  then
    Alcotest.failf "%s: pruned run executed more rounds (%d > %d)" name
      pruned.Cse.Pipeline.rounds_executed exact.Cse.Pipeline.rounds_executed;
  (pruned, exact)

let test_builtins_equivalent () =
  List.iter
    (fun (name, script) ->
      ignore
        (assert_equivalent name ~catalog:(Thelpers.default_catalog ()) script))
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

let large_equivalent name spec =
  let script = Sworkload.Large_gen.generate spec in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files
    ~shared_rows:spec.Sworkload.Large_gen.shared_rows
    ~filler_rows:spec.Sworkload.Large_gen.filler_rows catalog script;
  ignore (assert_equivalent name ~catalog script)

let test_ls1_equivalent () = large_equivalent "LS1" Sworkload.Large_gen.ls1_spec
let test_ls2_equivalent () = large_equivalent "LS2" Sworkload.Large_gen.ls2_spec

let test_random_equivalent () =
  for seed = 1 to 30 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:8 () in
    let catalog = Sworkload.Random_gen.catalog () in
    let cluster = Scost.Cluster.with_machines 7 Scost.Cluster.default in
    ignore
      (assert_equivalent (Printf.sprintf "seed %d" seed) ~cluster ~catalog
         script)
  done

(* The pruned run must actually prune somewhere on the workload the
   paper's Figure 3(c) shape stresses (S4: four interacting shared
   groups), or the acceptance numbers are vacuous.  On S4 the reduction
   comes from the branch-and-bound abort (its candidate property sets
   hold no sort-prefix chains); dominance filtering fires on S2, whose
   history records a sorted and an unsorted-prefix variant of the same
   partitioning. *)
let test_s4_prunes () =
  let r, exact =
    assert_equivalent "S4"
      ~catalog:(Thelpers.default_catalog ())
      Sworkload.Paper_scripts.s4
  in
  if r.Cse.Pipeline.rounds_aborted_bound = 0 then
    Alcotest.fail "S4: the bound aborted no rounds";
  if r.Cse.Pipeline.rounds_executed * 2 > exact.Cse.Pipeline.rounds_executed
  then
    Alcotest.failf "S4: rounds only dropped %d -> %d (< 2x)"
      exact.Cse.Pipeline.rounds_executed r.Cse.Pipeline.rounds_executed;
  let r2 =
    Cse.Pipeline.run
      ~catalog:(Thelpers.default_catalog ())
      Sworkload.Paper_scripts.s2
  in
  if r2.Cse.Pipeline.rounds_pruned = 0 then
    Alcotest.fail "S2: dominance filtering removed no rounds"

(* Every round of the pruned sequential space is either executed or
   aborted by the bound; nothing is lost or double-counted. *)
let test_round_accounting () =
  List.iter
    (fun (name, script) ->
      let r = Cse.Pipeline.run ~catalog:(Thelpers.default_catalog ()) script in
      let space = r.Cse.Pipeline.rounds_sequential - r.Cse.Pipeline.rounds_pruned in
      let spent =
        r.Cse.Pipeline.rounds_executed + r.Cse.Pipeline.rounds_aborted_bound
      in
      if spent <> space then
        Alcotest.failf "%s: executed %d + aborted %d <> sequential %d - pruned %d"
          name r.Cse.Pipeline.rounds_executed r.Cse.Pipeline.rounds_aborted_bound
          r.Cse.Pipeline.rounds_sequential r.Cse.Pipeline.rounds_pruned)
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

(* An exhaustive run records no prunes, no aborts and no reuse hits. *)
let test_noprune_counters_zero () =
  let r =
    Cse.Pipeline.run ~config:exhaustive
      ~catalog:(Thelpers.default_catalog ())
      Sworkload.Paper_scripts.s4
  in
  Alcotest.(check int) "rounds_pruned" 0 r.Cse.Pipeline.rounds_pruned;
  Alcotest.(check int) "rounds_aborted" 0 r.Cse.Pipeline.rounds_aborted_bound;
  Alcotest.(check int)
    "rounds = sequential" r.Cse.Pipeline.rounds_sequential
    r.Cse.Pipeline.rounds_executed

(* --- dominance order unit tests ----------------------------------------- *)

let hx cols sort =
  Reqprops.make (Reqprops.Hash_exact (Thelpers.colset cols)) (Sortorder.asc sort)

let dominates ~by p = Cse.History.dominates ~by p

let test_dominates_basics () =
  let ab = Thelpers.colset [ "a"; "b" ] in
  (* strict sort prefix over the same concrete partitioning dominates *)
  Alcotest.(check bool)
    "strict prefix" true
    (dominates ~by:(hx [ "a"; "b" ] [ "x"; "y" ]) (hx [ "a"; "b" ] [ "x" ]));
  (* equal sorts: equal-cost candidates, neither side dominates *)
  Alcotest.(check bool)
    "equal sorts" false
    (dominates ~by:(hx [ "a"; "b" ] [ "x" ]) (hx [ "a"; "b" ] [ "x" ]));
  (* an unsorted candidate is the cheap baseline; never dropped *)
  Alcotest.(check bool)
    "empty dropped sort" false
    (dominates ~by:(hx [ "a"; "b" ] [ "x" ]) (hx [ "a"; "b" ] []));
  (* different partitionings are not interchangeable *)
  Alcotest.(check bool)
    "different partitioning" false
    (dominates ~by:(hx [ "a" ] [ "x"; "y" ]) (hx [ "a"; "b" ] [ "x" ]));
  (* non-prefix sorts are incomparable *)
  Alcotest.(check bool)
    "non-prefix sorts" false
    (dominates ~by:(hx [ "a" ] [ "y"; "x" ]) (hx [ "a" ] [ "x" ]));
  (* Any never participates on either side *)
  let any s = Reqprops.make Reqprops.Any (Sortorder.asc s) in
  Alcotest.(check bool)
    "Any dropped" false
    (dominates ~by:(any [ "x"; "y" ]) (any [ "x" ]));
  Alcotest.(check bool)
    "Any vs hash" false
    (dominates ~by:(hx [ "a" ] [ "x"; "y" ]) (any [ "x" ]));
  (* Serial pins are concrete and comparable *)
  let serial s = Reqprops.make Reqprops.Serial_req (Sortorder.asc s) in
  Alcotest.(check bool)
    "serial prefix" true
    (dominates ~by:(serial [ "x"; "y" ]) (serial [ "x" ]));
  ignore ab

let record_all h gid props = List.iter (Cse.History.record h gid) props

let props_t = Alcotest.testable Reqprops.pp Reqprops.equal

let test_candidates_filters_chain () =
  let h = Cse.History.create Cse.Config.default in
  let chain =
    [ hx [ "a" ] [ "x" ]; hx [ "a" ] [ "x"; "y" ]; hx [ "a" ] [ "x"; "y"; "z" ] ]
  in
  record_all h 7 chain;
  let kept, pairs = Cse.History.candidates h 7 in
  (* only the longest sort survives; both dropped candidates point at the
     kept transitive dominator, not at an intermediate dropped one *)
  Alcotest.(check (list props_t)) "kept" [ hx [ "a" ] [ "x"; "y"; "z" ] ] kept;
  Alcotest.(check int) "dropped" 2 (List.length pairs);
  List.iter
    (fun (_, by) ->
      Alcotest.(check props_t) "dominator kept" (hx [ "a" ] [ "x"; "y"; "z" ]) by)
    pairs

let test_candidates_edge_cases () =
  (* single-member class: nothing to prune *)
  let h = Cse.History.create Cse.Config.default in
  record_all h 1 [ hx [ "a" ] [ "x" ] ];
  let kept, pairs = Cse.History.candidates h 1 in
  Alcotest.(check int) "single kept" 1 (List.length kept);
  Alcotest.(check int) "single pairs" 0 (List.length pairs);
  (* unrecorded group: empty property set *)
  let kept, pairs = Cse.History.candidates h 99 in
  Alcotest.(check int) "empty kept" 0 (List.length kept);
  Alcotest.(check int) "empty pairs" 0 (List.length pairs);
  (* equal-cost incomparable candidates all survive *)
  record_all h 2
    [ hx [ "a" ] [ "x" ]; hx [ "b" ] [ "x" ]; hx [ "a" ] [ "y" ] ];
  let kept, pairs = Cse.History.candidates h 2 in
  Alcotest.(check int) "incomparable kept" 3 (List.length kept);
  Alcotest.(check int) "incomparable pairs" 0 (List.length pairs);
  (* the unsorted baseline candidate survives next to sorted ones *)
  record_all h 3 [ hx [ "a" ] []; hx [ "a" ] [ "x" ] ];
  let kept, _ = Cse.History.candidates h 3 in
  Alcotest.(check int) "baseline kept" 2 (List.length kept)

let test_candidates_disabled () =
  let h = Cse.History.create exhaustive in
  record_all h 5 [ hx [ "a" ] [ "x" ]; hx [ "a" ] [ "x"; "y" ] ];
  let kept, pairs = Cse.History.candidates h 5 in
  Alcotest.(check int) "all kept" 2 (List.length kept);
  Alcotest.(check int) "no pairs" 0 (List.length pairs)

let () =
  Alcotest.run "round-pruning"
    [
      ( "equivalence",
        [
          Alcotest.test_case "builtins pruned = exhaustive" `Quick
            test_builtins_equivalent;
          Alcotest.test_case "LS1 pruned = exhaustive" `Slow test_ls1_equivalent;
          Alcotest.test_case "LS2 pruned = exhaustive" `Slow test_ls2_equivalent;
          Alcotest.test_case "30 random scripts" `Slow test_random_equivalent;
          Alcotest.test_case "S4 actually prunes" `Quick test_s4_prunes;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "rounds partition the pruned space" `Quick
            test_round_accounting;
          Alcotest.test_case "no-prune counters stay zero" `Quick
            test_noprune_counters_zero;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "order basics" `Quick test_dominates_basics;
          Alcotest.test_case "chain collapses to kept dominator" `Quick
            test_candidates_filters_chain;
          Alcotest.test_case "edge cases" `Quick test_candidates_edge_cases;
          Alcotest.test_case "disabled filter keeps everything" `Quick
            test_candidates_disabled;
        ] );
    ]
