(* Property-based invariant tests over the core data structures: round
   enumeration, history expansion, expression evaluation, and the
   large-script plans (static validation + sharing structure). *)

open Sphys

let cs = Thelpers.colset

(* --- rounds: random class structures ------------------------------------- *)

let classes_gen =
  QCheck.Gen.(
    let props_gen = map (fun n -> n + 1) (int_bound 4) in
    let group_gen = props_gen in
    let class_gen = list_size (int_range 1 3) group_gen in
    list_size (int_range 1 3) class_gen)

(* materialize a class spec: groups get unique ids, [n] distinct props *)
let materialize spec =
  let gid = ref 0 in
  List.map
    (List.map (fun n ->
         incr gid;
         ( !gid,
           List.init n (fun i ->
               Reqprops.make
                 (Reqprops.Hash_exact (cs [ Printf.sprintf "c%d_%d" !gid i ]))
                 []) )))
    spec

let classes_arb =
  QCheck.make
    ~print:(fun spec ->
      String.concat ";"
        (List.map (fun c -> String.concat "," (List.map string_of_int c)) spec))
    classes_gen

let drain gen =
  let rec loop acc =
    match Cse.Rounds.next gen with
    | None -> List.rev acc
    | Some a ->
        Cse.Rounds.report gen ~cost:1.0;
        loop (a :: acc)
  in
  loop []

let prop_round_count =
  Thelpers.qtest ~count:200 "rounds = sequential_total" classes_arb (fun spec ->
      let classes = materialize spec in
      let gen = Cse.Rounds.create classes in
      List.length (drain gen) = Cse.Rounds.sequential_total classes)

let prop_rounds_complete =
  Thelpers.qtest ~count:200 "every round assigns every group" classes_arb
    (fun spec ->
      let classes = materialize spec in
      let all_groups =
        List.concat_map (List.map fst) classes |> List.sort Int.compare
      in
      let gen = Cse.Rounds.create classes in
      List.for_all
        (fun a -> List.sort Int.compare (List.map fst a) = all_groups)
        (drain gen))

let prop_rounds_distinct =
  Thelpers.qtest ~count:200 "no duplicate rounds" classes_arb (fun spec ->
      let classes = materialize spec in
      let gen = Cse.Rounds.create classes in
      let canon a =
        List.sort compare (List.map (fun (g, p) -> (g, Reqprops.to_key p)) a)
      in
      let rounds = List.map canon (drain gen) in
      List.length rounds = List.length (List.sort_uniq compare rounds))

let prop_sequential_le_naive =
  Thelpers.qtest ~count:200 "sequential <= naive" classes_arb (fun spec ->
      let classes = materialize spec in
      Cse.Rounds.sequential_total classes <= Cse.Rounds.naive_total classes)

(* --- history expansion ----------------------------------------------------- *)

let colset_gen =
  QCheck.Gen.(
    map
      (fun l -> Relalg.Colset.of_list l)
      (list_size (int_range 1 4) (oneofl [ "A"; "B"; "C"; "D" ])))

let colset_arb = QCheck.make ~print:Relalg.Colset.to_string colset_gen

let prop_expansion_count =
  Thelpers.qtest "range expands to 2^n - 1 entries" colset_arb (fun c ->
      let entries =
        Cse.History.expand Cse.Config.default
          (Reqprops.make (Reqprops.Hash_subset c) [])
      in
      List.length entries = (1 lsl Relalg.Colset.cardinal c) - 1)

let prop_expansion_sound =
  Thelpers.qtest "every expanded entry satisfies the range" colset_arb (fun c ->
      let entries =
        Cse.History.expand Cse.Config.default
          (Reqprops.make (Reqprops.Hash_subset c) [])
      in
      List.for_all
        (fun (e : Reqprops.t) ->
          match e.Reqprops.part with
          | Reqprops.Hash_exact s ->
              Reqprops.part_satisfied (Partition.Hashed s) (Reqprops.Hash_subset c)
          | _ -> false)
        entries)

(* --- expression evaluation -------------------------------------------------- *)

let expr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun c -> Relalg.Expr.Col c) (oneofl [ "A"; "B" ]);
              map (fun i -> Relalg.Expr.Lit (Relalg.Value.Int i)) small_int;
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map2 (fun a b -> Relalg.Expr.Binop (Relalg.Expr.Add, a, b)) sub sub;
              map2 (fun a b -> Relalg.Expr.Binop (Relalg.Expr.Mul, a, b)) sub sub;
              map2 (fun a b -> Relalg.Expr.Cmp (Relalg.Expr.Le, a, b)) sub sub;
              map2 (fun a b -> Relalg.Expr.And (a, b)) sub sub;
            ]))

let expr_arb = QCheck.make ~print:Relalg.Expr.to_string expr_gen

let schema_ab =
  [ Relalg.Schema.column "A" Relalg.Schema.Tint;
    Relalg.Schema.column "B" Relalg.Schema.Tint ]

let schema_xy =
  [ Relalg.Schema.column "X_A" Relalg.Schema.Tint;
    Relalg.Schema.column "X_B" Relalg.Schema.Tint ]

(* renaming columns and renaming the schema commute *)
let prop_rename_commutes =
  Thelpers.qtest ~count:300 "rename/eval commute"
    QCheck.(pair expr_arb (pair small_int small_int))
    (fun (e, (a, b)) ->
      let row = [| Relalg.Value.Int a; Relalg.Value.Int b |] in
      let renamed = Relalg.Expr.rename (fun c -> "X_" ^ c) e in
      Relalg.Value.equal
        (Relalg.Expr.eval schema_ab row e)
        (Relalg.Expr.eval schema_xy row renamed))

(* columns of an expression never grow under evaluation-preserving rename *)
let prop_columns_rename =
  Thelpers.qtest ~count:300 "columns track rename" expr_arb (fun e ->
      let renamed = Relalg.Expr.rename (fun c -> "X_" ^ c) e in
      Relalg.Colset.cardinal (Relalg.Expr.columns renamed)
      = Relalg.Colset.cardinal (Relalg.Expr.columns e))

(* --- large scripts through the full pipeline ------------------------------- *)

let ls_report spec =
  let script = Sworkload.Large_gen.generate spec in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files
    ~shared_rows:spec.Sworkload.Large_gen.shared_rows
    ~filler_rows:spec.Sworkload.Large_gen.filler_rows catalog script;
  let budget = Sopt.Budget.create ~max_seconds:30.0 () in
  Cse.Pipeline.run ~budget ~catalog script

let test_ls1_plan_valid () =
  let r = ls_report Sworkload.Large_gen.ls1_spec in
  Thelpers.assert_valid_plan "LS1 cse" r.Cse.Pipeline.cse_plan;
  Thelpers.assert_valid_plan "LS1 conv" r.Cse.Pipeline.conventional_plan;
  Alcotest.(check bool) "cse cheaper" true
    (r.Cse.Pipeline.cse_cost <= r.Cse.Pipeline.conventional_cost);
  let distinct, refs = Scost.Dagcost.spool_counts r.Cse.Pipeline.cse_plan in
  Alcotest.(check int) "all four shared groups materialized once" 4 distinct;
  Alcotest.(check int) "nine references (3x2 + 1x3)" 9 refs

let test_ls1_every_lca_found () =
  let r = ls_report Sworkload.Large_gen.ls1_spec in
  Alcotest.(check int) "four LCAs" 4 (List.length r.Cse.Pipeline.lcas)

let test_skew_model () =
  Alcotest.(check (float 0.01)) "few keys limit parallelism" 7.5
    (Scost.Costmodel.key_parallelism ~machines:10.0 30.0);
  Alcotest.(check (float 0.5)) "many keys reach full parallelism" 25.0
    (Scost.Costmodel.key_parallelism ~machines:25.0 1.0e6);
  Alcotest.(check (float 0.01)) "flat model ignores keys" 25.0
    (Scost.Costmodel.key_parallelism ~skew_aware:false ~machines:25.0 2.0);
  (* the skew-aware optimization still produces a valid, cheaper plan *)
  let flat = { Scost.Cluster.default with Scost.Cluster.skew_aware = false } in
  let r =
    Cse.Pipeline.run ~cluster:flat ~catalog:(Relalg.Catalog.default ())
      Sworkload.Paper_scripts.s1
  in
  Thelpers.assert_valid_plan "flat cluster" r.Cse.Pipeline.cse_plan;
  Alcotest.(check bool) "cse still cheaper" true
    (r.Cse.Pipeline.cse_cost <= r.Cse.Pipeline.conventional_cost)

let test_dot_export () =
  let r =
    Cse.Pipeline.run ~catalog:(Relalg.Catalog.default ())
      Sworkload.Paper_scripts.s1
  in
  let dot = Sphys.Plan_pp.to_dot r.Cse.Pipeline.cse_plan in
  Alcotest.(check bool) "digraph" true
    (Sutil.Strutil.starts_with ~prefix:"digraph" dot);
  (* the shared spool appears once as a node but is referenced twice *)
  let count_sub needle s =
    let n = String.length needle and m = String.length s in
    let rec go i acc =
      if i + n > m then acc
      else go (i + 1) (if String.sub s i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one spool node" 1 (count_sub "Spool" dot);
  (* edges = nodes - 1 + 1 extra reference to the shared spool *)
  let nodes = count_sub "label=" dot and edges = count_sub " -> " dot in
  Alcotest.(check int) "dag edge count" nodes edges

(* --- cached DAG costing ----------------------------------------------------- *)

(* The region summaries cached at construction ([Plan.sbase]/[Plan.srefs])
   must reproduce the walking deduplicated cost on every node of every
   final plan -- bit-for-bit on spool-free subplans, and up to float
   summation order (1e-9 relative) where spools reorder the sums. *)
let assert_cached_cost_agrees ~cluster name plan =
  let checked = ref 0 in
  Plan.fold
    (fun () (n : Plan.t) ->
      incr checked;
      let walked = Scost.Dagcost.cost cluster n in
      let cached = Scost.Dagcost.cached_cost cluster n in
      if n.Plan.srefs = [] && n.Plan.op <> Physop.P_spool then begin
        if cached <> walked then
          Alcotest.failf "%s: spool-free %s: cached %.17g, walked %.17g" name
            (Physop.short_name n.Plan.op) cached walked
      end
      else if
        Float.abs (cached -. walked)
        > 1e-9 *. Float.max 1.0 (Float.abs walked)
      then
        Alcotest.failf "%s: %s: cached %.17g, walked %.17g" name
          (Physop.short_name n.Plan.op) cached walked)
    () plan;
  Alcotest.(check bool) (name ^ ": visited nodes") true (!checked > 0)

let test_cached_cost_builtins () =
  let cluster = Scost.Cluster.with_machines 25 Scost.Cluster.default in
  List.iter
    (fun (name, script) ->
      let r =
        Cse.Pipeline.run ~cluster ~catalog:(Relalg.Catalog.default ()) script
      in
      assert_cached_cost_agrees ~cluster (name ^ " cse") r.Cse.Pipeline.cse_plan;
      assert_cached_cost_agrees ~cluster (name ^ " conv")
        r.Cse.Pipeline.conventional_plan)
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

let test_cached_cost_ls1 () =
  let cluster = Scost.Cluster.default in
  let r = ls_report Sworkload.Large_gen.ls1_spec in
  assert_cached_cost_agrees ~cluster "LS1 cse" r.Cse.Pipeline.cse_plan;
  assert_cached_cost_agrees ~cluster "LS1 conv" r.Cse.Pipeline.conventional_plan

(* --- requirement interning ------------------------------------------------- *)

(* A spread of distinct normalized extended requirements: every
   partitioning shape, several sort orders, and enforcement maps over a
   couple of group ids. *)
let distinct_extreqs () =
  let cs = Thelpers.colset in
  let parts =
    [
      Reqprops.Any;
      Reqprops.Serial_req;
      Reqprops.Hash_subset (cs [ "A" ]);
      Reqprops.Hash_subset (cs [ "A"; "B" ]);
      Reqprops.Hash_exact (cs [ "A" ]);
      Reqprops.Hash_exact (cs [ "B"; "C" ]);
    ]
  in
  let sorts =
    [
      [];
      [ ("A", Sortorder.Asc) ];
      [ ("A", Sortorder.Desc) ];
      [ ("B", Sortorder.Asc); ("C", Sortorder.Asc) ];
    ]
  in
  let reqs =
    List.concat_map
      (fun p -> List.map (fun s -> Reqprops.make p s) sorts)
      parts
  in
  let enforces =
    [
      [];
      [ (3, Reqprops.make (Reqprops.Hash_exact (cs [ "A" ])) []) ];
      [
        (3, Reqprops.make (Reqprops.Hash_exact (cs [ "A" ])) []);
        (7, Reqprops.make Reqprops.Serial_req [ ("A", Sortorder.Asc) ]);
      ];
    ]
  in
  List.concat_map
    (fun req ->
      List.map
        (fun enforce -> Sopt.Extreq.normalize { Sopt.Extreq.req; enforce })
        enforces)
    reqs

(* Interning is injective on distinct normalized requirements, stable on
   re-interning (including structurally-equal rebuilt values), and the
   reverse lookup round-trips. *)
let test_intern_ids () =
  let reqs = distinct_extreqs () in
  let ids = List.map Sopt.Intern.id reqs in
  Alcotest.(check int)
    "distinct requirements get distinct ids" (List.length reqs)
    (List.length (List.sort_uniq Int.compare ids));
  (* rebuilt structurally-equal values (fresh allocations) hit the same
     ids, in any order *)
  let again = List.map Sopt.Intern.id (List.rev (distinct_extreqs ())) in
  Alcotest.(check (list int)) "equal requirements share their id"
    (List.rev ids) again;
  List.iter2
    (fun r i ->
      match Sopt.Intern.lookup i with
      | Some r' ->
          Alcotest.(check bool) "lookup round-trips" true (r = r')
      | None -> Alcotest.fail "interned id has no reverse mapping")
    reqs ids;
  Alcotest.(check bool) "table covers the interned ids" true
    (Sopt.Intern.size () >= List.length reqs)

(* The per-run counter deltas surfaced in the pipeline report: every
   budget tick is mirrored in the optimizer.tasks counter, and winner /
   intern lookups are counted. *)
let test_report_counters () =
  let r =
    Cse.Pipeline.run
      ~catalog:(Relalg.Catalog.default ())
      Sworkload.Paper_scripts.s1
  in
  let get n =
    Option.value ~default:0 (List.assoc_opt n r.Cse.Pipeline.counters)
  in
  Alcotest.(check int) "tasks counter mirrors the budget ticks"
    (r.Cse.Pipeline.conventional_tasks + r.Cse.Pipeline.cse_tasks)
    (get "optimizer.tasks");
  Alcotest.(check bool) "winner hits counted" true
    (get "optimizer.winner_hits" > 0);
  Alcotest.(check bool) "winner misses mirror the tasks" true
    (get "optimizer.winner_misses" = get "optimizer.tasks");
  Alcotest.(check bool) "intern lookups counted" true (get "intern.hits" > 0)

(* An un-enforced and an enforced variant of the same conventional
   requirement must never share an id (rounds with different assignments
   must not reuse each other's winners). *)
let test_intern_enforcement_distinct () =
  let pinned =
    Reqprops.make (Reqprops.Hash_exact (Thelpers.colset [ "A" ])) []
  in
  let plain = Sopt.Extreq.plain Reqprops.none in
  let enforced =
    Sopt.Extreq.normalize
      { Sopt.Extreq.req = Reqprops.none; enforce = [ (3, pinned) ] }
  in
  Alcotest.(check bool) "enforcement map is part of the identity" true
    (Sopt.Intern.id plain <> Sopt.Intern.id enforced)

let test_consumer_sweep_monotone () =
  let reductions =
    List.map
      (fun k ->
        let catalog = Relalg.Catalog.default () in
        let r =
          Cse.Pipeline.run ~catalog (Sworkload.Sweeps.consumers_script ~k)
        in
        Cse.Pipeline.reduction_percent r)
      [ 1; 2; 3; 4 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "more consumers, more saving" true
    (increasing reductions);
  Alcotest.(check (float 0.01)) "k=1 has nothing to share" 0.0
    (List.hd reductions)

let () =
  Alcotest.run "invariants"
    [
      ( "rounds",
        [
          prop_round_count;
          prop_rounds_complete;
          prop_rounds_distinct;
          prop_sequential_le_naive;
        ] );
      ("history", [ prop_expansion_count; prop_expansion_sound ]);
      ("expressions", [ prop_rename_commutes; prop_columns_rename ]);
      ( "cost model",
        [
          Alcotest.test_case "skew parallelism" `Quick test_skew_model;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
      ( "cached costing",
        [
          Alcotest.test_case "builtins: cached = walked on every node" `Quick
            test_cached_cost_builtins;
          Alcotest.test_case "LS1: cached = walked on every node" `Slow
            test_cached_cost_ls1;
        ] );
      ( "interning",
        [
          Alcotest.test_case "distinct ids, stable re-intern" `Quick
            test_intern_ids;
          Alcotest.test_case "enforcement maps keep ids apart" `Quick
            test_intern_enforcement_distinct;
          Alcotest.test_case "report surfaces counter deltas" `Quick
            test_report_counters;
        ] );
      ( "large scripts",
        [
          Alcotest.test_case "LS1 plans" `Slow test_ls1_plan_valid;
          Alcotest.test_case "LS1 LCAs" `Slow test_ls1_every_lca_found;
          Alcotest.test_case "consumer sweep" `Slow test_consumer_sweep_monotone;
        ] );
    ]
