(* Observability-layer tests: trace recording, export and re-parsing,
   the well-formedness checker, the allocation-free disabled path, the
   drop-newest capacity policy, log-bucketed histograms, and stability
   of the traced pipeline across worker counts. *)

module T = Sobs.Trace
module H = Sobs.Hist
module M = Sobs.Metrics

(* --- trace recording and export ------------------------------------------ *)

let test_chrome_roundtrip () =
  T.start ();
  T.with_span ~pid:T.pid_phase1
    ~args:[ ("group", T.Int 7) ]
    "OptimizeGroup"
    (fun () ->
      T.instant ~pid:T.pid_phase1
        ~args:[ ("rule", T.Str "gb_split"); ("cost", T.Float 1.5) ]
        "rule.fired");
  T.stop ();
  let evs = T.collect () in
  Alcotest.(check (list string)) "well-formed" [] (T.check evs);
  Alcotest.(check int) "three events" 3 (List.length evs);
  let parsed = T.parse_chrome (T.chrome_string evs) in
  (* timestamps are serialized at microsecond precision; compare the
     rest of the event structurally *)
  let strip (e : T.event) = { e with T.ts = 0.0 } in
  Alcotest.(check bool) "round-trip preserves kind/name/pid/tid/args" true
    (List.map strip evs = List.map strip parsed);
  Alcotest.(check (list string)) "parsed trace well-formed" []
    (T.check parsed)

let mk kind name ts : T.event =
  { T.kind; name; pid = 1; tid = 0; ts; args = [] }

let test_check_violations () =
  let bad msg evs =
    Alcotest.(check bool) msg true (T.check evs <> [])
  in
  Alcotest.(check (list string)) "balanced trace passes" []
    (T.check [ mk T.Begin "a" 1.0; mk T.Instant "x" 1.5; mk T.End "a" 2.0 ]);
  bad "end without begin" [ mk T.End "a" 1.0 ];
  bad "unclosed span" [ mk T.Begin "a" 1.0 ];
  bad "name mismatch"
    [ mk T.Begin "a" 1.0; mk T.End "b" 2.0; mk T.End "a" 3.0 ];
  bad "timestamp going backwards"
    [ mk T.Begin "a" 2.0; mk T.End "a" 1.0 ];
  (* spans on distinct tids do not have to interleave in a stack *)
  let other = { (mk T.Begin "b" 1.5) with T.tid = 1 } in
  let other_end = { (mk T.End "b" 3.0) with T.tid = 1 } in
  Alcotest.(check (list string)) "per-tid stacks are independent" []
    (T.check
       [ mk T.Begin "a" 1.0; other; mk T.End "a" 2.0; other_end ])

let test_disabled_zero_alloc () =
  T.stop ();
  (* warm up once so any one-time initialization is out of the way *)
  T.begin_span ~pid:1 "warm";
  T.instant ~pid:1 "warm";
  T.end_span ~pid:1 "warm";
  let m0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    T.begin_span ~pid:1 "hot";
    T.instant ~pid:1 "hot";
    T.end_span ~pid:1 "hot"
  done;
  let m1 = Gc.minor_words () in
  (* 30k recording calls: even one word per call would show up as 30k;
     allow slack for the Gc.minor_words boxes themselves *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocation-free (%.0f minor words)"
       (m1 -. m0))
    true
    (m1 -. m0 < 256.0)

let test_drop_newest () =
  (* capacity is clamped to at least 1024 events per domain *)
  T.start ~capacity:16 ();
  for i = 1 to 1500 do
    T.instant ~pid:1 ~args:[ ("i", T.Int i) ] "tick"
  done;
  T.stop ();
  let evs = T.collect () in
  Alcotest.(check int) "kept exactly capacity" 1024 (List.length evs);
  Alcotest.(check int) "counted the overflow" 476 (T.dropped ());
  (match evs with
  | first :: _ ->
      Alcotest.(check bool) "drop-newest keeps the oldest event" true
        (List.assoc "i" first.T.args = T.Int 1)
  | [] -> Alcotest.fail "empty trace");
  (* a fresh generation starts clean *)
  T.start ();
  T.stop ();
  Alcotest.(check int) "new generation resets drops" 0 (T.dropped ());
  Alcotest.(check int) "new generation resets events" 0
    (List.length (T.collect ()))

(* --- ring mode (the flight recorder's window) ---------------------------- *)

let test_ring_overwrites_oldest () =
  (* same capacity clamp as drop-newest, opposite policy: the ring keeps
     the NEWEST window and overwrites the oldest *)
  T.start ~capacity:16 ~ring:true ();
  Alcotest.(check bool) "ring mode reported" true (T.ring ());
  for i = 1 to 1500 do
    T.instant ~pid:1 ~args:[ ("i", T.Int i) ] "tick"
  done;
  T.stop ();
  let evs = T.collect () in
  Alcotest.(check int) "kept exactly capacity" 1024 (List.length evs);
  Alcotest.(check int) "counted the overwrites" 476 (T.dropped ());
  (match (evs, List.rev evs) with
  | first :: _, last :: _ ->
      Alcotest.(check bool) "oldest kept event is the 477th" true
        (List.assoc "i" first.T.args = T.Int 477);
      Alcotest.(check bool) "newest event survives" true
        (List.assoc "i" last.T.args = T.Int 1500)
  | _ -> Alcotest.fail "empty trace");
  T.start ();
  T.stop ();
  Alcotest.(check bool) "plain start clears ring mode" false (T.ring ())

let test_ring_doc_roundtrip () =
  let evs = [ mk T.Begin "a" 1.0; mk T.End "a" 2.0 ] in
  let ring, parsed = T.parse_doc (T.chrome_string ~ring:true evs) in
  Alcotest.(check bool) "ring flag round-trips" true ring;
  Alcotest.(check int) "events round-trip" 2 (List.length parsed);
  let ring', _ = T.parse_doc (T.chrome_string evs) in
  Alcotest.(check bool) "plain traces parse as non-ring" false ring'

let test_ring_check_tolerance () =
  (* truncation artifacts of overwriting the oldest events: an End whose
     Begin was overwritten (it arrives at an empty stack) and a span
     still open when the dump was cut *)
  let truncated =
    [ mk T.End "a" 1.0; mk T.Begin "b" 2.0; mk T.End "b" 3.0;
      mk T.Begin "c" 4.0 ]
  in
  Alcotest.(check bool) "strict check rejects truncation" true
    (T.check truncated <> []);
  Alcotest.(check (list string)) "ring check tolerates truncation" []
    (T.check ~ring:true truncated);
  (* genuine violations stay violations under ring tolerance *)
  let bad msg evs =
    Alcotest.(check bool) msg true (T.check ~ring:true evs <> [])
  in
  bad "ring: name mismatch still flagged"
    [ mk T.Begin "a" 1.0; mk T.Begin "b" 2.0; mk T.End "a" 3.0;
      mk T.End "a" 4.0 ];
  bad "ring: backwards timestamps still flagged"
    [ mk T.Begin "a" 2.0; mk T.End "a" 1.0 ]

let test_epoch_scoping () =
  (* each start () opens a fresh epoch: collect returns only the new
     epoch's events, never residue from an earlier run in the same
     process — the contract the serve loop's per-batch traces rely on *)
  T.start ();
  let e1 = T.epoch () in
  T.instant ~pid:1 "first-run";
  T.instant ~pid:1 "first-run";
  T.stop ();
  Alcotest.(check int) "first epoch events" 2 (List.length (T.collect ()));
  T.start ();
  let e2 = T.epoch () in
  Alcotest.(check bool) "epoch advances" true (e2 > e1);
  T.instant ~pid:1 "second-run";
  T.stop ();
  let evs = T.collect () in
  Alcotest.(check int) "only this epoch's events" 1 (List.length evs);
  Alcotest.(check bool) "no stale event names" true
    (List.for_all (fun (e : T.event) -> e.T.name = "second-run") evs);
  (* timestamps restart with the epoch *)
  Alcotest.(check bool) "timestamps restart near zero" true
    (List.for_all (fun (e : T.event) -> e.T.ts < 1_000_000.0) evs)

let test_export_protected () =
  let evs = [ mk T.Begin "a" 1.0; mk T.End "a" 2.0 ] in
  let path = Filename.temp_file "scopecse-test-export" ".json" in
  T.export ~path evs;
  let parsed =
    In_channel.with_open_text path In_channel.input_all |> T.parse_chrome
  in
  Sys.remove path;
  Alcotest.(check int) "export round-trips" 2 (List.length parsed);
  (* a path that cannot be opened raises and must not leave a file *)
  let bad = Filename.concat (Filename.get_temp_dir_name ()) "no-such-dir" in
  let bad_path = Filename.concat bad "trace.json" in
  (match T.export ~path:bad_path evs with
  | () -> Alcotest.fail "export to missing directory succeeded"
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "no partial file left" false (Sys.file_exists bad_path)

(* --- traced pipeline: well-formed and stable across worker counts -------- *)

(* Run the full pipeline plus a staged execution under tracing and
   return the collected events.  The span structure (kind, phase, name)
   must not depend on the worker count: the wave scheduler promises the
   same logical schedule, and the optimizer runs on the main domain. *)
let traced_run workers =
  let catalog = Thelpers.default_catalog () in
  T.start ();
  let r =
    Thelpers.pipeline
      ~config:{ Cse.Config.default with Cse.Config.audit = false }
      ~catalog Sworkload.Paper_scripts.s2
  in
  let engine = Sexec.Engine.create ~workers ~machines:25 catalog in
  ignore (Sexec.Engine.run engine r.Cse.Pipeline.cse_plan);
  T.stop ();
  T.collect ()

let projection evs =
  List.map
    (fun (e : T.event) ->
      Printf.sprintf "%s|%d|%s"
        (match e.T.kind with
        | T.Begin -> "B"
        | T.End -> "E"
        | T.Instant -> "i")
        e.T.pid e.T.name)
    evs
  |> List.sort String.compare

let test_pipeline_trace_stability () =
  let base = traced_run 1 in
  Alcotest.(check (list string)) "workers=1 well-formed" [] (T.check base);
  let proj1 = projection base in
  Alcotest.(check bool) "has stage spans" true
    (List.mem "B|5|stage 0" proj1);
  Alcotest.(check bool) "has stage-graph span" true
    (List.mem "B|4|build stage graph" proj1);
  Alcotest.(check bool) "has phase-2 span" true (List.mem "B|3|phase 2" proj1);
  Alcotest.(check bool) "has optimizer group spans" true
    (List.mem "B|2|OptimizeGroup" proj1);
  List.iter
    (fun workers ->
      let evs = traced_run workers in
      Alcotest.(check (list string))
        (Printf.sprintf "workers=%d well-formed" workers)
        [] (T.check evs);
      Alcotest.(check (list string))
        (Printf.sprintf "workers=%d same span multiset as workers=1" workers)
        proj1 (projection evs))
    [ 2; 8 ]

(* --- histograms ----------------------------------------------------------- *)

let test_hist_quantiles () =
  H.reset_all ();
  let h = H.hist "test.quantiles" in
  List.iter (H.observe h) [ 0.5; 1.0; 4.0 ];
  let s = H.summarize h in
  Alcotest.(check int) "count" 3 s.H.count;
  Alcotest.(check (float 1e-9)) "sum" 5.5 s.H.sum;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.H.max;
  (* p50 is the upper bound of the median bucket [1,2) *)
  Alcotest.(check (float 1e-9)) "p50" 2.0 s.H.p50;
  (* p90 lands in the [4,8) bucket, clamped to the observed max *)
  Alcotest.(check (float 1e-9)) "p90" 4.0 s.H.p90;
  Alcotest.(check bool) "bucket upper bounds" true
    (List.map fst s.H.buckets = [ 1.0; 2.0; 8.0 ])

let test_hist_low_bucket () =
  H.reset_all ();
  let h = H.hist "test.lowbucket" in
  H.observe h 0.0;
  H.observe h (-1.0);
  let s = H.summarize h in
  Alcotest.(check int) "zero and negatives counted" 2 s.H.count;
  Alcotest.(check bool) "both in the lowest bucket" true
    (s.H.buckets = [ (Float.ldexp 1.0 (-40), 2) ]);
  Alcotest.(check (float 1e-9)) "max clamps to zero" 0.0 s.H.max

let test_hist_hammer () =
  H.reset_all ();
  let h = H.hist "test.hammer" in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              H.observe h 1.0
            done))
  in
  List.iter Domain.join ds;
  let s = H.summarize h in
  Alcotest.(check int) "no lost increments" 40_000 s.H.count;
  Alcotest.(check (float 1e-6)) "no lost sum" 40_000.0 s.H.sum;
  Alcotest.(check (float 1e-9)) "max" 1.0 s.H.max

let test_hist_snapshot_reset () =
  H.reset_all ();
  let b = H.hist "test.snap.b" in
  let a = H.hist "test.snap.a" in
  H.observe b 1.0;
  H.observe a 2.0;
  let names = List.map fst (H.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted by name" true
    (names = List.sort String.compare names);
  Alcotest.(check bool) "both histograms present" true
    (List.mem "test.snap.a" names && List.mem "test.snap.b" names);
  H.reset_all ();
  Alcotest.(check (list string)) "reset empties the snapshot" []
    (List.map fst (H.snapshot ()))

(* Quantiles must be well-defined at 0 and 1 observations: an empty
   histogram reads as all zeros (never NaN or a bucket bound), and a
   single observation reports itself as every quantile — the
   log-bucket upper bound is clamped to the exact extremes. *)
let test_hist_empty_summary () =
  let h = H.make "test.empty" in
  let s = H.summarize h in
  Alcotest.(check int) "count" 0 s.H.count;
  Alcotest.(check (float 0.0)) "sum" 0.0 s.H.sum;
  Alcotest.(check (float 0.0)) "p50" 0.0 s.H.p50;
  Alcotest.(check (float 0.0)) "p90" 0.0 s.H.p90;
  Alcotest.(check (float 0.0)) "min" 0.0 s.H.min;
  Alcotest.(check (float 0.0)) "max" 0.0 s.H.max;
  Alcotest.(check bool) "no buckets" true (s.H.buckets = [])

let test_hist_single_observation () =
  let h = H.make "test.single" in
  H.observe h 3.0;
  let s = H.summarize h in
  Alcotest.(check int) "count" 1 s.H.count;
  (* without clamping the [2,4) log bucket would report 4.0 *)
  Alcotest.(check (float 0.0)) "p50 is the observation" 3.0 s.H.p50;
  Alcotest.(check (float 0.0)) "p90 is the observation" 3.0 s.H.p90;
  Alcotest.(check (float 0.0)) "min" 3.0 s.H.min;
  Alcotest.(check (float 0.0)) "max" 3.0 s.H.max

let test_hist_quantiles_within_extremes () =
  let h = H.make "test.extremes" in
  List.iter (H.observe h) [ 3.0; 3.5; 3.7 ];
  let s = H.summarize h in
  Alcotest.(check bool) "p50 within [min,max]" true
    (s.H.min <= s.H.p50 && s.H.p50 <= s.H.max);
  Alcotest.(check bool) "p90 within [min,max]" true
    (s.H.min <= s.H.p90 && s.H.p90 <= s.H.max);
  (* non-finite observations are clamped to zero, not poisoning the
     extremes *)
  H.observe h Float.nan;
  let s = H.summarize h in
  Alcotest.(check int) "nan counted" 4 s.H.count;
  Alcotest.(check (float 0.0)) "nan clamps to zero min" 0.0 s.H.min;
  Alcotest.(check bool) "max unchanged" true (s.H.max = 3.7)

(* --- the metrics registry ------------------------------------------------- *)

let test_metrics_counter_gauge () =
  let m = M.create () in
  M.bump m "req.total";
  M.bump m ~by:4 "req.total";
  Alcotest.(check int) "counter reads" 5 (M.get m "req.total");
  Alcotest.(check int) "absent counter reads zero" 0 (M.get m "req.other");
  M.set m "queue.depth" 7.5;
  M.set m "queue.depth" 3.0;
  (match M.snapshot m with
  | [ g; c ] ->
      Alcotest.(check string) "sorted by name" "queue.depth" g.M.name;
      Alcotest.(check bool) "gauge keeps last value" true
        (g.M.value = M.Value 3.0);
      Alcotest.(check bool) "counter row" true (c.M.value = M.Count 5)
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  M.reset m;
  Alcotest.(check int) "reset zeroes counters" 0 (M.get m "req.total");
  Alcotest.(check int) "reset keeps series registered" 2
    (List.length (M.snapshot m))

let test_metrics_labels_normalized () =
  let m = M.create () in
  M.bump m ~labels:[ ("b", "2"); ("a", "1") ] "x";
  M.bump m ~labels:[ ("a", "1"); ("b", "2") ] "x";
  Alcotest.(check int) "label order does not split the series" 2
    (M.get m ~labels:[ ("b", "2"); ("a", "1") ] "x");
  Alcotest.(check int) "one row" 1 (List.length (M.snapshot m));
  Alcotest.(check string) "full name renders sorted" "x{a=1,b=2}"
    (M.full_name "x" [ ("b", "2"); ("a", "1") ])

let test_metrics_kind_mismatch () =
  let m = M.create () in
  M.bump m "strict.kind";
  (match M.set m "strict.kind" 1.0 with
  | () -> Alcotest.fail "gauge write to a counter series succeeded"
  | exception Invalid_argument _ -> ());
  (match M.observe m "strict.kind" 1.0 with
  | () -> Alcotest.fail "histogram write to a counter series succeeded"
  | exception Invalid_argument _ -> ())

let test_metrics_histogram_and_exposition () =
  let m = M.create () in
  M.observe m ~labels:[ ("path", "hit") ] "lat" 1.0;
  M.observe m ~labels:[ ("path", "hit") ] "lat" 2.0;
  M.bump m ~labels:[ ("tenant", "blue") ] "served";
  let rows = M.snapshot m in
  let prom = M.to_prom rows in
  let has needle =
    let nl = String.length needle and pl = String.length prom in
    let rec at i =
      i + nl <= pl && (String.sub prom i nl = needle || at (i + 1))
    in
    at 0
  in
  Alcotest.(check bool) "prom histogram count sample" true
    (has "lat_count{path=\"hit\"} 2");
  Alcotest.(check bool) "prom quantile sample" true
    (has "lat{path=\"hit\",quantile=\"0.5\"}");
  Alcotest.(check bool) "prom counter sample" true
    (has "served{tenant=\"blue\"} 1");
  match M.to_json rows with
  | Sobs.Json.Arr objs ->
      Alcotest.(check int) "json row per series" 2 (List.length objs)
  | _ -> Alcotest.fail "to_json is not an array"

let test_metrics_hammer () =
  (* after get-or-create, recording is lock-free: hammer one counter and
     one histogram from 4 domains and lose nothing *)
  let m = M.create () in
  let c = M.counter m "hammer.count" in
  let h = M.histogram m "hammer.lat" in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Atomic.incr c;
              H.observe h 1.0
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost counter increments" 40_000
    (M.get m "hammer.count");
  Alcotest.(check int) "no lost observations" 40_000 (H.summarize h).H.count

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "checker violations" `Quick test_check_violations;
          Alcotest.test_case "disabled path zero-alloc" `Quick
            test_disabled_zero_alloc;
          Alcotest.test_case "drop-newest at capacity" `Quick test_drop_newest;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
          Alcotest.test_case "ring flag round-trips" `Quick
            test_ring_doc_roundtrip;
          Alcotest.test_case "ring check tolerance" `Quick
            test_ring_check_tolerance;
          Alcotest.test_case "epoch scoping across runs" `Quick
            test_epoch_scoping;
          Alcotest.test_case "export is failure-protected" `Quick
            test_export_protected;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "trace stable across workers 1/2/8" `Slow
            test_pipeline_trace_stability;
        ] );
      ( "hist",
        [
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "zero and negative bucket" `Quick
            test_hist_low_bucket;
          Alcotest.test_case "4-domain hammer" `Quick test_hist_hammer;
          Alcotest.test_case "snapshot and reset" `Quick
            test_hist_snapshot_reset;
          Alcotest.test_case "empty summary well-defined" `Quick
            test_hist_empty_summary;
          Alcotest.test_case "single observation quantiles" `Quick
            test_hist_single_observation;
          Alcotest.test_case "quantiles within extremes" `Quick
            test_hist_quantiles_within_extremes;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_metrics_counter_gauge;
          Alcotest.test_case "label normalization" `Quick
            test_metrics_labels_normalized;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_metrics_kind_mismatch;
          Alcotest.test_case "histograms and exposition" `Quick
            test_metrics_histogram_and_exposition;
          Alcotest.test_case "4-domain hammer" `Quick test_metrics_hammer;
        ] );
    ]
