(* The static-analysis layer (lib/analysis).

   Positive coverage: the full audit — including the deep cross-layer
   SA05x passes — is clean on every builtin workload (S1-S4, IND, LS1,
   LS2) at several machine counts and on 25 random scripts.
   Negative coverage: every SA0xx diagnostic is exercised at least once by
   hand-corrupting a memo, a logical DAG or a plan and asserting that the
   responsible analyzer reports exactly that code. *)

open Sphys

let has code diags =
  List.exists (fun (d : Sanalysis.Diag.t) -> d.Sanalysis.Diag.code = code) diags

let assert_code code diags =
  if not (has code diags) then
    Alcotest.failf "expected %s, got:\n%s" code
      (Fmt.str "%a" Sanalysis.Diag.pp_report diags)

let assert_not_code code diags =
  if has code diags then
    Alcotest.failf "unexpected %s:\n%s" code
      (Fmt.str "%a" Sanalysis.Diag.pp_report diags)

(* Pipeline run over the default catalog without the Thelpers auto-audit
   (the corruption tests audit explicitly after tampering). *)
let raw_report ?(machines = 25) script =
  let catalog = Thelpers.default_catalog () in
  let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
  let r = Cse.Pipeline.run ~cluster ~catalog script in
  (catalog, cluster, r)

(* --- positive: builtins audit clean at several machine counts ----------- *)

let audit_clean ~machines name script catalog =
  let cluster = Scost.Cluster.with_machines machines Scost.Cluster.default in
  let r = Cse.Pipeline.run ~cluster ~catalog script in
  let diags = Sanalysis.Audit.report ~deep:true ~cluster ~catalog r in
  match Sanalysis.Diag.errors diags with
  | [] -> ()
  | _ ->
      Alcotest.failf "%s (machines=%d): audit errors:\n%s" name machines
        (Fmt.str "%a" Sanalysis.Diag.pp_report diags)

let test_builtins_clean () =
  List.iter
    (fun machines ->
      List.iter
        (fun (name, script) ->
          audit_clean ~machines name script (Thelpers.default_catalog ()))
        (Sworkload.Paper_scripts.all
        @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ]))
    [ 4; 25 ]

let large_clean name spec =
  let script = Sworkload.Large_gen.generate spec in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files
    ~shared_rows:spec.Sworkload.Large_gen.shared_rows
    ~filler_rows:spec.Sworkload.Large_gen.filler_rows catalog script;
  audit_clean ~machines:25 name script catalog

let test_ls1_clean () = large_clean "LS1" Sworkload.Large_gen.ls1_spec
let test_ls2_clean () = large_clean "LS2" Sworkload.Large_gen.ls2_spec

let test_random_clean () =
  for seed = 1 to 25 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:8 () in
    let catalog = Sworkload.Random_gen.catalog () in
    audit_clean ~machines:7 (Printf.sprintf "random seed %d" seed) script catalog
  done

(* --- negative: memo auditor --------------------------------------------- *)

(* SA001: a spool expression rewritten to reference its own group. *)
let test_sa001_cycle () =
  let _, cluster, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let spool =
    (List.hd r.Cse.Pipeline.shared).Cse.Spool.spool
  in
  let g = Smemo.Memo.group memo spool in
  Smemo.Memo.set_exprs memo g
    [ { Smemo.Memo.mop = Slogical.Logop.Spool; children = [ spool ] } ];
  let diags = Sanalysis.Memo_audit.run ~cluster memo in
  assert_code "SA001" diags

(* SA002: an expression whose arity does not match its operator. *)
let test_sa002_schema () =
  let _, cluster, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let root = Smemo.Memo.root_group memo in
  let child = List.hd (Smemo.Memo.group_children root) in
  Smemo.Memo.set_exprs memo root
    (Smemo.Memo.exprs root
    @ [ { Smemo.Memo.mop = Slogical.Logop.Union_all; children = [ child ] } ]);
  let diags = Sanalysis.Memo_audit.run ~cluster memo in
  assert_code "SA002" diags

(* Find a winner with a plan in the group, with its table key. *)
let some_winner (g : Smemo.Memo.group) =
  Hashtbl.fold
    (fun k (w : Smemo.Memo.winner) acc ->
      match (acc, w.Smemo.Memo.wplan) with
      | None, Some p -> Some (k, w, p)
      | _ -> acc)
    g.Smemo.Memo.winners None
  |> Option.get

(* SA003: a memoized winner whose op_cost does not reproduce. *)
let test_sa003_wrong_cost () =
  let _, cluster, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let root = Smemo.Memo.root_group memo in
  let key, w, p = some_winner root in
  Hashtbl.replace root.Smemo.Memo.winners key
    { w with Smemo.Memo.wplan = Some { p with Plan.op_cost = p.Plan.op_cost +. 1.0e6 } };
  let diags = Sanalysis.Memo_audit.run ~cluster memo in
  assert_code "SA003" diags

(* SA004: a winner whose recorded delivered properties are wrong. *)
let test_sa004_invalid_plan () =
  let _, cluster, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let root = Smemo.Memo.root_group memo in
  let key, w, p = some_winner root in
  let corrupt =
    { p with Plan.props = { p.Plan.props with Props.sort = [ ("__corrupt", Sortorder.Desc) ] } }
  in
  Hashtbl.replace root.Smemo.Memo.winners key
    { w with Smemo.Memo.wplan = Some corrupt };
  let diags = Sanalysis.Memo_audit.run ~cluster memo in
  assert_code "SA004" diags

(* SA005: a winner that does not satisfy its recorded requirement. *)
let test_sa005_unsatisfied_req () =
  let _, cluster, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let root = Smemo.Memo.root_group memo in
  let key, w, _ = some_winner root in
  Hashtbl.replace root.Smemo.Memo.winners key
    {
      w with
      Smemo.Memo.wreq =
        Reqprops.make (Reqprops.Hash_exact (Thelpers.colset [ "__nope" ])) [];
    };
  let diags = Sanalysis.Memo_audit.run ~cluster memo in
  assert_code "SA005" diags

(* SA006: an infeasibility marker next to a feasible winner for the same
   requirement space. *)
let test_sa006_contradicted_infeasible () =
  let _, cluster, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let root = Smemo.Memo.root_group memo in
  let _, w, _ = some_winner root in
  Hashtbl.replace root.Smemo.Memo.winners (-1)
    {
      Smemo.Memo.wphase = w.Smemo.Memo.wphase;
      wreq = Reqprops.none;
      wenforce = w.Smemo.Memo.wenforce;
      wplan = None;
    };
  let diags = Sanalysis.Memo_audit.run ~cluster memo in
  assert_code "SA006" diags

(* SA007: a winner rooted at a different group. *)
let test_sa007_wrong_group () =
  let _, cluster, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let root = Smemo.Memo.root_group memo in
  let key, w, p = some_winner root in
  Hashtbl.replace root.Smemo.Memo.winners key
    { w with Smemo.Memo.wplan = Some { p with Plan.group = p.Plan.group + 1 } };
  let diags = Sanalysis.Memo_audit.run ~cluster memo in
  assert_code "SA007" diags

(* --- negative: sharing auditor ------------------------------------------ *)

(* SA010: a non-spool group marked shared. *)
let test_sa010_shared_not_spool () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let under = (List.hd r.Cse.Pipeline.shared).Cse.Spool.under in
  (Smemo.Memo.group memo under).Smemo.Memo.shared <- true;
  let diags = Sanalysis.Sharing_audit.run memo in
  assert_code "SA010" diags

(* SA011: a shared spool left with a single consumer. *)
let test_sa011_single_consumer () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let s = List.hd r.Cse.Pipeline.shared in
  let spool = s.Cse.Spool.spool and under = s.Cse.Spool.under in
  let rewire consumer =
    let cg = Smemo.Memo.group memo consumer in
    Smemo.Memo.set_exprs memo cg
      (List.map
         (fun (e : Smemo.Memo.mexpr) ->
           {
             e with
             Smemo.Memo.children =
               List.map
                 (fun c -> if c = spool then under else c)
                 e.Smemo.Memo.children;
           })
         (Smemo.Memo.exprs cg))
  in
  (* leave exactly one consumer pointing at the spool *)
  (match (Smemo.Memo.parents memo).(spool) with
  | [] -> Alcotest.fail "spool has no consumers"
  | _keep :: rest -> List.iter rewire rest);
  let diags = Sanalysis.Sharing_audit.run memo in
  assert_code "SA011" diags

(* SA012: empty and duplicated candidate property sets. *)
let test_sa012_candidates () =
  let diags = Sanalysis.Sharing_audit.candidates_diags ~shared:7 [] in
  assert_code "SA012" diags;
  let p = Reqprops.make (Reqprops.Hash_exact (Thelpers.colset [ "B" ])) [] in
  let diags = Sanalysis.Sharing_audit.candidates_diags ~shared:7 [ p; p ] in
  assert_code "SA012" diags;
  let q = Reqprops.make (Reqprops.Hash_exact (Thelpers.colset [ "C" ])) [] in
  Alcotest.(check int)
    "distinct candidates are clean" 0
    (List.length (Sanalysis.Sharing_audit.candidates_diags ~shared:7 [ p; q ]))

(* Locate a node in a plan by operator predicate. *)
let find_node pred plan =
  Plan.fold (fun acc n -> match acc with Some _ -> acc | None -> if pred n then Some n else None) None plan

let spool_node plan =
  match
    find_node (fun n -> match n.Plan.op with Physop.P_spool -> true | _ -> false) plan
  with
  | Some s -> s
  | None -> Alcotest.fail "no spool in the CSE plan"

(* SA013: two distinct materializations of one shared group. *)
let test_sa013_double_spool () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let s = spool_node r.Cse.Pipeline.cse_plan in
  let clone = { s with Plan.op_cost = s.Plan.op_cost } in
  let plan =
    Plan.make ~op:Physop.P_sequence ~children:[ s; clone ] ~group:(-1)
      ~schema:s.Plan.schema ~stats:s.Plan.stats ~op_cost:0.0
  in
  let diags = Sanalysis.Sharing_audit.plan_diags ~memo plan in
  assert_code "SA013" diags;
  (* the uncorrupted plan is clean *)
  assert_not_code "SA013"
    (Sanalysis.Sharing_audit.plan_diags ~memo r.Cse.Pipeline.cse_plan)

(* SA014: a plan spooling a group that is not marked shared. *)
let test_sa014_unmarked_spool () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let memo = r.Cse.Pipeline.memo in
  let under = (List.hd r.Cse.Pipeline.shared).Cse.Spool.under in
  let s = spool_node r.Cse.Pipeline.cse_plan in
  let diags =
    Sanalysis.Sharing_audit.plan_diags ~memo { s with Plan.group = under }
  in
  assert_code "SA014" diags

(* Found by running the audit over the suite: with the budget exhausted
   before any phase-2 round, the CSE plan falls back to the phase-1 shape
   and materializes a shared group once per distinct property requirement.
   That is the documented Figure 8(a) degradation, reported as an SA013
   warning -- not an error -- when the report says the budget ran out. *)
let test_sa013_budget_truncated () =
  let catalog = Thelpers.default_catalog () in
  let budget = Sopt.Budget.create ~max_tasks:1 () in
  let r = Cse.Pipeline.run ~budget ~catalog Sworkload.Paper_scripts.s4 in
  Alcotest.(check bool) "budget exhausted" true r.Cse.Pipeline.budget_exhausted;
  let memo = r.Cse.Pipeline.memo in
  let strictly = Sanalysis.Sharing_audit.plan_diags ~memo r.Cse.Pipeline.cse_plan in
  assert_code "SA013" strictly;
  let degraded =
    Sanalysis.Sharing_audit.plan_diags ~degraded:true ~memo r.Cse.Pipeline.cse_plan
  in
  assert_code "SA013" degraded;
  Alcotest.(check int) "degraded SA013 is a warning" 0
    (List.length (Sanalysis.Diag.errors degraded));
  (* the full audit therefore passes on a budget-truncated report *)
  Sanalysis.Audit.assert_clean ~cluster:Scost.Cluster.default ~catalog r

(* --- negative: round-pruning audit --------------------------------------- *)

(* SA060: each way a recorded (dropped, dominator) pair can fail the
   dominance re-verification. *)
let test_sa060_unsound_prune () =
  let hx cols sort =
    Reqprops.make
      (Reqprops.Hash_exact (Thelpers.colset cols))
      (Sortorder.asc sort)
  in
  let sound_by = hx [ "A" ] [ "x"; "y" ] in
  let sound_p = hx [ "A" ] [ "x" ] in
  let pd ~kept pair = Sanalysis.Prune_audit.pair_diags ~shared:7 ~kept pair in
  (* a genuinely dominated pair with the dominator kept is clean *)
  Alcotest.(check int)
    "sound pair" 0
    (List.length (pd ~kept:[ sound_by ] (sound_p, sound_by)));
  (* partitionings differ *)
  assert_code "SA060" (pd ~kept:[ sound_by ] (hx [ "B" ] [ "x" ], sound_by));
  (* Any on either side is unconstrained, never comparable *)
  let any = Reqprops.make Reqprops.Any (Sortorder.asc [ "x" ]) in
  assert_code "SA060" (pd ~kept:[ any ] (any, any));
  (* empty dropped sort: the cheap baseline must never be pruned *)
  assert_code "SA060" (pd ~kept:[ sound_by ] (hx [ "A" ] [], sound_by));
  (* dropped sort not a prefix of the dominator's *)
  assert_code "SA060" (pd ~kept:[ sound_by ] (hx [ "A" ] [ "z" ], sound_by));
  (* equal sorts: a duplicate, not a dominated candidate *)
  assert_code "SA060" (pd ~kept:[ sound_p ] (sound_p, sound_p));
  (* dominator itself was dropped: the covering round never ran *)
  assert_code "SA060" (pd ~kept:[] (sound_p, sound_by));
  (* dropped candidate still generated rounds *)
  assert_code "SA060"
    (pd ~kept:[ sound_by; sound_p ] (sound_p, sound_by));
  (* Prune_audit.run threads the kept candidates per group *)
  let diags =
    Sanalysis.Prune_audit.run
      ~candidates:[ (7, [ sound_by ]) ]
      [ (7, [ (sound_p, sound_by) ]); (9, [ (sound_p, sound_by) ]) ]
  in
  (* group 9 has no kept list recorded: its dominator cannot be kept *)
  assert_code "SA060" diags;
  Alcotest.(check int) "only group 9 fires" 1 (List.length diags)

(* --- negative: logical-DAG lint ------------------------------------------ *)

(* SA020: a filter over a column its child does not produce. *)
let test_sa020_dangling_column () =
  let b = Slogical.Dag.builder () in
  let schema = [ Relalg.Schema.column "A" Relalg.Schema.Tint ] in
  let ex =
    Slogical.Dag.add b
      (Slogical.Logop.Extract { file = "test.log"; extractor = "LogExtractor"; schema })
      [] []
  in
  let flt =
    Slogical.Dag.add b
      (Slogical.Logop.Filter
         {
           pred =
             Relalg.Expr.Cmp
               ( Relalg.Expr.Le,
                 Relalg.Expr.Col "MISSING",
                 Relalg.Expr.Lit (Relalg.Value.Int 1) );
         })
      [ ex.Slogical.Dag.id ] [ schema ]
  in
  let dag = Slogical.Dag.finish b ~root:flt in
  let diags =
    Sanalysis.Logical_audit.run ~catalog:(Relalg.Catalog.default ()) ~machines:25
      dag
  in
  assert_code "SA020" diags

(* SA021 / SA022: statistics sanity. *)
let test_sa021_bad_stats () =
  let loc = Sanalysis.Diag.Node 3 in
  let bad =
    {
      Slogical.Stats.rows = -5.0;
      row_bytes = Float.nan;
      ndvs = [ ("A", Float.nan) ];
    }
  in
  let diags = Sanalysis.Logical_audit.stats_diags ~loc bad in
  assert_code "SA021" diags;
  Alcotest.(check int) "three findings" 3 (List.length diags)

let test_sa022_ndv_exceeds_rows () =
  let loc = Sanalysis.Diag.Node 3 in
  let sus =
    { Slogical.Stats.rows = 10.0; row_bytes = 8.0; ndvs = [ ("A", 1000.0) ] }
  in
  let diags = Sanalysis.Logical_audit.stats_diags ~loc sus in
  assert_code "SA022" diags;
  assert_not_code "SA021" diags

(* --- negative: plan-DAG lint --------------------------------------------- *)

(* SA030: a node whose recorded delivered properties do not rederive. *)
let test_sa030_bad_props () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let p = r.Cse.Pipeline.conventional_plan in
  let corrupt =
    { p with Plan.props = { p.Plan.props with Props.sort = [ ("__x", Sortorder.Asc) ] } }
  in
  assert_code "SA030" (Sanalysis.Plan_audit.run corrupt);
  assert_not_code "SA030" (Sanalysis.Plan_audit.run p)

(* SA031: non-additive recorded cost. *)
let test_sa031_bad_total () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let p = r.Cse.Pipeline.conventional_plan in
  assert_code "SA031"
    (Sanalysis.Plan_audit.run { p with Plan.cost = (p.Plan.cost *. 2.0) +. 1.0 })

(* SA032: negative operator cost. *)
let test_sa032_negative_cost () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let p = r.Cse.Pipeline.conventional_plan in
  assert_code "SA032" (Sanalysis.Plan_audit.run { p with Plan.op_cost = -5.0 })

(* SA033: a spool with no memo group id. *)
let test_sa033_anonymous_spool () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let s = spool_node r.Cse.Pipeline.cse_plan in
  assert_code "SA033" (Sanalysis.Plan_audit.run { s with Plan.group = -1 })

(* SA034: cached region summaries that do not reproduce. *)
let test_sa034_stale_region_cache () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let conv = r.Cse.Pipeline.conventional_plan in
  assert_code "SA034"
    (Sanalysis.Plan_audit.run { conv with Plan.sbase = conv.Plan.sbase +. 1.0e6 });
  let cse = r.Cse.Pipeline.cse_plan in
  assert_code "SA034" (Sanalysis.Plan_audit.run { cse with Plan.srefs = [] });
  (* uncorrupted plans are clean *)
  assert_not_code "SA034" (Sanalysis.Plan_audit.run conv);
  assert_not_code "SA034" (Sanalysis.Plan_audit.run cse)

(* --- negative: stage-graph audit ----------------------------------------- *)

(* SA040: a graph whose sink is not the last stage. *)
let test_sa040_not_topological () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let plan = r.Cse.Pipeline.cse_plan in
  let g = Sexec.Stage.build plan in
  Alcotest.(check bool) "several stages" true (Sexec.Stage.size g > 1);
  let bad = { g with Sexec.Stage.sink = 0 } in
  assert_code "SA040" (Sanalysis.Stage_audit.check_graph plan bad);
  assert_not_code "SA040" (Sanalysis.Stage_audit.run plan)

(* SA041: a stage whose recorded dependencies vanish. *)
let test_sa041_divergent_deps () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let plan = r.Cse.Pipeline.cse_plan in
  let g = Sexec.Stage.build plan in
  let stages =
    Array.map
      (fun (st : Sexec.Stage.stage) ->
        if st.Sexec.Stage.deps = [] then st
        else { st with Sexec.Stage.deps = [] })
      g.Sexec.Stage.stages
  in
  assert_code "SA041"
    (Sanalysis.Stage_audit.check_graph plan { g with Sexec.Stage.stages });
  assert_not_code "SA041" (Sanalysis.Stage_audit.run plan)

(* SA042: the conventional baseline shares winner subplans physically, so
   auditing it under CSE expectations warns; under its own expectations it
   is clean. *)
let test_sa042_unspooled_sharing () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let conv = r.Cse.Pipeline.conventional_plan in
  assert_code "SA042"
    (Sanalysis.Stage_audit.run ~expect_spooled_sharing:true conv);
  assert_not_code "SA042"
    (Sanalysis.Stage_audit.run ~expect_spooled_sharing:false conv)

(* SA043: declaring an interior stage the sink makes the true sink's
   OUTPUT/SEQUENCE interior illegal. *)
let test_sa043_output_outside_sink () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let plan = r.Cse.Pipeline.cse_plan in
  let g = Sexec.Stage.build plan in
  let bad = { g with Sexec.Stage.sink = 0 } in
  assert_code "SA043" (Sanalysis.Stage_audit.check_graph plan bad);
  assert_not_code "SA043" (Sanalysis.Stage_audit.run plan)

(* SA044: severing the sink's dependencies strands every upstream stage —
   unreachable stages would break the scheduler's sink-runs-last-and-alone
   invariant. *)
let test_sa044_unreachable_stage () =
  let _, _, r = raw_report Sworkload.Paper_scripts.s1 in
  let plan = r.Cse.Pipeline.cse_plan in
  let g = Sexec.Stage.build plan in
  let stages =
    Array.map
      (fun (st : Sexec.Stage.stage) ->
        if st.Sexec.Stage.id = g.Sexec.Stage.sink then
          { st with Sexec.Stage.deps = [] }
        else st)
      g.Sexec.Stage.stages
  in
  assert_code "SA044"
    (Sanalysis.Stage_audit.check_graph plan { g with Sexec.Stage.stages });
  assert_not_code "SA044" (Sanalysis.Stage_audit.run plan)

(* --- trace audit (SA045) -------------------------------------------------- *)

(* A synthetic execution-stage span as the scheduler records it. *)
let stage_span ?(attempt = 1) sid : Sobs.Trace.event =
  {
    Sobs.Trace.kind = Sobs.Trace.Begin;
    name = Printf.sprintf "stage %d" sid;
    pid = Sobs.Trace.pid_exec;
    tid = 1;
    ts = 0.0;
    args =
      [ ("stage", Sobs.Trace.Int sid); ("attempt", Sobs.Trace.Int attempt) ];
  }

let sa045_codes diags =
  List.map (fun (d : Sanalysis.Diag.t) -> d.Sanalysis.Diag.code) diags

let test_sa045_clean () =
  (* one span per (run, stage, attempt), including a retried stage and a
     second engine run restarting attempts at 1 *)
  let attempts = [ [| 2; 1 |]; [| 1; 1 |] ] in
  let events =
    [
      stage_span 0 ~attempt:1;
      stage_span 0 ~attempt:2;
      stage_span 1 ~attempt:1;
      stage_span 0 ~attempt:1;
      stage_span 1 ~attempt:1;
    ]
  in
  Alcotest.(check (list string)) "clean audit" []
    (sa045_codes (Sanalysis.Trace_audit.run ~attempts events))

let test_sa045_missing_and_duplicate () =
  let attempts = [ [| 1; 1 |] ] in
  Alcotest.(check (list string)) "missing span flagged" [ "SA045" ]
    (sa045_codes
       (Sanalysis.Trace_audit.run ~attempts [ stage_span 0 ]));
  Alcotest.(check (list string)) "duplicate span flagged" [ "SA045" ]
    (sa045_codes
       (Sanalysis.Trace_audit.run ~attempts
          [ stage_span 0; stage_span 0; stage_span 1 ]))

let test_sa045_unknown_stage () =
  let attempts = [ [| 1 |] ] in
  Alcotest.(check (list string)) "span for unreported stage flagged"
    [ "SA045" ]
    (sa045_codes
       (Sanalysis.Trace_audit.run ~attempts [ stage_span 0; stage_span 7 ]))

let test_sa045_end_to_end () =
  (* a real traced execution passes the audit *)
  let catalog, _, r = raw_report Sworkload.Paper_scripts.s2 in
  let plan = r.Cse.Pipeline.cse_plan in
  Sobs.Trace.start ();
  let engine = Sexec.Engine.create ~workers:2 ~machines:25 catalog in
  ignore (Sexec.Engine.run engine plan);
  Sobs.Trace.stop ();
  let events = Sobs.Trace.collect () in
  Alcotest.(check (list string)) "traced run audits clean" []
    (sa045_codes
       (Sanalysis.Trace_audit.run
          ~attempts:[ engine.Sexec.Engine.last_attempts ]
          events))

(* --- serve metrics audit (SA046) ------------------------------------------ *)

(* Synthetic snapshot rows for the serve metrics auditor. *)
let m_count name v : Sobs.Metrics.row =
  { Sobs.Metrics.name; labels = []; value = Sobs.Metrics.Count v }

let m_gauge name v : Sobs.Metrics.row =
  { Sobs.Metrics.name; labels = []; value = Sobs.Metrics.Value v }

let m_latency path n : Sobs.Metrics.row =
  let h = Sobs.Hist.make "synthetic" in
  for _ = 1 to n do
    Sobs.Hist.observe h 0.001
  done;
  {
    Sobs.Metrics.name = "serve.session_seconds";
    labels = [ ("path", path) ];
    value = Sobs.Metrics.Dist (Sobs.Hist.summarize h);
  }

let sa046 ~cache_entries rows =
  List.map
    (fun (d : Sanalysis.Diag.t) -> d.Sanalysis.Diag.code)
    (Sanalysis.Serve_audit.run ~cache_entries rows)

let consistent_rows =
  [
    m_count "serve.sessions_submitted" 6;
    m_count "serve.sessions_failed" 1;
    m_count "serve.cache_hits" 2;
    m_count "serve.cache_misses" 3;
    m_latency "hit" 2;
    m_latency "share" 2;
    m_latency "miss" 1;
    m_gauge "serve.cache_size" 3.0;
  ]

let test_sa046_clean () =
  Alcotest.(check (list string)) "consistent snapshot passes" []
    (sa046 ~cache_entries:3 consistent_rows)

let test_sa046_violations () =
  let flags msg rows cache_entries =
    Alcotest.(check (list string)) msg [ "SA046" ]
      (List.sort_uniq String.compare (sa046 ~cache_entries rows))
  in
  (* a hit neither counted nor failed: hits+misses under-count *)
  flags "lost session classification"
    (m_count "serve.cache_hits" 1 :: List.tl consistent_rows)
    3;
  (* a served session observed in no latency path *)
  flags "lost latency observation"
    (List.map
       (fun (r : Sobs.Metrics.row) ->
         if r.Sobs.Metrics.labels = [ ("path", "miss") ] then m_latency "miss" 0
         else r)
       consistent_rows)
    3;
  (* hit sessions must land on the hit path *)
  flags "hit latency on the wrong path"
    (List.map
       (fun (r : Sobs.Metrics.row) ->
         match r.Sobs.Metrics.labels with
         | [ ("path", "hit") ] -> m_latency "hit" 1
         | [ ("path", "miss") ] -> m_latency "miss" 2
         | _ -> r)
       consistent_rows)
    3;
  (* unknown path label *)
  flags "unknown path label"
    (m_latency "warp" 0 :: consistent_rows)
    3;
  (* stale cache gauge *)
  flags "stale cache-size gauge" consistent_rows 7;
  (* missing gauge while the cache holds entries *)
  flags "missing cache-size gauge"
    (List.filter
       (fun (r : Sobs.Metrics.row) ->
         r.Sobs.Metrics.name <> "serve.cache_size")
       consistent_rows)
    3;
  (* a latency series that is not a histogram at all *)
  Alcotest.(check bool) "non-histogram latency flagged" true
    (List.mem "SA046"
       (sa046 ~cache_entries:3
          ({
             Sobs.Metrics.name = "serve.session_seconds";
             labels = [ ("path", "hit") ];
             value = Sobs.Metrics.Count 2;
           }
          :: List.filter
               (fun (r : Sobs.Metrics.row) ->
                 r.Sobs.Metrics.labels <> [ ("path", "hit") ])
               consistent_rows)))

(* --- framework ----------------------------------------------------------- *)

let test_diag_framework () =
  (* unknown codes are refused *)
  (match Sanalysis.Diag.make ~code:"SA999" ~loc:Sanalysis.Diag.Whole "x" with
  | _ -> Alcotest.fail "SA999 accepted"
  | exception Invalid_argument _ -> ());
  let d1 = Sanalysis.Diag.make ~code:"SA001" ~loc:(Sanalysis.Diag.Group 3) "c" in
  let d2 = Sanalysis.Diag.make ~code:"SA011" ~loc:(Sanalysis.Diag.Group 4) "w" in
  Alcotest.(check int) "SA001 is an error by default" 1
    (List.length (Sanalysis.Diag.errors [ d1; d2 ]));
  Alcotest.(check int) "SA011 is a warning by default" 1
    (List.length (Sanalysis.Diag.warnings [ d1; d2 ]));
  Alcotest.(check int) "errors exit 1" 1 (Sanalysis.Diag.exit_code [ d1 ]);
  Alcotest.(check int) "warnings exit 0" 0 (Sanalysis.Diag.exit_code [ d2 ]);
  Alcotest.(check int) "strict mode fails warnings" 1
    (Sanalysis.Diag.exit_code ~fail_on:Sanalysis.Diag.Warning [ d2 ]);
  Alcotest.(check int) "clean exits 0" 0 (Sanalysis.Diag.exit_code []);
  Alcotest.(check (list (pair string int)))
    "summary counts per code"
    [ ("SA001", 1); ("SA011", 1) ]
    (Sanalysis.Diag.summary [ d1; d2 ])

let () =
  Alcotest.run "analysis"
    [
      ( "framework",
        [ Alcotest.test_case "diag basics" `Quick test_diag_framework ] );
      ( "clean audits",
        [
          Alcotest.test_case "builtins at 4 and 25 machines" `Quick
            test_builtins_clean;
          Alcotest.test_case "LS1" `Slow test_ls1_clean;
          Alcotest.test_case "LS2" `Slow test_ls2_clean;
          Alcotest.test_case "random scripts" `Slow test_random_clean;
        ] );
      ( "memo auditor",
        [
          Alcotest.test_case "SA001 cycle" `Quick test_sa001_cycle;
          Alcotest.test_case "SA002 schema" `Quick test_sa002_schema;
          Alcotest.test_case "SA003 wrong cost" `Quick test_sa003_wrong_cost;
          Alcotest.test_case "SA004 invalid plan" `Quick test_sa004_invalid_plan;
          Alcotest.test_case "SA005 unsatisfied" `Quick test_sa005_unsatisfied_req;
          Alcotest.test_case "SA006 contradiction" `Quick
            test_sa006_contradicted_infeasible;
          Alcotest.test_case "SA007 wrong group" `Quick test_sa007_wrong_group;
        ] );
      ( "sharing auditor",
        [
          Alcotest.test_case "SA010 not a spool" `Quick test_sa010_shared_not_spool;
          Alcotest.test_case "SA011 one consumer" `Quick test_sa011_single_consumer;
          Alcotest.test_case "SA012 candidates" `Quick test_sa012_candidates;
          Alcotest.test_case "SA013 double spool" `Quick test_sa013_double_spool;
          Alcotest.test_case "SA013 budget-truncated plan" `Quick
            test_sa013_budget_truncated;
          Alcotest.test_case "SA014 unmarked spool" `Quick test_sa014_unmarked_spool;
        ] );
      ( "pruning audit",
        [
          Alcotest.test_case "SA060 unsound prune" `Quick test_sa060_unsound_prune;
        ] );
      ( "logical lint",
        [
          Alcotest.test_case "SA020 dangling column" `Quick test_sa020_dangling_column;
          Alcotest.test_case "SA021 bad stats" `Quick test_sa021_bad_stats;
          Alcotest.test_case "SA022 ndv > rows" `Quick test_sa022_ndv_exceeds_rows;
        ] );
      ( "plan lint",
        [
          Alcotest.test_case "SA030 bad props" `Quick test_sa030_bad_props;
          Alcotest.test_case "SA031 bad total" `Quick test_sa031_bad_total;
          Alcotest.test_case "SA032 negative cost" `Quick test_sa032_negative_cost;
          Alcotest.test_case "SA033 anonymous spool" `Quick test_sa033_anonymous_spool;
          Alcotest.test_case "SA034 stale region cache" `Quick
            test_sa034_stale_region_cache;
        ] );
      ( "stage audit",
        [
          Alcotest.test_case "SA040 not topological" `Quick
            test_sa040_not_topological;
          Alcotest.test_case "SA041 divergent deps" `Quick
            test_sa041_divergent_deps;
          Alcotest.test_case "SA042 unspooled sharing" `Quick
            test_sa042_unspooled_sharing;
          Alcotest.test_case "SA044 unreachable stage" `Quick
            test_sa044_unreachable_stage;
          Alcotest.test_case "SA043 output outside sink" `Quick
            test_sa043_output_outside_sink;
        ] );
      ( "trace audit",
        [
          Alcotest.test_case "SA045 clean multiset" `Quick test_sa045_clean;
          Alcotest.test_case "SA045 missing and duplicate" `Quick
            test_sa045_missing_and_duplicate;
          Alcotest.test_case "SA045 unknown stage" `Quick
            test_sa045_unknown_stage;
          Alcotest.test_case "SA045 end to end" `Quick test_sa045_end_to_end;
        ] );
      ( "serve metrics audit",
        [
          Alcotest.test_case "SA046 clean snapshot" `Quick test_sa046_clean;
          Alcotest.test_case "SA046 violations" `Quick test_sa046_violations;
        ] );
    ]
