(* Algorithm 3 tests: shared-group propagation and LCA identification,
   including the Figure 3(c) case where the LCA is *not* the lowest common
   ancestor, cross-checked against a brute-force reference on random
   DAGs. *)

let prepare script =
  let memo = Thelpers.memo_of script in
  let shared = Cse.Spool.identify memo in
  let si = Cse.Shared_info.compute memo in
  (memo, shared, si)

let test_s1_lca_is_root () =
  let memo, shared, si = prepare Sworkload.Paper_scripts.s1 in
  let s = (List.hd shared).Cse.Spool.spool in
  Alcotest.(check (option int)) "LCA is the sequence root"
    (Some memo.Smemo.Memo.root)
    (Cse.Shared_info.lca_of_shared si s)

let test_s3_two_lcas () =
  (* Figure 3(b): each shared group's LCA is its own join *)
  let memo, shared, si = prepare Sworkload.Paper_scripts.s3 in
  let lcas =
    List.filter_map
      (fun (s : Cse.Spool.shared) ->
        Cse.Shared_info.lca_of_shared si s.Cse.Spool.spool)
      shared
  in
  Alcotest.(check int) "two LCAs" 2 (List.length lcas);
  Alcotest.(check bool) "different LCAs" true
    (match lcas with [ a; b ] -> a <> b | _ -> false);
  List.iter
    (fun l ->
      Alcotest.(check bool) "LCA below root" true (l <> memo.Smemo.Memo.root);
      (* each LCA is a join group *)
      let g = Smemo.Memo.group memo l in
      Alcotest.(check bool) "LCA is a join" true
        (List.exists
           (fun (e : Smemo.Memo.mexpr) ->
             match e.Smemo.Memo.mop with Slogical.Logop.Join _ -> true | _ -> false)
           (Smemo.Memo.exprs g)))
    lcas

let test_s4_lca_not_lowest_common_ancestor () =
  (* Figure 3(c): the joins are the lowest common ancestors of R1/R2's
     consumers, but direct OUTPUT paths bypass them, so the LCA is the
     root *)
  let memo, shared, si = prepare Sworkload.Paper_scripts.s4 in
  List.iter
    (fun (s : Cse.Spool.shared) ->
      Alcotest.(check (option int)) "LCA overridden up to the root"
        (Some memo.Smemo.Memo.root)
        (Cse.Shared_info.lca_of_shared si s.Cse.Spool.spool))
    shared

let test_independent_pair_lca () =
  let memo, shared, si = prepare Sworkload.Paper_scripts.independent_pair in
  Alcotest.(check int) "two shared" 2 (List.length shared);
  List.iter
    (fun (s : Cse.Spool.shared) ->
      Alcotest.(check (option int)) "common LCA at the root"
        (Some memo.Smemo.Memo.root)
        (Cse.Shared_info.lca_of_shared si s.Cse.Spool.spool))
    shared

let test_shared_below_propagation () =
  let memo, shared, si = prepare Sworkload.Paper_scripts.s1 in
  let s = (List.hd shared).Cse.Spool.spool in
  (* every group on a path from the spool to the root knows about it *)
  Alcotest.(check (list int)) "root sees the shared group" [ s ]
    (Cse.Shared_info.shared_below si memo.Smemo.Memo.root);
  Alcotest.(check (list int)) "spool sees itself" [ s ]
    (Cse.Shared_info.shared_below si s);
  (* the extract below the spool does not *)
  Alcotest.(check (list int)) "extract sees nothing" []
    (Cse.Shared_info.shared_below si 0)

let test_consumer_lists () =
  let _, shared, si = prepare Sworkload.Paper_scripts.s2 in
  let s = (List.hd shared).Cse.Spool.spool in
  Alcotest.(check int) "three consumers recorded" 3
    (List.length (Cse.Shared_info.consumers si s))

(* --- brute-force cross-check on random DAGs ------------------------------ *)

(* Build a random memo whose groups are Sequence nodes over Extract leaves
   (Sequence is variadic, so any DAG shape is expressible), mark random
   internal groups as shared, and compare Algorithm 3 with the definition:
   the LCA of a shared group's consumers is the lowest group contained in
   every consumer-to-root path. *)
let random_memo seed =
  let rng = Sutil.Rng.create seed in
  let catalog = Thelpers.default_catalog () in
  let b = Slogical.Dag.builder () in
  let schema =
    Relalg.Catalog.file_schema
      (Option.get (Relalg.Catalog.find catalog "test.log"))
  in
  let n_leaves = 1 + Sutil.Rng.int rng 3 in
  let leaves =
    List.init n_leaves (fun i ->
        Slogical.Dag.add b
          (Slogical.Logop.Extract
             { file = Printf.sprintf "test%s.log" (if i = 0 then "" else "2");
               extractor = "L"; schema })
          [] [])
  in
  let nodes = ref leaves in
  let n_internal = 3 + Sutil.Rng.int rng 8 in
  for _ = 1 to n_internal do
    let k = 1 + Sutil.Rng.int rng 3 in
    let children =
      List.init k (fun _ -> Sutil.Rng.pick_list rng !nodes)
      |> List.map (fun (n : Slogical.Dag.node) -> n)
    in
    let children =
      List.sort_uniq
        (fun (a : Slogical.Dag.node) b -> Int.compare a.Slogical.Dag.id b.Slogical.Dag.id)
        children
    in
    let node =
      Slogical.Dag.add b Slogical.Logop.Sequence
        (List.map (fun (n : Slogical.Dag.node) -> n.Slogical.Dag.id) children)
        (List.map (fun (n : Slogical.Dag.node) -> n.Slogical.Dag.schema) children)
    in
    nodes := node :: !nodes
  done;
  (* root covering everything still dangling *)
  let parents = Array.make (List.length !nodes + 5) false in
  List.iter
    (fun (n : Slogical.Dag.node) ->
      List.iter (fun c -> parents.(c) <- true) n.Slogical.Dag.children)
    !nodes;
  let dangling =
    List.filter (fun (n : Slogical.Dag.node) -> not parents.(n.Slogical.Dag.id)) !nodes
  in
  let root =
    Slogical.Dag.add b Slogical.Logop.Sequence
      (List.map (fun (n : Slogical.Dag.node) -> n.Slogical.Dag.id) dangling)
      (List.map (fun (n : Slogical.Dag.node) -> n.Slogical.Dag.schema) dangling)
  in
  let dag = Slogical.Dag.finish b ~root in
  let memo = Smemo.Memo.of_dag ~catalog ~machines:4 dag in
  (* mark 1-2 random multi-parent groups as shared *)
  let ps = Smemo.Memo.parents memo in
  let candidates = ref [] in
  Array.iteri
    (fun g parents -> if List.length parents >= 2 then candidates := g :: !candidates)
    ps;
  let shared =
    match !candidates with
    | [] -> []
    | cands ->
        let n = 1 + Sutil.Rng.int rng (min 2 (List.length cands)) in
        List.sort_uniq Int.compare
          (List.init n (fun _ -> Sutil.Rng.pick_list rng cands))
  in
  List.iter
    (fun g -> (Smemo.Memo.group memo g).Smemo.Memo.shared <- true)
    shared;
  (memo, shared)

(* reference: g is on every path from the consumer to the root iff no
   consumer-to-root path avoids g (equivalently, removing g disconnects
   them); the consumer and the root themselves are trivially on every
   path *)
let on_all_paths memo ~root ~consumer g =
  if g = consumer || g = root then true
  else begin
    let parents = Smemo.Memo.parents memo in
    let seen = Hashtbl.create 16 in
    (* can we reach the root from [x] without stepping on [g]? *)
    let rec avoids x =
      x = root
      || (x <> g
         && (not (Hashtbl.mem seen x))
         &&
         (Hashtbl.replace seen x ();
          List.exists avoids parents.(x)))
    in
    not (avoids consumer)
  end

let reference_lca memo ~root consumers =
  let size = Smemo.Memo.size memo in
  let live = Smemo.Memo.reachable memo in
  let candidates = ref [] in
  for g = 0 to size - 1 do
    if
      live.(g)
      && List.for_all (fun c -> on_all_paths memo ~root ~consumer:c g) consumers
    then candidates := g :: !candidates
  done;
  (* the lowest: the candidate from which every other candidate is
     reachable upward *)
  let parents = Smemo.Memo.parents memo in
  let rec ancestors acc x =
    List.fold_left
      (fun acc p -> if List.mem p acc then acc else ancestors (p :: acc) p)
      acc parents.(x)
  in
  List.find_opt
    (fun g ->
      let ups = ancestors [ g ] g in
      List.for_all (fun other -> List.mem other ups) !candidates)
    !candidates

let test_lca_against_brute_force () =
  let checked = ref 0 in
  for seed = 1 to 150 do
    let memo, shared = random_memo seed in
    if shared <> [] then begin
      let si = Cse.Shared_info.compute memo in
      List.iter
        (fun s ->
          let consumers = Cse.Shared_info.consumers si s in
          if consumers <> [] then begin
            let expected =
              reference_lca memo ~root:memo.Smemo.Memo.root consumers
            in
            let actual = Cse.Shared_info.lca_of_shared si s in
            incr checked;
            if expected <> actual then
              Alcotest.failf
                "seed %d shared %d consumers [%s]: reference %s, algorithm %s"
                seed s
                (String.concat ";" (List.map string_of_int consumers))
                (match expected with Some x -> string_of_int x | None -> "-")
                (match actual with Some x -> string_of_int x | None -> "-")
          end)
        shared
    end
  done;
  Alcotest.(check bool) "exercised enough cases" true (!checked > 50)

let () =
  Alcotest.run "lca"
    [
      ( "paper figures",
        [
          Alcotest.test_case "S1 root LCA" `Quick test_s1_lca_is_root;
          Alcotest.test_case "S3 join LCAs (Fig 3b)" `Quick test_s3_two_lcas;
          Alcotest.test_case "S4 LCA above joins (Fig 3c)" `Quick
            test_s4_lca_not_lowest_common_ancestor;
          Alcotest.test_case "independent pair" `Quick test_independent_pair_lca;
          Alcotest.test_case "shared-below propagation" `Quick
            test_shared_below_propagation;
          Alcotest.test_case "consumer lists" `Quick test_consumer_lists;
        ] );
      ( "reference",
        [ Alcotest.test_case "brute force (150 DAGs)" `Slow test_lca_against_brute_force ]
      );
    ]
