(* Serve-mode tests: script normalization, the fingerprint-keyed plan
   cache (hits on whitespace/alias-renamed variants, invalidation on
   catalog bumps), cross-script sharing over combined memos with
   byte-identical outputs, and the session protocol + stream generator.

   Counters are process-global, so assertions read per-batch results
   and cache entries, never the lifetime totals. *)

module N = Sserve.Normalize
module E = Sserve.Engine
module PC = Sserve.Plan_cache
module S = Sserve.Session
open Relalg

let plain =
  "R = EXTRACT A,B,C,D FROM \"serve_log0\" USING LogExtractor;\n\
   F = SELECT A,B,C,D FROM R WHERE D > 5;\n\
   S = SELECT A, Sum(D) AS V FROM F GROUP BY A;\n\
   OUTPUT S TO \"serve_out\" ORDER BY A;\n"

let plain_spaced =
  "  R =   EXTRACT A,B,C,D FROM \"serve_log0\" USING LogExtractor;\n\n\
   F = SELECT A,B,C,D\n FROM R WHERE D > 5;\n\
   S = SELECT A, Sum(D) AS V FROM F\n GROUP BY A;\n\
   OUTPUT S TO \"serve_out\"\n ORDER BY A;\n"

let plain_renamed =
  "Zebra = EXTRACT A,B,C,D FROM \"serve_log0\" USING LogExtractor;\n\
   Yak = SELECT A,B,C,D FROM Zebra WHERE D > 5;\n\
   Wolf = SELECT A, Sum(D) AS V FROM Yak GROUP BY A;\n\
   OUTPUT Wolf TO \"serve_out\" ORDER BY A;\n"

(* --- normalization ------------------------------------------------------- *)

let norm_text s = N.to_text (N.parse s)

let test_normalize_whitespace () =
  Alcotest.(check string) "whitespace variant normalizes equal"
    (norm_text plain) (norm_text plain_spaced)

let test_normalize_rel_names () =
  Alcotest.(check string) "relation renaming normalizes equal"
    (norm_text plain) (norm_text plain_renamed)

let test_normalize_aliases () =
  let a =
    "Raw = EXTRACT A,B,C,D FROM \"serve_log1\" USING LogExtractor;\n\
     S = SELECT u.B, Sum(u.D) AS V FROM Raw AS u WHERE u.D > 3 GROUP BY u.B;\n\
     OUTPUT S TO \"serve_alias\" ORDER BY B;\n"
  in
  let b =
    "Zt = EXTRACT A,B,C,D FROM \"serve_log1\" USING LogExtractor;\n\
     S = SELECT w.B, Sum(w.D) AS V FROM Zt AS w WHERE w.D > 3 GROUP BY w.B;\n\
     OUTPUT S TO \"serve_alias\" ORDER BY B;\n"
  in
  Alcotest.(check string) "alias renaming normalizes equal" (norm_text a)
    (norm_text b)

let test_normalize_distinguishes () =
  let other =
    "R = EXTRACT A,B,C,D FROM \"serve_log0\" USING LogExtractor;\n\
     F = SELECT A,B,C,D FROM R WHERE D > 6;\n\
     S = SELECT A, Sum(D) AS V FROM F GROUP BY A;\n\
     OUTPUT S TO \"serve_out\" ORDER BY A;\n"
  in
  Alcotest.(check bool) "different cut stays different" false
    (String.equal (norm_text plain) (norm_text other))

let test_normalize_idempotent () =
  let once = norm_text plain_renamed in
  Alcotest.(check string) "normalizing normalized text is the identity" once
    (norm_text once)

let test_normalized_text_binds () =
  (* the canonical text must still parse and bind *)
  let catalog = Sworkload.Session_gen.catalog () in
  let dag =
    Slogical.Binder.bind ~catalog (Slang.Parser.parse_script (norm_text plain))
  in
  Alcotest.(check bool) "bound dag nonempty" true (Slogical.Dag.size dag > 0)

let test_hash_string () =
  let h = Cse.Fingerprint.hash_string in
  Alcotest.(check bool) "in range" true
    (h plain >= 0 && h plain < Cse.Fingerprint.modulus);
  Alcotest.(check int) "deterministic" (h plain) (h plain);
  Alcotest.(check bool) "sensitive to content" true (h plain <> h plain_spaced)

let test_combine_tags_outputs () =
  let s = N.parse plain in
  let combined = N.combine [ s; s ] in
  let outs =
    List.filter_map
      (function Slang.Ast.Output { file; _ } -> Some file | _ -> None)
      combined
  in
  Alcotest.(check (list string)) "tagged per session"
    [ "_s0:serve_out"; "_s1:serve_out" ]
    outs;
  Alcotest.(check string) "untag strips" "serve_out"
    (N.untag_output "_s0:serve_out");
  Alcotest.(check string) "untag passes plain names" "serve_out"
    (N.untag_output "serve_out");
  (* combined script must still be one well-formed parseable script *)
  let text = N.to_text combined in
  Alcotest.(check int) "reparses with all statements"
    (List.length combined)
    (List.length (Slang.Parser.parse_script text))

(* --- plan cache through the serve engine --------------------------------- *)

let fresh_engine ?workers () =
  let catalog = Sworkload.Session_gen.catalog () in
  E.create ?workers catalog

let flush_exn e =
  match E.flush e with
  | Some b -> b
  | None -> Alcotest.fail "flush returned no batch"

let table_bytes outputs =
  String.concat "\x00"
    (List.map (fun (f, t) -> f ^ "=" ^ Table.to_string t) outputs)

let run_result b =
  match b.E.results with [ r ] -> r | _ -> Alcotest.fail "expected 1 result"

let assert_done ?(hit = false) r =
  match r.E.status with
  | E.Done { cache_hit; _ } ->
      Alcotest.(check bool) "cache_hit flag" hit cache_hit
  | E.Failed m -> Alcotest.failf "session %s failed: %s" r.E.id m

let test_cache_hit_identical_outputs () =
  let e = fresh_engine () in
  E.submit e ~id:"cold" ~text:plain;
  let cold = run_result (flush_exn e) in
  assert_done ~hit:false cold;
  E.submit e ~id:"dup" ~text:plain;
  E.submit e ~id:"spaced" ~text:plain_spaced;
  E.submit e ~id:"renamed" ~text:plain_renamed;
  let warm = flush_exn e in
  List.iter
    (fun r ->
      assert_done ~hit:true r;
      Alcotest.(check string)
        (r.E.id ^ " byte-identical to cold run")
        (table_bytes cold.E.outputs) (table_bytes r.E.outputs))
    warm.E.results;
  (* all four sessions share one cache entry *)
  Alcotest.(check int) "one entry" 1 (PC.size (E.cache e));
  Alcotest.(check (option int)) "same fingerprint" cold.E.fingerprint
    (List.hd warm.E.results).E.fingerprint

let test_catalog_bump_invalidates () =
  let e = fresh_engine () in
  E.submit e ~id:"a" ~text:plain;
  let r1 = run_result (flush_exn e) in
  assert_done ~hit:false r1;
  let purged = E.catalog_bump e in
  Alcotest.(check int) "entry purged" 1 purged;
  Alcotest.(check int) "cache empty" 0 (PC.size (E.cache e));
  E.submit e ~id:"b" ~text:plain;
  let r2 = run_result (flush_exn e) in
  (* same text, new statistics epoch: a miss, re-optimized *)
  assert_done ~hit:false r2;
  Alcotest.(check bool) "fingerprint changed with the epoch" true
    (r1.E.fingerprint <> r2.E.fingerprint)

let shared_pair =
  ( "R = EXTRACT A,B,C,D FROM \"serve_log2\" USING LogExtractor;\n\
     F = SELECT A,B,C,D FROM R WHERE D > 7;\n\
     S = SELECT A, Sum(D) AS V FROM F GROUP BY A;\n\
     OUTPUT S TO \"serve_xa\" ORDER BY A;\n",
    "R = EXTRACT A,B,C,D FROM \"serve_log2\" USING LogExtractor;\n\
     F = SELECT A,B,C,D FROM R WHERE D > 7;\n\
     S = SELECT B, Sum(D) AS V FROM F GROUP BY B;\n\
     OUTPUT S TO \"serve_xb\" ORDER BY B;\n" )

let test_cross_script_sharing () =
  let a, b = shared_pair in
  let e = fresh_engine () in
  E.submit e ~id:"xa" ~text:a;
  E.submit e ~id:"xb" ~text:b;
  let batch = flush_exn e in
  Alcotest.(check bool) "combined run happened" true batch.E.combined;
  Alcotest.(check bool) "cross-script spool detected" true
    (batch.E.cross_script_shares >= 1);
  (* the combined plan must beat (or match) the two solo plans *)
  (match (batch.E.combined_cost, batch.E.solo_cost_sum) with
  | Some c, Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "combined cost %.3g <= solo sum %.3g" c s)
        true (c <= s +. 1e-6)
  | _ -> Alcotest.fail "combined batch carries both cost figures");
  (* outputs byte-identical to running each script alone *)
  let solo text =
    let solo_engine = fresh_engine () in
    E.submit solo_engine ~id:"solo" ~text;
    (run_result (flush_exn solo_engine)).E.outputs
  in
  List.iter2
    (fun (r : E.session_result) reference ->
      (match r.E.status with
      | E.Done { combined; _ } ->
          Alcotest.(check bool) (r.E.id ^ " served from combined run") true
            combined
      | E.Failed m -> Alcotest.failf "%s failed: %s" r.E.id m);
      Alcotest.(check string)
        (r.E.id ^ " byte-identical to solo run")
        (table_bytes reference) (table_bytes r.E.outputs))
    batch.E.results
    [ solo a; solo b ]

let test_within_batch_duplicate () =
  let e = fresh_engine () in
  E.submit e ~id:"first" ~text:plain;
  E.submit e ~id:"second" ~text:plain_renamed;
  let batch = flush_exn e in
  (* one miss, one within-batch duplicate: no combined run of one *)
  Alcotest.(check bool) "no combined run" false batch.E.combined;
  (match batch.E.results with
  | [ a; b ] ->
      assert_done ~hit:false a;
      assert_done ~hit:true b;
      Alcotest.(check string) "identical outputs" (table_bytes a.E.outputs)
        (table_bytes b.E.outputs)
  | _ -> Alcotest.fail "expected two results");
  Alcotest.(check int) "one cache entry" 1 (PC.size (E.cache e))

let test_failed_session_contained () =
  let e = fresh_engine () in
  E.submit e ~id:"bad" ~text:"THIS IS NOT A SCRIPT";
  E.submit e ~id:"good" ~text:plain;
  let batch = flush_exn e in
  match batch.E.results with
  | [ bad; good ] ->
      (match bad.E.status with
      | E.Failed _ -> ()
      | E.Done _ -> Alcotest.fail "malformed script must fail");
      assert_done ~hit:false good;
      Alcotest.(check bool) "good session produced rows" true (good.E.rows > 0)
  | _ -> Alcotest.fail "expected two results"

(* --- session protocol ---------------------------------------------------- *)

let test_protocol_parse () =
  let items =
    S.items_of_string
      "## comment\n\
       #script s1\n\
       A = EXTRACT A FROM \"f\" USING X;\n\
       #end\n\n\
       #batch\n\
       #catalog-bump\n\
       #quit\n"
  in
  match items with
  | [ S.Script { id; text }; S.Flush; S.Catalog_bump; S.Quit ] ->
      Alcotest.(check string) "id" "s1" id;
      Alcotest.(check string) "text" "A = EXTRACT A FROM \"f\" USING X;\n" text
  | _ -> Alcotest.failf "unexpected items (%d)" (List.length items)

let test_protocol_errors () =
  let raises s =
    match S.items_of_string s with
    | exception S.Protocol_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed stream %S" s
  in
  raises "#script s1\nno end";
  raises "#script\nx\n#end\n";
  raises "#bogus\n";
  raises "stray text\n";
  raises "#tenant\n";
  raises "#tenant   \n"

let test_protocol_observability_verbs () =
  match S.items_of_string "#tenant acme\n#stats\n#dump\n#quit\n" with
  | [ S.Tenant t; S.Stats; S.Dump; S.Quit ] ->
      Alcotest.(check string) "tenant name" "acme" t
  | items -> Alcotest.failf "unexpected items (%d)" (List.length items)

(* --- the per-engine metrics registry and SA046 --------------------------- *)

let metric_rows e = Sobs.Metrics.snapshot (E.metrics e)

let count rows name labels =
  match
    List.find_opt
      (fun (r : Sobs.Metrics.row) ->
        r.Sobs.Metrics.name = name && r.Sobs.Metrics.labels = labels)
      rows
  with
  | Some { Sobs.Metrics.value = Sobs.Metrics.Count c; _ } -> c
  | _ -> 0

let hist_count rows name labels =
  match
    List.find_opt
      (fun (r : Sobs.Metrics.row) ->
        r.Sobs.Metrics.name = name && r.Sobs.Metrics.labels = labels)
      rows
  with
  | Some { Sobs.Metrics.value = Sobs.Metrics.Dist s; _ } -> s.Sobs.Hist.count
  | _ -> -1

(* Drive every session path once — miss, hit, failure, combined share —
   under two tenants, then hold the registry to its accounting story:
   every served session in exactly one latency path, hits+misses
   covering submitted-failed, tenant traffic attributed, and the SA046
   audit finding nothing. *)
let test_metrics_accounting () =
  let a, b = shared_pair in
  let e = fresh_engine () in
  E.submit e ~id:"cold" ~text:plain;
  ignore (flush_exn e);
  E.submit ~tenant:"blue" e ~id:"dup" ~text:plain;
  E.submit ~tenant:"blue" e ~id:"bad" ~text:"THIS IS NOT A SCRIPT";
  ignore (flush_exn e);
  E.submit e ~id:"xa" ~text:a;
  E.submit e ~id:"xb" ~text:b;
  ignore (flush_exn e);
  let rows = metric_rows e in
  Alcotest.(check int) "submitted" 5 (count rows "serve.sessions_submitted" []);
  Alcotest.(check int) "failed" 1 (count rows "serve.sessions_failed" []);
  Alcotest.(check int) "hits" 1 (count rows "serve.cache_hits" []);
  Alcotest.(check int) "misses" 3 (count rows "serve.cache_misses" []);
  Alcotest.(check int) "hit-path latency observations" 1
    (hist_count rows "serve.session_seconds" [ ("path", "hit") ]);
  Alcotest.(check int) "share-path latency observations" 2
    (hist_count rows "serve.session_seconds" [ ("path", "share") ]);
  Alcotest.(check int) "miss-path latency observations" 1
    (hist_count rows "serve.session_seconds" [ ("path", "miss") ]);
  Alcotest.(check int) "blue tenant submitted" 2
    (count rows "serve.tenant_submitted" [ ("tenant", "blue") ]);
  Alcotest.(check int) "blue tenant served" 1
    (count rows "serve.tenant_served" [ ("tenant", "blue") ]);
  Alcotest.(check int) "default tenant submitted" 3
    (count rows "serve.tenant_submitted" [ ("tenant", "default") ]);
  Alcotest.(check bool) "served rows attributed" true
    (count rows "serve.tenant_rows" [ ("tenant", "default") ] > 0);
  (match
     List.find_opt
       (fun (r : Sobs.Metrics.row) ->
         r.Sobs.Metrics.name = "serve.cache_size")
       rows
   with
  | Some { Sobs.Metrics.value = Sobs.Metrics.Value v; _ } ->
      Alcotest.(check (float 0.0)) "cache_size gauge tracks the cache"
        (float_of_int (PC.size (E.cache e)))
        v
  | _ -> Alcotest.fail "no serve.cache_size gauge");
  Alcotest.(check (list string)) "SA046 clean" []
    (List.map Sanalysis.Diag.to_string
       (Sanalysis.Serve_audit.run
          ~cache_entries:(PC.size (E.cache e))
          rows))

let test_generator_stream () =
  let stream = Sworkload.Session_gen.generate ~seed:3 ~scripts:8 () in
  let items = S.items_of_string stream in
  let scripts =
    List.filter_map
      (function S.Script { text; _ } -> Some text | _ -> None)
      items
  in
  Alcotest.(check int) "requested scripts" 8 (List.length scripts);
  (* every generated script parses *)
  List.iter (fun t -> ignore (Slang.Parser.parse_script t)) scripts;
  Alcotest.(check bool) "has batch breaks" true
    (List.exists (function S.Flush -> true | _ -> false) items)

let test_generator_replay () =
  (* run a small generated stream end to end: the prelude guarantees
     cache hits and at least one cross-script share at any seed *)
  let catalog = Sworkload.Session_gen.catalog () in
  let e = E.create catalog in
  let hits = ref 0 and cross = ref 0 and failed = ref 0 in
  let flush () =
    match E.flush e with
    | None -> ()
    | Some b ->
        cross := !cross + b.E.cross_script_shares;
        List.iter
          (fun (r : E.session_result) ->
            match r.E.status with
            | E.Done { cache_hit = true; _ } -> incr hits
            | E.Done _ -> ()
            | E.Failed _ -> incr failed)
          b.E.results
  in
  let tenant = ref None in
  List.iter
    (function
      | S.Script { id; text } -> E.submit ?tenant:!tenant e ~id ~text
      | S.Flush -> flush ()
      | S.Catalog_bump -> ignore (E.catalog_bump e)
      | S.Tenant t -> tenant := Some t
      | S.Stats | S.Dump -> ()
      | S.Quit -> ())
    (S.items_of_string (Sworkload.Session_gen.generate ~seed:11 ~scripts:7 ()));
  flush ();
  Alcotest.(check int) "no failed sessions" 0 !failed;
  Alcotest.(check bool) "cache hits happened" true (!hits >= 2);
  Alcotest.(check bool) "cross-script sharing happened" true (!cross >= 1);
  (* the engine's registry must survive the SA046 consistency audit *)
  Alcotest.(check (list string)) "SA046 clean on replay" []
    (List.map Sanalysis.Diag.to_string
       (Sanalysis.Serve_audit.run
          ~cache_entries:(PC.size (E.cache e))
          (Sobs.Metrics.snapshot (E.metrics e))))

let () =
  Alcotest.run "serve"
    [
      ( "normalize",
        [
          Alcotest.test_case "whitespace" `Quick test_normalize_whitespace;
          Alcotest.test_case "relation names" `Quick test_normalize_rel_names;
          Alcotest.test_case "aliases" `Quick test_normalize_aliases;
          Alcotest.test_case "distinguishes" `Quick
            test_normalize_distinguishes;
          Alcotest.test_case "idempotent" `Quick test_normalize_idempotent;
          Alcotest.test_case "binds" `Quick test_normalized_text_binds;
          Alcotest.test_case "hash_string" `Quick test_hash_string;
          Alcotest.test_case "combine tags outputs" `Quick
            test_combine_tags_outputs;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "hit is byte-identical" `Quick
            test_cache_hit_identical_outputs;
          Alcotest.test_case "catalog bump invalidates" `Quick
            test_catalog_bump_invalidates;
          Alcotest.test_case "within-batch duplicate" `Quick
            test_within_batch_duplicate;
          Alcotest.test_case "failed session contained" `Quick
            test_failed_session_contained;
        ] );
      ( "cross-script",
        [
          Alcotest.test_case "sharing and byte-identity" `Quick
            test_cross_script_sharing;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
          Alcotest.test_case "observability verbs" `Quick
            test_protocol_observability_verbs;
          Alcotest.test_case "generator stream" `Quick test_generator_stream;
          Alcotest.test_case "generator replay" `Quick test_generator_replay;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "accounting and SA046" `Quick
            test_metrics_accounting;
        ] );
    ]
