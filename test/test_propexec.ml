(* The deepest cross-check in the repository: execute plans with
   [verify_props] on, so every operator's *claimed* delivered physical
   properties (partitioning, sort order) are checked against the rows it
   actually produced on the simulated cluster. A property-derivation bug in
   the optimizer that the static plan checker misses would surface here. *)

let check_script ?(machines = 9) ~catalog name script =
  let r = Cse.Pipeline.run ~catalog script in
  List.iter
    (fun (label, plan) ->
      let v =
        Sexec.Validate.check ~verify_props:true ~machines catalog
          r.Cse.Pipeline.dag plan
      in
      if not v.Sexec.Validate.ok then
        Alcotest.failf "%s (%s): %s" name label
          (String.concat "; " v.Sexec.Validate.mismatches))
    [
      ("conventional", r.Cse.Pipeline.conventional_plan);
      ("cse", r.Cse.Pipeline.cse_plan);
      ("phase1", r.Cse.Pipeline.phase1_plan);
    ]

let test_paper_scripts () =
  List.iter
    (fun (name, script) ->
      check_script ~catalog:(Relalg.Catalog.default ()) name script)
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

let test_order_by_script () =
  check_script ~catalog:(Relalg.Catalog.default ()) "order-by"
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING L;
      R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;
      T = SELECT Sum(S) AS Total FROM R;
      OUTPUT R TO "r.out" ORDER BY B, A DESC;
      OUTPUT T TO "t.out";|}

let test_random_scripts () =
  for seed = 1 to 20 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:10 () in
    check_script ~machines:5 ~catalog:(Sworkload.Random_gen.catalog ())
      (Printf.sprintf "seed %d" seed)
      script
  done

let test_verification_catches_lies () =
  (* sanity of the checker itself: a node claiming hash{B} over round-robin
     data must be flagged *)
  let catalog = Relalg.Catalog.default () in
  let schema =
    Relalg.Catalog.file_schema
      (Option.get (Relalg.Catalog.find catalog "test.log"))
  in
  let stats = { Slogical.Stats.rows = 100.0; row_bytes = 8.0; ndvs = [] } in
  let extract =
    Sphys.Plan.make
      ~op:(Sphys.Physop.P_extract { file = "test.log"; extractor = "L"; schema })
      ~children:[] ~group:0 ~schema ~stats ~op_cost:1.0
  in
  (* forge the delivered properties *)
  let lying =
    {
      extract with
      Sphys.Plan.props =
        Sphys.Props.make
          (Sphys.Partition.Hashed (Relalg.Colset.singleton "B"))
          [];
    }
  in
  let out =
    Sphys.Plan.make
      ~op:(Sphys.Physop.P_output { file = "o" })
      ~children:[ lying ] ~group:1 ~schema ~stats ~op_cost:1.0
  in
  let engine = Sexec.Engine.create ~verify_props:true ~machines:7 catalog in
  ignore (Sexec.Engine.run engine out);
  Alcotest.(check bool) "lie detected" true
    (engine.Sexec.Engine.prop_violations <> [])

let test_verification_catches_missing_columns () =
  (* regression: a claimed partition or sort column absent from the
     delivered schema used to be skipped silently; it must be flagged *)
  let catalog = Relalg.Catalog.default () in
  let schema =
    Relalg.Catalog.file_schema
      (Option.get (Relalg.Catalog.find catalog "test.log"))
  in
  let stats = { Slogical.Stats.rows = 100.0; row_bytes = 8.0; ndvs = [] } in
  let extract =
    Sphys.Plan.make
      ~op:(Sphys.Physop.P_extract { file = "test.log"; extractor = "L"; schema })
      ~children:[] ~group:0 ~schema ~stats ~op_cost:1.0
  in
  let run_with props =
    let lying = { extract with Sphys.Plan.props = props } in
    let out =
      Sphys.Plan.make
        ~op:(Sphys.Physop.P_output { file = "o" })
        ~children:[ lying ] ~group:1 ~schema ~stats ~op_cost:1.0
    in
    let engine = Sexec.Engine.create ~verify_props:true ~machines:7 catalog in
    ignore (Sexec.Engine.run engine out);
    engine.Sexec.Engine.prop_violations
  in
  Alcotest.(check bool) "phantom hash column detected" true
    (run_with
       (Sphys.Props.make
          (Sphys.Partition.Hashed (Relalg.Colset.singleton "NO_SUCH_COL"))
          [])
    <> []);
  Alcotest.(check bool) "phantom sort column detected" true
    (run_with
       (Sphys.Props.make Sphys.Partition.Roundrobin
          [ ("NO_SUCH_COL", Sphys.Sortorder.Asc) ])
    <> [])

let test_verification_accepts_truth () =
  let catalog = Relalg.Catalog.default () in
  let r =
    Cse.Pipeline.run ~catalog Sworkload.Paper_scripts.s1
  in
  let engine = Sexec.Engine.create ~verify_props:true ~machines:7 catalog in
  ignore (Sexec.Engine.run engine r.Cse.Pipeline.cse_plan);
  Alcotest.(check (list string)) "no violations" []
    engine.Sexec.Engine.prop_violations

let () =
  Alcotest.run "prop-exec"
    [
      ( "delivered properties hold at runtime",
        [
          Alcotest.test_case "paper scripts" `Slow test_paper_scripts;
          Alcotest.test_case "order by / grand total" `Quick test_order_by_script;
          Alcotest.test_case "random scripts" `Slow test_random_scripts;
          Alcotest.test_case "checker detects lies" `Quick
            test_verification_catches_lies;
          Alcotest.test_case "checker detects phantom columns" `Quick
            test_verification_catches_missing_columns;
          Alcotest.test_case "checker accepts truth" `Quick
            test_verification_accepts_truth;
        ] );
    ]
