(* Unit and property tests for the utility substrate. *)

let test_rng_deterministic () =
  let a = Sutil.Rng.create 42 and b = Sutil.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Sutil.Rng.next a) (Sutil.Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Sutil.Rng.create 1 and b = Sutil.Rng.create 2 in
  let xs = List.init 10 (fun _ -> Sutil.Rng.next a) in
  let ys = List.init 10 (fun _ -> Sutil.Rng.next b) in
  Alcotest.(check bool) "different seeds differ" false (xs = ys)

let test_rng_copy () =
  let a = Sutil.Rng.create 7 in
  ignore (Sutil.Rng.next a);
  let b = Sutil.Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Sutil.Rng.next a)
    (Sutil.Rng.next b)

let test_rng_bounds () =
  let rng = Sutil.Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Sutil.Rng.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.failf "out of range: %d" x
  done

let test_rng_nonnegative () =
  let rng = Sutil.Rng.create 99 in
  for _ = 1 to 10_000 do
    if Sutil.Rng.next rng < 0 then Alcotest.fail "negative rng output"
  done

let test_rng_int_rejects_zero () =
  let rng = Sutil.Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sutil.Rng.int rng 0))

let test_shuffle_permutes () =
  let rng = Sutil.Rng.create 5 in
  let a = Array.init 20 Fun.id in
  let s = Sutil.Rng.shuffle rng a in
  Alcotest.(check (list int))
    "same multiset"
    (List.sort compare (Array.to_list a))
    (List.sort compare (Array.to_list s))

let test_subsets_count () =
  Alcotest.(check int) "2^4 subsets" 16
    (List.length (Sutil.Combi.subsets [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "15 non-empty" 15
    (List.length (Sutil.Combi.nonempty_subsets [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "empty list" 1 (List.length (Sutil.Combi.subsets []))

let test_subsets_distinct () =
  let ss = Sutil.Combi.subsets [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "all distinct" (List.length ss)
    (List.length (List.sort_uniq compare ss))

let test_permutations () =
  Alcotest.(check int) "3! perms" 6
    (List.length (Sutil.Combi.permutations [ 1; 2; 3 ]));
  let ps = Sutil.Combi.permutations [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "4! distinct" 24 (List.length (List.sort_uniq compare ps))

let test_product () =
  Alcotest.(check (list (list int)))
    "row-major product"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Sutil.Combi.product [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list (list int))) "empty choice kills product" []
    (Sutil.Combi.product [ [ 1 ]; [] ]);
  Alcotest.(check (list (list int))) "nullary product" [ [] ]
    (Sutil.Combi.product [])

let test_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Sutil.Combi.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take more" [ 1 ] (Sutil.Combi.take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Sutil.Combi.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop all" [] (Sutil.Combi.drop 5 [ 1 ])

let prop_take_drop =
  Thelpers.qtest "take n @ drop n = id"
    QCheck.(pair small_nat (small_list int))
    (fun (n, l) -> Sutil.Combi.take n l @ Sutil.Combi.drop n l = l)

let prop_subsets_subset =
  Thelpers.qtest ~count:50 "every subset is a sub-multiset"
    QCheck.(list_of_size (QCheck.Gen.int_bound 6) small_int)
    (fun l ->
      List.for_all
        (fun s -> List.for_all (fun x -> List.mem x l) s)
        (Sutil.Combi.subsets l))

let test_counters_atomic_hammer () =
  (* 4 domains bumping one shared counter concurrently: the atomic cells
     must not lose a single increment *)
  let c = Sutil.Counters.counter "test.hammer" in
  let before = Sutil.Counters.get "test.hammer" in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Sutil.Counters.bump c 1
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "exact total" (before + (4 * per_domain))
    (Sutil.Counters.get "test.hammer")

let test_counters_since_union () =
  (* [since] diffs by name over the union of the two snapshots: counters
     registered after the snapshot count from zero, unchanged counters
     are absent, and a reset in between yields a negative delta *)
  let before = Sutil.Counters.snapshot () in
  let c = Sutil.Counters.counter "test.since_union" in
  Sutil.Counters.bump c 3;
  let d = Sutil.Counters.since before in
  Alcotest.(check (option int)) "counter born after snapshot is reported"
    (Some 3)
    (List.assoc_opt "test.since_union" d);
  Alcotest.(check (list (pair string int))) "no change means empty delta" []
    (Sutil.Counters.since (Sutil.Counters.snapshot ()));
  let before = Sutil.Counters.snapshot () in
  Sutil.Counters.reset_all ();
  Alcotest.(check (option int)) "reset shows as negative delta" (Some (-3))
    (List.assoc_opt "test.since_union" (Sutil.Counters.since before))

let test_counters_baseline_reset_safe () =
  (* [baseline]/[deltas] are the reset-safe variant of
     [snapshot]/[since]: a [reset_all] between the two restarts every
     counter from zero and the baseline is ignored for them, so deltas
     never go negative across sequenced runs in one process *)
  let c = Sutil.Counters.counter "test.baseline_reset" in
  Sutil.Counters.bump c 5;
  let b = Sutil.Counters.baseline () in
  Sutil.Counters.bump c 2;
  Alcotest.(check (option int)) "plain delta" (Some 2)
    (List.assoc_opt "test.baseline_reset" (Sutil.Counters.deltas b));
  let b = Sutil.Counters.baseline () in
  Sutil.Counters.reset_all ();
  (* counter restarted from zero: baseline value (7) must not be
     subtracted — [since] would report -7 here *)
  Alcotest.(check (option int)) "reset alone yields no delta" None
    (List.assoc_opt "test.baseline_reset" (Sutil.Counters.deltas b));
  Sutil.Counters.bump c 3;
  let d = Sutil.Counters.deltas b in
  Alcotest.(check (option int)) "post-reset bumps count from zero" (Some 3)
    (List.assoc_opt "test.baseline_reset" d);
  Alcotest.(check bool) "no negative delta anywhere" true
    (List.for_all (fun (_, v) -> v > 0) d)

let test_pool_parallel_for () =
  Sutil.Pool.with_pool ~workers:4 (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Sutil.Pool.parallel_for pool n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits);
      (* nested: a loop submitted from inside a task still completes *)
      let out = Array.make 8 0 in
      Sutil.Pool.parallel_for pool 8 (fun i ->
          Sutil.Pool.parallel_for pool 4 (fun _ -> ());
          out.(i) <- i);
      Alcotest.(check bool) "nested loops finish" true
        (Array.for_all2 (fun v i -> v = i) out (Array.init 8 Fun.id)))

let test_pool_init_and_errors () =
  Sutil.Pool.with_pool ~workers:3 (fun pool ->
      let a = Sutil.Pool.parallel_init pool 100 (fun i -> i * i) in
      Alcotest.(check bool) "init slots" true
        (Array.for_all2 ( = ) a (Array.init 100 (fun i -> i * i)));
      Alcotest.check_raises "exception re-raised" (Failure "boom") (fun () ->
          Sutil.Pool.parallel_for pool 10 (fun i ->
              if i = 7 then failwith "boom")));
  (* workers=1 never spawns a domain and runs inline *)
  Sutil.Pool.with_pool ~workers:1 (fun pool ->
      Alcotest.(check int) "inline pool size" 1 (Sutil.Pool.size pool);
      let r = ref 0 in
      Sutil.Pool.parallel_for pool 5 (fun i -> r := !r + i);
      Alcotest.(check int) "inline sum" 10 !r)

let test_strutil () =
  Alcotest.(check string) "indent" "  a\n  b" (Sutil.Strutil.indent 2 "a\nb");
  Alcotest.(check bool) "starts_with" true
    (Sutil.Strutil.starts_with ~prefix:"ab" "abc");
  Alcotest.(check bool) "not starts_with" false
    (Sutil.Strutil.starts_with ~prefix:"abc" "ab");
  Alcotest.(check (float 0.001)) "percent" 50.0
    (Sutil.Strutil.percent ~base:4.0 2.0)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "non-negative" `Quick test_rng_nonnegative;
          Alcotest.test_case "zero bound" `Quick test_rng_int_rejects_zero;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        ] );
      ( "combi",
        [
          Alcotest.test_case "subset counts" `Quick test_subsets_count;
          Alcotest.test_case "subsets distinct" `Quick test_subsets_distinct;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          prop_take_drop;
          prop_subsets_subset;
        ] );
      ( "counters",
        [
          Alcotest.test_case "4-domain hammer" `Quick
            test_counters_atomic_hammer;
          Alcotest.test_case "since diffs over union" `Quick
            test_counters_since_union;
          Alcotest.test_case "baseline survives reset_all" `Quick
            test_counters_baseline_reset_safe;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel_for" `Quick test_pool_parallel_for;
          Alcotest.test_case "init and errors" `Quick
            test_pool_init_and_errors;
        ] );
      ("strutil", [ Alcotest.test_case "basics" `Quick test_strutil ]);
    ]
