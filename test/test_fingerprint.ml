(* Fingerprint (Definition 1) and Algorithm 1 tests. *)

(* find memo groups by operator content (group numbering is DFS order) *)
let find_groups memo pred =
  let acc = ref [] in
  Smemo.Memo.iter_groups memo (fun g ->
      if pred (List.hd (Smemo.Memo.exprs g)).Smemo.Memo.mop then
        acc := g.Smemo.Memo.id :: !acc);
  List.rev !acc

let extracts memo =
  find_groups memo (function Slogical.Logop.Extract _ -> true | _ -> false)

let group_bys_on memo keys =
  find_groups memo (function
    | Slogical.Logop.Group_by { keys = k; _ } -> k = keys
    | _ -> false)

let test_equal_scripts_equal_fingerprints () =
  let m1 = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let m2 = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let f1 = Cse.Fingerprint.of_memo m1 and f2 = Cse.Fingerprint.of_memo m2 in
  for g = 0 to Smemo.Memo.size m1 - 1 do
    Alcotest.(check int)
      (Printf.sprintf "group %d" g)
      (Hashtbl.find f1 g) (Hashtbl.find f2 g)
  done

let test_file_identity () =
  (* same file through different path spellings gets the same fingerprint *)
  let s a b =
    Printf.sprintf
      {|X = EXTRACT A,B,C,D FROM "%s" USING L;
        Y = EXTRACT A,B,C,D FROM "%s" USING L;
        OUTPUT X TO "o1"; OUTPUT Y TO "o2";|}
      a b
  in
  let memo = Thelpers.memo_of (s {|...\test.log|} {|another\dir\test.log|}) in
  let f = Cse.Fingerprint.of_memo memo in
  (match extracts memo with
  | [ x; y ] ->
      Alcotest.(check int) "same FileID" (Hashtbl.find f x) (Hashtbl.find f y)
  | _ -> Alcotest.fail "expected two extracts");
  let memo2 = Thelpers.memo_of (s "test.log" "test2.log") in
  let f2 = Cse.Fingerprint.of_memo memo2 in
  match extracts memo2 with
  | [ x; y ] ->
      Alcotest.(check bool) "different files differ" true
        (Hashtbl.find f2 x <> Hashtbl.find f2 y)
  | _ -> Alcotest.fail "expected two extracts"

let test_structural_equality () =
  let script =
    {|X = EXTRACT A,B,C,D FROM "test.log" USING L;
      Y = EXTRACT A,B,C,D FROM "test.log" USING L;
      GX = SELECT A, Sum(D) AS S FROM X GROUP BY A;
      GY = SELECT A, Sum(D) AS S FROM Y GROUP BY A;
      GZ = SELECT B, Sum(D) AS S FROM Y GROUP BY B;
      OUTPUT GX TO "o1"; OUTPUT GY TO "o2"; OUTPUT GZ TO "o3";|}
  in
  let memo = Thelpers.memo_of script in
  (match extracts memo with
  | [ x; y ] ->
      Alcotest.(check bool) "extracts equal" true
        (Cse.Fingerprint.equal_subexpr memo x y)
  | _ -> Alcotest.fail "expected two extracts");
  (match group_bys_on memo [ "A" ] with
  | [ gx; gy ] ->
      Alcotest.(check bool) "same keys equal" true
        (Cse.Fingerprint.equal_subexpr memo gx gy);
      (match group_bys_on memo [ "B" ] with
      | [ gz ] ->
          Alcotest.(check bool) "different keys differ" false
            (Cse.Fingerprint.equal_subexpr memo gy gz)
      | _ -> Alcotest.fail "expected GB(B)")
  | _ -> Alcotest.fail "expected two GB(A)")

let test_fingerprint_collisions_rejected_structurally () =
  (* GB(A) and GB(B) over the same child share an OpID -- the fingerprints
     collide by construction (Definition 1 hashes only the operator kind),
     and the structural check must tell them apart *)
  let script =
    {|X = EXTRACT A,B,C,D FROM "test.log" USING L;
      G1 = SELECT A, Sum(D) AS S FROM X GROUP BY A;
      G2 = SELECT B, Sum(D) AS S FROM X GROUP BY B;
      OUTPUT G1 TO "o1"; OUTPUT G2 TO "o2";|}
  in
  let memo = Thelpers.memo_of script in
  let f = Cse.Fingerprint.of_memo memo in
  match (group_bys_on memo [ "A" ], group_bys_on memo [ "B" ]) with
  | [ g1 ], [ g2 ] ->
      Alcotest.(check int) "kinds collide" (Hashtbl.find f g1) (Hashtbl.find f g2);
      Alcotest.(check bool) "structure differs" false
        (Cse.Fingerprint.equal_subexpr memo g1 g2)
  | _ -> Alcotest.fail "expected the two aggregations"

(* --- Algorithm 1 --------------------------------------------------------- *)

let shared_of memo = Cse.Spool.identify memo

let test_explicit_sharing_s1 () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let shared = shared_of memo in
  Alcotest.(check int) "one shared group" 1 (List.length shared);
  let s = List.hd shared in
  Alcotest.(check int) "spools GB(A,B,C)" 1 s.Cse.Spool.under;
  Alcotest.(check int) "two consumers" 2 s.Cse.Spool.initial_consumers;
  Alcotest.(check bool) "spool group marked shared" true
    (Smemo.Memo.group memo s.Cse.Spool.spool).Smemo.Memo.shared

let test_duplicate_merging () =
  let script =
    {|X = EXTRACT A,B,C,D FROM "test.log" USING L;
      Y = EXTRACT A,B,C,D FROM "test.log" USING L;
      GX = SELECT A,B,C,Sum(D) AS S FROM X GROUP BY A,B,C;
      GY = SELECT A,B,C,Sum(D) AS S FROM Y GROUP BY A,B,C;
      R1 = SELECT A,B,Sum(S) AS S1 FROM GX GROUP BY A,B;
      R2 = SELECT B,C,Sum(S) AS S2 FROM GY GROUP BY B,C;
      OUTPUT R1 TO "o1"; OUTPUT R2 TO "o2";|}
  in
  let memo = Thelpers.memo_of script in
  let shared = shared_of memo in
  (* GX/GY (and below them X/Y) merge into one shared aggregation; the
     merged extract has a single consumer and is not shared *)
  Alcotest.(check int) "one shared group after merging" 1 (List.length shared);
  Alcotest.(check int) "two consumers" 2
    (List.hd shared).Cse.Spool.initial_consumers

let test_duplicates_not_merged_when_disabled () =
  let script =
    {|X = EXTRACT A,B,C,D FROM "test.log" USING L;
      Y = EXTRACT A,B,C,D FROM "test.log" USING L;
      GX = SELECT A,Sum(D) AS S FROM X GROUP BY A;
      GY = SELECT A,Sum(D) AS S FROM Y GROUP BY A;
      OUTPUT GX TO "o1"; OUTPUT GY TO "o2";|}
  in
  let memo = Thelpers.memo_of script in
  let shared =
    Cse.Spool.identify
      ~config:{ Cse.Config.default with Cse.Config.use_fingerprints = false }
      memo
  in
  Alcotest.(check int) "no sharing without fingerprints" 0 (List.length shared);
  let memo2 = Thelpers.memo_of script in
  Alcotest.(check int) "sharing with fingerprints" 1
    (List.length (Cse.Spool.identify memo2))

let test_no_double_spool () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  ignore (shared_of memo);
  let again = Cse.Spool.identify memo in
  Alcotest.(check int) "idempotent" 0 (List.length again)

let test_s3_two_shared () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s3 in
  let shared = shared_of memo in
  Alcotest.(check int) "two shared groups" 2 (List.length shared)

let test_s4_three_shared () =
  (* R, R1 and R2 all have two consumers each (Figure 3(c) shape) *)
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s4 in
  let shared = shared_of memo in
  Alcotest.(check int) "three shared groups" 3 (List.length shared);
  List.iter
    (fun (s : Cse.Spool.shared) ->
      Alcotest.(check int) "two consumers each" 2 s.Cse.Spool.initial_consumers)
    shared

let test_s2_three_consumers () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s2 in
  match shared_of memo with
  | [ s ] -> Alcotest.(check int) "three consumers" 3 s.Cse.Spool.initial_consumers
  | l -> Alcotest.failf "expected one shared group, got %d" (List.length l)

let test_consumers_repoint_to_spool () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let shared = List.hd (shared_of memo) in
  let parents = Smemo.Memo.parents memo in
  Alcotest.(check (list int)) "underlying group feeds only the spool"
    [ shared.Cse.Spool.spool ]
    parents.(shared.Cse.Spool.under);
  Alcotest.(check int) "spool has the consumers" 2
    (List.length parents.(shared.Cse.Spool.spool))

let () =
  Alcotest.run "fingerprint"
    [
      ( "definition 1",
        [
          Alcotest.test_case "deterministic" `Quick test_equal_scripts_equal_fingerprints;
          Alcotest.test_case "file identity" `Quick test_file_identity;
          Alcotest.test_case "structural equality" `Quick test_structural_equality;
          Alcotest.test_case "collisions verified" `Quick
            test_fingerprint_collisions_rejected_structurally;
        ] );
      ( "algorithm 1",
        [
          Alcotest.test_case "explicit sharing (S1)" `Quick test_explicit_sharing_s1;
          Alcotest.test_case "duplicate merging" `Quick test_duplicate_merging;
          Alcotest.test_case "fingerprints disabled" `Quick
            test_duplicates_not_merged_when_disabled;
          Alcotest.test_case "idempotent" `Quick test_no_double_spool;
          Alcotest.test_case "S2 consumers" `Quick test_s2_three_consumers;
          Alcotest.test_case "S3 shared" `Quick test_s3_two_shared;
          Alcotest.test_case "S4 shared" `Quick test_s4_three_shared;
          Alcotest.test_case "consumers repointed" `Quick test_consumers_repoint_to_spool;
        ] );
    ]
