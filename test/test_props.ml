open Sphys

(* Physical-property tests: the partitioning satisfaction rules the whole
   paper relies on, sort-order prefixes, property derivation through
   operators, and the plan checker. *)

let cs = Thelpers.colset

(* --- partitioning satisfaction ----------------------------------------- *)

let sat part req = Reqprops.part_satisfied part req

let test_range_satisfaction () =
  let abc = cs [ "A"; "B"; "C" ] in
  (* partitioned on {B} IS partitioned on {A,B,C} -- Figure 1(b) *)
  Alcotest.(check bool) "B within [∅,ABC]" true
    (sat (Partition.Hashed (cs [ "B" ])) (Reqprops.Hash_subset abc));
  Alcotest.(check bool) "AB within [∅,ABC]" true
    (sat (Partition.Hashed (cs [ "A"; "B" ])) (Reqprops.Hash_subset abc));
  Alcotest.(check bool) "ABC within [∅,ABC]" true
    (sat (Partition.Hashed abc) (Reqprops.Hash_subset abc));
  Alcotest.(check bool) "D not within" false
    (sat (Partition.Hashed (cs [ "D" ])) (Reqprops.Hash_subset abc));
  Alcotest.(check bool) "ABD not within" false
    (sat (Partition.Hashed (cs [ "A"; "B"; "D" ])) (Reqprops.Hash_subset abc));
  Alcotest.(check bool) "roundrobin never" false
    (sat Partition.Roundrobin (Reqprops.Hash_subset abc));
  Alcotest.(check bool) "serial trivially" true
    (sat Partition.Serial (Reqprops.Hash_subset abc))

let test_exact_satisfaction () =
  let b = cs [ "B" ] in
  Alcotest.(check bool) "exact match" true
    (sat (Partition.Hashed b) (Reqprops.Hash_exact b));
  Alcotest.(check bool) "subset not enough for exact" false
    (sat (Partition.Hashed b) (Reqprops.Hash_exact (cs [ "A"; "B" ])));
  Alcotest.(check bool) "serial not exact" false
    (sat Partition.Serial (Reqprops.Hash_exact b))

let test_any_and_serial () =
  Alcotest.(check bool) "any accepts roundrobin" true
    (sat Partition.Roundrobin Reqprops.Any);
  Alcotest.(check bool) "serial req" true (sat Partition.Serial Reqprops.Serial_req);
  Alcotest.(check bool) "hashed not serial" false
    (sat (Partition.Hashed (cs [ "A" ])) Reqprops.Serial_req)

let cols_gen =
  QCheck.Gen.(
    map Relalg.Colset.of_list
      (list_size (int_range 0 4) (oneofl [ "A"; "B"; "C"; "D" ])))

let colset_arb = QCheck.make ~print:Relalg.Colset.to_string cols_gen

(* Hashed S satisfies the range [∅,C] exactly when ∅ ≠ S ⊆ C. *)
let prop_range_rule =
  Thelpers.qtest "range rule" (QCheck.pair colset_arb colset_arb)
    (fun (s, c) ->
      sat (Partition.Hashed s) (Reqprops.Hash_subset c)
      = ((not (Relalg.Colset.is_empty s)) && Relalg.Colset.subset s c))

(* Transitivity: within [∅,C] and C ⊆ C' implies within [∅,C']. *)
let prop_range_monotone =
  Thelpers.qtest "range monotone"
    (QCheck.triple colset_arb colset_arb colset_arb)
    (fun (s, c, extra) ->
      let c' = Relalg.Colset.union c extra in
      if sat (Partition.Hashed s) (Reqprops.Hash_subset c) then
        sat (Partition.Hashed s) (Reqprops.Hash_subset c')
      else true)

(* --- sort orders --------------------------------------------------------- *)

let asc = Sortorder.asc

let test_sort_prefix () =
  Alcotest.(check bool) "prefix" true
    (Sortorder.prefix (asc [ "A" ]) (asc [ "A"; "B" ]));
  Alcotest.(check bool) "equal" true
    (Sortorder.prefix (asc [ "A"; "B" ]) (asc [ "A"; "B" ]));
  Alcotest.(check bool) "longer fails" false
    (Sortorder.prefix (asc [ "A"; "B" ]) (asc [ "A" ]));
  Alcotest.(check bool) "order matters" false
    (Sortorder.prefix (asc [ "B"; "A" ]) (asc [ "A"; "B" ]));
  Alcotest.(check bool) "empty is prefix of all" true
    (Sortorder.prefix [] (asc [ "X" ]));
  Alcotest.(check bool) "direction matters" false
    (Sortorder.prefix [ ("A", Sortorder.Desc) ] (asc [ "A"; "B" ]))

let test_sort_rename () =
  let f = function "A" -> Some "X" | "B" -> None | c -> Some c in
  Alcotest.(check bool) "cut at unmappable" true
    (Sortorder.rename f (asc [ "A"; "B"; "C" ]) = asc [ "X" ])

let test_retained_prefix () =
  let keep c = c <> "B" in
  Alcotest.(check bool) "retained stops at first dropped column" true
    (Sortorder.retained_prefix keep (asc [ "A"; "B"; "C" ]) = asc [ "A" ])

(* --- delivered property derivation -------------------------------------- *)

let schema cols = List.map (fun c -> Relalg.Schema.column c Relalg.Schema.Tint) cols

let props part sort = Props.make part sort

let test_deliver_exchange () =
  let d =
    Physop.deliver
      (Physop.P_exchange { cols = cs [ "B" ] })
      (schema [ "A"; "B" ])
      [ props Partition.Roundrobin (asc [ "A" ]) ]
  in
  Alcotest.(check bool) "hash delivered" true
    (Partition.equal d.Props.part (Partition.Hashed (cs [ "B" ])));
  Alcotest.(check bool) "sort destroyed" true (Sortorder.is_empty d.Props.sort)

let test_deliver_merge_exchange () =
  let d =
    Physop.deliver
      (Physop.P_merge_exchange { cols = cs [ "B" ] })
      (schema [ "A"; "B" ])
      [ props Partition.Roundrobin (asc [ "A"; "B" ]) ]
  in
  Alcotest.(check bool) "sort preserved" true (d.Props.sort = asc [ "A"; "B" ])

let test_deliver_sort () =
  let d =
    Physop.deliver
      (Physop.P_sort { order = asc [ "C" ] })
      (schema [ "C" ])
      [ props (Partition.Hashed (cs [ "C" ])) [] ]
  in
  Alcotest.(check bool) "partitioning preserved" true
    (Partition.equal d.Props.part (Partition.Hashed (cs [ "C" ])));
  Alcotest.(check bool) "sorted" true (d.Props.sort = asc [ "C" ])

let test_deliver_project_rename () =
  let items = [ (Relalg.Expr.Col "A", "X"); (Relalg.Expr.Col "B", "Y") ] in
  let d =
    Physop.deliver
      (Physop.P_project { items })
      (schema [ "X"; "Y" ])
      [ props (Partition.Hashed (cs [ "A" ])) (asc [ "A"; "B" ]) ]
  in
  Alcotest.(check bool) "partitioning renamed" true
    (Partition.equal d.Props.part (Partition.Hashed (cs [ "X" ])));
  Alcotest.(check bool) "sort renamed" true (d.Props.sort = asc [ "X"; "Y" ])

let test_deliver_project_drop () =
  (* dropping a partitioning column degrades to roundrobin *)
  let items = [ (Relalg.Expr.Col "B", "B") ] in
  let d =
    Physop.deliver
      (Physop.P_project { items })
      (schema [ "B" ])
      [ props (Partition.Hashed (cs [ "A" ])) (asc [ "A"; "B" ]) ]
  in
  Alcotest.(check bool) "degraded" true
    (Partition.equal d.Props.part Partition.Roundrobin);
  Alcotest.(check bool) "sort cut" true (Sortorder.is_empty d.Props.sort)

let test_deliver_union_copartitioned () =
  let b = Partition.Hashed (cs [ "B" ]) in
  let d =
    Physop.deliver Physop.P_union_all
      (schema [ "A"; "B" ])
      [ props b (asc [ "B" ]); props b [] ]
  in
  Alcotest.(check bool) "partitioning kept" true (Partition.equal d.Props.part b);
  Alcotest.(check bool) "order lost" true (Sortorder.is_empty d.Props.sort);
  let d2 =
    Physop.deliver Physop.P_union_all
      (schema [ "A"; "B" ])
      [ props b []; props (Partition.Hashed (cs [ "A" ])) [] ]
  in
  Alcotest.(check bool) "mismatched inputs degrade" true
    (Partition.equal d2.Props.part Partition.Roundrobin)

let test_deliver_hash_agg_drops_sort () =
  let d =
    Physop.deliver
      (Physop.P_hash_agg { keys = [ "A" ]; aggs = []; scope = Physop.Full })
      (schema [ "A" ])
      [ props (Partition.Hashed (cs [ "A" ])) (asc [ "A" ]) ]
  in
  Alcotest.(check bool) "no sort after hash agg" true
    (Sortorder.is_empty d.Props.sort)

let test_deliver_stream_agg_keeps () =
  let d =
    Physop.deliver
      (Physop.P_stream_agg { keys = [ "A"; "B" ]; aggs = []; scope = Physop.Full })
      (schema [ "A"; "B" ])
      [ props (Partition.Hashed (cs [ "B" ])) (asc [ "B"; "A" ]) ]
  in
  Alcotest.(check bool) "partitioning kept" true
    (Partition.equal d.Props.part (Partition.Hashed (cs [ "B" ])));
  Alcotest.(check bool) "sort kept" true (d.Props.sort = asc [ "B"; "A" ])

(* --- requirement keys / weights ------------------------------------------ *)

let test_req_keys_distinct () =
  let reqs =
    [
      Reqprops.none;
      Reqprops.make (Reqprops.Hash_subset (cs [ "A" ])) [];
      Reqprops.make (Reqprops.Hash_exact (cs [ "A" ])) [];
      Reqprops.make (Reqprops.Hash_exact (cs [ "A" ])) (asc [ "A" ]);
      Reqprops.make Reqprops.Serial_req [];
    ]
  in
  let keys = List.map Reqprops.to_key reqs in
  Alcotest.(check int) "all keys distinct" (List.length reqs)
    (List.length (List.sort_uniq compare keys))

let test_enforcer_weights_decrease () =
  let reqs =
    [
      Reqprops.make (Reqprops.Hash_exact (cs [ "A" ])) (asc [ "A" ]);
      Reqprops.make (Reqprops.Hash_subset (cs [ "A"; "B" ])) (asc [ "B" ]);
      Reqprops.make Reqprops.Any (asc [ "A" ]);
      Reqprops.make Reqprops.Serial_req (asc [ "A" ]);
      Reqprops.make (Reqprops.Hash_exact (cs [ "A" ])) [];
    ]
  in
  List.iter
    (fun req ->
      List.iter
        (fun (alt : Sopt.Enforcers.alt) ->
          if Reqprops.weight alt.Sopt.Enforcers.inner >= Reqprops.weight req then
            Alcotest.fail "enforcer must weaken the requirement")
        (Sopt.Enforcers.alternatives req))
    reqs

let test_no_enforcers_for_none () =
  Alcotest.(check int) "nothing to enforce" 0
    (List.length (Sopt.Enforcers.alternatives Reqprops.none))

(* --- plan checker negative cases ----------------------------------------- *)

let dummy_stats =
  { Slogical.Stats.rows = 100.0; row_bytes = 8.0; ndvs = [ ("A", 10.0) ] }

let mk op children schema =
  Plan.make ~op ~children ~group:0 ~schema ~stats:dummy_stats ~op_cost:1.0

let test_checker_catches_unsorted_stream_agg () =
  let extract =
    mk
      (Physop.P_extract
         { file = "f"; extractor = "X"; schema = schema [ "A"; "B" ] })
      []
      (schema [ "A"; "B" ])
  in
  let bad =
    mk
      (Physop.P_stream_agg { keys = [ "A" ]; aggs = []; scope = Physop.Local })
      [ extract ] (schema [ "A" ])
  in
  Alcotest.(check bool) "violation found" true
    (Plan_check.check_op bad <> [])

let test_checker_catches_unpartitioned_global () =
  let extract =
    mk
      (Physop.P_extract
         { file = "f"; extractor = "X"; schema = schema [ "A"; "B" ] })
      []
      (schema [ "A"; "B" ])
  in
  let sorted = mk (Physop.P_sort { order = asc [ "A" ] }) [ extract ] (schema [ "A"; "B" ]) in
  let bad =
    mk
      (Physop.P_stream_agg { keys = [ "A" ]; aggs = []; scope = Physop.Full })
      [ sorted ] (schema [ "A" ])
  in
  Alcotest.(check bool) "global agg needs partitioned input" true
    (Plan_check.check_op bad <> []);
  let ok_local =
    mk
      (Physop.P_stream_agg { keys = [ "A" ]; aggs = []; scope = Physop.Local })
      [ sorted ] (schema [ "A" ])
  in
  Alcotest.(check bool) "local agg is fine" true
    (Plan_check.check_op ok_local = [])

let test_checker_catches_non_copartitioned_join () =
  let side cols_part =
    let e =
      mk
        (Physop.P_extract
           { file = "f"; extractor = "X"; schema = schema [ "K"; "V" ] })
        []
        (schema [ "K"; "V" ])
    in
    mk (Physop.P_exchange { cols = cs cols_part }) [ e ] (schema [ "K"; "V" ])
  in
  let l = side [ "K" ] and r = side [ "V" ] in
  let bad =
    mk
      (Physop.P_hash_join
         { kind = Slogical.Logop.Inner; pairs = [ ("K", "K") ]; residual = None })
      [ l; r ]
      (schema [ "K"; "V"; "K"; "V" ])
  in
  Alcotest.(check bool) "co-partitioning enforced" true
    (Plan_check.check_op bad <> [])

(* --- sorted_on_keys / co_partitioned edge cases --------------------------- *)

let test_sorted_on_keys_edges () =
  (* no keys: any input qualifies, sorted or not *)
  Alcotest.(check bool) "empty keys, empty sort" true
    (Plan_check.sorted_on_keys [] []);
  Alcotest.(check bool) "empty keys, sorted input" true
    (Plan_check.sorted_on_keys (asc [ "A" ]) []);
  (* any permutation of the keys is an acceptable grouping prefix *)
  Alcotest.(check bool) "permuted prefix" true
    (Plan_check.sorted_on_keys (asc [ "B"; "A"; "C" ]) [ "A"; "B" ]);
  Alcotest.(check bool) "prefix too short" false
    (Plan_check.sorted_on_keys (asc [ "A" ]) [ "A"; "B" ]);
  (* a duplicated column in the sort prefix covers fewer keys than its
     length suggests *)
  Alcotest.(check bool) "duplicate column in sort prefix" false
    (Plan_check.sorted_on_keys (asc [ "A"; "A" ]) [ "A"; "B" ]);
  Alcotest.(check bool) "duplicate beyond the prefix is harmless" true
    (Plan_check.sorted_on_keys (asc [ "A"; "B"; "A" ]) [ "A"; "B" ]);
  (* the prefix must cover the keys exactly, not some superset column *)
  Alcotest.(check bool) "wrong column in prefix" false
    (Plan_check.sorted_on_keys (asc [ "A"; "C" ]) [ "A"; "B" ])

let test_co_partitioned_edges () =
  let pairs = [ ("K", "J") ] in
  (* serial on both sides always qualifies, even with no pairs *)
  Alcotest.(check bool) "serial/serial" true
    (Plan_check.co_partitioned [] Partition.Serial Partition.Serial);
  (* roundrobin never co-locates matching rows *)
  Alcotest.(check bool) "roundrobin left" false
    (Plan_check.co_partitioned pairs Partition.Roundrobin
       (Partition.Hashed (cs [ "J" ])));
  Alcotest.(check bool) "roundrobin both" false
    (Plan_check.co_partitioned pairs Partition.Roundrobin Partition.Roundrobin);
  (* a serial/hashed mix leaves one side's rows spread over machines *)
  Alcotest.(check bool) "serial/hashed mix" false
    (Plan_check.co_partitioned pairs Partition.Serial
       (Partition.Hashed (cs [ "J" ])));
  Alcotest.(check bool) "hashed/serial mix" false
    (Plan_check.co_partitioned pairs (Partition.Hashed (cs [ "K" ]))
       Partition.Serial);
  (* aligned hashing through the pair mapping qualifies; misaligned does
     not *)
  Alcotest.(check bool) "aligned hashed" true
    (Plan_check.co_partitioned pairs
       (Partition.Hashed (cs [ "K" ]))
       (Partition.Hashed (cs [ "J" ])));
  Alcotest.(check bool) "misaligned hashed" false
    (Plan_check.co_partitioned pairs
       (Partition.Hashed (cs [ "V" ]))
       (Partition.Hashed (cs [ "J" ])));
  (* hashing on empty column sets can never certify co-location *)
  Alcotest.(check bool) "empty hash sets" false
    (Plan_check.co_partitioned pairs
       (Partition.Hashed (cs []))
       (Partition.Hashed (cs [])))

let () =
  Alcotest.run "props"
    [
      ( "partitioning",
        [
          Alcotest.test_case "range rule" `Quick test_range_satisfaction;
          Alcotest.test_case "exact rule" `Quick test_exact_satisfaction;
          Alcotest.test_case "any/serial" `Quick test_any_and_serial;
          prop_range_rule;
          prop_range_monotone;
        ] );
      ( "sorting",
        [
          Alcotest.test_case "prefix" `Quick test_sort_prefix;
          Alcotest.test_case "rename" `Quick test_sort_rename;
          Alcotest.test_case "retained prefix" `Quick test_retained_prefix;
        ] );
      ( "deliver",
        [
          Alcotest.test_case "exchange" `Quick test_deliver_exchange;
          Alcotest.test_case "merge exchange" `Quick test_deliver_merge_exchange;
          Alcotest.test_case "sort" `Quick test_deliver_sort;
          Alcotest.test_case "project rename" `Quick test_deliver_project_rename;
          Alcotest.test_case "project drop" `Quick test_deliver_project_drop;
          Alcotest.test_case "union co-partitioned" `Quick
            test_deliver_union_copartitioned;
          Alcotest.test_case "hash agg" `Quick test_deliver_hash_agg_drops_sort;
          Alcotest.test_case "stream agg" `Quick test_deliver_stream_agg_keeps;
        ] );
      ( "requirements",
        [
          Alcotest.test_case "distinct keys" `Quick test_req_keys_distinct;
          Alcotest.test_case "enforcer weights" `Quick test_enforcer_weights_decrease;
          Alcotest.test_case "none needs nothing" `Quick test_no_enforcers_for_none;
        ] );
      ( "checker",
        [
          Alcotest.test_case "unsorted stream agg" `Quick
            test_checker_catches_unsorted_stream_agg;
          Alcotest.test_case "unpartitioned global agg" `Quick
            test_checker_catches_unpartitioned_global;
          Alcotest.test_case "non-co-partitioned join" `Quick
            test_checker_catches_non_copartitioned_join;
          Alcotest.test_case "sorted_on_keys edge cases" `Quick
            test_sorted_on_keys_edges;
          Alcotest.test_case "co_partitioned edge cases" `Quick
            test_co_partitioned_edges;
        ] );
    ]
