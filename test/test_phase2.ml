open Sphys

(* End-to-end tests of the phase-2 re-optimization (Algorithms 4 and 5):
   plan shapes against Figure 8, single materialization, enforcement
   uniformity, compensation above the spool, budget behaviour and the
   comparison against conventional optimization. *)

let s1_report = lazy (Thelpers.pipeline Sworkload.Paper_scripts.s1)

let test_cse_cheaper_on_paper_scripts () =
  List.iter
    (fun (name, script) ->
      let r = Thelpers.pipeline script in
      if r.Cse.Pipeline.cse_cost > r.Cse.Pipeline.conventional_cost then
        Alcotest.failf "%s: CSE plan costlier (%g vs %g)" name
          r.Cse.Pipeline.cse_cost r.Cse.Pipeline.conventional_cost;
      Thelpers.assert_valid_plan name r.Cse.Pipeline.cse_plan;
      Thelpers.assert_valid_plan (name ^ " conv") r.Cse.Pipeline.conventional_plan)
    Sworkload.Paper_scripts.all

let test_figure8_shape () =
  let r = Lazy.force s1_report in
  let plan = r.Cse.Pipeline.cse_plan in
  (* one extract, one repartition, one spool producer with two references *)
  Alcotest.(check int) "extract once" 1 (Thelpers.distinct_count_op "Extract" plan);
  Alcotest.(check int) "repartition once" 1
    (Thelpers.distinct_count_op "SortMergeExchange" plan
    + Thelpers.distinct_count_op "Repartition" plan);
  let distinct, refs = Scost.Dagcost.spool_counts plan in
  Alcotest.(check int) "one materialization" 1 distinct;
  Alcotest.(check int) "two references" 2 refs

let test_figure8_partitioning_on_b () =
  (* the winning round enforces partitioning on {B}: the only scheme that
     satisfies both consumers without repartitioning the shared result *)
  let r = Lazy.force s1_report in
  let spool_part = ref None in
  Plan.fold
    (fun () n ->
      match n.Plan.op with
      | Physop.P_spool -> spool_part := Some n.Plan.props.Props.part
      | _ -> ())
    () r.Cse.Pipeline.cse_plan;
  match !spool_part with
  | Some (Partition.Hashed s) ->
      Alcotest.check Thelpers.colset_t "hash{B}" (Thelpers.colset [ "B" ]) s
  | _ -> Alcotest.fail "spool not hash-partitioned"

let test_consumers_share_one_plan_value () =
  let r = Lazy.force s1_report in
  let spools = ref [] in
  Plan.fold
    (fun () n ->
      match n.Plan.op with
      | Physop.P_spool -> spools := n :: !spools
      | _ -> ())
    () r.Cse.Pipeline.cse_plan;
  match !spools with
  | [ a; b ] ->
      Alcotest.(check bool) "physically shared" true (a == b)
  | l -> Alcotest.failf "expected two spool references, got %d" (List.length l)

let test_compensation_above_spool () =
  (* one consumer needs a different sort order than the spool delivers:
     a Sort must appear between the spool and that consumer, and the plan
     must still validate *)
  let r = Lazy.force s1_report in
  Alcotest.(check bool) "a compensating sort exists" true
    (Thelpers.count_op "Sort" r.Cse.Pipeline.cse_plan >= 2)

let test_phase1_plan_also_valid () =
  let r = Lazy.force s1_report in
  Thelpers.assert_valid_plan "phase 1" r.Cse.Pipeline.phase1_plan;
  (* the final plan is at least as cheap as the phase-1 plan *)
  Alcotest.(check bool) "phase 2 no worse" true
    (r.Cse.Pipeline.cse_cost
    <= Scost.Dagcost.cost Scost.Cluster.default r.Cse.Pipeline.phase1_plan
       +. 1e-6)

let test_s3_distinct_lcas_optimized () =
  let r = Thelpers.pipeline Sworkload.Paper_scripts.s3 in
  Alcotest.(check int) "both shared groups got LCAs" 2
    (List.length r.Cse.Pipeline.lcas);
  let distinct, refs = Scost.Dagcost.spool_counts r.Cse.Pipeline.cse_plan in
  Alcotest.(check int) "two materializations" 2 distinct;
  Alcotest.(check int) "four references" 4 refs

let test_s2_three_consumer_sharing () =
  let r = Thelpers.pipeline Sworkload.Paper_scripts.s2 in
  let distinct, refs = Scost.Dagcost.spool_counts r.Cse.Pipeline.cse_plan in
  Alcotest.(check int) "one materialization" 1 distinct;
  Alcotest.(check int) "three references" 3 refs;
  (* more consumers than S1 => bigger relative saving *)
  let r1 = Lazy.force s1_report in
  Alcotest.(check bool) "S2 saves more than S1" true
    (Cse.Pipeline.ratio r < Cse.Pipeline.ratio r1)

(* The exact round-count tests run with pruning off: they verify the
   enumeration machinery itself (one round per candidate).  Pruned-mode
   accounting is covered in test_prune.ml. *)
let exhaustive = Cse.Config.no_pruning Cse.Config.default

let test_round_counts_s1 () =
  let r = Thelpers.pipeline ~config:exhaustive Sworkload.Paper_scripts.s1 in
  let history = List.assoc (fst (List.hd r.Cse.Pipeline.lcas)) r.Cse.Pipeline.history_sizes in
  Alcotest.(check int) "one round per property set" history
    r.Cse.Pipeline.rounds_executed

let test_independent_sequencing_in_pipeline () =
  let r =
    Thelpers.pipeline ~config:exhaustive Sworkload.Paper_scripts.independent_pair
  in
  let sizes = List.map snd r.Cse.Pipeline.history_sizes in
  (match sizes with
  | [ a; b ] ->
      Alcotest.(check int) "sequential rounds" (a + b - 1)
        r.Cse.Pipeline.rounds_executed
  | _ -> Alcotest.fail "expected two shared groups");
  (* without VIII-A the same script needs the full product *)
  let r2 =
    Thelpers.pipeline
      ~config:{ exhaustive with Cse.Config.use_independent_groups = false }
      Sworkload.Paper_scripts.independent_pair
  in
  (match sizes with
  | [ a; b ] ->
      Alcotest.(check int) "product rounds" (a * b) r2.Cse.Pipeline.rounds_executed
  | _ -> ());
  (* both configurations find equally good plans here *)
  Alcotest.(check (float 1.0)) "same cost" r.Cse.Pipeline.cse_cost
    r2.Cse.Pipeline.cse_cost

let test_budget_cuts_rounds () =
  let budget = Sopt.Budget.create ~max_tasks:1 () in
  let r = Thelpers.pipeline ~budget Sworkload.Paper_scripts.s4 in
  (* the budget is exhausted immediately: no rounds run, but a valid plan
     (the phase-1 shape) still comes out *)
  Alcotest.(check int) "no rounds" 0 r.Cse.Pipeline.rounds_executed;
  Thelpers.assert_valid_plan "budgeted" r.Cse.Pipeline.cse_plan

let test_budget_partial_rounds () =
  let unbounded = Thelpers.pipeline Sworkload.Paper_scripts.s4 in
  let budget = Sopt.Budget.create ~max_seconds:0.02 () in
  let r = Thelpers.pipeline ~budget Sworkload.Paper_scripts.s4 in
  Alcotest.(check bool) "fewer rounds than unbounded" true
    (r.Cse.Pipeline.rounds_executed <= unbounded.Cse.Pipeline.rounds_executed);
  Thelpers.assert_valid_plan "partial" r.Cse.Pipeline.cse_plan;
  Alcotest.(check bool) "still no costlier than phase 1" true
    (r.Cse.Pipeline.cse_cost
    <= Scost.Dagcost.cost Scost.Cluster.default r.Cse.Pipeline.phase1_plan +. 1e-6)

let test_extensions_do_not_change_s1 () =
  let r = Lazy.force s1_report in
  let r2 = Thelpers.pipeline ~config:Cse.Config.no_extensions Sworkload.Paper_scripts.s1 in
  Alcotest.(check (float 1.0)) "same plan cost" r.Cse.Pipeline.cse_cost
    r2.Cse.Pipeline.cse_cost

let test_execution_matches_on_all_scripts () =
  List.iter
    (fun (name, script) ->
      let catalog = Thelpers.default_catalog () in
      let r = Cse.Pipeline.run ~catalog script in
      let v =
        Sexec.Validate.check ~machines:13 catalog r.Cse.Pipeline.dag
          r.Cse.Pipeline.cse_plan
      in
      if not v.Sexec.Validate.ok then
        Alcotest.failf "%s: %s" name
          (String.concat "; " v.Sexec.Validate.mismatches))
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

let () =
  Alcotest.run "phase2"
    [
      ( "plans",
        [
          Alcotest.test_case "CSE never costlier (paper scripts)" `Quick
            test_cse_cheaper_on_paper_scripts;
          Alcotest.test_case "Figure 8(b) shape" `Quick test_figure8_shape;
          Alcotest.test_case "Figure 8(b) partition {B}" `Quick
            test_figure8_partitioning_on_b;
          Alcotest.test_case "single shared plan value" `Quick
            test_consumers_share_one_plan_value;
          Alcotest.test_case "compensation above spool" `Quick
            test_compensation_above_spool;
          Alcotest.test_case "phase-1 plan valid" `Quick test_phase1_plan_also_valid;
          Alcotest.test_case "S3 two LCAs" `Quick test_s3_distinct_lcas_optimized;
          Alcotest.test_case "S2 three consumers" `Quick test_s2_three_consumer_sharing;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "S1 round count" `Quick test_round_counts_s1;
          Alcotest.test_case "independent sequencing" `Quick
            test_independent_sequencing_in_pipeline;
          Alcotest.test_case "budget stops rounds" `Quick test_budget_cuts_rounds;
          Alcotest.test_case "budget partial" `Quick test_budget_partial_rounds;
          Alcotest.test_case "extensions neutral on S1" `Quick
            test_extensions_do_not_change_s1;
        ] );
      ( "execution",
        [
          Alcotest.test_case "all scripts match reference" `Slow
            test_execution_matches_on_all_scripts;
        ] );
    ]
