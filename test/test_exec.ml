open Relalg

(* Simulated-cluster execution tests: operator semantics, exchange
   co-location, determinism, counters, and full plan validation against
   the reference evaluator. *)

let schema cols = List.map (fun c -> Schema.column c Schema.Tint) cols

let test_datagen_deterministic () =
  let catalog = Catalog.default () in
  let s = schema [ "A"; "B"; "C"; "D" ] in
  let t1 = Sexec.Datagen.table catalog ~file:"test.log" ~schema:s in
  let t2 = Sexec.Datagen.table catalog ~file:"test.log" ~schema:s in
  Alcotest.(check bool) "same rows" true (Table.same_contents t1 t2);
  Alcotest.(check int) "scaled to cap" 2000 (Table.cardinality t1)

let test_datagen_distinct_files_differ () =
  let catalog = Catalog.default () in
  let s = schema [ "A"; "B" ] in
  let t1 = Sexec.Datagen.table catalog ~file:"test.log" ~schema:s in
  let t2 = Sexec.Datagen.table catalog ~file:"test2.log" ~schema:s in
  Alcotest.(check bool) "different files differ" false (Table.same_contents t1 t2)

let test_datagen_aggregation_reduces () =
  let catalog = Catalog.default () in
  let s = schema [ "A"; "B" ] in
  let t = Sexec.Datagen.table catalog ~file:"test.log" ~schema:s in
  let g = Table.group_by t ~keys:[ "A" ] ~aggs:[] in
  Alcotest.(check bool) "grouping reduces rows" true
    (Table.cardinality g < Table.cardinality t)

(* --- exchange co-location ------------------------------------------------ *)

let dist_of_rows engine s rows =
  let machines = engine.Sexec.Engine.machines in
  let parts = Array.make machines [] in
  List.iteri (fun i r -> parts.(i mod machines) <- r :: parts.(i mod machines)) rows;
  Sexec.Engine.dist_of_parts s parts

let test_exchange_colocates_groups () =
  let catalog = Catalog.create () in
  let engine = Sexec.Engine.create ~machines:5 catalog in
  let s = schema [ "A"; "B" ] in
  let rows =
    List.init 200 (fun i -> [| Value.Int (i mod 7); Value.Int (i mod 3) |])
  in
  let d = dist_of_rows engine s rows in
  let ex = Sexec.Engine.exchange engine d (Colset.of_list [ "A" ]) in
  (* rows with equal A all land on one machine *)
  let homes = Hashtbl.create 8 in
  for m = 0 to 4 do
    List.iter
      (fun row ->
        match Hashtbl.find_opt homes row.(0) with
        | Some m0 -> Alcotest.(check int) "co-located" m0 m
        | None -> Hashtbl.add homes row.(0) m)
      (Sexec.Engine.part_rows ex m)
  done;
  Alcotest.(check int) "rows preserved" 200 (Sexec.Engine.dist_rows ex);
  Alcotest.(check int) "shuffle counter" 200
    engine.Sexec.Engine.counters.Sexec.Engine.rows_shuffled

let test_exchange_order_insensitive_hash () =
  (* partitioning on {A,B} must co-locate with partitioning on the
     equality-linked pair regardless of column order: the per-row hash is
     commutative *)
  let catalog = Catalog.create () in
  let engine = Sexec.Engine.create ~machines:7 catalog in
  let s1 = schema [ "A"; "B" ] and s2 = schema [ "B"; "A" ] in
  let pairs = List.init 50 (fun i -> (i mod 11, i mod 4)) in
  let rows1 = List.map (fun (a, b) -> [| Value.Int a; Value.Int b |]) pairs in
  let rows2 = List.map (fun (a, b) -> [| Value.Int b; Value.Int a |]) pairs in
  let ex1 =
    Sexec.Engine.exchange engine (dist_of_rows engine s1 rows1)
      (Colset.of_list [ "A"; "B" ])
  in
  let ex2 =
    Sexec.Engine.exchange engine (dist_of_rows engine s2 rows2)
      (Colset.of_list [ "A"; "B" ])
  in
  (* the (a,b) row of ex1 and the (b,a) row of ex2 are on the same machine *)
  let machine_of (ex : Sexec.Engine.dist) v0 v1 =
    let found = ref (-1) in
    for m = 0 to 6 do
      if
        List.exists
          (fun r -> Value.equal r.(0) v0 && Value.equal r.(1) v1)
          (Sexec.Engine.part_rows ex m)
      then found := m
    done;
    !found
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) "aligned"
        (machine_of ex1 (Value.Int a) (Value.Int b))
        (machine_of ex2 (Value.Int b) (Value.Int a)))
    pairs

(* --- operators ------------------------------------------------------------ *)

let run_plan ?(machines = 5) catalog plan =
  let engine = Sexec.Engine.create ~machines catalog in
  (Sexec.Engine.run engine plan, engine)

let optimize ?(cse = true) script =
  let catalog = Thelpers.default_catalog () in
  let r = Cse.Pipeline.run ~catalog script in
  ( catalog,
    r.Cse.Pipeline.dag,
    (if cse then r.Cse.Pipeline.cse_plan else r.Cse.Pipeline.conventional_plan) )

let test_stream_agg_equals_reference () =
  (* already covered end-to-end; here a focused case with negative and
     repeated keys *)
  let s = schema [ "K"; "V" ] in
  let rows =
    [ (1, 5); (1, 7); (2, 1); (3, 2); (3, 3); (3, 4) ]
    |> List.map (fun (k, v) -> [| Value.Int k; Value.Int v |])
  in
  let sorted = List.sort (fun a b -> Value.compare a.(0) b.(0)) rows in
  let out =
    Sexec.Engine.stream_agg s ~keys:[ "K" ]
      ~aggs:[ Agg.make Agg.Sum (Expr.Col "V") "S" ]
      sorted
  in
  let expected =
    Table.group_by (Table.make s rows) ~keys:[ "K" ]
      ~aggs:[ Agg.make Agg.Sum (Expr.Col "V") "S" ]
  in
  Alcotest.(check bool) "stream = hash reference" true
    (Table.same_contents expected
       (Table.make expected.Table.schema out))

let test_full_validation_both_plans () =
  List.iter
    (fun (name, script) ->
      List.iter
        (fun cse ->
          let catalog, dag, plan = optimize ~cse script in
          let v = Sexec.Validate.check ~machines:6 catalog dag plan in
          if not v.Sexec.Validate.ok then
            Alcotest.failf "%s (cse=%b): %s" name cse
              (String.concat "; " v.Sexec.Validate.mismatches))
        [ true; false ])
    Sworkload.Paper_scripts.all

let test_spool_executed_once () =
  let catalog, dag, plan = optimize Sworkload.Paper_scripts.s1 in
  let v = Sexec.Validate.check ~machines:6 catalog dag plan in
  Alcotest.(check int) "one execution" 1
    v.Sexec.Validate.counters.Sexec.Engine.spool_executions;
  Alcotest.(check int) "two reads" 2
    v.Sexec.Validate.counters.Sexec.Engine.spool_reads

let test_cse_extracts_less () =
  let catalog, dag, cse_plan = optimize Sworkload.Paper_scripts.s1 in
  let _, _, conv_plan = optimize ~cse:false Sworkload.Paper_scripts.s1 in
  let vc = Sexec.Validate.check ~machines:6 catalog dag cse_plan in
  let vv = Sexec.Validate.check ~machines:6 catalog dag conv_plan in
  Alcotest.(check bool) "fewer rows extracted" true
    (vc.Sexec.Validate.counters.Sexec.Engine.rows_extracted
    < vv.Sexec.Validate.counters.Sexec.Engine.rows_extracted);
  Alcotest.(check bool) "fewer rows shuffled" true
    (vc.Sexec.Validate.counters.Sexec.Engine.rows_shuffled
    <= vv.Sexec.Validate.counters.Sexec.Engine.rows_shuffled)

let test_machine_count_invariance () =
  (* results are identical whatever the cluster size *)
  let catalog, dag, plan = optimize Sworkload.Paper_scripts.s2 in
  List.iter
    (fun machines ->
      let v = Sexec.Validate.check ~machines catalog dag plan in
      if not v.Sexec.Validate.ok then
        Alcotest.failf "mismatch on %d machines: %s" machines
          (String.concat "; " v.Sexec.Validate.mismatches))
    [ 1; 2; 3; 25; 64 ]

let test_reference_spools_transparent () =
  let catalog = Thelpers.default_catalog () in
  let dag = Thelpers.bind Sworkload.Paper_scripts.s1 in
  let outputs = Sexec.Reference.run catalog dag in
  Alcotest.(check int) "two outputs" 2 (List.length outputs);
  Alcotest.(check (list string)) "files"
    [ "result1.out"; "result2.out" ]
    (List.map fst outputs)

let test_outputs_in_script_order () =
  let catalog, _, plan = optimize Sworkload.Paper_scripts.s2 in
  let outputs, _ = run_plan catalog plan in
  Alcotest.(check (list string)) "order"
    [ "result1.out"; "result2.out"; "result3.out" ]
    (List.map fst outputs)

let test_run_twice_same_result () =
  let catalog, _, plan = optimize Sworkload.Paper_scripts.s1 in
  let o1, _ = run_plan catalog plan in
  let o2, _ = run_plan catalog plan in
  List.iter2
    (fun (f1, t1) (f2, t2) ->
      Alcotest.(check string) "file" f1 f2;
      Alcotest.(check bool) "rows" true (Table.same_contents t1 t2))
    o1 o2

(* --- staged execution and fault injection -------------------------------- *)

let test_stage_graph_shape () =
  let _, _, plan = optimize Sworkload.Paper_scripts.s1 in
  let g = Sexec.Stage.build plan in
  Alcotest.(check bool) "several stages" true (Sexec.Stage.size g > 1);
  Alcotest.(check int) "sink is last" (Sexec.Stage.size g - 1) g.Sexec.Stage.sink;
  (* S1's two consumers read the same spool: one producing stage, two
     dependency edges *)
  let sink = g.Sexec.Stage.stages.(g.Sexec.Stage.sink) in
  (match sink.Sexec.Stage.deps with
  | [ (b1, s1); (b2, s2) ] ->
      Alcotest.(check bool) "same spool node" true (b1 == b2);
      Alcotest.(check int) "same producing stage" s1 s2
  | deps -> Alcotest.failf "expected 2 sink dependencies, got %d" (List.length deps));
  (* every dependency precedes its consumer *)
  Array.iter
    (fun (st : Sexec.Stage.stage) ->
      List.iter
        (fun (_, dep) ->
          Alcotest.(check bool) "topological" true (dep < st.Sexec.Stage.id))
        st.Sexec.Stage.deps)
    g.Sexec.Stage.stages

let test_engine_reuse_resets () =
  (* regression: a reused engine once served stale spool results and
     accumulated counters across runs *)
  let catalog, _, plan = optimize Sworkload.Paper_scripts.s1 in
  let engine = Sexec.Engine.create ~machines:6 catalog in
  let o1 = Sexec.Engine.run engine plan in
  let c = engine.Sexec.Engine.counters in
  let shuffled1 = c.Sexec.Engine.rows_shuffled in
  let extracted1 = c.Sexec.Engine.rows_extracted in
  let spools1 = c.Sexec.Engine.spool_executions in
  let o2 = Sexec.Engine.run engine plan in
  Alcotest.(check int) "rows_shuffled reset" shuffled1 c.Sexec.Engine.rows_shuffled;
  Alcotest.(check int) "rows_extracted reset" extracted1 c.Sexec.Engine.rows_extracted;
  Alcotest.(check int) "spool_executions reset" spools1 c.Sexec.Engine.spool_executions;
  Alcotest.(check int) "outputs not accumulated" (List.length o1) (List.length o2);
  Alcotest.(check bool) "outputs identical" true
    (Sexec.Validate.identical_outputs o1 o2)

(* Fault-injected runs over [seeds] must validate against the reference
   and stay byte-identical to the fault-free run; returns the retries
   observed, so callers can assert recovery actually happened. *)
let fault_roundtrip ?(rate = 0.3) ?max_attempts ~machines ~seeds catalog dag
    plan =
  let base = Sexec.Validate.check ~machines catalog dag plan in
  if not base.Sexec.Validate.ok then
    Alcotest.failf "fault-free run failed: %s"
      (String.concat "; " base.Sexec.Validate.mismatches);
  List.fold_left
    (fun retries seed ->
      let faults = Sexec.Faults.spec ~rate ?max_attempts seed in
      let v = Sexec.Validate.check ~faults ~machines catalog dag plan in
      if not v.Sexec.Validate.ok then
        Alcotest.failf "fault seed %d: %s" seed
          (String.concat "; " v.Sexec.Validate.mismatches);
      if
        not
          (Sexec.Validate.identical_outputs base.Sexec.Validate.outputs
             v.Sexec.Validate.outputs)
      then Alcotest.failf "fault seed %d: outputs diverge" seed;
      retries + v.Sexec.Validate.counters.Sexec.Engine.retries)
    0 seeds

let test_faults_builtins () =
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let total =
    List.fold_left
      (fun acc (_, script) ->
        List.fold_left
          (fun acc cse ->
            let catalog, dag, plan = optimize ~cse script in
            acc + fault_roundtrip ~machines:6 ~seeds catalog dag plan)
          acc [ true; false ])
      0
      (Sworkload.Paper_scripts.all
      @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])
  in
  Alcotest.(check bool) "recoveries exercised" true (total > 0)

let test_faults_random_scripts () =
  let total = ref 0 in
  for seed = 1 to 50 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:6 () in
    let catalog = Sworkload.Random_gen.catalog () in
    let r = Cse.Pipeline.run ~catalog script in
    total :=
      !total
      + fault_roundtrip ~rate:0.4 ~machines:5
          ~seeds:[ seed; seed + 1000 ]
          catalog r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
  done;
  Alcotest.(check bool) "recoveries exercised" true (!total > 0)

let test_faults_large_scripts () =
  let total = ref 0 in
  List.iter
    (fun script ->
      let catalog = Relalg.Catalog.default () in
      Sworkload.Large_gen.register_files catalog script;
      let r = Cse.Pipeline.run ~catalog script in
      (* large stage graphs see many fault events over a run: a gentler
         rate and a deeper budget keep every loss recoverable *)
      total :=
        !total
        + fault_roundtrip ~rate:0.1 ~max_attempts:64 ~machines:9
            ~seeds:[ 1; 2 ] catalog r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan)
    [ Sworkload.Large_gen.ls1 (); Sworkload.Large_gen.ls2 () ];
  Alcotest.(check bool) "recoveries exercised" true (!total > 0)

let test_faults_deterministic () =
  (* the same seed and rate reproduce the same loss sequence exactly *)
  let catalog, dag, plan = optimize Sworkload.Paper_scripts.s1 in
  let faults = Sexec.Faults.spec ~rate:0.5 42 in
  let v1 = Sexec.Validate.check ~faults ~machines:6 catalog dag plan in
  let v2 = Sexec.Validate.check ~faults ~machines:6 catalog dag plan in
  Alcotest.(check int) "same retries"
    v1.Sexec.Validate.counters.Sexec.Engine.retries
    v2.Sexec.Validate.counters.Sexec.Engine.retries;
  Alcotest.(check (array int)) "same per-stage attempts"
    v1.Sexec.Validate.attempts v2.Sexec.Validate.attempts;
  Alcotest.(check bool) "same outputs" true
    (Sexec.Validate.identical_outputs v1.Sexec.Validate.outputs
       v2.Sexec.Validate.outputs)

let test_faults_budget_exhaustion () =
  (* a rate close to 1 starves recovery: the attempt budget must bound the
     loop and raise instead of spinning *)
  let catalog, _, plan = optimize Sworkload.Paper_scripts.s1 in
  let faults = Sexec.Faults.spec ~rate:0.99 ~max_attempts:2 7 in
  let engine = Sexec.Engine.create ~faults ~machines:6 catalog in
  match Sexec.Engine.run engine plan with
  | _ -> Alcotest.fail "expected Recovery_exhausted"
  | exception Sexec.Scheduler.Recovery_exhausted { attempts; _ } ->
      Alcotest.(check bool) "budget respected" true (attempts > 2)

(* --- worker-count determinism --------------------------------------------- *)

(* The determinism contract: at any pool width the scheduler commits the
   same waves, draws the same faults and produces the same bytes.  Run
   the plan at workers = 1, 2 and 8 and require byte-identical outputs
   plus identical retry/loss accounting.  [~oversubscribe:true] defeats
   the engine's hardware-parallelism cap so the multi-domain paths are
   exercised even on a single-core host. *)
let worker_matrix ?faults ~machines catalog dag plan =
  let run workers =
    Sexec.Validate.check ?faults ~oversubscribe:true ~machines ~workers
      catalog dag plan
  in
  let base = run 1 in
  if not base.Sexec.Validate.ok then
    Alcotest.failf "workers=1: %s"
      (String.concat "; " base.Sexec.Validate.mismatches);
  List.iter
    (fun workers ->
      let v = run workers in
      if not v.Sexec.Validate.ok then
        Alcotest.failf "workers=%d: %s" workers
          (String.concat "; " v.Sexec.Validate.mismatches);
      if
        not
          (Sexec.Validate.identical_outputs base.Sexec.Validate.outputs
             v.Sexec.Validate.outputs)
      then Alcotest.failf "workers=%d: outputs diverge from sequential" workers;
      Alcotest.(check int)
        (Printf.sprintf "retries identical at workers=%d" workers)
        base.Sexec.Validate.counters.Sexec.Engine.retries
        v.Sexec.Validate.counters.Sexec.Engine.retries;
      Alcotest.(check int)
        (Printf.sprintf "partitions_lost identical at workers=%d" workers)
        base.Sexec.Validate.counters.Sexec.Engine.partitions_lost
        v.Sexec.Validate.counters.Sexec.Engine.partitions_lost;
      Alcotest.(check (array int))
        (Printf.sprintf "per-stage attempts identical at workers=%d" workers)
        base.Sexec.Validate.attempts v.Sexec.Validate.attempts)
    [ 2; 8 ];
  base.Sexec.Validate.counters.Sexec.Engine.retries

(* --- batch-size invariance ------------------------------------------------ *)

(* The framing contract of the columnar executor: batch size only chunks
   streams, it never reorders or regroups rows, so any batch size must
   reproduce the row engine's bytes exactly — and fault draws happen per
   stage completion, so the retry/loss schedule cannot shift either.
   Run the plan over the full batch-size × worker matrix and require
   byte-identical outputs plus identical per-stage attempts against a
   default-batch-size sequential baseline. *)
let batch_sizes = [ 1; 7; 64; 4096 ]

let batch_matrix ?faults ?(workers_list = [ 1; 2; 8 ]) ~machines catalog dag
    plan =
  let run ~workers ~batch_size =
    Sexec.Validate.check ?faults ~oversubscribe:true ~machines ~workers
      ~batch_size catalog dag plan
  in
  let base =
    run ~workers:1 ~batch_size:Sexec.Engine.default_batch_size
  in
  if not base.Sexec.Validate.ok then
    Alcotest.failf "baseline: %s"
      (String.concat "; " base.Sexec.Validate.mismatches);
  List.iter
    (fun batch_size ->
      List.iter
        (fun workers ->
          let v = run ~workers ~batch_size in
          if not v.Sexec.Validate.ok then
            Alcotest.failf "batch_size=%d workers=%d: %s" batch_size workers
              (String.concat "; " v.Sexec.Validate.mismatches);
          if
            not
              (Sexec.Validate.identical_outputs base.Sexec.Validate.outputs
                 v.Sexec.Validate.outputs)
          then
            Alcotest.failf
              "batch_size=%d workers=%d: outputs diverge from baseline"
              batch_size workers;
          Alcotest.(check (array int))
            (Printf.sprintf "attempts identical at batch_size=%d workers=%d"
               batch_size workers)
            base.Sexec.Validate.attempts v.Sexec.Validate.attempts)
        workers_list)
    batch_sizes;
  base.Sexec.Validate.counters.Sexec.Engine.retries

let test_batch_builtins () =
  List.iter
    (fun (_, script) ->
      List.iter
        (fun cse ->
          let catalog, dag, plan = optimize ~cse script in
          ignore (batch_matrix ~machines:6 catalog dag plan);
          ignore
            (batch_matrix
               ~faults:(Sexec.Faults.spec ~rate:0.3 23)
               ~machines:6 catalog dag plan))
        [ true; false ])
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

let test_batch_random_scripts () =
  let retries = ref 0 in
  for seed = 1 to 25 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:6 () in
    let catalog = Sworkload.Random_gen.catalog () in
    let r = Cse.Pipeline.run ~catalog script in
    let dag = r.Cse.Pipeline.dag and plan = r.Cse.Pipeline.cse_plan in
    ignore (batch_matrix ~machines:5 catalog dag plan);
    retries :=
      !retries
      + batch_matrix
          ~faults:(Sexec.Faults.spec ~rate:0.4 (seed + 4000))
          ~machines:5 catalog dag plan
  done;
  Alcotest.(check bool) "recoveries exercised across batch sizes" true
    (!retries > 0)

let test_batch_large_scripts () =
  let retries = ref 0 in
  List.iter
    (fun script ->
      let catalog = Relalg.Catalog.default () in
      Sworkload.Large_gen.register_files catalog script;
      let r = Cse.Pipeline.run ~catalog script in
      let dag = r.Cse.Pipeline.dag and plan = r.Cse.Pipeline.cse_plan in
      (* the large stage graphs dominate suite runtime: exercise every
         batch size but one worker width per size (2, the cheapest width
         that still runs the multi-domain paths) *)
      ignore (batch_matrix ~workers_list:[ 2 ] ~machines:9 catalog dag plan);
      retries :=
        !retries
        + batch_matrix ~workers_list:[ 2 ]
            ~faults:(Sexec.Faults.spec ~rate:0.1 ~max_attempts:64 5)
            ~machines:9 catalog dag plan)
    [ Sworkload.Large_gen.ls1 (); Sworkload.Large_gen.ls2 () ];
  Alcotest.(check bool) "recoveries exercised across batch sizes" true
    (!retries > 0)

let test_parallel_builtins () =
  List.iter
    (fun (_, script) ->
      List.iter
        (fun cse ->
          let catalog, dag, plan = optimize ~cse script in
          ignore (worker_matrix ~machines:6 catalog dag plan);
          ignore
            (worker_matrix
               ~faults:(Sexec.Faults.spec ~rate:0.3 11)
               ~machines:6 catalog dag plan))
        [ true; false ])
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

let test_parallel_random_scripts () =
  let retries = ref 0 in
  for seed = 1 to 25 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:6 () in
    let catalog = Sworkload.Random_gen.catalog () in
    let r = Cse.Pipeline.run ~catalog script in
    let dag = r.Cse.Pipeline.dag and plan = r.Cse.Pipeline.cse_plan in
    ignore (worker_matrix ~machines:5 catalog dag plan);
    retries :=
      !retries
      + worker_matrix
          ~faults:(Sexec.Faults.spec ~rate:0.4 (seed + 2000))
          ~machines:5 catalog dag plan
  done;
  Alcotest.(check bool) "recoveries exercised in parallel" true (!retries > 0)

let test_parallel_large_scripts () =
  let retries = ref 0 in
  List.iter
    (fun script ->
      let catalog = Relalg.Catalog.default () in
      Sworkload.Large_gen.register_files catalog script;
      let r = Cse.Pipeline.run ~catalog script in
      let dag = r.Cse.Pipeline.dag and plan = r.Cse.Pipeline.cse_plan in
      ignore (worker_matrix ~machines:9 catalog dag plan);
      retries :=
        !retries
        + worker_matrix
            ~faults:(Sexec.Faults.spec ~rate:0.1 ~max_attempts:64 3)
            ~machines:9 catalog dag plan)
    [ Sworkload.Large_gen.ls1 (); Sworkload.Large_gen.ls2 () ];
  Alcotest.(check bool) "recoveries exercised in parallel" true (!retries > 0)

(* --- kernel profiling ------------------------------------------------------ *)

(* Profiling must be observation-only: enabling it changes no output
   byte and no fault/retry counter, and the profiled engine still obeys
   the whole worker-count determinism contract (the profiled column of
   the matrix). *)
let test_profile_invariance () =
  let catalog, dag, plan = optimize Sworkload.Paper_scripts.s2 in
  let run () =
    Sexec.Validate.check ~oversubscribe:true ~machines:6 ~workers:2 catalog
      dag plan
  in
  Sexec.Profile.reset ();
  Sexec.Profile.set false;
  let off = run () in
  Alcotest.(check bool) "unprofiled run records nothing" true
    (Sexec.Profile.snapshot () = []);
  Fun.protect
    ~finally:(fun () ->
      Sexec.Profile.set false;
      Sexec.Profile.reset ())
    (fun () ->
      Sexec.Profile.set true;
      let on_ = run () in
      Alcotest.(check bool) "outputs byte-identical with profiling on" true
        (Sexec.Validate.identical_outputs off.Sexec.Validate.outputs
           on_.Sexec.Validate.outputs);
      Alcotest.(check (array int)) "per-stage attempts identical"
        off.Sexec.Validate.attempts on_.Sexec.Validate.attempts;
      Alcotest.(check int) "retries identical"
        off.Sexec.Validate.counters.Sexec.Engine.retries
        on_.Sexec.Validate.counters.Sexec.Engine.retries;
      let rows = Sexec.Profile.snapshot () in
      Alcotest.(check bool) "kernel histograms recorded" true (rows <> []);
      Alcotest.(check bool) "rows carry kernel and stage labels" true
        (List.for_all
           (fun (r : Sobs.Metrics.row) ->
             r.Sobs.Metrics.name = "exec.kernel_seconds"
             && List.mem_assoc "kernel" r.Sobs.Metrics.labels
             && List.mem_assoc "stage" r.Sobs.Metrics.labels)
           rows);
      (* the profiled column of the determinism matrix, fault-free and
         fault-injected *)
      ignore (worker_matrix ~machines:6 catalog dag plan);
      ignore
        (worker_matrix
           ~faults:(Sexec.Faults.spec ~rate:0.3 11)
           ~machines:6 catalog dag plan))

let test_profile_disabled_zero_alloc () =
  Sexec.Profile.set false;
  Sexec.Profile.reset ();
  (* warm up once so any one-time initialization is out of the way *)
  Sexec.Profile.note ~kernel:"warm" ~stage:0 (Sexec.Profile.now ());
  let m0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let t0 = Sexec.Profile.now () in
    Sexec.Profile.note ~kernel:"hot" ~stage:1 t0;
    Sexec.Profile.note ~kernel:"hotter" ~stage:2 t0
  done;
  let m1 = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocation-free (%.0f minor words)"
       (m1 -. m0))
    true
    (m1 -. m0 < 256.0);
  Alcotest.(check bool) "disabled path records nothing" true
    (Sexec.Profile.snapshot () = [])

let test_parallel_cross_script () =
  (* the serve batch path: two scripts sharing a scan chain are combined
     into one memo, so the shared extract+filter executes once behind a
     spool.  The combined plan obeys the same worker-count determinism
     contract as any single-script plan, and each script's slice of the
     combined outputs is byte-identical to running that script alone. *)
  let mk key out =
    Printf.sprintf
      "R = EXTRACT A,B,C,D FROM \"serve_log2\" USING LogExtractor;\n\
       F = SELECT A,B,C,D FROM R WHERE D > 7;\n\
       S = SELECT %s, Sum(D) AS V FROM F GROUP BY %s;\n\
       OUTPUT S TO \"%s\" ORDER BY %s;\n"
      key key out key
  in
  let a = mk "A" "cross_out" and b = mk "B" "cross_out" in
  let combined =
    Sserve.Normalize.(
      to_text (combine [ parse a; parse b ]))
  in
  let catalog = Sworkload.Session_gen.catalog () in
  let r = Cse.Pipeline.run ~catalog combined in
  let dag = r.Cse.Pipeline.dag and plan = r.Cse.Pipeline.cse_plan in
  ignore (worker_matrix ~machines:7 catalog dag plan);
  ignore
    (worker_matrix
       ~faults:(Sexec.Faults.spec ~rate:0.3 17)
       ~machines:7 catalog dag plan);
  let run_plan plan =
    Sexec.Engine.run (Sexec.Engine.create ~workers:2 ~machines:7 catalog) plan
  in
  (* identically-named outputs stay separate under the session tag *)
  let outs = run_plan plan in
  Alcotest.(check (list string))
    "tagged output per session"
    [ "_s0:cross_out"; "_s1:cross_out" ]
    (List.map fst outs);
  List.iteri
    (fun i script ->
      let solo = Cse.Pipeline.run ~catalog script in
      match (run_plan solo.Cse.Pipeline.cse_plan, List.nth outs i) with
      | [ (_, alone) ], (_, shared) ->
          Alcotest.(check string)
            (Printf.sprintf "script %d slice identical to solo run" i)
            (Relalg.Table.to_string alone)
            (Relalg.Table.to_string shared)
      | _ -> Alcotest.fail "expected exactly one solo output")
    [ a; b ]

let () =
  Alcotest.run "exec"
    [
      ( "datagen",
        [
          Alcotest.test_case "deterministic" `Quick test_datagen_deterministic;
          Alcotest.test_case "files differ" `Quick test_datagen_distinct_files_differ;
          Alcotest.test_case "aggregation reduces" `Quick test_datagen_aggregation_reduces;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "co-locates groups" `Quick test_exchange_colocates_groups;
          Alcotest.test_case "order-insensitive hash" `Quick
            test_exchange_order_insensitive_hash;
        ] );
      ( "operators",
        [
          Alcotest.test_case "stream aggregation" `Quick test_stream_agg_equals_reference;
          Alcotest.test_case "reference evaluator" `Quick test_reference_spools_transparent;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "paper scripts, both plans" `Slow
            test_full_validation_both_plans;
          Alcotest.test_case "spool executed once" `Quick test_spool_executed_once;
          Alcotest.test_case "CSE does less IO" `Quick test_cse_extracts_less;
          Alcotest.test_case "machine-count invariance" `Slow
            test_machine_count_invariance;
          Alcotest.test_case "output order" `Quick test_outputs_in_script_order;
          Alcotest.test_case "deterministic runs" `Quick test_run_twice_same_result;
        ] );
      ( "staged faults",
        [
          Alcotest.test_case "stage graph shape" `Quick test_stage_graph_shape;
          Alcotest.test_case "engine reuse resets" `Quick test_engine_reuse_resets;
          Alcotest.test_case "builtins under faults" `Slow test_faults_builtins;
          Alcotest.test_case "random scripts under faults" `Slow
            test_faults_random_scripts;
          Alcotest.test_case "large scripts under faults" `Slow
            test_faults_large_scripts;
          Alcotest.test_case "fault determinism" `Quick test_faults_deterministic;
          Alcotest.test_case "recovery budget" `Quick test_faults_budget_exhaustion;
        ] );
      ( "batch invariance",
        [
          Alcotest.test_case "builtins across batch sizes" `Slow
            test_batch_builtins;
          Alcotest.test_case "random scripts across batch sizes" `Slow
            test_batch_random_scripts;
          Alcotest.test_case "large scripts across batch sizes" `Slow
            test_batch_large_scripts;
        ] );
      ( "worker determinism",
        [
          Alcotest.test_case "builtins at workers 1/2/8" `Slow
            test_parallel_builtins;
          Alcotest.test_case "random scripts at workers 1/2/8" `Slow
            test_parallel_random_scripts;
          Alcotest.test_case "large scripts at workers 1/2/8" `Slow
            test_parallel_large_scripts;
          Alcotest.test_case "combined cross-script plan" `Quick
            test_parallel_cross_script;
        ] );
      ( "kernel profiling",
        [
          Alcotest.test_case "profiled column is byte-identical" `Quick
            test_profile_invariance;
          Alcotest.test_case "disabled path zero-alloc" `Quick
            test_profile_disabled_zero_alloc;
        ] );
    ]
