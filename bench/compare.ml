(* Baseline drift checker for BENCH_opt.json.

   CI runs the quick bench on every push and compares the fresh JSON
   against the committed baseline: the optimizer's *deterministic*
   outputs — estimated plan costs, task counts and the round-pruning
   counters — must match exactly for every workload present in both
   files.  Wall times, heap figures and anything else
   environment-dependent are exempt, so the check is stable across
   machines while still catching a plan-quality or search-effort
   regression the moment it lands.

   Two further modes serve the ISSUE 7 round-pruning gates:

   - [--equivalence] compares only the plan-quality fields (the costs).
     Used on a pruned run vs a [--no-prune] run of the *same* build,
     where the search-effort counters legitimately differ but a single
     ulp of cost drift means a pruning layer discarded a winner.

   - [--perf FACTOR] additionally requires, per workload, that the fresh
     run's [rounds_executed] is at most baseline / FACTOR, and that its
     [cse_time_s] does not exceed the baseline's.  Used on a pruned run
     vs a same-machine [--no-prune] run to enforce the >= FACTOR round
     reduction the pruning layers claim (wall clocks are only compared
     within one machine, never against the committed baseline).

   - [--exec-perf FACTOR] gates the vectorized executor (ISSUE 9): per
     workload, the fresh run's measured [exec_wall_w1_s] must be at most
     baseline / FACTOR, and its [exec_wall_wN_s] must not exceed its own
     [exec_wall_w1_s] by more than 25% (the hardware-parallelism cap
     promises the parallel configuration never regresses the sequential
     one).  The wN check is skipped when [exec_wall_w1_s] is under 20ms:
     below that, scheduler jitter alone exceeds the 25% margin and the
     assertion would flake.  FACTOR > 1 demands a speedup over the
     baseline (used once,
     to prove the >= 2x vectorization win against the pre-vectorization
     BENCH_opt.json); FACTOR < 1 is a regression allowance (CI runs
     [--exec-perf 0.6], i.e. at most ~1.7x the committed wall, which
     absorbs shared-runner noise).  Wall-clock gates stay restricted to
     the large workloads ([--only LS1,LS2]) where the signal is outside
     the noise floor.

   The parser matches the writer in main.ml: flat records of numbers
   keyed by "name", scanned with string search — no JSON dependency,
   same as the writer.

   Usage: compare [--equivalence | --perf FACTOR | --exec-perf FACTOR]
                  [--only W1,W2] BASELINE.json FRESH.json *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Split the workloads array into one chunk per record, keyed by its
   "name" value. *)
let records text =
  let key = {|{"name": "|} in
  let rec go acc from =
    match
      if from >= String.length text then None
      else
        let rec find i =
          if i + String.length key > String.length text then None
          else if String.sub text i (String.length key) = key then Some i
          else find (i + 1)
        in
        find from
    with
    | None -> List.rev acc
    | Some start ->
        let name_start = start + String.length key in
        let name_end = String.index_from text name_start '"' in
        let name = String.sub text name_start (name_end - name_start) in
        let chunk_end =
          let rec find i =
            if i + String.length key > String.length text then
              String.length text
            else if String.sub text i (String.length key) = key then i
            else find (i + 1)
          in
          find (start + 1)
        in
        go ((name, String.sub text start (chunk_end - start)) :: acc) chunk_end
  in
  go [] 0

(* Value of "field": NUMBER inside a record chunk. *)
let field chunk name =
  let key = Printf.sprintf "\"%s\": " name in
  let rec find i =
    if i + String.length key > String.length chunk then None
    else if String.sub chunk i (String.length key) = key then
      Some (i + String.length key)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length chunk
        &&
        match chunk.[!stop] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr stop
      done;
      float_of_string_opt (String.sub chunk start (!stop - start))

(* The deterministic fields: identical runs of the same code must agree
   exactly.  Costs are doubles printed with %.17g (round-trip exact);
   tasks, rounds and the pruning counters are integers. *)
let drift_fields =
  [
    "conv_cost";
    "cse_cost";
    "conv_tasks";
    "cse_tasks";
    "rounds_executed";
    "rounds_pruned";
    "rounds_aborted_bound";
    "phase2_winner_reuse_hits";
  ]

(* Plan quality alone: what a pruned and an exhaustive run of the same
   build must agree on bit-for-bit. *)
let equivalence_fields = [ "conv_cost"; "cse_cost" ]

type mode = Drift | Equivalence | Perf of float | ExecPerf of float

let usage () =
  prerr_endline
    "usage: compare [--equivalence | --perf FACTOR | --exec-perf FACTOR] \
     [--only W1,W2] BASELINE.json FRESH.json";
  exit 2

let () =
  let mode = ref Drift in
  let only = ref None in
  let files = ref [] in
  let rec parse = function
    | "--equivalence" :: tl -> mode := Equivalence; parse tl
    | "--perf" :: f :: tl -> (
        match float_of_string_opt f with
        | Some f when f > 0.0 -> mode := Perf f; parse tl
        | _ -> usage ())
    | "--exec-perf" :: f :: tl -> (
        match float_of_string_opt f with
        | Some f when f > 0.0 -> mode := ExecPerf f; parse tl
        | _ -> usage ())
    | "--only" :: names :: tl ->
        only := Some (String.split_on_char ',' names);
        parse tl
    | path :: tl -> files := path :: !files; parse tl
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path =
    match List.rev !files with [ b; f ] -> (b, f) | _ -> usage ()
  in
  let baseline = records (read_file baseline_path) in
  let fresh = records (read_file fresh_path) in
  let wanted name =
    match !only with None -> true | Some names -> List.mem name names
  in
  let drift = ref 0 in
  let compared = ref 0 in
  (* perf mode compares a pruned against an exhaustive run: costs must
     still match bit-for-bit, but the search-effort counters (tasks,
     rounds, pruning tallies) legitimately differ *)
  let checked_fields =
    match !mode with
    | Drift -> drift_fields
    | Perf _ | Equivalence -> equivalence_fields
    (* exec-perf compares wall clocks across builds of possibly different
       optimizer behaviour: gate only the executor figures *)
    | ExecPerf _ -> []
  in
  List.iter
    (fun (name, fresh_chunk) ->
      match List.assoc_opt name baseline with
      | _ when not (wanted name) -> ()
      | None -> Printf.printf "%-5s not in baseline, skipped\n" name
      | Some base_chunk ->
          incr compared;
          List.iter
            (fun f ->
              match (field base_chunk f, field fresh_chunk f) with
              | Some b, Some v when b <> v ->
                  incr drift;
                  Printf.printf "%-5s %s drifted: baseline %.17g, now %.17g\n"
                    name f b v
              | Some _, Some _ -> ()
              | None, _ ->
                  (* field added after the baseline was committed *)
                  ()
              | _, None ->
                  incr drift;
                  Printf.printf "%-5s %s missing from fresh run\n" name f)
            checked_fields;
          (match !mode with
          | Perf factor ->
              (match (field base_chunk "rounds_executed",
                      field fresh_chunk "rounds_executed") with
              | Some b, Some v when v *. factor > b ->
                  incr drift;
                  Printf.printf
                    "%-5s rounds_executed %.0f not %.2gx under baseline %.0f\n"
                    name v factor b
              | Some b, Some v ->
                  Printf.printf "%-5s rounds_executed %.0f <= %.0f / %.2g\n"
                    name v b factor
              | _ ->
                  incr drift;
                  Printf.printf "%-5s rounds_executed missing\n" name);
              (* same-machine wall clock: the pruned run must not be
                 slower than the exhaustive one beyond scheduler noise *)
              (match (field base_chunk "cse_time_s", field fresh_chunk "cse_time_s")
               with
              | Some b, Some v when v > b *. 1.1 ->
                  incr drift;
                  Printf.printf
                    "%-5s cse_time_s %.4f exceeds baseline %.4f (+10%%)\n"
                    name v b
              | _ -> ())
          | ExecPerf factor ->
              (* the committed sequential wall must improve >= FACTOR *)
              (match (field base_chunk "exec_wall_w1_s",
                      field fresh_chunk "exec_wall_w1_s") with
              | Some b, Some v when v *. factor > b ->
                  incr drift;
                  Printf.printf
                    "%-5s exec_wall_w1_s %.6f not %.2gx under baseline %.6f\n"
                    name v factor b
              | Some b, Some v ->
                  Printf.printf "%-5s exec_wall_w1_s %.6f <= %.6f / %.2g\n"
                    name v b factor
              | _ ->
                  incr drift;
                  Printf.printf "%-5s exec_wall_w1_s missing\n" name);
              (* same-run comparison: the parallel configuration must not
                 regress the sequential one beyond scheduler noise; on
                 walls under 20ms the jitter alone exceeds the margin,
                 so the check only applies where the signal is real *)
              (match (field fresh_chunk "exec_wall_w1_s",
                      field fresh_chunk "exec_wall_wN_s") with
              | Some w1, Some wn when w1 < 0.02 ->
                  Printf.printf
                    "%-5s exec_wall_w1_s %.6f under noise floor, wN check \
                     skipped (wN %.6f)\n"
                    name w1 wn
              | Some w1, Some wn when wn > w1 *. 1.25 ->
                  incr drift;
                  Printf.printf
                    "%-5s exec_wall_wN_s %.6f exceeds exec_wall_w1_s %.6f \
                     (+25%%)\n"
                    name wn w1
              | Some w1, Some wn ->
                  Printf.printf "%-5s exec_wall_wN_s %.6f <= %.6f +25%%\n"
                    name wn w1
              | _ ->
                  incr drift;
                  Printf.printf "%-5s exec_wall_wN_s missing\n" name)
          | Drift | Equivalence -> ()))
    fresh;
  if !compared = 0 then begin
    print_endline "no workloads in common: nothing compared";
    exit 2
  end;
  if !drift = 0 then
    Printf.printf "baseline match (%s): %d workload(s), %d field(s) each\n"
      (match !mode with
      | Drift -> "drift"
      | Equivalence -> "equivalence"
      | Perf f -> Printf.sprintf "perf %.2gx" f
      | ExecPerf f -> Printf.sprintf "exec-perf %.2gx" f)
      !compared
      (List.length checked_fields)
  else begin
    Printf.printf "%d drift(s) against the committed baseline\n" !drift;
    exit 1
  end
