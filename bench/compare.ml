(* Baseline drift checker for BENCH_opt.json.

   CI runs the quick bench on every push and compares the fresh JSON
   against the committed baseline: the optimizer's *deterministic*
   outputs — estimated plan costs and task counts — must match exactly
   for every workload present in both files.  Wall times, heap figures
   and anything else environment-dependent are exempt, so the check is
   stable across machines while still catching a plan-quality or
   search-effort regression the moment it lands.

   The parser matches the writer in main.ml: flat records of numbers
   keyed by "name", scanned with string search — no JSON dependency,
   same as the writer.

   Usage: compare BASELINE.json FRESH.json *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Split the workloads array into one chunk per record, keyed by its
   "name" value. *)
let records text =
  let key = {|{"name": "|} in
  let rec go acc from =
    match
      if from >= String.length text then None
      else
        let rec find i =
          if i + String.length key > String.length text then None
          else if String.sub text i (String.length key) = key then Some i
          else find (i + 1)
        in
        find from
    with
    | None -> List.rev acc
    | Some start ->
        let name_start = start + String.length key in
        let name_end = String.index_from text name_start '"' in
        let name = String.sub text name_start (name_end - name_start) in
        let chunk_end =
          let rec find i =
            if i + String.length key > String.length text then
              String.length text
            else if String.sub text i (String.length key) = key then i
            else find (i + 1)
          in
          find (start + 1)
        in
        go ((name, String.sub text start (chunk_end - start)) :: acc) chunk_end
  in
  go [] 0

(* Value of "field": NUMBER inside a record chunk. *)
let field chunk name =
  let key = Printf.sprintf "\"%s\": " name in
  let rec find i =
    if i + String.length key > String.length chunk then None
    else if String.sub chunk i (String.length key) = key then
      Some (i + String.length key)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length chunk
        &&
        match chunk.[!stop] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr stop
      done;
      float_of_string_opt (String.sub chunk start (!stop - start))

(* The deterministic fields: identical runs of the same code must agree
   exactly.  Costs are doubles printed with %.17g (round-trip exact);
   tasks and rounds are integers. *)
let checked_fields =
  [ "conv_cost"; "cse_cost"; "conv_tasks"; "cse_tasks"; "rounds_executed" ]

let () =
  (match Sys.argv with
  | [| _; _; _ |] -> ()
  | _ ->
      prerr_endline "usage: compare BASELINE.json FRESH.json";
      exit 2);
  let baseline = records (read_file Sys.argv.(1)) in
  let fresh = records (read_file Sys.argv.(2)) in
  let drift = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun (name, fresh_chunk) ->
      match List.assoc_opt name baseline with
      | None -> Printf.printf "%-5s not in baseline, skipped\n" name
      | Some base_chunk ->
          incr compared;
          List.iter
            (fun f ->
              match (field base_chunk f, field fresh_chunk f) with
              | Some b, Some v when b <> v ->
                  incr drift;
                  Printf.printf "%-5s %s drifted: baseline %.17g, now %.17g\n"
                    name f b v
              | Some _, Some _ -> ()
              | None, _ ->
                  (* field added after the baseline was committed *)
                  ()
              | _, None ->
                  incr drift;
                  Printf.printf "%-5s %s missing from fresh run\n" name f)
            checked_fields)
    fresh;
  if !compared = 0 then begin
    print_endline "no workloads in common: nothing compared";
    exit 2
  end;
  if !drift = 0 then
    Printf.printf "baseline match: %d workload(s), %d field(s) each\n"
      !compared
      (List.length checked_fields)
  else begin
    Printf.printf "%d drift(s) against the committed baseline\n" !drift;
    exit 1
  end
