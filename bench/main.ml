(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section IX), plus the Section VIII round-count behaviour and
   measured (simulated-execution) counters.

   Sections, in output order:
     [fig6]      workload statistics (the scripts of Figure 6)
     [fig3]      shared groups, consumers and LCAs (Figure 3 annotations)
     [fig7]      estimated cost, conventional vs CSE (the headline figure)
     [fig8]      the two S1 plans, side by side (Figure 8)
     [fig4]      re-optimization rounds actually executed per script
     [fig5]      independent-shared-group round arithmetic (Section VIII-A)
     [ablation]  Section VIII extensions toggled on LS2
     [measured]  simulated execution counters (beyond the paper)
     [opt-time]  optimization times via bechamel (Section IX timing)

   Run with:  dune exec bench/main.exe
   [--serve] instead replays a session stream through the long-running
   serve engine (plan-cache warm/cold throughput); [--json PATH] writes
   the machine-readable optimizer-perf baseline. *)

let section name = Fmt.pr "@.==================== %s ====================@." name

(* paper-reported cost reductions (Figure 7), for side-by-side comparison *)
let paper_reduction =
  [ ("S1", 38.0); ("S2", 55.0); ("S3", 45.0); ("S4", 57.0); ("LS1", 21.0); ("LS2", 45.0) ]

type prepared = {
  name : string;
  script : string;
  catalog : Relalg.Catalog.t;
  budget_seconds : float option;
}

let prepare_small (name, script) =
  { name; script; catalog = Relalg.Catalog.default (); budget_seconds = None }

let prepare_large (spec : Sworkload.Large_gen.spec) budget =
  let script = Sworkload.Large_gen.generate spec in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files
    ~shared_rows:spec.Sworkload.Large_gen.shared_rows
    ~filler_rows:spec.Sworkload.Large_gen.filler_rows catalog script;
  {
    name = spec.Sworkload.Large_gen.name;
    script;
    catalog;
    budget_seconds = Some budget;
  }

let workloads () =
  List.map prepare_small Sworkload.Paper_scripts.all
  @ [
      prepare_large Sworkload.Large_gen.ls1_spec 30.0;
      prepare_large Sworkload.Large_gen.ls2_spec 60.0;
    ]

(* Every pipeline run in this harness is audited (Cse.Config.audit): the
   full static-analysis suite over the memo, sharing structure, logical
   DAG and all three plans, failing loudly if anything does not
   reproduce.  The timing section opts out so the audit does not pollute
   the Section IX optimization-time measurements. *)
let run_pipeline ?(audit = true) ?(config = Cse.Config.default) (w : prepared) =
  let config = { config with Cse.Config.audit = audit } in
  let budget =
    Option.map (fun s -> Sopt.Budget.create ~max_seconds:s ()) w.budget_seconds
  in
  let r = Cse.Pipeline.run ~config ?budget ~catalog:w.catalog w.script in
  if config.Cse.Config.audit then
    Sanalysis.Audit.assert_clean ~cluster:Scost.Cluster.default
      ~catalog:w.catalog r;
  r

(* --- fig6: workload statistics ----------------------------------------- *)

let fig6 reports =
  section "fig6: evaluation scripts (Figure 6)";
  Fmt.pr "%-5s %10s %8s %-30s@." "name" "operators" "shared" "consumers per shared group";
  List.iter
    (fun (w, r) ->
      Fmt.pr "%-5s %10d %8d %-30s@." w.name
        (Slogical.Dag.size r.Cse.Pipeline.dag)
        (List.length r.Cse.Pipeline.shared)
        (String.concat ","
           (List.map
              (fun (s : Cse.Spool.shared) ->
                string_of_int s.Cse.Spool.initial_consumers)
              r.Cse.Pipeline.shared)))
    reports

(* --- fig3: LCA annotations ---------------------------------------------- *)

let fig3 reports =
  section "fig3: shared groups and their LCAs (Figure 3)";
  List.iter
    (fun (w, r) ->
      if List.length r.Cse.Pipeline.shared <= 4 then begin
        Fmt.pr "%s:@." w.name;
        List.iter
          (fun (s : Cse.Spool.shared) ->
            let si = r.Cse.Pipeline.shared_info in
            Fmt.pr
              "  shared group %d (spool over group %d): consumers {%s}, LCA = group %d%s@."
              s.Cse.Spool.spool s.Cse.Spool.under
              (String.concat ","
                 (List.map string_of_int
                    (Cse.Shared_info.consumers si s.Cse.Spool.spool)))
              (Option.value ~default:(-1)
                 (Cse.Shared_info.lca_of_shared si s.Cse.Spool.spool))
              (if
                 Cse.Shared_info.lca_of_shared si s.Cse.Spool.spool
                 = Some r.Cse.Pipeline.memo.Smemo.Memo.root
               then " (the root)"
               else ""))
          r.Cse.Pipeline.shared
      end)
    reports

(* --- fig7: the headline cost table -------------------------------------- *)

let fig7 reports =
  section "fig7: estimated cost, conventional vs CSE (Figure 7)";
  Fmt.pr "%-5s %14s %14s %8s %11s %12s@." "name" "conventional" "CSE" "ratio"
    "reduction" "paper (red.)";
  List.iter
    (fun (w, r) ->
      Fmt.pr "%-5s %14.5g %14.5g %7.1f%% %10.1f%% %11.0f%%@." w.name
        r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
        (100.0 *. Cse.Pipeline.ratio r)
        (Cse.Pipeline.reduction_percent r)
        (Option.value ~default:nan (List.assoc_opt w.name paper_reduction)))
    reports

(* --- fig8: the two S1 plans --------------------------------------------- *)

let fig8 reports =
  section "fig8: plan comparison for S1 (Figure 8)";
  match List.find_opt (fun (w, _) -> w.name = "S1") reports with
  | None -> ()
  | Some (_, r) ->
      Fmt.pr "--- conventional optimization (8(a)) ---@.%a@." Sphys.Plan_pp.pp
        r.Cse.Pipeline.conventional_plan;
      Fmt.pr "--- exploiting common subexpressions (8(b)) ---@.%a@."
        Sphys.Plan_pp.pp r.Cse.Pipeline.cse_plan;
      let distinct, refs = Scost.Dagcost.spool_counts r.Cse.Pipeline.cse_plan in
      Fmt.pr
        "the CSE plan materializes the shared subexpression %d time(s) and \
         references it %d time(s)@."
        distinct refs

(* --- fig4: rounds per script -------------------------------------------- *)

let fig4 reports =
  section "fig4: re-optimization rounds (property enforcement, Figure 4)";
  Fmt.pr "%-5s %8s %18s %22s@." "name" "rounds" "property sets" "full-product rounds";
  List.iter
    (fun (w, r) ->
      Fmt.pr "%-5s %8d %18d %22d@." w.name r.Cse.Pipeline.rounds_executed
        (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Cse.Pipeline.history_sizes)
        r.Cse.Pipeline.rounds_naive)
    reports

(* --- fig5: independent shared groups ------------------------------------ *)

let fig5 () =
  section "fig5: independent shared groups (Section VIII-A)";
  let w = prepare_small ("IND", Sworkload.Paper_scripts.independent_pair) in
  let with_indep = run_pipeline w in
  let without =
    run_pipeline
      ~config:{ Cse.Config.default with Cse.Config.use_independent_groups = false }
      w
  in
  let sizes = List.map snd with_indep.Cse.Pipeline.history_sizes in
  Fmt.pr
    "two independent shared groups with %s property sets:@.\
    \  without the decomposition: %d rounds (the full product)@.\
    \  with the decomposition:    %d rounds (n1 + n2 - 1)@.\
    \  both reach the same plan cost: %.5g vs %.5g@."
    (String.concat " and " (List.map string_of_int sizes))
    without.Cse.Pipeline.rounds_executed with_indep.Cse.Pipeline.rounds_executed
    without.Cse.Pipeline.cse_cost with_indep.Cse.Pipeline.cse_cost;
  (* the paper's example: two groups with 8 properties each *)
  let eight g = (g, List.init 8 (fun _ -> Sphys.Reqprops.none)) in
  Fmt.pr "(the paper's 8-property example: %d rounds without, %d with)@."
    (Cse.Rounds.naive_total [ [ eight 5; eight 6 ] ])
    (Cse.Rounds.sequential_total [ [ eight 5 ]; [ eight 6 ] ])

(* --- ablation: Section VIII extensions on LS2 --------------------------- *)

let ablation () =
  section "ablation: Section VIII extensions on LS2 (60 s budget)";
  let spec = Sworkload.Large_gen.ls2_spec in
  let configs =
    [
      ("all extensions", Cse.Config.default);
      ( "no independent groups (VIII-A)",
        { Cse.Config.default with Cse.Config.use_independent_groups = false } );
      ( "no group ranking (VIII-B)",
        { Cse.Config.default with Cse.Config.use_group_ranking = false } );
      ( "no property ranking (VIII-C)",
        { Cse.Config.default with Cse.Config.use_property_ranking = false } );
      ("no extensions at all", Cse.Config.no_extensions);
    ]
  in
  Fmt.pr "%-32s %14s %8s %10s@." "configuration" "CSE cost" "rounds" "opt time";
  List.iter
    (fun (label, config) ->
      let w = prepare_large spec 60.0 in
      let r = run_pipeline ~config w in
      Fmt.pr "%-32s %14.5g %8d %9.2fs@." label r.Cse.Pipeline.cse_cost
        r.Cse.Pipeline.rounds_executed r.Cse.Pipeline.cse_time)
    configs

(* --- budget ablation -------------------------------------------------------- *)

let ablation_budget () =
  section
    "ablation-budget: LS2 under deterministic task caps (phase 2 truncated)";
  Fmt.pr
    "With no rounds at all, forced spooling under conflicting requirements@.\
     is WORSE than conventional optimization -- phase 2's enforcement@.\
     reconciliation is what delivers the saving.  Because every round is a@.\
     complete assignment (initial properties for groups not yet varied),@.\
     even a single round captures most of the benefit; the remaining rounds@.\
     refine it.  The ranking heuristics (VIII-B/C) are neutral on this@.\
     homogeneous workload; the decomposition (VIII-A) is the extension@.\
     that matters (see 'ablation').@.@.";
  Fmt.pr "%-10s %14s %8s %20s@." "task cap" "CSE cost" "rounds" "vs conventional";
  let spec = Sworkload.Large_gen.ls2_spec in
  let script = Sworkload.Large_gen.generate spec in
  List.iter
    (fun cap ->
      let catalog = Relalg.Catalog.default () in
      Sworkload.Large_gen.register_files
        ~shared_rows:spec.Sworkload.Large_gen.shared_rows
        ~filler_rows:spec.Sworkload.Large_gen.filler_rows catalog script;
      let budget =
        match cap with
        | Some c -> Some (Sopt.Budget.create ~max_tasks:c ())
        | None -> None
      in
      let r = Cse.Pipeline.run ?budget ~catalog script in
      Fmt.pr "%-10s %14.5g %8d %19.1f%%@."
        (match cap with Some c -> string_of_int c | None -> "none")
        r.Cse.Pipeline.cse_cost r.Cse.Pipeline.rounds_executed
        (100.0 *. Cse.Pipeline.ratio r))
    [ Some 12_000; Some 13_000; Some 14_000; Some 16_000; Some 18_000; None ]

(* --- skew-model ablation --------------------------------------------------- *)

let spool_partitioning plan =
  let part = ref None in
  Sphys.Plan.fold
    (fun () (n : Sphys.Plan.t) ->
      match n.Sphys.Plan.op with
      | Sphys.Physop.P_spool -> part := Some n.Sphys.Plan.props.Sphys.Props.part
      | _ -> ())
    () plan;
  match !part with
  | Some p -> Sphys.Partition.to_string p
  | None -> "-"

let ablation_skew () =
  section "ablation-skew: the skew-aware parallelism model (design decision 1)";
  Fmt.pr
    "Under the skew-aware model, partitioning on the single column {B} is@.\
     locally costlier than on {A,B,C} (fewer distinct keys => lower@.\
     effective parallelism), so choosing it for the shared node is a real@.\
     cost-based trade-off -- the paper's Section I premise.  With a flat@.\
     model the narrow scheme is never penalized and the choice is trivial.@.\
     The framework picks {B} in both cases; only under skew does that@.\
     decision require phase 2's global comparison.@.@.";
  Fmt.pr "%-12s %18s %14s %14s %30s@." "skew model" "spool partitioning"
    "conv cost" "CSE cost" "local penalty of {B} vs {A,B,C}";
  List.iter
    (fun (label, skew_aware) ->
      let catalog = Relalg.Catalog.default () in
      let cluster = { Scost.Cluster.default with Scost.Cluster.skew_aware } in
      let r = Cse.Pipeline.run ~cluster ~catalog Sworkload.Paper_scripts.s1 in
      (* effective parallelism of the two candidate schemes at the shared
         node (ndv(B) = 1000, ndv(A,B,C) >> machines) *)
      let m = float_of_int cluster.Scost.Cluster.machines in
      let p_narrow =
        Scost.Costmodel.key_parallelism ~skew_aware ~machines:m 1000.0
      in
      let p_wide =
        Scost.Costmodel.key_parallelism ~skew_aware ~machines:m 3.6e6
      in
      Fmt.pr "%-12s %18s %14.5g %14.5g %25.1f%%@." label
        (spool_partitioning r.Cse.Pipeline.cse_plan)
        r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
        (100.0 *. ((p_wide /. p_narrow) -. 1.0)))
    [ ("skew-aware", true); ("flat", false) ]

(* --- sweeps beyond the paper --------------------------------------------- *)

let sweep_consumers () =
  section "sweep-consumers: saving vs number of consumers (S1/S2 family)";
  Fmt.pr "%10s %14s %14s %11s %8s@." "consumers" "conventional" "CSE" "reduction"
    "rounds";
  List.iter
    (fun k ->
      let w =
        prepare_small
          (Printf.sprintf "k=%d" k, Sworkload.Sweeps.consumers_script ~k)
      in
      let r = run_pipeline w in
      Fmt.pr "%10d %14.5g %14.5g %10.1f%% %8d@." k
        r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
        (Cse.Pipeline.reduction_percent r)
        r.Cse.Pipeline.rounds_executed)
    [ 1; 2; 3; 4; 5; 6 ];
  Fmt.pr
    "(k=1 has nothing shared; the saving grows with the consumer count, \
     Section IX's S1-vs-S2 observation)@."

let sweep_machines () =
  section "sweep-machines: S1 saving vs cluster size";
  Fmt.pr "%10s %14s %14s %11s@." "machines" "conventional" "CSE" "reduction";
  List.iter
    (fun m ->
      let catalog = Relalg.Catalog.default () in
      let cluster = Scost.Cluster.with_machines m Scost.Cluster.default in
      let r = Cse.Pipeline.run ~cluster ~catalog Sworkload.Paper_scripts.s1 in
      Fmt.pr "%10d %14.5g %14.5g %10.1f%%@." m r.Cse.Pipeline.conventional_cost
        r.Cse.Pipeline.cse_cost
        (Cse.Pipeline.reduction_percent r))
    [ 5; 10; 25; 50; 100; 200 ]

let sweep_depth () =
  section "sweep-depth: enforcement propagation through deep consumer chains";
  Fmt.pr "%10s %14s %14s %11s@." "depth" "conventional" "CSE" "reduction";
  List.iter
    (fun depth ->
      let w =
        prepare_small
          (Printf.sprintf "d=%d" depth, Sworkload.Sweeps.chain_script ~depth)
      in
      let r = run_pipeline w in
      Fmt.pr "%10d %14.5g %14.5g %10.1f%%@." depth
        r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
        (Cse.Pipeline.reduction_percent r))
    [ 1; 3; 6; 10 ]

(* --- measured execution counters ---------------------------------------- *)

let measured reports =
  section "measured: simulated execution (scaled data, 25 machines)";
  Fmt.pr "%-5s %12s %12s %12s %12s %9s@." "name" "shuffled(cv)" "shuffled(cse)"
    "extracted(cv)" "extracted(cse)" "spools";
  List.iter
    (fun (w, r) ->
      if w.budget_seconds = None then begin
        let vc =
          Sexec.Validate.check ~machines:25 w.catalog r.Cse.Pipeline.dag
            r.Cse.Pipeline.conventional_plan
        in
        let ve =
          Sexec.Validate.check ~machines:25 w.catalog r.Cse.Pipeline.dag
            r.Cse.Pipeline.cse_plan
        in
        assert (vc.Sexec.Validate.ok && ve.Sexec.Validate.ok);
        Fmt.pr "%-5s %12d %12d %12d %12d %6d/%-2d@." w.name
          vc.Sexec.Validate.counters.Sexec.Engine.rows_shuffled
          ve.Sexec.Validate.counters.Sexec.Engine.rows_shuffled
          vc.Sexec.Validate.counters.Sexec.Engine.rows_extracted
          ve.Sexec.Validate.counters.Sexec.Engine.rows_extracted
          ve.Sexec.Validate.counters.Sexec.Engine.spool_executions
          ve.Sexec.Validate.counters.Sexec.Engine.spool_reads
      end)
    reports;
  Fmt.pr "(results of every plan verified against the reference evaluator)@."

(* --- fault injection and recovery ---------------------------------------- *)

let faults reports =
  section
    "faults: deterministic fault injection and staged recovery (rate 0.3, 5 \
     seeds)";
  Fmt.pr "%-5s %7s %8s %11s %16s@." "name" "stages" "retries" "lost-parts"
    "recomputed-rows";
  List.iter
    (fun (w, r) ->
      if w.budget_seconds = None then begin
        let base =
          Sexec.Validate.check ~machines:25 w.catalog r.Cse.Pipeline.dag
            r.Cse.Pipeline.cse_plan
        in
        let retries = ref 0 and lost = ref 0 and recomputed = ref 0 in
        List.iter
          (fun seed ->
            let faults = Sexec.Faults.spec ~rate:0.3 seed in
            let v =
              Sexec.Validate.check ~faults ~machines:25 w.catalog
                r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
            in
            assert v.Sexec.Validate.ok;
            assert
              (Sexec.Validate.identical_outputs base.Sexec.Validate.outputs
                 v.Sexec.Validate.outputs);
            retries := !retries + v.Sexec.Validate.counters.Sexec.Engine.retries;
            lost :=
              !lost + v.Sexec.Validate.counters.Sexec.Engine.partitions_lost;
            recomputed :=
              !recomputed
              + v.Sexec.Validate.counters.Sexec.Engine.recomputed_rows)
          [ 1; 2; 3; 4; 5 ];
        Fmt.pr "%-5s %7d %8d %11d %16d@." w.name
          base.Sexec.Validate.counters.Sexec.Engine.stages_run !retries !lost
          !recomputed
      end)
    reports;
  Fmt.pr
    "(every faulty run validated against the reference and byte-identical to \
     the fault-free run)@."

(* --- exec-time: domain-parallel stage execution --------------------------- *)

(* Measured execution wall times of the CSE plan at one worker and at
   [workers] domains, plus the modeled makespan: the workers=1 run's
   per-stage durations replayed through the scheduler's own fault-free
   wave schedule with greedy placement on N slots.  On a host with fewer
   cores than the pool has domains the measured parallel wall time
   cannot improve (the domains timeshare one core), so the model is the
   honest projection of the wave schedule's speedup — it uses real
   measured stage durations and the real dependency structure. *)
type exec_times = {
  e_stages : int;
  e_width : int;  (* max stages per depth level: available parallelism *)
  e_wall1 : float;  (* measured, workers = 1, min of 3 reps *)
  e_walln : float;  (* measured, workers = n, min of 3 reps *)
  e_busyn : float array;  (* per-worker busy seconds of the best rep at n *)
  e_model1 : float;  (* modeled makespan on 1 slot = sum of stage times *)
  e_modeln : float;  (* modeled makespan on n slots *)
}

(* Also fills the pipeline report's [exec] summary (the best workers=n
   rep), so the drift checker and the JSON report read execution figures
   from the report instead of re-running anything. *)
let exec_times ~workers (w : prepared) (r : Cse.Pipeline.report) =
  let plan = r.Cse.Pipeline.cse_plan in
  let graph = Sexec.Stage.build plan in
  let batch_size = ref Sexec.Engine.default_batch_size in
  let batches = ref 0 in
  let measure wk =
    (* One engine reused across the reps: the extract cache warms on the
       first rep, so min-of-3 measures the steady state a long-running
       engine (serve mode) sees rather than paying datagen every rep. *)
    let engine = Sexec.Engine.create ~workers:wk ~machines:25 w.catalog in
    let best_wall = ref infinity
    and best_seconds = ref [||]
    and best_busy = ref [||] in
    Gc.compact ();
    for _ = 1 to 3 do
      ignore (Sexec.Engine.run engine plan);
      if engine.Sexec.Engine.last_wall < !best_wall then begin
        best_wall := engine.Sexec.Engine.last_wall;
        best_seconds := engine.Sexec.Engine.last_seconds;
        best_busy := engine.Sexec.Engine.last_busy
      end
    done;
    batch_size := engine.Sexec.Engine.batch_size;
    batches := engine.Sexec.Engine.counters.Sexec.Engine.batches;
    (!best_wall, !best_seconds, !best_busy)
  in
  let wall1, seconds, _ = measure 1 in
  let walln, _, busyn = measure workers in
  r.Cse.Pipeline.exec <-
    Some
      {
        Cse.Pipeline.workers;
        batch_size = !batch_size;
        batches = !batches;
        wall_s = walln;
        busy_s = busyn;
      };
  {
    e_stages = Sexec.Stage.size graph;
    e_width = Sexec.Stage.width graph;
    e_wall1 = wall1;
    e_walln = walln;
    e_busyn = busyn;
    e_model1 = Sexec.Scheduler.modeled_makespan ~workers:1 ~seconds graph;
    e_modeln = Sexec.Scheduler.modeled_makespan ~workers ~seconds graph;
  }

let exec_time ~workers reports =
  section
    (Printf.sprintf
       "exec-time: domain-parallel stage execution (workers=%d, CSE plan, 25 \
        machines)"
       workers);
  Fmt.pr "%-5s %7s %6s %10s %10s %11s %11s %8s@." "name" "stages" "width"
    "wall(1)" (Printf.sprintf "wall(%d)" workers) "model(1)"
    (Printf.sprintf "model(%d)" workers) "speedup";
  List.iter
    (fun (w, r) ->
      let e = exec_times ~workers w r in
      Fmt.pr "%-5s %7d %6d %9.2fms %9.2fms %10.2fms %10.2fms %7.2fx@." w.name
        e.e_stages e.e_width (1000.0 *. e.e_wall1) (1000.0 *. e.e_walln)
        (1000.0 *. e.e_model1) (1000.0 *. e.e_modeln)
        (e.e_model1 /. Float.max 1e-9 e.e_modeln))
    reports;
  Fmt.pr
    "(speedup is the modeled wave-schedule makespan ratio from measured \
     stage durations; measured wall(%d) only beats wall(1) when the host \
     has that many cores)@."
    workers

(* --- serve: plan-cache and cross-script sharing throughput --------------- *)

(* Replay a generated session stream through the long-running serve
   engine twice: the cold pass populates the fingerprint-keyed plan
   cache, the warm pass replays the identical stream against it.  The
   delta is the cache's whole value proposition — warm sessions skip
   bind/optimize entirely — and the combined-batch rows show what
   cross-script sharing saves on top.  Wall times are environment-
   dependent, so this section stays out of BENCH_opt.json and its
   drift gates; run it with [--serve]. *)
let serve_bench ~workers () =
  section "serve: plan cache and cross-script sharing (40-script stream, seed 7)";
  let items =
    Sserve.Session.items_of_string
      (Sworkload.Session_gen.generate ~seed:7 ~scripts:40 ())
  in
  let engine =
    Sserve.Engine.create ~workers (Sworkload.Session_gen.catalog ())
  in
  let replay () =
    let batches = ref [] in
    let flush () =
      match Sserve.Engine.flush engine with
      | None -> ()
      | Some b -> batches := b :: !batches
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (function
        | Sserve.Session.Script { id; text } ->
            Sserve.Engine.submit engine ~id ~text
        | Sserve.Session.Flush -> flush ()
        | Sserve.Session.Catalog_bump ->
            flush ();
            ignore (Sserve.Engine.catalog_bump engine)
        | Sserve.Session.Tenant _ | Sserve.Session.Stats
        | Sserve.Session.Dump ->
            ()
        | Sserve.Session.Quit -> flush ())
      items;
    (Unix.gettimeofday () -. t0, List.rev !batches)
  in
  let stats (wall, batches) =
    let sessions = ref 0 and hits = ref 0 and cross = ref 0 in
    let saved = ref 0.0 in
    List.iter
      (fun (b : Sserve.Engine.batch_result) ->
        List.iter
          (fun (r : Sserve.Engine.session_result) ->
            incr sessions;
            match r.Sserve.Engine.status with
            | Sserve.Engine.Done { cache_hit = true; _ } -> incr hits
            | _ -> ())
          b.Sserve.Engine.results;
        cross := !cross + b.Sserve.Engine.cross_script_shares;
        match (b.Sserve.Engine.combined_cost, b.Sserve.Engine.solo_cost_sum) with
        | Some c, Some s -> saved := !saved +. (s -. c)
        | _ -> ())
      batches;
    (!sessions, !hits, !cross, !saved, wall)
  in
  let cold = stats (replay ()) in
  let warm = stats (replay ()) in
  Fmt.pr "%-6s %9s %10s %13s %14s %9s %13s@." "pass" "sessions" "cache hits"
    "cross shares" "est. saved" "wall" "sessions/s";
  List.iter
    (fun (label, (sessions, hits, cross, saved, wall)) ->
      Fmt.pr "%-6s %9d %10d %13d %14.5g %8.2fs %13.1f@." label sessions hits
        cross saved wall
        (float_of_int sessions /. Float.max 1e-9 wall))
    [ ("cold", cold); ("warm", warm) ];
  let _, _, _, _, cold_wall = cold and _, _, _, _, warm_wall = warm in
  Fmt.pr
    "(identical stream both passes; warm hits serve cached plans without \
     bind/optimize: %.1fx the cold throughput)@."
    (cold_wall /. Float.max 1e-9 warm_wall)

(* --- opt-time via bechamel ----------------------------------------------- *)

let measure_seconds name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:30 ~quota:(Time.second 1.5) ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let elt = List.hd (Test.elements test) in
  let raw = Benchmark.run cfg [ instance ] elt in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let est = Analyze.one ols instance raw in
  match Analyze.OLS.estimates est with
  | Some [ ns ] -> ns /. 1e9
  | _ -> nan

let opt_time () =
  section "opt-time: optimization time (Section IX; paper: <1 s for S1-S4, 30/60 s budgets for LS1/LS2)";
  Fmt.pr "%-5s %16s %16s@." "name" "conventional" "CSE (2 phases)";
  List.iter
    (fun w ->
      let conv =
        measure_seconds (w.name ^ "-conv") (fun () ->
            let dag =
              Slogical.Binder.bind ~catalog:w.catalog
                (Slang.Parser.parse_script w.script)
            in
            let memo = Smemo.Memo.of_dag ~catalog:w.catalog ~machines:25 dag in
            let ctx = Sopt.Optimizer.create ~cluster:Scost.Cluster.default memo in
            ignore (Sopt.Optimizer.optimize_root ctx))
      in
      let cse =
        measure_seconds (w.name ^ "-cse") (fun () ->
            ignore (run_pipeline ~audit:false w))
      in
      Fmt.pr "%-5s %15.4fs %15.4fs@." w.name conv cse)
    (workloads ())

(* --- machine-readable baseline (BENCH_opt.json) -------------------------- *)

(* One optimizer-perf record per workload: wall times (min of three
   unbudgeted reps, so budget caps never saturate the numbers), task and
   counter figures, memo size, peak heap, and the estimated costs pinning
   plan quality alongside speed.  [--quick] keeps the small scripts only
   (CI runs it on every push); the JSON is hand-rolled -- flat records of
   numbers and names need no dependency. *)

let json_workloads ~quick =
  List.map prepare_small
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])
  @
  if quick then []
  else
    [
      { (prepare_large Sworkload.Large_gen.ls1_spec 30.0) with budget_seconds = None };
      { (prepare_large Sworkload.Large_gen.ls2_spec 60.0) with budget_seconds = None };
    ]

type opt_record = {
  rname : string;
  conv_time : float;
  cse_time : float;
  report : Cse.Pipeline.report;
  top_heap_words : int;
  exec : exec_times;
  exec_workers : int;
  lint_deep_ms : float;
}

(* Counters and memo figures come from the first rep (later reps re-use
   the globally interned requirements, so their intern.misses would read
   near zero); times are the min across reps. *)
let bench_opt_record ~workers ~config (w : prepared) =
  let first = run_pipeline ~audit:false ~config w in
  let conv_time = ref first.Cse.Pipeline.conventional_time in
  let cse_time = ref first.Cse.Pipeline.cse_time in
  for _ = 2 to 3 do
    let r = run_pipeline ~audit:false ~config w in
    conv_time := Float.min !conv_time r.Cse.Pipeline.conventional_time;
    cse_time := Float.min !cse_time r.Cse.Pipeline.cse_time
  done;
  (* cost of the full verifier, deep cross-layer passes included, over
     the first rep's report (wall time, so environment-dependent and
     exempt from the drift check like every other timing) *)
  let lint_deep_ms =
    let t0 = Unix.gettimeofday () in
    ignore
      (Sanalysis.Audit.report ~deep:true ~cluster:Scost.Cluster.default
         ~catalog:w.catalog first);
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  {
    rname = w.name;
    conv_time = !conv_time;
    cse_time = !cse_time;
    report = first;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    exec = exec_times ~workers w first;
    exec_workers = workers;
    lint_deep_ms;
  }

let json_of_record (o : opt_record) =
  let r = o.report in
  let counter n =
    Option.value ~default:0 (List.assoc_opt n r.Cse.Pipeline.counters)
  in
  String.concat ""
    [
      Printf.sprintf "    {\"name\": %S,\n" o.rname;
      Printf.sprintf "     \"conv_time_s\": %.6f, \"cse_time_s\": %.6f,\n"
        o.conv_time o.cse_time;
      Printf.sprintf "     \"conv_tasks\": %d, \"cse_tasks\": %d,\n"
        r.Cse.Pipeline.conventional_tasks r.Cse.Pipeline.cse_tasks;
      Printf.sprintf "     \"memo_groups\": %d, \"memo_exprs\": %d,\n"
        (Smemo.Memo.size r.Cse.Pipeline.memo)
        (Smemo.Memo.expr_count r.Cse.Pipeline.memo);
      Printf.sprintf
        "     \"winner_hits\": %d, \"winner_misses\": %d, \"intern_hits\": %d, \
         \"intern_misses\": %d,\n"
        (counter "optimizer.winner_hits")
        (counter "optimizer.winner_misses")
        (counter "intern.hits") (counter "intern.misses");
      Printf.sprintf "     \"rounds_executed\": %d, \"top_heap_words\": %d,\n"
        r.Cse.Pipeline.rounds_executed o.top_heap_words;
      (* round-pruning layers (ISSUE 7): dominance-filtered rounds, bound
         aborts, and phase-2 winner-cache hits.  Deterministic, so the
         drift checker pins them exactly like the task counts. *)
      Printf.sprintf
        "     \"rounds_pruned\": %d, \"rounds_aborted_bound\": %d, \
         \"phase2_winner_reuse_hits\": %d,\n"
        r.Cse.Pipeline.rounds_pruned r.Cse.Pipeline.rounds_aborted_bound
        r.Cse.Pipeline.phase2_winner_reuse_hits;
      (* execution timing: measured wall at workers=1 and workers=N, and
         the modeled wave-schedule makespans the speedup figure comes
         from (wall times are environment-dependent; the drift checker
         exempts them) *)
      Printf.sprintf "     \"stages\": %d, \"stage_width\": %d, \"exec_workers\": %d,\n"
        o.exec.e_stages o.exec.e_width o.exec_workers;
      Printf.sprintf
        "     \"exec_wall_w1_s\": %.6f, \"exec_wall_wN_s\": %.6f,\n"
        o.exec.e_wall1 o.exec.e_walln;
      (* utilization of the best workers=N rep, from the report's exec
         summary (environment-dependent, exempt from drift checks) *)
      Printf.sprintf
        "     \"exec_busy_wN_s\": %.6f, \"exec_util_wN\": %.4f,\n"
        (Array.fold_left ( +. ) 0.0 o.exec.e_busyn)
        (match r.Cse.Pipeline.exec with
        | Some e -> Cse.Pipeline.utilization e
        | None -> 0.0);
      (* columnar batch figures of the workers=N run: the batch count is
         a pure function of the plan, the data and the batch size, so
         the drift checker pins it like the task counts *)
      Printf.sprintf "     \"exec_batch_size\": %d, \"exec_batches\": %d,\n"
        (match r.Cse.Pipeline.exec with
        | Some e -> e.Cse.Pipeline.batch_size
        | None -> 0)
        (match r.Cse.Pipeline.exec with
        | Some e -> e.Cse.Pipeline.batches
        | None -> 0);
      Printf.sprintf
        "     \"exec_modeled_w1_s\": %.6f, \"exec_modeled_wN_s\": %.6f, \
         \"exec_modeled_speedup\": %.2f,\n"
        o.exec.e_model1 o.exec.e_modeln
        (o.exec.e_model1 /. Float.max 1e-9 o.exec.e_modeln);
      Printf.sprintf "     \"lint.deep_ms\": %.3f,\n" o.lint_deep_ms;
      Printf.sprintf
        "     \"conv_cost\": %.17g, \"cse_cost\": %.17g, \
         \"reduction_percent\": %.2f}"
        r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
        (Cse.Pipeline.reduction_percent r);
    ]

let bench_json ~quick ~workers ~config path =
  let records =
    List.map (bench_opt_record ~workers ~config) (json_workloads ~quick)
  in
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"scopecse-bench-opt/1\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n  \"workloads\": [\n" quick;
  output_string oc (String.concat ",\n" (List.map json_of_record records));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  List.iter
    (fun o ->
      Fmt.pr "%-5s conv %.4fs  cse %.4fs  (reduction %.1f%%)@." o.rname
        o.conv_time o.cse_time
        (Cse.Pipeline.reduction_percent o.report))
    records;
  Fmt.pr "wrote %s@." path

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  (* --no-prune: run the phase-2 search exhaustively (ISSUE 7 ablation);
     paired with the default run, bench/compare --equivalence proves the
     pruning layers never change a chosen plan's cost *)
  let config =
    if List.mem "--no-prune" argv then Cse.Config.no_pruning Cse.Config.default
    else Cse.Config.default
  in
  let workers =
    let rec find = function
      | "--workers" :: n :: _ -> ( match int_of_string_opt n with
          | Some n when n >= 1 -> n
          | _ -> 4)
      | _ :: tl -> find tl
      | [] -> 4
    in
    find argv
  in
  match argv with
  | _ :: rest when List.mem "--json" rest ->
      let path =
        let rec after = function
          | "--json" :: p :: _ when not (String.length p > 1 && p.[0] = '-') ->
              Some p
          | _ :: tl -> after tl
          | [] -> None
        in
        Option.value ~default:"BENCH_opt.json" (after rest)
      in
      bench_json ~quick ~workers ~config path
  | _ :: rest when List.mem "--serve" rest -> serve_bench ~workers ()
  | _ ->
  let t0 = Unix.gettimeofday () in
  let reports = List.map (fun w -> (w, run_pipeline w)) (workloads ()) in
  fig6 reports;
  fig3 reports;
  fig7 reports;
  fig8 reports;
  fig4 reports;
  fig5 ();
  ablation ();
  ablation_budget ();
  ablation_skew ();
  sweep_consumers ();
  sweep_machines ();
  sweep_depth ();
  measured reports;
  faults reports;
  exec_time ~workers reports;
  opt_time ();
  Fmt.pr "@.total bench time: %.1f s@." (Unix.gettimeofday () -. t0)
