lib/lang/ast.mli: Fmt Relalg
