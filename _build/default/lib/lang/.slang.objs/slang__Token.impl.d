lib/lang/token.ml: Printf String
