lib/lang/token.mli:
