type pos = { line : int; col : int }

type t =
  (* literals and identifiers *)
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  (* keywords *)
  | EXTRACT
  | FROM
  | USING
  | SELECT
  | AS
  | WHERE
  | GROUP
  | BY
  | HAVING
  | OUTPUT
  | TO
  | JOIN
  | LEFT
  | ON
  | AND
  | OR
  | NOT
  | UNION
  | ALL
  | DISTINCT
  | ORDER
  | DESC
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let keyword_of_string s =
  match String.uppercase_ascii s with
  | "EXTRACT" -> Some EXTRACT
  | "FROM" -> Some FROM
  | "USING" -> Some USING
  | "SELECT" -> Some SELECT
  | "AS" -> Some AS
  | "WHERE" -> Some WHERE
  | "GROUP" -> Some GROUP
  | "BY" -> Some BY
  | "HAVING" -> Some HAVING
  | "OUTPUT" -> Some OUTPUT
  | "TO" -> Some TO
  | "JOIN" -> Some JOIN
  | "LEFT" -> Some LEFT
  | "ON" -> Some ON
  | "AND" -> Some AND
  | "OR" -> Some OR
  | "NOT" -> Some NOT
  | "UNION" -> Some UNION
  | "ALL" -> Some ALL
  | "DISTINCT" -> Some DISTINCT
  | "ORDER" -> Some ORDER
  | "DESC" -> Some DESC
  | _ -> None

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | EXTRACT -> "EXTRACT"
  | FROM -> "FROM"
  | USING -> "USING"
  | SELECT -> "SELECT"
  | AS -> "AS"
  | WHERE -> "WHERE"
  | GROUP -> "GROUP"
  | BY -> "BY"
  | HAVING -> "HAVING"
  | OUTPUT -> "OUTPUT"
  | TO -> "TO"
  | JOIN -> "JOIN"
  | LEFT -> "LEFT"
  | ON -> "ON"
  | AND -> "AND"
  | OR -> "OR"
  | NOT -> "NOT"
  | UNION -> "UNION"
  | ALL -> "ALL"
  | DISTINCT -> "DISTINCT"
  | ORDER -> "ORDER"
  | DESC -> "DESC"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "end of input"
