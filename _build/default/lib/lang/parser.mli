(** Recursive-descent parser for the SCOPE-like language. *)

exception Error of string * Token.pos

(** Parse a full script. Raises [Error] (with position) or [Lexer.Error]
    on malformed input. *)
val parse_script : string -> Ast.script
