(** Lexer for the SCOPE-like scripting language. *)

exception Error of string * Token.pos

(** Tokenize a whole script; the final token is always [EOF].
    Raises [Error] on malformed input. *)
val tokenize : string -> (Token.t * Token.pos) list
