(* Surface syntax of the SCOPE-like scripting language. *)

type expr =
  | Col_ref of string option * string (* optional relation qualifier *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Call of string * expr list (* aggregate or scalar function call *)
  | Star (* only valid as the argument of Count *)
  | Binop of Relalg.Expr.binop * expr * expr
  | Cmp of Relalg.Expr.cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type select_item = { item : expr; alias : string option }

type source = { rel : string; src_alias : string option }

type query =
  | Extract of { cols : string list; file : string; extractor : string }
  | Select of {
      distinct : bool;
      items : select_item list;
      from : source list;
      joins : (source * expr * bool) list;
          (* explicit [LEFT] JOIN ... ON chains; the flag marks LEFT OUTER *)
      where : expr option;
      group_by : expr list;
      having : expr option;
    }
  | Union_all of string * string (* union of two named relations *)

type order_item = { ocol : expr; descending : bool }

type stmt =
  | Assign of string * query
  | Output of { rel : string; file : string; order : order_item list }

type script = stmt list

let rec pp_expr ppf = function
  | Col_ref (None, c) -> Fmt.string ppf c
  | Col_ref (Some q, c) -> Fmt.pf ppf "%s.%s" q c
  | Int_lit i -> Fmt.int ppf i
  | Float_lit f -> Fmt.float ppf f
  | Str_lit s -> Fmt.pf ppf "\"%s\"" s
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args
  | Star -> Fmt.string ppf "*"
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp_expr a Relalg.Expr.pp_binop op pp_expr b
  | Cmp (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp_expr a Relalg.Expr.pp_cmpop op pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Not a -> Fmt.pf ppf "(NOT %a)" pp_expr a

let pp_select_item ppf { item; alias } =
  match alias with
  | None -> pp_expr ppf item
  | Some a -> Fmt.pf ppf "%a AS %s" pp_expr item a

let pp_source ppf { rel; src_alias } =
  match src_alias with
  | None -> Fmt.string ppf rel
  | Some a -> Fmt.pf ppf "%s AS %s" rel a

let pp_query ppf = function
  | Extract { cols; file; extractor } ->
      Fmt.pf ppf "EXTRACT %s FROM \"%s\" USING %s" (String.concat "," cols) file
        extractor
  | Select { distinct; items; from; joins; where; group_by; having } ->
      Fmt.pf ppf "SELECT %s%a FROM %a"
        (if distinct then "DISTINCT " else "")
        Fmt.(list ~sep:comma pp_select_item)
        items
        Fmt.(list ~sep:comma pp_source)
        from;
      List.iter
        (fun (src, on, outer) ->
          Fmt.pf ppf " %sJOIN %a ON %a"
            (if outer then "LEFT " else "")
            pp_source src pp_expr on)
        joins;
      Option.iter (fun w -> Fmt.pf ppf " WHERE %a" pp_expr w) where;
      (match group_by with
      | [] -> ()
      | g -> Fmt.pf ppf " GROUP BY %a" Fmt.(list ~sep:comma pp_expr) g);
      Option.iter (fun h -> Fmt.pf ppf " HAVING %a" pp_expr h) having
  | Union_all (a, b) -> Fmt.pf ppf "%s UNION ALL %s" a b

let pp_stmt ppf = function
  | Assign (name, q) -> Fmt.pf ppf "%s = %a;" name pp_query q
  | Output { rel; file; order } ->
      Fmt.pf ppf "OUTPUT %s TO \"%s\"" rel file;
      (match order with
      | [] -> ()
      | items ->
          Fmt.pf ppf " ORDER BY %s"
            (String.concat ", "
               (List.map
                  (fun { ocol; descending } ->
                    Fmt.str "%a%s" pp_expr ocol
                      (if descending then " DESC" else ""))
                  items)));
      Fmt.pf ppf ";"

let pp ppf (s : script) = Fmt.(list ~sep:(any "@.") pp_stmt) ppf s

let to_string s = Fmt.str "%a" pp s
