(** Surface syntax of the SCOPE-like scripting language. *)

type expr =
  | Col_ref of string option * string
      (** column reference with an optional relation qualifier *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Call of string * expr list  (** aggregate or scalar function call *)
  | Star  (** only valid as the argument of Count *)
  | Binop of Relalg.Expr.binop * expr * expr
  | Cmp of Relalg.Expr.cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type select_item = { item : expr; alias : string option }

type source = { rel : string; src_alias : string option }

type query =
  | Extract of { cols : string list; file : string; extractor : string }
  | Select of {
      distinct : bool;
      items : select_item list;
      from : source list;
      joins : (source * expr * bool) list;
          (** explicit [LEFT] JOIN ... ON chains; the flag marks LEFT OUTER *)
      where : expr option;
      group_by : expr list;
      having : expr option;
    }
  | Union_all of string * string  (** union of two named relations *)

type order_item = { ocol : expr; descending : bool }

type stmt =
  | Assign of string * query
  | Output of { rel : string; file : string; order : order_item list }

type script = stmt list

val pp_expr : expr Fmt.t
val pp_select_item : select_item Fmt.t
val pp_source : source Fmt.t
val pp_query : query Fmt.t
val pp_stmt : stmt Fmt.t

(** Print a script in re-parseable form (print-then-parse is the
    identity). *)
val pp : script Fmt.t

val to_string : script -> string
