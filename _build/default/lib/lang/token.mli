(** Lexical tokens of the SCOPE-like language. *)

(** Source position (1-based line and column). *)
type pos = { line : int; col : int }

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EXTRACT
  | FROM
  | USING
  | SELECT
  | AS
  | WHERE
  | GROUP
  | BY
  | HAVING
  | OUTPUT
  | TO
  | JOIN
  | LEFT
  | ON
  | AND
  | OR
  | NOT
  | UNION
  | ALL
  | DISTINCT
  | ORDER
  | DESC
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

(** Keyword for an identifier spelling, case-insensitively. *)
val keyword_of_string : string -> t option

(** Human-readable rendering for error messages. *)
val to_string : t -> string
