(* Hand-written lexer for the SCOPE-like scripting language.

   Strings are Windows-path friendly: a backslash inside a string literal
   is taken literally (scripts contain paths like "...\test.log"), so the
   only special character inside a string is the closing double quote.
   Comments: [//] to end of line. *)

exception Error of string * Token.pos

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let position st = { Token.line = st.line; col = st.pos - st.bol + 1 }

let error st msg = raise (Error (msg, position st))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/'
    ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match Token.keyword_of_string s with Some kw -> kw | None -> Token.IDENT s

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match peek st with
    | Some '.'
      when st.pos + 1 < String.length st.src && is_digit st.src.[st.pos + 1] ->
        advance st;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        true
    | _ -> false
  in
  let s = String.sub st.src start (st.pos - start) in
  if is_float then Token.FLOAT (float_of_string s) else Token.INT (int_of_string s)

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Token.STRING (Buffer.contents buf)

let next st : Token.t * Token.pos =
  skip_ws st;
  let pos = position st in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_ident_start c -> lex_ident st
    | Some c when is_digit c -> lex_number st
    | Some '"' -> lex_string st
    | Some c -> (
        let two =
          if st.pos + 1 < String.length st.src then
            Some (String.sub st.src st.pos 2)
          else None
        in
        match two with
        | Some "!=" | Some "<>" ->
            advance st;
            advance st;
            Token.NEQ
        | Some "<=" ->
            advance st;
            advance st;
            Token.LE
        | Some ">=" ->
            advance st;
            advance st;
            Token.GE
        | Some "==" ->
            advance st;
            advance st;
            Token.EQ
        | _ -> (
            let tok_pos = position st in
            advance st;
            match c with
            | '(' -> Token.LPAREN
            | ')' -> Token.RPAREN
            | ',' -> Token.COMMA
            | ';' -> Token.SEMI
            | '.' -> Token.DOT
            | '*' -> Token.STAR
            | '+' -> Token.PLUS
            | '-' -> Token.MINUS
            | '/' -> Token.SLASH
            | '%' -> Token.PERCENT
            | '=' -> Token.EQ
            | '<' -> Token.LT
            | '>' -> Token.GT
            | _ ->
                raise
                  (Error (Printf.sprintf "unexpected character %C" c, tok_pos))))
  in
  (tok, pos)

let tokenize src =
  let st = make src in
  let rec loop acc =
    let tok, pos = next st in
    match tok with
    | Token.EOF -> List.rev ((tok, pos) :: acc)
    | _ -> loop ((tok, pos) :: acc)
  in
  loop []
