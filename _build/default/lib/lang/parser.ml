(* Recursive-descent parser for the SCOPE-like language.

   Grammar (informal):
     script    ::= stmt+
     stmt      ::= IDENT '=' query ';' | OUTPUT IDENT TO STRING ';'
     query     ::= EXTRACT ident-list FROM STRING USING IDENT
                 | SELECT items FROM sources join* [WHERE e]
                   [GROUP BY e-list] [HAVING e]
                 | IDENT UNION ALL IDENT
     join      ::= JOIN source ON expr
     expr      ::= or-expression with SQL-ish precedence
   A single '=' inside expressions is equality (SQL style). *)

exception Error of string * Token.pos

type state = { mutable toks : (Token.t * Token.pos) list }

let peek st =
  match st.toks with
  | [] -> (Token.EOF, { Token.line = 0; col = 0 })
  | t :: _ -> t

let peek2 st =
  match st.toks with _ :: t :: _ -> Some (fst t) | _ -> None

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st msg =
  let tok, pos = peek st in
  raise
    (Error
       ( Printf.sprintf "line %d, col %d: %s (found %s)" pos.Token.line
           pos.Token.col msg (Token.to_string tok),
         pos ))

let expect st tok msg =
  let found, _ = peek st in
  if found = tok then advance st else error st msg

let ident st =
  match peek st with
  | Token.IDENT s, _ ->
      advance st;
      s
  | _ -> error st "expected an identifier"

let string_lit st =
  match peek st with
  | Token.STRING s, _ ->
      advance st;
      s
  | _ -> error st "expected a string literal"

(* --- expressions ------------------------------------------------------ *)

let rec parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Token.OR, _ ->
      advance st;
      Ast.Or (lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_not st in
  match peek st with
  | Token.AND, _ ->
      advance st;
      Ast.And (lhs, parse_and st)
  | _ -> lhs

and parse_not st =
  match peek st with
  | Token.NOT, _ ->
      advance st;
      Ast.Not (parse_not st)
  | _ -> parse_cmp st

and parse_cmp st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Token.EQ, _ -> Some Relalg.Expr.Eq
    | Token.NEQ, _ -> Some Relalg.Expr.Ne
    | Token.LT, _ -> Some Relalg.Expr.Lt
    | Token.LE, _ -> Some Relalg.Expr.Le
    | Token.GT, _ -> Some Relalg.Expr.Gt
    | Token.GE, _ -> Some Relalg.Expr.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Cmp (op, lhs, parse_additive st)

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | Token.PLUS, _ ->
        advance st;
        loop (Ast.Binop (Relalg.Expr.Add, lhs, parse_multiplicative st))
    | Token.MINUS, _ ->
        advance st;
        loop (Ast.Binop (Relalg.Expr.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | Token.STAR, _ ->
        advance st;
        loop (Ast.Binop (Relalg.Expr.Mul, lhs, parse_primary st))
    | Token.SLASH, _ ->
        advance st;
        loop (Ast.Binop (Relalg.Expr.Div, lhs, parse_primary st))
    | Token.PERCENT, _ ->
        advance st;
        loop (Ast.Binop (Relalg.Expr.Mod, lhs, parse_primary st))
    | _ -> lhs
  in
  loop (parse_primary st)

and parse_primary st =
  match peek st with
  | Token.INT i, _ ->
      advance st;
      Ast.Int_lit i
  | Token.FLOAT f, _ ->
      advance st;
      Ast.Float_lit f
  | Token.STRING s, _ ->
      advance st;
      Ast.Str_lit s
  | Token.MINUS, _ ->
      advance st;
      Ast.Binop (Relalg.Expr.Sub, Ast.Int_lit 0, parse_primary st)
  | Token.STAR, _ ->
      advance st;
      Ast.Star
  | Token.LPAREN, _ ->
      advance st;
      let e = parse_or st in
      expect st Token.RPAREN "expected ')'";
      e
  | Token.IDENT name, _ -> (
      advance st;
      match peek st with
      | Token.LPAREN, _ ->
          advance st;
          let args =
            match peek st with
            | Token.RPAREN, _ -> []
            | _ ->
                let rec loop acc =
                  let e = parse_or st in
                  match peek st with
                  | Token.COMMA, _ ->
                      advance st;
                      loop (e :: acc)
                  | _ -> List.rev (e :: acc)
                in
                loop []
          in
          expect st Token.RPAREN "expected ')' after function arguments";
          Ast.Call (name, args)
      | Token.DOT, _ ->
          advance st;
          let field = ident st in
          Ast.Col_ref (Some name, field)
      | _ -> Ast.Col_ref (None, name))
  | _ -> error st "expected an expression"

(* --- queries ---------------------------------------------------------- *)

let parse_select_item st =
  let item = parse_or st in
  match peek st with
  | Token.AS, _ ->
      advance st;
      { Ast.item; alias = Some (ident st) }
  | _ -> { Ast.item; alias = None }

let parse_source st =
  let rel = ident st in
  match peek st with
  | Token.AS, _ ->
      advance st;
      { Ast.rel; src_alias = Some (ident st) }
  | Token.IDENT _, _ ->
      (* implicit alias: "R1 x" *)
      { Ast.rel; src_alias = Some (ident st) }
  | _ -> { Ast.rel; src_alias = None }

let parse_extract st =
  expect st Token.EXTRACT "expected EXTRACT";
  let rec cols acc =
    let c = ident st in
    match peek st with
    | Token.COMMA, _ ->
        advance st;
        cols (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  let cols = cols [] in
  expect st Token.FROM "expected FROM in EXTRACT";
  let file = string_lit st in
  expect st Token.USING "expected USING in EXTRACT";
  let extractor = ident st in
  Ast.Extract { cols; file; extractor }

let parse_select st =
  expect st Token.SELECT "expected SELECT";
  let distinct =
    match peek st with
    | Token.DISTINCT, _ ->
        advance st;
        true
    | _ -> false
  in
  let rec items acc =
    let item = parse_select_item st in
    match peek st with
    | Token.COMMA, _ ->
        advance st;
        items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  let items = items [] in
  expect st Token.FROM "expected FROM in SELECT";
  let rec sources acc =
    let s = parse_source st in
    match peek st with
    | Token.COMMA, _ ->
        advance st;
        sources (s :: acc)
    | _ -> List.rev (s :: acc)
  in
  let from = sources [] in
  let rec joins acc =
    match peek st with
    | Token.JOIN, _ ->
        advance st;
        let src = parse_source st in
        expect st Token.ON "expected ON after JOIN source";
        let on = parse_or st in
        joins ((src, on, false) :: acc)
    | Token.LEFT, _ ->
        advance st;
        expect st Token.JOIN "expected JOIN after LEFT";
        let src = parse_source st in
        expect st Token.ON "expected ON after JOIN source";
        let on = parse_or st in
        joins ((src, on, true) :: acc)
    | _ -> List.rev acc
  in
  let joins = joins [] in
  let where =
    match peek st with
    | Token.WHERE, _ ->
        advance st;
        Some (parse_or st)
    | _ -> None
  in
  let group_by =
    match peek st with
    | Token.GROUP, _ ->
        advance st;
        expect st Token.BY "expected BY after GROUP";
        let rec loop acc =
          let e = parse_or st in
          match peek st with
          | Token.COMMA, _ ->
              advance st;
              loop (e :: acc)
          | _ -> List.rev (e :: acc)
        in
        loop []
    | _ -> []
  in
  let having =
    match peek st with
    | Token.HAVING, _ ->
        advance st;
        Some (parse_or st)
    | _ -> None
  in
  Ast.Select { distinct; items; from; joins; where; group_by; having }

let parse_query st =
  match peek st with
  | Token.EXTRACT, _ -> parse_extract st
  | Token.SELECT, _ -> parse_select st
  | Token.IDENT a, _ when peek2 st = Some Token.UNION ->
      advance st;
      expect st Token.UNION "expected UNION";
      expect st Token.ALL "expected ALL after UNION";
      let b = ident st in
      Ast.Union_all (a, b)
  | _ -> error st "expected EXTRACT, SELECT or a UNION ALL query"

let parse_stmt st =
  match peek st with
  | Token.OUTPUT, _ ->
      advance st;
      let rel = ident st in
      expect st Token.TO "expected TO in OUTPUT";
      let file = string_lit st in
      let order =
        match peek st with
        | Token.ORDER, _ ->
            advance st;
            expect st Token.BY "expected BY after ORDER";
            let rec loop acc =
              let ocol = parse_or st in
              let descending =
                match peek st with
                | Token.DESC, _ ->
                    advance st;
                    true
                | _ -> false
              in
              let item = { Ast.ocol; descending } in
              match peek st with
              | Token.COMMA, _ ->
                  advance st;
                  loop (item :: acc)
              | _ -> List.rev (item :: acc)
            in
            loop []
        | _ -> []
      in
      expect st Token.SEMI "expected ';' after OUTPUT";
      Ast.Output { rel; file; order }
  | Token.IDENT name, _ ->
      advance st;
      expect st Token.EQ "expected '=' after relation name";
      let q = parse_query st in
      expect st Token.SEMI "expected ';' after query";
      Ast.Assign (name, q)
  | _ -> error st "expected an assignment or an OUTPUT statement"

let parse_script src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    match peek st with
    | Token.EOF, _ -> List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  let script = loop [] in
  if script = [] then error st "empty script" else script
