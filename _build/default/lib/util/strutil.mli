(** Small string helpers for the pretty-printers. *)

val concat_map : string -> ('a -> string) -> 'a list -> string

(** Prefix every non-empty line with [n] spaces. *)
val indent : int -> string -> string

val starts_with : prefix:string -> string -> bool

(** [percent ~base x] is [100 * x / base] (0 when [base] is 0). *)
val percent : base:float -> float -> float
