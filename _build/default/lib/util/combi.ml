(* Small combinatorics used by the optimizer: subset and permutation
   enumeration over short lists (column sets are tiny in practice). *)

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let without = subsets rest in
      let with_x = List.map (fun s -> x :: s) without in
      with_x @ without

let nonempty_subsets xs = List.filter (fun s -> s <> []) (subsets xs)

let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insert_everywhere x) (permutations rest)

(* Cartesian product of a list of choice lists, in row-major order: the
   first list varies slowest.  [product [[1;2];[3;4]]] is
   [[1;3];[1;4];[2;3];[2;4]]. *)
let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | l when n <= 0 -> l
  | _ :: rest -> drop (n - 1) rest
