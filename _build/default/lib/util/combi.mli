(** Subset / permutation / product enumeration over short lists. *)

(** All subsets, preserving relative element order. [2^n] results. *)
val subsets : 'a list -> 'a list list

(** All non-empty subsets. [2^n - 1] results. *)
val nonempty_subsets : 'a list -> 'a list list

(** All permutations. [n!] results. *)
val permutations : 'a list -> 'a list list

(** Cartesian product of choice lists; first list varies slowest. *)
val product : 'a list list -> 'a list list

(** First [n] elements (all of them when shorter). *)
val take : int -> 'a list -> 'a list

(** All but the first [n] elements. *)
val drop : int -> 'a list -> 'a list
