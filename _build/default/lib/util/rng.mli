(** Deterministic pseudo-random number generator (splitmix64).

    Used everywhere in place of [Random] so that data generation, workload
    synthesis and tests are reproducible. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** Independent copy with the same future stream. *)
val copy : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Next non-negative [int]. *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    when [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** Uniform element of a non-empty list. *)
val pick_list : t -> 'a list -> 'a

(** Fisher-Yates shuffle; returns a fresh array. *)
val shuffle : t -> 'a array -> 'a array
