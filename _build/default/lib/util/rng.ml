(* Deterministic splitmix64 generator.

   All synthetic data, workload generation and property-based fixtures in
   this repository derive from this generator so that every experiment is
   reproducible bit-for-bit across runs and machines. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Core splitmix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t =
  (* truncate to OCaml's 63-bit int range, keeping the result non-negative *)
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  let a = Array.copy arr in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
