(* String helpers shared across the pretty-printers. *)

let concat_map sep f xs = String.concat sep (List.map f xs)

let indent n s =
  let pad = String.make n ' ' in
  String.split_on_char '\n' s
  |> List.map (fun line -> if line = "" then line else pad ^ line)
  |> String.concat "\n"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let percent ~base x =
  if base = 0.0 then 0.0 else 100.0 *. x /. base
