lib/util/strutil.mli:
