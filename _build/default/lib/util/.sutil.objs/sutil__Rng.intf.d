lib/util/rng.mli:
