lib/util/strutil.ml: List String
