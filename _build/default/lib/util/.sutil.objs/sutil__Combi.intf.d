lib/util/combi.mli:
