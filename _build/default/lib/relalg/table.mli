(** In-memory relations; the reference evaluator used to cross-check the
    distributed execution engine. *)

type t = { schema : Schema.t; rows : Value.t array list }

val make : Schema.t -> Value.t array list -> t
val empty : Schema.t -> t
val cardinality : t -> int

(** [project t [(expr, name); ...]] evaluates each expression per row. *)
val project : t -> (Expr.t * string) list -> t

val filter : t -> Expr.t -> t

(** Reference hash group-by; output schema is keys then aggregate outputs. *)
val group_by : t -> keys:string list -> aggs:Agg.t list -> t

(** Nested-loop join on an arbitrary predicate over the combined schema;
    [`Left_outer] pads unmatched left rows with nulls. *)
val join : ?kind:[ `Inner | `Left_outer ] -> t -> t -> Expr.t -> t

val union_all : t -> t -> t

(** Multiset equality of rows (order-insensitive), requiring equal column
    names. *)
val same_contents : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string
