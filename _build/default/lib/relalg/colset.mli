(** Sets of column names with canonical (sorted) representation, so that
    structural equality is set equality. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : string -> t
val of_list : string list -> t

(** Sorted, duplicate-free element list. *)
val to_list : t -> string list

val mem : string -> t -> bool
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** [subset a b] is true when every element of [a] is in [b]. *)
val subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** All non-empty subsets (2^n - 1 of them). *)
val nonempty_subsets : t -> t list

val pp : t Fmt.t
val to_string : t -> string
