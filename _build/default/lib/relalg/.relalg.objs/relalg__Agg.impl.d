lib/relalg/agg.ml: Expr Fmt Schema Value
