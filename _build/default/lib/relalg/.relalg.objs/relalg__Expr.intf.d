lib/relalg/expr.mli: Colset Fmt Schema Value
