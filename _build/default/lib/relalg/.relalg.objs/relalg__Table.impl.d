lib/relalg/table.ml: Agg Array Expr Fmt Hashtbl List Schema Stdlib String Value
