lib/relalg/value.ml: Float Fmt Hashtbl Int String
