lib/relalg/table.mli: Agg Expr Fmt Schema Value
