lib/relalg/schema.mli: Colset Fmt
