lib/relalg/colset.mli: Fmt
