lib/relalg/expr.ml: Array Colset Fmt Schema Value
