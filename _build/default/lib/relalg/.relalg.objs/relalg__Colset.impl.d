lib/relalg/colset.ml: Fmt List Stdlib String Sutil
