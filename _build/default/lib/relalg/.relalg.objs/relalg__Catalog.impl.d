lib/relalg/catalog.ml: Colset Hashtbl List Schema
