lib/relalg/schema.ml: Colset Fmt List String
