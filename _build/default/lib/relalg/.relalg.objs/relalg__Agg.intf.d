lib/relalg/agg.mli: Expr Fmt Schema Value
