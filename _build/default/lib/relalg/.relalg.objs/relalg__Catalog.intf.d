lib/relalg/catalog.mli: Colset Schema
