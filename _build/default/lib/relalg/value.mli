(** Runtime values flowing through the simulated execution engine. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

(** Total order; [Null] sorts first, ints and floats compare numerically. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** SQL-ish truthiness for predicate results. *)
val is_truthy : t -> bool

(** Numeric coercion; [Null] coerces to [0.]; raises on strings. *)
val to_float : t -> float

(** Arithmetic with [Null] treated as the neutral element for [add]
    (so running sums can start from [Null]); division by zero yields
    [Null]. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val min : t -> t -> t
val max : t -> t -> t
val pp : t Fmt.t
val to_string : t -> string
