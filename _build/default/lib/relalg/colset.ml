(* A set of column names.  The representation is a sorted, duplicate-free
   string list so that structural equality coincides with set equality --
   the optimizer uses column sets as hash-table and winner keys. *)

type t = string list

let empty : t = []
let is_empty s = s = []
let singleton c : t = [ c ]

let of_list cs : t = List.sort_uniq String.compare cs
let to_list (s : t) = s

let mem c (s : t) = List.mem c s
let cardinal (s : t) = List.length s

let union a b : t = of_list (a @ b)

let inter (a : t) (b : t) : t = List.filter (fun c -> mem c b) a

let diff (a : t) (b : t) : t = List.filter (fun c -> not (mem c b)) a

let subset (a : t) (b : t) = List.for_all (fun c -> mem c b) a

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

(* All non-empty subsets, useful for expanding partitioning ranges. *)
let nonempty_subsets (s : t) : t list =
  List.map of_list (Sutil.Combi.nonempty_subsets s)

let pp ppf (s : t) = Fmt.pf ppf "{%s}" (String.concat "," s)

let to_string s = Fmt.str "%a" pp s
