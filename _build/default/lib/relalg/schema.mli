(** Relation schemas: ordered, typed column lists defining the row layout. *)

type coltype = Tint | Tfloat | Tstr

type column = { name : string; ty : coltype }

type t = column list

val column : string -> coltype -> column

(** Column names in layout order. *)
val names : t -> string list

(** Name set of the schema. *)
val colset : t -> Colset.t

val arity : t -> int
val mem : string -> t -> bool
val find : string -> t -> column option

(** Position of [name] in the row layout. Raises [Not_found]. *)
val index : string -> t -> int

val index_opt : string -> t -> int option
val equal : t -> t -> bool
val pp_coltype : coltype Fmt.t
val pp : t Fmt.t
val to_string : t -> string
