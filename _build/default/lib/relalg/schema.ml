type coltype = Tint | Tfloat | Tstr

type column = { name : string; ty : coltype }

type t = column list

let column name ty = { name; ty }

let names (s : t) = List.map (fun c -> c.name) s

let colset (s : t) = Colset.of_list (names s)

let arity = List.length

let mem name (s : t) = List.exists (fun c -> c.name = name) s

let find name (s : t) = List.find_opt (fun c -> c.name = name) s

(* Position of a column in the row layout; raises [Not_found]. *)
let index name (s : t) =
  let rec loop i = function
    | [] -> raise Not_found
    | c :: rest -> if c.name = name then i else loop (i + 1) rest
  in
  loop 0 s

let index_opt name s = try Some (index name s) with Not_found -> None

let equal (a : t) (b : t) = a = b

let pp_coltype ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "float"
  | Tstr -> Fmt.string ppf "string"

let pp ppf (s : t) =
  Fmt.pf ppf "(%s)"
    (String.concat ", "
       (List.map (fun c -> Fmt.str "%s:%a" c.name pp_coltype c.ty) s))

let to_string s = Fmt.str "%a" pp s
