(* Section VIII-A: independent shared groups.

   Shared groups with the same LCA [l] are independent when their
   consuming-path sub-DAGs only meet at [l] (and above).  Following the
   paper: two shared groups are dependent when some input of [l] has both
   in its below-list; classes are the connected components of that
   relation.  Independent classes can be re-optimized sequentially instead
   of combinatorially. *)

(* Partition [shared] (all having LCA [l]) into independent classes, each
   class sorted, classes ordered by their smallest element. *)
let classes (si : Shared_info.t) (memo : Smemo.Memo.t) ~(l : int)
    (shared : int list) : int list list =
  let lg = Smemo.Memo.group memo l in
  let inputs = Smemo.Memo.group_children lg in
  (* below-lists per input, restricted to the groups we are assigning *)
  let below_per_input =
    List.map
      (fun input ->
        List.filter (fun s -> List.mem s shared) (Shared_info.shared_below si input))
      inputs
  in
  (* also: if l itself consumes a shared group directly it appears in the
     input list as the group itself *)
  let union_find = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt union_find x with
    | Some p when p <> x ->
        let r = find p in
        Hashtbl.replace union_find x r;
        r
    | _ -> x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace union_find ra rb
  in
  List.iter (fun s -> Hashtbl.replace union_find s s) shared;
  List.iter
    (fun below ->
      match below with
      | [] -> ()
      | first :: rest -> List.iter (union first) rest)
    below_per_input;
  let cls = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let r = find s in
      Hashtbl.replace cls r
        (s :: Option.value ~default:[] (Hashtbl.find_opt cls r)))
    shared;
  Hashtbl.fold (fun _ members acc -> List.sort Int.compare members :: acc) cls []
  |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))
