(* Algorithm 3: PropagateSharedGrpInfoAndFindLCA.

   Bottom-up propagation of shared-group information through the memo's
   group DAG, identifying for each shared group the least common ancestor
   (LCA, Definition 2) of its consumers.  The LCA is *not* necessarily the
   lowest common ancestor: when a consumer can reach the root bypassing the
   lowest common ancestor (Figure 3(c)), the LCA sits higher up.

   Deviation from the paper.  Algorithm 3 identifies the LCA incrementally:
   SetLCA overwrites whenever a merge of consumer-found flags completes the
   consumer set.  A brute-force cross-check over random DAGs (test_lca.ml)
   shows that rule to be traversal-order-sensitive: a diamond *above* the
   true LCA can complete a merge and steal the LCA, and whether a later
   merge repairs it depends on the order in which the DFS reaches the
   sub-DAGs.  We therefore keep the paper's propagation (it also yields the
   shared-below sets that guide enforcement propagation and the VIII-A
   independence test) but compute the final LCA table exactly:

     LCA(S) = the lowest common postdominator of S's consumers,

   where g postdominates c iff every c-to-root path passes through g --
   precisely Definition 2.  Postdominator sets satisfy
     PD(root) = {root},  PD(x) = {x} ∪ ⋂_{p ∈ parents(x)} PD(p)
   and are computed with one bitset sweep from the root down. *)

type shrd = {
  shared : int; (* the shared (spool) group *)
  consumers : (int * bool ref) list; (* consumer group -> found below here *)
}

type t = {
  (* group id -> info about the shared groups below it *)
  info : (int, shrd list) Hashtbl.t;
  (* shared group -> its consumers' LCA *)
  lca : (int, int) Hashtbl.t;
  (* shared group -> its distinct consumer groups *)
  consumers_of : (int, int list) Hashtbl.t;
}

let info t gid = Option.value ~default:[] (Hashtbl.find_opt t.info gid)

let lca_of_shared t shared = Hashtbl.find_opt t.lca shared

(* Shared groups this group is the LCA of. *)
let lca_groups t gid =
  Hashtbl.fold (fun s l acc -> if l = gid then s :: acc else acc) t.lca []
  |> List.sort Int.compare

(* Shared groups at or below [gid] (including [gid] itself if shared). *)
let shared_below t gid = List.map (fun s -> s.shared) (info t gid)

let consumers t shared =
  Option.value ~default:[] (Hashtbl.find_opt t.consumers_of shared)

let all_found s = List.for_all (fun (_, f) -> !f) s.consumers

let copy_shrd s =
  { s with consumers = List.map (fun (c, f) -> (c, ref !f)) s.consumers }

(* --- exact LCA via postdominators ------------------------------------- *)

module Bitset = struct
  let words n = (n + 62) / 63
  let full n = Array.make (words n) (-1)
  let singleton n i =
    let s = Array.make (words n) 0 in
    s.(i / 63) <- 1 lsl (i mod 63);
    s

  let inter_into dst src =
    Array.iteri (fun w x -> dst.(w) <- dst.(w) land x) src

  let add s i = s.(i / 63) <- s.(i / 63) lor (1 lsl (i mod 63))
  let mem s i = s.(i / 63) land (1 lsl (i mod 63)) <> 0
  let copy = Array.copy
end

(* parents-first order of the reachable groups (root first). *)
let top_down_order memo =
  let order = ref [] in
  let seen = Hashtbl.create 64 in
  let rec visit gid =
    if not (Hashtbl.mem seen gid) then begin
      Hashtbl.replace seen gid ();
      List.iter visit (Smemo.Memo.group_children (Smemo.Memo.group memo gid));
      order := gid :: !order
    end
  in
  visit memo.Smemo.Memo.root;
  !order

(* PD(x): the groups contained in every x-to-root path. *)
let postdominators memo =
  let n = Smemo.Memo.size memo in
  let parents = Smemo.Memo.parents memo in
  let pd = Array.make n None in
  List.iter
    (fun gid ->
      let set =
        if gid = memo.Smemo.Memo.root then Bitset.singleton n gid
        else begin
          let acc = Bitset.full n in
          List.iter
            (fun p ->
              match pd.(p) with
              | Some s -> Bitset.inter_into acc s
              | None -> () (* unreachable parent *))
            parents.(gid);
          Bitset.add acc gid;
          acc
        end
      in
      pd.(gid) <- Some set)
    (top_down_order memo);
  pd

(* lowest element of the common-postdominator chain: the candidate whose
   own postdominator set contains every other candidate. *)
let lowest_common_postdominator memo pd consumers =
  match consumers with
  | [] -> None
  | first :: rest ->
      let n = Smemo.Memo.size memo in
      let common =
        match pd.(first) with
        | Some s -> Bitset.copy s
        | None -> Bitset.full n
      in
      List.iter
        (fun c ->
          match pd.(c) with
          | Some s -> Bitset.inter_into common s
          | None -> ())
        rest;
      let candidates = ref [] in
      for g = 0 to n - 1 do
        if Bitset.mem common g then candidates := g :: !candidates
      done;
      List.find_opt
        (fun g ->
          match pd.(g) with
          | Some s -> List.for_all (fun other -> Bitset.mem s other) !candidates
          | None -> false)
        !candidates

let compute (memo : Smemo.Memo.t) : t =
  let t =
    {
      info = Hashtbl.create 64;
      lca = Hashtbl.create 8;
      consumers_of = Hashtbl.create 8;
    }
  in
  let parents = Smemo.Memo.parents memo in
  let visited = Hashtbl.create 64 in
  let rec propagate gid =
    if not (Hashtbl.mem visited gid) then begin
      Hashtbl.replace visited gid ();
      let g = Smemo.Memo.group memo gid in
      let my = ref [] in
      if g.Smemo.Memo.shared then begin
        let cons = parents.(gid) in
        Hashtbl.replace t.consumers_of gid cons;
        my := [ { shared = gid; consumers = List.map (fun c -> (c, ref false)) cons } ]
      end;
      List.iter
        (fun input ->
          propagate input;
          List.iter
            (fun shrd_i ->
              match
                List.find_opt (fun s -> s.shared = shrd_i.shared) !my
              with
              | Some shrd_g ->
                  let complete_before = all_found shrd_g in
                  let incoming_complete = all_found shrd_i in
                  (* propagate consumer-found flags from the input *)
                  List.iter
                    (fun (c, f) ->
                      if !f then
                        match List.assoc_opt c shrd_g.consumers with
                        | Some fg -> fg := true
                        | None -> ())
                    shrd_i.consumers;
                  (* this group consumes the shared input directly *)
                  if input = shrd_i.shared then begin
                    match List.assoc_opt gid shrd_g.consumers with
                    | Some fg -> fg := true
                    | None -> ()
                  end;
                  (* SetLCA (Algorithm 3, line 22).  Note: the paper's
                     unconditional overwrite is order-sensitive (see the
                     module comment); this incremental value is recorded
                     for fidelity but the final LCA table is recomputed
                     exactly from postdominators afterwards. *)
                  ignore complete_before;
                  ignore incoming_complete;
                  if all_found shrd_g then
                    Hashtbl.replace t.lca shrd_i.shared gid
              | None ->
                  let ng = copy_shrd shrd_i in
                  if input = shrd_i.shared then begin
                    match List.assoc_opt gid ng.consumers with
                    | Some fg -> fg := true
                    | None -> ()
                  end;
                  my := !my @ [ ng ])
            (info t input))
        (Smemo.Memo.group_children g);
      Hashtbl.replace t.info gid !my
    end
  in
  propagate memo.Smemo.Memo.root;
  (* replace the incremental LCAs with the exact postdominator-based ones
     (see the module comment) *)
  let pd = postdominators memo in
  Hashtbl.iter
    (fun shared consumers ->
      match lowest_common_postdominator memo pd consumers with
      | Some l -> Hashtbl.replace t.lca shared l
      | None -> Hashtbl.remove t.lca shared)
    t.consumers_of;
  t

let pp ppf t =
  Hashtbl.iter
    (fun shared l ->
      Fmt.pf ppf "shared %d: consumers %s, LCA %d@." shared
        (String.concat ","
           (List.map string_of_int (consumers t shared)))
        l)
    t.lca
