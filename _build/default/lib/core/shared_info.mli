(** Algorithm 3: PropagateSharedGrpInfoAndFindLCA.

    Bottom-up propagation of shared-group information through the memo's
    group DAG, and identification of each shared group's LCA
    (Definition 2) — the lowest group on every consumer-to-root path,
    which is {e not} necessarily the lowest common ancestor
    (Figure 3(c)).

    Deviation from the paper: the incremental SetLCA-overwrite rule is
    traversal-order-sensitive (see the implementation comment and
    EXPERIMENTS.md); the final LCA is computed exactly as the consumers'
    lowest common postdominator. The paper's propagation is kept — it
    yields the shared-below sets used for enforcement pruning and the
    VIII-A independence test. *)

type shrd = {
  shared : int;  (** the shared (spool) group *)
  consumers : (int * bool ref) list;  (** consumer -> found below here *)
}

type t = {
  info : (int, shrd list) Hashtbl.t;
  lca : (int, int) Hashtbl.t;
  consumers_of : (int, int list) Hashtbl.t;
}

(** Shared-group annotations of a group ([[]] when none). *)
val info : t -> int -> shrd list

(** The LCA of a shared group's consumers. *)
val lca_of_shared : t -> int -> int option

(** Shared groups whose LCA is the given group. *)
val lca_groups : t -> int -> int list

(** Shared groups at or below the given group. *)
val shared_below : t -> int -> int list

(** Distinct consumer groups of a shared group. *)
val consumers : t -> int -> int list

(** Run the propagation and LCA identification over the whole memo. *)
val compute : Smemo.Memo.t -> t

val pp : t Fmt.t
