(** Section VIII-B: ranking shared groups by potential repartitioning
    savings, [RepartSav(G) = (NoConsumers(G) - 1) * RepartCost(G)], so the
    most beneficial rounds run first under a budget. *)

(** Estimated cost of repartitioning the group's output once. *)
val repartition_cost : Scost.Cluster.t -> Smemo.Memo.t -> int -> float

val savings : Scost.Cluster.t -> Smemo.Memo.t -> Shared_info.t -> int -> float

(** Sort shared groups by savings, high to low (stable). *)
val order :
  Scost.Cluster.t -> Smemo.Memo.t -> Shared_info.t -> int list -> int list
