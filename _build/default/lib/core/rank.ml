(* Section VIII-B: ranking shared groups by their potential repartitioning
   savings,

     RepartSav(G) = (NoConsumers(G) - 1) * RepartCost(G),

   so that the rounds touching the most beneficial shared groups run
   first and a budget cut-off keeps the best of them. *)

let repartition_cost (cluster : Scost.Cluster.t) (memo : Smemo.Memo.t) gid =
  let g = Smemo.Memo.group memo gid in
  let s = g.Smemo.Memo.stats in
  s.Slogical.Stats.rows *. s.Slogical.Stats.row_bytes
  *. cluster.Scost.Cluster.net_byte
  /. float_of_int cluster.Scost.Cluster.machines

let savings (cluster : Scost.Cluster.t) (memo : Smemo.Memo.t)
    (si : Shared_info.t) gid =
  let consumers = List.length (Shared_info.consumers si gid) in
  float_of_int (max 0 (consumers - 1)) *. repartition_cost cluster memo gid

(* Sort shared groups by savings, high to low (stable for ties). *)
let order (cluster : Scost.Cluster.t) (memo : Smemo.Memo.t)
    (si : Shared_info.t) (shared : int list) =
  List.stable_sort
    (fun a b ->
      Float.compare (savings cluster memo si b) (savings cluster memo si a))
    shared
