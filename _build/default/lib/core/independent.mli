(** Section VIII-A: independent shared groups.

    Shared groups with the same LCA [l] are independent when their
    consuming-path sub-DAGs meet only at [l] (and above); following the
    paper, two groups are dependent when some input of [l] has both in its
    shared-below list. Independent classes are re-optimized sequentially
    instead of combinatorially. *)

(** Partition the given shared groups (all with LCA [l]) into independence
    classes; each class sorted by id, classes ordered by smallest
    element. *)
val classes :
  Shared_info.t -> Smemo.Memo.t -> l:int -> int list -> int list list
