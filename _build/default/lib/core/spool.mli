(** Algorithm 1: IdentifyCommonSubexpressions.

    Merges structurally equal subexpressions (found via fingerprint
    collisions) and puts a SPOOL group on top of every group with more than
    one consumer, re-pointing the consumers to it and marking it shared. *)

type shared = {
  spool : int;  (** the spool group (the one marked shared) *)
  under : int;  (** the group being materialized *)
  initial_consumers : int;  (** distinct parents at identification time *)
}

(** Run the identification on a freshly built memo; returns the shared
    groups found. Idempotent. *)
val identify : ?config:Config.t -> Smemo.Memo.t -> shared list
