lib/core/shared_info.ml: Array Fmt Hashtbl Int List Option Smemo String
