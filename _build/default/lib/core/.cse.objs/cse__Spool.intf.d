lib/core/spool.mli: Config Smemo
