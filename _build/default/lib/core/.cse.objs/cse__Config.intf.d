lib/core/config.mli:
