lib/core/rank.ml: Float List Scost Shared_info Slogical Smemo
