lib/core/fingerprint.ml: Hashtbl List Slogical Smemo
