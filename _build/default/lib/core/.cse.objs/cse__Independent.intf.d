lib/core/independent.mli: Shared_info Smemo
