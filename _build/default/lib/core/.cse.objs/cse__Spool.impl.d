lib/core/spool.ml: Array Config Fingerprint Hashtbl Int List Option Slogical Smemo
