lib/core/independent.ml: Hashtbl Int List Option Shared_info Smemo
