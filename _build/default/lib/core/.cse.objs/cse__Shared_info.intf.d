lib/core/shared_info.mli: Fmt Hashtbl Smemo
