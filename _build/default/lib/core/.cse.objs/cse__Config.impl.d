lib/core/config.ml:
