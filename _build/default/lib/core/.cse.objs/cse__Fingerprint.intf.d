lib/core/fingerprint.mli: Hashtbl Slogical Smemo
