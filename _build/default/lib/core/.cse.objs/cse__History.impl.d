lib/core/history.ml: Config Hashtbl Int List Partition Plan Props Relalg Reqprops Sortorder Sphys Sutil
