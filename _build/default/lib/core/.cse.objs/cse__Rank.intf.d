lib/core/rank.mli: Scost Shared_info Smemo
