lib/core/pipeline.ml: Config Float Fmt History List Option Phase2 Plan Relalg Scost Shared_info Slang Slogical Smemo Sopt Sphys Spool String Unix
