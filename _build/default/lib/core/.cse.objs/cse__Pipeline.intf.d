lib/core/pipeline.mli: Config Fmt Relalg Scost Shared_info Slogical Smemo Sopt Sphys Spool
