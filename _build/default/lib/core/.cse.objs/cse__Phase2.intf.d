lib/core/phase2.mli: Config History Scost Shared_info Smemo Sopt Sphys
