lib/core/phase2.ml: Budget Config Enforcers Extreq Fmt Hashtbl History Independent Int List Logs Optimizer Plan Plan_check Rank Reqprops Rounds Shared_info Smemo Sopt Sphys String
