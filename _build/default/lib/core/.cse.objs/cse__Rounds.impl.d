lib/core/rounds.ml: Array List Reqprops Sphys
