lib/core/rounds.mli: Sphys
