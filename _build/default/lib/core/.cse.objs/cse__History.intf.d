lib/core/history.mli: Config Sphys
