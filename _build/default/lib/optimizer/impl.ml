open Relalg
open Sphys

(* Implementation rules and DetChildProp (Algorithm 2, lines 8-12): for a
   logical group expression under a required property set, produce the
   physical alternatives together with the properties each one requires
   from its children.  Alternatives whose requirement cannot be pushed down
   are simply not generated -- the enforcer machinery covers those shapes
   by optimizing the same group under a weaker requirement and patching on
   top. *)

type alt = { op : Physop.t; child_reqs : Reqprops.t list }

(* Intersect a parent partitioning requirement with "within [keys]" -- the
   input condition of a global/full aggregation.  [None] = incompatible. *)
let part_within_keys (req : Reqprops.part_req) keyset :
    Reqprops.part_req option =
  match req with
  | Reqprops.Any -> Some (Reqprops.Hash_subset keyset)
  | Reqprops.Serial_req -> Some Reqprops.Serial_req
  | Reqprops.Hash_subset c ->
      let i = Colset.inter c keyset in
      if Colset.is_empty i then None else Some (Reqprops.Hash_subset i)
  | Reqprops.Hash_exact e ->
      if Colset.subset e keyset then Some (Reqprops.Hash_exact e) else None

(* Partitioning requirement passed through an operator that preserves its
   input partitioning over [keys] (local aggregation). *)
let part_through_keys (req : Reqprops.part_req) keyset :
    Reqprops.part_req option =
  match req with
  | Reqprops.Any -> Some Reqprops.Any
  | _ -> part_within_keys req keyset

(* Grouping sort order honoring the parent's requirement: the parent's
   required order (when it only mentions keys) extended with the remaining
   keys in canonical order.  This is what makes e.g. GB(A,B,C) deliver a
   (B,A,C) order when the consumer groups on (B,A) -- the Figure 8
   behaviour. *)
let grouping_sort (req_sort : Sortorder.t) keys : Sortorder.t option =
  let keyset = Colset.of_list keys in
  if not (Colset.subset (Sortorder.columns req_sort) keyset) then None
  else
    let prefix_cols = Sortorder.columns req_sort in
    let remaining =
      List.filter (fun k -> not (Colset.mem k prefix_cols)) keys
    in
    Some (req_sort @ Sortorder.asc (List.sort String.compare remaining))

let agg_alts ~keys ~aggs ~(scope : Physop.agg_scope) (req : Reqprops.t) :
    alt list =
  let keyset = Colset.of_list keys in
  let part =
    match scope with
    | Physop.Local -> part_through_keys req.Reqprops.part keyset
    | (Physop.Global | Physop.Full) when keys = [] ->
        (* grand total: all rows must meet on one machine *)
        Some Reqprops.Serial_req
    | Physop.Global | Physop.Full -> part_within_keys req.Reqprops.part keyset
  in
  match part with
  | None -> []
  | Some part ->
      let stream =
        match grouping_sort req.Reqprops.sort keys with
        | None -> []
        | Some sort ->
            [
              {
                op = Physop.P_stream_agg { keys; aggs; scope };
                child_reqs = [ Reqprops.make part sort ];
              };
            ]
      in
      let hash =
        [
          {
            op = Physop.P_hash_agg { keys; aggs; scope };
            child_reqs = [ Reqprops.make part Sortorder.empty ];
          };
        ]
      in
      stream @ hash

(* Requirement mapped backwards through a projection: output columns that
   are simple renames map to their source; anything else blocks the
   push-down. *)
let project_pushdown items (req : Reqprops.t) : Reqprops.t option =
  let sources =
    List.filter_map
      (fun (e, name) ->
        match e with Expr.Col src -> Some (name, src) | _ -> None)
      items
  in
  let back name = List.assoc_opt name sources in
  let part =
    match req.Reqprops.part with
    | Reqprops.Any -> Some Reqprops.Any
    | Reqprops.Serial_req -> Some Reqprops.Serial_req
    | Reqprops.Hash_subset c ->
        let mapped = List.filter_map back (Colset.to_list c) in
        if mapped = [] then None
        else Some (Reqprops.Hash_subset (Colset.of_list mapped))
    | Reqprops.Hash_exact e ->
        let mapped = List.map back (Colset.to_list e) in
        if List.for_all Option.is_some mapped then
          Some (Reqprops.Hash_exact (Colset.of_list (List.map Option.get mapped)))
        else None
  in
  let sort =
    let mapped =
      List.map (fun (c, d) -> (back c, d)) req.Reqprops.sort
    in
    if List.for_all (fun (c, _) -> Option.is_some c) mapped then
      Some (List.map (fun (c, d) -> (Option.get c, d)) mapped)
    else None
  in
  match (part, sort) with
  | Some part, Some sort -> Some (Reqprops.make part sort)
  | _ -> None

(* Join-key subsets considered for co-partitioning.  Capped to keep the
   space small for wide keys. *)
let join_key_subsets pairs =
  if List.length pairs <= 3 then Sutil.Combi.nonempty_subsets pairs
  else
    [ pairs ] @ List.map (fun p -> [ p ]) pairs

let join_alts ~kind ~pairs ~residual (req : Reqprops.t) : alt list =
  ignore req;
  List.concat_map
    (fun (subset : (string * string) list) ->
      let lset = Colset.of_list (List.map fst subset) in
      let rset = Colset.of_list (List.map snd subset) in
      let hash =
        {
          op = Physop.P_hash_join { kind; pairs; residual };
          child_reqs =
            [
              Reqprops.make (Reqprops.Hash_exact lset) Sortorder.empty;
              Reqprops.make (Reqprops.Hash_exact rset) Sortorder.empty;
            ];
        }
      in
      (* merge join: sorted on the subset's pairs in a canonical order *)
      let ordered =
        List.sort (fun (a, _) (b, _) -> String.compare a b) subset
      in
      let merge =
        {
          op = Physop.P_merge_join { kind; pairs; residual };
          child_reqs =
            [
              Reqprops.make (Reqprops.Hash_exact lset)
                (Sortorder.asc (List.map fst ordered));
              Reqprops.make (Reqprops.Hash_exact rset)
                (Sortorder.asc (List.map snd ordered));
            ];
        }
      in
      [ hash; merge ])
    (join_key_subsets pairs)

(* All implementation alternatives of one group expression under [req]. *)
let alternatives (e : Smemo.Memo.mexpr) (req : Reqprops.t) : alt list =
  match e.Smemo.Memo.mop with
  | Slogical.Logop.Extract { file; extractor; schema } ->
      [ { op = Physop.P_extract { file; extractor; schema }; child_reqs = [] } ]
  | Slogical.Logop.Filter { pred } ->
      [ { op = Physop.P_filter { pred }; child_reqs = [ req ] } ]
  | Slogical.Logop.Project { items } -> (
      match project_pushdown items req with
      | Some creq ->
          [ { op = Physop.P_project { items }; child_reqs = [ creq ] } ]
      | None -> [])
  | Slogical.Logop.Group_by { keys; aggs } ->
      agg_alts ~keys ~aggs ~scope:Physop.Full req
  | Slogical.Logop.Group_by_local { keys; aggs } ->
      agg_alts ~keys ~aggs ~scope:Physop.Local req
  | Slogical.Logop.Group_by_global { keys; aggs } ->
      agg_alts ~keys ~aggs ~scope:Physop.Global req
  | Slogical.Logop.Join { kind; pairs; residual } ->
      join_alts ~kind ~pairs ~residual req
  | Slogical.Logop.Union_all ->
      let plain =
        { op = Physop.P_union_all; child_reqs = [ Reqprops.none; Reqprops.none ] }
      in
      (* co-partitioned union: satisfy a partitioning requirement by
         requiring it of both inputs (per-machine concatenation) *)
      let copart =
        match req.Reqprops.part with
        | Reqprops.Hash_exact e when Sortorder.is_empty req.Reqprops.sort ->
            let creq = Reqprops.make (Reqprops.Hash_exact e) Sortorder.empty in
            [ { op = Physop.P_union_all; child_reqs = [ creq; creq ] } ]
        | _ -> []
      in
      plain :: copart
  | Slogical.Logop.Spool ->
      [ { op = Physop.P_spool; child_reqs = [ req ] } ]
  | Slogical.Logop.Output { file; order } ->
      (* ORDER BY requires a globally ordered result: the child must be
         serial and sorted (the gather + sort enforcers provide it) *)
      let creq =
        match order with
        | [] -> Reqprops.none
        | o ->
            Reqprops.make Reqprops.Serial_req
              (List.map
                 (fun (c, desc) ->
                   (c, if desc then Sortorder.Desc else Sortorder.Asc))
                 o)
      in
      [ { op = Physop.P_output { file }; child_reqs = [ creq ] } ]
  | Slogical.Logop.Sequence ->
      [
        {
          op = Physop.P_sequence;
          child_reqs = List.map (fun _ -> Reqprops.none) e.Smemo.Memo.children;
        };
      ]
