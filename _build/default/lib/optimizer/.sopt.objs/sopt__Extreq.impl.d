lib/optimizer/extreq.ml: Fmt List Reqprops Sphys Stdlib String
