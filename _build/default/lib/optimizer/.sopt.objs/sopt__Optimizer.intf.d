lib/optimizer/optimizer.mli: Budget Extreq Scost Smemo Sphys
