lib/optimizer/rules.ml: Agg List Relalg Slogical Smemo
