lib/optimizer/rules.mli: Smemo
