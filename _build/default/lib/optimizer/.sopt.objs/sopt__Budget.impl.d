lib/optimizer/budget.ml: Unix
