lib/optimizer/impl.ml: Colset Expr List Option Physop Relalg Reqprops Slogical Smemo Sortorder Sphys String Sutil
