lib/optimizer/impl.mli: Relalg Smemo Sphys
