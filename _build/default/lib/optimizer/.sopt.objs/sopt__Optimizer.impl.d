lib/optimizer/optimizer.ml: Budget Enforcers Extreq Hashtbl Impl List Option Plan Plan_check Printf Reqprops Rules Scost Smemo Sphys
