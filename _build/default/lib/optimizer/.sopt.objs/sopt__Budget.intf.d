lib/optimizer/budget.mli:
