lib/optimizer/enforcers.mli: Relalg Sphys
