lib/optimizer/extreq.mli: Fmt Sphys
