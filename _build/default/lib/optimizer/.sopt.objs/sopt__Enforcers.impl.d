lib/optimizer/enforcers.ml: Colset List Physop Relalg Reqprops Sortorder Sphys
