(** Logical exploration rules. The load-bearing rule is the local/global
    aggregation split:

    [GroupBy(keys; aggs)] ⇒ [GroupByGlobal(keys; combine(aggs))] over a new
    group holding [GroupByLocal(keys; aggs)]

    which yields the StreamAgg(Local) / exchange / StreamAgg(Global) plans
    of Figure 8. *)

(** Apply the rules of [phase] to a group, adding equivalent expressions
    (and possibly new groups). Idempotent per group and phase; never
    duplicates the aggregation split across phases. *)
val explore : Smemo.Memo.t -> Smemo.Memo.group -> phase:int -> unit
