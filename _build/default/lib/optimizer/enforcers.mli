(** Enforcer rules: alternatives that optimize the same group under a
    strictly weaker requirement and patch the missing property on top
    (hash exchange, sort-preserving merge exchange, local sort, gather).
    Every generated inner requirement has strictly smaller
    {!Sphys.Reqprops.weight}, so the recursion terminates. *)

type alt = { op : Sphys.Physop.t; inner : Sphys.Reqprops.t }

(** Concrete partition sets tried for a range requirement [∅, C]: all
    non-empty subsets for narrow [C]; full set, singletons and adjacent
    pairs beyond four columns. *)
val candidate_sets : Relalg.Colset.t -> Relalg.Colset.t list

val alternatives : Sphys.Reqprops.t -> alt list
