open Relalg
open Sphys

(* Enforcer rules: alternatives that optimize the *same* group under a
   strictly weaker requirement and patch the missing property on top with
   an exchange, a sort-preserving merge exchange, a local sort, or a
   gather.  Termination: every generated inner requirement has a strictly
   smaller [Reqprops.weight]. *)

type alt = { op : Physop.t; inner : Reqprops.t }

(* Concrete partitioning sets tried for a range requirement [∅, C].  All
   non-empty subsets for narrow C; for wide C the full set, singletons and
   adjacent pairs (a pragmatic cap, cf. Section VIII on large scripts). *)
let candidate_sets (c : Colset.t) =
  let cols = Colset.to_list c in
  if List.length cols <= 4 then Colset.nonempty_subsets c
  else
    let singletons = List.map Colset.singleton cols in
    let rec pairs = function
      | a :: (b :: _ as rest) -> Colset.of_list [ a; b ] :: pairs rest
      | _ -> []
    in
    c :: (singletons @ pairs cols)

let alternatives (req : Reqprops.t) : alt list =
  let sort_alts =
    if Sortorder.is_empty req.Reqprops.sort then []
    else
      [
        {
          op = Physop.P_sort { order = req.Reqprops.sort };
          inner = { req with Reqprops.sort = Sortorder.empty };
        };
      ]
  in
  let exchange_on set =
    let plain =
      if Sortorder.is_empty req.Reqprops.sort then
        [
          {
            op = Physop.P_exchange { cols = set };
            inner = Reqprops.none;
          };
        ]
      else []
    in
    let merging =
      if Sortorder.is_empty req.Reqprops.sort then []
      else
        [
          {
            op = Physop.P_merge_exchange { cols = set };
            inner = Reqprops.make Reqprops.Any req.Reqprops.sort;
          };
        ]
    in
    plain @ merging
  in
  let part_alts =
    match req.Reqprops.part with
    | Reqprops.Any -> []
    | Reqprops.Hash_exact e -> exchange_on e
    | Reqprops.Hash_subset c ->
        List.concat_map exchange_on (candidate_sets c)
    | Reqprops.Serial_req ->
        [
          {
            op = Physop.P_gather;
            inner = Reqprops.make Reqprops.Any req.Reqprops.sort;
          };
        ]
  in
  let alts = sort_alts @ part_alts in
  (* invariant: enforcer recursion is well-founded *)
  List.iter
    (fun a -> assert (Reqprops.weight a.inner < Reqprops.weight req))
    alts;
  alts
