(** Implementation rules and DetChildProp (Algorithm 2): the physical
    alternatives of a logical group expression under a requirement,
    together with the properties each alternative requires of its children.
    Alternatives whose requirement cannot be pushed down are not generated;
    the enforcer machinery covers those shapes. *)

type alt = { op : Sphys.Physop.t; child_reqs : Sphys.Reqprops.t list }

(** Intersection of a parent partitioning requirement with "within
    [keys]" — the input condition of a global/full aggregation. [None] =
    incompatible. *)
val part_within_keys :
  Sphys.Reqprops.part_req -> Relalg.Colset.t -> Sphys.Reqprops.part_req option

(** Requirement mapped backwards through a projection's rename items;
    [None] when a required column is computed. *)
val project_pushdown :
  (Relalg.Expr.t * string) list -> Sphys.Reqprops.t -> Sphys.Reqprops.t option

(** All implementation alternatives of one expression under the
    requirement. *)
val alternatives : Smemo.Memo.mexpr -> Sphys.Reqprops.t -> alt list
