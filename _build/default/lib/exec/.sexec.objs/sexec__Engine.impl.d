lib/exec/engine.ml: Agg Array Catalog Colset Datagen Expr Fmt Hashtbl List Option Partition Physop Plan Props Relalg Schema Slogical Sortorder Sphys Table Value
