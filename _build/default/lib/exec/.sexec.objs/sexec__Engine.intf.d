lib/exec/engine.mli: Datagen Relalg Sphys
