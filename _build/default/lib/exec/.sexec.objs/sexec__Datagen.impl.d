lib/exec/datagen.ml: Array Catalog Hashtbl List Printf Relalg Schema Sutil Table Value
