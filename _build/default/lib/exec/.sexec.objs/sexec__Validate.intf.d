lib/exec/validate.mli: Datagen Engine Relalg Slogical Sphys
