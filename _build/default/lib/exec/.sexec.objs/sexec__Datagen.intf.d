lib/exec/datagen.mli: Relalg
