lib/exec/validate.ml: Array Catalog Datagen Engine List Printf Reference Relalg Schema Slogical Sphys Table Value
