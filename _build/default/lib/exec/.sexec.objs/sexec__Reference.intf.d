lib/exec/reference.mli: Datagen Relalg Slogical
