lib/exec/reference.ml: Catalog Datagen Expr Hashtbl List Option Relalg Slogical Table Value
