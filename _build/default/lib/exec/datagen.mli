(** Deterministic synthetic data generation driven by the catalog.

    Execution runs on a scaled-down copy of each input: row counts are
    capped and NDVs scaled so grouping still aggregates. The same file name
    always yields the same rows. *)

type config = { max_rows : int }

(** 2 000 rows per input. *)
val default : config

val scaled_rows : config -> Relalg.Catalog.file_stats -> int
val scaled_ndv : config -> Relalg.Catalog.file_stats -> int -> int

(** The (scaled) table of a catalog file restricted to [schema]'s columns;
    empty for unknown files. *)
val table :
  ?config:config ->
  Relalg.Catalog.t ->
  file:string ->
  schema:Relalg.Schema.t ->
  Relalg.Table.t
