open Relalg

(* Reference evaluator: executes the *logical* DAG directly over the same
   synthetic tables, with no parallelism and no physical operators.  Every
   physical plan -- conventional or CSE, any round -- must produce exactly
   these outputs; tests compare against this ground truth. *)

let run ?(datagen = Datagen.default) (catalog : Catalog.t)
    (dag : Slogical.Dag.t) : (string * Table.t) list =
  let cache : (int, Table.t) Hashtbl.t = Hashtbl.create 16 in
  let outputs = ref [] in
  let rec eval id : Table.t =
    match Hashtbl.find_opt cache id with
    | Some t -> t
    | None ->
        let n = Slogical.Dag.node dag id in
        let children () = List.map eval n.Slogical.Dag.children in
        let one () =
          match n.Slogical.Dag.children with
          | [ c ] -> eval c
          | _ -> invalid_arg "Reference: expected one child"
        in
        let result =
          match n.Slogical.Dag.op with
          | Slogical.Logop.Extract { file; schema; _ } ->
              Datagen.table ~config:datagen catalog ~file ~schema
          | Slogical.Logop.Filter { pred } -> Table.filter (one ()) pred
          | Slogical.Logop.Project { items } -> Table.project (one ()) items
          | Slogical.Logop.Group_by { keys; aggs } ->
              Table.group_by (one ()) ~keys ~aggs
          | Slogical.Logop.Group_by_local _ | Slogical.Logop.Group_by_global _
            ->
              invalid_arg "Reference: two-stage aggregation is physical-only"
          | Slogical.Logop.Join { kind; pairs; residual } -> (
              match children () with
              | [ l; r ] ->
                  let eqs =
                    List.map
                      (fun (a, b) -> Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b))
                      pairs
                  in
                  let pred =
                    match eqs @ Option.to_list residual with
                    | [] -> Expr.Lit (Value.Int 1)
                    | e :: rest ->
                        List.fold_left (fun acc x -> Expr.And (acc, x)) e rest
                  in
                  Table.join
                    ~kind:
                      (match kind with
                      | Slogical.Logop.Inner -> `Inner
                      | Slogical.Logop.Left_outer -> `Left_outer)
                    l r pred
              | _ -> invalid_arg "Reference: join expects two children")
          | Slogical.Logop.Union_all -> (
              match children () with
              | [ l; r ] -> Table.union_all l r
              | _ -> invalid_arg "Reference: union expects two children")
          | Slogical.Logop.Spool -> one ()
          | Slogical.Logop.Output { file; order = _ } ->
              (* output contents are compared as multisets; the ordering
                 requirement is checked separately against the engine *)
              let t = one () in
              outputs := !outputs @ [ (file, t) ];
              t
          | Slogical.Logop.Sequence ->
              ignore (children ());
              Table.empty []
        in
        Hashtbl.replace cache id result;
        result
  in
  ignore (eval (Slogical.Dag.root dag).Slogical.Dag.id);
  !outputs
