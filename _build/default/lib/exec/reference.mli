(** Reference evaluator: executes the logical DAG directly over the same
    synthetic tables, with no parallelism or physical operators. Every
    physical plan must reproduce these outputs exactly. *)

val run :
  ?datagen:Datagen.config ->
  Relalg.Catalog.t ->
  Slogical.Dag.t ->
  (string * Relalg.Table.t) list
