(** Cross-validation of physical plans against the reference evaluator. *)

type outcome = {
  ok : bool;
  mismatches : string list;
  counters : Engine.counters;
}

(** Execute the plan on a simulated cluster and compare every OUTPUT file
    against the reference results of the logical DAG; outputs with an
    ORDER BY are checked to be globally sorted, and with [~verify_props]
    every operator's claimed delivered properties are checked against the
    rows it actually produced. *)
val check :
  ?datagen:Datagen.config ->
  ?verify_props:bool ->
  machines:int ->
  Relalg.Catalog.t ->
  Slogical.Dag.t ->
  Sphys.Plan.t ->
  outcome
