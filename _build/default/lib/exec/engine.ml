open Relalg
open Sphys

(* Simulated distributed execution of physical plans.

   A stream is an array of per-machine row lists.  Exchanges move rows
   between machines using a *commutative* per-row hash over the partition
   columns, so two inputs partitioned on column sets linked by join
   equalities are co-located (the property the optimizer's co-partitioning
   rules rely on).  Counters record rows shuffled, bytes read and spool
   executions; [Validate] compares every output against the reference
   evaluator. *)

type dist = { schema : Schema.t; parts : Value.t array list array }

type counters = {
  mutable rows_shuffled : int;
  mutable rows_extracted : int;
  mutable spool_executions : int;
  mutable spool_reads : int;
}

type t = {
  machines : int;
  catalog : Catalog.t;
  datagen : Datagen.config;
  counters : counters;
  (* spool materialization cache, keyed by physical plan identity *)
  mutable spooled : (Plan.t * dist) list;
  mutable outputs : (string * Table.t) list;
  (* when set, every operator's *claimed* delivered properties are checked
     against the rows it actually produced *)
  verify_props : bool;
  mutable prop_violations : string list;
}

let create ?(datagen = Datagen.default) ?(verify_props = false) ~machines
    catalog =
  {
    machines;
    catalog;
    datagen;
    counters =
      { rows_shuffled = 0; rows_extracted = 0; spool_executions = 0; spool_reads = 0 };
    spooled = [];
    outputs = [];
    verify_props;
    prop_violations = [];
  }

let empty_parts t = Array.make t.machines []

(* Commutative hash of the values of [cols]: the sum of per-value hashes,
   so the machine assignment does not depend on column order. *)
let route t (schema : Schema.t) (cols : Colset.t) (row : Value.t array) =
  let idxs = List.map (fun c -> Schema.index c schema) (Colset.to_list cols) in
  let h = List.fold_left (fun acc i -> acc + Value.hash row.(i)) 17 idxs in
  (h land max_int) mod t.machines

let map_parts f (d : dist) schema' =
  { schema = schema'; parts = Array.map f d.parts }

let sort_rows (schema : Schema.t) (order : Sortorder.t) rows =
  let idxs =
    List.map (fun (c, dir) -> (Schema.index c schema, dir)) order
  in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, dir) :: rest ->
          let c = Value.compare a.(i) b.(i) in
          let c = match dir with Sortorder.Asc -> c | Sortorder.Desc -> -c in
          if c <> 0 then c else go rest
    in
    go idxs
  in
  List.stable_sort cmp rows

(* Streaming aggregation over rows whose groups are contiguous. *)
let stream_agg (schema : Schema.t) ~keys ~(aggs : Agg.t list) rows =
  let key_idx = List.map (fun k -> Schema.index k schema) keys in
  let key_of row = List.map (fun i -> row.(i)) key_idx in
  let out = ref [] in
  let flush key states =
    out := Array.of_list (key @ List.map2 Agg.finish aggs states) :: !out
  in
  let current = ref None in
  List.iter
    (fun row ->
      let k = key_of row in
      (match !current with
      | Some (k0, states) when List.equal Value.equal k0 k ->
          List.iter2 (fun a st -> Agg.step a st schema row) aggs states
      | Some (k0, states) ->
          flush k0 states;
          let states = List.map (fun _ -> Agg.init ()) aggs in
          List.iter2 (fun a st -> Agg.step a st schema row) aggs states;
          current := Some (k, states)
      | None ->
          let states = List.map (fun _ -> Agg.init ()) aggs in
          List.iter2 (fun a st -> Agg.step a st schema row) aggs states;
          current := Some (k, states)))
    rows;
  (match !current with Some (k0, states) -> flush k0 states | None -> ());
  List.rev !out

let exchange t (d : dist) cols =
  let parts = empty_parts t in
  Array.iter
    (fun rows ->
      List.iter
        (fun row ->
          let m = route t d.schema cols row in
          t.counters.rows_shuffled <- t.counters.rows_shuffled + 1;
          parts.(m) <- row :: parts.(m))
        rows)
    d.parts;
  (* restore arrival order per machine *)
  { schema = d.schema; parts = Array.map List.rev parts }

let pred_of_pairs pairs residual =
  let eqs =
    List.map (fun (a, b) -> Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)) pairs
  in
  let conj =
    match eqs @ Option.to_list residual with
    | [] -> Expr.Lit (Value.Int 1)
    | e :: rest -> List.fold_left (fun acc x -> Expr.And (acc, x)) e rest
  in
  conj

(* Check that the delivered properties recorded on a plan node hold on the
   rows it actually produced: a [Serial] stream occupies one machine, a
   [Hashed s] stream co-locates every s-tuple, and each partition is sorted
   per the claimed order. *)
let check_delivered t (n : Plan.t) (d : dist) =
  let violation fmt =
    Fmt.kstr (fun m -> t.prop_violations <- m :: t.prop_violations) fmt
  in
  let where = Physop.to_string n.Plan.op in
  (match n.Plan.props.Props.part with
  | Partition.Roundrobin -> ()
  | Partition.Serial ->
      let occupied =
        Array.fold_left (fun acc p -> if p = [] then acc else acc + 1) 0 d.parts
      in
      if occupied > 1 then
        violation "%s: claims serial but occupies %d machines" where occupied
  | Partition.Hashed s ->
      let idxs =
        List.filter_map (fun c -> Schema.index_opt c d.schema) (Colset.to_list s)
      in
      if List.length idxs = Colset.cardinal s then begin
        let homes = Hashtbl.create 64 in
        Array.iteri
          (fun m part ->
            List.iter
              (fun row ->
                let key = List.map (fun i -> row.(i)) idxs in
                match Hashtbl.find_opt homes key with
                | Some m0 when m0 <> m ->
                    violation
                      "%s: claims hash%s but a %s group spans machines %d and %d"
                      where (Colset.to_string s) (Colset.to_string s) m0 m
                | Some _ -> ()
                | None -> Hashtbl.add homes key m)
              part)
          d.parts
      end);
  (match n.Plan.props.Props.sort with
  | [] -> ()
  | order ->
      let idxs =
        List.filter_map
          (fun (c, dir) ->
            Option.map (fun i -> (i, dir)) (Schema.index_opt c d.schema))
          order
      in
      if List.length idxs = List.length order then
        let cmp a b =
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = Value.compare a.(i) b.(i) in
                let c = match dir with Sortorder.Asc -> c | Sortorder.Desc -> -c in
                if c <> 0 then c else go rest
          in
          go idxs
        in
        Array.iteri
          (fun m part ->
            let rec sorted = function
              | a :: (b :: _ as rest) -> cmp a b <= 0 && sorted rest
              | _ -> true
            in
            if not (sorted part) then
              violation "%s: claims sort %s but machine %d is out of order"
                where (Sortorder.to_string order) m)
          d.parts)

let rec execute t (plan : Plan.t) : dist =
  let d = execute_op t plan in
  if t.verify_props then check_delivered t plan d;
  d

and execute_op t (plan : Plan.t) : dist =
  let n = plan in
  let schema = n.Plan.schema in
  match n.Plan.op with
  | Physop.P_extract { file; schema = fschema; _ } ->
      let table = Datagen.table ~config:t.datagen t.catalog ~file ~schema:fschema in
      t.counters.rows_extracted <-
        t.counters.rows_extracted + Table.cardinality table;
      let parts = empty_parts t in
      List.iteri
        (fun i row ->
          let m = i mod t.machines in
          parts.(m) <- row :: parts.(m))
        table.Table.rows;
      { schema = fschema; parts = Array.map List.rev parts }
  | Physop.P_filter { pred } ->
      let d = execute t (List.hd n.Plan.children) in
      map_parts
        (List.filter (fun row -> Expr.eval_pred d.schema row pred))
        d schema
  | Physop.P_project { items } ->
      let d = execute t (List.hd n.Plan.children) in
      map_parts
        (List.map (fun row ->
             Array.of_list
               (List.map (fun (e, _) -> Expr.eval d.schema row e) items)))
        d schema
  | Physop.P_sort { order } ->
      let d = execute t (List.hd n.Plan.children) in
      map_parts (sort_rows d.schema order) d schema
  | Physop.P_stream_agg { keys; aggs; scope = _ } ->
      let d = execute t (List.hd n.Plan.children) in
      map_parts (stream_agg d.schema ~keys ~aggs) d schema
  | Physop.P_hash_agg { keys; aggs; scope = _ } ->
      let d = execute t (List.hd n.Plan.children) in
      map_parts
        (fun rows ->
          (Table.group_by (Table.make d.schema rows) ~keys ~aggs).Table.rows)
        d schema
  | Physop.P_merge_join { kind; pairs; residual }
  | Physop.P_hash_join { kind; pairs; residual } -> (
      match n.Plan.children with
      | [ lc; rc ] ->
          let l = execute t lc and r = execute t rc in
          let pred = pred_of_pairs pairs residual in
          let parts = empty_parts t in
          for m = 0 to t.machines - 1 do
            let joined =
              Table.join ~kind:
                (match kind with
                | Slogical.Logop.Inner -> `Inner
                | Slogical.Logop.Left_outer -> `Left_outer)
                (Table.make l.schema l.parts.(m))
                (Table.make r.schema r.parts.(m))
                pred
            in
            parts.(m) <- joined.Table.rows
          done;
          { schema; parts }
      | _ -> invalid_arg "Engine: join expects two children")
  | Physop.P_union_all -> (
      match n.Plan.children with
      | [ lc; rc ] ->
          let l = execute t lc and r = execute t rc in
          {
            schema;
            parts =
              Array.init t.machines (fun m -> l.parts.(m) @ r.parts.(m));
          }
      | _ -> invalid_arg "Engine: union expects two children")
  | Physop.P_spool -> (
      t.counters.spool_reads <- t.counters.spool_reads + 1;
      match List.find_opt (fun (p, _) -> p == plan) t.spooled with
      | Some (_, d) -> d
      | None ->
          t.counters.spool_executions <- t.counters.spool_executions + 1;
          let d = execute t (List.hd n.Plan.children) in
          t.spooled <- (plan, d) :: t.spooled;
          d)
  | Physop.P_output { file } ->
      let d = execute t (List.hd n.Plan.children) in
      let rows = Array.to_list d.parts |> List.concat in
      t.outputs <- t.outputs @ [ (file, Table.make d.schema rows) ];
      d
  | Physop.P_sequence ->
      List.iter (fun c -> ignore (execute t c)) n.Plan.children;
      { schema = []; parts = empty_parts t }
  | Physop.P_exchange { cols } ->
      let d = execute t (List.hd n.Plan.children) in
      exchange t d cols
  | Physop.P_merge_exchange { cols } ->
      let d = execute t (List.hd n.Plan.children) in
      let child_sort = (List.hd n.Plan.children).Plan.props.Props.sort in
      let ex = exchange t d cols in
      (* merge the sorted runs: re-sorting each partition is equivalent *)
      map_parts (sort_rows ex.schema child_sort) ex ex.schema
  | Physop.P_gather ->
      let d = execute t (List.hd n.Plan.children) in
      let all = Array.to_list d.parts |> List.concat in
      let child_sort = (List.hd n.Plan.children).Plan.props.Props.sort in
      let all =
        if Sortorder.is_empty child_sort then all
        else sort_rows d.schema child_sort all
      in
      let parts = empty_parts t in
      parts.(0) <- all;
      t.counters.rows_shuffled <- t.counters.rows_shuffled + List.length all;
      { schema = d.schema; parts }

(* Run a root plan; returns the outputs in OUTPUT order. *)
let run t (plan : Plan.t) : (string * Table.t) list =
  t.outputs <- [];
  ignore (execute t plan);
  t.outputs
