(** Simulated distributed execution of physical plans.

    A stream is an array of per-machine row lists. Exchanges move rows with
    a commutative per-row hash over the partition columns, so inputs
    partitioned on equality-linked column sets are co-located. Counters
    record rows shuffled/extracted and spool executions; spooled results
    are cached by plan identity so a shared subexpression runs once. *)

type dist = {
  schema : Relalg.Schema.t;
  parts : Relalg.Value.t array list array;
}

type counters = {
  mutable rows_shuffled : int;
  mutable rows_extracted : int;
  mutable spool_executions : int;
  mutable spool_reads : int;
}

type t = {
  machines : int;
  catalog : Relalg.Catalog.t;
  datagen : Datagen.config;
  counters : counters;
  mutable spooled : (Sphys.Plan.t * dist) list;
  mutable outputs : (string * Relalg.Table.t) list;
  verify_props : bool;
      (** when set, every operator's claimed delivered properties are
          checked against the rows it actually produced *)
  mutable prop_violations : string list;
}

val create :
  ?datagen:Datagen.config ->
  ?verify_props:bool ->
  machines:int ->
  Relalg.Catalog.t ->
  t

(** Hash-repartition a stream on a column set (counts shuffled rows). *)
val exchange : t -> dist -> Relalg.Colset.t -> dist

(** Streaming aggregation over rows whose groups are contiguous. *)
val stream_agg :
  Relalg.Schema.t ->
  keys:string list ->
  aggs:Relalg.Agg.t list ->
  Relalg.Value.t array list ->
  Relalg.Value.t array list

(** Execute a plan, returning its output stream. *)
val execute : t -> Sphys.Plan.t -> dist

(** Execute a root plan; returns the OUTPUT files in script order. *)
val run : t -> Sphys.Plan.t -> (string * Relalg.Table.t) list
