lib/memo/memo.mli: Fmt Hashtbl Relalg Slogical Sphys
