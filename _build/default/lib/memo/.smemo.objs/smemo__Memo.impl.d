lib/memo/memo.ml: Array Catalog Fmt Hashtbl Int List Relalg Schema Slogical Sphys String
