open Relalg

(* Required physical properties.

   SCOPE expresses partitioning requirements as a *range* [∅, C]: any
   non-empty subset of C is acceptable because a stream hash-partitioned on
   S ⊆ C is also partitioned on C (all rows agreeing on C agree on S, hence
   are co-located).  [Hash_exact] is the closed form used when the CSE
   framework *enforces* a specific scheme at a shared group (Section VII). *)

type part_req =
  | Any
  | Serial_req
  | Hash_subset of Colset.t (* the range [∅, C]; C must be non-empty *)
  | Hash_exact of Colset.t

type t = { part : part_req; sort : Sortorder.t }

let none = { part = Any; sort = Sortorder.empty }

let make part sort = { part; sort }

let equal a b = a = b

let part_satisfied (delivered : Partition.t) (req : part_req) =
  match (req, delivered) with
  | Any, _ -> true
  | Serial_req, Partition.Serial -> true
  | Serial_req, _ -> false
  | Hash_subset c, Partition.Hashed s ->
      (not (Colset.is_empty s)) && Colset.subset s c
  | Hash_subset _, Partition.Serial ->
      true (* a single partition trivially co-locates every group *)
  | Hash_subset _, Partition.Roundrobin -> false
  | Hash_exact e, Partition.Hashed s -> Colset.equal e s
  | Hash_exact _, (Partition.Serial | Partition.Roundrobin) -> false

(* PropertySatisfied of Algorithm 2: delivered properties meet the
   requirement. *)
let satisfied (delivered : Props.t) (req : t) =
  part_satisfied delivered.Props.part req.part
  && Sortorder.prefix req.sort delivered.Props.sort

(* Weight used to prove enforcer recursion terminates: each enforcer
   optimizes the same group under a strictly smaller requirement. *)
let weight t =
  (match t.part with Any -> 0 | Serial_req | Hash_subset _ | Hash_exact _ -> 2)
  + if Sortorder.is_empty t.sort then 0 else 1

(* Canonical key for winner memoization. *)
let to_key t =
  let part =
    match t.part with
    | Any -> "any"
    | Serial_req -> "serial"
    | Hash_subset c -> "sub" ^ Colset.to_string c
    | Hash_exact e -> "ex" ^ Colset.to_string e
  in
  part ^ "|" ^ Sortorder.to_string t.sort

let pp_part ppf = function
  | Any -> Fmt.string ppf "any"
  | Serial_req -> Fmt.string ppf "serial"
  | Hash_subset c -> Fmt.pf ppf "[∅,%a]" Colset.pp c
  | Hash_exact e -> Fmt.pf ppf "=%a" Colset.pp e

let pp ppf t =
  Fmt.pf ppf "⟨part %a; sort %a⟩" pp_part t.part Sortorder.pp t.sort

let to_string t = Fmt.str "%a" pp t
