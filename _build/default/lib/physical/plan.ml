open Relalg

(* Physical plans.  A plan node records the memo group it implements so
   that DAG-aware costing can recognize two references to the same shared
   (spool) subplan.  [cost] is the conventional *tree-wise* total used
   during search; [Dagcost] in the cost library computes the final
   deduplicated cost of CSE plans. *)

type t = {
  op : Physop.t;
  children : t list;
  group : int; (* memo group this plan implements; -1 when synthetic *)
  schema : Schema.t;
  props : Props.t; (* delivered physical properties *)
  stats : Slogical.Stats.t; (* estimated output stats *)
  op_cost : float; (* this operator's own estimated cost *)
  cost : float; (* tree-wise total: op_cost + sum of child costs *)
}

let make ~op ~children ~group ~schema ~stats ~op_cost =
  let props =
    Physop.deliver op schema (List.map (fun c -> c.props) children)
  in
  let cost =
    List.fold_left (fun acc c -> acc +. c.cost) op_cost children
  in
  { op; children; group; schema; props; stats; op_cost; cost }

(* Fold over every node (parents after children); shared subtrees are
   visited once per reference. *)
let rec fold f acc t =
  let acc = List.fold_left (fold f) acc t.children in
  f acc t

let count_ops pred t = fold (fun n node -> if pred node.op then n + 1 else n) 0 t

(* Operators of the plan as a list, leaves first. *)
let operators t = List.rev (fold (fun acc n -> n.op :: acc) [] t)
