open Relalg

(* Physical operators.  The [`Local]/[`Global]/[`Full] scope of an
   aggregation distinguishes per-machine pre-aggregation, combination of
   partials, and single-stage aggregation. *)

type agg_scope = Local | Global | Full

type t =
  | P_extract of { file : string; extractor : string; schema : Schema.t }
  | P_filter of { pred : Expr.t }
  | P_project of { items : (Expr.t * string) list }
  | P_stream_agg of { keys : string list; aggs : Agg.t list; scope : agg_scope }
  | P_hash_agg of { keys : string list; aggs : Agg.t list; scope : agg_scope }
  | P_merge_join of {
      kind : Slogical.Logop.join_kind;
      pairs : (string * string) list;
      residual : Expr.t option;
    }
  | P_hash_join of {
      kind : Slogical.Logop.join_kind;
      pairs : (string * string) list;
      residual : Expr.t option;
    }
  | P_union_all
  | P_spool
  | P_output of { file : string }
  | P_sequence
  (* enforcers *)
  | P_exchange of { cols : Colset.t } (* hash repartition; destroys sort *)
  | P_merge_exchange of { cols : Colset.t } (* repartition, merging sorted runs *)
  | P_sort of { order : Sortorder.t }
  | P_gather (* merge all partitions onto one machine, preserving sort *)

(* Derive the delivered physical properties of a plan rooted at [op] from
   its children's delivered properties (UpdateDlvdProp of Algorithm 2). *)
let deliver (op : t) (schema : Schema.t) (children : Props.t list) : Props.t =
  let child () =
    match children with
    | [ c ] -> c
    | _ -> invalid_arg "Physop.deliver: expected one child"
  in
  let out_cols = Schema.colset schema in
  match op with
  | P_extract _ -> Props.make Partition.Roundrobin Sortorder.empty
  | P_filter _ | P_spool | P_output _ -> child ()
  | P_project { items } ->
      (* map properties through simple column renames *)
      let mapping =
        List.filter_map
          (fun (e, name) ->
            match e with Expr.Col src -> Some (src, name) | _ -> None)
          items
      in
      let f src = List.assoc_opt src mapping in
      let c = child () in
      {
        Props.part = Partition.rename f c.Props.part;
        sort = Sortorder.rename f c.Props.sort;
      }
  | P_stream_agg { keys = _; aggs = _; scope = _ } ->
      (* grouping consumes rows in sort order: both the partitioning (over
         key columns) and the sort order survive, restricted to output
         columns *)
      Props.restrict out_cols (child ())
  | P_hash_agg _ ->
      let c = child () in
      Props.restrict out_cols { c with Props.sort = Sortorder.empty }
  | P_merge_join _ -> (
      match children with
      | [ l; _ ] -> Props.restrict out_cols l
      | _ -> invalid_arg "Physop.deliver: join expects two children")
  | P_hash_join _ -> (
      match children with
      | [ l; _ ] ->
          Props.restrict out_cols { l with Props.sort = Sortorder.empty }
      | _ -> invalid_arg "Physop.deliver: join expects two children")
  | P_union_all -> (
      (* co-partitioned inputs stay partitioned (per-machine concatenation
         moves no rows); order is lost by interleaving *)
      match children with
      | [ l; r ]
        when (match (l.Props.part, r.Props.part) with
             | Partition.Hashed a, Partition.Hashed b -> Colset.equal a b
             | _ -> false) ->
          Props.make l.Props.part Sortorder.empty
      | _ -> Props.make Partition.Roundrobin Sortorder.empty)
  | P_sequence -> Props.make Partition.Serial Sortorder.empty
  | P_exchange { cols } -> Props.make (Partition.Hashed cols) Sortorder.empty
  | P_merge_exchange { cols } ->
      Props.make (Partition.Hashed cols) (child ()).Props.sort
  | P_sort { order } -> { (child ()) with Props.sort = order }
  | P_gather -> Props.make Partition.Serial (child ()).Props.sort

let is_enforcer = function
  | P_exchange _ | P_merge_exchange _ | P_sort _ | P_gather -> true
  | _ -> false

let short_name = function
  | P_extract _ -> "Extract"
  | P_filter _ -> "Filter"
  | P_project _ -> "Project"
  | P_stream_agg { scope = Local; _ } -> "StreamAgg(Local)"
  | P_stream_agg { scope = Global; _ } -> "StreamAgg(Global)"
  | P_stream_agg { scope = Full; _ } -> "StreamAgg"
  | P_hash_agg { scope = Local; _ } -> "HashAgg(Local)"
  | P_hash_agg { scope = Global; _ } -> "HashAgg(Global)"
  | P_hash_agg { scope = Full; _ } -> "HashAgg"
  | P_merge_join { kind = Slogical.Logop.Inner; _ } -> "MergeJoin"
  | P_merge_join _ -> "LeftMergeJoin"
  | P_hash_join { kind = Slogical.Logop.Inner; _ } -> "HashJoin"
  | P_hash_join _ -> "LeftHashJoin"
  | P_union_all -> "UnionAll"
  | P_spool -> "Spool"
  | P_output _ -> "Output"
  | P_sequence -> "Sequence"
  | P_exchange _ -> "Repartition"
  | P_merge_exchange _ -> "SortMergeExchange"
  | P_sort _ -> "Sort"
  | P_gather -> "Gather"

let pp ppf op =
  match op with
  | P_extract { file; _ } -> Fmt.pf ppf "Extract(%s)" file
  | P_filter { pred } -> Fmt.pf ppf "Filter(%a)" Expr.pp pred
  | P_project { items } ->
      Fmt.pf ppf "Project(%s)"
        (String.concat ", "
           (List.map
              (fun (e, n) ->
                match e with
                | Expr.Col c when c = n -> c
                | _ -> Fmt.str "%a AS %s" Expr.pp e n)
              items))
  | P_stream_agg { keys; _ } | P_hash_agg { keys; _ } ->
      Fmt.pf ppf "%s(%s)" (short_name op) (String.concat ", " keys)
  | P_merge_join { pairs; _ } | P_hash_join { pairs; _ } ->
      Fmt.pf ppf "%s(%s)" (short_name op)
        (String.concat " AND "
           (List.map (fun (a, b) -> Fmt.str "%s=%s" a b) pairs))
  | P_union_all | P_spool | P_sequence | P_gather ->
      Fmt.string ppf (short_name op)
  | P_output { file } -> Fmt.pf ppf "Output(%s)" file
  | P_exchange { cols } -> Fmt.pf ppf "Repartition%a" Colset.pp cols
  | P_merge_exchange { cols } ->
      Fmt.pf ppf "SortMergeExchange%a" Colset.pp cols
  | P_sort { order } -> Fmt.pf ppf "Sort%a" Sortorder.pp order

let to_string op = Fmt.str "%a" pp op
