lib/physical/partition.ml: Colset Fmt List Option Relalg
