lib/physical/reqprops.ml: Colset Fmt Partition Props Relalg Sortorder
