lib/physical/plan.mli: Physop Props Relalg Slogical
