lib/physical/sortorder.ml: Fmt List Relalg String
