lib/physical/reqprops.mli: Fmt Partition Props Relalg Sortorder
