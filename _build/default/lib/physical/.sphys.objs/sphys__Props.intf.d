lib/physical/props.mli: Fmt Partition Relalg Sortorder
