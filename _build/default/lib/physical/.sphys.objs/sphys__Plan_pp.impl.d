lib/physical/plan_pp.ml: Buffer Fmt Hashtbl List Physop Plan Printf Props Slogical String
