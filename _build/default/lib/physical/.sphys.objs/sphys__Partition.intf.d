lib/physical/partition.mli: Fmt Relalg
