lib/physical/plan.ml: List Physop Props Relalg Schema Slogical
