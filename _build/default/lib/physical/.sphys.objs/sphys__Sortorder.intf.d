lib/physical/sortorder.mli: Fmt Relalg
