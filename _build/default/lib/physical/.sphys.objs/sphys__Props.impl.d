lib/physical/props.ml: Colset Fmt Partition Relalg Sortorder
