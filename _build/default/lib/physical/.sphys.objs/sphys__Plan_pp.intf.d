lib/physical/plan_pp.mli: Fmt Plan
