lib/physical/physop.mli: Fmt Props Relalg Slogical Sortorder
