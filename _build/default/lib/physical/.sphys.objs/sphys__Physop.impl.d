lib/physical/physop.ml: Agg Colset Expr Fmt List Partition Props Relalg Schema Slogical Sortorder String
