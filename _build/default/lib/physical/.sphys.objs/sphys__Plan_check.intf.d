lib/physical/plan_check.mli: Fmt Plan
