lib/physical/plan_check.ml: Agg Colset Expr Fmt List Option Partition Physop Plan Printf Props Relalg Schema Sortorder String Sutil
