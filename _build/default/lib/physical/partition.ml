open Relalg

(* Delivered partitioning of a data stream across the cluster.

   The hash function used by exchanges combines per-column value hashes
   commutatively, so a [Hashed s] stream's placement depends only on the
   column *set* [s]: two inputs hashed on sets linked one-to-one by join
   equality predicates are co-located. *)

type t =
  | Serial (* all rows on a single machine *)
  | Roundrobin (* spread across machines with no column correlation *)
  | Hashed of Colset.t (* hash-partitioned on the column set *)

let equal a b =
  match (a, b) with
  | Serial, Serial | Roundrobin, Roundrobin -> true
  | Hashed x, Hashed y -> Colset.equal x y
  | _ -> false

(* Rename columns through a partial mapping.  When any partition column is
   no longer expressible in the new schema the partitioning degrades to
   [Roundrobin]: the data layout is unchanged but can no longer be relied
   upon. *)
let rename f t =
  match t with
  | Serial | Roundrobin -> t
  | Hashed s -> (
      let mapped = List.map f (Colset.to_list s) in
      if List.for_all Option.is_some mapped then
        Hashed (Colset.of_list (List.map Option.get mapped))
      else Roundrobin)

let pp ppf = function
  | Serial -> Fmt.string ppf "serial"
  | Roundrobin -> Fmt.string ppf "roundrobin"
  | Hashed s -> Fmt.pf ppf "hash%a" Colset.pp s

let to_string t = Fmt.str "%a" pp t
