(** Delivered physical properties of a plan: partitioning across machines
    plus the sort order within each partition. *)

type t = { part : Partition.t; sort : Sortorder.t }

val make : Partition.t -> Sortorder.t -> t

(** Round-robin, unsorted: the properties of a raw extraction. *)
val any : t

val equal : t -> t -> bool

(** Rename both components through a partial column mapping. *)
val rename : (string -> string option) -> t -> t

(** Drop anything not expressible over the given output columns. *)
val restrict : Relalg.Colset.t -> t -> t

val pp : t Fmt.t
val to_string : t -> string
