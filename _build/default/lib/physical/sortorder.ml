(* Sort order of rows within each partition: an ordered list of columns
   with directions. *)

type dir = Asc | Desc

type t = (string * dir) list

let empty : t = []
let is_empty (t : t) = t = []

let columns (t : t) = Relalg.Colset.of_list (List.map fst t)

let equal (a : t) (b : t) = a = b

(* [prefix a b]: [a] is a prefix of [b]; a stream sorted on [b] satisfies a
   requirement for sort order [a]. *)
let rec prefix (a : t) (b : t) =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && prefix a' b'

(* Ascending order on the given columns. *)
let asc cols : t = List.map (fun c -> (c, Asc)) cols

(* Longest prefix whose columns all pass the predicate (used to derive the
   surviving sort order through projections and aggregations). *)
let rec retained_prefix keep (t : t) =
  match t with
  | (c, d) :: rest when keep c -> (c, d) :: retained_prefix keep rest
  | _ -> []

(* Rename columns through a partial mapping; the order is cut at the first
   column that is no longer expressible. *)
let rec rename f (t : t) =
  match t with
  | [] -> []
  | (c, d) :: rest -> (
      match f c with Some c' -> (c', d) :: rename f rest | None -> [])

let pp ppf (t : t) =
  Fmt.pf ppf "(%s)"
    (String.concat ", "
       (List.map (fun (c, d) -> c ^ (match d with Asc -> "" | Desc -> " desc")) t))

let to_string t = Fmt.str "%a" pp t
