(** Sort order of rows within each partition. *)

type dir = Asc | Desc

type t = (string * dir) list

val empty : t
val is_empty : t -> bool

(** Column set mentioned by the order. *)
val columns : t -> Relalg.Colset.t

val equal : t -> t -> bool

(** [prefix a b]: a stream sorted on [b] satisfies a requirement for [a]. *)
val prefix : t -> t -> bool

(** Ascending order on the given columns. *)
val asc : string list -> t

(** Longest prefix whose columns all satisfy the predicate. *)
val retained_prefix : (string -> bool) -> t -> t

(** Rename through a partial mapping, cutting at the first inexpressible
    column. *)
val rename : (string -> string option) -> t -> t

val pp : t Fmt.t
val to_string : t -> string
