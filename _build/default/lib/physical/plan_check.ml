open Relalg

(* Independent plan validity checker.

   Re-derives delivered properties bottom-up and verifies that every
   operator's input requirements hold: stream aggregation really receives
   input sorted on its keys and partitioned on a key subset, joins really
   receive co-partitioned (and, for merge joins, compatibly sorted) inputs,
   and so on.  Tests run every plan the optimizer emits through this
   checker, so a property-propagation bug cannot silently produce wrong
   plans that merely look cheap. *)

type violation = { where : string; what : string }

let v where what = { where; what }

let part_within (p : Partition.t) (cols : Colset.t) =
  match p with
  | Partition.Serial -> true
  | Partition.Hashed s -> (not (Colset.is_empty s)) && Colset.subset s cols
  | Partition.Roundrobin -> false

(* The sort order's first [n] columns cover exactly the key set (any
   permutation of the keys is an acceptable grouping order). *)
let sorted_on_keys (sort : Sortorder.t) keys =
  let keyset = Colset.of_list keys in
  let prefix = Sutil.Combi.take (List.length keys) (List.map fst sort) in
  List.length prefix = List.length keys
  && Colset.equal (Colset.of_list prefix) keyset

(* Aligned co-partitioning for a join: some subset of the equality pairs
   maps the left partitioning set one-to-one onto the right one. *)
let co_partitioned pairs (l : Partition.t) (r : Partition.t) =
  match (l, r) with
  | Partition.Serial, Partition.Serial -> true
  | Partition.Hashed ls, Partition.Hashed rs ->
      (not (Colset.is_empty ls))
      && (let mapped =
            List.filter_map
              (fun (a, b) -> if Colset.mem a ls then Some b else None)
              pairs
          in
          (* every left partition column is a pair column, and the pairs
             involving them produce exactly the right set *)
          List.for_all
            (fun c -> List.exists (fun (a, _) -> a = c) pairs)
            (Colset.to_list ls)
          && Colset.equal (Colset.of_list mapped) rs
          && Colset.cardinal ls = List.length mapped)
  | _ -> false

(* Aligned sorting for a merge join: the two sort prefixes follow the same
   pair order. *)
let merge_sorted pairs (ls : Sortorder.t) (rs : Sortorder.t) =
  let k = List.length pairs in
  let lp = Sutil.Combi.take k ls and rp = Sutil.Combi.take k rs in
  List.length lp = k
  && List.length rp = k
  && List.for_all2
       (fun (lc, ld) (rc, rd) -> ld = rd && List.mem (lc, rc) pairs)
       lp rp

let check_op (n : Plan.t) : violation list =
  let where = Physop.to_string n.Plan.op in
  let child_schemas = List.map (fun c -> c.Plan.schema) n.Plan.children in
  let child_props = List.map (fun c -> c.Plan.props) n.Plan.children in
  let errs = ref [] in
  let err what = errs := v where what :: !errs in
  let require_cols schema cols what =
    List.iter
      (fun c ->
        if not (Schema.mem c schema) then
          err (Printf.sprintf "%s references missing column %s" what c))
      (Colset.to_list cols)
  in
  (match (n.Plan.op, child_schemas, child_props) with
  | Physop.P_extract _, [], [] -> ()
  | Physop.P_extract _, _, _ -> err "extract must be a leaf"
  | Physop.P_filter { pred }, [ s ], _ ->
      require_cols s (Expr.columns pred) "filter predicate"
  | Physop.P_project { items }, [ s ], _ ->
      List.iter
        (fun (e, _) -> require_cols s (Expr.columns e) "projection item")
        items
  | (Physop.P_stream_agg { keys; aggs; scope } | Physop.P_hash_agg { keys; aggs; scope }),
    [ s ], [ p ] ->
      require_cols s (Colset.of_list keys) "grouping key";
      List.iter
        (fun a -> require_cols s (Expr.columns a.Agg.arg) "aggregate argument")
        aggs;
      (match n.Plan.op with
      | Physop.P_stream_agg _ when not (sorted_on_keys p.Props.sort keys) ->
          err
            (Printf.sprintf "stream aggregation needs input sorted on keys; got %s"
               (Sortorder.to_string p.Props.sort))
      | _ -> ());
      (match scope with
      | Physop.Local -> ()
      | Physop.Global | Physop.Full ->
          if not (part_within p.Props.part (Colset.of_list keys)) then
            err
              (Printf.sprintf
                 "global aggregation needs input partitioned within keys; got %s"
                 (Partition.to_string p.Props.part)))
  | ( (Physop.P_merge_join { pairs; residual; _ } | Physop.P_hash_join { pairs; residual; _ }),
      [ ls; rs ],
      [ lp; rp ] ) ->
      List.iter
        (fun (a, b) ->
          if not (Schema.mem a ls) then err ("missing left join column " ^ a);
          if not (Schema.mem b rs) then err ("missing right join column " ^ b))
        pairs;
      Option.iter
        (fun e -> require_cols (ls @ rs) (Expr.columns e) "join residual")
        residual;
      if not (co_partitioned pairs lp.Props.part rp.Props.part) then
        err
          (Printf.sprintf "join inputs not co-partitioned: %s vs %s"
             (Partition.to_string lp.Props.part)
             (Partition.to_string rp.Props.part));
      (match n.Plan.op with
      | Physop.P_merge_join _
        when not (merge_sorted pairs lp.Props.sort rp.Props.sort) ->
          err "merge join inputs not sorted on aligned join keys"
      | _ -> ())
  | Physop.P_union_all, [ ls; rs ], _ ->
      if Schema.names ls <> Schema.names rs then err "union schema mismatch"
  | (Physop.P_spool | Physop.P_output _), [ _ ], _ -> ()
  | Physop.P_sequence, _, _ -> ()
  | Physop.P_exchange { cols }, [ s ], _ | Physop.P_merge_exchange { cols }, [ s ], _
    ->
      require_cols s cols "exchange key";
      if Colset.is_empty cols then err "exchange on empty column set"
  | Physop.P_sort { order }, [ s ], _ ->
      require_cols s (Sortorder.columns order) "sort key"
  | Physop.P_gather, [ _ ], _ -> ()
  | op, _, _ ->
      err
        (Printf.sprintf "%s has %d children" (Physop.short_name op)
           (List.length child_schemas)));
  (* delivered properties recorded on the node must match re-derivation *)
  let derived = Physop.deliver n.Plan.op n.Plan.schema child_props in
  if not (Props.equal derived n.Plan.props) then
    err
      (Printf.sprintf "delivered properties mismatch: recorded %s, derived %s"
         (Props.to_string n.Plan.props)
         (Props.to_string derived));
  !errs

let validate (t : Plan.t) : (unit, violation list) result =
  let errs = Plan.fold (fun acc n -> check_op n @ acc) [] t in
  match errs with [] -> Ok () | errs -> Error errs

let pp_violation ppf { where; what } = Fmt.pf ppf "%s: %s" where what

let violations_to_string errs =
  String.concat "\n" (List.map (fun e -> Fmt.str "%a" pp_violation e) errs)
