open Relalg

(* Delivered physical properties of a plan: how its output rows are
   partitioned across machines and how each partition is sorted. *)

type t = { part : Partition.t; sort : Sortorder.t }

let make part sort = { part; sort }
let any = { part = Partition.Roundrobin; sort = Sortorder.empty }

let equal a b = Partition.equal a.part b.part && Sortorder.equal a.sort b.sort

(* Rename both components through a partial column mapping. *)
let rename f t =
  { part = Partition.rename f t.part; sort = Sortorder.rename f t.sort }

(* Keep only properties expressible over [cols]. *)
let restrict cols t =
  let keep c = Colset.mem c cols in
  {
    part =
      (match t.part with
      | Partition.Hashed s when not (Colset.subset s cols) ->
          Partition.Roundrobin
      | p -> p);
    sort = Sortorder.retained_prefix keep t.sort;
  }

let pp ppf t =
  Fmt.pf ppf "[%a; sort %a]" Partition.pp t.part Sortorder.pp t.sort

let to_string t = Fmt.str "%a" pp t
