(** Required physical properties.

    SCOPE expresses a partitioning requirement as a range [∅, C]: any
    non-empty subset of [C] is acceptable, because a stream partitioned on
    [S ⊆ C] co-locates all rows that agree on [C] (Section I and
    Figure 1(b) of the paper). [Hash_exact] is the closed form used when
    the CSE framework enforces one concrete scheme at a shared group
    (Section VII). *)

type part_req =
  | Any
  | Serial_req
  | Hash_subset of Relalg.Colset.t
      (** the range [∅, C]; satisfied by any non-empty subset of [C] *)
  | Hash_exact of Relalg.Colset.t

type t = { part : part_req; sort : Sortorder.t }

(** No requirement at all. *)
val none : t

val make : part_req -> Sortorder.t -> t
val equal : t -> t -> bool

(** Partitioning half of [satisfied]. *)
val part_satisfied : Partition.t -> part_req -> bool

(** PropertySatisfied of Algorithm 2: the delivered properties meet the
    requirement. *)
val satisfied : Props.t -> t -> bool

(** Strictly decreasing measure for enforcer recursion: every enforcer
    optimizes the same group under a requirement of smaller weight. *)
val weight : t -> int

(** Canonical winner-table key. *)
val to_key : t -> string

val pp_part : part_req Fmt.t
val pp : t Fmt.t
val to_string : t -> string
