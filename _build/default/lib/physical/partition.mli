(** Delivered partitioning of a data stream across the simulated cluster.

    The hash function used by exchanges combines per-column value hashes
    commutatively, so a [Hashed s] stream's placement depends only on the
    column {e set} [s]; two streams hashed on column sets linked pairwise
    by join equality predicates are co-located. *)

type t =
  | Serial  (** all rows on a single machine *)
  | Roundrobin  (** spread across machines with no column correlation *)
  | Hashed of Relalg.Colset.t  (** hash-partitioned on the column set *)

val equal : t -> t -> bool

(** Rename partition columns through a partial mapping; if any column
    becomes inexpressible the partitioning degrades to [Roundrobin]. *)
val rename : (string -> string option) -> t -> t

val pp : t Fmt.t
val to_string : t -> string
