(** Physical operators and their delivered-property derivation. *)

(** Scope of an aggregation: per-machine pre-aggregation, combination of
    partials, or single-stage. *)
type agg_scope = Local | Global | Full

type t =
  | P_extract of {
      file : string;
      extractor : string;
      schema : Relalg.Schema.t;
    }  (** parallel scan of an input file, round-robin across machines *)
  | P_filter of { pred : Relalg.Expr.t }
  | P_project of { items : (Relalg.Expr.t * string) list }
  | P_stream_agg of {
      keys : string list;
      aggs : Relalg.Agg.t list;
      scope : agg_scope;
    }  (** requires input sorted on the keys; preserves order *)
  | P_hash_agg of {
      keys : string list;
      aggs : Relalg.Agg.t list;
      scope : agg_scope;
    }
  | P_merge_join of {
      kind : Slogical.Logop.join_kind;
      pairs : (string * string) list;
      residual : Relalg.Expr.t option;
    }  (** requires co-partitioned inputs sorted on aligned join keys *)
  | P_hash_join of {
      kind : Slogical.Logop.join_kind;
      pairs : (string * string) list;
      residual : Relalg.Expr.t option;
    }  (** requires co-partitioned inputs *)
  | P_union_all
  | P_spool  (** materialize a shared intermediate result once *)
  | P_output of { file : string }
  | P_sequence
  | P_exchange of { cols : Relalg.Colset.t }
      (** hash repartition; destroys the sort order *)
  | P_merge_exchange of { cols : Relalg.Colset.t }
      (** hash repartition merging sorted runs; preserves the input order *)
  | P_sort of { order : Sortorder.t }
  | P_gather  (** merge every partition onto one machine, preserving order *)

(** UpdateDlvdProp of Algorithm 2: derive the delivered properties of a
    plan rooted at the operator from its children's delivered
    properties. *)
val deliver : t -> Relalg.Schema.t -> Props.t list -> Props.t

val is_enforcer : t -> bool

(** Stable display name ("StreamAgg(Local)", "Repartition", ...). *)
val short_name : t -> string

val pp : t Fmt.t
val to_string : t -> string
