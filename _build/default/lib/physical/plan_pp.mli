(** Plan rendering in the spirit of Figure 8: one operator per line with
    its delivered properties and costs; a shared spool subplan is printed
    once and back-referenced afterwards. *)

val pp_node : Plan.t Fmt.t
val pp : Plan.t Fmt.t
val to_string : Plan.t -> string

(** Compact operator-chain rendering used by tests. *)
val signature : Plan.t -> string

(** Graphviz (dot) rendering; physically shared subplans appear once, so
    the executed DAG structure is visible. *)
val to_dot : ?name:string -> Plan.t -> string
