(* Plan rendering in the spirit of Figure 8: one operator per line with its
   delivered properties, costs, and shared (spool) subplans printed once
   and referenced afterwards. *)

let pp_node ppf (n : Plan.t) =
  Fmt.pf ppf "%a  %a  rows=%.3g cost=%.3g" Physop.pp n.Plan.op Props.pp
    n.Plan.props n.Plan.stats.Slogical.Stats.rows n.Plan.cost

let pp ppf (t : Plan.t) =
  (* spool subplans already printed: a later reference to the *same*
     materialization (same group and identical plan) is shown as a
     back-reference; a different materialization of the same group is
     printed in full and flagged. *)
  let printed : (int, Plan.t) Hashtbl.t = Hashtbl.create 8 in
  let rec go indent (n : Plan.t) =
    let pad = String.make indent ' ' in
    match n.Plan.op with
    | Physop.P_spool -> (
        match Hashtbl.find_opt printed n.Plan.group with
        | Some prev when prev == n ->
            Fmt.pf ppf "%s<Spool group %d> (shared, defined above)@." pad
              n.Plan.group
        | Some _ ->
            Fmt.pf ppf "%s%a  !! second materialization of group %d@." pad
              pp_node n n.Plan.group;
            List.iter (go (indent + 2)) n.Plan.children
        | None ->
            Hashtbl.replace printed n.Plan.group n;
            Fmt.pf ppf "%s%a@." pad pp_node n;
            List.iter (go (indent + 2)) n.Plan.children)
    | _ ->
        Fmt.pf ppf "%s%a@." pad pp_node n;
        List.iter (go (indent + 2)) n.Plan.children
  in
  go 0 t

let to_string t = Fmt.str "%a" pp t

(* Compact single-line chain rendering used in tests: operator names from
   root to leaves, depth-first. *)
let signature (t : Plan.t) =
  String.concat " <- " (List.rev_map Physop.short_name (Plan.operators t))

(* Graphviz rendering: physically shared subplans (spool references) become
   one node, making the executed DAG visible.  Edges point from consumers
   to producers. *)
let to_dot ?(name = "plan") (t : Plan.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  let ids : (int * Plan.t) list ref = ref [] in
  let fresh = ref 0 in
  let node_id (n : Plan.t) =
    match List.find_opt (fun (_, p) -> p == n) !ids with
    | Some (i, _) -> (i, true)
    | None ->
        incr fresh;
        ids := (!fresh, n) :: !ids;
        (!fresh, false)
  in
  let escape s = String.concat "\\\"" (String.split_on_char '"' s) in
  let rec go (n : Plan.t) =
    let id, seen = node_id n in
    if not seen then begin
      let shared_mark =
        match n.Plan.op with Physop.P_spool -> ", style=filled, fillcolor=lightyellow" | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s\\nrows=%.3g cost=%.3g\"%s];\n" id
           (escape (Physop.to_string n.Plan.op))
           (escape (Props.to_string n.Plan.props))
           n.Plan.stats.Slogical.Stats.rows n.Plan.op_cost shared_mark);
      List.iter
        (fun c ->
          go c;
          let cid, _ = node_id c in
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id cid))
        n.Plan.children
    end
  in
  go t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
