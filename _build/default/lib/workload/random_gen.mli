(** Random script generation for property-based tests: extractions,
    aggregations, filters and equi-joins over a shared column vocabulary,
    with a random subset of relations output. Reused relations exercise
    the explicit-sharing path; repeated extractions the fingerprint path. *)

val generate : ?seed:int -> ?statements:int -> unit -> string

(** Catalog with statistics for the random input files. *)
val catalog : unit -> Relalg.Catalog.t
