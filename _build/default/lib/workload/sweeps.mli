(** Parametric workload families for sweep experiments beyond the paper's
    fixed scripts. *)

(** The S1/S2 family generalized: one shared aggregation with [k]
    consumers grouping on rotating key subsets. [k = 2] is S1-shaped,
    [k = 3] S2-shaped. *)
val consumers_script : k:int -> string

(** A shared aggregation whose two consumers sit [depth] filters above the
    shared node, stressing enforcement propagation depth. *)
val chain_script : depth:int -> string
