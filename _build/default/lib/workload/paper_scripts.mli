(** The evaluation scripts of Figure 6, verbatim. *)

(** Single shared group with two consumers (the motivating script of
    Section I). *)
val s1 : string

(** Single shared group with three consumers. *)
val s2 : string

(** Two shared groups with different LCAs (the two joins). *)
val s3 : string

(** Two-consumer shared groups whose LCA is not the lowest common ancestor
    (Figure 3(c)); three shared groups under Algorithm 1. *)
val s4 : string

val all : (string * string) list

(** Alias of {!s4} (the Figure 3(c) shape). *)
val fig3c : string

(** Two independent shared groups under a single LCA (Figure 5 /
    Section VIII-A). *)
val independent_pair : string
