open Relalg

(* Generator for large scripts with the published structural statistics of
   the paper's real-world workloads:

     LS1: 101 operators in the initial DAG; 4 shared groups
          (3 with 2 consumers, 1 with 3 consumers)
     LS2: 1034 operators; 17 shared groups
          (15 with 2 consumers, 1 with 4, 1 with 5)

   A script is a set of *shared modules* (an extraction aggregated once and
   consumed by k further aggregations, one of them expressed as a textual
   duplicate so the fingerprint pass has real work to do) plus *filler
   pipelines* (single-consumer aggregation chains) sized to hit the exact
   operator count. *)

type spec = {
  name : string;
  (* consumer multiplicities of the shared groups, e.g. [2;2;2;3] *)
  shared_consumers : int list;
  (* operators in the initial DAG (before any CSE rewriting) *)
  target_ops : int;
  (* which shared modules (by index) are written as textual duplicates
     instead of named reuse *)
  duplicate_modules : int list;
  (* synthetic input sizes: the paper's scripts process unknown data, so
     the relative weight of shared modules vs single-consumer pipelines is
     a calibration knob (documented in EXPERIMENTS.md) *)
  shared_rows : int;
  filler_rows : int;
}

let ls1_spec =
  {
    name = "LS1";
    shared_consumers = [ 2; 2; 2; 3 ];
    target_ops = 101;
    duplicate_modules = [ 1 ];
    shared_rows = 50_000_000;
    filler_rows = 145_000_000;
  }

let ls2_spec =
  {
    name = "LS2";
    shared_consumers =
      [ 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 4; 5 ];
    target_ops = 1034;
    duplicate_modules = [ 3; 9 ];
    shared_rows = 50_000_000;
    filler_rows = 4_000_000;
  }

let consumer_keys =
  [| "A,B"; "B,C"; "A,C"; "A"; "B"; "C" |]

let buf_add = Buffer.add_string

(* One shared module: base aggregation over an extraction, consumed by [k]
   further aggregations.  Cost in initial-DAG operators:
   normal module: 1 extract + 1 GB + k (GB + Output) = 2 + 2k
   duplicated module: the base is written twice = 4 + 2k (the fingerprint
   pass merges the copies back into one shared group). *)
let emit_shared_module buf ~prefix ~file ~k ~duplicate =
  let base i = Printf.sprintf "%s_base%d" prefix i in
  if duplicate then begin
    buf_add buf
      (Printf.sprintf
         "%s0a = EXTRACT A,B,C,D FROM \"%s\" USING LogExtractor;\n" prefix file);
    buf_add buf
      (Printf.sprintf
         "%s0b = EXTRACT A,B,C,D FROM \"%s\" USING LogExtractor;\n" prefix file);
    buf_add buf
      (Printf.sprintf "%s = SELECT A,B,C,Sum(D) AS S FROM %s0a GROUP BY A,B,C;\n"
         (base 0) prefix);
    buf_add buf
      (Printf.sprintf "%s = SELECT A,B,C,Sum(D) AS S FROM %s0b GROUP BY A,B,C;\n"
         (base 1) prefix)
  end
  else begin
    buf_add buf
      (Printf.sprintf
         "%s0 = EXTRACT A,B,C,D FROM \"%s\" USING LogExtractor;\n" prefix file);
    buf_add buf
      (Printf.sprintf "%s = SELECT A,B,C,Sum(D) AS S FROM %s0 GROUP BY A,B,C;\n"
         (base 0) prefix)
  end;
  for j = 0 to k - 1 do
    let keys = consumer_keys.(j mod Array.length consumer_keys) in
    let src = if duplicate && j = 1 then base 1 else base 0 in
    buf_add buf
      (Printf.sprintf "%sC%d = SELECT %s,Sum(S) AS T%d FROM %s GROUP BY %s;\n"
         prefix j keys j src keys);
    buf_add buf
      (Printf.sprintf "OUTPUT %sC%d TO \"%s_out%d\";\n" prefix j prefix j)
  done

let module_ops ~k ~duplicate = (if duplicate then 4 else 2) + (2 * k)

(* One filler pipeline with [g] chained aggregations:
   1 extract + g GBs + 1 output = g + 2 operators. *)
let emit_filler buf ~prefix ~file ~g =
  buf_add buf
    (Printf.sprintf "%s0 = EXTRACT A,B,C,D FROM \"%s\" USING LogExtractor;\n"
       prefix file);
  buf_add buf
    (Printf.sprintf "%s1 = SELECT A,B,Sum(D) AS S FROM %s0 GROUP BY A,B;\n"
       prefix prefix);
  for i = 2 to g do
    buf_add buf
      (Printf.sprintf "%s%d = SELECT A,B,Sum(S) AS S FROM %s%d GROUP BY A,B;\n"
         prefix i prefix (i - 1))
  done;
  buf_add buf (Printf.sprintf "OUTPUT %s%d TO \"%s_out\";\n" prefix g prefix)

(* Split [n] operators into filler pipelines of 3..9 operators each
   (i.e. chain lengths 1..7). *)
let filler_sizes n =
  let rec go n acc =
    if n = 0 then List.rev acc
    else if n <= 9 && n >= 3 then List.rev ((n - 2) :: acc)
    else if n > 9 then
      (* leave at least 3 for the final pipeline *)
      let take = if n - 7 >= 3 then 7 else n - 3 in
      go (n - take) ((take - 2) :: acc)
    else
      (* n = 1 or 2: fold into the previous pipeline *)
      match acc with
      | g :: rest -> List.rev ((g + n) :: rest)
      | [] -> invalid_arg "filler_sizes: target too small"
  in
  if n = 0 then [] else go n []

(* Register realistic statistics for every file a generated script reads:
   aggregation reduces, and single columns keep the cluster busy. *)
let register_files ?(shared_rows = 50_000_000) ?(filler_rows = 50_000_000)
    (catalog : Catalog.t) (script : string) =
  (* scan for string literals; every extension-free literal is a generated
     input file *)
  let n = String.length script in
  let is_filler file =
    (* filler pipelines read "<name>_fillN" files *)
    let rec contains i =
      i + 5 <= String.length file
      && (String.sub file i 5 = "_fill" || contains (i + 1))
    in
    contains 0
  in
  let register file =
    if String.length file > 0 && not (String.contains file '.') then
      let rows = if is_filler file then filler_rows else shared_rows in
      Catalog.register catalog
        (Catalog.mk_file ~path:file ~rows ~row_bytes:100
           [
             ("A", Schema.Tint, 60);
             ("B", Schema.Tint, 1000);
             ("C", Schema.Tint, 60);
             ("D", Schema.Tint, 1_000_000);
           ])
  in
  let rec scan i =
    if i < n then
      if script.[i] = '"' then begin
        match String.index_from_opt script (i + 1) '"' with
        | None -> ()
        | Some j ->
            register (String.sub script (i + 1) (j - i - 1));
            scan (j + 1)
      end
      else scan (i + 1)
  in
  scan 0

let generate (spec : spec) : string =
  let buf = Buffer.create 4096 in
  let low = String.lowercase_ascii spec.name in
  let used = ref 1 (* the Sequence root *) in
  List.iteri
    (fun i k ->
      let duplicate = List.mem i spec.duplicate_modules in
      emit_shared_module buf
        ~prefix:(Printf.sprintf "M%d" i)
        ~file:(Printf.sprintf "%s_log%d" low i)
        ~k ~duplicate;
      used := !used + module_ops ~k ~duplicate)
    spec.shared_consumers;
  let remaining = spec.target_ops - !used in
  if remaining < 0 then
    invalid_arg
      (Printf.sprintf "Large_gen: target %d too small (modules need %d)"
         spec.target_ops !used);
  List.iteri
    (fun i g ->
      emit_filler buf
        ~prefix:(Printf.sprintf "F%d" i)
        ~file:(Printf.sprintf "%s_fill%d" low i)
        ~g)
    (filler_sizes remaining);
  Buffer.contents buf

let ls1 () = generate ls1_spec
let ls2 () = generate ls2_spec
