(** Generator for large scripts with the published structural statistics of
    the paper's real-world workloads (Figure 6):

    - LS1: 101 operators in the initial DAG; 4 shared groups
      (3 with 2 consumers, 1 with 3);
    - LS2: 1034 operators; 17 shared groups (15×2, 1×4, 1×5).

    A script is a set of shared modules (an extraction aggregated once and
    consumed k ways, optionally written as a textual duplicate so the
    fingerprint pass has real work) plus single-consumer filler pipelines
    sized to hit the exact operator count. *)

type spec = {
  name : string;
  shared_consumers : int list;  (** consumer multiplicity per shared group *)
  target_ops : int;  (** operators in the initial DAG *)
  duplicate_modules : int list;
      (** module indexes written as textual duplicates *)
  shared_rows : int;  (** input rows of shared modules (calibration) *)
  filler_rows : int;  (** input rows of filler pipelines (calibration) *)
}

val ls1_spec : spec
val ls2_spec : spec

(** Split [n] operators into filler pipelines; each pipeline of size
    [g + 2] contributes exactly its size, summing to [n]. *)
val filler_sizes : int -> int list

(** Register catalog statistics for every input file a generated script
    reads. *)
val register_files :
  ?shared_rows:int -> ?filler_rows:int -> Relalg.Catalog.t -> string -> unit

(** Generate the script text of a spec (deterministic). *)
val generate : spec -> string

val ls1 : unit -> string
val ls2 : unit -> string
