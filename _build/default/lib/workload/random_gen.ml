open Relalg

(* Random script generation for property-based tests.

   Scripts are built over a pool of relations that all carry the columns
   A,B,C(,aggregates), so every generated statement is well-formed:
   - EXTRACT from a random file,
   - aggregation over a random relation on a random key subset,
   - projection / filter,
   - equi-join of two relations sharing a column,
   - a random subset of relations is OUTPUT (ensuring every leaf relation
     is consumed by at least one path). *)

type rel = { rname : string; cols : string list }

let key_choices = [ [ "A"; "B"; "C" ]; [ "A"; "B" ]; [ "B"; "C" ]; [ "A" ]; [ "B" ] ]

let generate ?(seed = 1) ?(statements = 8) () : string =
  let rng = Sutil.Rng.create seed in
  let buf = Buffer.create 512 in
  let rels = ref [] in
  let fresh =
    let n = ref 0 in
    fun () ->
      incr n;
      Printf.sprintf "Q%d" !n
  in
  let add_extract () =
    let name = fresh () in
    let file = Printf.sprintf "rand_log%d" (Sutil.Rng.int rng 3) in
    Buffer.add_string buf
      (Printf.sprintf "%s = EXTRACT A,B,C,D FROM \"%s\" USING LogExtractor;\n"
         name file);
    rels := { rname = name; cols = [ "A"; "B"; "C"; "D" ] } :: !rels;
    name
  in
  let value_col r =
    (* a numeric column usable in aggregates *)
    List.find (fun c -> not (List.mem c [ "A"; "B"; "C" ])) r.cols
  in
  let add_agg () =
    match !rels with
    | [] -> ignore (add_extract ())
    | _ ->
        let src = Sutil.Rng.pick_list rng !rels in
        let keys =
          List.filter (fun k -> List.mem k src.cols)
            (Sutil.Rng.pick_list rng key_choices)
        in
        if keys = [] then ()
        else begin
          let name = fresh () in
          let v = value_col src in
          Buffer.add_string buf
            (Printf.sprintf "%s = SELECT %s,Sum(%s) AS V FROM %s GROUP BY %s;\n"
               name (String.concat "," keys) v src.rname (String.concat "," keys));
          rels := { rname = name; cols = keys @ [ "V" ] } :: !rels
        end
  in
  let add_filter () =
    match !rels with
    | [] -> ignore (add_extract ())
    | _ ->
        let src = Sutil.Rng.pick_list rng !rels in
        let col = Sutil.Rng.pick_list rng src.cols in
        let name = fresh () in
        Buffer.add_string buf
          (Printf.sprintf "%s = SELECT %s FROM %s WHERE %s > %d;\n" name
             (String.concat "," src.cols) src.rname col (Sutil.Rng.int rng 5));
        rels := { rname = name; cols = src.cols } :: !rels
  in
  let add_join () =
    (* only join aggregated relations: joining two raw extractions on a
       low-cardinality key explodes the cardinality estimate *)
    let candidates =
      List.filter
        (fun r -> List.length r.cols <= 4 && List.mem "V" r.cols)
        !rels
    in
    match candidates with
    | _ :: _ ->
        let a = Sutil.Rng.pick_list rng candidates in
        let bs =
          List.filter
            (fun b ->
              b.rname <> a.rname
              && List.exists (fun c -> List.mem c b.cols) [ "A"; "B"; "C" ]
              && List.exists (fun c -> List.mem c a.cols) b.cols)
            candidates
        in
        (match bs with
        | [] -> ()
        | _ ->
            let b = Sutil.Rng.pick_list rng bs in
            let shared_cols =
              List.filter
                (fun c -> List.mem c a.cols && List.mem c [ "A"; "B"; "C" ])
                b.cols
            in
            (match shared_cols with
            | [] -> ()
            | jc :: _ ->
                let name = fresh () in
                let a_items =
                  List.map (fun c -> Printf.sprintf "L.%s AS L_%s" c c) a.cols
                in
                let b_items =
                  List.map (fun c -> Printf.sprintf "R.%s AS R_%s" c c) b.cols
                in
                Buffer.add_string buf
                  (Printf.sprintf
                     "%s = SELECT %s FROM %s AS L, %s AS R WHERE L.%s = R.%s;\n"
                     name
                     (String.concat "," (a_items @ b_items))
                     a.rname b.rname jc jc);
                rels :=
                  {
                    rname = name;
                    cols =
                      List.map (fun c -> "L_" ^ c) a.cols
                      @ List.map (fun c -> "R_" ^ c) b.cols;
                  }
                  :: !rels))
    | [] -> ()
  in
  ignore (add_extract ());
  for _ = 2 to statements do
    match Sutil.Rng.int rng 10 with
    | 0 | 1 -> ignore (add_extract ())
    | 2 | 3 | 4 | 5 -> add_agg ()
    | 6 | 7 -> add_filter ()
    | _ -> add_join ()
  done;
  (* output a random non-empty subset of relations; always include the most
     recent so no generated statement chain is fully dead *)
  let all = !rels in
  let outputs =
    List.filteri (fun i _ -> i = 0 || Sutil.Rng.int rng 3 = 0) all
  in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT %s TO \"rand_out%d\";\n" r.rname i))
    outputs;
  Buffer.contents buf

(* Catalog with statistics for the random input files. *)
let catalog () =
  let catalog = Catalog.create () in
  for i = 0 to 2 do
    Catalog.register catalog
      (Catalog.mk_file
         ~path:(Printf.sprintf "rand_log%d" i)
         ~rows:(10_000_000 * (i + 1))
         ~row_bytes:100
         [
           ("A", Schema.Tint, 60);
           ("B", Schema.Tint, 500);
           ("C", Schema.Tint, 60);
           ("D", Schema.Tint, 1_000_000);
         ])
  done;
  catalog
