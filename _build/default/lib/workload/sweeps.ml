(* Parametric workload families for sweep experiments beyond the paper's
   fixed scripts:

   - [consumers_script k]: the S1/S2 family generalized to [k] consumers of
     one shared aggregation (the paper observes S2's three consumers save
     more than S1's two; the sweep shows the whole curve);
   - [chain_script d]: a shared aggregation whose consumers sit [d]
     operators above the shared node, stressing enforcement propagation
     depth. *)

let consumer_keys = [| "A,B"; "B,C"; "A,C"; "A"; "B"; "C"; "A,B,C" |]

let consumers_script ~k =
  if k < 1 then invalid_arg "consumers_script: k must be positive";
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING LogExtractor;\n";
  Buffer.add_string buf
    "R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n";
  for i = 0 to k - 1 do
    let keys = consumer_keys.(i mod Array.length consumer_keys) in
    Buffer.add_string buf
      (Printf.sprintf "R%d = SELECT %s,Sum(S) AS T%d FROM R GROUP BY %s;\n"
         (i + 1) keys (i + 1) keys)
  done;
  for i = 1 to k do
    Buffer.add_string buf
      (Printf.sprintf "OUTPUT R%d TO \"result%d.out\";\n" i i)
  done;
  Buffer.contents buf

let chain_script ~depth =
  if depth < 1 then invalid_arg "chain_script: depth must be positive";
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING LogExtractor;\n";
  Buffer.add_string buf
    "R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n";
  (* two consumer chains of [depth] filters each, then aggregations with
     conflicting requirements *)
  List.iter
    (fun (side, keys) ->
      Buffer.add_string buf
        (Printf.sprintf "%s0 = SELECT A,B,C,S FROM R WHERE S > 0;\n" side);
      for i = 1 to depth - 1 do
        Buffer.add_string buf
          (Printf.sprintf "%s%d = SELECT A,B,C,S FROM %s%d WHERE S > %d;\n"
             side i side (i - 1) i)
      done;
      Buffer.add_string buf
        (Printf.sprintf "%sAgg = SELECT %s,Sum(S) AS T FROM %s%d GROUP BY %s;\n"
           side keys side (depth - 1) keys);
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT %sAgg TO \"%s.out\";\n" side side))
    [ ("L", "A,B"); ("Rt", "B,C") ];
  Buffer.contents buf
