(* The four evaluation scripts of Figure 6, verbatim (S1's second aggregate
   is aliased S2, as in the Section I version of the script). *)

let s1 =
  {|
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
|}

let s2 =
  {|
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) AS S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) AS S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) AS S3 FROM R GROUP BY A;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT R3 TO "result3.out";
|}

let s3 =
  {|
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
T0 = EXTRACT A,B,C,D FROM "...\test2.log" USING LogExtractor;
T  = SELECT A,B,C,Sum(D) AS S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) AS S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) AS S2 FROM T GROUP BY B,A;
TT = SELECT T1.B,A,C,S1,S2 FROM T1,T2 WHERE T1.B=T2.B;
OUTPUT RR TO "result1.out";
OUTPUT TT TO "result2.out";
|}

let s4 =
  {|
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
|}

let all = [ ("S1", s1); ("S2", s2); ("S3", s3); ("S4", s4) ]

(* The Figure 3(c) shape: the shared group's consumers are joined *and*
   output directly, so the LCA is the root rather than the join (their
   lowest common ancestor). *)
let fig3c = s4

(* Figure 5 / Section VIII-A: two independent shared groups under a single
   LCA, used by the round-count experiments. *)
let independent_pair =
  {|
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
T0 = EXTRACT A,B,C,D FROM "...\test2.log" USING LogExtractor;
T  = SELECT A,B,C,Sum(D) AS S FROM T0 GROUP BY A,B,C;
T1 = SELECT A,B,Sum(S) AS S1 FROM T GROUP BY A,B;
T2 = SELECT B,C,Sum(S) AS S2 FROM T GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT T1 TO "result3.out";
OUTPUT T2 TO "result4.out";
|}
