lib/workload/paper_scripts.mli:
