lib/workload/random_gen.ml: Buffer Catalog List Printf Relalg Schema String Sutil
