lib/workload/sweeps.mli:
