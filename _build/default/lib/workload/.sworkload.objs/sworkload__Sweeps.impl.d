lib/workload/sweeps.ml: Array Buffer List Printf
