lib/workload/paper_scripts.ml:
