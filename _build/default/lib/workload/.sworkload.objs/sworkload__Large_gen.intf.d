lib/workload/large_gen.mli: Relalg
