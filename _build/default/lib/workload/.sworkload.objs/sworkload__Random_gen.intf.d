lib/workload/random_gen.mli: Relalg
