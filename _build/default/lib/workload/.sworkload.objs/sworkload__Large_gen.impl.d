lib/workload/large_gen.ml: Array Buffer Catalog List Printf Relalg Schema String
