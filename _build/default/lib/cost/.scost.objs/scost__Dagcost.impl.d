lib/cost/dagcost.ml: Cluster Costmodel Hashtbl List Option Physop Plan Sphys
