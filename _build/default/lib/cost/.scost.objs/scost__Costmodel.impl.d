lib/cost/costmodel.ml: Cluster Float Partition Physop Plan Props Slogical Sphys
