lib/cost/cluster.ml:
