lib/cost/dagcost.mli: Cluster Sphys
