lib/cost/costmodel.mli: Cluster Slogical Sphys
