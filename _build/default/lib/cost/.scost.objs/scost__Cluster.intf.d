lib/cost/cluster.mli:
