open Sphys

(* DAG-aware plan costing.

   During search, plans are costed tree-wise (every reference to a subplan
   pays for it).  The final cost of a plan that shares spooled
   subexpressions must count each spool *producer* once and charge each
   consumer a read of the materialized result; this module performs that
   deduplicated accounting.  For spool-free plans it coincides with the
   tree-wise cost. *)

(* Two consumers share one materialization exactly when they reference the
   *same* spool plan (winner memoization hands every consumer with the
   same pinned properties the identical plan value); a physically distinct
   plan for the same group is a second materialization and pays in full. *)
let cost (cluster : Cluster.t) (plan : Plan.t) : float =
  let produced : (int, Plan.t list) Hashtbl.t = Hashtbl.create 8 in
  let already_produced (n : Plan.t) =
    let prev = Option.value ~default:[] (Hashtbl.find_opt produced n.Plan.group) in
    if List.exists (fun p -> p == n) prev then true
    else begin
      Hashtbl.replace produced n.Plan.group (n :: prev);
      false
    end
  in
  let rec go (n : Plan.t) : float =
    match n.Plan.op with
    | Physop.P_spool ->
        let read = Costmodel.spool_read_cost cluster n in
        if already_produced n then read
        else
          let children =
            List.fold_left (fun acc c -> acc +. go c) 0.0 n.Plan.children
          in
          n.Plan.op_cost +. children +. read
    | _ ->
        List.fold_left (fun acc c -> acc +. go c) n.Plan.op_cost n.Plan.children
  in
  go plan

(* Number of distinct spool materializations and total spool references. *)
let spool_counts (plan : Plan.t) =
  let seen : (int, Plan.t list) Hashtbl.t = Hashtbl.create 8 in
  let refs = ref 0 in
  let rec go (n : Plan.t) =
    (match n.Plan.op with
    | Physop.P_spool ->
        incr refs;
        let prev = Option.value ~default:[] (Hashtbl.find_opt seen n.Plan.group) in
        if not (List.exists (fun p -> p == n) prev) then
          Hashtbl.replace seen n.Plan.group (n :: prev)
    | _ -> ());
    List.iter go n.Plan.children
  in
  go plan;
  let distinct =
    Hashtbl.fold (fun _ l acc -> acc + List.length l) seen 0
  in
  (distinct, !refs)
