(** DAG-aware plan costing.

    Search costs plans tree-wise; the final cost of a plan sharing spooled
    subexpressions counts each materialization once and charges every
    consumer a read. Consumers share a materialization exactly when they
    reference the {e same} plan value (winner memoization guarantees this
    for equal pinned properties); a physically different plan for the same
    group is a second materialization and pays in full. Coincides with the
    tree-wise cost on spool-free plans. *)

val cost : Cluster.t -> Sphys.Plan.t -> float

(** [(distinct materializations, total spool references)]. *)
val spool_counts : Sphys.Plan.t -> int * int
