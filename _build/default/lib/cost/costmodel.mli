(** Operator cost functions. *)

(** Effective parallelism of [machines] fed by [k] distinct partition-key
    values: [m·k/(k+m)] — smoothly models load imbalance (many keys ⇒ ~m,
    few keys ⇒ ~k). *)
val key_parallelism : ?skew_aware:bool -> machines:float -> float -> float

(** Effective parallelism of a plan's output stream, from its delivered
    partitioning and estimated NDVs. *)
val effective_parallelism : Cluster.t -> Sphys.Plan.t -> float

(** Cost of one operator over the given child plans, producing output with
    statistics [out]. *)
val op_cost :
  Cluster.t -> Sphys.Physop.t -> Sphys.Plan.t list -> out:Slogical.Stats.t -> float

(** Cost charged per use of a spooled result (the producer's write cost is
    in the spool's [op_cost]). *)
val spool_read_cost : Cluster.t -> Sphys.Plan.t -> float
