(* Cluster and cost-model parameters.

   Costs approximate wall-clock work: per-machine operator work divided by
   the effective parallelism of the operator's input, plus data-volume
   terms for IO and the network.  The single deliberately *shape-defining*
   choice is that the effective parallelism of a hash-partitioned stream is
   capped by the NDV of the partitioning columns: repartitioning on a
   narrow column set keeps fewer machines busy downstream, which makes the
   widest subset the local optimum at a shared group -- exactly the premise
   of the paper's running example (Section I). *)

type t = {
  machines : int;
  (* per-byte constants *)
  net_byte : float; (* shuffling a byte across the network *)
  read_byte : float; (* reading a byte from the distributed FS *)
  write_byte : float; (* writing a byte to the distributed FS *)
  spool_write_byte : float; (* materializing a spooled byte *)
  spool_read_byte : float; (* re-reading a spooled byte, per consumer *)
  (* per-row constants *)
  cpu_row : float; (* basic per-row processing (filter, project) *)
  agg_row : float; (* stream aggregation per input row *)
  hash_agg_row : float; (* hash aggregation per input row *)
  sort_row : float; (* per row and per log2(rows/partition) *)
  join_row : float; (* merge join per input row *)
  hash_join_row : float; (* hash join per input row *)
  merge_row : float; (* run merging in a sort-merge exchange / gather *)
  partition_overhead : float; (* fixed startup cost per partition touched *)
  (* when false, partitioning never limits parallelism: every hash scheme
     keeps all machines busy.  Ablation knob for the skew model -- without
     it, repartitioning on {B} and on {A,B,C} cost the same locally and the
     paper's local-vs-global tension disappears. *)
  skew_aware : bool;
}

let default =
  {
    machines = 25;
    net_byte = 1.0;
    read_byte = 0.75;
    write_byte = 1.0;
    (* materialized intermediates are already parsed and columnar: cheaper
       to rescan than re-running an extractor over the raw input *)
    spool_write_byte = 0.3;
    spool_read_byte = 0.15;
    cpu_row = 0.3;
    agg_row = 0.5;
    hash_agg_row = 3.5;
    sort_row = 0.1;
    join_row = 0.6;
    hash_join_row = 0.9;
    merge_row = 0.08;
    partition_overhead = 1000.0;
    skew_aware = true;
  }

let with_machines machines t = { t with machines }
