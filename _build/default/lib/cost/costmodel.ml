open Sphys

(* Operator cost functions.

   Each operator's cost is computed from its input plans (their estimated
   stats and delivered properties) and its own output stats.  Parallel
   per-row work is divided by the *effective parallelism* of the input
   stream; data-volume terms (exchange, IO, spooling) are charged on the
   full volume. *)

(* Effective parallelism of [m] machines fed by [k] distinct partition-key
   values: m*k/(k+m).  Smoothly captures load imbalance -- many more keys
   than machines gives ~m, k = m gives m/2, k << m gives ~k.  This is the
   skew term that makes repartitioning on a *wide* column set the local
   optimum at a shared group (Section I's premise). *)
let key_parallelism ?(skew_aware = true) ~machines k =
  if skew_aware then Float.max 1.0 (machines *. k /. (k +. machines))
  else machines

let effective_parallelism (cluster : Cluster.t) (p : Plan.t) =
  let m = float_of_int cluster.Cluster.machines in
  match p.Plan.props.Props.part with
  | Partition.Serial -> 1.0
  | Partition.Roundrobin -> m
  | Partition.Hashed s ->
      key_parallelism ~skew_aware:cluster.Cluster.skew_aware ~machines:m
        (Slogical.Stats.colset_ndv p.Plan.stats s)

let volume (s : Slogical.Stats.t) = s.Slogical.Stats.rows *. s.Slogical.Stats.row_bytes

let rows (s : Slogical.Stats.t) = s.Slogical.Stats.rows

(* Cost of [op] given child plans and the output stats of its group. *)
let op_cost (cluster : Cluster.t) (op : Physop.t) (children : Plan.t list)
    ~(out : Slogical.Stats.t) : float =
  let c = cluster in
  let m = float_of_int c.Cluster.machines in
  let child () =
    match children with
    | [ x ] -> x
    | _ -> invalid_arg "Costmodel.op_cost: expected one child"
  in
  let par x = effective_parallelism c x in
  match op with
  | Physop.P_extract _ ->
      (* read the file in parallel across all machines *)
      (volume out *. c.read_byte /. m) +. (c.partition_overhead *. m)
  | Physop.P_filter _ | Physop.P_project _ ->
      let x = child () in
      rows x.Plan.stats *. c.cpu_row /. par x
  | Physop.P_stream_agg _ ->
      let x = child () in
      rows x.Plan.stats *. c.agg_row /. par x
  | Physop.P_hash_agg _ ->
      let x = child () in
      rows x.Plan.stats *. c.hash_agg_row /. par x
  | Physop.P_merge_join _ -> (
      match children with
      | [ l; r ] ->
          let p = Float.min (par l) (par r) in
          (rows l.Plan.stats +. rows r.Plan.stats) *. c.join_row /. p
      | _ -> invalid_arg "join expects two children")
  | Physop.P_hash_join _ -> (
      match children with
      | [ l; r ] ->
          let p = Float.min (par l) (par r) in
          (rows l.Plan.stats +. rows r.Plan.stats) *. c.hash_join_row /. p
      | _ -> invalid_arg "join expects two children")
  | Physop.P_union_all -> 0.0
  | Physop.P_spool ->
      (* producer side: materialize once.  Consumer reads are charged by
         [Dagcost.spool_read_cost] per consumer. *)
      let x = child () in
      volume x.Plan.stats *. c.spool_write_byte /. par x
  | Physop.P_output _ ->
      let x = child () in
      volume x.Plan.stats *. c.write_byte /. par x
  | Physop.P_sequence -> 0.0
  | Physop.P_exchange { cols } | Physop.P_merge_exchange { cols } ->
      let x = child () in
      let out_par =
        key_parallelism ~skew_aware:c.Cluster.skew_aware ~machines:m
          (Slogical.Stats.colset_ndv out cols)
      in
      let merge =
        match op with
        | Physop.P_merge_exchange _ -> rows x.Plan.stats *. c.merge_row /. out_par
        | _ -> 0.0
      in
      (volume x.Plan.stats *. c.net_byte /. m)
      +. (c.partition_overhead *. out_par)
      +. merge
  | Physop.P_sort _ ->
      let x = child () in
      let p = par x in
      let n = Float.max 2.0 (rows x.Plan.stats /. p) in
      rows x.Plan.stats *. c.sort_row *. Float.log2 n /. p
  | Physop.P_gather ->
      let x = child () in
      (volume x.Plan.stats *. c.net_byte /. m)
      +. (rows x.Plan.stats *. c.merge_row)

(* Cost charged to each *additional* use of a spooled result. *)
let spool_read_cost (cluster : Cluster.t) (spool : Plan.t) =
  let p = effective_parallelism cluster spool in
  volume spool.Plan.stats *. cluster.Cluster.spool_read_byte /. p
