(** Cluster and cost-model parameters.

    Costs approximate wall-clock work: parallel per-row work divided by the
    effective parallelism of the operator's input, plus data-volume terms
    for IO and network. The shape-defining choice is the skew model: the
    effective parallelism of a hash-partitioned stream grows with the NDV
    of its partitioning columns, making the widest key subset the local
    optimum at a shared group — the paper's Section I premise. *)

type t = {
  machines : int;
  net_byte : float;  (** shuffling a byte across the network *)
  read_byte : float;  (** reading a byte from the distributed FS *)
  write_byte : float;  (** writing a byte to the distributed FS *)
  spool_write_byte : float;  (** materializing a spooled byte *)
  spool_read_byte : float;  (** re-reading a spooled byte, per consumer *)
  cpu_row : float;  (** basic per-row processing *)
  agg_row : float;  (** stream aggregation per input row *)
  hash_agg_row : float;  (** hash aggregation per input row *)
  sort_row : float;  (** per row and per log2(rows/partition) *)
  join_row : float;  (** merge join per input row *)
  hash_join_row : float;  (** hash join per input row *)
  merge_row : float;  (** run merging in sort-merge exchanges / gathers *)
  partition_overhead : float;  (** fixed startup cost per partition *)
  skew_aware : bool;
      (** when false, partitioning never limits parallelism (ablation knob
          for the skew model) *)
}

(** The configuration used throughout the experiments (25 machines). *)
val default : t

val with_machines : int -> t -> t
