open Relalg

(* The binder turns a parsed script into a logical operator DAG:
   - relation names are resolved to DAG nodes (a relation consumed twice
     becomes an explicitly shared node, cf. Figure 1(a));
   - multi-source SELECTs become left-deep join trees over alias-qualified
     rename projections, with WHERE/ON equality conjuncts turned into
     equi-join pairs and the rest into residual filters;
   - AVG is decomposed into SUM and COUNT combined by a final projection;
   - all OUTPUT statements are tied together under a Sequence root. *)

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* Normalize a script file path to its base name so that the same file
   referenced through different path spellings gets the same FileID. *)
let normalize_path p =
  let cut sep s =
    match String.rindex_opt s sep with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  cut '/' (cut '\\' p)

type env = {
  catalog : Catalog.t;
  builder : Dag.builder;
  mutable relations : (string * Dag.node) list;
}

let lookup_relation env name =
  match List.assoc_opt name env.relations with
  | Some node -> node
  | None -> errf "unknown relation %s" name

(* Binding context of one SELECT: which visible (qualifier, column) pairs
   map to which physical column names of the bound input node. *)
type scope = { bindings : (string option * string * string) list }

let resolve scope ~qual ~name =
  let matches =
    List.filter
      (fun (q, n, _) ->
        n = name && match qual with None -> true | Some _ -> q = qual)
      scope.bindings
  in
  match matches with
  | [ (_, _, phys) ] -> phys
  | [] ->
      errf "unknown column %s%s"
        (match qual with Some q -> q ^ "." | None -> "")
        name
  | _ ->
      (* several sources expose the column: ambiguous unless all aliases
         resolve to the same physical column *)
      let phys = List.map (fun (_, _, p) -> p) matches in
      (match List.sort_uniq String.compare phys with
      | [ p ] -> p
      | _ ->
          errf "ambiguous column reference %s%s"
            (match qual with Some q -> q ^ "." | None -> "")
            name)

(* Translate an AST scalar expression (no aggregates allowed) into a
   relational expression over physical column names. *)
let rec bind_scalar scope (e : Slang.Ast.expr) : Expr.t =
  match e with
  | Slang.Ast.Col_ref (qual, name) -> Expr.Col (resolve scope ~qual ~name)
  | Slang.Ast.Int_lit i -> Expr.Lit (Value.Int i)
  | Slang.Ast.Float_lit f -> Expr.Lit (Value.Float f)
  | Slang.Ast.Str_lit s -> Expr.Lit (Value.Str s)
  | Slang.Ast.Binop (op, a, b) ->
      Expr.Binop (op, bind_scalar scope a, bind_scalar scope b)
  | Slang.Ast.Cmp (op, a, b) ->
      Expr.Cmp (op, bind_scalar scope a, bind_scalar scope b)
  | Slang.Ast.And (a, b) -> Expr.And (bind_scalar scope a, bind_scalar scope b)
  | Slang.Ast.Or (a, b) -> Expr.Or (bind_scalar scope a, bind_scalar scope b)
  | Slang.Ast.Not a -> Expr.Not (bind_scalar scope a)
  | Slang.Ast.Star -> errf "'*' is only valid as the argument of Count"
  | Slang.Ast.Call (f, _) -> errf "aggregate %s not allowed here" f

let agg_func_of_name name =
  match String.lowercase_ascii name with
  | "sum" -> Some `Sum
  | "count" -> Some `Count
  | "min" -> Some `Min
  | "max" -> Some `Max
  | "avg" -> Some `Avg
  | _ -> None

let is_agg_call = function
  | Slang.Ast.Call (f, _) -> agg_func_of_name f <> None
  | _ -> false

(* Split an optional predicate into conjuncts. *)
let rec conjuncts (e : Expr.t) =
  match e with
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* --- SELECT binding --------------------------------------------------- *)

(* Bind the FROM clause: returns the input node, the scope and the residual
   (non-join) predicate.  When there are several sources each one is
   wrapped in an alias-qualifying rename projection so the combined schema
   has unique names; WHERE/ON equality conjuncts linking two sources become
   equi-join pairs. *)
let bind_from env (from : Slang.Ast.source list)
    (inner_joins : (Slang.Ast.source * Slang.Ast.expr) list)
    (left_joins : (Slang.Ast.source * Slang.Ast.expr) list)
    (where : Slang.Ast.expr option) =
  let joins = inner_joins in
  let sources = from @ List.map fst inner_joins @ List.map fst left_joins in
  match sources with
  | [] -> errf "SELECT requires at least one source"
  | [ { rel; src_alias } ] ->
      let node = lookup_relation env rel in
      let alias = Option.value src_alias ~default:rel in
      let scope =
        {
          bindings =
            List.concat_map
              (fun c ->
                let n = c.Schema.name in
                [ (Some alias, n, n); (None, n, n) ])
              node.Dag.schema;
        }
      in
      (node, scope, Option.map (bind_scalar scope) where)
  | _ ->
      (* Wrap each source in a rename projection "alias.col". *)
      let bound =
        List.map
          (fun { Slang.Ast.rel; src_alias } ->
            let node = lookup_relation env rel in
            let alias = Option.value src_alias ~default:rel in
            let items =
              List.map
                (fun c ->
                  (Expr.Col c.Schema.name, alias ^ "." ^ c.Schema.name))
                node.Dag.schema
            in
            let renamed =
              Dag.add env.builder
                (Logop.Project { items })
                [ node.Dag.id ] [ node.Dag.schema ]
            in
            (alias, renamed))
          sources
      in
      let scope =
        {
          bindings =
            List.concat_map
              (fun (alias, node) ->
                List.map
                  (fun c ->
                    let phys = c.Schema.name in
                    (* phys is "alias.col"; recover the bare name *)
                    let bare =
                      match String.index_opt phys '.' with
                      | Some i ->
                          String.sub phys (i + 1) (String.length phys - i - 1)
                      | None -> phys
                    in
                    (Some alias, bare, phys))
                  node.Dag.schema)
              bound
        }
      in
      let scope =
        (* also allow unqualified references (checked for ambiguity) *)
        {
          bindings =
            scope.bindings
            @ List.map (fun (_, bare, phys) -> (None, bare, phys)) scope.bindings;
        }
      in
      (* Collect all join conditions: explicit ON clauses plus WHERE. *)
      let on_preds = List.map (fun (_, on) -> bind_scalar scope on) joins in
      let where_pred = Option.map (bind_scalar scope) where in
      let all_conjuncts =
        List.concat_map conjuncts (on_preds @ Option.to_list where_pred)
      in
      (* Build the left-deep join tree in source order. *)
      let col_of_node (node : Dag.node) c = Schema.mem c node.Dag.schema in
      let remaining = ref all_conjuncts in
      let join_left (left : Dag.node) (alias_right, (right : Dag.node)) =
        ignore alias_right;
        let applicable, rest =
          List.partition
            (fun e ->
              match Expr.equi_pairs e with
              | Some [ (a, b) ] ->
                  (col_of_node left a && col_of_node right b)
                  || (col_of_node left b && col_of_node right a)
              | _ -> false)
            !remaining
        in
        remaining := rest;
        let pairs =
          List.map
            (fun e ->
              match Expr.equi_pairs e with
              | Some [ (a, b) ] ->
                  if col_of_node left a then (a, b) else (b, a)
              | _ -> assert false)
            applicable
        in
        if pairs = [] then
          errf "cross joins are not supported: no equality predicate links %s"
            (Schema.to_string right.Dag.schema);
        Dag.add env.builder
          (Logop.Join { kind = Logop.Inner; pairs; residual = None })
          [ left.Dag.id; right.Dag.id ]
          [ left.Dag.schema; right.Dag.schema ]
      in
      (* inner part: comma sources and JOIN ... ON, left-deep *)
      let n_inner = List.length from + List.length inner_joins in
      let bound_inner = Sutil.Combi.take n_inner bound in
      let bound_left = Sutil.Combi.drop n_inner bound in
      let first = snd (List.hd bound_inner) in
      let joined = List.fold_left join_left first (List.tl bound_inner) in
      (* LEFT JOINs, applied in script order after the inner part; the ON
         predicate is the full match condition (equality pairs feed
         co-partitioning, the rest becomes the join residual) *)
      let apply_left (left : Dag.node) ((_, (right : Dag.node)), (_, on)) =
        let pred = bind_scalar scope on in
        let combined c = Schema.mem c left.Dag.schema || Schema.mem c right.Dag.schema in
        List.iter
          (fun c ->
            if not (combined c) then
              errf
                "LEFT JOIN condition references %s, which is not available yet"
                c)
          (Colset.to_list (Expr.columns pred));
        let pairs, residual_conjs =
          List.partition_map
            (fun e ->
              match Expr.equi_pairs e with
              | Some [ (a, b) ]
                when Schema.mem a left.Dag.schema
                     && Schema.mem b right.Dag.schema ->
                  Either.Left (a, b)
              | Some [ (a, b) ]
                when Schema.mem b left.Dag.schema
                     && Schema.mem a right.Dag.schema ->
                  Either.Left (b, a)
              | _ -> Either.Right e)
            (conjuncts pred)
        in
        if pairs = [] then
          errf "LEFT JOIN requires at least one equality linking the two sides";
        let residual =
          match residual_conjs with
          | [] -> None
          | e :: rest ->
              Some (List.fold_left (fun a b -> Expr.And (a, b)) e rest)
        in
        Dag.add env.builder
          (Logop.Join { kind = Logop.Left_outer; pairs; residual })
          [ left.Dag.id; right.Dag.id ]
          [ left.Dag.schema; right.Dag.schema ]
      in
      let joined =
        List.fold_left apply_left joined (List.combine bound_left left_joins)
      in
      let residual =
        match !remaining with
        | [] -> None
        | e :: rest -> Some (List.fold_left (fun a b -> Expr.And (a, b)) e rest)
      in
      (joined, scope, residual)

(* One bound aggregate: the underlying Agg.t list (AVG yields two) plus the
   final expression reconstructing the requested value. *)
type bound_agg = { aggs : Agg.t list; final : Expr.t }

let bind_agg scope ~fresh (f : string) (args : Slang.Ast.expr list) : bound_agg =
  let func = agg_func_of_name f in
  let arg_expr () =
    match args with
    | [ Slang.Ast.Star ] -> Expr.Lit (Value.Int 1)
    | [ a ] -> bind_scalar scope a
    | _ -> errf "aggregate %s expects exactly one argument" f
  in
  match func with
  | Some `Sum ->
      let o = fresh () in
      { aggs = [ Agg.make Agg.Sum (arg_expr ()) o ]; final = Expr.Col o }
  | Some `Count ->
      let o = fresh () in
      { aggs = [ Agg.make Agg.Count (arg_expr ()) o ]; final = Expr.Col o }
  | Some `Min ->
      let o = fresh () in
      { aggs = [ Agg.make Agg.Min (arg_expr ()) o ]; final = Expr.Col o }
  | Some `Max ->
      let o = fresh () in
      { aggs = [ Agg.make Agg.Max (arg_expr ()) o ]; final = Expr.Col o }
  | Some `Avg ->
      let s = fresh () and c = fresh () in
      let arg = arg_expr () in
      {
        aggs = [ Agg.make Agg.Sum arg s; Agg.make Agg.Count arg c ];
        final = Expr.Binop (Expr.Div, Expr.Col s, Expr.Col c);
      }
  | None -> errf "unknown aggregate function %s" f

(* Rewrite a select-item expression, replacing aggregate calls with their
   bound output columns and resolving plain columns against [scope]. *)
let rec bind_item scope ~fresh ~acc (e : Slang.Ast.expr) : Expr.t =
  match e with
  | Slang.Ast.Call (f, args) when agg_func_of_name f <> None ->
      let ba = bind_agg scope ~fresh f args in
      acc := !acc @ ba.aggs;
      ba.final
  | Slang.Ast.Binop (op, a, b) ->
      Expr.Binop (op, bind_item scope ~fresh ~acc a, bind_item scope ~fresh ~acc b)
  | Slang.Ast.Cmp (op, a, b) ->
      Expr.Cmp (op, bind_item scope ~fresh ~acc a, bind_item scope ~fresh ~acc b)
  | Slang.Ast.And (a, b) ->
      Expr.And (bind_item scope ~fresh ~acc a, bind_item scope ~fresh ~acc b)
  | Slang.Ast.Or (a, b) ->
      Expr.Or (bind_item scope ~fresh ~acc a, bind_item scope ~fresh ~acc b)
  | Slang.Ast.Not a -> Expr.Not (bind_item scope ~fresh ~acc a)
  | e -> bind_scalar scope e

let default_alias i (item : Slang.Ast.select_item) =
  match item.alias with
  | Some a -> a
  | None -> (
      match item.item with
      | Slang.Ast.Col_ref (_, c) -> c
      | _ -> Printf.sprintf "_col%d" i)

let bind_select env (sel : Slang.Ast.query) : Dag.node =
  match sel with
  | Slang.Ast.Select { distinct; items; from; joins; where; group_by; having }
    ->
      let inner_joins =
        List.filter_map
          (fun (s, on, outer) -> if outer then None else Some (s, on))
          joins
      in
      let left_joins =
        List.filter_map
          (fun (s, on, outer) -> if outer then Some (s, on) else None)
          joins
      in
      let input, scope, residual =
        bind_from env from inner_joins left_joins where
      in
      (* DISTINCT dedupes the final result: a trailing aggregate-free
         group-by over every output column *)
      let dedupe (node : Dag.node) =
        if not distinct then node
        else
          Dag.add env.builder
            (Logop.Group_by { keys = Schema.names node.Dag.schema; aggs = [] })
            [ node.Dag.id ] [ node.Dag.schema ]
      in
      let input =
        match residual with
        | None -> input
        | Some pred ->
            Dag.add env.builder (Logop.Filter { pred }) [ input.Dag.id ]
              [ input.Dag.schema ]
      in
      (* Group-by keys: simple column references only (computed keys get a
         pre-projection with synthetic names). *)
      let pre_items = ref [] in
      let keys =
        List.mapi
          (fun i g ->
            match g with
            | Slang.Ast.Col_ref (qual, name) -> resolve scope ~qual ~name
            | e ->
                let name = Printf.sprintf "_gk%d" i in
                pre_items := (bind_scalar scope e, name) :: !pre_items;
                name)
          group_by
      in
      let input =
        match !pre_items with
        | [] -> input
        | extra ->
            let items =
              List.map (fun c -> (Expr.Col c.Schema.name, c.Schema.name))
                input.Dag.schema
              @ List.rev extra
            in
            Dag.add env.builder (Logop.Project { items }) [ input.Dag.id ]
              [ input.Dag.schema ]
      in
      let has_aggs = List.exists (fun it -> is_agg_call it.Slang.Ast.item) items in
      if (not has_aggs) && group_by = [] then begin
        (* pure projection/filter query *)
        let bound_items =
          List.mapi
            (fun i it -> (bind_scalar scope it.Slang.Ast.item, default_alias i it))
            items
        in
        dedupe
          (Dag.add env.builder
             (Logop.Project { items = bound_items })
             [ input.Dag.id ] [ input.Dag.schema ])
      end
      else begin
        (* aggregation query *)
        let counter = ref 0 in
        let fresh () =
          incr counter;
          Printf.sprintf "_a%d" !counter
        in
        let acc = ref [] in
        let finals =
          List.mapi
            (fun i it ->
              (bind_item scope ~fresh ~acc it.Slang.Ast.item, default_alias i it))
            items
        in
        let aggs = !acc in
        (* Use the select-item alias directly as the aggregate output name
           when the item is exactly one aggregate call: keeps plans and
           fingerprints readable and matches the paper's figures. *)
        let aggs, finals =
          let renames = Hashtbl.create 8 in
          let aggs =
            List.map
              (fun (a : Agg.t) ->
                match
                  List.find_opt
                    (fun (e, name) -> e = Expr.Col a.Agg.output && name <> "")
                    finals
                with
                | Some (_, name)
                  when not
                         (List.exists
                            (fun (a' : Agg.t) -> a'.Agg.output = name)
                            aggs)
                       && not (List.mem name keys) ->
                    Hashtbl.replace renames a.Agg.output name;
                    { a with Agg.output = name }
                | _ -> a)
              aggs
          in
          let finals =
            List.map
              (fun (e, name) ->
                ( Expr.rename
                    (fun c ->
                      match Hashtbl.find_opt renames c with
                      | Some n -> n
                      | None -> c)
                    e,
                  name ))
              finals
          in
          (aggs, finals)
        in
        let gb =
          Dag.add env.builder
            (Logop.Group_by { keys; aggs })
            [ input.Dag.id ] [ input.Dag.schema ]
        in
        let gb =
          match having with
          | None -> gb
          | Some h ->
              let hscope =
                {
                  bindings =
                    List.map
                      (fun c -> (None, c.Schema.name, c.Schema.name))
                      gb.Dag.schema;
                }
              in
              let acc_h = ref [] in
              let pred =
                bind_item hscope
                  ~fresh:(fun () -> errf "HAVING may only reference aliases")
                  ~acc:acc_h h
              in
              if !acc_h <> [] then
                errf "HAVING must reference aggregate aliases, not new aggregates";
              Dag.add env.builder (Logop.Filter { pred }) [ gb.Dag.id ]
                [ gb.Dag.schema ]
        in
        (* Final projection: needed when outputs are renamed, reordered or
           computed; skipped when it would be the identity. *)
        let identity =
          List.length finals = List.length gb.Dag.schema
          && List.for_all2
               (fun (e, name) c ->
                 e = Expr.Col c.Schema.name && name = c.Schema.name)
               finals gb.Dag.schema
        in
        if identity then dedupe gb
        else
          dedupe
            (Dag.add env.builder
               (Logop.Project { items = finals })
               [ gb.Dag.id ] [ gb.Dag.schema ])
      end
  | _ -> invalid_arg "bind_select"

let bind_query env (q : Slang.Ast.query) : Dag.node =
  match q with
  | Slang.Ast.Extract { cols; file; extractor } ->
      let file = normalize_path file in
      let declared = List.map (fun c -> Schema.column c Schema.Tint) cols in
      let stats = Catalog.ensure env.catalog ~path:file ~schema:declared in
      let full = Catalog.file_schema stats in
      (* Keep the declared column order; take types from the catalog. *)
      let schema =
        List.map
          (fun c ->
            match Schema.find c full with
            | Some col -> col
            | None -> errf "file %s has no column %s" file c)
          cols
      in
      Dag.add env.builder (Logop.Extract { file; extractor; schema }) [] []
  | Slang.Ast.Select _ -> bind_select env q
  | Slang.Ast.Union_all (a, b) ->
      let na = lookup_relation env a and nb = lookup_relation env b in
      if not (Schema.equal na.Dag.schema nb.Dag.schema) then
        errf "UNION ALL requires identical schemas (%s vs %s)"
          (Schema.to_string na.Dag.schema)
          (Schema.to_string nb.Dag.schema);
      Dag.add env.builder Logop.Union_all [ na.Dag.id; nb.Dag.id ]
        [ na.Dag.schema; nb.Dag.schema ]

let bind ~catalog (script : Slang.Ast.script) : Dag.t =
  let env = { catalog; builder = Dag.builder (); relations = [] } in
  let outputs = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Slang.Ast.Assign (name, q) ->
          let node = bind_query env q in
          env.relations <- (name, node) :: env.relations
      | Slang.Ast.Output { rel; file; order } ->
          let input = lookup_relation env rel in
          let order =
            List.map
              (fun { Slang.Ast.ocol; descending } ->
                match ocol with
                | Slang.Ast.Col_ref (None, c) when Schema.mem c input.Dag.schema
                  ->
                    (c, descending)
                | Slang.Ast.Col_ref (q, c) ->
                    errf "ORDER BY column %s%s is not in %s's schema"
                      (match q with Some q -> q ^ "." | None -> "")
                      c rel
                | _ -> errf "ORDER BY supports plain column references only")
              order
          in
          let out =
            Dag.add env.builder
              (Logop.Output { file = normalize_path file; order })
              [ input.Dag.id ] [ input.Dag.schema ]
          in
          outputs := out :: !outputs)
    script;
  match List.rev !outputs with
  | [] -> errf "script has no OUTPUT statement"
  | [ single ] -> Dag.finish env.builder ~root:single
  | many ->
      let root =
        Dag.add env.builder Logop.Sequence
          (List.map (fun n -> n.Dag.id) many)
          (List.map (fun n -> n.Dag.schema) many)
      in
      Dag.finish env.builder ~root
