open Relalg

type join_kind = Inner | Left_outer

(* Logical operators.  [Group_by_local]/[Group_by_global] are introduced by
   the two-stage aggregation exploration rule; the binder only ever emits
   [Group_by].  [Spool] is inserted by the CSE framework (Algorithm 1) on
   top of shared groups. *)

type t =
  | Extract of { file : string; extractor : string; schema : Schema.t }
  | Filter of { pred : Expr.t }
  | Project of { items : (Expr.t * string) list }
  | Group_by of { keys : string list; aggs : Agg.t list }
  | Group_by_local of { keys : string list; aggs : Agg.t list }
  | Group_by_global of { keys : string list; aggs : Agg.t list }
  | Join of {
      kind : join_kind;
      pairs : (string * string) list;
      residual : Expr.t option;
    }
  | Union_all
  | Spool
  | Output of { file : string; order : (string * bool) list }
      (* ORDER BY columns with a descending flag: a requirement for a
         globally ordered (hence serial) result *)
  | Sequence

(* Operator identifiers for fingerprints (Definition 1): every operator of
   the same kind shares an [op_id]; parameters are folded into the
   fingerprint separately via [param_hash]. *)
let op_id = function
  | Extract _ -> 1
  | Filter _ -> 2
  | Project _ -> 3
  | Group_by _ -> 4
  | Group_by_local _ -> 5
  | Group_by_global _ -> 6
  | Join _ -> 7
  | Union_all -> 8
  | Spool -> 9
  | Output _ -> 10
  | Sequence -> 11

let param_hash op = Hashtbl.hash op

(* Number of children each operator expects; [None] means variadic. *)
let arity = function
  | Extract _ -> Some 0
  | Filter _ | Project _ | Group_by _ | Group_by_local _ | Group_by_global _
  | Spool
  | Output _ ->
      Some 1
  | Join _ | Union_all -> Some 2
  | Sequence -> None

(* Derive the output schema from the operator and its children's schemas. *)
let derive_schema op (children : Schema.t list) : Schema.t =
  let child () =
    match children with
    | [ s ] -> s
    | _ -> invalid_arg "Logop.derive_schema: expected one child"
  in
  match op with
  | Extract { schema; _ } -> schema
  | Filter _ | Spool | Output _ -> child ()
  | Project { items } ->
      let s = child () in
      List.map (fun (e, name) -> Schema.column name (Expr.infer_type s e)) items
  | Group_by { keys; aggs }
  | Group_by_local { keys; aggs }
  | Group_by_global { keys; aggs } ->
      let s = child () in
      let key_cols =
        List.map
          (fun k ->
            match Schema.find k s with
            | Some c -> c
            | None -> Schema.column k Schema.Tint)
          keys
      in
      let agg_cols =
        List.map
          (fun a -> Schema.column a.Agg.output (Agg.output_type s a))
          aggs
      in
      key_cols @ agg_cols
  | Join _ -> (
      match children with
      | [ l; r ] -> l @ r
      | _ -> invalid_arg "Logop.derive_schema: join expects two children")
  | Union_all -> (
      match children with
      | [ l; _ ] -> l
      | _ -> invalid_arg "Logop.derive_schema: union expects two children")
  | Sequence -> []

let short_name = function
  | Extract _ -> "Extract"
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Group_by _ -> "GB"
  | Group_by_local _ -> "GBLocal"
  | Group_by_global _ -> "GBGlobal"
  | Join _ -> "Join"
  | Union_all -> "UnionAll"
  | Spool -> "Spool"
  | Output _ -> "Output"
  | Sequence -> "Sequence"

let pp ppf op =
  match op with
  | Extract { file; extractor; _ } ->
      Fmt.pf ppf "Extract(%s USING %s)" file extractor
  | Filter { pred } -> Fmt.pf ppf "Filter(%a)" Expr.pp pred
  | Project { items } ->
      Fmt.pf ppf "Project(%s)"
        (String.concat ", "
           (List.map (fun (e, n) -> Fmt.str "%a AS %s" Expr.pp e n) items))
  | Group_by { keys; aggs } ->
      Fmt.pf ppf "GB(%s; %s)" (String.concat "," keys)
        (String.concat ", " (List.map Agg.to_string aggs))
  | Group_by_local { keys; aggs } ->
      Fmt.pf ppf "GBLocal(%s; %s)" (String.concat "," keys)
        (String.concat ", " (List.map Agg.to_string aggs))
  | Group_by_global { keys; aggs } ->
      Fmt.pf ppf "GBGlobal(%s; %s)" (String.concat "," keys)
        (String.concat ", " (List.map Agg.to_string aggs))
  | Join { kind; pairs; residual } ->
      Fmt.pf ppf "%sJoin(%s%s)"
        (match kind with Inner -> "" | Left_outer -> "Left")
        (String.concat " AND "
           (List.map (fun (a, b) -> Fmt.str "%s=%s" a b) pairs))
        (match residual with
        | None -> ""
        | Some e -> Fmt.str "; %a" Expr.pp e)
  | Union_all -> Fmt.string ppf "UnionAll"
  | Spool -> Fmt.string ppf "Spool"
  | Output { file; order } ->
      Fmt.pf ppf "Output(%s%s)" file
        (match order with
        | [] -> ""
        | o ->
            " ORDER BY "
            ^ String.concat ", "
                (List.map (fun (c, d) -> c ^ if d then " DESC" else "") o))
  | Sequence -> Fmt.string ppf "Sequence"

let to_string op = Fmt.str "%a" pp op
