open Relalg

(* The logical operator DAG produced by the binder: nodes numbered densely
   from 0, children referenced by id.  Sharing is explicit -- a node
   referenced by several parents is an explicit common subexpression
   (Figure 1(a), node 2). *)

type node = { id : int; op : Logop.t; children : int list; schema : Schema.t }

type t = { nodes : node array; root : int }

type builder = { mutable rev_nodes : node list; mutable count : int }

let builder () = { rev_nodes = []; count = 0 }

let add b op children schemas =
  let schema = Logop.derive_schema op schemas in
  (match Logop.arity op with
  | Some n when n <> List.length children ->
      invalid_arg
        (Printf.sprintf "Dag.add: %s expects %d children, got %d"
           (Logop.short_name op) n (List.length children))
  | _ -> ());
  let node = { id = b.count; op; children; schema } in
  b.rev_nodes <- node :: b.rev_nodes;
  b.count <- b.count + 1;
  node

let finish b ~root =
  { nodes = Array.of_list (List.rev b.rev_nodes); root = root.id }

let node t id = t.nodes.(id)
let root t = t.nodes.(t.root)
let size t = Array.length t.nodes
let schema t id = (node t id).schema

(* Distinct parents of each node: index i holds the sorted list of node ids
   referencing i as a child. *)
let parents t =
  let ps = Array.make (size t) [] in
  Array.iter
    (fun n ->
      List.iter
        (fun c -> if not (List.mem n.id ps.(c)) then ps.(c) <- n.id :: ps.(c))
        n.children)
    t.nodes;
  Array.map (List.sort_uniq Int.compare) ps

(* Nodes reachable from the root (the binder can leave dead nodes behind
   when a relation is defined but never consumed). *)
let reachable t =
  let seen = Array.make (size t) false in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter visit (node t id).children
    end
  in
  visit t.root;
  seen

let fold_topological t f init =
  (* children before parents; node ids are not guaranteed topological once
     CSE rewrites happen, so do an explicit DFS. *)
  let seen = Array.make (size t) false in
  let acc = ref init in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter visit (node t id).children;
      acc := f !acc (node t id)
    end
  in
  visit t.root;
  !acc

let pp ppf t =
  let rec go indent id =
    let n = node t id in
    Fmt.pf ppf "%s[%d] %a %a@." (String.make indent ' ') n.id Logop.pp n.op
      Schema.pp n.schema;
    List.iter (go (indent + 2)) n.children
  in
  go 0 t.root

let to_string t = Fmt.str "%a" pp t
