(** The binder: turns a parsed script into a logical operator DAG with
    resolved column names, explicit sharing for relations consumed more
    than once, left-deep join trees and AVG decomposition. *)

exception Error of string

(** Normalize a script file path to its base name (FileID identity). *)
val normalize_path : string -> string

(** Bind a script against a catalog.
    Raises [Error] on name-resolution or shape problems. *)
val bind : catalog:Relalg.Catalog.t -> Slang.Ast.script -> Dag.t
