(** Logical operators.

    [Group_by_local]/[Group_by_global] are introduced by the two-stage
    aggregation exploration rule; the binder only emits [Group_by].
    [Spool] is inserted by the CSE framework (Algorithm 1) on top of
    shared groups. *)

type join_kind = Inner | Left_outer

type t =
  | Extract of {
      file : string;
      extractor : string;
      schema : Relalg.Schema.t;
    }
  | Filter of { pred : Relalg.Expr.t }
  | Project of { items : (Relalg.Expr.t * string) list }
  | Group_by of { keys : string list; aggs : Relalg.Agg.t list }
  | Group_by_local of { keys : string list; aggs : Relalg.Agg.t list }
  | Group_by_global of { keys : string list; aggs : Relalg.Agg.t list }
  | Join of {
      kind : join_kind;
      pairs : (string * string) list;  (** equi-join column pairs *)
      residual : Relalg.Expr.t option;
          (** extra conjuncts of the match condition *)
    }
  | Union_all
  | Spool
  | Output of { file : string; order : (string * bool) list }
      (** ORDER BY columns with a descending flag: a requirement for a
          globally ordered (hence serial) result *)
  | Sequence

(** Operator-kind identifier for fingerprints (Definition 1): all group-bys
    share one id, all joins another, and so on. *)
val op_id : t -> int

(** Hash of the full operator including parameters. *)
val param_hash : t -> int

(** Number of children the operator expects; [None] = variadic. *)
val arity : t -> int option

(** Output schema from the operator and its children's schemas.
    Raises [Invalid_argument] on arity mismatch. *)
val derive_schema : t -> Relalg.Schema.t list -> Relalg.Schema.t

val short_name : t -> string
val pp : t Fmt.t
val to_string : t -> string
