open Relalg

(* Cardinality and NDV estimation.

   Estimates are derived per operator from child estimates, so the same
   rules serve both the initial logical DAG and memo groups created later
   by exploration rules.  The model is deliberately simple and standard:
   independence across columns, containment for joins, fixed selectivity
   for opaque predicates -- the paper's evaluation compares *estimated*
   costs, so what matters is that both optimization modes share one
   estimation model. *)

type t = {
  rows : float;
  row_bytes : float;
  (* per-column NDV; columns absent from the list default to [rows]. *)
  ndvs : (string * float) list;
}

let filter_selectivity = 0.1
let eq_literal_default_ndv = 100.0

let col_ndv t c =
  match List.assoc_opt c t.ndvs with Some n -> n | None -> t.rows

(* NDV of a combined key: independence assumption capped by row count. *)
let colset_ndv t cols =
  let product =
    List.fold_left (fun acc c -> acc *. col_ndv t c) 1.0 (Colset.to_list cols)
  in
  Float.max 1.0 (Float.min t.rows product)

let cap_ndvs rows ndvs =
  List.map (fun (c, n) -> (c, Float.min n rows)) ndvs

let width_of_coltype = function
  | Schema.Tint -> 8.0
  | Schema.Tfloat -> 8.0
  | Schema.Tstr -> 24.0

let schema_bytes (schema : Schema.t) =
  List.fold_left (fun acc c -> acc +. width_of_coltype c.Schema.ty) 8.0 schema

(* Selectivity of a predicate given input stats. *)
let rec selectivity t (pred : Expr.t) =
  match pred with
  | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Lit _)
  | Expr.Cmp (Expr.Eq, Expr.Lit _, Expr.Col c) ->
      1.0 /. Float.max 1.0 (col_ndv t c)
  | Expr.Cmp (Expr.Eq, _, _) -> 1.0 /. eq_literal_default_ndv
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> 0.3
  | Expr.Cmp (Expr.Ne, _, _) -> 0.9
  | Expr.And (a, b) -> selectivity t a *. selectivity t b
  | Expr.Or (a, b) ->
      let sa = selectivity t a and sb = selectivity t b in
      Float.min 1.0 (sa +. sb -. (sa *. sb))
  | Expr.Not a -> Float.max 0.01 (1.0 -. selectivity t a)
  | _ -> filter_selectivity

let of_file (stats : Catalog.file_stats) (schema : Schema.t) : t =
  let rows = float_of_int stats.Catalog.rows in
  {
    rows;
    row_bytes = schema_bytes schema;
    ndvs =
      List.map
        (fun c ->
          (c.Schema.name, float_of_int (Catalog.col_ndv stats c.Schema.name)))
        schema;
  }

(* Derive output stats of [op] applied to children with stats [children].
   [machines] is the cluster size, needed for local pre-aggregation whose
   output has up to ndv(keys) rows per machine. *)
let derive ~machines (op : Logop.t) ~(catalog : Catalog.t)
    ~(schema : Schema.t) (children : t list) : t =
  let child () =
    match children with
    | [ c ] -> c
    | _ -> invalid_arg "Stats.derive: expected one child"
  in
  match op with
  | Logop.Extract { file; schema; _ } -> (
      match Catalog.find catalog file with
      | Some stats -> of_file stats schema
      | None ->
          { rows = 1_000_000.0; row_bytes = schema_bytes schema; ndvs = [] })
  | Logop.Filter { pred } ->
      let c = child () in
      let rows = Float.max 1.0 (c.rows *. selectivity c pred) in
      { c with rows; ndvs = cap_ndvs rows c.ndvs }
  | Logop.Project { items } ->
      let c = child () in
      let ndvs =
        List.map
          (fun (e, name) ->
            match e with
            | Expr.Col src -> (name, col_ndv c src)
            | Expr.Lit _ -> (name, 1.0)
            | _ -> (name, c.rows))
          items
      in
      { rows = c.rows; row_bytes = schema_bytes schema; ndvs }
  | Logop.Group_by { keys; aggs = _ } | Logop.Group_by_global { keys; aggs = _ }
    ->
      let c = child () in
      let rows = colset_ndv c (Colset.of_list keys) in
      let key_ndvs =
        List.map (fun k -> (k, Float.min (col_ndv c k) rows)) keys
      in
      let agg_ndvs =
        List.filter_map
          (fun col ->
            if List.mem col.Schema.name keys then None
            else Some (col.Schema.name, rows))
          schema
      in
      { rows; row_bytes = schema_bytes schema; ndvs = key_ndvs @ agg_ndvs }
  | Logop.Group_by_local { keys; aggs = _ } ->
      (* each machine keeps at most ndv(keys) groups *)
      let c = child () in
      let groups = colset_ndv c (Colset.of_list keys) in
      let rows =
        Float.min c.rows (groups *. float_of_int (max 1 machines))
      in
      let key_ndvs =
        List.map (fun k -> (k, Float.min (col_ndv c k) rows)) keys
      in
      let agg_ndvs =
        List.filter_map
          (fun col ->
            if List.mem col.Schema.name keys then None
            else Some (col.Schema.name, rows))
          schema
      in
      { rows; row_bytes = schema_bytes schema; ndvs = key_ndvs @ agg_ndvs }
  | Logop.Join { kind; pairs; residual } -> (
      match children with
      | [ l; r ] ->
          let sel_pair (a, b) =
            1.0 /. Float.max 1.0 (Float.max (col_ndv l a) (col_ndv r b))
          in
          let join_sel =
            List.fold_left (fun acc p -> acc *. sel_pair p) 1.0 pairs
          in
          let rows = Float.max 1.0 (l.rows *. r.rows *. join_sel) in
          let rows =
            match residual with
            | None -> rows
            | Some p ->
                Float.max 1.0
                  (rows *. selectivity { l with rows } p)
          in
          (* a left outer join keeps every left row *)
          let rows =
            match kind with
            | Logop.Inner -> rows
            | Logop.Left_outer -> Float.max rows l.rows
          in
          let ndvs = cap_ndvs rows (l.ndvs @ r.ndvs) in
          { rows; row_bytes = schema_bytes schema; ndvs }
      | _ -> invalid_arg "Stats.derive: join expects two children")
  | Logop.Union_all -> (
      match children with
      | [ l; r ] ->
          let rows = l.rows +. r.rows in
          let ndvs =
            List.map (fun (c, n) -> (c, Float.min rows (n +. col_ndv r c))) l.ndvs
          in
          { rows; row_bytes = l.row_bytes; ndvs }
      | _ -> invalid_arg "Stats.derive: union expects two children")
  | Logop.Spool | Logop.Output _ -> child ()
  | Logop.Sequence -> { rows = 0.0; row_bytes = 0.0; ndvs = [] }

let pp ppf t =
  Fmt.pf ppf "rows=%.3g width=%.0fB" t.rows t.row_bytes
