(** Cardinality and NDV estimation.

    Estimates derive per operator from child estimates, so one rule set
    serves both the initial DAG and memo groups created by exploration.
    Standard assumptions: column independence, join containment, fixed
    selectivity for opaque predicates. Both optimization modes share this
    model — the paper's evaluation compares estimated costs. *)

type t = {
  rows : float;
  row_bytes : float;
  ndvs : (string * float) list;
      (** per-column distinct values; absent columns default to [rows] *)
}

(** Selectivity assumed for predicates with no usable shape. *)
val filter_selectivity : float

val col_ndv : t -> string -> float

(** NDV of a combined key: product of column NDVs capped by the row
    count. *)
val colset_ndv : t -> Relalg.Colset.t -> float

(** Estimated width of a row with the given schema, in bytes. *)
val schema_bytes : Relalg.Schema.t -> float

(** Estimated fraction of rows satisfying the predicate. *)
val selectivity : t -> Relalg.Expr.t -> float

(** Statistics of a base file restricted to [schema]'s columns. *)
val of_file : Relalg.Catalog.file_stats -> Relalg.Schema.t -> t

(** Output statistics of one operator application. [machines] bounds the
    output of per-machine pre-aggregation. *)
val derive :
  machines:int ->
  Logop.t ->
  catalog:Relalg.Catalog.t ->
  schema:Relalg.Schema.t ->
  t list ->
  t

val pp : t Fmt.t
