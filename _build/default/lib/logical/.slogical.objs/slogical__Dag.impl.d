lib/logical/dag.ml: Array Fmt Int List Logop Printf Relalg Schema String
