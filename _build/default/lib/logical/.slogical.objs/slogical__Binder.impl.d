lib/logical/binder.ml: Agg Catalog Colset Dag Either Expr Fmt Hashtbl List Logop Option Printf Relalg Schema Slang String Sutil Value
