lib/logical/stats.mli: Fmt Logop Relalg
