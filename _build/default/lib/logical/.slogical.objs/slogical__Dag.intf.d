lib/logical/dag.mli: Fmt Logop Relalg
