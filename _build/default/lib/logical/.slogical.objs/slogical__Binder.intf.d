lib/logical/binder.mli: Dag Relalg Slang
