lib/logical/stats.ml: Catalog Colset Expr Float Fmt List Logop Relalg Schema
