lib/logical/logop.ml: Agg Expr Fmt Hashtbl List Relalg Schema String
