lib/logical/logop.mli: Fmt Relalg
