(** The logical operator DAG produced by the binder: densely numbered
    nodes, children referenced by id. A node referenced by several parents
    is an explicit common subexpression (Figure 1(a), node 2). *)

type node = {
  id : int;
  op : Logop.t;
  children : int list;
  schema : Relalg.Schema.t;
}

type t = { nodes : node array; root : int }

(** Mutable construction state. *)
type builder

val builder : unit -> builder

(** [add b op children child_schemas] appends a node, deriving its schema.
    Raises [Invalid_argument] on arity mismatch. *)
val add : builder -> Logop.t -> int list -> Relalg.Schema.t list -> node

val finish : builder -> root:node -> t

(** Node by id; raises on bad ids. *)
val node : t -> int -> node

val root : t -> node
val size : t -> int
val schema : t -> int -> Relalg.Schema.t

(** Distinct parents of each node, indexed by node id. *)
val parents : t -> int list array

(** Which nodes are reachable from the root. *)
val reachable : t -> bool array

(** Fold children-before-parents over the reachable nodes. *)
val fold_topological : t -> ('a -> node -> 'a) -> 'a -> 'a

val pp : t Fmt.t
val to_string : t -> string
