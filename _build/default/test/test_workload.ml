(* Workload tests: the LS1/LS2 generators must reproduce the published
   structural statistics of Figure 6 exactly, and the random generator must
   always produce valid scripts. *)

let structural_stats spec =
  let script = Sworkload.Large_gen.generate spec in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files catalog script;
  let dag = Thelpers.bind ~catalog script in
  let memo =
    Smemo.Memo.of_dag ~catalog ~machines:25 (Thelpers.bind ~catalog script)
  in
  let shared = Cse.Spool.identify memo in
  ( Slogical.Dag.size dag,
    List.sort Int.compare
      (List.map (fun (s : Cse.Spool.shared) -> s.Cse.Spool.initial_consumers) shared)
  )

let test_ls1_statistics () =
  let ops, consumers = structural_stats Sworkload.Large_gen.ls1_spec in
  Alcotest.(check int) "101 operators in the initial DAG" 101 ops;
  Alcotest.(check (list int)) "4 shared groups: 3x2 + 1x3 consumers"
    [ 2; 2; 2; 3 ] consumers

let test_ls2_statistics () =
  let ops, consumers = structural_stats Sworkload.Large_gen.ls2_spec in
  Alcotest.(check int) "1034 operators in the initial DAG" 1034 ops;
  Alcotest.(check (list int)) "17 shared groups: 15x2 + 1x4 + 1x5"
    [ 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 4; 5 ]
    consumers

let test_generator_deterministic () =
  Alcotest.(check string) "stable output"
    (Sworkload.Large_gen.ls1 ())
    (Sworkload.Large_gen.ls1 ())

let test_duplicate_module_merged_by_fingerprints () =
  (* LS1's module 1 is written as a textual duplicate; without the
     fingerprint pass it is not detected and only 3 shared groups remain *)
  let script = Sworkload.Large_gen.ls1 () in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files catalog script;
  let memo = Thelpers.memo_of ~catalog script in
  let shared =
    Cse.Spool.identify
      ~config:{ Cse.Config.default with Cse.Config.use_fingerprints = false }
      memo
  in
  Alcotest.(check int) "3 without fingerprints" 3 (List.length shared)

let test_filler_sizes_exact () =
  List.iter
    (fun n ->
      let sizes = Sworkload.Large_gen.filler_sizes n in
      let total = List.fold_left (fun acc g -> acc + g + 2) 0 sizes in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) n total)
    [ 0; 3; 4; 9; 10; 11; 12; 37; 74; 100; 921 ]

let test_paper_scripts_bind () =
  List.iter
    (fun (name, s) ->
      match Thelpers.bind s with
      | _ -> ()
      | exception e -> Alcotest.failf "%s: %s" name (Printexc.to_string e))
    Sworkload.Paper_scripts.all

let test_random_scripts_bind () =
  for seed = 1 to 60 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:12 () in
    let catalog = Sworkload.Random_gen.catalog () in
    match Slogical.Binder.bind ~catalog (Slang.Parser.parse_script script) with
    | _ -> ()
    | exception e ->
        Alcotest.failf "seed %d: %s\n%s" seed (Printexc.to_string e) script
  done

let test_random_scripts_sometimes_share () =
  (* the random family must actually exercise the CSE machinery *)
  let with_sharing = ref 0 in
  for seed = 1 to 30 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:12 () in
    let catalog = Sworkload.Random_gen.catalog () in
    let memo =
      Smemo.Memo.of_dag ~catalog ~machines:25
        (Slogical.Binder.bind ~catalog (Slang.Parser.parse_script script))
    in
    if Cse.Spool.identify memo <> [] then incr with_sharing
  done;
  Alcotest.(check bool) "most random scripts contain sharing" true
    (!with_sharing > 15)

let () =
  Alcotest.run "workload"
    [
      ( "large scripts",
        [
          Alcotest.test_case "LS1 statistics" `Quick test_ls1_statistics;
          Alcotest.test_case "LS2 statistics" `Quick test_ls2_statistics;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "duplicates need fingerprints" `Quick
            test_duplicate_module_merged_by_fingerprints;
          Alcotest.test_case "filler sizes" `Quick test_filler_sizes_exact;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "paper scripts bind" `Quick test_paper_scripts_bind;
          Alcotest.test_case "random scripts bind" `Quick test_random_scripts_bind;
          Alcotest.test_case "random scripts share" `Quick
            test_random_scripts_sometimes_share;
        ] );
    ]
