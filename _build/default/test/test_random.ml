(* Whole-pipeline property tests over randomly generated scripts:
   - every plan (conventional and CSE) passes the independent checker;
   - the CSE plan never costs more than the conventional one on the
     aggregate-shaped random family;
   - both plans produce exactly the reference results on a simulated
     cluster;
   - shared subexpressions are materialized at most once per property
     assignment. *)

let run_seed seed =
  let script = Sworkload.Random_gen.generate ~seed ~statements:10 () in
  let catalog = Sworkload.Random_gen.catalog () in
  let r = Cse.Pipeline.run ~catalog script in
  (script, catalog, r)

let test_plans_valid () =
  for seed = 1 to 35 do
    let script, _, r = run_seed seed in
    (try
       Thelpers.assert_valid_plan "conventional" r.Cse.Pipeline.conventional_plan;
       Thelpers.assert_valid_plan "cse" r.Cse.Pipeline.cse_plan
     with e ->
       Alcotest.failf "seed %d: %s\n%s" seed (Printexc.to_string e) script)
  done

let test_cse_never_costlier () =
  for seed = 1 to 35 do
    let script, _, r = run_seed seed in
    if r.Cse.Pipeline.cse_cost > r.Cse.Pipeline.conventional_cost *. 1.0001 then
      Alcotest.failf "seed %d: cse %.6g > conventional %.6g\n%s" seed
        r.Cse.Pipeline.cse_cost r.Cse.Pipeline.conventional_cost script
  done

let test_execution_matches () =
  for seed = 1 to 25 do
    let script, catalog, r = run_seed seed in
    List.iter
      (fun (label, plan) ->
        let v = Sexec.Validate.check ~machines:7 catalog r.Cse.Pipeline.dag plan in
        if not v.Sexec.Validate.ok then
          Alcotest.failf "seed %d (%s): %s\n%s" seed label
            (String.concat "; " v.Sexec.Validate.mismatches)
            script)
      [
        ("conventional", r.Cse.Pipeline.conventional_plan);
        ("cse", r.Cse.Pipeline.cse_plan);
      ]
  done

let test_sharing_materializes_once () =
  for seed = 1 to 25 do
    let script, _, r = run_seed seed in
    let distinct, refs = Scost.Dagcost.spool_counts r.Cse.Pipeline.cse_plan in
    let n_shared = List.length r.Cse.Pipeline.shared in
    (* at most one materialization per shared group; every shared group
       that survives into the final plan has >= 2 references *)
    if distinct > n_shared then
      Alcotest.failf "seed %d: %d materializations for %d shared groups\n%s"
        seed distinct n_shared script;
    if refs < distinct then Alcotest.failf "seed %d: fewer refs than spools" seed
  done

let test_phase2_no_worse_than_phase1 () =
  for seed = 1 to 25 do
    let _, _, r = run_seed seed in
    let p1 = Scost.Dagcost.cost Scost.Cluster.default r.Cse.Pipeline.phase1_plan in
    if r.Cse.Pipeline.cse_cost > p1 +. 1e-6 then
      Alcotest.failf "seed %d: final %.6g worse than phase 1 %.6g" seed
        r.Cse.Pipeline.cse_cost p1
  done

let test_extension_configs_agree () =
  (* all Section VIII extension combinations produce valid plans; none may
     beat exhaustive enumeration (they only reorder / prune rounds) *)
  let configs =
    [
      Cse.Config.default;
      Cse.Config.no_extensions;
      { Cse.Config.default with Cse.Config.use_independent_groups = false };
      { Cse.Config.default with Cse.Config.use_group_ranking = false };
      { Cse.Config.default with Cse.Config.use_property_ranking = false };
    ]
  in
  for seed = 1 to 8 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:8 () in
    let catalog = Sworkload.Random_gen.catalog () in
    let costs =
      List.map
        (fun config ->
          let r = Cse.Pipeline.run ~config ~catalog script in
          Thelpers.assert_valid_plan "config variant" r.Cse.Pipeline.cse_plan;
          r.Cse.Pipeline.cse_cost)
        configs
    in
    (* without a budget every configuration explores all its rounds;
       the no-extensions product space subsumes the sequential one only on
       independent groups, so allow equal-or-better for the default *)
    match costs with
    | default_cost :: _ ->
        List.iter
          (fun c ->
            if default_cost > c *. 1.02 then
              Alcotest.failf "seed %d: default config much worse (%g vs %g)"
                seed default_cost c)
          costs
    | [] -> ()
  done

let () =
  Alcotest.run "random-pipeline"
    [
      ( "properties",
        [
          Alcotest.test_case "plans valid" `Slow test_plans_valid;
          Alcotest.test_case "cse never costlier" `Slow test_cse_never_costlier;
          Alcotest.test_case "execution matches" `Slow test_execution_matches;
          Alcotest.test_case "single materialization" `Slow
            test_sharing_materializes_once;
          Alcotest.test_case "phase 2 monotone" `Slow test_phase2_no_worse_than_phase1;
          Alcotest.test_case "extension configs" `Slow test_extension_configs_agree;
        ] );
    ]
