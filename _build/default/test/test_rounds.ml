open Sphys

(* Round-generation tests (Algorithm 4 line 7 + Section VIII-A sequencing),
   including the paper's 8+8-properties example: 64 rounds without the
   independence decomposition, 15 with it. *)

let cs = Thelpers.colset

let prop i = Reqprops.make (Reqprops.Hash_exact (cs [ Printf.sprintf "C%d" i ])) []

let props n = List.init n prop

(* drain a generator, reporting [cost_of] for each assignment *)
let drain gen cost_of =
  let rec loop acc =
    match Cse.Rounds.next gen with
    | None -> List.rev acc
    | Some a ->
        Cse.Rounds.report gen ~cost:(cost_of a);
        loop (a :: acc)
  in
  loop []

let test_single_group () =
  let gen = Cse.Rounds.create [ [ (1, props 5) ] ] in
  let rounds = drain gen (fun _ -> 1.0) in
  Alcotest.(check int) "one round per property" 5 (List.length rounds);
  (* each assignment covers exactly group 1 *)
  List.iter
    (fun a -> Alcotest.(check (list int)) "group" [ 1 ] (List.map fst a))
    rounds

let test_product_order_first_varies_fastest () =
  let gen = Cse.Rounds.create [ [ (1, props 2); (2, props 3) ] ] in
  let rounds = drain gen (fun _ -> 1.0) in
  Alcotest.(check int) "2*3 rounds" 6 (List.length rounds);
  let first_two = Sutil.Combi.take 2 rounds in
  (* group 1's property changes between round 1 and 2; group 2's does not *)
  match first_two with
  | [ a; b ] ->
      Alcotest.(check bool) "g1 varies" true
        (List.assoc 1 a <> List.assoc 1 b);
      Alcotest.(check bool) "g2 fixed" true (List.assoc 2 a = List.assoc 2 b)
  | _ -> Alcotest.fail "expected two rounds"

let test_paper_64_to_15 () =
  (* Section VIII-A: two groups with 8 properties each *)
  let members = [ [ (5, props 8) ]; [ (6, props 8) ] ] in
  let dependent = [ [ (5, props 8); (6, props 8) ] ] in
  Alcotest.(check int) "64 without independence" 64
    (Cse.Rounds.naive_total dependent);
  Alcotest.(check int) "15 with independence" 15
    (Cse.Rounds.sequential_total members);
  let gen = Cse.Rounds.create members in
  let rounds = drain gen (fun _ -> 1.0) in
  Alcotest.(check int) "generator produces 15" 15 (List.length rounds)

let test_best_feedback () =
  (* the second class explores around the best assignment of the first *)
  let p5 = props 4 and p6 = props 3 in
  let gen = Cse.Rounds.create [ [ (5, p5) ]; [ (6, p6) ] ] in
  (* make property 2 of group 5 the cheapest *)
  let cost_of a =
    if Reqprops.equal (List.assoc 5 a) (List.nth p5 2) then 1.0 else 10.0
  in
  let rounds = drain gen cost_of in
  Alcotest.(check int) "4 + 2 rounds" 6 (List.length rounds);
  (* the final rounds (class of group 6) all pin group 5 to its best *)
  let tail = Sutil.Combi.drop 4 rounds in
  List.iter
    (fun a ->
      Alcotest.(check bool) "best of class 1 frozen" true
        (Reqprops.equal (List.assoc 5 a) (List.nth p5 2)))
    tail

let test_every_round_is_complete () =
  (* every assignment mentions every shared group exactly once *)
  let gen = Cse.Rounds.create [ [ (1, props 2) ]; [ (2, props 2); (3, props 2) ] ] in
  let rounds = drain gen (fun _ -> 1.0) in
  List.iter
    (fun a ->
      Alcotest.(check (list int)) "all groups covered" [ 1; 2; 3 ]
        (List.sort Int.compare (List.map fst a)))
    rounds;
  (* 2 + (4 - 1) = 5 rounds *)
  Alcotest.(check int) "round count" 5 (List.length rounds)

let test_no_duplicate_assignments () =
  let gen =
    Cse.Rounds.create [ [ (1, props 3) ]; [ (2, props 3) ]; [ (3, props 2) ] ]
  in
  let rounds = drain gen (fun _ -> 1.0) in
  let canon a = List.sort compare (List.map (fun (g, p) -> (g, Reqprops.to_key p)) a) in
  let cs = List.map canon rounds in
  Alcotest.(check int) "all distinct" (List.length cs)
    (List.length (List.sort_uniq compare cs))

let test_empty_and_degenerate () =
  let gen = Cse.Rounds.create [] in
  Alcotest.(check bool) "empty" true (Cse.Rounds.next gen = None);
  let gen2 = Cse.Rounds.create [ [ (1, []) ] ] in
  Alcotest.(check bool) "group without properties dropped" true
    (Cse.Rounds.next gen2 = None);
  let gen3 = Cse.Rounds.create [ [ (1, props 1) ] ] in
  Alcotest.(check int) "single round" 1 (List.length (drain gen3 (fun _ -> 1.0)))

let test_report_without_next_rejected () =
  let gen = Cse.Rounds.create [ [ (1, props 2) ] ] in
  Alcotest.check_raises "no outstanding round"
    (Invalid_argument "Rounds.report: no outstanding round") (fun () ->
      Cse.Rounds.report gen ~cost:1.0)

let test_saturating_totals () =
  (* 17 groups x 14 properties each: the naive total saturates instead of
     overflowing *)
  let cls = [ List.init 17 (fun i -> (i, props 14)) ] in
  Alcotest.(check bool) "saturates positive" true (Cse.Rounds.naive_total cls > 0);
  let indep = List.init 17 (fun i -> [ (i, props 14) ]) in
  Alcotest.(check int) "sequential is linear" (14 + (16 * 13))
    (Cse.Rounds.sequential_total indep)

let test_lazy_generation_of_huge_class () =
  (* a dependent class with a 14^10 product must still yield its first
     rounds instantly *)
  let cls = [ List.init 10 (fun i -> (i, props 14)) ] in
  let gen = Cse.Rounds.create cls in
  for _ = 1 to 20 do
    match Cse.Rounds.next gen with
    | Some a -> Cse.Rounds.report gen ~cost:1.0;
        Alcotest.(check int) "complete assignment" 10 (List.length a)
    | None -> Alcotest.fail "expected a round"
  done;
  Alcotest.(check int) "generated 20" 20 (Cse.Rounds.generated gen)

let () =
  Alcotest.run "rounds"
    [
      ( "generation",
        [
          Alcotest.test_case "single group" `Quick test_single_group;
          Alcotest.test_case "product order" `Quick test_product_order_first_varies_fastest;
          Alcotest.test_case "paper 64->15" `Quick test_paper_64_to_15;
          Alcotest.test_case "best feedback" `Quick test_best_feedback;
          Alcotest.test_case "complete assignments" `Quick test_every_round_is_complete;
          Alcotest.test_case "no duplicates" `Quick test_no_duplicate_assignments;
          Alcotest.test_case "degenerate inputs" `Quick test_empty_and_degenerate;
          Alcotest.test_case "report guard" `Quick test_report_without_next_rejected;
          Alcotest.test_case "saturating totals" `Quick test_saturating_totals;
          Alcotest.test_case "lazy huge class" `Quick test_lazy_generation_of_huge_class;
        ] );
    ]
