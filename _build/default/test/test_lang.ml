(* Lexer and parser tests. *)

let lex s = List.map fst (Slang.Lexer.tokenize s)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 5
    (List.length (lex "SELECT A FROM R"));
  (* SELECT IDENT FROM IDENT EOF *)
  match lex "R1 = 42 ;" with
  | [ Slang.Token.IDENT "R1"; Slang.Token.EQ; Slang.Token.INT 42; Slang.Token.SEMI; Slang.Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_keywords_case_insensitive () =
  match lex "select Select SELECT" with
  | [ Slang.Token.SELECT; Slang.Token.SELECT; Slang.Token.SELECT; Slang.Token.EOF ] -> ()
  | _ -> Alcotest.fail "keywords should be case-insensitive"

let test_lexer_windows_path () =
  match lex {|"...\test.log"|} with
  | [ Slang.Token.STRING {|...\test.log|}; Slang.Token.EOF ] -> ()
  | _ -> Alcotest.fail "backslashes must be literal in strings"

let test_lexer_operators () =
  match lex "<= >= != <> == =" with
  | [
      Slang.Token.LE; Slang.Token.GE; Slang.Token.NEQ; Slang.Token.NEQ;
      Slang.Token.EQ; Slang.Token.EQ; Slang.Token.EOF;
    ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_comments () =
  match lex "A // comment to end of line\nB" with
  | [ Slang.Token.IDENT "A"; Slang.Token.IDENT "B"; Slang.Token.EOF ] -> ()
  | _ -> Alcotest.fail "comments should be skipped"

let test_lexer_float () =
  match lex "1.5 2" with
  | [ Slang.Token.FLOAT f; Slang.Token.INT 2; Slang.Token.EOF ] ->
      Alcotest.(check (float 0.0001)) "float" 1.5 f
  | _ -> Alcotest.fail "float lexing"

let test_lexer_error_position () =
  match Slang.Lexer.tokenize "A\n  @" with
  | exception Slang.Lexer.Error (_, pos) ->
      Alcotest.(check int) "line" 2 pos.Slang.Token.line;
      Alcotest.(check int) "col" 3 pos.Slang.Token.col
  | _ -> Alcotest.fail "expected a lexer error"

let test_lexer_unterminated_string () =
  match Slang.Lexer.tokenize {|X = "unterminated|} with
  | exception Slang.Lexer.Error (msg, _) ->
      Alcotest.(check bool) "message" true
        (Sutil.Strutil.starts_with ~prefix:"unterminated" msg)
  | _ -> Alcotest.fail "expected a lexer error"

(* --- parser ------------------------------------------------------------ *)

let parses s = ignore (Slang.Parser.parse_script s)

let test_parse_paper_scripts () =
  List.iter (fun (_, s) -> parses s) Sworkload.Paper_scripts.all

let test_parse_extract () =
  match Slang.Parser.parse_script {|R = EXTRACT A,B FROM "f.log" USING X; OUTPUT R TO "o";|} with
  | [
   Slang.Ast.Assign ("R", Slang.Ast.Extract { cols; file; extractor });
   Slang.Ast.Output _;
  ] ->
      Alcotest.(check (list string)) "cols" [ "A"; "B" ] cols;
      Alcotest.(check string) "file" "f.log" file;
      Alcotest.(check string) "extractor" "X" extractor
  | _ -> Alcotest.fail "extract shape"

let test_parse_select_full () =
  let s =
    {|Q = SELECT A, Sum(B) AS S FROM R WHERE A > 1 GROUP BY A HAVING S > 2;
      OUTPUT Q TO "o";|}
  in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Assign (_, Slang.Ast.Select { items; where; group_by; having; _ }); _ ]
    ->
      Alcotest.(check int) "items" 2 (List.length items);
      Alcotest.(check bool) "where" true (where <> None);
      Alcotest.(check int) "group by" 1 (List.length group_by);
      Alcotest.(check bool) "having" true (having <> None)
  | _ -> Alcotest.fail "select shape"

let test_parse_join_on () =
  let s = {|Q = SELECT A FROM R JOIN T ON R.A = T.A; OUTPUT Q TO "o";|} in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Assign (_, Slang.Ast.Select { joins; _ }); _ ] ->
      Alcotest.(check int) "one join" 1 (List.length joins)
  | _ -> Alcotest.fail "join shape"

let test_parse_union () =
  let s = {|Q = R UNION ALL T; OUTPUT Q TO "o";|} in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Assign (_, Slang.Ast.Union_all ("R", "T")); _ ] -> ()
  | _ -> Alcotest.fail "union shape"

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let s = {|Q = SELECT A + 2 * 3 AS X FROM R; OUTPUT Q TO "o";|} in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Assign (_, Slang.Ast.Select { items = [ { item; _ } ]; _ }); _ ]
    -> (
      match item with
      | Slang.Ast.Binop (Relalg.Expr.Add, _, Slang.Ast.Binop (Relalg.Expr.Mul, _, _)) -> ()
      | _ -> Alcotest.fail "precedence")
  | _ -> Alcotest.fail "shape"

let test_parse_and_or_precedence () =
  let s = {|Q = SELECT A FROM R WHERE A = 1 OR B = 2 AND C = 3; OUTPUT Q TO "o";|} in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Assign (_, Slang.Ast.Select { where = Some w; _ }); _ ] -> (
      match w with
      | Slang.Ast.Or (_, Slang.Ast.And (_, _)) -> ()
      | _ -> Alcotest.fail "AND binds tighter than OR")
  | _ -> Alcotest.fail "shape"

let test_parse_count_star () =
  let s = {|Q = SELECT A, Count(*) AS N FROM R GROUP BY A; OUTPUT Q TO "o";|} in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Assign (_, Slang.Ast.Select { items = [ _; { item = Slang.Ast.Call ("Count", [ Slang.Ast.Star ]); _ } ]; _ }); _ ]
    -> ()
  | _ -> Alcotest.fail "count(*)"

let test_parse_errors () =
  let bad =
    [
      "R = ;";
      "R = SELECT FROM X;";
      {|OUTPUT R "missing TO";|};
      "R = EXTRACT A FROM f USING X;" (* unquoted file *);
      "R = SELECT A FROM R" (* missing ; *);
    ]
  in
  List.iter
    (fun s ->
      match Slang.Parser.parse_script s with
      | exception Slang.Parser.Error _ -> ()
      | exception Slang.Lexer.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    bad

let test_parse_error_reports_position () =
  match Slang.Parser.parse_script "R = SELECT\n  ;" with
  | exception Slang.Parser.Error (msg, pos) ->
      Alcotest.(check int) "line" 2 pos.Slang.Token.line;
      Alcotest.(check bool) "msg mentions line" true
        (Sutil.Strutil.starts_with ~prefix:"line 2" msg)
  | _ -> Alcotest.fail "expected error"

(* printing a parsed script and re-parsing gives the same AST *)
let test_roundtrip () =
  List.iter
    (fun (name, s) ->
      let ast = Slang.Parser.parse_script s in
      let printed = Slang.Ast.to_string ast in
      let ast2 = Slang.Parser.parse_script printed in
      if ast <> ast2 then Alcotest.failf "%s: print/parse roundtrip differs" name)
    (Sworkload.Paper_scripts.all
    @ [ ("IND", Sworkload.Paper_scripts.independent_pair) ])

let test_roundtrip_random () =
  for seed = 1 to 25 do
    let s = Sworkload.Random_gen.generate ~seed ~statements:8 () in
    let ast = Slang.Parser.parse_script s in
    let ast2 = Slang.Parser.parse_script (Slang.Ast.to_string ast) in
    if ast <> ast2 then Alcotest.failf "seed %d roundtrip differs" seed
  done

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "keyword case" `Quick test_lexer_keywords_case_insensitive;
          Alcotest.test_case "windows paths" `Quick test_lexer_windows_path;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "floats" `Quick test_lexer_float;
          Alcotest.test_case "error position" `Quick test_lexer_error_position;
          Alcotest.test_case "unterminated string" `Quick test_lexer_unterminated_string;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper scripts" `Quick test_parse_paper_scripts;
          Alcotest.test_case "extract" `Quick test_parse_extract;
          Alcotest.test_case "select clauses" `Quick test_parse_select_full;
          Alcotest.test_case "join on" `Quick test_parse_join_on;
          Alcotest.test_case "union all" `Quick test_parse_union;
          Alcotest.test_case "arith precedence" `Quick test_parse_precedence;
          Alcotest.test_case "bool precedence" `Quick test_parse_and_or_precedence;
          Alcotest.test_case "count star" `Quick test_parse_count_star;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_reports_position;
          Alcotest.test_case "roundtrip (paper)" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip (random)" `Quick test_roundtrip_random;
        ] );
    ]
