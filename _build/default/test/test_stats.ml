open Relalg

(* Cardinality-estimation tests. *)

let catalog = Catalog.default ()

let extract_stats () =
  match Catalog.find catalog "test.log" with
  | Some s -> Slogical.Stats.of_file s (Catalog.file_schema s)
  | None -> Alcotest.fail "catalog"

let schema cols = List.map (fun c -> Schema.column c Schema.Tint) cols

let derive op sch children =
  Slogical.Stats.derive ~machines:25 op ~catalog ~schema:sch children

let test_extract () =
  let s = extract_stats () in
  Alcotest.(check (float 1.0)) "rows" 1e8 s.Slogical.Stats.rows;
  Alcotest.(check (float 0.01)) "ndv A" 60.0 (Slogical.Stats.col_ndv s "A")

let test_group_by () =
  let s = extract_stats () in
  let out =
    derive
      (Slogical.Logop.Group_by { keys = [ "A"; "B" ]; aggs = [] })
      (schema [ "A"; "B" ]) [ s ]
  in
  (* 60 * 1000 under independence *)
  Alcotest.(check (float 1.0)) "rows = ndv(A,B)" 60_000.0 out.Slogical.Stats.rows

let test_group_by_capped () =
  let s = extract_stats () in
  let out =
    derive
      (Slogical.Logop.Group_by { keys = [ "A"; "B"; "C"; "D" ]; aggs = [] })
      (schema [ "A"; "B"; "C"; "D" ]) [ s ]
  in
  Alcotest.(check bool) "capped by input rows" true
    (out.Slogical.Stats.rows <= s.Slogical.Stats.rows)

let test_group_by_local () =
  let s = extract_stats () in
  let keys = [ "A"; "B"; "C" ] in
  let local =
    derive
      (Slogical.Logop.Group_by_local { keys; aggs = [] })
      (schema keys) [ s ]
  in
  let global =
    derive (Slogical.Logop.Group_by { keys; aggs = [] }) (schema keys) [ s ]
  in
  Alcotest.(check bool) "local keeps up to ndv*machines rows" true
    (local.Slogical.Stats.rows >= global.Slogical.Stats.rows);
  Alcotest.(check (float 1.0)) "ndv(keys)*machines"
    (Float.min s.Slogical.Stats.rows (60.0 *. 1000.0 *. 60.0 *. 25.0))
    local.Slogical.Stats.rows

let test_filter_selectivity () =
  let s = extract_stats () in
  let eq =
    derive
      (Slogical.Logop.Filter
         { pred = Expr.(Cmp (Eq, Col "A", Lit (Value.Int 1))) })
      (schema [ "A"; "B"; "C"; "D" ])
      [ s ]
  in
  Alcotest.(check (float 1.0)) "1/ndv(A)" (1e8 /. 60.0) eq.Slogical.Stats.rows;
  let range =
    derive
      (Slogical.Logop.Filter { pred = Expr.(Cmp (Lt, Col "A", Lit (Value.Int 1))) })
      (schema [ "A"; "B"; "C"; "D" ])
      [ s ]
  in
  Alcotest.(check (float 1.0)) "range 0.3" (0.3 *. 1e8) range.Slogical.Stats.rows

let test_join_containment () =
  let s = extract_stats () in
  let gb keys =
    derive (Slogical.Logop.Group_by { keys; aggs = [] }) (schema keys) [ s ]
  in
  let l = gb [ "A"; "B" ] and r = gb [ "B"; "C" ] in
  let out =
    derive
      (Slogical.Logop.Join
         { kind = Slogical.Logop.Inner; pairs = [ ("B", "B") ]; residual = None })
      (schema [ "A"; "B"; "B"; "C" ])
      [ l; r ]
  in
  let expected =
    l.Slogical.Stats.rows *. r.Slogical.Stats.rows
    /. Float.max (Slogical.Stats.col_ndv l "B") (Slogical.Stats.col_ndv r "B")
  in
  Alcotest.(check (float 1.0)) "containment" expected out.Slogical.Stats.rows

let test_union () =
  let s = extract_stats () in
  let out =
    derive Slogical.Logop.Union_all (schema [ "A"; "B"; "C"; "D" ]) [ s; s ]
  in
  Alcotest.(check (float 1.0)) "sum of rows" 2e8 out.Slogical.Stats.rows

let test_project_ndv_mapping () =
  let s = extract_stats () in
  let out =
    derive
      (Slogical.Logop.Project
         { items = [ (Expr.Col "B", "X"); (Expr.Lit (Value.Int 1), "One") ] })
      (schema [ "X"; "One" ])
      [ s ]
  in
  Alcotest.(check (float 0.01)) "renamed ndv" 1000.0
    (Slogical.Stats.col_ndv out "X");
  Alcotest.(check (float 0.01)) "literal ndv" 1.0
    (Slogical.Stats.col_ndv out "One")

let test_spool_passthrough () =
  let s = extract_stats () in
  let out = derive Slogical.Logop.Spool (schema [ "A"; "B"; "C"; "D" ]) [ s ] in
  Alcotest.(check (float 0.1)) "spool passes rows" s.Slogical.Stats.rows
    out.Slogical.Stats.rows

let test_memo_group_stats () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  (* group 1 is GB(A,B,C): ndv(A,B,C) = 60*1000*60 = 3.6e6 *)
  let g1 = Smemo.Memo.group memo 1 in
  Alcotest.(check (float 1.0)) "R cardinality" 3.6e6
    g1.Smemo.Memo.stats.Slogical.Stats.rows

let () =
  Alcotest.run "stats"
    [
      ( "derivation",
        [
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "group by capped" `Quick test_group_by_capped;
          Alcotest.test_case "local aggregation" `Quick test_group_by_local;
          Alcotest.test_case "filter selectivity" `Quick test_filter_selectivity;
          Alcotest.test_case "join containment" `Quick test_join_containment;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "project ndv" `Quick test_project_ndv_mapping;
          Alcotest.test_case "spool passthrough" `Quick test_spool_passthrough;
          Alcotest.test_case "memo group stats" `Quick test_memo_group_stats;
        ] );
    ]
