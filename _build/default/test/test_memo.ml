(* Memo structure tests. *)

let test_of_dag_s1 () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  Alcotest.(check int) "7 groups" 7 (Smemo.Memo.size memo);
  Alcotest.(check int) "7 expressions" 7 (Smemo.Memo.expr_count memo);
  let root = Smemo.Memo.root_group memo in
  match (List.hd root.Smemo.Memo.exprs).Smemo.Memo.mop with
  | Slogical.Logop.Sequence -> ()
  | _ -> Alcotest.fail "root is the sequence"

let test_parents () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let parents = Smemo.Memo.parents memo in
  (* group 1 = GB(A,B,C) has the two consumer GBs as parents *)
  Alcotest.(check int) "shared group has 2 parents" 2 (List.length parents.(1));
  Alcotest.(check (list int)) "root has no parents" []
    parents.(memo.Smemo.Memo.root)

let test_redirect () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  (* create a spool over group 1 manually and redirect *)
  let g1 = Smemo.Memo.group memo 1 in
  let spool =
    Smemo.Memo.add_group memo
      { Smemo.Memo.mop = Slogical.Logop.Spool; children = [ 1 ] }
      g1.Smemo.Memo.schema
  in
  Smemo.Memo.redirect memo ~from_:1 ~to_:spool.Smemo.Memo.id
    ~except:spool.Smemo.Memo.id;
  let parents = Smemo.Memo.parents memo in
  Alcotest.(check int) "spool took over the consumers" 2
    (List.length parents.(spool.Smemo.Memo.id));
  Alcotest.(check (list int)) "group 1 now feeds only the spool"
    [ spool.Smemo.Memo.id ] parents.(1)

let test_reachable () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let live = Smemo.Memo.reachable memo in
  Alcotest.(check bool) "all initial groups reachable" true
    (Array.for_all Fun.id (Array.sub live 0 7))

let test_add_expr_dedup () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let g = Smemo.Memo.group memo 1 in
  let e = List.hd g.Smemo.Memo.exprs in
  Smemo.Memo.add_expr g e;
  Alcotest.(check int) "duplicate expression ignored" 1
    (List.length g.Smemo.Memo.exprs)

let test_exploration_adds_two_stage () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let g = Smemo.Memo.group memo 1 in
  Sopt.Rules.explore memo g ~phase:1;
  Alcotest.(check int) "global/local expression added" 2
    (List.length g.Smemo.Memo.exprs);
  (* idempotent per phase *)
  Sopt.Rules.explore memo g ~phase:1;
  Alcotest.(check int) "idempotent" 2 (List.length g.Smemo.Memo.exprs);
  (* re-exploring in phase 2 must not duplicate the rewrite *)
  let before = Smemo.Memo.size memo in
  g.Smemo.Memo.explored_phase <- 1;
  Sopt.Rules.explore memo g ~phase:2;
  Alcotest.(check int) "no new group in phase 2" before (Smemo.Memo.size memo);
  Alcotest.(check int) "no new expr in phase 2" 2 (List.length g.Smemo.Memo.exprs)

let test_group_children () =
  let memo = Thelpers.memo_of Sworkload.Paper_scripts.s1 in
  let root = Smemo.Memo.root_group memo in
  Alcotest.(check (list int)) "sequence children" [ 3; 5 ]
    (Smemo.Memo.group_children root)

let () =
  Alcotest.run "memo"
    [
      ( "structure",
        [
          Alcotest.test_case "of_dag" `Quick test_of_dag_s1;
          Alcotest.test_case "parents" `Quick test_parents;
          Alcotest.test_case "redirect" `Quick test_redirect;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "add_expr dedup" `Quick test_add_expr_dedup;
          Alcotest.test_case "group children" `Quick test_group_children;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "two-stage aggregation" `Quick
            test_exploration_adds_two_stage;
        ] );
    ]
