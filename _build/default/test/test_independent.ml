(* Section VIII-A: independent shared-group detection. *)

let prepare script =
  let memo = Thelpers.memo_of script in
  let shared = Cse.Spool.identify memo in
  let si = Cse.Shared_info.compute memo in
  (memo, List.map (fun (s : Cse.Spool.shared) -> s.Cse.Spool.spool) shared, si)

let test_independent_pair () =
  (* Figure 5 shape: two shared groups with disjoint consuming paths under
     the root LCA *)
  let memo, shared, si = prepare Sworkload.Paper_scripts.independent_pair in
  let classes =
    Cse.Independent.classes si memo ~l:memo.Smemo.Memo.root shared
  in
  Alcotest.(check int) "two classes" 2 (List.length classes);
  List.iter
    (fun cls -> Alcotest.(check int) "singleton classes" 1 (List.length cls))
    classes

let test_s4_dependent () =
  (* S4's three shared groups are non-independent: R sits below both R1 and
     R2, and the join consumes both R1 and R2 *)
  let memo, shared, si = prepare Sworkload.Paper_scripts.s4 in
  Alcotest.(check int) "three shared" 3 (List.length shared);
  let classes =
    Cse.Independent.classes si memo ~l:memo.Smemo.Memo.root shared
  in
  Alcotest.(check int) "one dependent class" 1 (List.length classes);
  Alcotest.(check int) "class holds all three" 3
    (List.length (List.hd classes))

let test_class_partition_properties () =
  (* classes form a partition of the input *)
  let memo, shared, si = prepare Sworkload.Paper_scripts.independent_pair in
  let classes =
    Cse.Independent.classes si memo ~l:memo.Smemo.Memo.root shared
  in
  let flat = List.concat classes in
  Alcotest.(check (list int)) "partition" (List.sort Int.compare shared)
    (List.sort Int.compare flat)

let test_ls1_classes () =
  (* LS1's four shared groups live in four separate modules: all
     independent *)
  let script = Sworkload.Large_gen.ls1 () in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files catalog script;
  let memo = Thelpers.memo_of ~catalog script in
  let shared = Cse.Spool.identify memo in
  let si = Cse.Shared_info.compute memo in
  let ids = List.map (fun (s : Cse.Spool.shared) -> s.Cse.Spool.spool) shared in
  let classes = Cse.Independent.classes si memo ~l:memo.Smemo.Memo.root ids in
  Alcotest.(check int) "four singleton classes" 4 (List.length classes)

(* --- VIII-B ranking ------------------------------------------------------ *)

let test_ranking_by_savings () =
  (* more consumers and more data => higher savings => earlier *)
  let memo, shared, si = prepare Sworkload.Paper_scripts.s2 in
  ignore shared;
  (* single shared group: ranking is trivially stable *)
  let order = Cse.Rank.order Scost.Cluster.default memo si shared in
  Alcotest.(check (list int)) "stable" shared order

let test_ranking_savings_formula () =
  let memo, shared, si = prepare Sworkload.Paper_scripts.s2 in
  let s = List.hd shared in
  let cost = Cse.Rank.repartition_cost Scost.Cluster.default memo s in
  let savings = Cse.Rank.savings Scost.Cluster.default memo si s in
  (* S2: three consumers => savings = 2 * repartition cost *)
  Alcotest.(check (float 1e-6)) "(n-1) * repart" (2.0 *. cost) savings

let test_ranking_orders_big_first () =
  let script = Sworkload.Large_gen.ls2 () in
  let catalog = Relalg.Catalog.default () in
  Sworkload.Large_gen.register_files catalog script;
  let memo = Thelpers.memo_of ~catalog script in
  let shared = Cse.Spool.identify memo in
  let si = Cse.Shared_info.compute memo in
  let ids = List.map (fun (s : Cse.Spool.shared) -> s.Cse.Spool.spool) shared in
  let order = Cse.Rank.order Scost.Cluster.default memo si ids in
  let savings = List.map (Cse.Rank.savings Scost.Cluster.default memo si) order in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "savings non-increasing" true (non_increasing savings)

let () =
  Alcotest.run "independent"
    [
      ( "classes (VIII-A)",
        [
          Alcotest.test_case "independent pair" `Quick test_independent_pair;
          Alcotest.test_case "S4 dependent" `Quick test_s4_dependent;
          Alcotest.test_case "partition" `Quick test_class_partition_properties;
          Alcotest.test_case "LS1 modules" `Quick test_ls1_classes;
        ] );
      ( "ranking (VIII-B)",
        [
          Alcotest.test_case "stable" `Quick test_ranking_by_savings;
          Alcotest.test_case "savings formula" `Quick test_ranking_savings_formula;
          Alcotest.test_case "big first" `Quick test_ranking_orders_big_first;
        ] );
    ]
