open Sphys

(* Section V (property-history recording and range expansion) and
   Section VIII-C (property ranking) tests. *)

let cs = Thelpers.colset

let mk_history ?(config = Cse.Config.default) () = Cse.History.create config

let test_range_expansion_paper_example () =
  (* the paper's example: [∅,{A,B,C}] expands into the seven non-empty
     subsets *)
  let h = mk_history () in
  Cse.History.record h 1
    (Reqprops.make (Reqprops.Hash_subset (cs [ "A"; "B"; "C" ])) []);
  let entries = Cse.History.entries h 1 in
  Alcotest.(check int) "seven entries" 7 (List.length entries);
  let sets =
    List.filter_map
      (fun (e : Cse.History.entry) ->
        match e.Cse.History.props.Reqprops.part with
        | Reqprops.Hash_exact s -> Some (Relalg.Colset.to_string s)
        | _ -> None)
      entries
    |> List.sort compare
  in
  Alcotest.(check (list string)) "exact subsets"
    [ "{A,B,C}"; "{A,B}"; "{A,C}"; "{A}"; "{B,C}"; "{B}"; "{C}" ]
    sets

let test_expansion_cap () =
  let config = { Cse.Config.default with Cse.Config.subset_expansion_cap = 2 } in
  let h = mk_history ~config () in
  Cse.History.record h 1
    (Reqprops.make (Reqprops.Hash_subset (cs [ "A"; "B"; "C" ])) []);
  (* full set + 3 singletons + 2 adjacent pairs = 6 (not 7) *)
  Alcotest.(check int) "capped expansion" 6
    (List.length (Cse.History.entries h 1))

let test_dedup () =
  let h = mk_history () in
  let req = Reqprops.make (Reqprops.Hash_exact (cs [ "B" ])) [] in
  Cse.History.record h 1 req;
  Cse.History.record h 1 req;
  Alcotest.(check int) "no duplicates" 1 (List.length (Cse.History.entries h 1));
  (* overlapping ranges dedup against previous expansions *)
  Cse.History.record h 1 (Reqprops.make (Reqprops.Hash_subset (cs [ "B"; "C" ])) []);
  Alcotest.(check int) "B shared between range and exact" 3
    (List.length (Cse.History.entries h 1))

let test_sort_kept_in_entries () =
  let h = mk_history () in
  let sort = Sortorder.asc [ "B"; "A" ] in
  Cse.History.record h 1 (Reqprops.make (Reqprops.Hash_subset (cs [ "A"; "B" ])) sort);
  List.iter
    (fun (e : Cse.History.entry) ->
      Alcotest.(check bool) "sort preserved" true
        (Sortorder.equal e.Cse.History.props.Reqprops.sort sort))
    (Cse.History.entries h 1)

let test_any_recorded_as_is () =
  let h = mk_history () in
  Cse.History.record h 1 (Reqprops.make Reqprops.Any (Sortorder.asc [ "A" ]));
  match Cse.History.entries h 1 with
  | [ e ] ->
      Alcotest.(check bool) "any stays" true
        (e.Cse.History.props.Reqprops.part = Reqprops.Any)
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l)

let dummy_plan part sort =
  let schema = [ Relalg.Schema.column "A" Relalg.Schema.Tint ] in
  let stats = { Slogical.Stats.rows = 10.0; row_bytes = 8.0; ndvs = [] } in
  let extract =
    Plan.make
      ~op:(Physop.P_extract { file = "f"; extractor = "X"; schema })
      ~children:[] ~group:0 ~schema ~stats ~op_cost:1.0
  in
  let exchanged =
    match part with
    | Partition.Hashed s ->
        Plan.make ~op:(Physop.P_exchange { cols = s }) ~children:[ extract ]
          ~group:0 ~schema ~stats ~op_cost:1.0
    | _ -> extract
  in
  if Sortorder.is_empty sort then exchanged
  else
    Plan.make ~op:(Physop.P_sort { order = sort }) ~children:[ exchanged ]
      ~group:0 ~schema ~stats ~op_cost:1.0

let test_frequency_ranking () =
  let h = mk_history () in
  Cse.History.record h 1 (Reqprops.make (Reqprops.Hash_subset (cs [ "A"; "B" ])) []);
  (* the winner delivered hash{B} twice: the {B} entry should rank first *)
  let win = dummy_plan (Partition.Hashed (cs [ "B" ])) [] in
  Cse.History.note_best h 1 (Some win);
  Cse.History.note_best h 1 (Some win);
  let ranked = Cse.History.ranked_properties h 1 in
  (match List.hd ranked with
  | { Reqprops.part = Reqprops.Hash_exact s; _ } ->
      Alcotest.check Thelpers.colset_t "B first" (cs [ "B" ]) s
  | _ -> Alcotest.fail "expected exact {B} first");
  (* with ranking disabled, insertion order is preserved *)
  let h2 =
    Cse.History.create
      { Cse.Config.default with Cse.Config.use_property_ranking = false }
  in
  Cse.History.record h2 1
    (Reqprops.make (Reqprops.Hash_subset (cs [ "A"; "B" ])) []);
  Cse.History.note_best h2 1 (Some win);
  let first = List.hd (Cse.History.ranked_properties h2 1) in
  let first_recorded =
    (List.hd (Cse.History.entries h2 1)).Cse.History.props
  in
  Alcotest.(check bool) "insertion order kept" true
    (Reqprops.equal first first_recorded)

let test_property_cap () =
  let config =
    { Cse.Config.default with Cse.Config.max_properties_per_group = Some 2 }
  in
  let h = mk_history ~config () in
  Cse.History.record h 1
    (Reqprops.make (Reqprops.Hash_subset (cs [ "A"; "B"; "C" ])) []);
  Alcotest.(check int) "capped to 2" 2
    (List.length (Cse.History.ranked_properties h 1));
  Alcotest.(check int) "entries still complete" 7
    (List.length (Cse.History.entries h 1))

let test_recorded_during_phase1 () =
  (* driving the actual pipeline records a non-empty history at the spool *)
  let r = Thelpers.pipeline Sworkload.Paper_scripts.s1 in
  match r.Cse.Pipeline.history_sizes with
  | [ (_, n) ] -> Alcotest.(check bool) "history recorded" true (n >= 6)
  | _ -> Alcotest.fail "expected one shared group"

let () =
  Alcotest.run "history"
    [
      ( "recording",
        [
          Alcotest.test_case "paper expansion example" `Quick
            test_range_expansion_paper_example;
          Alcotest.test_case "expansion cap" `Quick test_expansion_cap;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "sort kept" `Quick test_sort_kept_in_entries;
          Alcotest.test_case "any kept" `Quick test_any_recorded_as_is;
          Alcotest.test_case "phase-1 integration" `Quick test_recorded_during_phase1;
        ] );
      ( "ranking (VIII-C)",
        [
          Alcotest.test_case "frequency" `Quick test_frequency_ranking;
          Alcotest.test_case "cap" `Quick test_property_cap;
        ] );
    ]
