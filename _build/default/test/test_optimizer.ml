(* Conventional (phase-1) optimizer tests: plan shapes, enforcers, winner
   memoization, requirement handling, budget accounting. *)

let cluster = Scost.Cluster.default

let conventional ?(machines = 25) script =
  let catalog = Thelpers.default_catalog () in
  let dag = Thelpers.bind ~catalog script in
  let memo = Smemo.Memo.of_dag ~catalog ~machines dag in
  let ctx =
    Sopt.Optimizer.create
      ~cluster:(Scost.Cluster.with_machines machines cluster)
      memo
  in
  match Sopt.Optimizer.optimize_root ctx with
  | Some plan -> (plan, ctx)
  | None -> Alcotest.fail "no plan"

let test_s1_conventional_shape () =
  let plan, _ = conventional Sworkload.Paper_scripts.s1 in
  Thelpers.assert_valid_plan "s1 conventional" plan;
  (* Figure 8(a): the shared pipeline is executed twice *)
  Alcotest.(check int) "two extracts" 2 (Thelpers.count_op "Extract" plan);
  Alcotest.(check int) "two repartitions" 2
    (Thelpers.count_op "SortMergeExchange" plan
    + Thelpers.count_op "Repartition" plan);
  Alcotest.(check int) "no spools" 0 (Thelpers.count_op "Spool" plan);
  Alcotest.(check int) "two local aggregations" 2
    (Thelpers.count_op "StreamAgg(Local)" plan)

let test_all_paper_scripts_valid () =
  List.iter
    (fun (name, script) ->
      let plan, _ = conventional script in
      Thelpers.assert_valid_plan name plan)
    Sworkload.Paper_scripts.all

let test_requirements_pushed_through_shared_gb () =
  (* In S1's conventional plan, each consumer pushes its partitioning
     requirement into its own copy, so no consumer needs an extra
     repartition above the shared aggregation: exchanges = extracts. *)
  let plan, _ = conventional Sworkload.Paper_scripts.s1 in
  let exchanges =
    Thelpers.count_op "SortMergeExchange" plan + Thelpers.count_op "Repartition" plan
  in
  Alcotest.(check int) "one exchange per copy" 2 exchanges

let test_winner_memoization () =
  let _, ctx = conventional Sworkload.Paper_scripts.s1 in
  let tasks_before = ctx.Sopt.Optimizer.budget.Sopt.Budget.tasks in
  (* re-optimizing the root hits the winner cache: no new tasks *)
  ignore (Sopt.Optimizer.optimize_root ctx);
  Alcotest.(check int) "cached" tasks_before
    ctx.Sopt.Optimizer.budget.Sopt.Budget.tasks

let test_serial_cluster () =
  (* a 1-machine cluster still produces correct plans *)
  let plan, _ = conventional ~machines:1 Sworkload.Paper_scripts.s1 in
  Thelpers.assert_valid_plan "serial" plan

let test_plan_costs_positive () =
  let plan, _ = conventional Sworkload.Paper_scripts.s3 in
  Sphys.Plan.fold
    (fun () n ->
      if n.Sphys.Plan.op_cost < 0.0 then Alcotest.fail "negative op cost";
      if n.Sphys.Plan.cost < n.Sphys.Plan.op_cost then
        Alcotest.fail "tree cost smaller than op cost")
    () plan

let test_tree_cost_is_additive () =
  let plan, _ = conventional Sworkload.Paper_scripts.s2 in
  let rec check (n : Sphys.Plan.t) =
    let sum =
      List.fold_left (fun acc c -> acc +. c.Sphys.Plan.cost) n.Sphys.Plan.op_cost
        n.Sphys.Plan.children
    in
    Alcotest.(check (float 1e-6)) "additive" sum n.Sphys.Plan.cost;
    List.iter check n.Sphys.Plan.children
  in
  check plan

let test_dagcost_equals_tree_without_spools () =
  let plan, _ = conventional Sworkload.Paper_scripts.s2 in
  Alcotest.(check (float 1.0)) "no spool => tree cost" plan.Sphys.Plan.cost
    (Scost.Dagcost.cost cluster plan)

let test_output_order_preserved () =
  let plan, _ = conventional Sworkload.Paper_scripts.s2 in
  let outputs =
    List.filter_map
      (function Sphys.Physop.P_output { file } -> Some file | _ -> None)
      (Sphys.Plan.operators plan)
  in
  Alcotest.(check (list string)) "three outputs in script order"
    [ "result1.out"; "result2.out"; "result3.out" ]
    outputs

let test_budget_task_counting () =
  let _, ctx = conventional Sworkload.Paper_scripts.s1 in
  Alcotest.(check bool) "tasks counted" true
    (ctx.Sopt.Optimizer.budget.Sopt.Budget.tasks > 5)

let test_budget_exhaustion_flag () =
  let b = Sopt.Budget.create ~max_tasks:3 () in
  Alcotest.(check bool) "fresh" false (Sopt.Budget.exhausted b);
  Sopt.Budget.tick b;
  Sopt.Budget.tick b;
  Sopt.Budget.tick b;
  Alcotest.(check bool) "exhausted" true (Sopt.Budget.exhausted b)

(* every plan the optimizer produces on random scripts passes the checker *)
let test_random_scripts_valid () =
  for seed = 1 to 30 do
    let script = Sworkload.Random_gen.generate ~seed ~statements:9 () in
    let catalog = Sworkload.Random_gen.catalog () in
    let dag = Slogical.Binder.bind ~catalog (Slang.Parser.parse_script script) in
    let memo = Smemo.Memo.of_dag ~catalog ~machines:25 dag in
    let ctx = Sopt.Optimizer.create ~cluster memo in
    match Sopt.Optimizer.optimize_root ctx with
    | Some plan -> Thelpers.assert_valid_plan (Printf.sprintf "seed %d" seed) plan
    | None -> Alcotest.failf "seed %d: no plan" seed
  done

let test_join_plan_co_partitioned () =
  let plan, _ = conventional Sworkload.Paper_scripts.s4 in
  Thelpers.assert_valid_plan "s4" plan;
  Alcotest.(check bool) "join present" true
    (Thelpers.count_op "HashJoin" plan + Thelpers.count_op "MergeJoin" plan >= 1)

let () =
  Alcotest.run "optimizer"
    [
      ( "plans",
        [
          Alcotest.test_case "S1 shape (Figure 8a)" `Quick test_s1_conventional_shape;
          Alcotest.test_case "paper scripts valid" `Quick test_all_paper_scripts_valid;
          Alcotest.test_case "requirement pushdown" `Quick
            test_requirements_pushed_through_shared_gb;
          Alcotest.test_case "serial cluster" `Quick test_serial_cluster;
          Alcotest.test_case "join co-partitioning" `Quick test_join_plan_co_partitioned;
          Alcotest.test_case "random scripts" `Quick test_random_scripts_valid;
          Alcotest.test_case "output order" `Quick test_output_order_preserved;
        ] );
      ( "costs",
        [
          Alcotest.test_case "positive" `Quick test_plan_costs_positive;
          Alcotest.test_case "tree additive" `Quick test_tree_cost_is_additive;
          Alcotest.test_case "dag = tree without spools" `Quick
            test_dagcost_equals_tree_without_spools;
        ] );
      ( "engine",
        [
          Alcotest.test_case "winner memoization" `Quick test_winner_memoization;
          Alcotest.test_case "task counting" `Quick test_budget_task_counting;
          Alcotest.test_case "budget flag" `Quick test_budget_exhaustion_flag;
        ] );
    ]
