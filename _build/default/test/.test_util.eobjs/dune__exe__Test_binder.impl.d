test/test_binder.ml: Alcotest Array Fun List Relalg Slogical String Sworkload Thelpers
