test/test_binder.mli:
