test/test_optimizer.ml: Alcotest List Printf Scost Slang Slogical Smemo Sopt Sphys Sworkload Thelpers
