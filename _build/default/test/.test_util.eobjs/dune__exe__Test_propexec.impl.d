test/test_propexec.ml: Alcotest Cse List Option Printf Relalg Sexec Slogical Sphys String Sworkload
