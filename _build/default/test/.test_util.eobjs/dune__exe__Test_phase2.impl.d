test/test_phase2.ml: Alcotest Cse Lazy List Partition Physop Plan Props Scost Sexec Sopt Sphys String Sworkload Thelpers
