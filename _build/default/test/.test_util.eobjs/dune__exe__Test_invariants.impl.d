test/test_invariants.ml: Alcotest Cse Int List Partition Printf QCheck Relalg Reqprops Scost Sopt Sphys String Sutil Sworkload Thelpers
