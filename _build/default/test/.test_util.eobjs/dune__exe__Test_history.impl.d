test/test_history.ml: Alcotest Cse List Partition Physop Plan Relalg Reqprops Slogical Sortorder Sphys Sworkload Thelpers
