test/test_util.ml: Alcotest Array Fun List QCheck Sutil Thelpers
