test/test_lang.ml: Alcotest List Relalg Slang Sutil Sworkload
