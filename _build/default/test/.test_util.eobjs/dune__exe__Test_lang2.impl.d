test/test_lang2.ml: Alcotest Array Cse Lazy List Relalg Scost Sexec Slang Slogical Sphys String Sutil Thelpers
