test/test_random.ml: Alcotest Cse List Printexc Scost Sexec String Sworkload Thelpers
