test/test_lang2.mli:
