test/test_rounds.ml: Alcotest Cse Int List Printf Reqprops Sphys Sutil Thelpers
