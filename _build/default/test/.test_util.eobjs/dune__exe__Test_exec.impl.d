test/test_exec.ml: Agg Alcotest Array Catalog Colset Cse Expr Hashtbl List Relalg Schema Sexec String Sworkload Table Thelpers Value
