test/test_workload.ml: Alcotest Cse Int List Printexc Printf Relalg Slang Slogical Smemo Sworkload Thelpers
