test/test_independent.mli:
