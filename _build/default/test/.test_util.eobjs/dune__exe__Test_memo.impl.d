test/test_memo.ml: Alcotest Array Fun List Slogical Smemo Sopt Sworkload Thelpers
