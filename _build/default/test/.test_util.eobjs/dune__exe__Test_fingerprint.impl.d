test/test_fingerprint.ml: Alcotest Array Cse Hashtbl List Printf Slogical Smemo Sworkload Thelpers
