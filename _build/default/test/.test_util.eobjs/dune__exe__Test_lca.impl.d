test/test_lca.ml: Alcotest Array Cse Hashtbl Int List Option Printf Relalg Slogical Smemo String Sutil Sworkload Thelpers
