test/test_independent.ml: Alcotest Cse Int List Relalg Scost Smemo Sworkload Thelpers
