test/test_propexec.mli:
