test/test_props.ml: Alcotest List Partition Physop Plan Plan_check Props QCheck Relalg Reqprops Slogical Sopt Sortorder Sphys Thelpers
