test/test_stats.ml: Alcotest Catalog Expr Float List Relalg Schema Slogical Smemo Sworkload Thelpers Value
