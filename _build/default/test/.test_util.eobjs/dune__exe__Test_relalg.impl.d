test/test_relalg.ml: Agg Alcotest Array Catalog Colset Expr List QCheck Relalg Schema Table Thelpers Value
