(* Binder tests: DAG shapes, sharing, name resolution, joins, AVG
   decomposition, HAVING, error reporting. *)

let node_ops dag =
  let live = Slogical.Dag.reachable dag in
  Array.to_list
    (Array.mapi
       (fun i (n : Slogical.Dag.node) ->
         if live.(i) then Some (Slogical.Logop.short_name n.Slogical.Dag.op)
         else None)
       dag.Slogical.Dag.nodes)
  |> List.filter_map Fun.id
  |> List.sort String.compare

let test_s1_shape () =
  let dag = Thelpers.bind Sworkload.Paper_scripts.s1 in
  Alcotest.(check int) "7 operators" 7 (Slogical.Dag.size dag);
  Alcotest.(check (list string))
    "operator kinds"
    [ "Extract"; "GB"; "GB"; "GB"; "Output"; "Output"; "Sequence" ]
    (node_ops dag);
  (* the first GB is explicitly shared: two distinct parents *)
  let parents = Slogical.Dag.parents dag in
  let gb1 =
    Array.to_list dag.Slogical.Dag.nodes
    |> List.find (fun (n : Slogical.Dag.node) ->
           match n.Slogical.Dag.op with
           | Slogical.Logop.Group_by { keys; _ } -> keys = [ "A"; "B"; "C" ]
           | _ -> false)
  in
  Alcotest.(check int) "shared GB has two parents" 2
    (List.length parents.(gb1.Slogical.Dag.id))

let test_path_normalization () =
  Alcotest.(check string) "windows path" "test.log"
    (Slogical.Binder.normalize_path {|...\test.log|});
  Alcotest.(check string) "unix path" "x.log"
    (Slogical.Binder.normalize_path "/a/b/x.log");
  Alcotest.(check string) "bare name" "f" (Slogical.Binder.normalize_path "f")

let test_schema_derivation () =
  let dag = Thelpers.bind Sworkload.Paper_scripts.s1 in
  let root = Slogical.Dag.root dag in
  (match root.Slogical.Dag.op with
  | Slogical.Logop.Sequence -> ()
  | _ -> Alcotest.fail "root must be a Sequence");
  let out1 = Slogical.Dag.node dag (List.hd root.Slogical.Dag.children) in
  let gb = Slogical.Dag.node dag (List.hd out1.Slogical.Dag.children) in
  Alcotest.(check (list string)) "R1 schema" [ "A"; "B"; "S1" ]
    (Relalg.Schema.names gb.Slogical.Dag.schema)

let test_agg_alias_direct () =
  (* "Sum(S) AS S1" should name the aggregate output S1 directly, with no
     extra projection *)
  let dag = Thelpers.bind Sworkload.Paper_scripts.s1 in
  Alcotest.(check int) "no projects in S1" 0
    (List.length
       (List.filter (String.equal "Project") (node_ops dag)))

let test_join_binding () =
  let dag = Thelpers.bind Sworkload.Paper_scripts.s4 in
  let ops = node_ops dag in
  Alcotest.(check int) "one join" 1
    (List.length (List.filter (String.equal "Join") ops));
  (* multi-source SELECT introduces alias-qualifying renames *)
  Alcotest.(check bool) "rename projections present" true
    (List.length (List.filter (String.equal "Project") ops) >= 2)

let test_join_pairs () =
  let dag = Thelpers.bind Sworkload.Paper_scripts.s4 in
  let join =
    Array.to_list dag.Slogical.Dag.nodes
    |> List.find_map (fun (n : Slogical.Dag.node) ->
           match n.Slogical.Dag.op with
           | Slogical.Logop.Join { pairs; residual; _ } -> Some (pairs, residual)
           | _ -> None)
  in
  match join with
  | Some ([ (a, b) ], None) ->
      Alcotest.(check string) "left" "R1.B" a;
      Alcotest.(check string) "right" "R2.B" b
  | _ -> Alcotest.fail "expected a single equi pair with no residual"

let test_avg_decomposition () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "t.log" USING X;
      Q = SELECT A, Avg(D) AS M FROM R0 GROUP BY A;
      OUTPUT Q TO "o";|}
  in
  let catalog = Thelpers.default_catalog () in
  ignore
    (Relalg.Catalog.ensure catalog ~path:"t.log"
       ~schema:
         (List.map
            (fun c -> Relalg.Schema.column c Relalg.Schema.Tint)
            [ "A"; "B"; "C"; "D" ]));
  let dag = Thelpers.bind ~catalog s in
  let gb =
    Array.to_list dag.Slogical.Dag.nodes
    |> List.find_map (fun (n : Slogical.Dag.node) ->
           match n.Slogical.Dag.op with
           | Slogical.Logop.Group_by { aggs; _ } -> Some aggs
           | _ -> None)
  in
  match gb with
  | Some aggs ->
      Alcotest.(check int) "avg becomes two aggregates" 2 (List.length aggs);
      let funcs = List.map (fun a -> a.Relalg.Agg.func) aggs in
      Alcotest.(check bool) "sum and count" true
        (List.mem Relalg.Agg.Sum funcs && List.mem Relalg.Agg.Count funcs)
  | None -> Alcotest.fail "no group-by"

let test_having () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
      Q = SELECT A, Sum(D) AS S FROM R0 GROUP BY A HAVING S > 10;
      OUTPUT Q TO "o";|}
  in
  let dag = Thelpers.bind s in
  Alcotest.(check bool) "having becomes a filter over the group-by" true
    (List.mem "Filter" (node_ops dag))

let test_where_single_source () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
      Q = SELECT A,B FROM R0 WHERE A > 3 AND B = 2;
      OUTPUT Q TO "o";|}
  in
  let dag = Thelpers.bind s in
  let ops = node_ops dag in
  Alcotest.(check bool) "filter present" true (List.mem "Filter" ops);
  Alcotest.(check bool) "project present" true (List.mem "Project" ops)

let test_union_all_binding () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
      R1 = SELECT A,B FROM R0 WHERE A > 1;
      R2 = SELECT A,B FROM R0 WHERE A < 1;
      U = R1 UNION ALL R2;
      OUTPUT U TO "o";|}
  in
  let dag = Thelpers.bind s in
  Alcotest.(check bool) "union bound" true (List.mem "UnionAll" (node_ops dag))

let test_group_by_expression_key () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
      Q = SELECT A % 10 AS Bucket, Sum(D) AS S FROM R0 GROUP BY A % 10;
      OUTPUT Q TO "o";|}
  in
  let dag = Thelpers.bind s in
  (* computed key gets a pre-projection *)
  Alcotest.(check bool) "pre-projection" true (List.mem "Project" (node_ops dag))

let expect_binder_error s =
  match Thelpers.bind s with
  | exception Slogical.Binder.Error _ -> ()
  | _ -> Alcotest.failf "expected binder error for %s" s

let test_errors () =
  (* unknown relation *)
  expect_binder_error {|OUTPUT Nope TO "o";|};
  (* unknown column *)
  expect_binder_error
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
      Q = SELECT Z FROM R0; OUTPUT Q TO "o";|};
  (* ambiguous column in a join *)
  expect_binder_error
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
      Q = SELECT B FROM R0 AS L, R0 AS R WHERE L.A = R.A; OUTPUT Q TO "o";|};
  (* no outputs *)
  expect_binder_error {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;|};
  (* cross join without predicate *)
  expect_binder_error
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
      Q = SELECT L.A FROM R0 AS L, R0 AS R; OUTPUT Q TO "o";|};
  (* unknown file column *)
  expect_binder_error
    {|R0 = EXTRACT A,Z9 FROM "test.log" USING X; OUTPUT R0 TO "o";|}

let test_single_output_root () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING X; OUTPUT R0 TO "o";|}
  in
  let dag = Thelpers.bind s in
  match (Slogical.Dag.root dag).Slogical.Dag.op with
  | Slogical.Logop.Output _ -> ()
  | _ -> Alcotest.fail "single-output script should not add a Sequence"

let test_fold_topological () =
  let dag = Thelpers.bind Sworkload.Paper_scripts.s1 in
  let order = Slogical.Dag.fold_topological dag (fun acc n -> n.Slogical.Dag.id :: acc) [] in
  let order = List.rev order in
  (* every node appears after its children *)
  List.iteri
    (fun i id ->
      let n = Slogical.Dag.node dag id in
      List.iter
        (fun c ->
          let pos_c =
            List.mapi (fun j x -> (j, x)) order
            |> List.find (fun (_, x) -> x = c)
            |> fst
          in
          if pos_c >= i then Alcotest.fail "not topological")
        n.Slogical.Dag.children)
    order

let () =
  Alcotest.run "binder"
    [
      ( "shapes",
        [
          Alcotest.test_case "S1 DAG" `Quick test_s1_shape;
          Alcotest.test_case "path normalization" `Quick test_path_normalization;
          Alcotest.test_case "schema derivation" `Quick test_schema_derivation;
          Alcotest.test_case "agg alias" `Quick test_agg_alias_direct;
          Alcotest.test_case "join binding" `Quick test_join_binding;
          Alcotest.test_case "join pairs" `Quick test_join_pairs;
          Alcotest.test_case "single output root" `Quick test_single_output_root;
          Alcotest.test_case "topological fold" `Quick test_fold_topological;
        ] );
      ( "features",
        [
          Alcotest.test_case "avg decomposition" `Quick test_avg_decomposition;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "where" `Quick test_where_single_source;
          Alcotest.test_case "union all" `Quick test_union_all_binding;
          Alcotest.test_case "computed group key" `Quick test_group_by_expression_key;
        ] );
      ("errors", [ Alcotest.test_case "reporting" `Quick test_errors ]);
    ]
