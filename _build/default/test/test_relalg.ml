open Relalg

(* Tests for values, column sets, schemas, expressions, aggregates, tables
   and the catalog. *)

(* --- values ------------------------------------------------------------ *)

let test_value_order () =
  let open Value in
  Alcotest.(check bool) "null smallest" true (compare Null (Int 0) < 0);
  Alcotest.(check int) "int eq" 0 (compare (Int 3) (Int 3));
  Alcotest.(check bool) "int/float mix" true (compare (Int 1) (Float 1.5) < 0);
  Alcotest.(check int) "int=float" 0 (compare (Int 2) (Float 2.0));
  Alcotest.(check bool) "num < str" true (compare (Int 9) (Str "a") < 0);
  Alcotest.(check bool) "str order" true (compare (Str "a") (Str "b") < 0)

let test_value_arith () =
  let open Value in
  Alcotest.check Thelpers.value_t "add" (Int 5) (add (Int 2) (Int 3));
  Alcotest.check Thelpers.value_t "add null" (Int 2) (add Null (Int 2));
  Alcotest.check Thelpers.value_t "sub" (Int ~-1) (sub (Int 2) (Int 3));
  Alcotest.check Thelpers.value_t "mul" (Int 6) (mul (Int 2) (Int 3));
  Alcotest.check Thelpers.value_t "div0 is null" Null (div (Int 1) (Int 0));
  Alcotest.check Thelpers.value_t "mod" (Int 1) (modulo (Int 7) (Int 3));
  Alcotest.check Thelpers.value_t "min" (Int 2) (min (Int 2) (Int 3));
  Alcotest.check Thelpers.value_t "max" (Int 3) (max (Int 2) (Int 3));
  Alcotest.check Thelpers.value_t "string concat" (Str "ab")
    (add (Str "a") (Str "b"))

let test_value_truthy () =
  Alcotest.(check bool) "0 falsy" false (Value.is_truthy (Value.Int 0));
  Alcotest.(check bool) "1 truthy" true (Value.is_truthy (Value.Int 1));
  Alcotest.(check bool) "null falsy" false (Value.is_truthy Value.Null);
  Alcotest.(check bool) "empty string falsy" false
    (Value.is_truthy (Value.Str ""))

(* --- column sets -------------------------------------------------------- *)

let cs = Thelpers.colset

let test_colset_basics () =
  Alcotest.check Thelpers.colset_t "dedup + sort" (cs [ "A"; "B" ])
    (cs [ "B"; "A"; "B" ]);
  Alcotest.(check bool) "subset" true
    (Colset.subset (cs [ "B" ]) (cs [ "A"; "B"; "C" ]));
  Alcotest.(check bool) "not subset" false
    (Colset.subset (cs [ "D" ]) (cs [ "A"; "B" ]));
  Alcotest.check Thelpers.colset_t "inter" (cs [ "B" ])
    (Colset.inter (cs [ "A"; "B" ]) (cs [ "B"; "C" ]));
  Alcotest.check Thelpers.colset_t "diff" (cs [ "A" ])
    (Colset.diff (cs [ "A"; "B" ]) (cs [ "B"; "C" ]));
  Alcotest.(check int) "nonempty subsets of 3" 7
    (List.length (Colset.nonempty_subsets (cs [ "A"; "B"; "C" ])))

let small_colset_gen =
  QCheck.Gen.(
    map Colset.of_list
      (list_size (int_bound 5) (oneofl [ "A"; "B"; "C"; "D"; "E" ])))

let colset_arb = QCheck.make ~print:Colset.to_string small_colset_gen

let prop_union_comm =
  Thelpers.qtest "union commutative" (QCheck.pair colset_arb colset_arb)
    (fun (a, b) -> Colset.equal (Colset.union a b) (Colset.union b a))

let prop_subset_antisym =
  Thelpers.qtest "subset antisymmetric" (QCheck.pair colset_arb colset_arb)
    (fun (a, b) ->
      if Colset.subset a b && Colset.subset b a then Colset.equal a b else true)

let prop_inter_subset =
  Thelpers.qtest "inter is a lower bound" (QCheck.pair colset_arb colset_arb)
    (fun (a, b) ->
      let i = Colset.inter a b in
      Colset.subset i a && Colset.subset i b)

let prop_structural_equality =
  Thelpers.qtest "structural equality is set equality"
    (QCheck.pair colset_arb colset_arb)
    (fun (a, b) ->
      Colset.equal a b
      = (Colset.subset a b && Colset.subset b a))

(* --- schemas ------------------------------------------------------------ *)

let abc =
  [
    Schema.column "A" Schema.Tint;
    Schema.column "B" Schema.Tint;
    Schema.column "C" Schema.Tstr;
  ]

let test_schema () =
  Alcotest.(check (list string)) "names" [ "A"; "B"; "C" ] (Schema.names abc);
  Alcotest.(check int) "index" 1 (Schema.index "B" abc);
  Alcotest.(check bool) "mem" true (Schema.mem "C" abc);
  Alcotest.(check bool) "not mem" false (Schema.mem "Z" abc);
  Alcotest.check_raises "missing raises" Not_found (fun () ->
      ignore (Schema.index "Z" abc));
  Alcotest.(check (option int)) "index_opt" None (Schema.index_opt "Z" abc)

(* --- expressions -------------------------------------------------------- *)

let row = [| Value.Int 10; Value.Int 3; Value.Str "x" |]

let test_expr_eval () =
  let e = Expr.(Binop (Add, Col "A", Binop (Mul, Col "B", Lit (Value.Int 2)))) in
  Alcotest.check Thelpers.value_t "10+3*2" (Value.Int 16) (Expr.eval abc row e);
  let p = Expr.(Cmp (Gt, Col "A", Col "B")) in
  Alcotest.(check bool) "10 > 3" true (Expr.eval_pred abc row p);
  let q = Expr.(And (p, Cmp (Eq, Col "C", Lit (Value.Str "x")))) in
  Alcotest.(check bool) "and" true (Expr.eval_pred abc row q);
  Alcotest.(check bool) "not" false (Expr.eval_pred abc row (Expr.Not q))

let test_expr_columns () =
  let e = Expr.(And (Cmp (Eq, Col "A", Col "B"), Cmp (Lt, Col "C", Lit (Value.Int 1)))) in
  Alcotest.check Thelpers.colset_t "columns" (cs [ "A"; "B"; "C" ])
    (Expr.columns e)

let test_expr_rename () =
  let e = Expr.(Binop (Add, Col "A", Col "B")) in
  let r = Expr.rename (fun c -> "X_" ^ c) e in
  Alcotest.check Thelpers.colset_t "renamed" (cs [ "X_A"; "X_B" ])
    (Expr.columns r)

let test_equi_pairs () =
  let e =
    Expr.(
      And (Cmp (Eq, Col "a", Col "b"), Cmp (Eq, Col "c", Col "d")))
  in
  Alcotest.(check (option (list (pair string string))))
    "two pairs"
    (Some [ ("a", "b"); ("c", "d") ])
    (Expr.equi_pairs e);
  Alcotest.(check (option (list (pair string string))))
    "non-equi gives none" None
    (Expr.equi_pairs Expr.(Cmp (Lt, Col "a", Col "b")))

(* --- aggregates --------------------------------------------------------- *)

let test_agg_basic () =
  let a = Agg.make Agg.Sum (Expr.Col "A") "S" in
  let st = Agg.init () in
  List.iter
    (fun v -> Agg.step a st abc [| Value.Int v; Value.Int 0; Value.Str "" |])
    [ 1; 2; 3 ];
  Alcotest.check Thelpers.value_t "sum" (Value.Int 6) (Agg.finish a st)

let test_agg_count_min_max () =
  let run f =
    let a = Agg.make f (Expr.Col "A") "X" in
    let st = Agg.init () in
    List.iter
      (fun v -> Agg.step a st abc [| Value.Int v; Value.Int 0; Value.Str "" |])
      [ 5; 1; 9 ];
    Agg.finish a st
  in
  Alcotest.check Thelpers.value_t "count" (Value.Int 3) (run Agg.Count);
  Alcotest.check Thelpers.value_t "min" (Value.Int 1) (run Agg.Min);
  Alcotest.check Thelpers.value_t "max" (Value.Int 9) (run Agg.Max)

let test_agg_empty_sum () =
  let a = Agg.make Agg.Sum (Expr.Col "A") "S" in
  Alcotest.check Thelpers.value_t "empty sum is 0" (Value.Int 0)
    (Agg.finish a (Agg.init ()))

let test_agg_global_combinator () =
  (* local COUNT partials combine with SUM *)
  let c = Agg.make Agg.Count (Expr.Col "A") "N" in
  let g = Agg.global_combinator c in
  Alcotest.(check bool) "count combines as sum" true (g.Agg.func = Agg.Sum);
  Alcotest.(check string) "same output name" "N" g.Agg.output;
  let mn = Agg.global_combinator (Agg.make Agg.Min (Expr.Col "A") "M") in
  Alcotest.(check bool) "min combines as min" true (mn.Agg.func = Agg.Min)

(* two-stage aggregation equals one-stage on any split of the rows *)
let prop_two_stage_agg =
  Thelpers.qtest ~count:200 "local/global = single stage"
    QCheck.(list (list small_int))
    (fun partitions ->
      let schema = [ Schema.column "A" Schema.Tint ] in
      let mk vs = List.map (fun v -> [| Value.Int v |]) vs in
      let all = Table.make schema (mk (List.concat partitions)) in
      let agg = Agg.make Agg.Sum (Expr.Col "A") "S" in
      let single = Table.group_by all ~keys:[] ~aggs:[ agg ] in
      let locals =
        List.map
          (fun part ->
            Table.group_by (Table.make schema (mk part)) ~keys:[] ~aggs:[ agg ])
          partitions
      in
      let partials =
        Table.make (Schema.column "S" Schema.Tint :: [])
          (List.concat_map (fun t -> t.Table.rows) locals)
      in
      let final =
        Table.group_by partials ~keys:[] ~aggs:[ Agg.global_combinator agg ]
      in
      Table.same_contents single final)

(* --- tables ------------------------------------------------------------- *)

let t0 =
  Table.make abc
    [
      [| Value.Int 1; Value.Int 10; Value.Str "x" |];
      [| Value.Int 2; Value.Int 20; Value.Str "y" |];
      [| Value.Int 1; Value.Int 30; Value.Str "x" |];
    ]

let test_table_filter_project () =
  let f = Table.filter t0 Expr.(Cmp (Eq, Col "A", Lit (Value.Int 1))) in
  Alcotest.(check int) "filter rows" 2 (Table.cardinality f);
  let p = Table.project t0 [ (Expr.Col "B", "B2") ] in
  Alcotest.(check (list string)) "project schema" [ "B2" ]
    (Schema.names p.Table.schema)

let test_table_group_by () =
  let g =
    Table.group_by t0 ~keys:[ "A" ]
      ~aggs:[ Agg.make Agg.Sum (Expr.Col "B") "S" ]
  in
  Alcotest.(check int) "two groups" 2 (Table.cardinality g);
  let find a =
    List.find (fun r -> Value.equal r.(0) (Value.Int a)) g.Table.rows
  in
  Alcotest.check Thelpers.value_t "group 1" (Value.Int 40) (find 1).(1);
  Alcotest.check Thelpers.value_t "group 2" (Value.Int 20) (find 2).(1)

let test_table_join () =
  let other =
    Table.make
      [ Schema.column "K" Schema.Tint; Schema.column "V" Schema.Tint ]
      [ [| Value.Int 1; Value.Int 100 |]; [| Value.Int 3; Value.Int 300 |] ]
  in
  let j = Table.join t0 other Expr.(Cmp (Eq, Col "A", Col "K")) in
  Alcotest.(check int) "join rows" 2 (Table.cardinality j);
  Alcotest.(check int) "join arity" 5 (Schema.arity j.Table.schema)

let test_table_union_same_contents () =
  let u = Table.union_all t0 t0 in
  Alcotest.(check int) "union doubles" 6 (Table.cardinality u);
  Alcotest.(check bool) "same contents reflexive" true
    (Table.same_contents t0 t0);
  Alcotest.(check bool) "different cardinality differs" false
    (Table.same_contents t0 u)

let test_union_schema_mismatch () =
  let other = Table.make [ Schema.column "Z" Schema.Tint ] [] in
  Alcotest.check_raises "union mismatch"
    (Invalid_argument "Table.union_all: schema mismatch") (fun () ->
      ignore (Table.union_all t0 other))

(* --- catalog ------------------------------------------------------------ *)

let test_catalog () =
  let c = Catalog.default () in
  match Catalog.find c "test.log" with
  | None -> Alcotest.fail "test.log missing"
  | Some stats ->
      Alcotest.(check int) "rows" 100_000_000 stats.Catalog.rows;
      Alcotest.(check bool) "ndv(D) large" true (Catalog.col_ndv stats "D" > 1000);
      let n = Catalog.colset_ndv stats (cs [ "A"; "B" ]) in
      Alcotest.(check bool) "combined ndv capped by rows" true
        (n <= stats.Catalog.rows);
      Alcotest.(check int) "product rule" (60 * 1000) n

let test_catalog_ensure () =
  let c = Catalog.create () in
  let schema = [ Schema.column "X" Schema.Tint ] in
  let s1 = Catalog.ensure c ~path:"f" ~schema in
  let s2 = Catalog.ensure c ~path:"f" ~schema in
  Alcotest.(check int) "idempotent" s1.Catalog.rows s2.Catalog.rows

let () =
  Alcotest.run "relalg"
    [
      ( "value",
        [
          Alcotest.test_case "order" `Quick test_value_order;
          Alcotest.test_case "arith" `Quick test_value_arith;
          Alcotest.test_case "truthiness" `Quick test_value_truthy;
        ] );
      ( "colset",
        [
          Alcotest.test_case "basics" `Quick test_colset_basics;
          prop_union_comm;
          prop_subset_antisym;
          prop_inter_subset;
          prop_structural_equality;
        ] );
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema ]);
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "columns" `Quick test_expr_columns;
          Alcotest.test_case "rename" `Quick test_expr_rename;
          Alcotest.test_case "equi pairs" `Quick test_equi_pairs;
        ] );
      ( "agg",
        [
          Alcotest.test_case "sum" `Quick test_agg_basic;
          Alcotest.test_case "count/min/max" `Quick test_agg_count_min_max;
          Alcotest.test_case "empty sum" `Quick test_agg_empty_sum;
          Alcotest.test_case "global combinator" `Quick test_agg_global_combinator;
          prop_two_stage_agg;
        ] );
      ( "table",
        [
          Alcotest.test_case "filter/project" `Quick test_table_filter_project;
          Alcotest.test_case "group by" `Quick test_table_group_by;
          Alcotest.test_case "join" `Quick test_table_join;
          Alcotest.test_case "union" `Quick test_table_union_same_contents;
          Alcotest.test_case "union mismatch" `Quick test_union_schema_mismatch;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "default stats" `Quick test_catalog;
          Alcotest.test_case "ensure" `Quick test_catalog_ensure;
        ] );
    ]
