(* Tests for the extended language surface: DISTINCT, ORDER BY on OUTPUT,
   grand-total aggregation, and their whole-stack behaviour (plan shapes,
   enforcement via Gather, execution correctness). *)

let catalog () = Relalg.Catalog.default ()

(* --- parsing ------------------------------------------------------------ *)

let test_parse_distinct () =
  let s = {|Q = SELECT DISTINCT A, B FROM R; OUTPUT Q TO "o";|} in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Assign (_, Slang.Ast.Select { distinct = true; items; _ }); _ ] ->
      Alcotest.(check int) "two items" 2 (List.length items)
  | _ -> Alcotest.fail "distinct select shape"

let test_parse_order_by () =
  let s = {|OUTPUT R TO "o" ORDER BY A DESC, B;|} in
  match Slang.Parser.parse_script s with
  | [ Slang.Ast.Output { order = [ a; b ]; _ } ] ->
      Alcotest.(check bool) "A desc" true a.Slang.Ast.descending;
      Alcotest.(check bool) "B asc" false b.Slang.Ast.descending
  | _ -> Alcotest.fail "order by shape"

let test_roundtrip_new_syntax () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING L;
      Q = SELECT DISTINCT A,B FROM R0;
      OUTPUT Q TO "o" ORDER BY A DESC, B;|}
  in
  let ast = Slang.Parser.parse_script s in
  let ast2 = Slang.Parser.parse_script (Slang.Ast.to_string ast) in
  Alcotest.(check bool) "roundtrip" true (ast = ast2)

(* --- binding ------------------------------------------------------------ *)

let test_distinct_becomes_group_by () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING L;
      Q = SELECT DISTINCT B FROM R0;
      OUTPUT Q TO "o";|}
  in
  let dag = Thelpers.bind ~catalog:(catalog ()) s in
  let found =
    Array.exists
      (fun (n : Slogical.Dag.node) ->
        match n.Slogical.Dag.op with
        | Slogical.Logop.Group_by { keys = [ "B" ]; aggs = [] } -> true
        | _ -> false)
      dag.Slogical.Dag.nodes
  in
  Alcotest.(check bool) "aggregate-free group-by" true found

let test_order_by_bound () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING L;
      OUTPUT R0 TO "o" ORDER BY B DESC;|}
  in
  let dag = Thelpers.bind ~catalog:(catalog ()) s in
  match (Slogical.Dag.root dag).Slogical.Dag.op with
  | Slogical.Logop.Output { order = [ ("B", true) ]; _ } -> ()
  | _ -> Alcotest.fail "order recorded on the output operator"

let test_order_by_unknown_column_rejected () =
  let s =
    {|R0 = EXTRACT A,B,C,D FROM "test.log" USING L;
      OUTPUT R0 TO "o" ORDER BY Nope;|}
  in
  match Thelpers.bind ~catalog:(catalog ()) s with
  | exception Slogical.Binder.Error _ -> ()
  | _ -> Alcotest.fail "expected a binder error"

(* --- optimization + execution ------------------------------------------- *)

let combined_script =
  {|R0 = EXTRACT A,B,C,D FROM "test.log" USING L;
    R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;
    T = SELECT Sum(S) AS Total, Count(*) AS Groups FROM R;
    U = SELECT DISTINCT B FROM R0;
    OUTPUT R TO "r.out" ORDER BY S DESC, A;
    OUTPUT T TO "t.out";
    OUTPUT U TO "u.out" ORDER BY B;|}

let report = lazy (Cse.Pipeline.run ~catalog:(catalog ()) combined_script)

let test_plans_valid () =
  let r = Lazy.force report in
  Thelpers.assert_valid_plan "cse" r.Cse.Pipeline.cse_plan;
  Thelpers.assert_valid_plan "conventional" r.Cse.Pipeline.conventional_plan

let test_order_by_uses_gather () =
  let r = Lazy.force report in
  Alcotest.(check bool) "gather present" true
    (Thelpers.count_op "Gather" r.Cse.Pipeline.cse_plan >= 2)

let test_grand_total_single_row () =
  let r = Lazy.force report in
  let catalog = catalog () in
  let engine = Sexec.Engine.create ~machines:11 catalog in
  let outputs = Sexec.Engine.run engine r.Cse.Pipeline.cse_plan in
  match List.assoc_opt "t.out" outputs with
  | Some t -> Alcotest.(check int) "one row" 1 (Relalg.Table.cardinality t)
  | None -> Alcotest.fail "t.out missing"

let test_execution_and_ordering () =
  let r = Lazy.force report in
  let v =
    Sexec.Validate.check ~machines:11 (catalog ()) r.Cse.Pipeline.dag
      r.Cse.Pipeline.cse_plan
  in
  if not v.Sexec.Validate.ok then
    Alcotest.failf "mismatch: %s" (String.concat "; " v.Sexec.Validate.mismatches)

let test_ordering_check_catches_violations () =
  (* hand-build a plan that ignores its ORDER BY and confirm Validate
     flags it: take the CSE plan and strip all sorts/gathers above r.out *)
  let r = Lazy.force report in
  let rec strip (p : Sphys.Plan.t) =
    match p.Sphys.Plan.op with
    | Sphys.Physop.P_sort _ | Sphys.Physop.P_gather ->
        strip (List.hd p.Sphys.Plan.children)
    | _ -> p
  in
  let rec rewrite (p : Sphys.Plan.t) =
    match p.Sphys.Plan.op with
    | Sphys.Physop.P_output { file } when file = "r.out" ->
        {
          p with
          Sphys.Plan.children = [ strip (List.hd p.Sphys.Plan.children) ];
        }
    | _ -> { p with Sphys.Plan.children = List.map rewrite p.Sphys.Plan.children }
  in
  let sabotaged = rewrite r.Cse.Pipeline.cse_plan in
  let v =
    Sexec.Validate.check ~machines:11 (catalog ()) r.Cse.Pipeline.dag sabotaged
  in
  Alcotest.(check bool) "violation detected" true
    (List.exists
       (fun m -> Sutil.Strutil.starts_with ~prefix:"output r.out violates" m)
       v.Sexec.Validate.mismatches)

let test_distinct_semantics () =
  (* DISTINCT output equals the reference group-by *)
  let r = Lazy.force report in
  let catalog = catalog () in
  let engine = Sexec.Engine.create ~machines:5 catalog in
  let outputs = Sexec.Engine.run engine r.Cse.Pipeline.cse_plan in
  match List.assoc_opt "u.out" outputs with
  | Some t ->
      let rows = List.map (fun r -> r.(0)) t.Relalg.Table.rows in
      Alcotest.(check int) "no duplicates" (List.length rows)
        (List.length (List.sort_uniq Relalg.Value.compare rows))
  | None -> Alcotest.fail "u.out missing"

let test_sharing_still_works () =
  (* R0 is consumed by R and U; R by T and r.out: both spooled *)
  let r = Lazy.force report in
  Alcotest.(check int) "two shared groups" 2 (List.length r.Cse.Pipeline.shared);
  let distinct, refs = Scost.Dagcost.spool_counts r.Cse.Pipeline.cse_plan in
  Alcotest.(check int) "two materializations" 2 distinct;
  Alcotest.(check bool) "each consumed more than once" true (refs >= 4)

(* --- LEFT JOIN ----------------------------------------------------------- *)

let left_join_script =
  {|Users = EXTRACT A,B,C,D FROM "test.log" USING L;
    Purch = EXTRACT A,B,C,D FROM "test2.log" USING L;
    U = SELECT A, Sum(D) AS Visits FROM Users GROUP BY A;
    P = SELECT A, Sum(D) AS Spend FROM Purch WHERE B > 500 GROUP BY A;
    J = SELECT L.A, Visits, Spend FROM U AS L LEFT JOIN P AS R ON L.A = R.A;
    OUTPUT J TO "j.out";
    OUTPUT U TO "u.out";|}

let test_left_join_parses () =
  match Slang.Parser.parse_script left_join_script with
  | stmts ->
      let joins =
        List.concat_map
          (function
            | Slang.Ast.Assign (_, Slang.Ast.Select { joins; _ }) -> joins
            | _ -> [])
          stmts
      in
      (match joins with
      | [ (_, _, true) ] -> ()
      | _ -> Alcotest.fail "expected one LEFT JOIN")

let test_left_join_bound () =
  let dag = Thelpers.bind ~catalog:(catalog ()) left_join_script in
  let found =
    Array.exists
      (fun (n : Slogical.Dag.node) ->
        match n.Slogical.Dag.op with
        | Slogical.Logop.Join { kind = Slogical.Logop.Left_outer; _ } -> true
        | _ -> false)
      dag.Slogical.Dag.nodes
  in
  Alcotest.(check bool) "left-outer join bound" true found

let test_left_join_execution () =
  let catalog = catalog () in
  let r = Cse.Pipeline.run ~catalog left_join_script in
  Thelpers.assert_valid_plan "left join" r.Cse.Pipeline.cse_plan;
  let v =
    Sexec.Validate.check ~verify_props:true ~machines:7 catalog
      r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
  in
  if not v.Sexec.Validate.ok then
    Alcotest.failf "mismatch: %s" (String.concat "; " v.Sexec.Validate.mismatches);
  (* the left side (U) must survive in full: |J| >= |U|, with null padding
     for users without purchases *)
  let engine = Sexec.Engine.create ~machines:7 catalog in
  let outputs = Sexec.Engine.run engine r.Cse.Pipeline.cse_plan in
  match (List.assoc_opt "j.out" outputs, List.assoc_opt "u.out" outputs) with
  | Some j, Some u ->
      Alcotest.(check bool) "every user kept" true
        (Relalg.Table.cardinality j >= Relalg.Table.cardinality u)
  | _ -> Alcotest.fail "outputs missing"

let test_left_join_keeps_sharing () =
  let r = Cse.Pipeline.run ~catalog:(catalog ()) left_join_script in
  (* U is consumed by the join and by an output: it must be spooled once *)
  let distinct, refs = Scost.Dagcost.spool_counts r.Cse.Pipeline.cse_plan in
  Alcotest.(check int) "one materialization" 1 distinct;
  Alcotest.(check int) "two references" 2 refs

let test_left_join_nulls_aggregate () =
  (* Sum over a null-padded column treats NULL as absent *)
  let t =
    Relalg.Table.make
      [ Relalg.Schema.column "K" Relalg.Schema.Tint;
        Relalg.Schema.column "V" Relalg.Schema.Tint ]
      [ [| Relalg.Value.Int 1; Relalg.Value.Null |];
        [| Relalg.Value.Int 1; Relalg.Value.Int 5 |] ]
  in
  let g =
    Relalg.Table.group_by t ~keys:[ "K" ]
      ~aggs:[ Relalg.Agg.make Relalg.Agg.Sum (Relalg.Expr.Col "V") "S" ]
  in
  match g.Relalg.Table.rows with
  | [ [| _; s |] ] -> Alcotest.check Thelpers.value_t "sum" (Relalg.Value.Int 5) s
  | _ -> Alcotest.fail "one group expected"

let test_left_join_requires_equality () =
  let bad =
    {|Users = EXTRACT A,B,C,D FROM "test.log" USING L;
      Purch = EXTRACT A,B,C,D FROM "test2.log" USING L;
      J = SELECT L.A FROM Users AS L LEFT JOIN Purch AS R ON L.A > R.A;
      OUTPUT J TO "o";|}
  in
  match Thelpers.bind ~catalog:(catalog ()) bad with
  | exception Slogical.Binder.Error _ -> ()
  | _ -> Alcotest.fail "expected binder error"

let test_serial_req_weight_path () =
  (* ORDER BY on a 1-machine cluster still works *)
  let cluster = Scost.Cluster.with_machines 1 Scost.Cluster.default in
  let r = Cse.Pipeline.run ~cluster ~catalog:(catalog ()) combined_script in
  Thelpers.assert_valid_plan "serial cluster" r.Cse.Pipeline.cse_plan;
  let v =
    Sexec.Validate.check ~machines:1 (catalog ()) r.Cse.Pipeline.dag
      r.Cse.Pipeline.cse_plan
  in
  Alcotest.(check bool) "executes" true v.Sexec.Validate.ok

let () =
  Alcotest.run "lang2"
    [
      ( "parsing",
        [
          Alcotest.test_case "distinct" `Quick test_parse_distinct;
          Alcotest.test_case "order by" `Quick test_parse_order_by;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_new_syntax;
        ] );
      ( "binding",
        [
          Alcotest.test_case "distinct => group-by" `Quick
            test_distinct_becomes_group_by;
          Alcotest.test_case "order recorded" `Quick test_order_by_bound;
          Alcotest.test_case "unknown column" `Quick
            test_order_by_unknown_column_rejected;
        ] );
      ( "whole stack",
        [
          Alcotest.test_case "plans valid" `Quick test_plans_valid;
          Alcotest.test_case "gather for order by" `Quick test_order_by_uses_gather;
          Alcotest.test_case "grand total" `Quick test_grand_total_single_row;
          Alcotest.test_case "execution + ordering" `Quick test_execution_and_ordering;
          Alcotest.test_case "ordering violations caught" `Quick
            test_ordering_check_catches_violations;
          Alcotest.test_case "distinct semantics" `Quick test_distinct_semantics;
          Alcotest.test_case "sharing preserved" `Quick test_sharing_still_works;
          Alcotest.test_case "serial cluster" `Quick test_serial_req_weight_path;
        ] );
      ( "left join",
        [
          Alcotest.test_case "parses" `Quick test_left_join_parses;
          Alcotest.test_case "bound" `Quick test_left_join_bound;
          Alcotest.test_case "execution" `Quick test_left_join_execution;
          Alcotest.test_case "sharing" `Quick test_left_join_keeps_sharing;
          Alcotest.test_case "null aggregation" `Quick test_left_join_nulls_aggregate;
          Alcotest.test_case "needs equality" `Quick test_left_join_requires_equality;
        ] );
    ]
