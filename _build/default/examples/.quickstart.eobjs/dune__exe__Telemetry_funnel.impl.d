examples/telemetry_funnel.ml: Array Cse Fmt List Printf Relalg Sexec Sphys String
