examples/weblog_sessions.mli:
