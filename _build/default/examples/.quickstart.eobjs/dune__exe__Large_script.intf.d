examples/large_script.mli:
