examples/telemetry_funnel.mli:
