examples/quickstart.ml: Cse Fmt Relalg Sexec Sphys
