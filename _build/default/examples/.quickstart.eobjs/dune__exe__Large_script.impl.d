examples/large_script.ml: Cse Fmt List Relalg Sopt String Sworkload
