examples/quickstart.mli:
