examples/repartitioning.mli:
