examples/repartitioning.ml: Array Catalog Colset Fmt Hashtbl List Printf Relalg Schema Sexec String Value
