examples/weblog_sessions.ml: Array Cse Fmt List Printf Relalg Sexec Sphys String
