(* Service-telemetry funnel analysis exercising the whole language surface:
   joins, HAVING, AVG (decomposed into SUM/COUNT), DISTINCT, grand totals
   and globally ordered outputs -- all over one shared per-(service, hour)
   rollup, optimized once and consumed four ways.

   Run with:  dune exec examples/telemetry_funnel.exe *)

let script =
  {|
Events  = EXTRACT ServiceId, Hour, Status, Latency FROM "telemetry.log" USING EventExtractor;

Rollup  = SELECT ServiceId, Hour, Count(*) AS Calls, Sum(Latency) AS TotalLatency,
                 Avg(Latency) AS MeanLatency
          FROM Events GROUP BY ServiceId, Hour;

Hot     = SELECT ServiceId, Sum(Calls) AS DayCalls, Max(MeanLatency) AS WorstHour
          FROM Rollup GROUP BY ServiceId
          HAVING DayCalls > 10;

Hours   = SELECT Hour, Sum(Calls) AS HourCalls FROM Rollup GROUP BY Hour;

Profile = SELECT H.ServiceId, R.Hour, R.Calls, DayCalls
          FROM Hot AS H, Rollup AS R
          WHERE H.ServiceId = R.ServiceId;

Seen    = SELECT DISTINCT ServiceId FROM Events;

Total   = SELECT Sum(Calls) AS AllCalls, Count(*) AS CellCount FROM Rollup;

OUTPUT Hot     TO "hot_services.tsv" ORDER BY DayCalls DESC;
OUTPUT Hours   TO "hourly.tsv"       ORDER BY Hour;
OUTPUT Profile TO "profile.tsv";
OUTPUT Seen    TO "services_seen.tsv";
OUTPUT Total   TO "total.tsv";
|}

let () =
  let catalog = Relalg.Catalog.create () in
  Relalg.Catalog.register catalog
    (Relalg.Catalog.mk_file ~path:"telemetry.log" ~rows:120_000_000
       ~row_bytes:48
       [
         ("ServiceId", Relalg.Schema.Tint, 400);
         ("Hour", Relalg.Schema.Tint, 24);
         ("Status", Relalg.Schema.Tint, 5);
         ("Latency", Relalg.Schema.Tint, 100_000);
       ]);
  let r = Cse.Pipeline.run ~catalog script in
  Fmt.pr
    "shared groups: %s (the rollup is consumed by the hot-service report, \
     the hourly report, the profile join and the grand total)@."
    (String.concat ", "
       (List.map
          (fun (s : Cse.Spool.shared) ->
            Printf.sprintf "group %d with %d consumers" s.Cse.Spool.spool
              s.Cse.Spool.initial_consumers)
          r.Cse.Pipeline.shared));
  Fmt.pr "estimated cost %.5g -> %.5g (a %.1f%% reduction), %d rounds@.@."
    r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
    (Cse.Pipeline.reduction_percent r)
    r.Cse.Pipeline.rounds_executed;
  Fmt.pr "### CSE plan@.%a@." Sphys.Plan_pp.pp r.Cse.Pipeline.cse_plan;

  (* execute with full runtime property verification *)
  let v =
    Sexec.Validate.check ~verify_props:true ~machines:25 catalog
      r.Cse.Pipeline.dag r.Cse.Pipeline.cse_plan
  in
  Fmt.pr "execution: %s@."
    (if v.Sexec.Validate.ok then
       "all outputs match the reference; every delivered property verified \
        on the actual rows"
     else String.concat "; " v.Sexec.Validate.mismatches);

  (* show the hot-service report (globally ordered by call volume) *)
  let engine = Sexec.Engine.create ~machines:25 catalog in
  let outputs = Sexec.Engine.run engine r.Cse.Pipeline.cse_plan in
  match List.assoc_opt "hot_services.tsv" outputs with
  | Some t ->
      Fmt.pr "@.### hot_services.tsv (top 5 of %d)@." (Relalg.Table.cardinality t);
      List.iteri
        (fun i row ->
          if i < 5 then
            Fmt.pr "%s@."
              (String.concat "\t"
                 (Array.to_list (Array.map Relalg.Value.to_string row))))
        t.Relalg.Table.rows
  | None -> Fmt.pr "hot_services.tsv missing!@."
