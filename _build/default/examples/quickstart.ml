(* Quickstart: optimize the paper's motivating script (Section I / S1)
   with and without common-subexpression exploitation.

   Run with:  dune exec examples/quickstart.exe *)

let script =
  {|
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
|}

let () =
  (* 1. A catalog describes the input files: row counts and per-column
        distinct values drive both cardinality estimation and the
        synthetic data used by the simulated cluster. *)
  let catalog = Relalg.Catalog.default () in

  (* 2. One call runs the whole pipeline: parse, bind, optimize the script
        conventionally, then with the CSE framework (fingerprints, spools,
        property history, LCAs, re-optimization rounds). *)
  let r = Cse.Pipeline.run ~catalog script in

  Fmt.pr "### Conventional plan — the shared aggregation runs twice@.%a@."
    Sphys.Plan_pp.pp r.Cse.Pipeline.conventional_plan;
  Fmt.pr "### CSE plan — materialized once, consumed twice@.%a@."
    Sphys.Plan_pp.pp r.Cse.Pipeline.cse_plan;
  Fmt.pr "estimated cost: %.4g -> %.4g (%.1f%% of conventional)@."
    r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
    (100.0 *. Cse.Pipeline.ratio r);

  (* 3. Execute both plans on a simulated 25-machine cluster and check
        they produce identical results. *)
  let check name plan =
    let v = Sexec.Validate.check ~machines:25 catalog r.Cse.Pipeline.dag plan in
    Fmt.pr "%s execution: %s (%d rows shuffled)@." name
      (if v.Sexec.Validate.ok then "matches the reference" else "MISMATCH")
      v.Sexec.Validate.counters.Sexec.Engine.rows_shuffled
  in
  check "conventional" r.Cse.Pipeline.conventional_plan;
  check "CSE" r.Cse.Pipeline.cse_plan
