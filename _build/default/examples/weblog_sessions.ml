(* A realistic web-analytics scenario: one click-stream log feeding several
   reports -- exactly the workload shape the paper's introduction motivates
   ("scripts first extract data from input files and perform some initial
   aggregations; an aggregated result is often used in several places").

   The per-(user, page, day) session rollup is consumed four ways:
   - daily per-user activity,
   - per-page popularity,
   - heavy-hitter report joining user activity with page popularity,
   - a small daily summary.

   Run with:  dune exec examples/weblog_sessions.exe *)

let script =
  {|
Clicks   = EXTRACT UserId, PageId, Day, Dwell FROM "clicks.log" USING ClickExtractor;
Activity = SELECT UserId, Day, Sum(Dwell) AS Time, Count(*) AS Hits
           FROM Clicks GROUP BY UserId, Day;

UserTotals  = SELECT UserId, Sum(Time) AS TotalTime, Sum(Hits) AS TotalHits
              FROM Activity GROUP BY UserId;
DailyTotals = SELECT Day, Sum(Time) AS DayTime, Count(*) AS ActiveUsers
              FROM Activity GROUP BY Day;
Normalized  = SELECT A.UserId, A.Day, Time, DayTime
              FROM Activity AS A, DailyTotals AS D
              WHERE A.Day = D.Day;

OUTPUT UserTotals  TO "user_totals.tsv";
OUTPUT DailyTotals TO "daily.tsv";
OUTPUT Normalized  TO "normalized.tsv";
|}

let () =
  let catalog = Relalg.Catalog.create () in
  Relalg.Catalog.register catalog
    (Relalg.Catalog.mk_file ~path:"clicks.log" ~rows:200_000_000 ~row_bytes:64
       [
         ("UserId", Relalg.Schema.Tint, 200_000);
         ("PageId", Relalg.Schema.Tint, 2_000);
         ("Day", Relalg.Schema.Tint, 30);
         ("Dwell", Relalg.Schema.Tint, 10_000);
       ]);
  let r = Cse.Pipeline.run ~catalog script in

  Fmt.pr "Session rollup shared by %d consumers; LCA(s): %s@."
    (match r.Cse.Pipeline.shared with
    | s :: _ -> s.Cse.Spool.initial_consumers
    | [] -> 0)
    (String.concat ", "
       (List.map
          (fun (s, l) -> Printf.sprintf "shared %d -> group %d" s l)
          r.Cse.Pipeline.lcas));
  Fmt.pr "conventional cost %.4g, CSE cost %.4g (%.1f%% — a %.1f%% saving)@."
    r.Cse.Pipeline.conventional_cost r.Cse.Pipeline.cse_cost
    (100.0 *. Cse.Pipeline.ratio r)
    (Cse.Pipeline.reduction_percent r);
  Fmt.pr "%d re-optimization rounds over %d property sets@."
    r.Cse.Pipeline.rounds_executed
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Cse.Pipeline.history_sizes);

  Fmt.pr "@.### CSE plan@.%a@." Sphys.Plan_pp.pp r.Cse.Pipeline.cse_plan;

  (* Execute on a simulated cluster and show the daily summary rows. *)
  let engine = Sexec.Engine.create ~machines:25 catalog in
  let outputs = Sexec.Engine.run engine r.Cse.Pipeline.cse_plan in
  (match List.assoc_opt "daily.tsv" outputs with
  | Some table ->
      Fmt.pr "### daily.tsv (%d rows; first 5)@." (Relalg.Table.cardinality table);
      List.iteri
        (fun i row ->
          if i < 5 then
            Fmt.pr "%s@."
              (String.concat "\t"
                 (Array.to_list (Array.map Relalg.Value.to_string row))))
        table.Relalg.Table.rows
  | None -> Fmt.pr "daily.tsv missing!@.");
  let v =
    Sexec.Validate.check ~machines:25 catalog r.Cse.Pipeline.dag
      r.Cse.Pipeline.cse_plan
  in
  Fmt.pr "validation: %s@."
    (if v.Sexec.Validate.ok then "all outputs match the reference evaluator"
     else String.concat "; " v.Sexec.Validate.mismatches)
