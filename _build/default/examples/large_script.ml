(* Large-script optimization (Section VIII): generate a script with the
   structure of the paper's LS2 workload (1034 operators, 17 shared
   groups) and compare round counts and results with the large-script
   extensions on and off, under a time budget.

   Run with:  dune exec examples/large_script.exe *)

let () =
  let spec = Sworkload.Large_gen.ls2_spec in
  let script = Sworkload.Large_gen.generate spec in
  Fmt.pr "generated %s: %d shared modules, script of %d lines@."
    spec.Sworkload.Large_gen.name
    (List.length spec.Sworkload.Large_gen.shared_consumers)
    (List.length (String.split_on_char '\n' script));

  let run ~label config =
    let catalog = Relalg.Catalog.default () in
    Sworkload.Large_gen.register_files
      ~shared_rows:spec.Sworkload.Large_gen.shared_rows
      ~filler_rows:spec.Sworkload.Large_gen.filler_rows catalog script;
    let budget = Sopt.Budget.create ~max_seconds:60.0 () in
    let r = Cse.Pipeline.run ~config ~budget ~catalog script in
    Fmt.pr
      "%-18s cost %.5g (%.1f%% of conventional), %d rounds executed — full \
       product would need %d; optimization took %.2f s@."
      label r.Cse.Pipeline.cse_cost
      (100.0 *. Cse.Pipeline.ratio r)
      r.Cse.Pipeline.rounds_executed r.Cse.Pipeline.rounds_naive
      r.Cse.Pipeline.cse_time;
    r
  in
  let with_ext = run ~label:"all extensions" Cse.Config.default in
  let no_indep =
    run ~label:"no independence"
      { Cse.Config.default with Cse.Config.use_independent_groups = false }
  in
  let no_rank =
    run ~label:"no ranking"
      {
        Cse.Config.default with
        Cse.Config.use_group_ranking = false;
        use_property_ranking = false;
      }
  in
  Fmt.pr
    "@.With independent-group decomposition the optimizer needs %d rounds \
     instead of enumerating %d combinations; ranking spends the budget on \
     the most promising rounds first (costs: %.5g / %.5g / %.5g).@."
    with_ext.Cse.Pipeline.rounds_executed with_ext.Cse.Pipeline.rounds_naive
    with_ext.Cse.Pipeline.cse_cost no_indep.Cse.Pipeline.cse_cost
    no_rank.Cse.Pipeline.cse_cost
