(** The memo structure (Section III): groups of logically equivalent
    expressions, each expression an operator over child group ids. At
    construction every group holds exactly one expression; exploration
    rules add more, and the CSE framework merges equal groups and inserts
    spools.

    Engineered for the optimizer's hot path: expression append is O(1)
    amortized with hashtable-backed structural dedup, every group tracks
    its referrers incrementally (so {!parents} and {!redirect} touch only
    actual referrers), and reachability/parent arrays are cached between
    mutations. *)

type mexpr = { mop : Slogical.Logop.t; children : int list }

(** A memoized winner with the structured requirement it was optimized
    under, kept so the analysis layer can re-verify it after the fact. *)
type winner = {
  wphase : int;
  wreq : Sphys.Reqprops.t;
  wenforce : (int * Sphys.Reqprops.t) list;
  wplan : Sphys.Plan.t option;  (** [None] = proven infeasible *)
}

type group = {
  id : int;
  mutable exprs_rev : mexpr list;
      (** newest first — internal; read through {!exprs} *)
  mutable exprs_fwd : mexpr list;
      (** forward-order cache — internal; read through {!exprs} *)
  mutable exprs_dirty : bool;  (** internal: [exprs_fwd] needs a rebuild *)
  expr_index : (mexpr, int) Hashtbl.t;
      (** internal: structural multiset of the group's expressions *)
  parent_refs : (int, int) Hashtbl.t;
      (** internal: referrer gid → number of child slots pointing here *)
  schema : Relalg.Schema.t;
  mutable stats : Slogical.Stats.t;
  mutable explored_phase : int;
      (** highest phase whose exploration rules ran on this group *)
  mutable shared : bool;
      (** set by Algorithm 1 on spool groups rooting a shared subexpression *)
  winners : (int, winner) Hashtbl.t;
      (** best plan per interned (phase × extended-requirement) id
          (see [Sopt.Intern]) *)
}

type t = {
  mutable groups : group array;
  mutable count : int;
  mutable root : int;
  catalog : Relalg.Catalog.t;
  machines : int;
  mutable live_cache : bool array;  (** internal: see {!reachable} *)
  mutable live_valid : bool;
  mutable parents_cache : int list array;  (** internal: see {!parents} *)
  mutable parents_valid : bool;
}

(** Group by id; raises [Invalid_argument] on bad ids. *)
val group : t -> int -> group

val root_group : t -> group
val size : t -> int
val iter_groups : t -> (group -> unit) -> unit

(** The group's expressions in insertion order. O(1) amortized. *)
val exprs : group -> mexpr list

(** Derive a new expression's output statistics from its children. *)
val derive_stats : t -> mexpr -> Relalg.Schema.t -> Slogical.Stats.t

(** Append a fresh group holding one expression. *)
val add_group : t -> mexpr -> Relalg.Schema.t -> group

(** Add an equivalent expression (ignored when structurally already
    present). O(1) amortized: hashtable membership plus list cons. *)
val add_expr : t -> group -> mexpr -> unit

(** Replace a group's expression list wholesale, keeping the dedup index
    and referrer tables consistent (tests and corruption harnesses). *)
val set_exprs : t -> group -> mexpr list -> unit

(** Build the initial memo from a logical DAG: one group per reachable
    node, renumbered children-first. *)
val of_dag : catalog:Relalg.Catalog.t -> machines:int -> Slogical.Dag.t -> t

(** Child groups referenced by any expression of the group. *)
val group_children : group -> int list

(** Which groups are reachable from the root (rewrites leave dead groups
    behind). Cached between mutations — do not mutate the result. *)
val reachable : t -> bool array

(** Distinct parents per group, counting reachable groups only. Served
    from the incrementally-maintained referrer tables and cached between
    mutations — do not mutate the result. *)
val parents : t -> int list array

(** Redirect every reference to [from_] so it points to [to_]; the group
    [except] (typically the new spool) keeps its reference. Touches only
    the actual referrers of [from_]. *)
val redirect : t -> from_:int -> to_:int -> except:int -> unit

(** Recorded winners of a group, in no particular order. *)
val winners_of : group -> winner list

(** Total number of logical expressions. *)
val expr_count : t -> int

val pp_mexpr : mexpr Fmt.t
val pp : t Fmt.t
val to_string : t -> string
