(** The memo structure (Section III): groups of logically equivalent
    expressions, each expression an operator over child group ids. At
    construction every group holds exactly one expression; exploration
    rules add more, and the CSE framework merges equal groups and inserts
    spools. *)

type mexpr = { mop : Slogical.Logop.t; children : int list }

(** A memoized winner with the structured requirement it was optimized
    under, kept so the analysis layer can re-verify it after the fact. *)
type winner = {
  wphase : int;
  wreq : Sphys.Reqprops.t;
  wenforce : (int * Sphys.Reqprops.t) list;
  wplan : Sphys.Plan.t option;  (** [None] = proven infeasible *)
}

type group = {
  id : int;
  mutable exprs : mexpr list;
  schema : Relalg.Schema.t;
  mutable stats : Slogical.Stats.t;
  mutable explored_phase : int;
      (** highest phase whose exploration rules ran on this group *)
  mutable shared : bool;
      (** set by Algorithm 1 on spool groups rooting a shared subexpression *)
  winners : (string, winner) Hashtbl.t;
      (** best plan per (phase × extended-requirement) key *)
}

type t = {
  mutable groups : group array;
  mutable count : int;
  mutable root : int;
  catalog : Relalg.Catalog.t;
  machines : int;
}

(** Group by id; raises [Invalid_argument] on bad ids. *)
val group : t -> int -> group

val root_group : t -> group
val size : t -> int
val iter_groups : t -> (group -> unit) -> unit

(** Derive a new expression's output statistics from its children. *)
val derive_stats : t -> mexpr -> Relalg.Schema.t -> Slogical.Stats.t

(** Append a fresh group holding one expression. *)
val add_group : t -> mexpr -> Relalg.Schema.t -> group

(** Add an equivalent expression (ignored when already present). *)
val add_expr : group -> mexpr -> unit

(** Build the initial memo from a logical DAG: one group per reachable
    node, renumbered children-first. *)
val of_dag : catalog:Relalg.Catalog.t -> machines:int -> Slogical.Dag.t -> t

(** Child groups referenced by any expression of the group. *)
val group_children : group -> int list

(** Which groups are reachable from the root (rewrites leave dead groups
    behind). *)
val reachable : t -> bool array

(** Distinct parents per group, counting reachable groups only. *)
val parents : t -> int list array

(** Redirect every reference to [from_] so it points to [to_]; the group
    [except] (typically the new spool) keeps its reference. *)
val redirect : t -> from_:int -> to_:int -> except:int -> unit

(** Recorded winners of a group, in no particular order. *)
val winners_of : group -> winner list

(** Total number of logical expressions. *)
val expr_count : t -> int

val pp_mexpr : mexpr Fmt.t
val pp : t Fmt.t
val to_string : t -> string
