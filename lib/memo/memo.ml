open Relalg

(* The memo structure (Section III): groups of logically equivalent
   expressions.  Each group expression is an operator whose children are
   group ids.  At construction (from the binder's DAG) every group holds
   exactly one expression; exploration rules add more, and the CSE
   framework (lib/core) merges equal groups and inserts spools. *)

type mexpr = { mop : Slogical.Logop.t; children : int list }

(* A memoized winner keeps the structured requirement it was optimized
   under (not just the canonical key) so the analysis layer can re-verify
   delivered-vs-required properties and recompute costs after the fact. *)
type winner = {
  wphase : int;
  wreq : Sphys.Reqprops.t;
  wenforce : (int * Sphys.Reqprops.t) list;
  wplan : Sphys.Plan.t option; (* [None] = proven infeasible *)
}

type group = {
  id : int;
  mutable exprs : mexpr list;
  schema : Schema.t;
  mutable stats : Slogical.Stats.t;
  (* highest optimization phase whose exploration rules ran on this group *)
  mutable explored_phase : int;
  (* set by Algorithm 1 on spool groups that root a shared subexpression *)
  mutable shared : bool;
  (* winner table: canonical (phase x extended-required-property) key *)
  winners : (string, winner) Hashtbl.t;
}

type t = {
  mutable groups : group array;
  mutable count : int;
  mutable root : int;
  catalog : Catalog.t;
  machines : int;
}

let group t id =
  if id < 0 || id >= t.count then invalid_arg "Memo.group: bad id";
  t.groups.(id)

let root_group t = group t t.root
let size t = t.count

let iter_groups t f =
  for i = 0 to t.count - 1 do
    f t.groups.(i)
  done

let derive_stats t (e : mexpr) schema =
  Slogical.Stats.derive ~machines:t.machines e.mop ~catalog:t.catalog ~schema
    (List.map (fun c -> (group t c).stats) e.children)

let add_group t (e : mexpr) schema =
  let g =
    {
      id = t.count;
      exprs = [ e ];
      schema;
      stats = derive_stats t e schema;
      explored_phase = 0;
      shared = false;
      winners = Hashtbl.create 8;
    }
  in
  if t.count = Array.length t.groups then begin
    (* grow, using [g] as the (never-read) filler *)
    let bigger = Array.make (max 16 (2 * Array.length t.groups)) g in
    Array.blit t.groups 0 bigger 0 t.count;
    t.groups <- bigger
  end;
  t.groups.(t.count) <- g;
  t.count <- t.count + 1;
  g

(* Add an equivalent expression to an existing group (exploration). *)
let add_expr (g : group) (e : mexpr) =
  if not (List.mem e g.exprs) then g.exprs <- g.exprs @ [ e ]

let of_dag ~catalog ~machines (dag : Slogical.Dag.t) : t =
  let t =
    { groups = [||]; count = 0; root = 0; catalog; machines }
  in
  (* keep only reachable nodes, renumbering densely in topological
     (children-first) order *)
  let mapping = Hashtbl.create 64 in
  let rec build id =
    match Hashtbl.find_opt mapping id with
    | Some gid -> gid
    | None ->
        let n = Slogical.Dag.node dag id in
        let children = List.map build n.Slogical.Dag.children in
        let g =
          add_group t
            { mop = n.Slogical.Dag.op; children }
            n.Slogical.Dag.schema
        in
        Hashtbl.replace mapping id g.id;
        g.id
  in
  t.root <- build (Slogical.Dag.root dag).Slogical.Dag.id;
  t

(* Children referenced by any expression of the group (the group DAG
   edges). *)
let group_children (g : group) =
  List.sort_uniq Int.compare (List.concat_map (fun e -> e.children) g.exprs)

(* Groups reachable from the root (merges and spool insertion leave dead
   groups behind; they are ignored everywhere). *)
let reachable t =
  let seen = Array.make t.count false in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter visit (group_children (group t id))
    end
  in
  visit t.root;
  seen

(* Distinct parent groups of each group, counting reachable groups only. *)
let parents t =
  let live = reachable t in
  let ps = Array.make t.count [] in
  iter_groups t (fun g ->
      if live.(g.id) then
        List.iter
          (fun c -> if not (List.mem g.id ps.(c)) then ps.(c) <- g.id :: ps.(c))
          (group_children g));
  Array.map (List.sort_uniq Int.compare) ps

(* Redirect every reference to group [from_] so it points to [to_]
   ("make all the consumers point to this new node", Algorithm 1).
   [except] protects the new spool group's own expression. *)
let redirect t ~from_ ~to_ ~except =
  iter_groups t (fun g ->
      if g.id <> except then
        g.exprs <-
          List.map
            (fun e ->
              {
                e with
                children =
                  List.map (fun c -> if c = from_ then to_ else c) e.children;
              })
            g.exprs);
  if t.root = from_ then t.root <- to_

(* Winners of a group, in no particular order. *)
let winners_of (g : group) =
  Hashtbl.fold (fun _ w acc -> w :: acc) g.winners []

(* Number of logical expressions across all groups. *)
let expr_count t =
  let n = ref 0 in
  iter_groups t (fun g -> n := !n + List.length g.exprs);
  !n

let pp_mexpr ppf (e : mexpr) =
  Fmt.pf ppf "%a%s" Slogical.Logop.pp e.mop
    (match e.children with
    | [] -> ""
    | cs -> Fmt.str " [%s]" (String.concat "," (List.map string_of_int cs)))

let pp ppf t =
  iter_groups t (fun g ->
      Fmt.pf ppf "group %d%s%s: %a@." g.id
        (if g.shared then " (shared)" else "")
        (if g.id = t.root then " (root)" else "")
        Fmt.(list ~sep:(any " | ") pp_mexpr)
        g.exprs)

let to_string t = Fmt.str "%a" pp t
