open Relalg

(* The memo structure (Section III): groups of logically equivalent
   expressions.  Each group expression is an operator whose children are
   group ids.  At construction (from the binder's DAG) every group holds
   exactly one expression; exploration rules add more, and the CSE
   framework (lib/core) merges equal groups and inserts spools.

   The structure is engineered for the optimizer's hot path:

   - expression lists support O(1) amortized append with hashtable-backed
     structural dedup (the forward-order list is rebuilt lazily);
   - every group maintains a reference-counted table of the groups whose
     expressions point at it, so [parents] and [redirect] touch only the
     actual referrers instead of rescanning the whole memo;
   - reachability and parent arrays are cached and invalidated by the
     mutating operations, so back-to-back queries between mutations (the
     common pattern in Algorithm 1 and the audits) cost one traversal. *)

type mexpr = { mop : Slogical.Logop.t; children : int list }

(* A memoized winner keeps the structured requirement it was optimized
   under (not just the canonical key) so the analysis layer can re-verify
   delivered-vs-required properties and recompute costs after the fact. *)
type winner = {
  wphase : int;
  wreq : Sphys.Reqprops.t;
  wenforce : (int * Sphys.Reqprops.t) list;
  wplan : Sphys.Plan.t option; (* [None] = proven infeasible *)
}

type group = {
  id : int;
  (* expressions, newest first; the forward-order view is [exprs] *)
  mutable exprs_rev : mexpr list;
  mutable exprs_fwd : mexpr list; (* cache; valid when not [exprs_dirty] *)
  mutable exprs_dirty : bool;
  (* structural multiset of the group's expressions (dedup + redirect) *)
  expr_index : (mexpr, int) Hashtbl.t;
  (* referrer gid -> number of child slots in its exprs pointing here *)
  parent_refs : (int, int) Hashtbl.t;
  schema : Schema.t;
  mutable stats : Slogical.Stats.t;
  (* highest optimization phase whose exploration rules ran on this group *)
  mutable explored_phase : int;
  (* set by Algorithm 1 on spool groups that root a shared subexpression *)
  mutable shared : bool;
  (* winner table, keyed by the interned (phase x extended-required-
     property) id the optimizer computes (Sopt.Intern) *)
  winners : (int, winner) Hashtbl.t;
}

type t = {
  mutable groups : group array;
  mutable count : int;
  mutable root : int;
  catalog : Catalog.t;
  machines : int;
  (* demand-built caches, invalidated by every edge mutation *)
  mutable live_cache : bool array;
  mutable live_valid : bool;
  mutable parents_cache : int list array;
  mutable parents_valid : bool;
}

let group t id =
  if id < 0 || id >= t.count then invalid_arg "Memo.group: bad id";
  t.groups.(id)

let root_group t = group t t.root
let size t = t.count

let iter_groups t f =
  for i = 0 to t.count - 1 do
    f t.groups.(i)
  done

(* Expressions of a group in insertion order. *)
let exprs g =
  if g.exprs_dirty then begin
    g.exprs_fwd <- List.rev g.exprs_rev;
    g.exprs_dirty <- false
  end;
  g.exprs_fwd

let invalidate t =
  t.live_valid <- false;
  t.parents_valid <- false

(* --- incremental referrer maintenance ---------------------------------- *)

let add_parent_edge t ~parent ~child =
  let c = group t child in
  let cur = Option.value ~default:0 (Hashtbl.find_opt c.parent_refs parent) in
  Hashtbl.replace c.parent_refs parent (cur + 1)

let remove_parent_edge t ~parent ~child =
  let c = group t child in
  match Hashtbl.find_opt c.parent_refs parent with
  | None -> ()
  | Some n when n <= 1 -> Hashtbl.remove c.parent_refs parent
  | Some n -> Hashtbl.replace c.parent_refs parent (n - 1)

let index_add g e =
  Hashtbl.replace g.expr_index e
    (1 + Option.value ~default:0 (Hashtbl.find_opt g.expr_index e))

let index_remove g e =
  match Hashtbl.find_opt g.expr_index e with
  | None -> ()
  | Some n when n <= 1 -> Hashtbl.remove g.expr_index e
  | Some n -> Hashtbl.replace g.expr_index e (n - 1)

let mem_expr g e = Hashtbl.mem g.expr_index e

let derive_stats t (e : mexpr) schema =
  Slogical.Stats.derive ~machines:t.machines e.mop ~catalog:t.catalog ~schema
    (List.map (fun c -> (group t c).stats) e.children)

let add_group t (e : mexpr) schema =
  let g =
    {
      id = t.count;
      exprs_rev = [ e ];
      exprs_fwd = [ e ];
      exprs_dirty = false;
      expr_index = Hashtbl.create 4;
      parent_refs = Hashtbl.create 4;
      schema;
      stats = derive_stats t e schema;
      explored_phase = 0;
      shared = false;
      winners = Hashtbl.create 8;
    }
  in
  index_add g e;
  if t.count = Array.length t.groups then begin
    (* grow, using [g] as the (never-read) filler *)
    let bigger = Array.make (max 16 (2 * Array.length t.groups)) g in
    Array.blit t.groups 0 bigger 0 t.count;
    t.groups <- bigger
  end;
  t.groups.(t.count) <- g;
  t.count <- t.count + 1;
  List.iter (fun c -> add_parent_edge t ~parent:g.id ~child:c) e.children;
  invalidate t;
  g

(* Add an equivalent expression to an existing group (exploration).
   Hashtable-backed: O(1) amortized instead of a structural list scan plus
   a quadratic list append. *)
let add_expr t (g : group) (e : mexpr) =
  if not (mem_expr g e) then begin
    g.exprs_rev <- e :: g.exprs_rev;
    g.exprs_dirty <- true;
    index_add g e;
    List.iter (fun c -> add_parent_edge t ~parent:g.id ~child:c) e.children;
    invalidate t
  end

(* Replace the expression list wholesale (tests and corruption harnesses);
   keeps the index and referrer tables consistent. *)
let set_exprs t (g : group) (es : mexpr list) =
  List.iter
    (fun e ->
      index_remove g e;
      List.iter
        (fun c ->
          if c >= 0 && c < t.count then
            remove_parent_edge t ~parent:g.id ~child:c)
        e.children)
    (exprs g);
  g.exprs_rev <- List.rev es;
  g.exprs_fwd <- es;
  g.exprs_dirty <- false;
  List.iter
    (fun e ->
      index_add g e;
      List.iter
        (fun c ->
          if c >= 0 && c < t.count then add_parent_edge t ~parent:g.id ~child:c)
        e.children)
    es;
  invalidate t

let of_dag ~catalog ~machines (dag : Slogical.Dag.t) : t =
  let t =
    {
      groups = [||];
      count = 0;
      root = 0;
      catalog;
      machines;
      live_cache = [||];
      live_valid = false;
      parents_cache = [||];
      parents_valid = false;
    }
  in
  (* keep only reachable nodes, renumbering densely in topological
     (children-first) order *)
  let mapping = Hashtbl.create 64 in
  let rec build id =
    match Hashtbl.find_opt mapping id with
    | Some gid -> gid
    | None ->
        let n = Slogical.Dag.node dag id in
        let children = List.map build n.Slogical.Dag.children in
        let g =
          add_group t
            { mop = n.Slogical.Dag.op; children }
            n.Slogical.Dag.schema
        in
        Hashtbl.replace mapping id g.id;
        g.id
  in
  t.root <- build (Slogical.Dag.root dag).Slogical.Dag.id;
  t

(* Children referenced by any expression of the group (the group DAG
   edges). *)
let group_children (g : group) =
  List.sort_uniq Int.compare (List.concat_map (fun e -> e.children) (exprs g))

(* Groups reachable from the root (merges and spool insertion leave dead
   groups behind; they are ignored everywhere).  Cached between
   mutations; callers must not mutate the returned array. *)
let reachable t =
  if t.live_valid && Array.length t.live_cache = t.count then t.live_cache
  else begin
    let seen = Array.make t.count false in
    let rec visit id =
      if not seen.(id) then begin
        seen.(id) <- true;
        List.iter visit (group_children (group t id))
      end
    in
    visit t.root;
    t.live_cache <- seen;
    t.live_valid <- true;
    seen
  end

(* Distinct parent groups of each group, counting reachable groups only.
   Served from the referrer tables; cached between mutations; callers must
   not mutate the returned array. *)
let parents t =
  if t.parents_valid && Array.length t.parents_cache = t.count then
    t.parents_cache
  else begin
    let live = reachable t in
    let ps =
      Array.init t.count (fun c ->
          Hashtbl.fold
            (fun p _ acc -> if live.(p) then p :: acc else acc)
            (group t c).parent_refs []
          |> List.sort Int.compare)
    in
    t.parents_cache <- ps;
    t.parents_valid <- true;
    ps
  end

(* Redirect every reference to group [from_] so it points to [to_]
   ("make all the consumers point to this new node", Algorithm 1).
   [except] protects the new spool group's own expression.  Incremental:
   only the actual referrers of [from_] are rewritten. *)
let redirect t ~from_ ~to_ ~except =
  let from_g = group t from_ in
  let referrers =
    Hashtbl.fold (fun p _ acc -> p :: acc) from_g.parent_refs []
    |> List.sort Int.compare
  in
  List.iter
    (fun p ->
      if p <> except then begin
        let pg = group t p in
        let rewritten =
          List.map
            (fun e ->
              if List.mem from_ e.children then begin
                List.iter
                  (fun c ->
                    if c = from_ then begin
                      remove_parent_edge t ~parent:p ~child:from_;
                      add_parent_edge t ~parent:p ~child:to_
                    end)
                  e.children;
                let e' =
                  {
                    e with
                    children =
                      List.map
                        (fun c -> if c = from_ then to_ else c)
                        e.children;
                  }
                in
                index_remove pg e;
                index_add pg e';
                e'
              end
              else e)
            (exprs pg)
        in
        pg.exprs_rev <- List.rev rewritten;
        pg.exprs_fwd <- rewritten;
        pg.exprs_dirty <- false
      end)
    referrers;
  if t.root = from_ then t.root <- to_;
  invalidate t

(* Winners of a group, in no particular order. *)
let winners_of (g : group) =
  Hashtbl.fold (fun _ w acc -> w :: acc) g.winners []

(* Number of logical expressions across all groups. *)
let expr_count t =
  let n = ref 0 in
  iter_groups t (fun g -> n := !n + List.length (exprs g));
  !n

let pp_mexpr ppf (e : mexpr) =
  Fmt.pf ppf "%a%s" Slogical.Logop.pp e.mop
    (match e.children with
    | [] -> ""
    | cs -> Fmt.str " [%s]" (String.concat "," (List.map string_of_int cs)))

let pp ppf t =
  iter_groups t (fun g ->
      Fmt.pf ppf "group %d%s%s: %a@." g.id
        (if g.shared then " (shared)" else "")
        (if g.id = t.root then " (root)" else "")
        Fmt.(list ~sep:(any " | ") pp_mexpr)
        (exprs g))

let to_string t = Fmt.str "%a" pp t
