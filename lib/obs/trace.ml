(* Begin/end spans and instant events in per-domain buffers, exported as
   Chrome trace-event JSON.

   Recording is domain-safe without locks on the hot path: every domain
   appends to its own growable buffer (fetched once per event through
   [Domain.DLS]), and buffers are only merged at collection time, after
   the worker pool has been joined.  The global mutex is touched solely
   when a domain registers its buffer for the first time in a trace
   generation.  When tracing is disabled -- the default -- every
   recording entry point is one atomic load and a branch: no allocation,
   so instrumented hot loops cost nothing in production runs.

   Event coordinates follow the pipeline: [pid] is the pipeline phase
   (frontend, phase-1 optimization, phase-2 re-optimization, stage-graph
   construction, execution) and [tid] is the worker-domain slot of the
   executor's pool ([Sutil.Pool.current_slot]; the main domain is slot
   0).  Timestamps are microseconds since [start], clamped to be
   monotone per buffer (and re-clamped per tid at merge), so the
   well-formedness checker can insist on per-domain monotonicity.

   A buffer that reaches its capacity drops further events (counted, and
   reported by [dropped]) rather than overwriting old ones: dropping the
   newest keeps already-recorded spans balanced.

   In *ring* mode ([start ~ring:true], the flight recorder) the policy
   flips: a full buffer overwrites its oldest event instead, so a
   long-running serve process always holds the most recent window of
   activity for a post-mortem dump.  Ring truncation may orphan the
   [End] events whose [Begin] was overwritten — the checker accepts
   exactly that shape under [~ring:true] (see [check]). *)

type arg = Str of string | Int of int | Float of float

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  pid : int;
  tid : int;
  ts : float;  (* microseconds since trace start, monotone per tid *)
  args : (string * arg) list;
}

(* --- pipeline phase ids ------------------------------------------------ *)

let pid_frontend = 1
let pid_phase1 = 2
let pid_phase2 = 3
let pid_stage = 4
let pid_exec = 5

let pid_of_phase = function 2 -> pid_phase2 | _ -> pid_phase1

let pid_name = function
  | 1 -> "frontend (parse, bind, memo)"
  | 2 -> "phase-1 optimization"
  | 3 -> "phase-2 CSE re-optimization"
  | 4 -> "stage-graph construction"
  | 5 -> "execution"
  | _ -> "other"

(* --- recording --------------------------------------------------------- *)

let dummy_event =
  { kind = Instant; name = ""; pid = 0; tid = 0; ts = 0.0; args = [] }

type buf = {
  mutable gen : int;  (* trace generation this buffer belongs to *)
  mutable tid : int;
  mutable evs : event array;
  mutable n : int;
  mutable head : int;  (* ring mode: oldest slot once the buffer is full *)
  mutable last_ts : float;
  mutable dropped : int;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Ring mode: full buffers overwrite their oldest event (flight
   recorder) instead of dropping the newest. *)
let ring_flag = Atomic.make false
let ring () = Atomic.get ring_flag

let mu = Mutex.create ()
let generation = ref 0
let capacity = ref (1 lsl 18)
let started_at = ref 0.0
let registry : buf list ref = ref []  (* newest first; reversed at collect *)

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        gen = -1;
        tid = 0;
        evs = [||];
        n = 0;
        head = 0;
        last_ts = 0.0;
        dropped = 0;
      })

(* The calling domain's buffer for the current generation, (re)registered
   under the mutex when the domain first records in this generation. *)
let my_buf () =
  let b = Domain.DLS.get buf_key in
  let gen = !generation in
  if b.gen <> gen then begin
    b.gen <- gen;
    b.tid <- Sutil.Pool.current_slot ();
    b.evs <- [||];
    b.n <- 0;
    b.head <- 0;
    b.last_ts <- 0.0;
    b.dropped <- 0;
    Mutex.protect mu (fun () -> registry := b :: !registry)
  end;
  b

let now_us () = (Unix.gettimeofday () -. !started_at) *. 1e6

let append kind ~pid name args =
  let b = my_buf () in
  if b.n >= !capacity then
    if Atomic.get ring_flag then begin
      (* overwrite the oldest event; the buffer is exactly [capacity]
         long once full (growth is capped there), [head] is the oldest
         slot and the overwritten event counts as dropped *)
      let ts = Float.max (now_us ()) b.last_ts in
      b.last_ts <- ts;
      b.evs.(b.head) <- { kind; name; pid; tid = b.tid; ts; args };
      b.head <- (b.head + 1) mod Array.length b.evs;
      b.dropped <- b.dropped + 1
    end
    else b.dropped <- b.dropped + 1
  else begin
    if b.n >= Array.length b.evs then begin
      let len = max 1024 (min !capacity (2 * Array.length b.evs)) in
      let evs = Array.make len dummy_event in
      Array.blit b.evs 0 evs 0 b.n;
      b.evs <- evs
    end;
    let ts = Float.max (now_us ()) b.last_ts in
    b.last_ts <- ts;
    b.evs.(b.n) <- { kind; name; pid; tid = b.tid; ts; args };
    b.n <- b.n + 1
  end

let begin_span ~pid ?(args = []) name =
  if enabled () then append Begin ~pid name args

let end_span ~pid ?(args = []) name =
  if enabled () then append End ~pid name args

let instant ~pid ?(args = []) name =
  if enabled () then append Instant ~pid name args

let with_span ~pid ?args name f =
  if not (enabled ()) then f ()
  else begin
    append Begin ~pid name (Option.value ~default:[] args);
    Fun.protect ~finally:(fun () -> append End ~pid name []) f
  end

(* --- control ----------------------------------------------------------- *)

let start ?capacity:(cap = 1 lsl 18) ?(ring = false) () =
  Mutex.protect mu (fun () ->
      incr generation;
      registry := [];
      capacity := max 1024 cap;
      started_at := Unix.gettimeofday ());
  Atomic.set ring_flag ring;
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

(* The current trace epoch.  [start] begins a new epoch: buffers from
   earlier epochs are dropped at the next recording, timestamps restart
   at zero and [collect] returns this epoch's events only — the per-run
   scoping the serve loop relies on for back-to-back runs in one
   process. *)
let epoch () = Mutex.protect mu (fun () -> !generation)

let dropped () =
  Mutex.protect mu (fun () ->
      List.fold_left (fun acc b -> acc + b.dropped) 0 !registry)

(* --- collection -------------------------------------------------------- *)

(* Merge every registered buffer: concatenate in registration order, then
   stable-sort by timestamp.  Equal timestamps keep registration order,
   so the per-buffer recording order -- and with it span nesting -- is
   preserved within a tid.  Timestamps are re-clamped per tid so that
   successive pool generations mapping distinct domains to the same slot
   still yield a monotone per-tid stream.  Call only after worker domains
   have been joined (the pool's [with_pool] has returned). *)
let collect () =
  let bufs = Mutex.protect mu (fun () -> List.rev !registry) in
  (* a wrapped ring buffer holds its oldest event at [head]; unwrap so
     the per-buffer stream is in recording order *)
  let events_of b =
    if b.head = 0 then Array.to_list (Array.sub b.evs 0 b.n)
    else
      Array.to_list (Array.sub b.evs b.head (b.n - b.head))
      @ Array.to_list (Array.sub b.evs 0 b.head)
  in
  let all = List.concat_map events_of bufs in
  let all = List.stable_sort (fun a b -> Float.compare a.ts b.ts) all in
  let last : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (e : event) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt last e.tid) in
      let ts = Float.max e.ts prev in
      Hashtbl.replace last e.tid ts;
      if ts = e.ts then e else { e with ts })
    all

(* --- Chrome trace-event JSON ------------------------------------------- *)

let json_of_arg = function
  | Str s -> Json.Str s
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f

let ph_of_kind = function Begin -> "B" | End -> "E" | Instant -> "i"

(* Streamed through a buffer rather than built as one [Json.t]: traces
   can hold hundreds of thousands of events.  [~ring:true] marks the
   document as a flight-recorder dump (top-level ["ring": true]), which
   tells the checker to expect dropped-oldest truncation. *)
let write_chrome ?(ring = false) oc (events : event list) =
  let buf = Buffer.create (1 lsl 16) in
  let flush_buf () =
    output_string oc (Buffer.contents buf);
    Buffer.clear buf
  in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  let first = ref true in
  let emit fields =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf "  {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Json.escape k);
        Buffer.add_string buf ": ";
        Buffer.add_string buf v)
      fields;
    Buffer.add_string buf "}";
    if Buffer.length buf > 1 lsl 15 then flush_buf ()
  in
  (* metadata: name the phases (pids) and worker slots (tids) *)
  let pids = List.sort_uniq compare (List.map (fun (e : event) -> e.pid) events) in
  let tids = List.sort_uniq compare (List.map (fun (e : event) -> e.tid) events) in
  List.iter
    (fun pid ->
      emit
        [
          ("name", {|"process_name"|});
          ("ph", {|"M"|});
          ("pid", string_of_int pid);
          ("tid", "0");
          ("args", Printf.sprintf "{\"name\": %s}" (Json.escape (pid_name pid)));
        ];
      emit
        [
          ("name", {|"process_sort_index"|});
          ("ph", {|"M"|});
          ("pid", string_of_int pid);
          ("tid", "0");
          ("args", Printf.sprintf "{\"sort_index\": %d}" pid);
        ])
    pids;
  List.iter
    (fun tid ->
      List.iter
        (fun pid ->
          emit
            [
              ("name", {|"thread_name"|});
              ("ph", {|"M"|});
              ("pid", string_of_int pid);
              ("tid", string_of_int tid);
              ("args",
               Printf.sprintf "{\"name\": %s}"
                 (Json.escape (Printf.sprintf "worker %d" tid)));
            ])
        pids)
    tids;
  List.iter
    (fun e ->
      let args =
        match e.args with
        | [] -> []
        | args ->
            [
              ( "args",
                "{"
                ^ String.concat ", "
                    (List.map
                       (fun (k, v) ->
                         Printf.sprintf "%s: %s" (Json.escape k)
                           (String.trim (Json.to_string (json_of_arg v))))
                       args)
                ^ "}" );
            ]
      in
      let scope =
        match e.kind with Instant -> [ ("s", {|"t"|}) ] | _ -> []
      in
      emit
        ([
           ("name", Json.escape e.name);
           ("ph", Printf.sprintf "%S" (ph_of_kind e.kind));
           ("ts", Printf.sprintf "%.3f" e.ts);
           ("pid", string_of_int e.pid);
           ("tid", string_of_int e.tid);
         ]
        @ scope @ args))
    events;
  Buffer.add_string buf "\n]";
  if ring then Buffer.add_string buf ",\n\"ring\": true";
  Buffer.add_string buf "}\n";
  flush_buf ()

(* Write a Chrome trace file, closing the descriptor and removing the
   partial file if anything fails mid-write (ENOSPC, permissions): a
   truncated JSON left behind would make a later [check-trace] choke on
   what looks like a complete artifact. *)
let export ?(ring = false) ~path events =
  let oc = open_out path in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !ok then try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_chrome ~ring oc events;
      (* surface buffered-write failures here, not at close_out_noerr *)
      flush oc;
      ok := true)

let chrome_string ?(ring = false) events =
  let path = Filename.temp_file "trace" ".json" in
  (* the temp file must not outlive the round-trip, whichever way it
     ends: remove it on success and on any write/read failure *)
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          write_chrome ~ring oc events;
          flush oc);
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

(* --- re-reading (the CI checker's entry point) ------------------------- *)

exception Malformed of string

let arg_of_json = function
  | Json.Str s -> Str s
  | Json.Num f when Float.is_integer f -> Int (int_of_float f)
  | Json.Num f -> Float f
  | Json.Bool b -> Str (string_of_bool b)
  | _ -> Str "?"

(* Parse a Chrome trace-event document; the [bool] is the top-level
   ["ring"] flag written by flight-recorder dumps. *)
let parse_doc (text : string) : bool * event list =
  let doc =
    try Json.parse text
    with Json.Parse_error msg -> raise (Malformed ("bad JSON: " ^ msg))
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> raise (Malformed "no traceEvents array")
  in
  let ring =
    match Json.member "ring" doc with Some (Json.Bool b) -> b | _ -> false
  in
  ( ring,
    List.filter_map
    (fun ev ->
      let str name = Option.bind (Json.member name ev) Json.to_str in
      let num name = Option.bind (Json.member name ev) Json.to_float in
      match str "ph" with
      | Some "M" -> None  (* metadata *)
      | Some ph ->
          let kind =
            match ph with
            | "B" -> Begin
            | "E" -> End
            | "i" -> Instant
            | other -> raise (Malformed ("unknown event phase " ^ other))
          in
          let req name get =
            match get name with
            | Some v -> v
            | None -> raise (Malformed ("event missing " ^ name))
          in
          let args =
            match Json.member "args" ev with
            | Some (Json.Obj fields) ->
                List.map (fun (k, v) -> (k, arg_of_json v)) fields
            | _ -> []
          in
          Some
            {
              kind;
              name = req "name" str;
              pid = int_of_float (req "pid" num);
              tid = int_of_float (req "tid" num);
              ts = req "ts" num;
              args;
            }
      | None -> raise (Malformed "event missing ph"))
      events )

let parse_chrome text = snd (parse_doc text)

(* --- well-formedness --------------------------------------------------- *)

(* The properties every collected (or re-parsed) trace must satisfy:
   within each tid, timestamps never decrease, every End matches the
   nearest unclosed Begin by name and pid, and no span is left open.
   Instants may appear anywhere.

   [~ring:true] (flight-recorder dumps) relaxes exactly the two shapes
   dropped-oldest truncation produces and nothing more: an End arriving
   at an *empty* stack (its Begin was overwritten — in a well-formed
   stream, anything opened after that Begin has already closed by then,
   so the stack is provably empty at such an End) and spans still open
   at the end of the stream (the dump was taken mid-run).  An End that
   mismatches a *nonempty* stack top can never come from truncation and
   stays an error, as do timestamp regressions. *)
let check ?(ring = false) (events : event list) : string list =
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let by_tid : (int, event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : event) ->
      match Hashtbl.find_opt by_tid e.tid with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add by_tid e.tid (ref [ e ]))
    events;
  let tids = Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [] in
  List.iter
    (fun tid ->
      let evs = List.rev !(Hashtbl.find by_tid tid) in
      let last_ts = ref neg_infinity in
      let stack = ref [] in
      List.iter
        (fun e ->
          if e.ts < !last_ts then
            error "tid %d: timestamp went backwards at %S (%.3f < %.3f)" tid
              e.name e.ts !last_ts;
          last_ts := Float.max !last_ts e.ts;
          match e.kind with
          | Begin -> stack := (e.name, e.pid) :: !stack
          | End -> (
              match !stack with
              | (name, pid) :: rest ->
                  if name <> e.name || pid <> e.pid then
                    error
                      "tid %d: end of %S (pid %d) does not match open span %S \
                       (pid %d)"
                      tid e.name e.pid name pid;
                  stack := rest
              | [] ->
                  if not ring then
                    error "tid %d: end of %S with no open span" tid e.name)
          | Instant -> ())
        evs;
      if not ring then
        List.iter
          (fun (name, _) -> error "tid %d: span %S never ended" tid name)
          !stack)
    (List.sort compare tids);
  List.rev !errors
