(* A typed registry of named counters, gauges and histograms with label
   sets — [Sutil.Counters] structured: instruments live in an explicit
   registry value (one per serve engine, one per profiler) instead of a
   single process-global table, so tests and long-running engines can
   snapshot and reset their own metrics without seeing anyone else's.

   The instrument handles are the atomics themselves: after the one
   mutex-protected get-or-create per (name, labels), recording is a
   plain [Atomic] operation (or a {!Hist} observation) — lock-free and
   domain-safe.  Hot paths should resolve the handle once and hold it.

   Label sets are small association lists, normalized (key-sorted) at
   registration so label order never splits a series.  Cardinality
   discipline is the caller's job: labels must come from small closed
   sets (tenant, phase, kernel, stage, path) — never per-session or
   per-query ids, which would grow the registry without bound. *)

type labels = (string * string) list

type value =
  | Count of int
  | Value of float
  | Dist of Hist.summary

type row = { name : string; labels : labels; value : value }

type instrument =
  | Counter of int Atomic.t
  | Gauge of float Atomic.t
  | Histogram of Hist.t

type t = {
  mu : Mutex.t;
  tbl : (string * labels, instrument) Hashtbl.t;
}

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

(* Key-sorted so {a=1,b=2} and {b=2,a=1} are the same series.  Duplicate
   keys are a caller bug; one representative survives. *)
let norm labels =
  match labels with
  | [] | [ _ ] -> labels
  | _ -> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let full_name name labels =
  match norm labels with
  | [] -> name
  | labels ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let find_or_add t name labels mk =
  let labels = norm labels in
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.tbl (name, labels) with
      | Some i -> i
      | None ->
          let i = mk () in
          Hashtbl.add t.tbl (name, labels) i;
          i)

let kind_error name labels want =
  invalid_arg
    (Printf.sprintf "Metrics: %s is not a %s" (full_name name labels) want)

let counter t ?(labels = []) name =
  match find_or_add t name labels (fun () -> Counter (Atomic.make 0)) with
  | Counter a -> a
  | _ -> kind_error name labels "counter"

let gauge t ?(labels = []) name =
  match find_or_add t name labels (fun () -> Gauge (Atomic.make 0.0)) with
  | Gauge a -> a
  | _ -> kind_error name labels "gauge"

let histogram t ?(labels = []) name =
  match
    find_or_add t name labels (fun () ->
        Histogram (Hist.make (full_name name (norm labels))))
  with
  | Histogram h -> h
  | _ -> kind_error name labels "histogram"

let bump t ?labels ?(by = 1) name =
  ignore (Atomic.fetch_and_add (counter t ?labels name) by)

let set t ?labels name v = Atomic.set (gauge t ?labels name) v

let observe t ?labels name v = Hist.observe (histogram t ?labels name) v

let get t ?(labels = []) name =
  let labels = norm labels in
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.tbl (name, labels) with
      | Some (Counter a) -> Atomic.get a
      | _ -> 0)

(* --- snapshots --------------------------------------------------------- *)

let compare_row a b =
  match String.compare a.name b.name with
  | 0 -> compare a.labels b.labels
  | c -> c

let snapshot t : row list =
  let entries =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold (fun k i acc -> (k, i) :: acc) t.tbl [])
  in
  entries
  |> List.map (fun ((name, labels), i) ->
         let value =
           match i with
           | Counter a -> Count (Atomic.get a)
           | Gauge a -> Value (Atomic.get a)
           | Histogram h -> Dist (Hist.summarize h)
         in
         { name; labels; value })
  |> List.sort compare_row

let reset t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter a -> Atomic.set a 0
          | Gauge a -> Atomic.set a 0.0
          | Histogram h -> Hist.reset h)
        t.tbl)

(* --- exposition -------------------------------------------------------- *)

(* Prometheus-style metric names: [a-zA-Z0-9_:] only. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" (prom_name k) v)
             labels)
      ^ "}"

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Prometheus-style text exposition.  Counters and gauges are one sample
   each; histograms are exposed summary-style: quantile samples plus
   [_count] and [_sum]. *)
let to_prom (rows : row list) =
  let buf = Buffer.create 1024 in
  let sample name labels v =
    Buffer.add_string buf (prom_name name);
    Buffer.add_string buf (prom_labels labels);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (prom_float v);
    Buffer.add_char buf '\n'
  in
  let typed = Hashtbl.create 16 in
  let declare name ty =
    if not (Hashtbl.mem typed (name, ty)) then begin
      Hashtbl.add typed (name, ty) ();
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" (prom_name name) ty)
    end
  in
  List.iter
    (fun r ->
      match r.value with
      | Count c ->
          declare r.name "counter";
          sample r.name r.labels (float_of_int c)
      | Value v ->
          declare r.name "gauge";
          sample r.name r.labels v
      | Dist s ->
          declare r.name "summary";
          sample r.name (r.labels @ [ ("quantile", "0.5") ]) s.Hist.p50;
          sample r.name (r.labels @ [ ("quantile", "0.9") ]) s.Hist.p90;
          sample (r.name ^ "_count") r.labels (float_of_int s.Hist.count);
          sample (r.name ^ "_sum") r.labels s.Hist.sum)
    rows;
  Buffer.contents buf

let json_of_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json (rows : row list) : Json.t =
  Json.Arr
    (List.map
       (fun r ->
         let base =
           [ ("name", Json.Str r.name); ("labels", json_of_labels r.labels) ]
         in
         let rest =
           match r.value with
           | Count c ->
               [
                 ("kind", Json.Str "counter");
                 ("value", Json.Num (float_of_int c));
               ]
           | Value v -> [ ("kind", Json.Str "gauge"); ("value", Json.Num v) ]
           | Dist s ->
               [
                 ("kind", Json.Str "histogram");
                 ("count", Json.Num (float_of_int s.Hist.count));
                 ("sum", Json.Num s.Hist.sum);
                 ("p50", Json.Num s.Hist.p50);
                 ("p90", Json.Num s.Hist.p90);
                 ("min", Json.Num s.Hist.min);
                 ("max", Json.Num s.Hist.max);
               ]
         in
         Json.Obj (base @ rest))
       rows)
