(* The flight recorder: an always-on bounded ring of recent spans and
   events, dumped on demand for post-mortems.

   [enable] turns on ring-mode tracing (reusing [Trace]'s per-domain
   buffers) with a modest capacity, but only when no explicit trace
   session is active — a user-requested [--trace] always wins, and the
   dump then simply exports whatever that session recorded.  [dump]
   writes the current window as a Chrome trace (marked with the ring
   flag so [check-trace] tolerates dropped-oldest truncation) plus an
   optional pre-rendered metrics snapshot, and returns the paths it
   wrote.  Serve calls it on recovery exhaustion, audit failure and the
   [#dump] protocol verb, so a crash never loses the in-flight window
   to a run that was not started under [--trace]. *)

let default_capacity = 1 lsl 14

(* Whether [enable] owns the current trace session (vs. a --trace run). *)
let owner = Atomic.make false

let enable ?(capacity = default_capacity) () =
  if not (Trace.enabled ()) then begin
    Trace.start ~capacity ~ring:true ();
    Atomic.set owner true
  end

let active () = Atomic.get owner

let write_file path text =
  let oc = open_out path in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !ok then try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      output_string oc text;
      flush oc;
      ok := true)

(* Dump the recorder's window: [<prefix>-flight-trace.json] (Chrome
   trace, ring-flagged per the session's mode) and, when [metrics] is
   given, [<prefix>-flight-metrics.json].  Only call with worker
   domains joined (between runs), like [Trace.collect].  Returns the
   paths written, in write order. *)
let dump ?metrics ~prefix () =
  let trace_path = prefix ^ "-flight-trace.json" in
  Trace.export ~ring:(Trace.ring ()) ~path:trace_path (Trace.collect ());
  let metric_paths =
    match metrics with
    | None -> []
    | Some text ->
        let path = prefix ^ "-flight-metrics.json" in
        write_file path text;
        [ path ]
  in
  trace_path :: metric_paths
