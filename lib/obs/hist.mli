(** Log-bucketed histograms in a named registry, the distribution-shaped
    companion to {!Sutil.Counters}.

    Observations are bucketed by their binary exponent into power-of-two
    buckets spanning [2{^-41}..2{^39}] (seconds, rows, anything
    positive); zero and negatives fall into the lowest bucket.
    Recording is lock-free and domain-safe: one atomic bucket increment
    plus CAS-maintained running sum and max. *)

type t

type summary = {
  count : int;
  sum : float;
  p50 : float;  (** upper bound of the median bucket, clamped to [max] *)
  p90 : float;
  max : float;
  buckets : (float * int) list;
      (** nonzero buckets as [(upper_bound, count)], ascending *)
}

(** Find or register the histogram named [name]. *)
val hist : string -> t

(** Record one observation.  Domain-safe. *)
val observe : t -> float -> unit

val name : t -> string
val summarize : t -> summary

(** All histograms with at least one observation, sorted by name. *)
val snapshot : unit -> (string * summary) list

(** Zero every registered histogram (tests, repeated bench runs). *)
val reset_all : unit -> unit

(** Render the nonempty registry, one line per histogram, inside an
    open vertical box. *)
val pp : Format.formatter -> unit -> unit
