(** Log-bucketed histograms in a named registry, the distribution-shaped
    companion to {!Sutil.Counters}.

    Observations are bucketed by their binary exponent into power-of-two
    buckets spanning [2{^-41}..2{^39}] (seconds, rows, anything
    positive); zero and negatives fall into the lowest bucket, and
    non-finite observations are clamped to zero rather than poisoning
    the tracked extremes.  Recording is lock-free and domain-safe: one
    atomic bucket increment plus CAS-maintained running sum, min and
    max. *)

type t

type summary = {
  count : int;
  sum : float;
  p50 : float;
      (** upper bound of the median bucket, clamped into [[min, max]]:
          0 observations report 0, a single observation reports itself *)
  p90 : float;
  min : float;  (** exact smallest observation; 0 when empty *)
  max : float;  (** exact largest observation; 0 when empty *)
  buckets : (float * int) list;
      (** nonzero buckets as [(upper_bound, count)], ascending *)
}

(** Find or register the histogram named [name]. *)
val hist : string -> t

(** A free-standing histogram, not in the global registry — the building
    block for label-scoped registries ({!Metrics}) whose lifecycle the
    caller owns. *)
val make : string -> t

(** Record one observation.  Domain-safe. *)
val observe : t -> float -> unit

val name : t -> string
val summarize : t -> summary

(** Zero one histogram (registered or not). *)
val reset : t -> unit

(** All registered histograms with at least one observation, sorted by
    name. *)
val snapshot : unit -> (string * summary) list

(** Zero every registered histogram (tests, repeated bench runs). *)
val reset_all : unit -> unit

(** Render the nonempty registry, one line per histogram, inside an
    open vertical box. *)
val pp : Format.formatter -> unit -> unit
