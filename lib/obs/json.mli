(** Minimal JSON value type with a writer and a full-grammar parser.

    The observability layer both emits (Chrome trace files, run reports)
    and re-reads (the CI trace checker) its own JSON; this module keeps
    that round-trip dependency-free.  The writer pretty-prints with
    two-space indentation; numbers that are integers print without a
    fraction, other finite doubles as [%.17g] (round-trip exact),
    non-finite as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** JSON string literal for [s], quotes included. *)
val escape : string -> string

(** Pretty-printed document, newline-terminated. *)
val to_string : t -> string

exception Parse_error of string

(** Parse a complete JSON document.  Raises {!Parse_error} with an offset
    on malformed input. *)
val parse : string -> t

(** Field of an object; [None] on a non-object or a missing field. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
