(** The flight recorder: an always-on bounded ring of recent spans and
    events (ring-mode {!Trace}), dumped on demand so post-mortems never
    require rerunning under [--trace].

    Serve enables it at startup and dumps on recovery exhaustion, audit
    failure, or the [#dump] protocol verb. *)

(** Begin ring-mode tracing with a bounded window (default [2{^14}]
    events per domain) — unless a trace session is already active
    (an explicit [--trace] run), which is left untouched. *)
val enable : ?capacity:int -> unit -> unit

(** Whether {!enable} owns the current trace session. *)
val active : unit -> bool

(** Dump the current window: writes [<prefix>-flight-trace.json]
    (Chrome trace, ring-flagged when recording in ring mode) and, when
    [metrics] is given (a pre-rendered snapshot),
    [<prefix>-flight-metrics.json].  Only call with worker domains
    joined, like {!Trace.collect}.  Returns the paths written. *)
val dump : ?metrics:string -> prefix:string -> unit -> string list
