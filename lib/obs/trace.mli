(** Begin/end spans and instant events, recorded into per-domain buffers
    and exported as Chrome trace-event JSON (loadable in Perfetto).

    Recording entry points are safe to call from any domain: each domain
    appends to its own buffer without locking.  When tracing is disabled
    (the default) every entry point is a single atomic load and a branch
    — no allocation — so instrumentation can stay in hot loops.  Event
    [pid] is the pipeline phase, [tid] the worker-domain slot of the
    executor's pool ({!Sutil.Pool.current_slot}; the main domain is 0).

    Typical lifecycle: {!start}, run the pipeline, {!stop}, {!collect},
    {!write_chrome}.  {!collect} must only be called after worker
    domains have been joined (i.e. outside [Sutil.Pool.with_pool]). *)

type arg = Str of string | Int of int | Float of float

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  pid : int;  (** pipeline phase, see the [pid_*] constants *)
  tid : int;  (** worker-domain slot; 0 is the main domain *)
  ts : float;  (** microseconds since {!start}, monotone per [tid] *)
  args : (string * arg) list;
}

(** {1 Pipeline phases} *)

val pid_frontend : int  (** parse, bind, memo construction *)

val pid_phase1 : int  (** phase-1 (conventional) optimization *)

val pid_phase2 : int  (** phase-2 CSE re-optimization *)

val pid_stage : int  (** stage-graph construction *)

val pid_exec : int  (** staged execution *)

(** Phase id for an optimizer pass number (1 or 2). *)
val pid_of_phase : int -> int

(** Human-readable phase name, used for Chrome process metadata. *)
val pid_name : int -> string

(** {1 Control} *)

(** Enable tracing into fresh buffers.  [capacity] bounds the events
    kept per domain (default [2{^18}]); beyond it new events are dropped
    and counted, never overwritten, so recorded spans stay balanced.
    With [ring:true] (the flight recorder) a full buffer instead
    overwrites its {e oldest} event, keeping the most recent window —
    dumps may then carry orphan [End] events at the head, which
    {!check} [~ring:true] tolerates. *)
val start : ?capacity:int -> ?ring:bool -> unit -> unit

(** Disable tracing.  Recorded events remain available to {!collect}. *)
val stop : unit -> unit

(** Whether the current trace session records in ring mode. *)
val ring : unit -> bool

(** The current trace epoch.  Each {!start} begins a new epoch:
    timestamps restart at zero, buffers from earlier epochs are dropped,
    and {!collect} returns this epoch's events only.  Long-running
    callers (the serve loop) use the epoch to assert per-run scoping
    across back-to-back runs in one process. *)
val epoch : unit -> int

val enabled : unit -> bool

(** Events dropped to capacity since {!start}, summed over domains. *)
val dropped : unit -> int

(** {1 Recording}

    All no-ops when disabled.  Spans must nest properly per domain:
    end the most recently begun span first.  [args] given to a
    recording call are evaluated by the caller even when tracing is
    off — guard the construction with {!enabled} in hot paths. *)

val begin_span : pid:int -> ?args:(string * arg) list -> string -> unit
val end_span : pid:int -> ?args:(string * arg) list -> string -> unit
val instant : pid:int -> ?args:(string * arg) list -> string -> unit

(** [with_span ~pid name f] wraps [f] in a span; the span is closed even
    if [f] raises. *)
val with_span : pid:int -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** {1 Collection and export} *)

(** Merge all per-domain buffers into one stream, stable-sorted by
    timestamp with per-[tid] order (and hence span nesting) preserved.
    Only call after the worker pool has been joined. *)
val collect : unit -> event list

(** Write events as a Chrome trace-event JSON document, with metadata
    records naming each phase (process) and worker (thread).
    [ring:true] marks the document as a flight-recorder dump with a
    top-level ["ring": true] field, recovered by {!parse_doc}. *)
val write_chrome : ?ring:bool -> out_channel -> event list -> unit

(** {!write_chrome} to a file.  The descriptor is closed on every path;
    if the write fails (disk full, permissions) the partial file is
    removed before the exception propagates, so no truncated trace is
    left looking like a complete artifact. *)
val export : ?ring:bool -> path:string -> event list -> unit

(** {!write_chrome} to a string (convenience for tests). *)
val chrome_string : ?ring:bool -> event list -> string

exception Malformed of string

(** Re-read a Chrome trace-event document written by {!write_chrome}
    (metadata records are skipped).  Raises {!Malformed} on documents
    that are not traces. *)
val parse_chrome : string -> event list

(** Like {!parse_chrome}, also recovering the top-level ["ring"] flag
    (false when absent) so checkers know to expect ring truncation. *)
val parse_doc : string -> bool * event list

(** Well-formedness: per [tid], timestamps never decrease, every [End]
    matches the nearest unclosed [Begin] (same name and pid), and no
    span is left open.  Returns human-readable violations, [[]] if the
    trace is well-formed.  [~ring:true] (flight-recorder dumps)
    additionally accepts the two shapes dropped-oldest truncation
    produces — an [End] at an empty stack and spans still open at the
    end of the stream — while keeping every other violation an error. *)
val check : ?ring:bool -> event list -> string list
