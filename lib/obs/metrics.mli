(** A typed registry of named counters, gauges and histograms with
    label sets — {!Sutil.Counters} structured and snapshot-able.

    A registry is an explicit value (one per serve engine, one per
    profiler) rather than a process-global table, so long-running
    engines and tests can snapshot and reset their own metrics in
    isolation.  After the one locked get-or-create per
    [(name, labels)] series, recording is a plain [Atomic] operation
    (or a {!Hist} observation): lock-free and domain-safe.  Hot paths
    should resolve the instrument handle once and hold it.

    Labels are normalized (key-sorted) at registration, so label order
    never splits a series.  Keep label values in small closed sets
    (tenant, phase, kernel, stage, path) — never per-session or
    per-query ids, which would grow the registry without bound. *)

type labels = (string * string) list

type value =
  | Count of int  (** counter reading *)
  | Value of float  (** gauge reading *)
  | Dist of Hist.summary  (** histogram summary *)

type row = { name : string; labels : labels; value : value }

type t

val create : unit -> t

(** Find or register; raises [Invalid_argument] when the series exists
    with a different instrument kind. *)

val counter : t -> ?labels:labels -> string -> int Atomic.t

val gauge : t -> ?labels:labels -> string -> float Atomic.t

val histogram : t -> ?labels:labels -> string -> Hist.t

(** {1 One-shot recording} (resolves the handle each call) *)

val bump : t -> ?labels:labels -> ?by:int -> string -> unit

val set : t -> ?labels:labels -> string -> float -> unit

val observe : t -> ?labels:labels -> string -> float -> unit

(** Current reading of a counter; 0 when the series does not exist (or
    is not a counter). *)
val get : t -> ?labels:labels -> string -> int

(** {1 Snapshots and exposition} *)

(** Every registered series, sorted by name then labels. *)
val snapshot : t -> row list

(** Zero every instrument, keeping the series registered. *)
val reset : t -> unit

(** Prometheus-style text: [# TYPE] declarations, one sample per
    counter/gauge, summary-style quantile + [_count] + [_sum] samples
    per histogram.  Metric and label names are sanitized to
    [[a-zA-Z0-9_:]]. *)
val to_prom : row list -> string

(** JSON array of row objects (dependency-free, via {!Json}). *)
val to_json : row list -> Json.t

(** [name{k=v,...}] rendering, the display name used for histogram
    series. *)
val full_name : string -> labels -> string
