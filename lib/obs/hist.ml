(* Log-bucketed histograms over named registry, mirroring the shape of
   [Sutil.Counters] so reporting code can treat both uniformly.

   Observations land in power-of-two buckets chosen by the float's
   binary exponent ([Float.frexp]) — one array index computation, no
   allocation, no comparison ladder.  Buckets are [int Atomic.t]
   increments; the running sum, min and max are CAS loops over boxed
   float atomics.  All of it is safe to call concurrently from pool
   workers.

   Quantiles are read from the cumulative bucket counts and reported as
   the matched bucket's upper bound — an overestimate by at most 2x,
   which is the usual contract for log-bucketed histograms and plenty
   for "where did the time go" questions.  The tracked extremes are
   exact, and quantiles are clamped into [min, max]: an empty histogram
   reports 0 everywhere, and a single observation reports itself as
   both p50 and p90 rather than its bucket's boundary. *)

(* Bucket [k] covers [2^(k-41), 2^(k-40)); k = frexp exponent + 40,
   clamped.  Bucket 0 also absorbs zero and negative observations. *)
let nbuckets = 80
let bias = 40

let bucket_of v =
  if v <= 0.0 || not (Float.is_finite v) then if v > 0.0 then nbuckets - 1 else 0
  else
    let _, e = Float.frexp v in
    max 0 (min (nbuckets - 1) (e + bias))

let upper_bound k = Float.ldexp 1.0 (k - bias)

type t = {
  name : string;
  buckets : int Atomic.t array;
  sum : float Atomic.t;
  minv : float Atomic.t;
  maxv : float Atomic.t;
}

type summary = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  min : float;
  max : float;
  buckets : (float * int) list;  (* nonzero buckets: upper bound, count *)
}

let make name =
  {
    name;
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    sum = Atomic.make 0.0;
    minv = Atomic.make infinity;
    maxv = Atomic.make neg_infinity;
  }

let mu = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let hist name =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h = make name in
          Hashtbl.add registry name h;
          h)

let rec cas_update a f =
  let cur = Atomic.get a in
  let next = f cur in
  if next <> cur && not (Atomic.compare_and_set a cur next) then cas_update a f

let observe (h : t) v =
  (* a NaN or infinite observation would poison the CAS-maintained
     extremes (Float.max nan _ = nan) and with them every later
     quantile; clamp it to the lowest bucket's value instead *)
  let v = if Float.is_finite v then v else 0.0 in
  Atomic.incr h.buckets.(bucket_of v);
  cas_update h.sum (fun s -> s +. v);
  cas_update h.minv (fun m -> Float.min m v);
  cas_update h.maxv (fun m -> Float.max m v)

let name h = h.name

let summarize (h : t) =
  let counts = Array.map Atomic.get h.buckets in
  let count = Array.fold_left ( + ) 0 counts in
  if count = 0 then
    { count = 0; sum = 0.0; p50 = 0.0; p90 = 0.0; min = 0.0; max = 0.0; buckets = [] }
  else begin
    let finite_or v fallback = if Float.is_finite v then v else fallback in
    let max = finite_or (Atomic.get h.maxv) 0.0 in
    let min = finite_or (Atomic.get h.minv) 0.0 in
    let quantile q =
      let target = Float.to_int (Float.round (q *. float_of_int count)) in
      let target = Stdlib.max 1 (Stdlib.min count target) in
      let k = ref 0 and cum = ref 0 in
      while !cum < target && !k < nbuckets do
        cum := !cum + counts.(!k);
        if !cum < target then incr k
      done;
      (* the bucket bound is only an upper estimate; the tracked extremes
         are exact, so no quantile may leave [min, max] — and with one
         observation both quantiles collapse to that exact value *)
      Float.max min (Float.min max (upper_bound !k))
    in
    let buckets = ref [] in
    for k = nbuckets - 1 downto 0 do
      if counts.(k) > 0 then buckets := (upper_bound k, counts.(k)) :: !buckets
    done;
    {
      count;
      sum = Atomic.get h.sum;
      p50 = quantile 0.5;
      p90 = quantile 0.9;
      min;
      max;
      buckets = !buckets;
    }
  end

let reset (h : t) =
  Array.iter (fun b -> Atomic.set b 0) h.buckets;
  Atomic.set h.sum 0.0;
  Atomic.set h.minv infinity;
  Atomic.set h.maxv neg_infinity

let snapshot () =
  let hs = Mutex.protect mu (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) registry []) in
  hs
  |> List.filter_map (fun h ->
         let s = summarize h in
         if s.count = 0 then None else Some (h.name, s))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () =
  Mutex.protect mu (fun () -> Hashtbl.iter (fun _ h -> reset h) registry)

let pp ppf () =
  let snap = snapshot () in
  if snap <> [] then begin
    Fmt.pf ppf "histograms:@,";
    List.iter
      (fun (n, s) ->
        Fmt.pf ppf "  %-26s count=%-6d sum=%-10.4g p50=%-8.3g p90=%-8.3g max=%.3g@,"
          n s.count s.sum s.p50 s.p90 s.max)
      snap
  end
