(* Minimal JSON: a value type, a writer and a parser.

   The observability layer emits (Chrome trace files, run reports) and
   re-reads (the trace well-formedness checker in CI) its own JSON, so a
   dependency-free round-trip is all that is needed.  The parser is a
   plain recursive-descent over the full grammar -- it accepts any JSON,
   not just what the writers produce, so hand-edited or tool-rewritten
   trace files still check. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- writing ----------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

(* Integers print as integers (counter values, ids); everything else as
   %.17g, which round-trips doubles exactly. *)
let number_to buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null"

let rec write_to ?(indent = 0) buf v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> number_to buf f
  | Str s -> escape_to buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_string buf "[";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_char buf '\n';
          Buffer.add_string buf (pad (indent + 2));
          write_to ~indent:(indent + 2) buf item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_string buf "]"
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_char buf '\n';
          Buffer.add_string buf (pad (indent + 2));
          escape_to buf k;
          Buffer.add_string buf ": ";
          write_to ~indent:(indent + 2) buf item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_string buf "}"

let to_string v =
  let buf = Buffer.create 4096 in
  write_to buf v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* ASCII only; anything above is replaced, the trace
                      writer never emits non-ASCII *)
                   Buffer.add_char buf
                     (if code < 0x80 then Char.chr code else '?');
                   pos := !pos + 5
               | _ -> fail "unknown escape");
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

(* --- accessors --------------------------------------------------------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
