(** Logical-DAG lint over binder output.

    Checks that every column an operator references resolves in its
    children's schemas (SA020) and that the statistics derived for every
    node are sane: finite, non-negative row counts, row widths and NDVs
    (SA021), with a warning when a column's NDV exceeds the node's
    estimated row count (SA022). *)

(** Sanity diagnostics for one statistics record (shared with the memo
    auditor, which checks group statistics the same way). *)
val stats_diags : loc:Diag.location -> Slogical.Stats.t -> Diag.t list

(** Column-resolution diagnostics of one operator over its children's
    schemas. *)
val op_columns_diags :
  loc:Diag.location ->
  Slogical.Logop.t ->
  Relalg.Schema.t list ->
  Diag.t list

(** Run the lint over every reachable node of the DAG. *)
val run :
  catalog:Relalg.Catalog.t -> machines:int -> Slogical.Dag.t -> Diag.t list
