(* Trace auditor: cross-checks the observability layer against the wave
   scheduler's determinism contract.

   The scheduler promises that the logical schedule — which stage runs
   on which attempt — is a pure function of the committed state, and the
   tracing layer promises one execution span per stage attempt.  SA045
   holds both to account: given the per-run attempt counts the engine
   reported, the collected trace must contain exactly one "stage" span
   per (run, stage, attempt), no more, no fewer.  A missing span means
   events were dropped or instrumentation was skipped; a duplicate means
   a stage executed outside the scheduler's accounting.

   [attempts] is one array per engine run that contributed to the trace
   (e.g. the clean run and the fault-injected run of [scopeopt run]);
   attempt numbers restart at 1 per run, so the expected multiset of
   attempt tags for a stage is the concatenation of [1..a_run(stage)]
   over the runs. *)

let int_arg name (e : Sobs.Trace.event) =
  match List.assoc_opt name e.Sobs.Trace.args with
  | Some (Sobs.Trace.Int i) -> Some i
  | Some (Sobs.Trace.Float f) when Float.is_integer f ->
      Some (int_of_float f)
  | _ -> None

(* Execution-stage Begin spans of the trace, as (stage, attempt) pairs. *)
let stage_spans (events : Sobs.Trace.event list) =
  List.filter_map
    (fun (e : Sobs.Trace.event) ->
      if
        e.Sobs.Trace.kind = Sobs.Trace.Begin
        && e.Sobs.Trace.pid = Sobs.Trace.pid_exec
        && String.length e.Sobs.Trace.name >= 6
        && String.sub e.Sobs.Trace.name 0 6 = "stage "
      then
        match (int_arg "stage" e, int_arg "attempt" e) with
        | Some sid, Some attempt -> Some (sid, attempt)
        | _ -> Some (-1, -1) (* malformed span, reported below *)
      else None)
    events

let run ~(attempts : int array list) (events : Sobs.Trace.event list) :
    Diag.t list =
  let diags = ref [] in
  let bad sid fmt =
    Fmt.kstr
      (fun m ->
        diags := Diag.make ~code:"SA045" ~loc:(Diag.Node sid) m :: !diags)
      fmt
  in
  let spans = stage_spans events in
  List.iter
    (fun (sid, _) ->
      if sid < 0 then
        bad 0 "stage span without integer stage/attempt arguments")
    (List.filter (fun (sid, _) -> sid < 0) spans);
  let nstages = List.fold_left (fun acc a -> max acc (Array.length a)) 0 attempts in
  for sid = 0 to nstages - 1 do
    let expected =
      List.concat_map
        (fun a ->
          if sid < Array.length a then List.init a.(sid) (fun i -> i + 1)
          else [])
        attempts
      |> List.sort compare
    in
    let observed =
      List.filter_map
        (fun (s, attempt) -> if s = sid then Some attempt else None)
        spans
      |> List.sort compare
    in
    if observed <> expected then
      bad sid
        "stage %d: executed attempts {%s} but traced spans {%s}" sid
        (String.concat "," (List.map string_of_int expected))
        (String.concat "," (List.map string_of_int observed))
  done;
  (* spans for stages the engine never reported at all *)
  List.iter
    (fun (sid, attempt) ->
      if sid >= nstages then
        bad sid "traced span for unknown stage %d (attempt %d)" sid attempt)
    (List.sort_uniq compare spans);
  List.rev !diags
