open Relalg

(* Column-level provenance for the cross-layer audit (SA052/SA055).

   Every column of every intermediate result is given an interned lineage
   id: either a base-table column ([file.column] of an EXTRACT) or a
   derivation — an operator label over argument lineage ids.  The same
   interner serves the logical DAG, the physical plan and the memo, so
   "this physical output column is computed from the same sources, by the
   same operations, as the logical one" is an integer comparison.

   This is an independent second signal next to {!Canon}: lineage is
   computed directly on the raw structures (no normalization pass shared
   with the canonicalizer), so a bug in one machinery cannot hide the
   other's finding.  Purely physical operators (spools, enforcers) are
   lineage-transparent, and a global aggregation directly combining a
   matching local pre-aggregation collapses to the single logical
   aggregation it implements — any mismatched pairing falls through to
   the naive nested derivation and then fails the comparison. *)

type term = Base of string * string | Derived of string * int list

type ctx = { ids : (term, int) Hashtbl.t; mutable next : int }

let create () = { ids = Hashtbl.create 256; next = 0 }

let intern ctx t =
  match Hashtbl.find_opt ctx.ids t with
  | Some i -> i
  | None ->
      let i = ctx.next in
      ctx.next <- i + 1;
      Hashtbl.add ctx.ids t i;
      i

let base ctx ~file ~column = intern ctx (Base (file, column))
let derived ctx label args = intern ctx (Derived (label, args))

(* An environment: lineage id per column name, in schema order. *)
type env = (string * int) list

let rec of_expr ctx (env : env) (e : Expr.t) : int =
  let go = of_expr ctx env in
  match e with
  | Expr.Col c -> (
      match List.assoc_opt c env with
      | Some i -> i
      | None -> derived ctx ("missing:" ^ c) [])
  | Expr.Lit v -> derived ctx ("lit:" ^ Fmt.str "%a" Value.pp v) []
  | Expr.Binop (op, a, b) ->
      derived ctx ("binop:" ^ Fmt.str "%a" Expr.pp_binop op) [ go a; go b ]
  | Expr.Cmp (op, a, b) ->
      derived ctx ("cmp:" ^ Fmt.str "%a" Expr.pp_cmpop op) [ go a; go b ]
  | Expr.And (a, b) -> derived ctx "and" [ go a; go b ]
  | Expr.Or (a, b) -> derived ctx "or" [ go a; go b ]
  | Expr.Not a -> derived ctx "not" [ go a ]

let env_project ctx items (env : env) : env =
  List.map (fun (e, name) -> (name, of_expr ctx env e)) items

let env_group ctx ~keys ~(aggs : Agg.t list) (env : env) : env =
  let key_cols =
    List.map
      (fun k ->
        ( k,
          match List.assoc_opt k env with
          | Some i -> i
          | None -> derived ctx ("missing:" ^ k) [] ))
      keys
  in
  let agg_cols =
    List.map
      (fun (a : Agg.t) ->
        ( a.Agg.output,
          derived ctx
            ("agg:" ^ Agg.func_name a.Agg.func)
            [ of_expr ctx env a.Agg.arg ] ))
      aggs
  in
  key_cols @ agg_cols

let env_union ctx (l : env) (r : env) : env =
  if List.length l = List.length r then
    List.map2 (fun (n, li) (_, ri) -> (n, derived ctx "union" [ li; ri ])) l r
  else List.map (fun (n, li) -> (n, derived ctx "union:odd" [ li ])) l

(* Does [globals] combine [locals] exactly as [Agg.global_combinator]
   prescribes? *)
let combines (locals : Agg.t list) (globals : Agg.t list) =
  List.length locals = List.length globals
  && List.for_all2 (fun l g -> Agg.global_combinator l = g) locals globals

(* ---- logical DAG ------------------------------------------------------ *)

(* Per-output lineage environments of the bound DAG, keyed by output
   file. *)
let of_dag ctx (dag : Slogical.Dag.t) : (string * env) list =
  let memo : (int, env) Hashtbl.t = Hashtbl.create 64 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some e -> e
    | None ->
        let e = node (Slogical.Dag.node dag id) in
        Hashtbl.add memo id e;
        e
  and node (n : Slogical.Dag.node) : env =
    match (n.Slogical.Dag.op, n.Slogical.Dag.children) with
    | Slogical.Logop.Extract { file; schema; _ }, [] ->
        List.map (fun c -> (c, base ctx ~file ~column:c)) (Schema.names schema)
    | Slogical.Logop.Filter _, [ c ]
    | Slogical.Logop.Spool, [ c ]
    | Slogical.Logop.Output _, [ c ] ->
        go c
    | Slogical.Logop.Project { items }, [ c ] -> env_project ctx items (go c)
    | Slogical.Logop.Group_by { keys; aggs }, [ c ]
    | Slogical.Logop.Group_by_local { keys; aggs }, [ c ] ->
        env_group ctx ~keys ~aggs (go c)
    | Slogical.Logop.Group_by_global { keys; aggs }, [ c ] -> (
        (* the binder never emits global aggs; handled for completeness *)
        let cn = Slogical.Dag.node dag c in
        match (cn.Slogical.Dag.op, cn.Slogical.Dag.children) with
        | Slogical.Logop.Group_by_local { keys = lk; aggs = la }, [ cc ]
          when lk = keys && combines la aggs ->
            env_group ctx ~keys ~aggs:la (go cc)
        | _ -> env_group ctx ~keys ~aggs (go c))
    | Slogical.Logop.Join _, [ l; r ] -> go l @ go r
    | Slogical.Logop.Union_all, [ l; r ] -> env_union ctx (go l) (go r)
    | _, _ -> []
  in
  let root = Slogical.Dag.root dag in
  let outputs =
    match root.Slogical.Dag.op with
    | Slogical.Logop.Sequence ->
        List.map (Slogical.Dag.node dag) root.Slogical.Dag.children
    | _ -> [ root ]
  in
  List.filter_map
    (fun (n : Slogical.Dag.node) ->
      match n.Slogical.Dag.op with
      | Slogical.Logop.Output { file; _ } -> Some (file, node n)
      | _ -> None)
    outputs

(* ---- physical plan ---------------------------------------------------- *)

(* Skip lineage-transparent physical nodes (spools and enforcers). *)
let rec strip (p : Sphys.Plan.t) =
  match (p.Sphys.Plan.op, p.Sphys.Plan.children) with
  | ( ( Sphys.Physop.P_spool | Sphys.Physop.P_exchange _
      | Sphys.Physop.P_merge_exchange _ | Sphys.Physop.P_sort _
      | Sphys.Physop.P_gather ),
      [ c ] ) ->
      strip c
  | _ -> p

(* Per-output lineage environments of a physical plan, keyed by output
   file. *)
let of_plan ctx (plan : Sphys.Plan.t) : (string * env) list =
  let memo : (Sphys.Plan.t * env) list ref = ref [] in
  let rec go (p : Sphys.Plan.t) =
    match List.find_opt (fun (q, _) -> q == p) !memo with
    | Some (_, e) -> e
    | None ->
        let e = node p in
        memo := (p, e) :: !memo;
        e
  and node (p : Sphys.Plan.t) : env =
    match (p.Sphys.Plan.op, p.Sphys.Plan.children) with
    | Sphys.Physop.P_extract { file; schema; _ }, [] ->
        List.map (fun c -> (c, base ctx ~file ~column:c)) (Schema.names schema)
    | Sphys.Physop.P_filter _, [ c ]
    | Sphys.Physop.P_spool, [ c ]
    | Sphys.Physop.P_output _, [ c ]
    | Sphys.Physop.P_exchange _, [ c ]
    | Sphys.Physop.P_merge_exchange _, [ c ]
    | Sphys.Physop.P_sort _, [ c ]
    | Sphys.Physop.P_gather, [ c ] ->
        go c
    | Sphys.Physop.P_project { items }, [ c ] -> env_project ctx items (go c)
    | ( ( Sphys.Physop.P_stream_agg { keys; aggs; scope }
        | Sphys.Physop.P_hash_agg { keys; aggs; scope } ),
        [ c ] ) -> (
        match scope with
        | Sphys.Physop.Local | Sphys.Physop.Full ->
            env_group ctx ~keys ~aggs (go c)
        | Sphys.Physop.Global -> (
            match ((strip c).Sphys.Plan.op, (strip c).Sphys.Plan.children) with
            | ( ( Sphys.Physop.P_stream_agg
                    { keys = lk; aggs = la; scope = Sphys.Physop.Local }
                | Sphys.Physop.P_hash_agg
                    { keys = lk; aggs = la; scope = Sphys.Physop.Local } ),
                [ cc ] )
              when lk = keys && combines la aggs ->
                env_group ctx ~keys ~aggs:la (go cc)
            | _ -> env_group ctx ~keys ~aggs (go c)))
    | ( (Sphys.Physop.P_merge_join _ | Sphys.Physop.P_hash_join _),
        [ l; r ] ) ->
        go l @ go r
    | Sphys.Physop.P_union_all, [ l; r ] -> env_union ctx (go l) (go r)
    | _, _ -> []
  in
  let outputs =
    match plan.Sphys.Plan.op with
    | Sphys.Physop.P_sequence -> plan.Sphys.Plan.children
    | _ -> [ plan ]
  in
  List.filter_map
    (fun (o : Sphys.Plan.t) ->
      match o.Sphys.Plan.op with
      | Sphys.Physop.P_output { file } -> Some (file, go o)
      | _ -> None)
    outputs

(* ---- memo ------------------------------------------------------------- *)

exception Cyclic

(* SA055: every expression of a memo group must assign its columns the
   same lineage — a fingerprint merge of inequivalent groups, or an
   exploration rule changing content, shows up as two expressions
   deriving different provenance for one column.  The local/global pair
   added by the aggregation-split rule collapses natively, so a healthy
   memo is silent.  Cyclic memos are skipped (SA001 owns them). *)
let of_memo ctx (memo : Smemo.Memo.t) : Diag.t list =
  let envs : (int, env) Hashtbl.t = Hashtbl.create 64 in
  let visiting : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let diags = ref [] in
  let rec group_env gid : env =
    if gid < 0 || gid >= Smemo.Memo.size memo then []
    else
      match Hashtbl.find_opt envs gid with
      | Some e -> e
      | None ->
          if Hashtbl.mem visiting gid then raise Cyclic;
          Hashtbl.add visiting gid ();
          let g = Smemo.Memo.group memo gid in
          let env =
            match Smemo.Memo.exprs g with
            | [] -> []
            | e0 :: rest ->
                let env0 = expr_env e0 in
                List.iteri
                  (fun i e ->
                    let env' = expr_env e in
                    if env' <> env0 then
                      diags :=
                        Diag.make ~code:"SA055" ~loc:(Diag.Group gid)
                          (Printf.sprintf
                             "expression %d (%s) disagrees with %s on column \
                              lineage"
                             (i + 1)
                             (Slogical.Logop.short_name e.Smemo.Memo.mop)
                             (Slogical.Logop.short_name e0.Smemo.Memo.mop))
                        :: !diags)
                  rest;
                env0
          in
          Hashtbl.remove visiting gid;
          Hashtbl.add envs gid env;
          env
  and expr_env (e : Smemo.Memo.mexpr) : env =
    match (e.Smemo.Memo.mop, e.Smemo.Memo.children) with
    | Slogical.Logop.Extract { file; schema; _ }, [] ->
        List.map (fun c -> (c, base ctx ~file ~column:c)) (Schema.names schema)
    | Slogical.Logop.Filter _, [ c ]
    | Slogical.Logop.Spool, [ c ]
    | Slogical.Logop.Output _, [ c ] ->
        group_env c
    | Slogical.Logop.Project { items }, [ c ] ->
        env_project ctx items (group_env c)
    | Slogical.Logop.Group_by { keys; aggs }, [ c ]
    | Slogical.Logop.Group_by_local { keys; aggs }, [ c ] ->
        env_group ctx ~keys ~aggs (group_env c)
    | Slogical.Logop.Group_by_global { keys; aggs }, [ c ] -> (
        (* combine through the local group the split rule created *)
        let local =
          if c >= 0 && c < Smemo.Memo.size memo then
            List.find_opt
              (fun (e' : Smemo.Memo.mexpr) ->
                match e'.Smemo.Memo.mop with
                | Slogical.Logop.Group_by_local { keys = lk; aggs = la } ->
                    lk = keys && combines la aggs
                | _ -> false)
              (Smemo.Memo.exprs (Smemo.Memo.group memo c))
          else None
        in
        match local with
        | Some { Smemo.Memo.mop = Slogical.Logop.Group_by_local { aggs = la; _ };
                 children = [ cc ] } ->
            env_group ctx ~keys ~aggs:la (group_env cc)
        | _ -> env_group ctx ~keys ~aggs (group_env c))
    | Slogical.Logop.Join _, [ l; r ] -> group_env l @ group_env r
    | Slogical.Logop.Union_all, [ l; r ] ->
        env_union ctx (group_env l) (group_env r)
    | _, _ -> []
  in
  let live = Smemo.Memo.reachable memo in
  Smemo.Memo.iter_groups memo (fun g ->
      if live.(g.Smemo.Memo.id) then (
        try ignore (group_env g.Smemo.Memo.id)
        with Cyclic -> Hashtbl.reset visiting));
  List.rev !diags
