(* Serve metrics auditor: holds a serve engine's metrics snapshot to its
   own accounting invariants (SA046).

   The serve engine promises that its per-engine registry tells one
   coherent story: every submission lands in [serve.sessions_submitted];
   a session either fails ([serve.sessions_failed]) or is classified as
   exactly one of [serve.cache_hits] / [serve.cache_misses]; every
   served session observes exactly one latency histogram path
   ([serve.session_seconds{path=hit|share|miss}], hit sessions on the
   hit path); and the [serve.cache_size] gauge equals the plan cache's
   actual entry count at snapshot time.  A snapshot that breaks any of
   these means double- or under-counted telemetry — dashboards built on
   it would misattribute latency or lose sessions.

   The pass takes plain snapshot rows plus the cache's entry count, so
   it needs nothing from the serve layer and synthetic snapshots can
   exercise it directly in tests. *)

let known_paths = [ "hit"; "share"; "miss" ]

(* Counters with [name], summed across label sets. *)
let counter_of rows name =
  List.fold_left
    (fun acc (r : Sobs.Metrics.row) ->
      match r.Sobs.Metrics.value with
      | Sobs.Metrics.Count c when r.Sobs.Metrics.name = name -> acc + c
      | _ -> acc)
    0 rows

let gauge_of rows name =
  List.find_map
    (fun (r : Sobs.Metrics.row) ->
      if r.Sobs.Metrics.name = name then
        match r.Sobs.Metrics.value with
        | Sobs.Metrics.Value v -> Some v
        | _ -> None
      else None)
    rows

(* [serve.session_seconds] series as (path label, observation count);
   count -1 marks a series that is not a histogram at all. *)
let latency_paths rows =
  List.filter_map
    (fun (r : Sobs.Metrics.row) ->
      if r.Sobs.Metrics.name = "serve.session_seconds" then
        let path =
          Option.value ~default:"<unlabeled>"
            (List.assoc_opt "path" r.Sobs.Metrics.labels)
        in
        match r.Sobs.Metrics.value with
        | Sobs.Metrics.Dist s -> Some (path, s.Sobs.Hist.count)
        | _ -> Some (path, -1)
      else None)
    rows

let run ~cache_entries (rows : Sobs.Metrics.row list) : Diag.t list =
  let diags = ref [] in
  let bad fmt =
    Fmt.kstr
      (fun m ->
        diags := Diag.make ~code:"SA046" ~loc:Diag.Whole m :: !diags)
      fmt
  in
  let submitted = counter_of rows "serve.sessions_submitted" in
  let failed = counter_of rows "serve.sessions_failed" in
  let hits = counter_of rows "serve.cache_hits" in
  let misses = counter_of rows "serve.cache_misses" in
  let served = submitted - failed in
  if hits + misses <> served then
    bad
      "cache hits (%d) + misses (%d) do not account for the %d served \
       sessions (%d submitted - %d failed)"
      hits misses served submitted failed;
  let paths = latency_paths rows in
  List.iter
    (fun (path, count) ->
      if count < 0 then
        bad "serve.session_seconds{path=%s} is not a histogram" path
      else if not (List.mem path known_paths) then
        bad "latency histogram with unknown path label %S" path)
    paths;
  let observed = List.fold_left (fun acc (_, c) -> acc + max 0 c) 0 paths in
  if observed <> served then
    bad
      "latency histograms hold %d observations but %d sessions were served \
       (every served session must land in exactly one of hit/share/miss)"
      observed served;
  (let hit_count = Option.value ~default:0 (List.assoc_opt "hit" paths) in
   if List.for_all (fun (_, c) -> c >= 0) paths && hit_count <> hits then
     bad "hit-path latency count (%d) diverges from cache hits (%d)"
       hit_count hits);
  (match gauge_of rows "serve.cache_size" with
  | None ->
      if cache_entries > 0 then
        bad "cache holds %d entries but no serve.cache_size gauge was recorded"
          cache_entries
  | Some g ->
      if g <> float_of_int cache_entries then
        bad "serve.cache_size gauge (%g) does not match the plan cache's %d \
             entries"
          g cache_entries);
  List.rev !diags
