open Sphys
module Memo = Smemo.Memo
module Logop = Slogical.Logop
module Stage = Sexec.Stage

(* Mutation harness for the analyzers (the audit-of-the-audit).

   Every auditor in this layer claims to catch a specific class of silent
   corruption.  This corpus backs each claim with a falsifiable
   experiment: run the full pipeline on a real workload, audit (must be
   clean), inject one targeted corruption into a memo, a logical DAG, a
   physical plan, a sharing structure or a stage graph, audit again and
   demand the corruption's own SA code.  A mutation whose baseline
   already carries the code is vacuous; one whose corruption goes
   unreported is a hole in the analyzer.  [verify] enforces all three
   conditions, so [test/test_mutation.ml] reduces to iterating [all]. *)

type mutation = {
  mname : string;  (** unique label, [SAxxx what-was-corrupted] *)
  mcode : string;  (** the diagnostic expected to catch the corruption *)
  mrun : unit -> Diag.t list * Diag.t list;
      (** run the experiment: (baseline diags, post-corruption diags) *)
}

(* The S1 workload of the paper (two aggregations sharing one
   pre-aggregation), embedded so this library stays independent of the
   workload generators. *)
let script =
  {|
R0 = EXTRACT A,B,C,D FROM "...\test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
|}

let fresh () =
  let catalog = Relalg.Catalog.default () in
  let cluster = Scost.Cluster.default in
  (catalog, cluster, Cse.Pipeline.run ~cluster ~catalog script)

(* [build] returns the audit closure and the corruption; [mrun] audits
   around the corruption. *)
let mutation mname mcode build =
  {
    mname;
    mcode;
    mrun =
      (fun () ->
        let audit, corrupt = build () in
        let clean = audit () in
        corrupt ();
        (clean, audit ()));
  }

(* ---- shared lookup helpers -------------------------------------------- *)

let die fmt = Printf.ksprintf failwith fmt

let find_plan pred plan =
  Plan.fold
    (fun acc n ->
      match acc with Some _ -> acc | None -> if pred n then Some n else None)
    None plan

let spool_of plan =
  match
    find_plan
      (fun n -> match n.Plan.op with Physop.P_spool -> true | _ -> false)
      plan
  with
  | Some s -> s
  | None -> die "mutation harness: no spool in the CSE plan"

(* A winner with a recorded plan, with its table key. *)
let some_winner (g : Memo.group) =
  match
    Hashtbl.fold
      (fun k (w : Memo.winner) acc ->
        match (acc, w.Memo.wplan) with None, Some p -> Some (k, w, p) | _ -> acc)
      g.Memo.winners None
  with
  | Some x -> x
  | None -> die "mutation harness: group %d has no winner with a plan" g.Memo.id

(* Rebuild a plan with [f]-selected nodes replaced, preserving physical
   identity of untouched subtrees so spool sharing survives the rewrite. *)
let map_plan f plan =
  let mapped : (Plan.t * Plan.t) list ref = ref [] in
  let rec go (n : Plan.t) =
    match List.assq_opt n !mapped with
    | Some n' -> n'
    | None ->
        let n' =
          match f n with
          | Some repl -> repl
          | None ->
              let children = List.map go n.Plan.children in
              if List.for_all2 ( == ) children n.Plan.children then n
              else { n with Plan.children }
        in
        mapped := (n, n') :: !mapped;
        n'
  in
  go plan

(* Replace the first (top-down) node satisfying [pred]. *)
let corrupt_first pred repl plan =
  let hit = ref false in
  let plan' =
    map_plan
      (fun n ->
        if !hit || not (pred n) then None
        else begin
          hit := true;
          Some (repl n)
        end)
      plan
  in
  if not !hit then die "mutation harness: no plan node matched";
  plan'

(* First reachable memo group holding a [Group_by] expression. *)
let group_by_group memo =
  let live = Memo.reachable memo in
  let found = ref None in
  Memo.iter_groups memo (fun g ->
      if Option.is_none !found && live.(g.Memo.id) then
        List.iter
          (fun (e : Memo.mexpr) ->
            match e.Memo.mop with
            | Logop.Group_by { keys; aggs }
              when Option.is_none !found && keys <> [] && aggs <> [] ->
                found := Some (g, e, keys, aggs)
            | _ -> ())
          (Memo.exprs g));
  match !found with
  | Some x -> x
  | None -> die "mutation harness: no reachable GROUP BY group"

(* First DAG node satisfying [pred], by index. *)
let dag_node pred (dag : Slogical.Dag.t) =
  let idx = ref (-1) in
  Array.iteri
    (fun i (n : Slogical.Dag.node) ->
      if !idx < 0 && pred n then idx := i)
    dag.Slogical.Dag.nodes;
  if !idx < 0 then die "mutation harness: no DAG node matched";
  !idx

let is_output (n : Slogical.Dag.node) =
  match n.Slogical.Dag.op with Logop.Output _ -> true | _ -> false

let is_group_by (n : Slogical.Dag.node) =
  match n.Slogical.Dag.op with Logop.Group_by _ -> true | _ -> false

(* ---- the corpus -------------------------------------------------------- *)

(* Memo layer: structural invariants of groups, expressions and memoized
   winners (SA001-SA007), plus the statistics each group carries
   (SA021/SA022). *)

let memo_mutation mname mcode corrupt =
  mutation mname mcode (fun () ->
      let _, cluster, r = fresh () in
      let memo = r.Cse.Pipeline.memo in
      ((fun () -> Memo_audit.run ~cluster memo), fun () -> corrupt r memo))

let sa001 =
  memo_mutation "SA001 spool expression referencing its own group" "SA001"
    (fun r memo ->
      let spool = (List.hd r.Cse.Pipeline.shared).Cse.Spool.spool in
      Memo.set_exprs memo
        (Memo.group memo spool)
        [ { Memo.mop = Logop.Spool; children = [ spool ] } ])

let sa002 =
  memo_mutation "SA002 expression breaking its group's schema" "SA002"
    (fun _ memo ->
      let root = Memo.root_group memo in
      let child = List.hd (Memo.group_children root) in
      Memo.set_exprs memo root
        (Memo.exprs root
        @ [ { Memo.mop = Logop.Union_all; children = [ child ] } ]))

let sa003 =
  memo_mutation "SA003 winner operator cost off by 1e6" "SA003"
    (fun _ memo ->
      let root = Memo.root_group memo in
      let key, w, p = some_winner root in
      Hashtbl.replace root.Memo.winners key
        {
          w with
          Memo.wplan = Some { p with Plan.op_cost = p.Plan.op_cost +. 1.0e6 };
        })

let sa004 =
  memo_mutation "SA004 winner plan with fabricated sort property" "SA004"
    (fun _ memo ->
      let root = Memo.root_group memo in
      let key, w, p = some_winner root in
      let props =
        { p.Plan.props with Props.sort = [ ("__corrupt", Sortorder.Desc) ] }
      in
      Hashtbl.replace root.Memo.winners key
        { w with Memo.wplan = Some { p with Plan.props = props } })

let sa005 =
  memo_mutation "SA005 winner under an unsatisfiable requirement" "SA005"
    (fun _ memo ->
      let root = Memo.root_group memo in
      let key, w, _ = some_winner root in
      Hashtbl.replace root.Memo.winners key
        {
          w with
          Memo.wreq =
            Reqprops.make
              (Reqprops.Hash_exact (Relalg.Colset.of_list [ "__nope" ]))
              [];
        })

let sa006 =
  memo_mutation "SA006 infeasibility marker next to a feasible winner" "SA006"
    (fun _ memo ->
      let root = Memo.root_group memo in
      let _, w, _ = some_winner root in
      Hashtbl.replace root.Memo.winners (-1)
        {
          Memo.wphase = w.Memo.wphase;
          wreq = Reqprops.none;
          wenforce = w.Memo.wenforce;
          wplan = None;
        })

let sa007 =
  memo_mutation "SA007 winner plan rooted at the wrong group" "SA007"
    (fun _ memo ->
      let root = Memo.root_group memo in
      let key, w, p = some_winner root in
      Hashtbl.replace root.Memo.winners key
        { w with Memo.wplan = Some { p with Plan.group = p.Plan.group + 1 } })

let sa021 =
  memo_mutation "SA021 NaN row estimate on a memo group" "SA021"
    (fun _ memo ->
      let g = Memo.root_group memo in
      g.Memo.stats <- { g.Memo.stats with Slogical.Stats.rows = Float.nan })

let sa022 =
  memo_mutation "SA022 column NDV far above the row estimate" "SA022"
    (fun _ memo ->
      let g = Memo.root_group memo in
      g.Memo.stats <-
        {
          Slogical.Stats.rows = 10.0;
          row_bytes = 8.0;
          ndvs = [ ("A", 1000.0) ];
        })

(* Sharing layer: the spool bookkeeping of Algorithm 1 and the phase-2
   candidate property sets (SA010-SA014). *)

let sa010 =
  mutation "SA010 non-spool group marked shared" "SA010" (fun () ->
      let _, _, r = fresh () in
      let memo = r.Cse.Pipeline.memo in
      ( (fun () -> Sharing_audit.run memo),
        fun () ->
          let under = (List.hd r.Cse.Pipeline.shared).Cse.Spool.under in
          (Memo.group memo under).Memo.shared <- true ))

let sa011 =
  mutation "SA011 shared spool stripped to one consumer" "SA011" (fun () ->
      let _, _, r = fresh () in
      let memo = r.Cse.Pipeline.memo in
      ( (fun () -> Sharing_audit.run memo),
        fun () ->
          let s = List.hd r.Cse.Pipeline.shared in
          let spool = s.Cse.Spool.spool and under = s.Cse.Spool.under in
          let rewire consumer =
            let cg = Memo.group memo consumer in
            Memo.set_exprs memo cg
              (List.map
                 (fun (e : Memo.mexpr) ->
                   {
                     e with
                     Memo.children =
                       List.map
                         (fun c -> if c = spool then under else c)
                         e.Memo.children;
                   })
                 (Memo.exprs cg))
          in
          match (Memo.parents memo).(spool) with
          | [] -> die "mutation harness: spool has no consumers"
          | _keep :: rest -> List.iter rewire rest ))

let sa012 =
  mutation "SA012 duplicated phase-2 candidate property set" "SA012" (fun () ->
      let cands =
        ref
          [
            Reqprops.make (Reqprops.Hash_exact (Relalg.Colset.of_list [ "B" ])) [];
            Reqprops.make (Reqprops.Hash_exact (Relalg.Colset.of_list [ "C" ])) [];
          ]
      in
      ( (fun () -> Sharing_audit.candidates_diags ~shared:7 !cands),
        fun () -> cands := [ List.hd !cands; List.hd !cands ] ))

let sa013 =
  mutation "SA013 shared group materialized twice in one plan" "SA013"
    (fun () ->
      let _, _, r = fresh () in
      let memo = r.Cse.Pipeline.memo in
      let plan = ref r.Cse.Pipeline.cse_plan in
      ( (fun () -> Sharing_audit.plan_diags ~memo !plan),
        fun () ->
          let s = spool_of !plan in
          let clone = { s with Plan.op_cost = s.Plan.op_cost } in
          plan :=
            Plan.make ~op:Physop.P_sequence ~children:[ s; clone ] ~group:(-1)
              ~schema:s.Plan.schema ~stats:s.Plan.stats ~op_cost:0.0 ))

let sa014 =
  mutation "SA014 plan spooling a group not marked shared" "SA014" (fun () ->
      let _, _, r = fresh () in
      let memo = r.Cse.Pipeline.memo in
      let plan = ref r.Cse.Pipeline.cse_plan in
      ( (fun () -> Sharing_audit.plan_diags ~memo !plan),
        fun () ->
          let under = (List.hd r.Cse.Pipeline.shared).Cse.Spool.under in
          plan := { (spool_of !plan) with Plan.group = under } ))

(* Logical layer: the bound DAG the whole optimization starts from
   (SA020). *)

let sa020 =
  mutation "SA020 aggregate over a missing column" "SA020" (fun () ->
      let catalog, cluster, r = fresh () in
      let dag = r.Cse.Pipeline.dag in
      ( (fun () ->
          Logical_audit.run ~catalog
            ~machines:cluster.Scost.Cluster.machines dag),
        fun () ->
          let i = dag_node is_group_by dag in
          let n = dag.Slogical.Dag.nodes.(i) in
          match n.Slogical.Dag.op with
          | Logop.Group_by { keys; aggs } ->
              let aggs =
                List.map
                  (fun (a : Relalg.Agg.t) ->
                    { a with Relalg.Agg.arg = Relalg.Expr.Col "__nope" })
                  aggs
              in
              dag.Slogical.Dag.nodes.(i) <-
                { n with Slogical.Dag.op = Logop.Group_by { keys; aggs } }
          | _ -> assert false ))

(* Plan layer: the chosen physical plans' cost and shape caches
   (SA031-SA034). *)

let plan_mutation mname mcode pick corrupt =
  mutation mname mcode (fun () ->
      let _, _, r = fresh () in
      let plan = ref (pick r) in
      ((fun () -> Plan_audit.run !plan), fun () -> plan := corrupt r !plan))

let sa031 =
  plan_mutation "SA031 non-additive recorded plan total" "SA031"
    (fun r -> r.Cse.Pipeline.conventional_plan)
    (fun _ p -> { p with Plan.cost = (p.Plan.cost *. 2.0) +. 1.0 })

let sa032 =
  plan_mutation "SA032 negative operator cost" "SA032"
    (fun r -> r.Cse.Pipeline.conventional_plan)
    (fun _ p -> { p with Plan.op_cost = -5.0 })

let sa033 =
  plan_mutation "SA033 spool with no memo group id" "SA033"
    (fun r -> r.Cse.Pipeline.cse_plan)
    (fun _ p -> { (spool_of p) with Plan.group = -1 })

let sa034 =
  plan_mutation "SA034 stale region cost summary" "SA034"
    (fun r -> r.Cse.Pipeline.cse_plan)
    (fun _ p -> { p with Plan.sbase = p.Plan.sbase +. 1.0e6 })

(* Stage layer: the compiled stage graph the executor trusts blindly
   (SA040-SA044). *)

let stage_mutation mname mcode corrupt =
  mutation mname mcode (fun () ->
      let _, _, r = fresh () in
      let plan = r.Cse.Pipeline.cse_plan in
      let g = ref (Stage.build plan) in
      ( (fun () -> Stage_audit.check_graph plan !g),
        fun () -> g := corrupt plan !g ))

let sa040 =
  stage_mutation "SA040 sink demoted to stage 0" "SA040" (fun _ g ->
      { g with Stage.sink = 0 })

let sa041 =
  stage_mutation "SA041 recorded stage dependencies erased" "SA041"
    (fun _ g ->
      {
        g with
        Stage.stages =
          Array.map
            (fun (st : Stage.stage) ->
              if st.Stage.deps = [] then st else { st with Stage.deps = [] })
            g.Stage.stages;
      })

let sa043 =
  stage_mutation "SA043 OUTPUT smuggled into a non-sink stage" "SA043"
    (fun _ g ->
      let stages =
        Array.map
          (fun (st : Stage.stage) ->
            if st.Stage.id = g.Stage.sink then st
            else
              {
                st with
                Stage.root =
                  Plan.make
                    ~op:(Physop.P_output { file = "__mutant.out" })
                    ~children:[ st.Stage.root ] ~group:(-1)
                    ~schema:st.Stage.root.Plan.schema
                    ~stats:st.Stage.root.Plan.stats ~op_cost:0.0;
              })
          g.Stage.stages
      in
      { g with Stage.stages })

let sa044 =
  stage_mutation "SA044 sink severed from its dependencies" "SA044"
    (fun _ g ->
      {
        g with
        Stage.stages =
          Array.map
            (fun (st : Stage.stage) ->
              if st.Stage.id = g.Stage.sink then { st with Stage.deps = [] }
              else st)
            g.Stage.stages;
      })

(* Cross-layer equivalence (SA050-SA055, SA058): corrupt either side of
   the logical/physical correspondence and expect the comparison to
   break. *)

let equiv_mutation mname mcode corrupt =
  mutation mname mcode (fun () ->
      let _, _, r = fresh () in
      let dag = r.Cse.Pipeline.dag in
      let plan = ref r.Cse.Pipeline.cse_plan in
      ( (fun () -> Equiv_audit.run ~dag ~plan:!plan),
        fun () -> plan := corrupt r dag !plan ))

let sa050_file =
  equiv_mutation "SA050 logical output renamed to another file" "SA050"
    (fun _ dag plan ->
      let i = dag_node is_output dag in
      let n = dag.Slogical.Dag.nodes.(i) in
      (match n.Slogical.Dag.op with
      | Logop.Output { file = _; order } ->
          dag.Slogical.Dag.nodes.(i) <-
            {
              n with
              Slogical.Dag.op = Logop.Output { file = "__mutant.out"; order };
            }
      | _ -> assert false);
      plan)

let sa050_agg =
  equiv_mutation "SA050 logical SUM silently turned into MIN" "SA050"
    (fun _ dag plan ->
      let i = dag_node is_group_by dag in
      let n = dag.Slogical.Dag.nodes.(i) in
      (match n.Slogical.Dag.op with
      | Logop.Group_by { keys; aggs } ->
          let aggs =
            List.map
              (fun (a : Relalg.Agg.t) -> { a with Relalg.Agg.func = Relalg.Agg.Min })
              aggs
          in
          dag.Slogical.Dag.nodes.(i) <-
            { n with Slogical.Dag.op = Logop.Group_by { keys; aggs } }
      | _ -> assert false);
      plan)

let sa051 =
  equiv_mutation "SA051 aggregation demoted to an orphan local step" "SA051"
    (fun _ _ plan ->
      corrupt_first
        (fun n ->
          match n.Plan.op with
          | Physop.P_stream_agg { scope = Physop.Full | Physop.Global; _ }
          | Physop.P_hash_agg { scope = Physop.Full | Physop.Global; _ } ->
              true
          | _ -> false)
        (fun n ->
          let op =
            match n.Plan.op with
            | Physop.P_stream_agg { keys; aggs; _ } ->
                Physop.P_stream_agg { keys; aggs; scope = Physop.Local }
            | Physop.P_hash_agg { keys; aggs; _ } ->
                Physop.P_hash_agg { keys; aggs; scope = Physop.Local }
            | op -> op
          in
          { n with Plan.op = op })
        plan)

let sa052 =
  equiv_mutation "SA052 physical aggregate re-aimed at a grouping key" "SA052"
    (fun _ _ plan ->
      corrupt_first
        (fun n ->
          match n.Plan.op with
          | Physop.P_stream_agg { keys; aggs; scope = Physop.Local | Physop.Full }
          | Physop.P_hash_agg { keys; aggs; scope = Physop.Local | Physop.Full }
            ->
              keys <> [] && aggs <> []
          | _ -> false)
        (fun n ->
          let redirect keys (aggs : Relalg.Agg.t list) =
            List.map
              (fun (a : Relalg.Agg.t) ->
                { a with Relalg.Agg.arg = Relalg.Expr.Col (List.hd keys) })
              aggs
          in
          let op =
            match n.Plan.op with
            | Physop.P_stream_agg { keys; aggs; scope } ->
                Physop.P_stream_agg { keys; aggs = redirect keys aggs; scope }
            | Physop.P_hash_agg { keys; aggs; scope } ->
                Physop.P_hash_agg { keys; aggs = redirect keys aggs; scope }
            | op -> op
          in
          { n with Plan.op = op })
        plan)

let sa053 =
  equiv_mutation "SA053 enforcer dropping a schema column" "SA053"
    (fun _ _ plan ->
      corrupt_first
        (fun n ->
          Physop.is_enforcer n.Plan.op && List.length n.Plan.schema > 1)
        (fun n -> { n with Plan.schema = List.tl n.Plan.schema })
        plan)

let sa054 =
  equiv_mutation "SA054 spool producing none of the consumed columns" "SA054"
    (fun _ _ plan ->
      corrupt_first
        (fun n ->
          match n.Plan.op with Physop.P_spool -> true | _ -> false)
        (fun n -> { n with Plan.schema = [] })
        plan)

let sa055 =
  mutation "SA055 memo expression with divergent lineage" "SA055" (fun () ->
      let _, _, r = fresh () in
      let memo = r.Cse.Pipeline.memo in
      ( (fun () -> Equiv_audit.memo_lineage memo),
        fun () ->
          let g, e, keys, aggs = group_by_group memo in
          let twisted =
            {
              (List.hd aggs) with
              Relalg.Agg.arg = Relalg.Expr.Col (List.hd keys);
            }
          in
          Memo.set_exprs memo g
            (Memo.exprs g
            @ [
                {
                  Memo.mop = Logop.Group_by { keys; aggs = [ twisted ] };
                  children = e.Memo.children;
                };
              ]) ))

let sa058 =
  equiv_mutation "SA058 ORDER BY added with no delivering plan" "SA058"
    (fun _ dag plan ->
      let i = dag_node is_output dag in
      let n = dag.Slogical.Dag.nodes.(i) in
      (match n.Slogical.Dag.op with
      | Logop.Output { file; order = _ } ->
          let col = List.hd (Relalg.Schema.names n.Slogical.Dag.schema) in
          dag.Slogical.Dag.nodes.(i) <-
            {
              n with
              Slogical.Dag.op = Logop.Output { file; order = [ (col, false) ] };
            }
      | _ -> assert false);
      plan)

(* Cross-layer interference (SA056/SA057): corrupt the stage graph's
   ordering edges and spool-cell ownership. *)

let race_mutation mname mcode corrupt =
  mutation mname mcode (fun () ->
      let _, _, r = fresh () in
      let g = ref (Stage.build r.Cse.Pipeline.cse_plan) in
      ((fun () -> Race_audit.check_graph !g), fun () -> g := corrupt !g))

let sa056 =
  race_mutation "SA056 cross-stage read with its ordering edge removed"
    "SA056" (fun g ->
      let victim =
        match
          Array.to_seq g.Stage.stages
          |> Seq.filter (fun (st : Stage.stage) -> st.Stage.deps <> [])
          |> Seq.uncons
        with
        | Some (st, _) -> st.Stage.id
        | None -> die "mutation harness: no stage with dependencies"
      in
      {
        g with
        Stage.stages =
          Array.map
            (fun (st : Stage.stage) ->
              if st.Stage.id = victim then
                { st with Stage.deps = List.tl st.Stage.deps }
              else st)
            g.Stage.stages;
      })

let sa057 =
  race_mutation "SA057 second unordered stage over one spool cell" "SA057"
    (fun g ->
      let spool_stage =
        match
          Array.to_seq g.Stage.stages
          |> Seq.filter (fun (st : Stage.stage) ->
                 match st.Stage.root.Plan.op with
                 | Physop.P_spool -> true
                 | _ -> false)
          |> Seq.uncons
        with
        | Some (st, _) -> st
        | None -> die "mutation harness: no spool stage"
      in
      let dup = { spool_stage with Stage.id = Array.length g.Stage.stages } in
      { g with Stage.stages = Array.append g.Stage.stages [| dup |] })

let all =
  [
    sa001;
    sa002;
    sa003;
    sa004;
    sa005;
    sa006;
    sa007;
    sa010;
    sa011;
    sa012;
    sa013;
    sa014;
    sa020;
    sa021;
    sa022;
    sa031;
    sa032;
    sa033;
    sa034;
    sa040;
    sa041;
    sa043;
    sa044;
    sa050_file;
    sa050_agg;
    sa051;
    sa052;
    sa053;
    sa054;
    sa055;
    sa056;
    sa057;
    sa058;
  ]

(* ---- verification ------------------------------------------------------ *)

let has code diags =
  List.exists (fun (d : Diag.t) -> d.Diag.code = code) diags

let verify m =
  match m.mrun () with
  | exception e ->
      Error (Printf.sprintf "%s: harness failure: %s" m.mname (Printexc.to_string e))
  | clean, corrupted ->
      if has m.mcode clean then
        Error
          (Printf.sprintf "%s: vacuous — %s already present before corruption"
             m.mname m.mcode)
      else if Diag.errors clean <> [] then
        Error
          (Printf.sprintf "%s: baseline not clean:\n%s" m.mname
             (Fmt.str "%a" Diag.pp_report clean))
      else if not (has m.mcode corrupted) then
        Error
          (Printf.sprintf "%s: corruption escaped — expected %s, got:\n%s"
             m.mname m.mcode
             (Fmt.str "%a" Diag.pp_report corrupted))
      else Ok ()
