(** Facade of the static-analysis layer: run every analyzer pass over the
    optimizer's own data structures after optimization.

    The individual passes live in {!Memo_audit}, {!Sharing_audit},
    {!Logical_audit} and {!Plan_audit}; this module composes them over a
    full {!Cse.Pipeline.report} and offers an assertion helper for
    harnesses honoring {!Cse.Config.audit}. *)

(** Diagnostics of every pass over a full pipeline report: logical-DAG
    lint over the bound DAG, memo audit over the CSE memo, sharing audit
    (with the report's phase-2 candidate property sets and the final CSE
    plan), plan-DAG lint and stage-graph audit over the conventional,
    phase-1 and CSE plans.  With [deep] (default [false]) the cross-layer
    SA05x passes also run: semantic equivalence and column lineage
    ({!Equiv_audit}) plus stage-graph interference ({!Race_audit}) over
    every plan. *)
val report :
  ?deep:bool ->
  cluster:Scost.Cluster.t ->
  catalog:Relalg.Catalog.t ->
  Cse.Pipeline.report ->
  Diag.t list

(** Audit a single optimized memo and plan outside the pipeline. *)
val memo_and_plan :
  cluster:Scost.Cluster.t ->
  ?plan:Sphys.Plan.t ->
  Smemo.Memo.t ->
  Diag.t list

(** Raise [Failure] with the pretty report when the audit of a pipeline
    report finds any error-severity diagnostic.  [deep] defaults to
    [true]: harnesses honoring {!Cse.Config.audit} get the cross-layer
    passes too. *)
val assert_clean :
  ?deep:bool ->
  cluster:Scost.Cluster.t ->
  catalog:Relalg.Catalog.t ->
  Cse.Pipeline.report ->
  unit
