open Relalg
open Sphys

(* Cross-layer semantic-equivalence auditor (the SA05x tentpole).

   The CSE optimizer's whole claim is that sharing subexpressions through
   spools changes cost, never semantics.  This pass proves it per output,
   statically, after every optimization:

   - SA050: each physical output's canonical algebra form ({!Canon}) must
     equal its logical output's, and the two sides must write the same
     file set;
   - SA051: every physical shape must have a logical meaning at all
     (orphan local/global aggregations, misplaced OUTPUTs);
   - SA058: an ORDER BY on a logical output must be delivered by the
     physical OUTPUT's input as serial placement plus a satisfying sort;
   - SA052: each output column's lineage ({!Lineage}) must coincide —
     same base columns, same derivations — an independent second signal
     next to the canonicalizer;
   - SA053: spools and enforcers must pass their input through untouched
     (schema preserved; they add physical properties, never content);
   - SA054: every column a spool's consumer reads must be produced by the
     shared producer. *)

(* ---- SA050 / SA051 / SA058: canonical equivalence --------------------- *)

let canon_diags (dag : Slogical.Dag.t) (plan : Plan.t) =
  let ctx = Canon.create () in
  match
    let louts = Canon.of_logical ctx dag in
    let pouts = Canon.of_physical ctx plan in
    (louts, pouts)
  with
  | exception Canon.Unrepresentable msg ->
      [ Diag.make ~code:"SA051" ~loc:Diag.Whole msg ]
  | louts, pouts ->
      let lfiles =
        List.sort String.compare (List.map (fun o -> o.Canon.file) louts)
      in
      let pfiles =
        List.sort String.compare
          (List.map (fun (o, _) -> o.Canon.file) pouts)
      in
      let fileset =
        if lfiles = pfiles then []
        else
          [
            Diag.make ~code:"SA050" ~loc:Diag.Whole
              (Printf.sprintf
                 "output file sets differ: logical {%s}, physical {%s}"
                 (String.concat ", " lfiles)
                 (String.concat ", " pfiles));
          ]
      in
      let per_output =
        List.concat_map
          (fun (lo : Canon.out) ->
            match
              List.find_opt (fun (po, _) -> po.Canon.file = lo.Canon.file) pouts
            with
            | None -> []
            | Some (po, props) ->
                let equiv =
                  if po.Canon.cid = lo.Canon.cid then []
                  else
                    [
                      Diag.make ~code:"SA050" ~loc:(Diag.Output lo.Canon.file)
                        (Printf.sprintf
                           "canonical forms differ:@ logical %s@ physical %s"
                           (Canon.to_string ctx lo.Canon.cid)
                           (Canon.to_string ctx po.Canon.cid));
                    ]
                in
                let ordering =
                  match lo.Canon.order with
                  | [] -> []
                  | order ->
                      let required =
                        List.map
                          (fun (c, desc) ->
                            (c, if desc then Sortorder.Desc else Sortorder.Asc))
                          order
                      in
                      let serial = props.Props.part = Partition.Serial in
                      let sorted = Sortorder.prefix required props.Props.sort in
                      if serial && sorted then []
                      else
                        [
                          Diag.make ~code:"SA058"
                            ~loc:(Diag.Output lo.Canon.file)
                            (Printf.sprintf
                               "ORDER BY %s not delivered: output input is %s"
                               (Sortorder.to_string required)
                               (Props.to_string props));
                        ]
                in
                equiv @ ordering)
          louts
      in
      fileset @ per_output

(* ---- SA052: column lineage -------------------------------------------- *)

let lineage_diags (dag : Slogical.Dag.t) (plan : Plan.t) =
  let ctx = Lineage.create () in
  let louts = Lineage.of_dag ctx dag in
  let pouts = Lineage.of_plan ctx plan in
  List.concat_map
    (fun (file, lenv) ->
      match List.assoc_opt file pouts with
      | None -> [] (* missing output already reported by SA050 *)
      | Some penv ->
          let sorted env =
            List.sort (fun (a, _) (b, _) -> String.compare a b) env
          in
          if sorted lenv = sorted penv then []
          else
            let divergent =
              List.filter_map
                (fun (c, li) ->
                  match List.assoc_opt c penv with
                  | Some pi when pi = li -> None
                  | _ -> Some c)
                lenv
              @ List.filter_map
                  (fun (c, _) ->
                    if List.mem_assoc c lenv then None else Some c)
                  penv
            in
            [
              Diag.make ~code:"SA052" ~loc:(Diag.Output file)
                (Printf.sprintf
                   "column lineage diverges between logical and physical plans \
                    (columns: %s)"
                   (String.concat ", "
                      (List.sort_uniq String.compare divergent)));
            ])
    louts

(* ---- SA053 / SA054: spool & enforcer content preservation ------------- *)

(* Walk physically distinct plan nodes once. *)
let distinct_nodes (plan : Plan.t) =
  let seen = ref [] in
  let rec go (n : Plan.t) =
    if not (List.exists (fun p -> p == n) !seen) then begin
      seen := n :: !seen;
      List.iter go n.Plan.children
    end
  in
  go plan;
  List.rev !seen

let enforcer_diags (plan : Plan.t) =
  List.concat_map
    (fun (n : Plan.t) ->
      let transparent =
        Physop.is_enforcer n.Plan.op
        || match n.Plan.op with Physop.P_spool -> true | _ -> false
      in
      match (transparent, n.Plan.children) with
      | true, [ c ] when not (Schema.equal n.Plan.schema c.Plan.schema) ->
          [
            Diag.make ~code:"SA053"
              ~loc:(Diag.Operator (Physop.short_name n.Plan.op))
              (Printf.sprintf "schema (%s) differs from its input's (%s)"
                 (Schema.to_string n.Plan.schema)
                 (Schema.to_string c.Plan.schema));
          ]
      | _ -> [])
    (distinct_nodes plan)

(* Columns an operator reads from the child in slot [i]. *)
let columns_read (n : Plan.t) i =
  let side_schema j =
    match List.nth_opt n.Plan.children j with
    | Some c -> Schema.colset c.Plan.schema
    | None -> Colset.empty
  in
  match n.Plan.op with
  | Physop.P_filter { pred } -> Expr.columns pred
  | Physop.P_project { items } ->
      List.fold_left
        (fun acc (e, _) -> Colset.union acc (Expr.columns e))
        Colset.empty items
  | Physop.P_stream_agg { keys; aggs; _ } | Physop.P_hash_agg { keys; aggs; _ }
    ->
      List.fold_left
        (fun acc (a : Agg.t) -> Colset.union acc (Expr.columns a.Agg.arg))
        (Colset.of_list keys) aggs
  | Physop.P_merge_join { pairs; residual; _ }
  | Physop.P_hash_join { pairs; residual; _ } ->
      let own = List.map (if i = 0 then fst else snd) pairs in
      let res =
        match residual with
        | None -> Colset.empty
        | Some e -> Colset.diff (Expr.columns e) (side_schema (1 - i))
      in
      Colset.union (Colset.of_list own) res
  | Physop.P_sort { order } -> Sortorder.columns order
  | Physop.P_exchange { cols } | Physop.P_merge_exchange { cols } -> cols
  | Physop.P_union_all | Physop.P_output _ -> Schema.colset n.Plan.schema
  | Physop.P_extract _ | Physop.P_spool | Physop.P_sequence | Physop.P_gather
    ->
      Colset.empty

let spool_read_diags (plan : Plan.t) =
  List.concat_map
    (fun (n : Plan.t) ->
      List.concat
        (List.mapi
           (fun i (c : Plan.t) ->
             match c.Plan.op with
             | Physop.P_spool ->
                 let provided = Schema.colset c.Plan.schema in
                 let missing = Colset.diff (columns_read n i) provided in
                 if Colset.is_empty missing then []
                 else
                   [
                     Diag.make ~code:"SA054"
                       ~loc:(Diag.Operator (Physop.short_name n.Plan.op))
                       (Printf.sprintf
                          "reads %s not produced by spool (group %d)"
                          (Colset.to_string missing) c.Plan.group);
                   ]
             | _ -> [])
           n.Plan.children))
    (distinct_nodes plan)

(* ---- entry points ----------------------------------------------------- *)

let run ~(dag : Slogical.Dag.t) ~(plan : Plan.t) : Diag.t list =
  canon_diags dag plan @ lineage_diags dag plan @ enforcer_diags plan
  @ spool_read_diags plan

let memo_lineage (memo : Smemo.Memo.t) : Diag.t list =
  Lineage.of_memo (Lineage.create ()) memo
