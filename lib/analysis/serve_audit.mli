(** Serve metrics auditor (SA046): checks a serve engine's metrics
    snapshot for internal consistency — every served session classified
    as exactly one of cache hit / miss, every served session observed in
    exactly one latency path histogram (hit / share / miss, hit
    sessions on the hit path), and the cache-size gauge agreeing with
    the plan cache's actual entry count.

    Takes plain {!Sobs.Metrics} snapshot rows so it depends on nothing
    from the serve layer; callers pass
    [Sobs.Metrics.snapshot (Sserve.Engine.metrics engine)] and
    [Sserve.Plan_cache.size]. *)

val run : cache_entries:int -> Sobs.Metrics.row list -> Diag.t list
