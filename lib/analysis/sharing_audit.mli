(** Sharing auditor.

    Checks the shared/spool-group structure produced by Algorithm 1 and
    consumed by phase 2: every group with [shared = true] is a spool group
    (SA010) with at least two consumers (SA011), the phase-2 candidate
    property sets are non-empty and duplicate-free (SA012), and the final
    plan materializes each shared group at most once (SA013) and only
    spools groups actually marked shared (SA014). *)

(** Candidate-property diagnostics for one shared group. *)
val candidates_diags : shared:int -> Sphys.Reqprops.t list -> Diag.t list

(** Spool-materialization diagnostics of a final plan against the memo's
    shared flags. When [degraded] (a budget-truncated optimization), a
    multiple materialization is reported as a warning: with phase 2 cut
    short the plan legitimately falls back to the phase-1 shape, one
    materialization per distinct property requirement. *)
val plan_diags :
  ?degraded:bool -> memo:Smemo.Memo.t -> Sphys.Plan.t -> Diag.t list

(** Run the full sharing audit. [candidates] maps each shared group to its
    phase-2 property sets; [plan] is the final optimized plan. *)
val run :
  ?degraded:bool ->
  ?candidates:(int * Sphys.Reqprops.t list) list ->
  ?plan:Sphys.Plan.t ->
  Smemo.Memo.t ->
  Diag.t list
