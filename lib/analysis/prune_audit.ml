open Sphys

(* Round-pruning soundness auditor (SA060).

   Phase 2 records every candidate property set it dropped by dominance
   filtering together with the kept candidate that justified the drop.
   This pass re-verifies each recorded pair against the conditions the
   dominance argument actually needs — independently of the filtering
   code, so a regression in the rule (or a rule extension that silently
   weakens it) turns into an audit error instead of a silently changed
   plan:

   - the dominator pins the same concrete partitioning as the dropped
     candidate, and that partitioning is not [Any] (an [Any] pin leaves
     the delivered partitioning unconstrained, so two [Any] candidates
     are not interchangeable deliveries);
   - the dropped sort is a non-empty strict prefix of the dominator's
     (equal key-independent production cost, prefix-closed usefulness);
   - the dominator actually survived the filter (it is in the kept
     candidate list the rounds enumerated), so the pruned round's
     combination space is covered by a round that really ran. *)

let pair_diags ~shared ~(kept : Reqprops.t list) ((p : Reqprops.t), (by : Reqprops.t)) =
  let loc = Diag.Group shared in
  let fail msg =
    [
      Diag.make ~code:"SA060" ~loc
        (Printf.sprintf "dropped %s under dominator %s: %s" (Reqprops.to_key p)
           (Reqprops.to_key by) msg);
    ]
  in
  let part_ok =
    match (p.Reqprops.part, by.Reqprops.part) with
    | Reqprops.Hash_exact a, Reqprops.Hash_exact b -> Relalg.Colset.equal a b
    | Reqprops.Serial_req, Reqprops.Serial_req -> true
    | _ -> false
  in
  if not part_ok then
    fail "partitionings differ (or one is unconstrained)"
  else if Sortorder.is_empty p.Reqprops.sort then
    fail "dropped sort is empty (nothing guarantees equal enforcement cost)"
  else if not (Sortorder.prefix p.Reqprops.sort by.Reqprops.sort) then
    fail "dropped sort is not a prefix of the dominator's"
  else if Sortorder.equal p.Reqprops.sort by.Reqprops.sort then
    fail "sorts are equal (a duplicate, not a dominated candidate)"
  else if not (List.exists (Reqprops.equal by) kept) then
    fail "dominator is not among the kept candidates"
  else if List.exists (Reqprops.equal p) kept then
    fail "dropped candidate still appears among the kept candidates"
  else []

let run ~(candidates : (int * Reqprops.t list) list)
    (pruned : (int * (Reqprops.t * Reqprops.t) list) list) : Diag.t list =
  List.concat_map
    (fun (shared, pairs) ->
      let kept = Option.value ~default:[] (List.assoc_opt shared candidates) in
      List.concat_map (pair_diags ~shared ~kept) pairs)
    pruned
