(** Stage-graph auditor (SA040-SA044).

    Re-derives the staged executor's structural invariants from the plan,
    independently of {!Sexec.Stage.build}: topological stage ids (SA040),
    dependency lists matching the interior's left-to-right boundary walk
    (SA041), physical sharing flowing through spools only (SA042, warning),
    OUTPUT / SEQUENCE confined to the sink stage (SA043), and every stage
    a transitive dependency of the sink (SA044) — the invariant the
    parallel wave scheduler's demand closure and sink-isolation rest on.
    Stage locations are reported as [Diag.Node] of the stage id. *)

(** Audit an already-built stage graph against its plan.  With
    [~expect_spooled_sharing:false] (the conventional baseline, which
    shares winner subplans physically by design) SA042 is not emitted. *)
val check_graph :
  ?expect_spooled_sharing:bool ->
  Sphys.Plan.t ->
  Sexec.Stage.graph ->
  Diag.t list

(** Compile the plan with {!Sexec.Stage.build} and audit the result. *)
val run : ?expect_spooled_sharing:bool -> Sphys.Plan.t -> Diag.t list
