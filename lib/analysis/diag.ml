(* The diagnostics framework of the static-analysis layer.

   A diagnostic is a finding of one analyzer pass: a stable code (SA0xx),
   a severity, a location inside the audited structure and a message.
   Codes are registered in the catalog below; [make] refuses unknown codes
   so passes cannot emit undocumented diagnostics. *)

type severity = Error | Warning | Info

type location =
  | Group of int
  | Winner of int * string
  | Node of int
  | Operator of string
  | Whole

type t = { code : string; severity : severity; loc : location; message : string }

(* One entry per diagnostic the audit passes can emit.  Codes are stable:
   tests assert on them and users grep for them; never renumber. *)
let catalog =
  [
    (* memo auditor *)
    ("SA001", Error, "cycle in memo group references");
    ("SA002", Error, "group expression incompatible with its group's schema");
    ("SA003", Error, "memoized winner cost does not reproduce from the cost model");
    ("SA004", Error, "memoized winner plan violates the plan checker");
    ("SA005", Error, "memoized winner does not satisfy its recorded requirement");
    ("SA006", Error, "infeasibility marker contradicted by a feasible winner");
    ("SA007", Warning, "winner plan implements a different group");
    (* sharing auditor *)
    ("SA010", Error, "group marked shared is not a spool group");
    ("SA011", Warning, "shared group has fewer than two consumers");
    ("SA012", Error, "phase-2 candidate property set empty or duplicated");
    ("SA013", Error, "shared group materialized more than once in the plan");
    ("SA014", Warning, "plan spools a group that is not marked shared");
    (* logical-DAG lint *)
    ("SA020", Error, "operator references a column missing from its children");
    ("SA021", Error, "statistics are not sane (negative or NaN)");
    ("SA022", Warning, "column NDV exceeds the estimated row count");
    (* plan-DAG lint *)
    ("SA030", Error, "operator input requirements violated in the plan DAG");
    ("SA031", Error, "plan node cost is not op_cost plus children's costs");
    ("SA032", Error, "operator cost is negative or not finite");
    ("SA033", Warning, "spool node carries no memo group id");
    ("SA034", Error, "cached region cost summary does not reproduce");
    (* stage-graph audit *)
    ("SA040", Error, "stage graph is not topologically ordered");
    ("SA041", Error, "stage interior diverges from its recorded dependencies");
    ("SA042", Warning, "non-spool subtree shared across stage references");
    ("SA043", Error, "OUTPUT or SEQUENCE outside the sink stage");
    ("SA044", Error, "stage not reachable from the sink through dependencies");
    (* trace audit *)
    ("SA045", Error, "executed stage missing from or duplicated in the trace");
  ]

let default_severity code =
  match List.find_opt (fun (c, _, _) -> c = code) catalog with
  | Some (_, s, _) -> s
  | None -> invalid_arg (Printf.sprintf "Diag.make: unknown code %s" code)

let make ?severity ~code ~loc message =
  let default = default_severity code in
  { code; severity = Option.value ~default severity; loc; message }

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let summary ds =
  List.filter_map
    (fun (code, _, _) ->
      match List.length (List.filter (fun d -> d.code = code) ds) with
      | 0 -> None
      | n -> Some (code, n))
    catalog

let rank = function Error -> 2 | Warning -> 1 | Info -> 0

let exit_code ?(fail_on = Error) ds =
  if List.exists (fun d -> rank d.severity >= rank fail_on) ds then 1 else 0

let pp_severity ppf s =
  Fmt.string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp_location ppf = function
  | Group g -> Fmt.pf ppf "group %d" g
  | Winner (g, req) -> Fmt.pf ppf "group %d winner [%s]" g req
  | Node n -> Fmt.pf ppf "node %d" n
  | Operator op -> Fmt.pf ppf "operator %s" op
  | Whole -> Fmt.string ppf "whole structure"

let pp ppf d =
  Fmt.pf ppf "%s %a at %a: %s" d.code pp_severity d.severity pp_location d.loc
    d.message

let pp_report ppf ds =
  let ds = List.stable_sort (fun a b -> String.compare a.code b.code) ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds;
  Fmt.pf ppf "%d error(s), %d warning(s)@."
    (List.length (errors ds))
    (List.length (warnings ds))

let pp_summary ppf ds =
  Fmt.pf ppf "lint-summary errors=%d warnings=%d"
    (List.length (errors ds))
    (List.length (warnings ds));
  List.iter (fun (code, n) -> Fmt.pf ppf " %s=%d" code n) (summary ds);
  Fmt.pf ppf "@."

let to_string d = Fmt.str "%a" pp d
