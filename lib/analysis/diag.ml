(* The diagnostics framework of the static-analysis layer.

   A diagnostic is a finding of one analyzer pass: a stable code (SA0xx),
   a severity, a location inside the audited structure and a message.
   Codes are registered in the catalog below; [make] refuses unknown codes
   so passes cannot emit undocumented diagnostics, and loading the module
   refuses duplicate registrations so two passes cannot silently claim the
   same code. *)

type severity = Error | Warning | Info

type location =
  | Group of int
  | Winner of int * string
  | Node of int
  | Operator of string
  | Output of string
  | Whole

type t = { code : string; severity : severity; loc : location; message : string }

type entry = {
  ecode : string;
  eseverity : severity;
  layer : string;
  describe : string;
}

(* One entry per diagnostic the audit passes can emit.  Codes are stable:
   tests assert on them and users grep for them; never renumber.  The
   [layer] names the structure the pass audits, for [pp_catalog] and the
   DESIGN.md SA catalog. *)
let catalog =
  let e ecode eseverity layer describe = { ecode; eseverity; layer; describe } in
  [
    (* memo auditor *)
    e "SA001" Error "memo" "cycle in memo group references";
    e "SA002" Error "memo" "group expression incompatible with its group's schema";
    e "SA003" Error "memo" "memoized winner cost does not reproduce from the cost model";
    e "SA004" Error "memo" "memoized winner plan violates the plan checker";
    e "SA005" Error "memo" "memoized winner does not satisfy its recorded requirement";
    e "SA006" Error "memo" "infeasibility marker contradicted by a feasible winner";
    e "SA007" Warning "memo" "winner plan implements a different group";
    (* sharing auditor *)
    e "SA010" Error "sharing" "group marked shared is not a spool group";
    e "SA011" Warning "sharing" "shared group has fewer than two consumers";
    e "SA012" Error "sharing" "phase-2 candidate property set empty or duplicated";
    e "SA013" Error "sharing" "shared group materialized more than once in the plan";
    e "SA014" Warning "sharing" "plan spools a group that is not marked shared";
    (* logical-DAG lint *)
    e "SA020" Error "logical" "operator references a column missing from its children";
    e "SA021" Error "logical" "statistics are not sane (negative or NaN)";
    e "SA022" Warning "logical" "column NDV exceeds the estimated row count";
    (* plan-DAG lint *)
    e "SA030" Error "plan" "operator input requirements violated in the plan DAG";
    e "SA031" Error "plan" "plan node cost is not op_cost plus children's costs";
    e "SA032" Error "plan" "operator cost is negative or not finite";
    e "SA033" Warning "plan" "spool node carries no memo group id";
    e "SA034" Error "plan" "cached region cost summary does not reproduce";
    (* stage-graph audit *)
    e "SA040" Error "stages" "stage graph is not topologically ordered";
    e "SA041" Error "stages" "stage interior diverges from its recorded dependencies";
    e "SA042" Warning "stages" "non-spool subtree shared across stage references";
    e "SA043" Error "stages" "OUTPUT or SEQUENCE outside the sink stage";
    e "SA044" Error "stages" "stage not reachable from the sink through dependencies";
    (* trace audit *)
    e "SA045" Error "trace" "executed stage missing from or duplicated in the trace";
    (* serve metrics audit *)
    e "SA046" Error "serve" "serve metrics snapshot inconsistent with engine accounting";
    (* cross-layer semantic equivalence (deep audit) *)
    e "SA050" Error "cross-layer" "physical output not equivalent to its logical output (canonical forms differ)";
    e "SA051" Error "cross-layer" "physical plan shape has no canonical logical interpretation";
    e "SA052" Error "cross-layer" "output column lineage diverges between logical and physical plans";
    e "SA053" Error "cross-layer" "enforcer or spool perturbs its input schema";
    e "SA054" Error "cross-layer" "spool consumer reads a column the shared producer does not provide";
    e "SA055" Error "cross-layer" "memo group expressions disagree on column lineage";
    e "SA056" Error "cross-layer" "cross-stage read not ordered by a dependency edge";
    e "SA057" Error "cross-layer" "concurrently schedulable stages write the same spool or cache cell";
    e "SA058" Error "cross-layer" "ORDER BY requirement not delivered by the physical output";
    (* round-pruning audit *)
    e "SA060" Error "pruning" "dominance-pruned candidate not subsumed by its recorded dominator";
  ]

(* Duplicate-code registration is a hard error at startup: the catalog is
   the single registry, and a second pass reusing a code would make test
   assertions and grep-ability meaningless. *)
let () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun { ecode; _ } ->
      if Hashtbl.mem seen ecode then
        invalid_arg
          (Printf.sprintf "Diag: duplicate catalog registration for code %s"
             ecode);
      Hashtbl.add seen ecode ())
    catalog

let find_entry code = List.find_opt (fun e -> e.ecode = code) catalog

let default_severity code =
  match find_entry code with
  | Some e -> e.eseverity
  | None -> invalid_arg (Printf.sprintf "Diag.make: unknown code %s" code)

let make ?severity ~code ~loc message =
  let default = default_severity code in
  { code; severity = Option.value ~default severity; loc; message }

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let summary ds =
  List.filter_map
    (fun { ecode; _ } ->
      match List.length (List.filter (fun d -> d.code = ecode) ds) with
      | 0 -> None
      | n -> Some (ecode, n))
    catalog

let rank = function Error -> 2 | Warning -> 1 | Info -> 0

let worst ds =
  List.fold_left
    (fun acc d -> match acc with
      | Some s when rank s >= rank d.severity -> acc
      | _ -> Some d.severity)
    None ds

let exit_code ?(fail_on = Error) ds =
  if List.exists (fun d -> rank d.severity >= rank fail_on) ds then 1 else 0

let pp_severity ppf s =
  Fmt.string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp_location ppf = function
  | Group g -> Fmt.pf ppf "group %d" g
  | Winner (g, req) -> Fmt.pf ppf "group %d winner [%s]" g req
  | Node n -> Fmt.pf ppf "node %d" n
  | Operator op -> Fmt.pf ppf "operator %s" op
  | Output file -> Fmt.pf ppf "output %s" file
  | Whole -> Fmt.string ppf "whole structure"

let pp ppf d =
  Fmt.pf ppf "%s %a at %a: %s" d.code pp_severity d.severity pp_location d.loc
    d.message

let pp_report ppf ds =
  let ds = List.stable_sort (fun a b -> String.compare a.code b.code) ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds;
  Fmt.pf ppf "%d error(s), %d warning(s)@."
    (List.length (errors ds))
    (List.length (warnings ds))

let pp_summary ppf ds =
  Fmt.pf ppf "lint-summary errors=%d warnings=%d"
    (List.length (errors ds))
    (List.length (warnings ds));
  List.iter (fun (code, n) -> Fmt.pf ppf " %s=%d" code n) (summary ds);
  Fmt.pf ppf "@."

let pp_catalog ppf () =
  List.iter
    (fun e ->
      let sev = Fmt.str "%a" pp_severity e.eseverity in
      Fmt.pf ppf "%s  %-7s %-11s %s@." e.ecode sev e.layer e.describe)
    catalog;
  Fmt.pf ppf "%d codes@." (List.length catalog)

let to_string d = Fmt.str "%a" pp d
