(** Static interference audit over the stage graph (SA056/SA057).

    Lifts the domain-parallel executor's determinism contract into a
    static check: no two concurrently schedulable stages may write the
    same spool/cache cell (SA057), and every cross-stage read must be
    ordered by a dependency edge to its producer (SA056). *)

val check_graph : Sexec.Stage.graph -> Diag.t list

(** Build the stage graph of a plan and audit it. *)
val run : Sphys.Plan.t -> Diag.t list
