open Relalg

(* Logical-DAG lint over binder output.

   Column resolution (SA020): the binder already rejects unresolved names,
   so a violation here means a DAG was built or rewritten inconsistently —
   exactly the silent corruption the analysis layer exists to catch.
   Statistics sanity (SA021/SA022): estimates flow bottom-up through every
   cost decision; a NaN or negative value poisons every comparison above
   it without ever raising. *)

let is_bad f = Float.is_nan f || f < 0.0 || f = Float.infinity

let stats_diags ~loc (s : Slogical.Stats.t) =
  let bad what v =
    Diag.make ~code:"SA021" ~loc
      (Printf.sprintf "%s is %s" what (Float.to_string v))
  in
  let ds = ref [] in
  if is_bad s.Slogical.Stats.rows then ds := bad "row count" s.Slogical.Stats.rows :: !ds;
  if is_bad s.Slogical.Stats.row_bytes then
    ds := bad "row width" s.Slogical.Stats.row_bytes :: !ds;
  List.iter
    (fun (c, ndv) ->
      if is_bad ndv then ds := bad (Printf.sprintf "NDV of column %s" c) ndv :: !ds
      else if
        (not (Float.is_nan s.Slogical.Stats.rows))
        && s.Slogical.Stats.rows >= 0.0
        && ndv > s.Slogical.Stats.rows +. 0.5
      then
        ds :=
          Diag.make ~code:"SA022" ~loc
            (Printf.sprintf "column %s has NDV %.6g > %.6g rows" c ndv
               s.Slogical.Stats.rows)
          :: !ds)
    s.Slogical.Stats.ndvs;
  List.rev !ds

(* Columns an operator references, paired with the child schemas they must
   resolve in. *)
let op_columns_diags ~loc (op : Slogical.Logop.t) (child_schemas : Schema.t list)
    =
  let ds = ref [] in
  let missing what c =
    ds :=
      Diag.make ~code:"SA020" ~loc
        (Printf.sprintf "%s references missing column %s" what c)
      :: !ds
  in
  let require schema what cols =
    List.iter
      (fun c -> if not (Schema.mem c schema) then missing what c)
      (Colset.to_list cols)
  in
  let child i = List.nth_opt child_schemas i in
  (match (op, child_schemas) with
  | Slogical.Logop.Extract _, _ | Slogical.Logop.Spool, _
  | Slogical.Logop.Sequence, _ | Slogical.Logop.Union_all, _ ->
      ()
  | Slogical.Logop.Filter { pred }, [ s ] ->
      require s "filter predicate" (Expr.columns pred)
  | Slogical.Logop.Project { items }, [ s ] ->
      List.iter
        (fun (e, out) ->
          require s (Printf.sprintf "projection item %s" out) (Expr.columns e))
        items
  | ( ( Slogical.Logop.Group_by { keys; aggs }
      | Slogical.Logop.Group_by_local { keys; aggs }
      | Slogical.Logop.Group_by_global { keys; aggs } ),
      [ s ] ) ->
      require s "grouping key" (Colset.of_list keys);
      List.iter
        (fun (a : Agg.t) ->
          require s
            (Printf.sprintf "aggregate %s" a.Agg.output)
            (Expr.columns a.Agg.arg))
        aggs
  | Slogical.Logop.Join { pairs; residual; _ }, [ ls; rs ] ->
      List.iter
        (fun (a, b) ->
          if not (Schema.mem a ls) then missing "left join key" a;
          if not (Schema.mem b rs) then missing "right join key" b)
        pairs;
      Option.iter
        (fun e -> require (ls @ rs) "join residual" (Expr.columns e))
        residual
  | Slogical.Logop.Output { order; _ }, [ s ] ->
      require s "output order" (Colset.of_list (List.map fst order))
  | _ ->
      (* arity mismatch: fall back to checking against the union of the
         children so a wrong child count still surfaces missing columns *)
      ignore child);
  List.rev !ds

let run ~catalog ~machines (dag : Slogical.Dag.t) : Diag.t list =
  (* statistics are re-derived bottom-up exactly as the memo would *)
  let stats : (int, Slogical.Stats.t) Hashtbl.t = Hashtbl.create 64 in
  Slogical.Dag.fold_topological dag
    (fun diags (n : Slogical.Dag.node) ->
      let loc = Diag.Node n.Slogical.Dag.id in
      let child_schemas =
        List.map (Slogical.Dag.schema dag) n.Slogical.Dag.children
      in
      let child_stats =
        List.filter_map (Hashtbl.find_opt stats) n.Slogical.Dag.children
      in
      let s =
        Slogical.Stats.derive ~machines n.Slogical.Dag.op ~catalog
          ~schema:n.Slogical.Dag.schema child_stats
      in
      Hashtbl.replace stats n.Slogical.Dag.id s;
      diags
      @ op_columns_diags ~loc n.Slogical.Dag.op child_schemas
      @ stats_diags ~loc s)
    []
