(** Canonical relational-algebra forms for the cross-layer equivalence
    audit.

    Normalizes a bound logical DAG and a chosen physical plan into one
    hash-consed term language — predicates flattened/oriented/sorted and
    merged across adjacent filters, filters hoisted above joins,
    projection and aggregation parameter lists sorted, inner joins ordered
    modulo commutativity, UNION ALL trees flattened, and every purely
    physical artifact (spools, enforcers, the local/global aggregation
    split) erased.  Two sides denote the same query exactly when they
    intern to the same canonical id, so {!Equiv_audit} compares outputs by
    integer equality (SA050) and reports plan shapes with no logical
    meaning via {!Unrepresentable} (SA051).

    ORDER BY is deliberately not part of the canonical form: physical
    plans realize it as delivered properties on the OUTPUT input, audited
    separately (SA058). *)

(** The physical plan contains a shape with no canonical logical
    interpretation (e.g. an orphan local or global aggregation). *)
exception Unrepresentable of string

(** A hash-consing context; canonical ids are only comparable within one
    context. *)
type ctx

val create : unit -> ctx

(** One script output: target file, canonical id of the producing
    expression, and (logical side only) the ORDER BY requirement. *)
type out = { file : string; cid : int; order : (string * bool) list }

(** Canonical form of every output of the bound logical DAG. *)
val of_logical : ctx -> Slogical.Dag.t -> out list

(** Canonical form of every output of a physical plan, each with the
    delivered properties of its OUTPUT operator (for the SA058 ordering
    check).  Raises {!Unrepresentable} on shapes without logical
    meaning. *)
val of_physical : ctx -> Sphys.Plan.t -> (out * Sphys.Props.t) list

(** Normalized conjunct list of a predicate (exposed for tests). *)
val conjuncts : Relalg.Expr.t -> Relalg.Expr.t list

(** Render a canonical term (diagnostics and tests). *)
val to_string : ctx -> int -> string

val pp_cid : ctx -> int Fmt.t
