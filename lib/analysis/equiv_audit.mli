(** Cross-layer semantic-equivalence auditor (SA050–SA055, SA058).

    Proves, per script output, that a chosen physical plan is a semantic
    refinement of the bound logical DAG: canonical algebra forms coincide
    (SA050), every physical shape has a logical meaning (SA051), column
    lineage matches (SA052), spools and enforcers preserve content
    (SA053), spool consumers only read produced columns (SA054), and
    ORDER BY requirements are physically delivered (SA058). *)

(** Audit one physical plan against the bound logical DAG. *)
val run : dag:Slogical.Dag.t -> plan:Sphys.Plan.t -> Diag.t list

(** SA055: memo groups whose expressions disagree on column lineage. *)
val memo_lineage : Smemo.Memo.t -> Diag.t list
