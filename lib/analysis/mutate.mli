(** Mutation harness for the analyzers: a corpus of targeted corruptions
    of memos, logical DAGs, physical plans, sharing structures and stage
    graphs, each paired with the diagnostic code expected to catch it.

    A mutation runs the full pipeline on a real workload, audits the
    relevant layer (which must be clean and must not already carry the
    expected code — no vacuous experiments), injects exactly one
    corruption and audits again.  {!verify} enforces the contract;
    [test/test_mutation.ml] and the CI mutation step iterate {!all}. *)

type mutation = {
  mname : string;  (** unique label, [SAxxx what-was-corrupted] *)
  mcode : string;  (** the diagnostic expected to catch the corruption *)
  mrun : unit -> Diag.t list * Diag.t list;
      (** run the experiment: (baseline diags, post-corruption diags) *)
}

(** The corpus, in catalog order of the expected codes. *)
val all : mutation list

(** Run one mutation and check its three-part contract: the expected code
    is absent from the baseline, the baseline has no error-severity
    findings, and the corrupted structure is reported under the expected
    code.  [Error] carries a human-readable explanation (including
    harness failures such as an exception during the corruption). *)
val verify : mutation -> (unit, string) result
