open Sphys

(* Sharing auditor.

   Algorithm 1's output is a contract with phase 2: a [shared] flag means
   "this group is a spool with several consumers, re-optimizable under
   pinned properties".  A stale flag (set on a non-spool group, or kept
   after consumers merged away) makes phase 2 enforce properties at places
   that cannot share anything; a double materialization in the final plan
   means the whole point of the exercise -- compute once, read many times
   -- was silently lost. *)

let candidates_diags ~shared (props : Reqprops.t list) =
  let loc = Diag.Group shared in
  if props = [] then
    [ Diag.make ~code:"SA012" ~loc "empty candidate property set" ]
  else
    let keys = List.map Reqprops.to_key props in
    let dupes =
      List.sort_uniq String.compare
        (List.filter
           (fun k -> List.length (List.filter (String.equal k) keys) > 1)
           keys)
    in
    List.map
      (fun k ->
        Diag.make ~code:"SA012" ~loc
          (Printf.sprintf "duplicated candidate property set %s" k))
      dupes

(* Shared-flag structure over the memo. *)
let flag_diags (memo : Smemo.Memo.t) =
  let live = Smemo.Memo.reachable memo in
  let parents = Smemo.Memo.parents memo in
  let diags = ref [] in
  Smemo.Memo.iter_groups memo (fun g ->
      if g.Smemo.Memo.shared && live.(g.Smemo.Memo.id) then begin
        let loc = Diag.Group g.Smemo.Memo.id in
        let is_spool (e : Smemo.Memo.mexpr) =
          match e.Smemo.Memo.mop with Slogical.Logop.Spool -> true | _ -> false
        in
        let es = Smemo.Memo.exprs g in
        if es = [] || not (List.for_all is_spool es) then
          diags :=
            Diag.make ~code:"SA010" ~loc
              (Printf.sprintf "shared group holds [%s]"
                 (String.concat "; "
                    (List.map
                       (fun (e : Smemo.Memo.mexpr) ->
                         Slogical.Logop.short_name e.Smemo.Memo.mop)
                       es)))
            :: !diags;
        let consumers = List.length parents.(g.Smemo.Memo.id) in
        if consumers < 2 then
          diags :=
            Diag.make ~code:"SA011" ~loc
              (Printf.sprintf "only %d consumer(s)" consumers)
            :: !diags
      end);
  List.rev !diags

(* Spool materializations of the final plan: at most one distinct plan
   value per shared group ("spool-write exactly once"), and only groups
   marked shared are spooled.

   [degraded] marks a budget-truncated optimization: when phase 2 ran out
   of budget before pinning properties, the plan legitimately falls back
   to the phase-1 shape, one materialization per distinct property
   requirement (the Figure 8(a) baseline) -- SA013 is then a warning, not
   an error. *)
let plan_diags ?(degraded = false) ~(memo : Smemo.Memo.t) (plan : Plan.t) =
  let mats : (int, Plan.t list) Hashtbl.t = Hashtbl.create 8 in
  let rec collect (n : Plan.t) =
    (match n.Plan.op with
    | Physop.P_spool ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt mats n.Plan.group) in
        if not (List.exists (fun p -> p == n) prev) then
          Hashtbl.replace mats n.Plan.group (n :: prev)
    | _ -> ());
    List.iter collect n.Plan.children
  in
  collect plan;
  Hashtbl.fold
    (fun gid distinct acc ->
      let loc = Diag.Group gid in
      let acc =
        if List.length distinct > 1 then
          (if degraded then
             Diag.make ~severity:Diag.Warning ~code:"SA013" ~loc
               (Printf.sprintf
                  "%d distinct spool materializations (budget-truncated plan)"
                  (List.length distinct))
           else
             Diag.make ~code:"SA013" ~loc
               (Printf.sprintf "%d distinct spool materializations in the plan"
                  (List.length distinct)))
          :: acc
        else acc
      in
      let marked =
        gid >= 0
        && gid < Smemo.Memo.size memo
        && (Smemo.Memo.group memo gid).Smemo.Memo.shared
      in
      if marked then acc
      else
        Diag.make ~code:"SA014" ~loc
          "plan spools a group that is not marked shared"
        :: acc)
    mats []

let run ?(degraded = false) ?(candidates = []) ?plan (memo : Smemo.Memo.t) :
    Diag.t list =
  flag_diags memo
  @ List.concat_map
      (fun (shared, props) -> candidates_diags ~shared props)
      candidates
  @ (match plan with Some p -> plan_diags ~degraded ~memo p | None -> [])
