open Sphys

(* Plan-DAG lint.

   [Plan_check.validate] folds over the plan as a tree: a subplan
   referenced k times is checked k times, and nothing inspects the
   DAG-level bookkeeping (additive costs, spool group ids) that the
   deduplicated costing relies on.  This pass walks distinct nodes by
   physical identity exactly once and layers the DAG checks on top of the
   per-operator checks. *)

let run (plan : Plan.t) : Diag.t list =
  let seen = ref [] in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let rec go (n : Plan.t) =
    if not (List.exists (fun p -> p == n) !seen) then begin
      seen := n :: !seen;
      List.iter go n.Plan.children;
      let loc = Diag.Operator (Physop.short_name n.Plan.op) in
      (* the per-operator checks of the independent checker *)
      List.iter
        (fun (v : Plan_check.violation) ->
          emit
            (Diag.make ~code:"SA030" ~loc
               (Printf.sprintf "%s: %s" v.Plan_check.where v.Plan_check.what)))
        (Plan_check.check_op n);
      (* DAG-level bookkeeping *)
      if Float.is_nan n.Plan.op_cost || n.Plan.op_cost < 0.0 || n.Plan.op_cost = Float.infinity
      then
        emit
          (Diag.make ~code:"SA032" ~loc
             (Printf.sprintf "op_cost is %s" (Float.to_string n.Plan.op_cost)));
      let additive =
        List.fold_left
          (fun acc c -> acc +. c.Plan.cost)
          n.Plan.op_cost n.Plan.children
      in
      let scale = Float.max 1.0 (Float.abs n.Plan.cost) in
      if Float.abs (additive -. n.Plan.cost) > 1e-6 *. scale then
        emit
          (Diag.make ~code:"SA031" ~loc
             (Printf.sprintf "records cost %.6g, op_cost + children = %.6g"
                n.Plan.cost additive));
      (match n.Plan.op with
      | Physop.P_spool when n.Plan.group < 0 ->
          emit
            (Diag.make ~code:"SA033" ~loc
               "spool without a memo group id cannot be deduplicated")
      | _ -> ());
      (* the cached region summary (the deduplicated-costing fast path)
         must reproduce from the children's summaries *)
      let expected_sbase =
        List.fold_left
          (fun acc c -> acc +. fst (Plan.region c))
          n.Plan.op_cost n.Plan.children
      in
      if Float.abs (expected_sbase -. n.Plan.sbase)
         > 1e-6 *. Float.max 1.0 (Float.abs n.Plan.sbase)
      then
        emit
          (Diag.make ~code:"SA034" ~loc
             (Printf.sprintf
                "records region cost %.6g, children's regions sum to %.6g"
                n.Plan.sbase expected_sbase));
      let expected_srefs =
        List.fold_left
          (fun acc c ->
            List.fold_left
              (fun acc (s, k) ->
                let rec add = function
                  | [] -> [ (s, k) ]
                  | (s', k') :: rest when s' == s -> (s', k' + k) :: rest
                  | p :: rest -> p :: add rest
                in
                add acc)
              acc
              (snd (Plan.region c)))
          [] n.Plan.children
      in
      let count refs s =
        List.fold_left
          (fun acc (s', k) -> if s' == s then acc + k else acc)
          0 refs
      in
      if
        List.length expected_srefs <> List.length n.Plan.srefs
        || List.exists
             (fun (s, k) -> count n.Plan.srefs s <> k)
             expected_srefs
      then
        emit
          (Diag.make ~code:"SA034" ~loc
             (Printf.sprintf
                "records %d region spool reference(s), children's regions \
                 yield %d"
                (List.length n.Plan.srefs)
                (List.length expected_srefs)))
    end
  in
  go plan;
  List.rev !diags
