(** The diagnostics framework of the static-analysis layer.

    Every analyzer pass reports findings as {!t} values carrying a stable
    code ([SA0xx]), a severity, a location inside the audited structure and
    a human-readable message. The framework provides the code catalog, a
    pretty reporter, a machine-readable summary and the exit-code mapping
    used by [scopeopt lint]. *)

type severity = Error | Warning | Info

type location =
  | Group of int  (** a memo group *)
  | Winner of int * string
      (** a memoized winner: group id × requirement description *)
  | Node of int  (** a logical-DAG node (or a stage id) *)
  | Operator of string  (** a physical plan operator *)
  | Output of string  (** a script output, by target file *)
  | Whole  (** the audited structure as a whole *)

type t = {
  code : string;  (** stable diagnostic code, e.g. ["SA003"] *)
  severity : severity;
  loc : location;
  message : string;
}

(** One catalog registration: code, default severity, the layer the
    emitting pass audits (memo, plan, stages, cross-layer, ...) and a
    short description. *)
type entry = {
  ecode : string;
  eseverity : severity;
  layer : string;
  describe : string;
}

(** Catalog of every diagnostic code. Analyzer passes only emit codes
    listed here; a duplicate registration raises [Invalid_argument] when
    the module is loaded. *)
val catalog : entry list

(** Catalog lookup by code. *)
val find_entry : string -> entry option

(** Build a diagnostic; the severity defaults to the catalog entry's.
    Raises [Invalid_argument] on a code missing from the catalog. *)
val make : ?severity:severity -> code:string -> loc:location -> string -> t

val errors : t list -> t list
val warnings : t list -> t list

(** Per-code occurrence counts, catalog order. *)
val summary : t list -> (string * int) list

(** Highest severity present, [None] on an empty report. *)
val worst : t list -> severity option

(** Exit-code mapping: [0] when no diagnostic at or above [fail_on]
    (default [Error]) was reported, [1] otherwise. *)
val exit_code : ?fail_on:severity -> t list -> int

val pp_severity : severity Fmt.t
val pp_location : location Fmt.t
val pp : t Fmt.t

(** Full human-readable report: one line per diagnostic, sorted by code,
    followed by a count line. *)
val pp_report : t list Fmt.t

(** One-line machine-readable summary:
    [lint-summary errors=E warnings=W SAxxx=n ...]. *)
val pp_summary : t list Fmt.t

(** The registry table, one line per code: code, severity, layer,
    description ([scopeopt lint --list-codes]). *)
val pp_catalog : unit Fmt.t

val to_string : t -> string
