(** Plan-DAG lint.

    Generalizes the tree-oriented {!Sphys.Plan_check} to the shared-plan
    DAG: every {e distinct} node (by physical identity) is checked exactly
    once, so shared spool subplans referenced by several consumers are
    neither skipped nor multiply reported. Adds DAG-level bookkeeping
    checks: additive cost consistency (SA031), finite non-negative operator
    costs (SA032) and spool group-id presence (SA033). *)

(** Run the lint over every distinct node of the plan DAG. *)
val run : Sphys.Plan.t -> Diag.t list
