(** Round-pruning soundness auditor (SA060).

    Re-verifies every (dropped candidate, kept dominator) pair phase 2
    recorded while dominance-filtering round candidates: same concrete
    (non-[Any]) partitioning, dropped sort a non-empty strict prefix of
    the dominator's, and the dominator present among the kept candidates
    that actually generated rounds.  Independent of the filtering code,
    so a weakened rule fails the audit rather than changing plans
    silently. *)

(** Diagnostics for one group's pair list, given the kept candidates. *)
val pair_diags :
  shared:int ->
  kept:Sphys.Reqprops.t list ->
  Sphys.Reqprops.t * Sphys.Reqprops.t ->
  Diag.t list

(** Audit all recorded prunes. [candidates] is the kept
    (post-filter) candidate list per shared group. *)
val run :
  candidates:(int * Sphys.Reqprops.t list) list ->
  (int * (Sphys.Reqprops.t * Sphys.Reqprops.t) list) list ->
  Diag.t list
