open Relalg

(* Canonical relational-algebra forms for the cross-layer equivalence
   audit (SA050/SA051/SA058).

   Both the bound logical DAG and a chosen physical plan are normalized
   into one hash-consed term language: predicates are flattened, oriented
   and sorted; filters merge with adjacent filters and hoist above joins;
   projection and aggregation parameter lists are sorted; inner-join
   operands are ordered canonically (commutativity); UNION ALL trees are
   flattened; and everything purely physical — spools, exchanges, sorts,
   gathers, the local/global split of one aggregation — is erased.  Two
   sides describe the same query exactly when they intern to the same
   canonical id, so equivalence checking is O(1) per output after the
   bottom-up normalization.

   ORDER BY is deliberately absent from the canonical form: a physical
   plan realizes it as delivered properties (serial + sort) on the OUTPUT
   operator's input, which {!Equiv_audit} checks separately (SA058). *)

exception Unrepresentable of string

type shape =
  | C_source of { file : string; extractor : string; cols : string list }
  | C_filter of { preds : Expr.t list; input : int }
  | C_project of { items : (string * Expr.t) list; input : int }
  | C_group of {
      keys : string list;
      aggs : (string * string * Expr.t) list;
      input : int;
    }
  | C_group_partial of {
      keys : string list;
      aggs : (string * string * Expr.t) list;
      input : int;
    }
      (* a per-machine pre-aggregation: only meaningful as the input of a
         matching global combination, never as a query result *)
  | C_join of {
      kind : Slogical.Logop.join_kind;
      pairs : (string * string) list;
      residual : Expr.t option;
      left : int;
      right : int;
    }
  | C_union of int list
  | C_output of { file : string; input : int }

type ctx = {
  ids : (shape, int) Hashtbl.t;
  shapes : (int, shape) Hashtbl.t;
  mutable next : int;
}

let create () =
  { ids = Hashtbl.create 256; shapes = Hashtbl.create 256; next = 0 }

let intern ctx s =
  match Hashtbl.find_opt ctx.ids s with
  | Some i -> i
  | None ->
      let i = ctx.next in
      ctx.next <- i + 1;
      Hashtbl.add ctx.ids s i;
      Hashtbl.add ctx.shapes i s;
      i

let shape ctx i = Hashtbl.find ctx.shapes i

(* ---- expression normalization ----------------------------------------- *)

let rec flat_and e acc =
  match e with Expr.And (a, b) -> flat_and a (flat_and b acc) | e -> e :: acc

let rec flat_or e acc =
  match e with Expr.Or (a, b) -> flat_or a (flat_or b acc) | e -> e :: acc

let rec norm_expr (e : Expr.t) : Expr.t =
  match e with
  | Expr.Col _ | Expr.Lit _ -> e
  | Expr.Binop (op, a, b) -> (
      let a = norm_expr a and b = norm_expr b in
      match op with
      | (Expr.Add | Expr.Mul) when compare a b > 0 -> Expr.Binop (op, b, a)
      | _ -> Expr.Binop (op, a, b))
  | Expr.Cmp (op, a, b) -> (
      let a = norm_expr a and b = norm_expr b in
      match op with
      | (Expr.Eq | Expr.Ne) when compare a b > 0 -> Expr.Cmp (op, b, a)
      | Expr.Gt -> Expr.Cmp (Expr.Lt, b, a)
      | Expr.Ge -> Expr.Cmp (Expr.Le, b, a)
      | _ -> Expr.Cmp (op, a, b))
  | Expr.And _ ->
      rebuild (fun a b -> Expr.And (a, b))
        (List.sort_uniq compare (List.map norm_expr (flat_and e [])))
  | Expr.Or _ ->
      rebuild (fun a b -> Expr.Or (a, b))
        (List.sort_uniq compare (List.map norm_expr (flat_or e [])))
  | Expr.Not a -> Expr.Not (norm_expr a)

and rebuild join = function
  | [] -> invalid_arg "Canon.norm_expr: empty connective"
  | x :: rest -> List.fold_left join x rest

(* A predicate as its sorted, normalized conjunct list. *)
let conjuncts pred =
  List.sort_uniq compare (List.map norm_expr (flat_and pred []))

let norm_aggs aggs =
  List.sort compare
    (List.map
       (fun (a : Agg.t) ->
         (a.Agg.output, Agg.func_name a.Agg.func, norm_expr a.Agg.arg))
       aggs)

(* ---- smart constructors ----------------------------------------------- *)

(* A partial (local) aggregation consumed by anything but its global
   combination step has no logical meaning. *)
let no_partial ctx what cid =
  match shape ctx cid with
  | C_group_partial _ ->
      raise
        (Unrepresentable
           (Printf.sprintf
              "local (partial) aggregation consumed by %s instead of a \
               matching global combination"
              what))
  | _ -> ()

let mk_filter ctx preds input =
  if preds = [] then input
  else begin
    no_partial ctx "a filter" input;
    let preds, input =
      match shape ctx input with
      | C_filter { preds = inner; input } -> (preds @ inner, input)
      | _ -> (preds, input)
    in
    intern ctx (C_filter { preds = List.sort_uniq compare preds; input })
  end

let mk_project ctx items input =
  no_partial ctx "a projection" input;
  let items =
    List.sort compare (List.map (fun (e, n) -> (n, norm_expr e)) items)
  in
  intern ctx (C_project { items; input })

let mk_group ctx ~keys ~aggs input =
  no_partial ctx "an aggregation" input;
  intern ctx
    (C_group
       { keys = List.sort_uniq String.compare keys; aggs = norm_aggs aggs; input })

let mk_partial ctx ~keys ~aggs input =
  no_partial ctx "an aggregation" input;
  intern ctx
    (C_group_partial
       { keys = List.sort_uniq String.compare keys; aggs = norm_aggs aggs; input })

(* The canonical form of [Agg.global_combinator] on an already-normalized
   (output, func, arg) triple. *)
let combined_of_local (output, func, _arg) =
  let func = match func with "Sum" | "Count" -> "Sum" | f -> f in
  (output, func, Expr.Col output)

(* A global combination step is only representable directly on top of a
   matching local pre-aggregation; the pair collapses to the single
   logical GROUP BY it implements. *)
let mk_global ctx ~keys ~aggs input =
  let keys = List.sort_uniq String.compare keys in
  let aggs = norm_aggs aggs in
  match shape ctx input with
  | C_group_partial { keys = lkeys; aggs = laggs; input = linput }
    when lkeys = keys
         && List.sort compare (List.map combined_of_local laggs) = aggs ->
      intern ctx (C_group { keys; aggs = laggs; input = linput })
  | _ ->
      raise
        (Unrepresentable
           "global aggregation does not combine a matching local \
            pre-aggregation")

let mk_join ctx ~kind ~pairs ~residual left right =
  no_partial ctx "a join" left;
  no_partial ctx "a join" right;
  (* hoist filters above the join: always valid on the preserved (left)
     side, valid on the right side for inner joins only *)
  let hoist cid =
    match shape ctx cid with
    | C_filter { preds; input } -> (preds, input)
    | _ -> ([], cid)
  in
  let lpreds, left = hoist left in
  let rpreds, right =
    match kind with
    | Slogical.Logop.Inner -> hoist right
    | Slogical.Logop.Left_outer -> ([], right)
  in
  let residual = Option.map norm_expr residual in
  (* inner joins modulo commutativity: order the operands canonically,
     flipping the equality pairs with them *)
  let pairs, left, right =
    match kind with
    | Slogical.Logop.Inner when right < left ->
        (List.map (fun (a, b) -> (b, a)) pairs, right, left)
    | _ -> (pairs, left, right)
  in
  let pairs = List.sort_uniq compare pairs in
  let jid = intern ctx (C_join { kind; pairs; residual; left; right }) in
  mk_filter ctx (lpreds @ rpreds) jid

let mk_union ctx inputs =
  List.iter (no_partial ctx "a union") inputs;
  let rec flat cid =
    match shape ctx cid with
    | C_union xs -> List.concat_map flat xs
    | _ -> [ cid ]
  in
  intern ctx (C_union (List.sort compare (List.concat_map flat inputs)))

let mk_output ctx ~file input =
  no_partial ctx "an output" input;
  intern ctx (C_output { file; input })

(* ---- the two sides ---------------------------------------------------- *)

type out = { file : string; cid : int; order : (string * bool) list }

let of_logical ctx (dag : Slogical.Dag.t) : out list =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some c -> c
    | None ->
        let c = node (Slogical.Dag.node dag id) in
        Hashtbl.add memo id c;
        c
  and node (n : Slogical.Dag.node) =
    match (n.Slogical.Dag.op, n.Slogical.Dag.children) with
    | Slogical.Logop.Extract { file; extractor; schema }, [] ->
        intern ctx (C_source { file; extractor; cols = Schema.names schema })
    | Slogical.Logop.Filter { pred }, [ c ] ->
        mk_filter ctx (conjuncts pred) (go c)
    | Slogical.Logop.Project { items }, [ c ] -> mk_project ctx items (go c)
    | Slogical.Logop.Group_by { keys; aggs }, [ c ] ->
        mk_group ctx ~keys ~aggs (go c)
    | Slogical.Logop.Group_by_local { keys; aggs }, [ c ] ->
        mk_partial ctx ~keys ~aggs (go c)
    | Slogical.Logop.Group_by_global { keys; aggs }, [ c ] ->
        mk_global ctx ~keys ~aggs (go c)
    | Slogical.Logop.Join { kind; pairs; residual }, [ l; r ] ->
        mk_join ctx ~kind ~pairs ~residual (go l) (go r)
    | Slogical.Logop.Union_all, [ l; r ] -> mk_union ctx [ go l; go r ]
    | Slogical.Logop.Spool, [ c ] -> go c
    | (Slogical.Logop.Output _ | Slogical.Logop.Sequence), _ ->
        raise (Unrepresentable "OUTPUT/SEQUENCE below the logical root")
    | op, cs ->
        raise
          (Unrepresentable
             (Printf.sprintf "logical %s with %d children"
                (Slogical.Logop.short_name op)
                (List.length cs)))
  in
  let output (n : Slogical.Dag.node) =
    match (n.Slogical.Dag.op, n.Slogical.Dag.children) with
    | Slogical.Logop.Output { file; order }, [ c ] ->
        { file; cid = mk_output ctx ~file (go c); order }
    | _ -> raise (Unrepresentable "logical root child is not an OUTPUT")
  in
  let root = Slogical.Dag.root dag in
  match root.Slogical.Dag.op with
  | Slogical.Logop.Sequence ->
      List.map (fun id -> output (Slogical.Dag.node dag id))
        root.Slogical.Dag.children
  | Slogical.Logop.Output _ -> [ output root ]
  | _ -> raise (Unrepresentable "logical root is not a sequence of outputs")

(* Canonical form of each output of a physical plan, with the delivered
   properties of the OUTPUT operator (for the SA058 ordering check).
   Spools and enforcers are transparent; a local/global aggregation pair
   collapses through {!mk_global}. *)
let of_physical ctx (plan : Sphys.Plan.t) : (out * Sphys.Props.t) list =
  let memo : (Sphys.Plan.t * int) list ref = ref [] in
  let rec go (p : Sphys.Plan.t) =
    match List.find_opt (fun (q, _) -> q == p) !memo with
    | Some (_, c) -> c
    | None ->
        let c = node p in
        memo := (p, c) :: !memo;
        c
  and node (p : Sphys.Plan.t) =
    match (p.Sphys.Plan.op, p.Sphys.Plan.children) with
    | Sphys.Physop.P_extract { file; extractor; schema }, [] ->
        intern ctx (C_source { file; extractor; cols = Schema.names schema })
    | Sphys.Physop.P_filter { pred }, [ c ] ->
        mk_filter ctx (conjuncts pred) (go c)
    | Sphys.Physop.P_project { items }, [ c ] -> mk_project ctx items (go c)
    | ( ( Sphys.Physop.P_stream_agg { keys; aggs; scope }
        | Sphys.Physop.P_hash_agg { keys; aggs; scope } ),
        [ c ] ) -> (
        match scope with
        | Sphys.Physop.Full -> mk_group ctx ~keys ~aggs (go c)
        | Sphys.Physop.Local -> mk_partial ctx ~keys ~aggs (go c)
        | Sphys.Physop.Global -> mk_global ctx ~keys ~aggs (go c))
    | ( ( Sphys.Physop.P_merge_join { kind; pairs; residual }
        | Sphys.Physop.P_hash_join { kind; pairs; residual } ),
        [ l; r ] ) ->
        mk_join ctx ~kind ~pairs ~residual (go l) (go r)
    | Sphys.Physop.P_union_all, [ l; r ] -> mk_union ctx [ go l; go r ]
    | Sphys.Physop.P_spool, [ c ] -> go c
    | ( ( Sphys.Physop.P_exchange _ | Sphys.Physop.P_merge_exchange _
        | Sphys.Physop.P_sort _ | Sphys.Physop.P_gather ),
        [ c ] ) ->
        go c
    | (Sphys.Physop.P_output _ | Sphys.Physop.P_sequence), _ ->
        raise (Unrepresentable "OUTPUT/SEQUENCE below the plan root")
    | op, cs ->
        raise
          (Unrepresentable
             (Printf.sprintf "physical %s with %d children"
                (Sphys.Physop.short_name op)
                (List.length cs)))
  in
  let output (o : Sphys.Plan.t) =
    match (o.Sphys.Plan.op, o.Sphys.Plan.children) with
    | Sphys.Physop.P_output { file }, [ c ] ->
        ( { file; cid = mk_output ctx ~file (go c); order = [] },
          o.Sphys.Plan.props )
    | _ -> raise (Unrepresentable "plan root child is not an OUTPUT")
  in
  match plan.Sphys.Plan.op with
  | Sphys.Physop.P_sequence -> List.map output plan.Sphys.Plan.children
  | Sphys.Physop.P_output _ -> [ output plan ]
  | _ -> raise (Unrepresentable "plan root is not a sequence of outputs")

(* ---- printing --------------------------------------------------------- *)

let rec pp_cid ctx ppf cid =
  match shape ctx cid with
  | C_source { file; extractor; _ } ->
      Fmt.pf ppf "source(%s USING %s)" file extractor
  | C_filter { preds; input } ->
      Fmt.pf ppf "filter(%s; %a)"
        (String.concat " AND " (List.map Expr.to_string preds))
        (pp_cid ctx) input
  | C_project { items; input } ->
      Fmt.pf ppf "project(%s; %a)"
        (String.concat ", "
           (List.map (fun (n, e) -> Fmt.str "%s=%a" n Expr.pp e) items))
        (pp_cid ctx) input
  | C_group { keys; aggs; input } | C_group_partial { keys; aggs; input } ->
      Fmt.pf ppf "%s(%s; %s; %a)"
        (match shape ctx cid with C_group_partial _ -> "partial" | _ -> "group")
        (String.concat "," keys)
        (String.concat ", "
           (List.map
              (fun (o, f, a) -> Fmt.str "%s(%a) AS %s" f Expr.pp a o)
              aggs))
        (pp_cid ctx) input
  | C_join { kind; pairs; residual; left; right } ->
      Fmt.pf ppf "%sjoin(%s%s; %a; %a)"
        (match kind with Slogical.Logop.Inner -> "" | _ -> "left")
        (String.concat " AND "
           (List.map (fun (a, b) -> a ^ "=" ^ b) pairs))
        (match residual with
        | None -> ""
        | Some e -> "; " ^ Expr.to_string e)
        (pp_cid ctx) left (pp_cid ctx) right
  | C_union xs ->
      Fmt.pf ppf "union(%a)" (Fmt.list ~sep:Fmt.comma (pp_cid ctx)) xs
  | C_output { file; input } ->
      Fmt.pf ppf "output(%s; %a)" file (pp_cid ctx) input

let to_string ctx cid = Fmt.str "%a" (pp_cid ctx) cid
