open Sphys
module Stage = Sexec.Stage

(* Stage-graph auditor.

   The staged executor trusts [Stage.build]'s output completely: the
   scheduler runs stages in id order, and the engine's interior evaluator
   consumes the recorded dependency list positionally.  A graph whose ids
   are not topological executes a stage before its inputs exist; a
   dependency list that diverges from the interior's left-to-right walk
   wires a consumer to the wrong input; an OUTPUT outside the sink stage
   would emit rows again on every fault recovery.  This pass re-derives
   each invariant from the plan independently of the compiler, so a
   compiler regression shows up as a diagnostic rather than a wrong
   answer.

   Stage locations are reported as [Diag.Node] of the stage id. *)

(* Boundary children of a stage interior, in the left-to-right depth-first
   order the engine's evaluator encounters them. *)
let interior_boundaries (root : Plan.t) =
  let acc = ref [] in
  let rec walk (n : Plan.t) =
    List.iter
      (fun (c : Plan.t) -> if Stage.boundary c then acc := c :: !acc else walk c)
      n.Plan.children
  in
  walk root;
  List.rev !acc

(* SA040: ids are the array index, every dependency's id is smaller than
   its consumer's, and the sink is the last stage rooted at the plan. *)
let topo_diags (plan : Plan.t) (g : Stage.graph) =
  let n = Array.length g.Stage.stages in
  let diags = ref [] in
  let bad sid fmt =
    Fmt.kstr
      (fun m -> diags := Diag.make ~code:"SA040" ~loc:(Diag.Node sid) m :: !diags)
      fmt
  in
  Array.iteri
    (fun i (st : Stage.stage) ->
      if st.Stage.id <> i then bad i "stage %d stored at index %d" st.Stage.id i;
      List.iter
        (fun (_, dep) ->
          if dep < 0 || dep >= n then
            bad st.Stage.id "dependency id %d outside the graph" dep
          else if dep >= st.Stage.id then
            bad st.Stage.id "dependency %d does not precede its consumer" dep)
        st.Stage.deps)
    g.Stage.stages;
  if g.Stage.sink <> n - 1 then
    bad g.Stage.sink "sink stage %d is not the last of %d" g.Stage.sink n
  else if n > 0 && not (g.Stage.stages.(g.Stage.sink).Stage.root == plan) then
    bad g.Stage.sink "sink stage is not rooted at the plan root";
  List.rev !diags

(* SA041: each stage's dependency list must be exactly the boundary
   children of its interior, in walk order, each produced by a stage
   rooted at that very node. *)
let deps_diags (g : Stage.graph) =
  let n = Array.length g.Stage.stages in
  let diags = ref [] in
  let bad sid fmt =
    Fmt.kstr
      (fun m -> diags := Diag.make ~code:"SA041" ~loc:(Diag.Node sid) m :: !diags)
      fmt
  in
  Array.iter
    (fun (st : Stage.stage) ->
      let found = interior_boundaries st.Stage.root in
      if List.length found <> List.length st.Stage.deps then
        bad st.Stage.id "interior has %d boundary children, %d recorded"
          (List.length found) (List.length st.Stage.deps)
      else
        List.iteri
          (fun i ((b : Plan.t), dep) ->
            if not (List.nth found i == b) then
              bad st.Stage.id "dependency %d is not the %dth boundary child"
                dep i
            else if
              dep >= 0 && dep < n
              && not (g.Stage.stages.(dep).Stage.root == b)
            then
              bad st.Stage.id "dependency %d is not rooted at its boundary node"
                dep)
          st.Stage.deps)
    g.Stage.stages;
  List.rev !diags

(* SA042: a non-spool node reachable from several interior positions is
   executed once per reference.  Legitimate in the conventional baseline
   (it shares winner subplans physically and pays per consumer); in a
   CSE plan, sharing is supposed to flow through spools, so leftover
   physical sharing means the optimizer reused a subtree without
   materializing it. *)
let sharing_diags (g : Stage.graph) =
  let seen = ref [] in
  let dup = ref [] in
  let note (n : Plan.t) =
    if List.exists (fun m -> m == n) !seen then begin
      if not (List.exists (fun m -> m == n) !dup) then dup := n :: !dup
    end
    else seen := n :: !seen
  in
  Array.iter
    (fun (st : Stage.stage) ->
      let rec walk (n : Plan.t) =
        note n;
        List.iter
          (fun (c : Plan.t) -> if not (Stage.boundary c) then walk c)
          n.Plan.children
      in
      walk st.Stage.root)
    g.Stage.stages;
  List.rev_map
    (fun (n : Plan.t) ->
      Diag.make ~code:"SA042"
        ~loc:(Diag.Operator (Physop.short_name n.Plan.op))
        "subtree shared across stage references without a spool")
    !dup

(* SA043: OUTPUT and SEQUENCE are sink-only operators — the sink runs
   exactly once, so outputs cannot be re-emitted during recovery. *)
let sink_diags (g : Stage.graph) =
  let diags = ref [] in
  Array.iter
    (fun (st : Stage.stage) ->
      if st.Stage.id <> g.Stage.sink then
        let rec walk (n : Plan.t) =
          (match n.Plan.op with
          | Physop.P_output _ | Physop.P_sequence ->
              diags :=
                Diag.make ~code:"SA043" ~loc:(Diag.Node st.Stage.id)
                  (Printf.sprintf "%s inside non-sink stage %d"
                     (Physop.short_name n.Plan.op) st.Stage.id)
                :: !diags
          | _ -> ());
          List.iter
            (fun (c : Plan.t) -> if not (Stage.boundary c) then walk c)
            n.Plan.children
        in
        walk st.Stage.root)
    g.Stage.stages;
  List.rev !diags

(* SA044: every stage must be a transitive dependency of the sink.  The
   parallel wave scheduler's guarantees lean on this: demand closure from
   never-run stages covers the whole graph, and the sink is only ready
   once everything else has executed — which is what confines OUTPUT
   effects to a wave of its own.  An orphan stage would execute (the
   scheduler runs every stage at least once) but nothing downstream could
   ever read it, so it is compiler breakage, not sharing. *)
let reach_diags (g : Stage.graph) =
  let n = Array.length g.Stage.stages in
  if n = 0 || g.Stage.sink < 0 || g.Stage.sink >= n then []
  else begin
    let reachable = Array.make n false in
    let rec visit sid =
      if not reachable.(sid) then begin
        reachable.(sid) <- true;
        List.iter
          (fun (_, dep) -> if dep >= 0 && dep < n then visit dep)
          g.Stage.stages.(sid).Stage.deps
      end
    in
    visit g.Stage.sink;
    let diags = ref [] in
    Array.iteri
      (fun sid r ->
        if not r then
          diags :=
            Diag.make ~code:"SA044" ~loc:(Diag.Node sid)
              (Printf.sprintf "stage %d is not reachable from sink %d" sid
                 g.Stage.sink)
            :: !diags)
      reachable;
    List.rev !diags
  end

let check_graph ?(expect_spooled_sharing = true) (plan : Plan.t)
    (g : Stage.graph) : Diag.t list =
  topo_diags plan g @ deps_diags g
  @ (if expect_spooled_sharing then sharing_diags g else [])
  @ sink_diags g @ reach_diags g

let run ?expect_spooled_sharing (plan : Plan.t) : Diag.t list =
  check_graph ?expect_spooled_sharing plan (Stage.build plan)
