open Sphys

(* Memo auditor (the heart of the analysis layer).

   The memo is the optimizer's single source of truth: a winner memoized
   under the wrong requirement key, a cost that does not reproduce from
   the cost model, or a stale infeasibility marker silently changes which
   CSE plan wins -- without producing a wrong *result*, only a wrong
   *choice*.  This pass recomputes everything that can be recomputed and
   flags what does not reproduce. *)

let cost_tolerance = 1e-6

let close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= cost_tolerance *. scale

(* --- SA001: the group-reference graph is acyclic ----------------------- *)

let cycle_diags (memo : Smemo.Memo.t) =
  let n = Smemo.Memo.size memo in
  (* 0 = unvisited, 1 = on the current DFS path, 2 = done *)
  let color = Array.make n 0 in
  let diags = ref [] in
  let rec visit path gid =
    if gid < 0 || gid >= n then
      let loc =
        match path with [] -> Diag.Whole | p :: _ -> Diag.Group p
      in
      diags :=
        Diag.make ~code:"SA001" ~loc
          (Printf.sprintf "reference to non-existent group %d" gid)
        :: !diags
    else if color.(gid) = 1 then
      diags :=
        Diag.make ~code:"SA001" ~loc:(Diag.Group gid)
          (Printf.sprintf "group cycle: %s"
             (String.concat " -> "
                (List.rev_map string_of_int (gid :: path))))
        :: !diags
    else if color.(gid) = 0 then begin
      color.(gid) <- 1;
      List.iter
        (visit (gid :: path))
        (Smemo.Memo.group_children (Smemo.Memo.group memo gid));
      color.(gid) <- 2
    end
  in
  visit [] memo.Smemo.Memo.root;
  List.rev !diags

(* --- SA002: expression arity and schema compatibility ------------------ *)

let expr_diags (memo : Smemo.Memo.t) (g : Smemo.Memo.group) =
  let loc = Diag.Group g.Smemo.Memo.id in
  List.concat_map
    (fun (e : Smemo.Memo.mexpr) ->
      let arity_ok =
        match Slogical.Logop.arity e.Smemo.Memo.mop with
        | Some k -> k = List.length e.Smemo.Memo.children
        | None -> true
      in
      if not arity_ok then
        [
          Diag.make ~code:"SA002" ~loc
            (Printf.sprintf "%s has %d children"
               (Slogical.Logop.short_name e.Smemo.Memo.mop)
               (List.length e.Smemo.Memo.children));
        ]
      else
        let child_schemas =
          List.filter_map
            (fun c ->
              if c >= 0 && c < Smemo.Memo.size memo then
                Some (Smemo.Memo.group memo c).Smemo.Memo.schema
              else None)
            e.Smemo.Memo.children
        in
        if List.length child_schemas <> List.length e.Smemo.Memo.children then
          [] (* dangling reference already reported as SA001 *)
        else
          match
            Slogical.Logop.derive_schema e.Smemo.Memo.mop child_schemas
          with
          | derived ->
              if Relalg.Schema.equal derived g.Smemo.Memo.schema then []
              else
                [
                  Diag.make ~code:"SA002" ~loc
                    (Printf.sprintf
                       "%s derives schema (%s), group schema is (%s)"
                       (Slogical.Logop.short_name e.Smemo.Memo.mop)
                       (Relalg.Schema.to_string derived)
                       (Relalg.Schema.to_string g.Smemo.Memo.schema));
                ]
          | exception Invalid_argument msg ->
              [ Diag.make ~code:"SA002" ~loc msg ])
    (Smemo.Memo.exprs g)

(* --- winner checks ----------------------------------------------------- *)

(* Recompute the plan's costs bottom-up: every node's [op_cost] must
   reproduce from the cost model over its children and its [cost] must be
   the additive total.  Distinct nodes are visited once (the plan may be a
   DAG through shared spools). *)
let cost_diags ~cluster ~loc (plan : Plan.t) =
  let seen = ref [] in
  let diags = ref [] in
  let rec go (n : Plan.t) =
    if not (List.exists (fun p -> p == n) !seen) then begin
      seen := n :: !seen;
      List.iter go n.Plan.children;
      let expected =
        Scost.Costmodel.op_cost cluster n.Plan.op n.Plan.children
          ~out:n.Plan.stats
      in
      if not (close expected n.Plan.op_cost) then
        diags :=
          Diag.make ~code:"SA003" ~loc
            (Printf.sprintf
               "%s records op_cost %.6g, cost model reproduces %.6g"
               (Physop.short_name n.Plan.op) n.Plan.op_cost expected)
          :: !diags;
      let additive =
        List.fold_left
          (fun acc c -> acc +. c.Plan.cost)
          n.Plan.op_cost n.Plan.children
      in
      if not (close additive n.Plan.cost) then
        diags :=
          Diag.make ~code:"SA003" ~loc
            (Printf.sprintf
               "%s records tree cost %.6g, children sum to %.6g"
               (Physop.short_name n.Plan.op) n.Plan.cost additive)
          :: !diags
    end
  in
  go plan;
  List.rev !diags

let winner_diags ~cluster (g : Smemo.Memo.group) =
  let winners = Smemo.Memo.winners_of g in
  List.concat_map
    (fun (w : Smemo.Memo.winner) ->
      let loc =
        Diag.Winner
          ( g.Smemo.Memo.id,
            Printf.sprintf "phase %d, %s" w.Smemo.Memo.wphase
              (Reqprops.to_string w.Smemo.Memo.wreq) )
      in
      match w.Smemo.Memo.wplan with
      | Some p ->
          let root_diags =
            if p.Plan.group = g.Smemo.Memo.id then []
            else
              [
                Diag.make ~code:"SA007" ~loc
                  (Printf.sprintf "winner root implements group %d" p.Plan.group);
              ]
          in
          let check_diags =
            match Plan_check.validate p with
            | Ok () -> []
            | Error errs ->
                List.map
                  (fun e -> Diag.make ~code:"SA004" ~loc (Plan_check.violations_to_string [ e ]))
                  errs
          in
          let req_diags =
            if Reqprops.satisfied p.Plan.props w.Smemo.Memo.wreq then []
            else
              [
                Diag.make ~code:"SA005" ~loc
                  (Printf.sprintf "winner delivers %s"
                     (Props.to_string p.Plan.props));
              ]
          in
          root_diags @ check_diags @ req_diags @ cost_diags ~cluster ~loc p
      | None ->
          (* an infeasibility marker must not be contradicted by a feasible
             winner of the same group recorded in the same phase under the
             same enforcement map (identical search space) *)
          let contradiction =
            List.find_opt
              (fun (w' : Smemo.Memo.winner) ->
                w'.Smemo.Memo.wphase = w.Smemo.Memo.wphase
                && w'.Smemo.Memo.wenforce = w.Smemo.Memo.wenforce
                &&
                match w'.Smemo.Memo.wplan with
                | Some p' -> Reqprops.satisfied p'.Plan.props w.Smemo.Memo.wreq
                | None -> false)
              winners
          in
          (match contradiction with
          | Some w' ->
              [
                Diag.make ~code:"SA006" ~loc
                  (Printf.sprintf
                     "marked infeasible, but the winner for %s satisfies it"
                     (Reqprops.to_string w'.Smemo.Memo.wreq));
              ]
          | None -> []))
    (List.stable_sort
       (fun (a : Smemo.Memo.winner) b ->
         compare
           (a.Smemo.Memo.wphase, Reqprops.to_key a.Smemo.Memo.wreq)
           (b.Smemo.Memo.wphase, Reqprops.to_key b.Smemo.Memo.wreq))
       winners)

let run ~cluster (memo : Smemo.Memo.t) : Diag.t list =
  let cycles = cycle_diags memo in
  let live = Smemo.Memo.reachable memo in
  let rest = ref [] in
  Smemo.Memo.iter_groups memo (fun g ->
      if live.(g.Smemo.Memo.id) then
        rest :=
          !rest
          @ expr_diags memo g
          @ Logical_audit.stats_diags
              ~loc:(Diag.Group g.Smemo.Memo.id)
              g.Smemo.Memo.stats
          @ winner_diags ~cluster g);
  cycles @ !rest
