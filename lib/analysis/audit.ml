(* Facade: compose the analyzer passes over a pipeline report. *)

let memo_and_plan ~cluster ?plan (memo : Smemo.Memo.t) =
  Memo_audit.run ~cluster memo
  @ Sharing_audit.run ?plan memo
  @ match plan with Some p -> Plan_audit.run p | None -> []

(* The deep (cross-layer) passes: semantic equivalence, lineage and
   interference over every plan the pipeline produced.  Costlier than the
   per-layer shape audits, so they sit behind [deep]
   ([scopeopt lint --deep]); tests and benches always run them. *)
let deep_report (r : Cse.Pipeline.report) =
  let dag = r.Cse.Pipeline.dag in
  Equiv_audit.run ~dag ~plan:r.Cse.Pipeline.conventional_plan
  @ Equiv_audit.run ~dag ~plan:r.Cse.Pipeline.phase1_plan
  @ Equiv_audit.run ~dag ~plan:r.Cse.Pipeline.cse_plan
  @ Equiv_audit.memo_lineage r.Cse.Pipeline.memo
  @ Race_audit.run r.Cse.Pipeline.conventional_plan
  @ Race_audit.run r.Cse.Pipeline.phase1_plan
  @ Race_audit.run r.Cse.Pipeline.cse_plan

let report ?(deep = false) ~cluster ~catalog (r : Cse.Pipeline.report) =
  let machines = cluster.Scost.Cluster.machines in
  Logical_audit.run ~catalog ~machines r.Cse.Pipeline.dag
  @ Memo_audit.run ~cluster r.Cse.Pipeline.memo
  @ Sharing_audit.run ~degraded:r.Cse.Pipeline.budget_exhausted
      ~candidates:r.Cse.Pipeline.candidate_props
      ~plan:r.Cse.Pipeline.cse_plan r.Cse.Pipeline.memo
  @ Prune_audit.run ~candidates:r.Cse.Pipeline.candidate_props
      r.Cse.Pipeline.pruned_props
  @ Plan_audit.run r.Cse.Pipeline.conventional_plan
  @ Plan_audit.run r.Cse.Pipeline.phase1_plan
  @ Plan_audit.run r.Cse.Pipeline.cse_plan
  (* the conventional baseline shares winner subplans physically by
     design, and the phase-1 plan materializes a shared group once per
     property requirement with the same winner subplan under each
     materialization — so SA042 (unspooled physical sharing) applies to
     the final CSE plan only *)
  @ Stage_audit.run ~expect_spooled_sharing:false
      r.Cse.Pipeline.conventional_plan
  @ Stage_audit.run ~expect_spooled_sharing:false r.Cse.Pipeline.phase1_plan
  @ Stage_audit.run r.Cse.Pipeline.cse_plan
  @ if deep then deep_report r else []

let assert_clean ?(deep = true) ~cluster ~catalog r =
  let diags = report ~deep ~cluster ~catalog r in
  match Diag.errors diags with
  | [] -> ()
  | _ -> failwith (Fmt.str "audit failed:@.%a" Diag.pp_report diags)
