(* Facade: compose the four analyzer passes over a pipeline report. *)

let memo_and_plan ~cluster ?plan (memo : Smemo.Memo.t) =
  Memo_audit.run ~cluster memo
  @ Sharing_audit.run ?plan memo
  @ match plan with Some p -> Plan_audit.run p | None -> []

let report ~cluster ~catalog (r : Cse.Pipeline.report) =
  let machines = cluster.Scost.Cluster.machines in
  Logical_audit.run ~catalog ~machines r.Cse.Pipeline.dag
  @ Memo_audit.run ~cluster r.Cse.Pipeline.memo
  @ Sharing_audit.run ~degraded:r.Cse.Pipeline.budget_exhausted
      ~candidates:r.Cse.Pipeline.candidate_props
      ~plan:r.Cse.Pipeline.cse_plan r.Cse.Pipeline.memo
  @ Plan_audit.run r.Cse.Pipeline.conventional_plan
  @ Plan_audit.run r.Cse.Pipeline.phase1_plan
  @ Plan_audit.run r.Cse.Pipeline.cse_plan
  (* the conventional baseline shares winner subplans physically by
     design, so SA042 applies to the spool-bearing plans only *)
  @ Stage_audit.run ~expect_spooled_sharing:false
      r.Cse.Pipeline.conventional_plan
  @ Stage_audit.run r.Cse.Pipeline.phase1_plan
  @ Stage_audit.run r.Cse.Pipeline.cse_plan

let assert_clean ~cluster ~catalog r =
  let diags = report ~cluster ~catalog r in
  match Diag.errors diags with
  | [] -> ()
  | _ -> failwith (Fmt.str "audit failed:@.%a" Diag.pp_report diags)
