(** Trace auditor (SA045): every executed stage must appear in the
    collected trace exactly once per attempt.

    Cross-checks the scheduler's determinism contract against the
    observability layer: [attempts] holds one per-stage execution-count
    array per engine run that contributed to the trace (attempt numbers
    restart at 1 per run), and the trace must contain exactly one
    execution-stage span per (run, stage, attempt) — a missing span
    means dropped events or skipped instrumentation, a duplicate means
    an unaccounted execution. *)

val run : attempts:int array list -> Sobs.Trace.event list -> Diag.t list
