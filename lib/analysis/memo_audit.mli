(** Memo auditor.

    Structural checks over the memo after optimization: group references
    form a DAG (SA001), every group expression is arity- and
    schema-compatible with its group (SA002), and group statistics are sane
    (SA021/SA022).

    Winner checks re-verify the memo's bookkeeping: each memoized winner's
    cost is recomputed bottom-up from the cost model (SA003), the plan is
    run through the independent plan checker (SA004), its delivered
    properties are checked against the recorded requirement (SA005), its
    root must implement the audited group (SA007), and every infeasibility
    marker is checked against feasible winners of the same group, phase and
    enforcement map (SA006). *)

(** Relative tolerance for cost-reproduction comparisons. *)
val cost_tolerance : float

(** Audit one winner plan's costs against the cost model. *)
val cost_diags :
  cluster:Scost.Cluster.t -> loc:Diag.location -> Sphys.Plan.t -> Diag.t list

(** Run the full memo audit. *)
val run : cluster:Scost.Cluster.t -> Smemo.Memo.t -> Diag.t list
