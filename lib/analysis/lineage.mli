(** Column-level provenance for the cross-layer audit.

    Assigns every column of every intermediate result an interned lineage
    id — a base-table column or a derivation over argument ids — computed
    independently on the logical DAG, the physical plan and the memo, so
    {!Equiv_audit} can compare "same sources, same operations" per output
    column as an integer comparison (SA052) and {!of_memo} can flag memo
    groups whose expressions disagree on provenance (SA055).

    Spools and enforcers are lineage-transparent; a global aggregation
    directly combining a matching local pre-aggregation collapses to the
    single logical aggregation it implements. *)

type ctx

val create : unit -> ctx

(** Lineage id per column name, in schema order. *)
type env = (string * int) list

val base : ctx -> file:string -> column:string -> int
val derived : ctx -> string -> int list -> int

(** Lineage of a scalar expression under an environment. *)
val of_expr : ctx -> env -> Relalg.Expr.t -> int

(** Per-output lineage environments of the bound DAG, keyed by output
    file. *)
val of_dag : ctx -> Slogical.Dag.t -> (string * env) list

(** Per-output lineage environments of a physical plan, keyed by output
    file. *)
val of_plan : ctx -> Sphys.Plan.t -> (string * env) list

(** SA055 diagnostics: reachable memo groups whose expressions derive
    different lineage for the same columns.  Cyclic memos are skipped
    (SA001 owns those). *)
val of_memo : ctx -> Smemo.Memo.t -> Diag.t list
