open Sphys
module Stage = Sexec.Stage

(* Static interference audit over the stage graph (SA056/SA057).

   The domain-parallel wave scheduler may run any two stages concurrently
   when neither transitively depends on the other.  The determinism
   contract PR 4 tests dynamically is lifted here into a static audit:

   - SA057: no two stages schedulable in the same wave may write the same
     spool/cache cell.  A spool's materialization cell is the spool plan
     node itself: [Stage.build] deduplicates spool stages by physical
     identity, so a well-formed graph has exactly one stage per spool
     node and two unordered stages sharing a spool root would race on one
     cell.  Non-spool boundaries are instantiated per reference with a
     per-stage cache slot (identical roots there are redundant work —
     SA042's business — not a race), and distinct spool nodes over one
     memo group (the degraded phase-1 shape) are distinct cells
     (SA013's business).
   - SA056: every cross-stage read must be ordered by a dependency edge:
     each boundary child of a stage's interior needs an edge to the stage
     producing that very node, with a smaller id (the scheduler's
     ordering guarantee).  This is independent of SA041's positional
     bookkeeping check — it derives existence and ordering from scratch.

   Stage locations are reported as [Diag.Node] of the stage id. *)

(* Boundary children of a stage interior (cross-stage reads), per
   reference. *)
let interior_boundaries (root : Plan.t) =
  let acc = ref [] in
  let rec walk (n : Plan.t) =
    List.iter
      (fun (c : Plan.t) -> if Stage.boundary c then acc := c :: !acc else walk c)
      n.Plan.children
  in
  walk root;
  List.rev !acc

(* Transitive-dependency closure: [anc.(i).(j)] = stage [i] (transitively)
   depends on stage [j].  Stages are topologically ordered by id, so one
   left-to-right pass suffices; ids outside the array (already SA040
   material) are ignored. *)
let ancestors (g : Stage.graph) =
  let n = Array.length g.Stage.stages in
  let anc = Array.init n (fun _ -> Array.make n false) in
  Array.iteri
    (fun i (st : Stage.stage) ->
      List.iter
        (fun (_, d) ->
          if d >= 0 && d < n && d <> i then begin
            anc.(i).(d) <- true;
            Array.iteri (fun k b -> if b then anc.(i).(k) <- true) anc.(d)
          end)
        st.Stage.deps)
    g.Stage.stages;
  anc

let write_diags (g : Stage.graph) anc =
  let n = Array.length g.Stage.stages in
  let diags = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if (not anc.(j).(i)) && not anc.(i).(j) then begin
        let ri = g.Stage.stages.(i).Stage.root
        and rj = g.Stage.stages.(j).Stage.root in
        match ri.Plan.op with
        | Physop.P_spool when ri == rj ->
            diags :=
              Diag.make ~code:"SA057" ~loc:(Diag.Node j)
                (Printf.sprintf
                   "stages %d and %d are concurrently schedulable and both \
                    write the materialization cell of spool group %d"
                   i j ri.Plan.group)
              :: !diags
        | _ -> ()
      end
    done
  done;
  List.rev !diags

let read_diags (g : Stage.graph) =
  let n = Array.length g.Stage.stages in
  let diags = ref [] in
  Array.iter
    (fun (st : Stage.stage) ->
      List.iter
        (fun (b : Plan.t) ->
          let ordered =
            List.exists
              (fun ((p : Plan.t), d) ->
                p == b && d >= 0 && d < n && d < st.Stage.id
                && g.Stage.stages.(d).Stage.root == b)
              st.Stage.deps
          in
          if not ordered then
            diags :=
              Diag.make ~code:"SA056" ~loc:(Diag.Node st.Stage.id)
                (Printf.sprintf
                   "stage %d reads %s with no ordering dependency edge to its \
                    producer"
                   st.Stage.id
                   (Physop.short_name b.Plan.op))
              :: !diags)
        (interior_boundaries st.Stage.root))
    g.Stage.stages;
  List.rev !diags

let check_graph (g : Stage.graph) : Diag.t list =
  write_diags g (ancestors g) @ read_diags g

let run (plan : Plan.t) : Diag.t list = check_graph (Stage.build plan)
