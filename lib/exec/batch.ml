open Relalg
open Sphys

(* Columnar batches: one [Value.t array] per schema column plus an
   optional selection vector of live physical row indices (ascending).
   Operators are batch-at-a-time — a filter only narrows the selection
   vector, a project materializes new dense columns over the live rows,
   sort/aggregate/join kernels run over whole column arrays — so the
   per-row closure dispatch and schema walking of the old row-list
   engine disappear from the hot loops.

   Row-order discipline: every kernel preserves (or deterministically
   defines) the *live-row order* of its inputs, and the live order of a
   batch list is batch order then selection order within each batch.
   Because each kernel's output order matches what the row-at-a-time
   engine produced row-by-row, a stream's row sequence is independent of
   how it happens to be chunked into batches — the executor's
   byte-identical-at-any-batch-size contract reduces to this module's
   per-kernel order guarantees. *)

type t = {
  schema : Schema.t;
  len : int;  (* physical rows in [cols] *)
  cols : Value.t array array;  (* cols.(c).(i): column c of physical row i *)
  sel : int array option;  (* live physical indices, ascending; None = all *)
}

let schema b = b.schema
let live b = match b.sel with Some s -> Array.length s | None -> b.len

(* Physical index of the [i]-th live row. *)
let[@inline] at b i = match b.sel with Some s -> s.(i) | None -> i

let of_rows schema rows =
  let len = List.length rows in
  let arity = Schema.arity schema in
  let cols = Array.init arity (fun _ -> Array.make len Value.Null) in
  List.iteri
    (fun i row ->
      for c = 0 to arity - 1 do
        cols.(c).(i) <- row.(c)
      done)
    rows;
  { schema; len; cols; sel = None }

let to_rows b =
  let arity = Array.length b.cols in
  let row i = Array.init arity (fun c -> b.cols.(c).(i)) in
  match b.sel with
  | None -> List.init b.len row
  | Some s -> Array.to_list (Array.map row s)

(* Materialize the selection: gather live rows into dense columns. *)
let dense b =
  match b.sel with
  | None -> b
  | Some s ->
      let n = Array.length s in
      {
        schema = b.schema;
        len = n;
        cols = Array.map (fun col -> Array.map (fun i -> col.(i)) s) b.cols;
        sel = None;
      }

(* Concatenate live rows of [bs] in list order into one dense batch. *)
let concat schema bs =
  match bs with
  | [ b ] -> dense b
  | bs ->
      let bs = List.map dense bs in
      let n = List.fold_left (fun acc b -> acc + b.len) 0 bs in
      let arity = Schema.arity schema in
      let cols = Array.init arity (fun _ -> Array.make n Value.Null) in
      let off = ref 0 in
      List.iter
        (fun b ->
          for c = 0 to arity - 1 do
            Array.blit b.cols.(c) 0 cols.(c) !off b.len
          done;
          off := !off + b.len)
        bs;
      { schema; len = n; cols; sel = None }

(* Chop into dense chunks of at most [size] live rows; empty batches are
   dropped.  Chunking never changes the row sequence, only its framing. *)
let split ~size b =
  let b = dense b in
  if b.len = 0 then []
  else if size <= 0 || b.len <= size then [ b ]
  else
    let rec go off acc =
      if off >= b.len then List.rev acc
      else
        let k = min size (b.len - off) in
        let chunk =
          {
            schema = b.schema;
            len = k;
            cols = Array.map (fun col -> Array.sub col off k) b.cols;
            sel = None;
          }
        in
        go (off + k) (chunk :: acc)
    in
    go 0 []

(* Columnar interpreter over [Expr.compiled]: same Value semantics and
   short-circuiting as [Expr.ceval], reading column arrays in place. *)
let rec eval_at cols p = function
  | Expr.CCol c -> cols.(c).(p)
  | Expr.CLit v -> v
  | Expr.CBinop (op, a, b) ->
      Expr.eval_binop op (eval_at cols p a) (eval_at cols p b)
  | Expr.CCmp (op, a, b) ->
      Expr.eval_cmp op (eval_at cols p a) (eval_at cols p b)
  | Expr.CAnd (a, b) ->
      if Value.is_truthy (eval_at cols p a) then eval_at cols p b
      else Value.Int 0
  | Expr.COr (a, b) ->
      if Value.is_truthy (eval_at cols p a) then Value.Int 1
      else eval_at cols p b
  | Expr.CNot a ->
      Value.Int (if Value.is_truthy (eval_at cols p a) then 0 else 1)

let pred_at cols p e = Value.is_truthy (eval_at cols p e)

(* Filter narrows the selection vector; column data is shared, untouched. *)
let filter pred b =
  let n = live b in
  if n = 0 then { b with sel = Some [||] }
  else begin
    let out = Array.make n 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let p = at b i in
      if pred_at b.cols p pred then begin
        out.(!k) <- p;
        incr k
      end
    done;
    { b with sel = Some (Array.sub out 0 !k) }
  end

(* Evaluate one output column per compiled item over the live rows.  A
   bare column reference needs no evaluation: on a dense input the column
   array is shared as-is (columns are immutable), on a filtered input it
   is gathered through the selection vector. *)
let project schema' items b =
  let n = live b in
  let cols' =
    Array.map
      (fun ce ->
        match (ce, b.sel) with
        | Expr.CCol c, None -> b.cols.(c)
        | Expr.CCol c, Some s -> Array.map (fun i -> b.cols.(c).(i)) s
        | ce, _ -> Array.init n (fun i -> eval_at b.cols (at b i) ce))
      items
  in
  { schema = schema'; len = n; cols = cols'; sel = None }

(* Stable sort on precomputed (column index, direction) keys: ties keep
   their input order, exactly like [List.stable_sort] over rows.

   Two fast paths, both order-identical to the generic comparator: an
   all-[Int] key column compares unboxed ints (skipping the
   [Value.compare] dispatch that otherwise dominates), and an input that
   is already sorted returns unchanged (a stable sort of a sorted
   sequence is the identity permutation). *)
let sort keys b =
  let b = dense b in
  let key_cmp (c, dir) =
    let col = b.cols.(c) in
    if Array.for_all (function Value.Int _ -> true | _ -> false) col then begin
      let k = Array.map (function Value.Int x -> x | _ -> 0) col in
      match dir with
      | Sortorder.Asc -> fun i j -> Int.compare k.(i) k.(j)
      | Sortorder.Desc -> fun i j -> Int.compare k.(j) k.(i)
    end
    else
      match dir with
      | Sortorder.Asc -> fun i j -> Value.compare col.(i) col.(j)
      | Sortorder.Desc -> fun i j -> Value.compare col.(j) col.(i)
  in
  let cmp =
    match List.map key_cmp keys with
    | [ c ] -> c
    | cmps ->
        fun i j ->
          let rec go = function
            | [] -> 0
            | c :: rest ->
                let r = c i j in
                if r <> 0 then r else go rest
          in
          go cmps
  in
  let sorted =
    let ok = ref true in
    let i = ref 1 in
    while !ok && !i < b.len do
      if cmp (!i - 1) !i > 0 then ok := false;
      incr i
    done;
    !ok
  in
  if sorted then b
  else begin
    let perm = Array.init b.len Fun.id in
    Array.stable_sort cmp perm;
    {
      schema = b.schema;
      len = b.len;
      cols = Array.map (fun col -> Array.map (fun i -> col.(i)) perm) b.cols;
      sel = None;
    }
  end

(* Route each live row to [(17 + sum of per-key Value.hash) mod machines]
   — the same commutative hash the row engine used.  Returns one
   physical-index array per destination, in input row order: a selection
   into [b], no column data copied. *)
let scatter_sel ~machines key_idx b =
  let n = live b in
  let dst = Array.make (max n 1) 0 in
  let counts = Array.make machines 0 in
  for i = 0 to n - 1 do
    let p = at b i in
    let h = ref 17 in
    Array.iter (fun c -> h := !h + Value.hash b.cols.(c).(p)) key_idx;
    let m = (!h land max_int) mod machines in
    dst.(i) <- m;
    counts.(m) <- counts.(m) + 1
  done;
  let sels = Array.map (fun c -> Array.make c 0) counts in
  let cur = Array.make machines 0 in
  for i = 0 to n - 1 do
    let m = dst.(i) in
    sels.(m).(cur.(m)) <- at b i;
    cur.(m) <- cur.(m) + 1
  done;
  sels

(* One dense batch from (source batch, physical indices) fragments, rows
   in fragment order — the single copy of an exchange's receive side. *)
let gather schema (frags : (t * int array) list) =
  let total = List.fold_left (fun acc (_, s) -> acc + Array.length s) 0 frags in
  let ncols = List.length schema in
  let cols = Array.init ncols (fun _ -> Array.make total Value.Null) in
  let off = ref 0 in
  List.iter
    (fun (src, s) ->
      let k = Array.length s in
      for c = 0 to ncols - 1 do
        let scol = src.cols.(c) and dcol = cols.(c) in
        for i = 0 to k - 1 do
          dcol.(!off + i) <- scol.(s.(i))
        done
      done;
      off := !off + k)
    frags;
  { schema; len = total; cols; sel = None }

(* Growable column buffer for kernels with data-dependent output size. *)
module Vbuf = struct
  type t = { mutable a : Value.t array; mutable n : int }

  let create () = { a = Array.make 16 Value.Null; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let a' = Array.make (2 * b.n) Value.Null in
      Array.blit b.a 0 a' 0 b.n;
      b.a <- a'
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let contents b = Array.sub b.a 0 b.n
end

(* Streaming aggregation over a batch list whose groups are contiguous
   across batch boundaries; one group's rows may span many batches, the
   carried state makes the result independent of the chunking.  Group
   keys are compared and emitted exactly as the row engine did: in
   arrival order, one output row per contiguous key run. *)
let stream_agg schema ~key_idx ~(aggs : Agg.t array) ~cargs batches =
  let nk = Array.length key_idx in
  let na = Array.length aggs in
  let out = Array.init (nk + na) (fun _ -> Vbuf.create ()) in
  let rows_out = ref 0 in
  let flush key states =
    for c = 0 to nk - 1 do
      Vbuf.push out.(c) key.(c)
    done;
    for a = 0 to na - 1 do
      Vbuf.push out.(nk + a) (Agg.finish aggs.(a) states.(a))
    done;
    incr rows_out
  in
  let current = ref None in
  List.iter
    (fun b ->
      let n = live b in
      for i = 0 to n - 1 do
        let p = at b i in
        (* compare the row's key against the running group in place; a
           key array is only materialized when a new group starts, so
           the per-row cost is [nk] reads, not an allocation *)
        let same_key k0 =
          let rec eq c =
            c >= nk || (Value.equal k0.(c) b.cols.(key_idx.(c)).(p) && eq (c + 1))
          in
          eq 0
        in
        let states =
          match !current with
          | Some (k0, states) when same_key k0 -> states
          | prev ->
              (match prev with
              | Some (k0, states) -> flush k0 states
              | None -> ());
              let key = Array.map (fun c -> b.cols.(c).(p)) key_idx in
              let fresh = Array.init na (fun _ -> Agg.init ()) in
              current := Some (key, fresh);
              fresh
        in
        for a = 0 to na - 1 do
          Agg.step_value aggs.(a) states.(a) (eval_at b.cols p cargs.(a))
        done
      done)
    batches;
  (match !current with Some (k, states) -> flush k states | None -> ());
  {
    schema;
    len = !rows_out;
    cols = Array.map Vbuf.contents out;
    sel = None;
  }

(* Hash aggregation over a batch list, mirroring [Table.group_by]: keys
   hashed as [Value.t list]s, output rows in first-seen key order. *)
let hash_agg schema ~key_idx ~(aggs : Agg.t array) ~cargs batches =
  let nk = Array.length key_idx in
  let na = Array.length aggs in
  let tbl : (Value.t list, Agg.state array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun b ->
      let n = live b in
      for i = 0 to n - 1 do
        let p = at b i in
        let key =
          List.init nk (fun c -> b.cols.(key_idx.(c)).(p))
        in
        let states =
          match Hashtbl.find_opt tbl key with
          | Some states -> states
          | None ->
              let states = Array.init na (fun _ -> Agg.init ()) in
              Hashtbl.add tbl key states;
              order := key :: !order;
              states
        in
        for a = 0 to na - 1 do
          Agg.step_value aggs.(a) states.(a) (eval_at b.cols p cargs.(a))
        done
      done)
    batches;
  let groups = List.rev !order in
  let ngroups = List.length groups in
  let cols = Array.init (nk + na) (fun _ -> Array.make ngroups Value.Null) in
  List.iteri
    (fun g key ->
      let states = Hashtbl.find tbl key in
      List.iteri (fun c v -> cols.(c).(g) <- v) key;
      for a = 0 to na - 1 do
        cols.(nk + a).(g) <- Agg.finish aggs.(a) states.(a)
      done)
    groups;
  { schema; len = ngroups; cols; sel = None }

(* Predicate over a (left row, right row) pair: combined-schema column
   positions below the left arity read the left batch, the rest the
   right — no per-pair row materialization. *)
let rec eval2 larity lcols li rcols ri = function
  | Expr.CCol c ->
      if c < larity then lcols.(c).(li) else rcols.(c - larity).(ri)
  | Expr.CLit v -> v
  | Expr.CBinop (op, a, b) ->
      Expr.eval_binop op
        (eval2 larity lcols li rcols ri a)
        (eval2 larity lcols li rcols ri b)
  | Expr.CCmp (op, a, b) ->
      Expr.eval_cmp op
        (eval2 larity lcols li rcols ri a)
        (eval2 larity lcols li rcols ri b)
  | Expr.CAnd (a, b) ->
      if Value.is_truthy (eval2 larity lcols li rcols ri a) then
        eval2 larity lcols li rcols ri b
      else Value.Int 0
  | Expr.COr (a, b) ->
      if Value.is_truthy (eval2 larity lcols li rcols ri a) then Value.Int 1
      else eval2 larity lcols li rcols ri b
  | Expr.CNot a ->
      Value.Int
        (if Value.is_truthy (eval2 larity lcols li rcols ri a) then 0 else 1)

(* Nested-loop join with the row engine's exact output order: for each
   left row in order, every matching right row in right order;
   [`Left_outer] pads an unmatched left row with nulls.  The predicate
   is compiled against the combined schema (left @ right). *)
let join ~kind pred l r =
  let l = dense l and r = dense r in
  let larity = Array.length l.cols in
  let lis = ref (Array.make 64 0) in
  let ris = ref (Array.make 64 0) in
  let k = ref 0 in
  let push li ri =
    if !k = Array.length !lis then begin
      let grow a =
        let a' = Array.make (2 * !k) 0 in
        Array.blit a 0 a' 0 !k;
        a'
      in
      lis := grow !lis;
      ris := grow !ris
    end;
    !lis.(!k) <- li;
    !ris.(!k) <- ri;
    incr k
  in
  for li = 0 to l.len - 1 do
    let matched = ref false in
    for ri = 0 to r.len - 1 do
      if Value.is_truthy (eval2 larity l.cols li r.cols ri pred) then begin
        matched := true;
        push li ri
      end
    done;
    if (not !matched) && kind = `Left_outer then push li (-1)
  done;
  let n = !k in
  let lis = !lis and ris = !ris in
  let lcols = Array.map (fun col -> Array.init n (fun i -> col.(lis.(i)))) l.cols in
  let rcols =
    Array.map
      (fun col ->
        Array.init n (fun i ->
            let ri = ris.(i) in
            if ri < 0 then Value.Null else col.(ri)))
      r.cols
  in
  {
    schema = l.schema @ r.schema;
    len = n;
    cols = Array.append lcols rcols;
    sel = None;
  }
