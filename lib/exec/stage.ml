open Sphys

(* Stage-graph compilation: a physical plan DAG cut at data-movement and
   materialization boundaries, SCOPE/Dryad style.

   A *stage* is a maximal operator subtree executed as one unit: its root
   is a boundary operator (exchange, merge-exchange, gather or spool) or
   the plan root, and its interior extends downward until the next
   boundary.  Boundary children become *dependencies* — edges to the stage
   that produces them.

   Sharing follows the engine's execution semantics exactly:

   - a [P_spool] boundary gets ONE stage however many consumers reference
     it (physical identity); that stage's cached output is what the paper
     shares;
   - every other boundary gets a stage PER REFERENCE, and shared non-spool
     interior nodes are walked (hence later executed) once per reference.
     This is deliberate tree expansion: the conventional baseline reuses
     winner subplans physically but pays for each consumer's copy, and
     the executor's counters must account each copy.  [shared_interior]
     records such nodes so the stage auditor can flag them in plans that
     are supposed to share through spools only.

   [deps] lists each boundary encounter of the interior in left-to-right
   depth-first order — the order the engine's interior evaluator consumes
   them — paired with the boundary node itself so the consumer can verify
   it is reading what the compiler cut. *)

type stage = {
  id : int;
  root : Plan.t;
  deps : (Plan.t * int) list;
      (* boundary children in interior walk order, with producing stage *)
  nodes : int; (* interior size, the root included *)
}

type graph = {
  stages : stage array;
      (* indexed by id; topological: every dependency precedes its consumer *)
  sink : int; (* the plan root's stage; always the last *)
  shared_interior : Plan.t list;
      (* non-boundary nodes reachable from more than one interior position *)
}

let boundary (n : Plan.t) =
  match n.Plan.op with
  | Physop.P_exchange _ | Physop.P_merge_exchange _ | Physop.P_gather
  | Physop.P_spool ->
      true
  | _ -> false

let mem_phys x l = List.exists (fun y -> y == x) l

let assq_phys x l =
  List.find_opt (fun (k, _) -> k == x) l |> Option.map snd

let build (plan : Plan.t) : graph =
  let stages = ref [] in
  let count = ref 0 in
  (* spools are deduplicated by physical identity; other boundaries are
     instantiated per reference *)
  let spool_stage : (Plan.t * int) list ref = ref [] in
  let interior_seen : Plan.t list ref = ref [] in
  let shared = ref [] in
  let rec stage_of root =
    let deps = ref [] in
    let nodes = ref 0 in
    let rec walk n =
      incr nodes;
      if not (boundary n) then
        if mem_phys n !interior_seen then begin
          if not (mem_phys n !shared) then shared := n :: !shared
        end
        else interior_seen := n :: !interior_seen;
      List.iter
        (fun (c : Plan.t) ->
          if boundary c then begin
            let sid =
              match c.Plan.op with
              | Physop.P_spool -> (
                  match assq_phys c !spool_stage with
                  | Some sid -> sid
                  | None ->
                      let sid = stage_of c in
                      spool_stage := (c, sid) :: !spool_stage;
                      sid)
              | _ -> stage_of c
            in
            deps := (c, sid) :: !deps
          end
          else walk c)
        n.Plan.children
    in
    walk root;
    let id = !count in
    incr count;
    stages := { id; root; deps = List.rev !deps; nodes = !nodes } :: !stages;
    id
  in
  let sink = stage_of plan in
  {
    stages = Array.of_list (List.rev !stages);
    sink;
    shared_interior = List.rev !shared;
  }

let size g = Array.length g.stages

(* Topological level of each stage: 0 for stages with no dependencies,
   else one more than the deepest dependency.  Stages of equal depth can
   execute concurrently in a fault-free run — the graph's wave structure. *)
let depths g =
  let n = Array.length g.stages in
  let d = Array.make n 0 in
  Array.iter
    (fun (st : stage) ->
      d.(st.id) <-
        List.fold_left (fun acc (_, dep) -> max acc (d.(dep) + 1)) 0 st.deps)
    g.stages;
  d

(* Largest number of stages sharing a depth level: the fault-free
   parallelism the wave scheduler can exploit. *)
let width g =
  let d = depths g in
  let n = Array.length g.stages in
  if n = 0 then 0
  else begin
    let per_level = Array.make (Array.fold_left max 0 d + 1) 0 in
    Array.iter (fun lvl -> per_level.(lvl) <- per_level.(lvl) + 1) d;
    Array.fold_left max 0 per_level
  end

let describe (s : stage) =
  Printf.sprintf "stage %d [%s] (%d operator%s, %d input%s)" s.id
    (Physop.short_name s.root.Plan.op)
    s.nodes
    (if s.nodes = 1 then "" else "s")
    (List.length s.deps)
    (if List.length s.deps = 1 then "" else "s")

let pp ppf g =
  Array.iter
    (fun s ->
      Fmt.pf ppf "%s%s <- {%s}@." (describe s)
        (if s.id = g.sink then " (sink)" else "")
        (String.concat ","
           (List.map (fun (_, sid) -> string_of_int sid) s.deps)))
    g.stages
