(** Deterministic wave scheduler with fault recovery.

    Executes a {!Stage.graph} bottom-up in waves: each round, the stages
    that must (re-)execute and whose inputs are intact run together —
    across a worker pool when one is supplied — then a barrier commits
    their outputs and draws fault events in ascending stage id.  The
    logical schedule is a pure function of committed state, so outputs,
    attempt counts and fault events are identical for every worker
    count; parallelism only changes wall-clock time.  A lost input is
    recovered by recomputing the producing stage — from its own cached
    inputs when intact, recursively from source otherwise — under a
    per-stage attempt budget.  Generic in the stage-output type: the
    caller supplies evaluation and row counting. *)

type metrics = {
  mutable stages_run : int;  (** stage executions, recoveries included *)
  mutable vertices_run : int;  (** one vertex per machine per execution *)
  mutable retries : int;
      (** re-executions of a previously completed stage *)
  mutable recomputed_rows : int;  (** rows produced by those re-executions *)
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

val fresh_metrics : unit -> metrics

(** A stage exceeded its execution budget while recovering. *)
exception Recovery_exhausted of { stage : int; attempts : int }

type 'o outcome = {
  result : 'o;  (** the sink stage's output *)
  attempts : int array;  (** per-stage execution counts *)
  seconds : float array;  (** per-stage wall seconds, attempts summed *)
  metrics : metrics;
}

(** [run ~machines ?pool ?faults ~execute ~rows graph] executes every
    stage at least once, waves of independent stages in parallel when
    [pool] is given.  [execute st ~read] evaluates one stage, calling
    [read dep] for each cached input — it may be called concurrently
    from several domains and must not depend on evaluation order within
    a wave; [rows] sizes an output for recompute accounting.  Raises
    {!Recovery_exhausted} when a stage's attempt budget (default
    {!Faults.default_attempts}) runs out. *)
val run :
  machines:int ->
  ?pool:Sutil.Pool.t ->
  ?faults:Faults.t ->
  ?max_attempts:int ->
  execute:(Stage.stage -> read:(int -> 'o) -> 'o) ->
  rows:('o -> int) ->
  Stage.graph ->
  'o outcome

(** [modeled_makespan ~workers ~seconds graph] replays measured
    per-stage durations (from {!outcome}[.seconds]) through the
    fault-free wave schedule with greedy longest-task-first placement on
    [workers] slots, returning the projected execution wall time on a
    host with that many real cores. *)
val modeled_makespan :
  workers:int -> seconds:float array -> Stage.graph -> float
