(** Stage scheduler with fault recovery.

    Executes a {!Stage.graph} bottom-up, caching each stage's output for
    its consumers.  Fault events drawn after each completion may mark
    cached partitions lost; a lost input is recovered by recomputing the
    producing stage — from its own cached inputs when intact, recursively
    from source otherwise — under a per-stage attempt budget.  Generic in
    the stage-output type: the caller supplies evaluation and row
    counting. *)

type metrics = {
  mutable stages_run : int;  (** stage executions, recoveries included *)
  mutable vertices_run : int;  (** one vertex per machine per execution *)
  mutable retries : int;
      (** re-executions of a previously completed stage *)
  mutable recomputed_rows : int;  (** rows produced by those re-executions *)
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

val fresh_metrics : unit -> metrics

(** A stage exceeded its execution budget while recovering. *)
exception Recovery_exhausted of { stage : int; attempts : int }

type 'o outcome = {
  result : 'o;  (** the sink stage's output *)
  attempts : int array;  (** per-stage execution counts *)
  metrics : metrics;
}

(** [run ~machines ?faults ~execute ~rows graph] executes every stage in
    topological order.  [execute st ~read] evaluates one stage, calling
    [read dep] for each cached input; [rows] sizes an output for
    recompute accounting.  Raises {!Recovery_exhausted} when a stage's
    attempt budget (default {!Faults.default_attempts}) runs out. *)
val run :
  machines:int ->
  ?faults:Faults.t ->
  ?max_attempts:int ->
  execute:(Stage.stage -> read:(int -> 'o) -> 'o) ->
  rows:('o -> int) ->
  Stage.graph ->
  'o outcome
