open Relalg
open Sphys

(* Simulated distributed execution of physical plans, staged,
   domain-parallel and vectorized.

   A stream is an array of per-machine *batch lists* ([Batch.t]): one
   value array per column plus a selection vector, consumed and produced
   whole batches at a time.  Filters narrow selection vectors in place,
   projections map columns, exchanges compute a hash per live row and
   scatter batch slices per destination machine, sort/aggregate kernels
   run over whole column arrays (streaming aggregation carries its group
   state across batch boundaries).  Exchange / spool / gather boundaries
   ship batches, so stage outputs are cached — and recomputed after a
   fault — in batch form.

   Exchanges use a *commutative* per-row hash over the partition columns,
   so two inputs partitioned on column sets linked by join equalities are
   co-located (the property the optimizer's co-partitioning rules rely
   on).

   Execution is staged, SCOPE/Dryad style: [Stage.build] cuts the plan at
   exchange / merge-exchange / gather / spool boundaries, and [Scheduler]
   runs the stages bottom-up in deterministic waves, caching each stage's
   output for its consumers.  With [workers > 1] a fixed pool of OCaml 5
   domains executes independent stages of a wave concurrently; the
   per-machine vertex loops inside a stage fan out across the same pool
   only when the stage moves enough rows to amortize the dispatch
   ([par_threshold]).  Outputs are byte-identical at every worker count
   *and* every batch size: parallel loops write disjoint slots,
   everything order-sensitive happens at the scheduler's commit barriers,
   and every batch kernel preserves the row engine's live-row order
   (chunking only changes framing — see [Batch]).

   Counter discipline under parallelism: each stage execution accumulates
   its stream counters (rows shuffled / extracted, spool traffic, batches
   produced) in a private [tally], merged into the engine's totals under
   a mutex when the stage finishes — addition commutes, so totals are
   deterministic.  Property violations go to a per-stage slot (one writer
   each) and are flattened in stage-id order after the run.  With fault
   injection ([Faults]), cached partitions can be lost between stages and
   are recovered by recomputing the producing stage; [Validate] compares
   every output against the reference evaluator. *)

type dist = { schema : Schema.t; parts : Batch.t list array }

type counters = {
  mutable rows_shuffled : int;
  mutable rows_extracted : int;
  mutable spool_executions : int;
  mutable spool_reads : int;
  mutable batches : int;
  mutable stages_run : int;
  mutable vertices_run : int;
  mutable retries : int;
  mutable recomputed_rows : int;
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

type t = {
  machines : int;
  workers : int;  (* domain-pool width; 1 = fully sequential *)
  batch_size : int;  (* max rows per produced batch *)
  catalog : Catalog.t;
  datagen : Datagen.config;
  (* when set, every run draws deterministic fault events from this spec *)
  faults : Faults.spec option;
  counters : counters;
  mu : Mutex.t;  (* guards [counters] merges from worker domains *)
  (* per-(file, schema) extract batches: [Datagen] is deterministic, so a
     re-extraction — another stage over the same file, a later rep on a
     reused engine, a fault recovery — returns byte-identical rows by
     construction; serving the cached batches is indistinguishable from
     recomputing them.  Guarded by [extract_mu] (stages of one wave may
     extract concurrently).  [rows_extracted] still counts every extract
     execution, cached or not, so fault accounting is unchanged. *)
  extract_mu : Mutex.t;
  extract_cache : (int * string * Schema.t, int * Batch.t list array) Hashtbl.t;
  mutable outputs_rev : (string * Table.t) list;
  (* when set, every operator's *claimed* delivered properties are checked
     against the rows it actually produced *)
  verify_props : bool;
  mutable prop_violations : string list;
  (* per-stage execution counts of the most recent [execute] *)
  mutable last_attempts : int array;
  (* per-stage wall seconds of the most recent [execute] *)
  mutable last_seconds : float array;
  (* execution wall seconds of the most recent [execute] *)
  mutable last_wall : float;
  (* per-worker busy seconds of the most recent [execute] *)
  mutable last_busy : float array;
}

let c_stages = Sutil.Counters.counter "exec.stages_run"
let c_vertices = Sutil.Counters.counter "exec.vertices_run"
let c_retries = Sutil.Counters.counter "exec.retries"
let c_recomputed = Sutil.Counters.counter "exec.recomputed_rows"
let c_partitions_lost = Sutil.Counters.counter "exec.partitions_lost"
let c_machines_failed = Sutil.Counters.counter "exec.machines_failed"
let c_wall_us = Sutil.Counters.counter "exec.wall_us"
let c_batches = Sutil.Counters.counter "exec.batches"

(* Distribution of live rows per stage-output batch. *)
let batch_rows_h = Sobs.Hist.hist "exec.batch_rows"

let default_batch_size = 1024

(* Below this many moved rows a per-machine loop runs inline: fanning
   tiny column slices across domains costs more in dispatch than the
   work.  Scheduling only — results are slot-disjoint either way. *)
let par_threshold = 8192

(* A pool wider than the host's cores cannot help — the domains timeshare
   and every stop-the-world minor collection pays their scheduling
   latency — so the requested width is capped at the hardware parallelism
   unless the caller insists ([oversubscribe], used by the determinism
   tests to exercise true multi-domain runs regardless of host).  Results
   are byte-identical at every worker count, so the cap is scheduling
   only. *)
let create ?(datagen = Datagen.default) ?(verify_props = false) ?faults
    ?(oversubscribe = false) ?(workers = 1)
    ?(batch_size = default_batch_size) ~machines catalog =
  let workers = max 1 workers in
  let workers =
    if oversubscribe then workers
    else min workers (Domain.recommended_domain_count ())
  in
  {
    machines;
    workers;
    batch_size = max 1 batch_size;
    catalog;
    datagen;
    faults;
    counters =
      {
        rows_shuffled = 0;
        rows_extracted = 0;
        spool_executions = 0;
        spool_reads = 0;
        batches = 0;
        stages_run = 0;
        vertices_run = 0;
        retries = 0;
        recomputed_rows = 0;
        partitions_lost = 0;
        machines_failed = 0;
      };
    mu = Mutex.create ();
    extract_mu = Mutex.create ();
    extract_cache = Hashtbl.create 16;
    outputs_rev = [];
    verify_props;
    prop_violations = [];
    last_attempts = [||];
    last_seconds = [||];
    last_wall = 0.0;
    last_busy = [||];
  }

let empty_parts t : Batch.t list array = Array.make t.machines []

let part_live bs = List.fold_left (fun acc b -> acc + Batch.live b) 0 bs

let dist_rows (d : dist) =
  Array.fold_left (fun acc bs -> acc + part_live bs) 0 d.parts

let dist_batches (d : dist) =
  Array.fold_left (fun acc bs -> acc + List.length bs) 0 d.parts

(* Row view of one machine's partition, in live order. *)
let part_rows (d : dist) m = List.concat_map Batch.to_rows d.parts.(m)

(* Build a stream from per-machine row lists (tests, examples). *)
let dist_of_parts schema (parts : Value.t array list array) : dist =
  {
    schema;
    parts =
      Array.map
        (fun rows -> if rows = [] then [] else [ Batch.of_rows schema rows ])
        parts;
  }

(* One stage execution's private stream counters; merged into the shared
   totals under the engine mutex when the stage finishes, so worker
   domains never race on [counters] and the totals (sums) are identical
   at every worker count. *)
type tally = {
  mutable t_shuffled : int;
  mutable t_extracted : int;
  mutable t_spool_exec : int;
  mutable t_spool_reads : int;
  mutable t_batches : int;
}

let fresh_tally () =
  {
    t_shuffled = 0;
    t_extracted = 0;
    t_spool_exec = 0;
    t_spool_reads = 0;
    t_batches = 0;
  }

let merge_tally t (y : tally) =
  Sutil.Counters.bump c_batches y.t_batches;
  Mutex.protect t.mu (fun () ->
      let c = t.counters in
      c.rows_shuffled <- c.rows_shuffled + y.t_shuffled;
      c.rows_extracted <- c.rows_extracted + y.t_extracted;
      c.spool_executions <- c.spool_executions + y.t_spool_exec;
      c.spool_reads <- c.spool_reads + y.t_spool_reads;
      c.batches <- c.batches + y.t_batches)

(* Per-partition map across the pool: slot [m] is written only by the
   task that evaluated partition [m], so the result is schedule
   independent.  Small streams run inline (see [par_threshold]). *)
let map_parts pool f (d : dist) schema' =
  let parts =
    if dist_rows d < par_threshold then Array.map f d.parts
    else
      Sutil.Pool.parallel_init pool (Array.length d.parts) (fun m ->
          f d.parts.(m))
  in
  { schema = schema'; parts }

let sort_keys (schema : Schema.t) (order : Sortorder.t) =
  List.map (fun (c, dir) -> (Schema.index c schema, dir)) order

(* Sort one machine's batches: concatenate, one stable columnar sort,
   re-chunk.  Identical to stable-sorting the partition's row list. *)
let sort_part batch_size schema keys bs =
  Batch.split ~size:batch_size (Batch.sort keys (Batch.concat schema bs))

(* Streaming aggregation over rows whose groups are contiguous —
   row-level convenience wrapper around the batch kernel, kept for tests
   and direct callers. *)
let stream_agg (schema : Schema.t) ~keys ~(aggs : Agg.t list) rows =
  let key_idx = Array.of_list (List.map (fun k -> Schema.index k schema) keys) in
  let aggs_a = Array.of_list aggs in
  let cargs = Array.map (fun a -> Expr.compile schema a.Agg.arg) aggs_a in
  let out_schema =
    List.map
      (fun k ->
        match Schema.find k schema with
        | Some c -> c
        | None -> Schema.column k Schema.Tint)
      keys
    @ List.map
        (fun a -> Schema.column a.Agg.output (Agg.output_type schema a))
        aggs
  in
  Batch.to_rows
    (Batch.stream_agg out_schema ~key_idx ~aggs:aggs_a ~cargs
       [ Batch.of_rows schema rows ])

(* Two-phase exchange: each input partition's batches compute their
   per-destination routing selections in parallel (no column data moves),
   then each output machine gathers its fragments — in input-partition
   order, batch order within a partition, row order within a batch — into
   one dense batch.  Exactly the arrival order the sequential single-pass
   row engine produced, at every worker count and batch size, with one
   column copy per received row. *)
let exchange_on pool ~machines (tally : tally) (d : dist) cols =
  let key_idx =
    Array.of_list
      (List.map (fun c -> Schema.index c d.schema) (Colset.to_list cols))
  in
  let nsrc = Array.length d.parts in
  let total = dist_rows d in
  let scatter_src src =
    List.map
      (fun b -> (b, Batch.scatter_sel ~machines key_idx b))
      d.parts.(src)
  in
  let par = total >= par_threshold in
  let buckets =
    if par then Sutil.Pool.parallel_init pool nsrc scatter_src
    else Array.init nsrc scatter_src
  in
  tally.t_shuffled <- tally.t_shuffled + total;
  let gather_dst dst =
    let frags = ref [] in
    for src = nsrc - 1 downto 0 do
      List.iter
        (fun (b, sels) ->
          if Array.length sels.(dst) > 0 then frags := (b, sels.(dst)) :: !frags)
        (List.rev buckets.(src))
    done;
    match !frags with
    | [] -> []
    | frags -> [ Batch.gather d.schema frags ]
  in
  let parts =
    if par then Sutil.Pool.parallel_init pool machines gather_dst
    else Array.init machines gather_dst
  in
  { schema = d.schema; parts }

(* Sequential convenience wrapper kept for tests and examples; merges the
   shuffle count straight into the engine totals. *)
let exchange t (d : dist) cols =
  let tally = fresh_tally () in
  let d' =
    Sutil.Pool.with_pool ~workers:1 (fun pool ->
        exchange_on pool ~machines:t.machines tally d cols)
  in
  merge_tally t tally;
  d'

let pred_of_pairs pairs residual =
  let eqs =
    List.map (fun (a, b) -> Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)) pairs
  in
  let conj =
    match eqs @ Option.to_list residual with
    | [] -> Expr.Lit (Value.Int 1)
    | e :: rest -> List.fold_left (fun acc x -> Expr.And (acc, x)) e rest
  in
  conj

(* Check that the delivered properties recorded on a plan node hold on the
   rows it actually produced: a [Serial] stream occupies one machine, a
   [Hashed s] stream co-locates every s-tuple, and each partition is sorted
   per the claimed order.  A claimed partition or sort column that the
   delivered schema does not even contain is itself a violation.
   Violations accumulate in [viols], newest first — one ref per stage
   execution, so concurrent stages never interleave their reports.
   Checking extracts a row view per partition; it is test-only
   instrumentation ([verify_props]), never on the bench path. *)
let check_delivered viols (n : Plan.t) (d : dist) =
  let violation fmt = Fmt.kstr (fun m -> viols := m :: !viols) fmt in
  let where = Physop.to_string n.Plan.op in
  let rows_of m = List.concat_map Batch.to_rows d.parts.(m) in
  (match n.Plan.props.Props.part with
  | Partition.Roundrobin -> ()
  | Partition.Serial ->
      let occupied =
        Array.fold_left
          (fun acc bs -> if part_live bs = 0 then acc else acc + 1)
          0 d.parts
      in
      if occupied > 1 then
        violation "%s: claims serial but occupies %d machines" where occupied
  | Partition.Hashed s ->
      let idxs =
        List.filter_map (fun c -> Schema.index_opt c d.schema) (Colset.to_list s)
      in
      if List.length idxs <> Colset.cardinal s then
        violation "%s: claims hash%s but the delivered schema lacks %d of its columns"
          where (Colset.to_string s)
          (Colset.cardinal s - List.length idxs)
      else begin
        let homes = Hashtbl.create 64 in
        for m = 0 to Array.length d.parts - 1 do
          List.iter
            (fun row ->
              let key = List.map (fun i -> row.(i)) idxs in
              match Hashtbl.find_opt homes key with
              | Some m0 when m0 <> m ->
                  violation
                    "%s: claims hash%s but a %s group spans machines %d and %d"
                    where (Colset.to_string s) (Colset.to_string s) m0 m
              | Some _ -> ()
              | None -> Hashtbl.add homes key m)
            (rows_of m)
        done
      end);
  match n.Plan.props.Props.sort with
  | [] -> ()
  | order ->
      let idxs =
        List.filter_map
          (fun (c, dir) ->
            Option.map (fun i -> (i, dir)) (Schema.index_opt c d.schema))
          order
      in
      if List.length idxs <> List.length order then
        violation "%s: claims sort %s but the delivered schema lacks %d of its columns"
          where (Sortorder.to_string order)
          (List.length order - List.length idxs)
      else
        let cmp a b =
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = Value.compare a.(i) b.(i) in
                let c = match dir with Sortorder.Asc -> c | Sortorder.Desc -> -c in
                if c <> 0 then c else go rest
          in
          go idxs
        in
        for m = 0 to Array.length d.parts - 1 do
          let rec sorted = function
            | a :: (b :: _ as rest) -> cmp a b <= 0 && sorted rest
            | _ -> true
          in
          if not (sorted (rows_of m)) then
            violation "%s: claims sort %s but machine %d is out of order"
              where (Sortorder.to_string order) m
        done

(* Evaluate one stage's interior.  Boundary children are consumed from the
   stage's dependency list in left-to-right depth-first order — the order
   [Stage.build] recorded them — reading the producing stage's cached
   output through [read].  Physical identity is asserted at every
   consumption, so a compiler/evaluator walk divergence fails fast instead
   of silently wiring a stage to the wrong input.  Boundary operators
   appear in [eval_op] only as stage roots.

   May run on any worker domain, concurrently with other stages: shared
   engine state is read-only here, stream counters go to the caller's
   [tally], violations to the caller's [viols], and the per-machine loops
   below fan out through [pool] writing disjoint slots.  The only
   exception is [outputs_rev], written by OUTPUT operators — those are
   confined to the sink stage, which the scheduler always runs in a wave
   of its own (every other stage is one of its transitive dependencies). *)
let execute_stage t ~pool ~tally ~viols ~is_sink (st : Stage.stage) ~read :
    dist =
  let deps = ref st.Stage.deps in
  (* stage label for the kernel profiler; [Profile.now]/[Profile.note]
     are one atomic load and a branch when profiling is off *)
  let sid = st.Stage.id in
  let rec eval (n : Plan.t) : dist =
    let d = eval_op n in
    if t.verify_props then check_delivered viols n d;
    d
  and eval_child (c : Plan.t) : dist =
    if Stage.boundary c then
      match !deps with
      | (b, sid) :: rest when b == c ->
          deps := rest;
          (match c.Plan.op with
          | Physop.P_spool -> tally.t_spool_reads <- tally.t_spool_reads + 1
          | _ -> ());
          read sid
      | _ -> invalid_arg "Engine: stage dependency consumed out of order"
    else eval c
  and eval_op (n : Plan.t) : dist =
    let schema = n.Plan.schema in
    match n.Plan.op with
    | Physop.P_extract { file; schema = fschema; _ } ->
        let t0 = Profile.now () in
        let key = (Catalog.version t.catalog, file, fschema) in
        let rows, parts =
          Mutex.protect t.extract_mu (fun () ->
              match Hashtbl.find_opt t.extract_cache key with
              | Some cached -> cached
              | None ->
                  let table =
                    Datagen.table ~config:t.datagen t.catalog ~file
                      ~schema:fschema
                  in
                  let parts = Array.make t.machines [] in
                  List.iteri
                    (fun i row ->
                      let m = i mod t.machines in
                      parts.(m) <- row :: parts.(m))
                    table.Table.rows;
                  let built =
                    ( Table.cardinality table,
                      Array.map
                        (fun rows ->
                          if rows = [] then []
                          else
                            Batch.split ~size:t.batch_size
                              (Batch.of_rows fschema (List.rev rows)))
                        parts )
                  in
                  Hashtbl.add t.extract_cache key built;
                  built)
        in
        tally.t_extracted <- tally.t_extracted + rows;
        Profile.note ~kernel:"extract" ~stage:sid t0;
        { schema = fschema; parts }
    | Physop.P_filter { pred } ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let cpred = Expr.compile d.schema pred in
        let r =
          map_parts pool
            (fun bs ->
              List.filter_map
                (fun b ->
                  let b = Batch.filter cpred b in
                  if Batch.live b = 0 then None else Some b)
                bs)
            d schema
        in
        Profile.note ~kernel:"filter" ~stage:sid t0;
        r
    | Physop.P_project { items } ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let ces =
          Array.of_list
            (List.map (fun (e, _) -> Expr.compile d.schema e) items)
        in
        let r = map_parts pool (List.map (Batch.project schema ces)) d schema in
        Profile.note ~kernel:"project" ~stage:sid t0;
        r
    | Physop.P_sort { order } ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let keys = sort_keys d.schema order in
        let r = map_parts pool (sort_part t.batch_size d.schema keys) d schema in
        Profile.note ~kernel:"sort" ~stage:sid t0;
        r
    | Physop.P_stream_agg { keys; aggs; scope = _ } ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let key_idx =
          Array.of_list (List.map (fun k -> Schema.index k d.schema) keys)
        in
        let aggs_a = Array.of_list aggs in
        let cargs =
          Array.map (fun a -> Expr.compile d.schema a.Agg.arg) aggs_a
        in
        let r =
          map_parts pool
            (fun bs ->
              Batch.split ~size:t.batch_size
                (Batch.stream_agg schema ~key_idx ~aggs:aggs_a ~cargs bs))
            d schema
        in
        Profile.note ~kernel:"aggregate" ~stage:sid t0;
        r
    | Physop.P_hash_agg { keys; aggs; scope = _ } ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let key_idx =
          Array.of_list (List.map (fun k -> Schema.index k d.schema) keys)
        in
        let aggs_a = Array.of_list aggs in
        let cargs =
          Array.map (fun a -> Expr.compile d.schema a.Agg.arg) aggs_a
        in
        let r =
          map_parts pool
            (fun bs ->
              Batch.split ~size:t.batch_size
                (Batch.hash_agg schema ~key_idx ~aggs:aggs_a ~cargs bs))
            d schema
        in
        Profile.note ~kernel:"aggregate" ~stage:sid t0;
        r
    | Physop.P_merge_join { kind; pairs; residual }
    | Physop.P_hash_join { kind; pairs; residual } -> (
        match n.Plan.children with
        | [ lc; rc ] ->
            (* left before right: the dependency cursor order is the
               compiler's left-to-right walk *)
            let l = eval_child lc in
            let r = eval_child rc in
            let kind =
              match kind with
              | Slogical.Logop.Inner -> `Inner
              | Slogical.Logop.Left_outer -> `Left_outer
            in
            let t0 = Profile.now () in
            let cpred =
              Expr.compile (l.schema @ r.schema)
                (pred_of_pairs pairs residual)
            in
            let join_m m =
              Batch.split ~size:t.batch_size
                (Batch.join ~kind cpred
                   (Batch.concat l.schema l.parts.(m))
                   (Batch.concat r.schema r.parts.(m)))
            in
            let parts =
              if dist_rows l + dist_rows r < par_threshold then
                Array.init t.machines join_m
              else Sutil.Pool.parallel_init pool t.machines join_m
            in
            Profile.note ~kernel:"join" ~stage:sid t0;
            { schema; parts }
        | _ -> invalid_arg "Engine: join expects two children")
    | Physop.P_union_all -> (
        match n.Plan.children with
        | [ lc; rc ] ->
            let l = eval_child lc in
            let r = eval_child rc in
            {
              schema;
              parts =
                Array.init t.machines (fun m -> l.parts.(m) @ r.parts.(m));
            }
        | _ -> invalid_arg "Engine: union expects two children")
    | Physop.P_spool ->
        (* stage root: materialize once; consumers read through the
           scheduler cache and count spool_reads at their boundary *)
        tally.t_spool_exec <- tally.t_spool_exec + 1;
        eval_child (List.hd n.Plan.children)
    | Physop.P_output { file } ->
        if not is_sink then
          invalid_arg "Engine: OUTPUT outside the sink stage";
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let rows =
          List.concat (List.init t.machines (fun m -> part_rows d m))
        in
        t.outputs_rev <- (file, Table.make d.schema rows) :: t.outputs_rev;
        Profile.note ~kernel:"output" ~stage:sid t0;
        d
    | Physop.P_sequence ->
        List.iter (fun c -> ignore (eval_child c)) n.Plan.children;
        { schema = []; parts = empty_parts t }
    | Physop.P_exchange { cols } ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let r = exchange_on pool ~machines:t.machines tally d cols in
        Profile.note ~kernel:"exchange" ~stage:sid t0;
        r
    | Physop.P_merge_exchange { cols } ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let child_sort = (List.hd n.Plan.children).Plan.props.Props.sort in
        let ex = exchange_on pool ~machines:t.machines tally d cols in
        (* merge the sorted runs: re-sorting each partition is equivalent *)
        let keys = sort_keys ex.schema child_sort in
        let r =
          map_parts pool (sort_part t.batch_size ex.schema keys) ex ex.schema
        in
        Profile.note ~kernel:"exchange" ~stage:sid t0;
        r
    | Physop.P_gather ->
        let d = eval_child (List.hd n.Plan.children) in
        let t0 = Profile.now () in
        let all = List.concat (Array.to_list d.parts) in
        let child_sort = (List.hd n.Plan.children).Plan.props.Props.sort in
        let all =
          if Sortorder.is_empty child_sort then all
          else
            sort_part t.batch_size d.schema (sort_keys d.schema child_sort)
              all
        in
        let parts = empty_parts t in
        parts.(0) <- all;
        tally.t_shuffled <- tally.t_shuffled + part_live all;
        Profile.note ~kernel:"gather" ~stage:sid t0;
        { schema = d.schema; parts }
  in
  let d = eval st.Stage.root in
  (match !deps with
  | [] -> ()
  | _ -> invalid_arg "Engine: stage dependencies left unconsumed");
  (* per-stage batch accounting over the committed output *)
  Array.iter
    (List.iter (fun b ->
         tally.t_batches <- tally.t_batches + 1;
         Sobs.Hist.observe batch_rows_h (float_of_int (Batch.live b))))
    d.parts;
  d

let execute t (plan : Plan.t) : dist =
  let graph =
    Sobs.Trace.with_span ~pid:Sobs.Trace.pid_stage "build stage graph"
      (fun () -> Stage.build plan)
  in
  let faults =
    Option.map (fun s -> Faults.create ~machines:t.machines s) t.faults
  in
  let max_attempts =
    match t.faults with
    | Some s -> s.Faults.max_attempts
    | None -> Faults.default_attempts
  in
  (* one violation slot per stage: each execution appends only to its own
     stage's slot, flattened in stage-id order below — a deterministic
     report at every worker count *)
  let viol_slots = Array.make (Stage.size graph) [] in
  let t0 = Unix.gettimeofday () in
  if Sobs.Trace.enabled () then
    Sobs.Trace.begin_span ~pid:Sobs.Trace.pid_exec
      ~args:
        [
          ("stages", Sobs.Trace.Int (Stage.size graph));
          ("workers", Sobs.Trace.Int t.workers);
          ("batch_size", Sobs.Trace.Int t.batch_size);
        ]
      "run stages";
  let outcome =
    Sutil.Pool.with_pool ~workers:t.workers (fun pool ->
        let outcome =
          Scheduler.run ~machines:t.machines ~pool ?faults ~max_attempts
            ~execute:(fun st ~read ->
              let tally = fresh_tally () in
              let viols = ref [] in
              let d =
                execute_stage t ~pool ~tally ~viols
                  ~is_sink:(st.Stage.id = graph.Stage.sink)
                  st ~read
              in
              let sid = st.Stage.id in
              viol_slots.(sid) <- viol_slots.(sid) @ List.rev !viols;
              merge_tally t tally;
              d)
            ~rows:dist_rows graph
        in
        t.last_busy <- Sutil.Pool.busy_seconds pool;
        outcome)
  in
  if Sobs.Trace.enabled () then
    Sobs.Trace.end_span ~pid:Sobs.Trace.pid_exec "run stages";
  t.last_wall <- Unix.gettimeofday () -. t0;
  t.prop_violations <-
    t.prop_violations
    @ List.concat (Array.to_list viol_slots);
  let m = outcome.Scheduler.metrics in
  let c = t.counters in
  c.stages_run <- c.stages_run + m.Scheduler.stages_run;
  c.vertices_run <- c.vertices_run + m.Scheduler.vertices_run;
  c.retries <- c.retries + m.Scheduler.retries;
  c.recomputed_rows <- c.recomputed_rows + m.Scheduler.recomputed_rows;
  c.partitions_lost <- c.partitions_lost + m.Scheduler.partitions_lost;
  c.machines_failed <- c.machines_failed + m.Scheduler.machines_failed;
  Sutil.Counters.bump c_stages m.Scheduler.stages_run;
  Sutil.Counters.bump c_vertices m.Scheduler.vertices_run;
  Sutil.Counters.bump c_retries m.Scheduler.retries;
  Sutil.Counters.bump c_recomputed m.Scheduler.recomputed_rows;
  Sutil.Counters.bump c_partitions_lost m.Scheduler.partitions_lost;
  Sutil.Counters.bump c_machines_failed m.Scheduler.machines_failed;
  Sutil.Counters.bump c_wall_us
    (int_of_float (t.last_wall *. 1_000_000.0));
  t.last_attempts <- outcome.Scheduler.attempts;
  t.last_seconds <- outcome.Scheduler.seconds;
  outcome.Scheduler.result

(* Run a root plan; returns the outputs in OUTPUT order.  Every per-run
   accumulator is reset first, so a reused engine starts clean: no stale
   outputs or violations, counters covering exactly this run. *)
let run t (plan : Plan.t) : (string * Table.t) list =
  t.outputs_rev <- [];
  t.prop_violations <- [];
  t.last_attempts <- [||];
  t.last_seconds <- [||];
  t.last_wall <- 0.0;
  t.last_busy <- [||];
  let c = t.counters in
  c.rows_shuffled <- 0;
  c.rows_extracted <- 0;
  c.spool_executions <- 0;
  c.spool_reads <- 0;
  c.batches <- 0;
  c.stages_run <- 0;
  c.vertices_run <- 0;
  c.retries <- 0;
  c.recomputed_rows <- 0;
  c.partitions_lost <- 0;
  c.machines_failed <- 0;
  ignore (execute t plan);
  List.rev t.outputs_rev
