open Relalg
open Sphys

(* Simulated distributed execution of physical plans, staged.

   A stream is an array of per-machine row lists.  Exchanges move rows
   between machines using a *commutative* per-row hash over the partition
   columns, so two inputs partitioned on column sets linked by join
   equalities are co-located (the property the optimizer's co-partitioning
   rules rely on).

   Execution is staged, SCOPE/Dryad style: [Stage.build] cuts the plan at
   exchange / merge-exchange / gather / spool boundaries, and [Scheduler]
   runs the stages bottom-up, caching each stage's output for its
   consumers.  With fault injection enabled ([Faults]), cached partitions
   can be lost between stages and are recovered by recomputing the
   producing stage.  Counters record rows shuffled and extracted, spool
   executions and reads, and the scheduler's stage / retry accounting;
   [Validate] compares every output against the reference evaluator. *)

type dist = { schema : Schema.t; parts : Value.t array list array }

type counters = {
  mutable rows_shuffled : int;
  mutable rows_extracted : int;
  mutable spool_executions : int;
  mutable spool_reads : int;
  mutable stages_run : int;
  mutable vertices_run : int;
  mutable retries : int;
  mutable recomputed_rows : int;
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

type t = {
  machines : int;
  catalog : Catalog.t;
  datagen : Datagen.config;
  (* when set, every run draws deterministic fault events from this spec *)
  faults : Faults.spec option;
  counters : counters;
  mutable outputs_rev : (string * Table.t) list;
  (* when set, every operator's *claimed* delivered properties are checked
     against the rows it actually produced *)
  verify_props : bool;
  mutable prop_violations : string list;
  (* per-stage execution counts of the most recent [execute] *)
  mutable last_attempts : int array;
}

let c_stages = Sutil.Counters.counter "exec.stages_run"
let c_vertices = Sutil.Counters.counter "exec.vertices_run"
let c_retries = Sutil.Counters.counter "exec.retries"
let c_recomputed = Sutil.Counters.counter "exec.recomputed_rows"
let c_partitions_lost = Sutil.Counters.counter "exec.partitions_lost"
let c_machines_failed = Sutil.Counters.counter "exec.machines_failed"

let create ?(datagen = Datagen.default) ?(verify_props = false) ?faults
    ~machines catalog =
  {
    machines;
    catalog;
    datagen;
    faults;
    counters =
      {
        rows_shuffled = 0;
        rows_extracted = 0;
        spool_executions = 0;
        spool_reads = 0;
        stages_run = 0;
        vertices_run = 0;
        retries = 0;
        recomputed_rows = 0;
        partitions_lost = 0;
        machines_failed = 0;
      };
    outputs_rev = [];
    verify_props;
    prop_violations = [];
    last_attempts = [||];
  }

let empty_parts t = Array.make t.machines []

(* Commutative hash of the values of [cols]: the sum of per-value hashes,
   so the machine assignment does not depend on column order. *)
let route t (schema : Schema.t) (cols : Colset.t) (row : Value.t array) =
  let idxs = List.map (fun c -> Schema.index c schema) (Colset.to_list cols) in
  let h = List.fold_left (fun acc i -> acc + Value.hash row.(i)) 17 idxs in
  (h land max_int) mod t.machines

let map_parts f (d : dist) schema' =
  { schema = schema'; parts = Array.map f d.parts }

let sort_rows (schema : Schema.t) (order : Sortorder.t) rows =
  let idxs =
    List.map (fun (c, dir) -> (Schema.index c schema, dir)) order
  in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, dir) :: rest ->
          let c = Value.compare a.(i) b.(i) in
          let c = match dir with Sortorder.Asc -> c | Sortorder.Desc -> -c in
          if c <> 0 then c else go rest
    in
    go idxs
  in
  List.stable_sort cmp rows

(* Streaming aggregation over rows whose groups are contiguous. *)
let stream_agg (schema : Schema.t) ~keys ~(aggs : Agg.t list) rows =
  let key_idx = List.map (fun k -> Schema.index k schema) keys in
  let key_of row = List.map (fun i -> row.(i)) key_idx in
  let out = ref [] in
  let flush key states =
    out := Array.of_list (key @ List.map2 Agg.finish aggs states) :: !out
  in
  let current = ref None in
  List.iter
    (fun row ->
      let k = key_of row in
      (match !current with
      | Some (k0, states) when List.equal Value.equal k0 k ->
          List.iter2 (fun a st -> Agg.step a st schema row) aggs states
      | Some (k0, states) ->
          flush k0 states;
          let states = List.map (fun _ -> Agg.init ()) aggs in
          List.iter2 (fun a st -> Agg.step a st schema row) aggs states;
          current := Some (k, states)
      | None ->
          let states = List.map (fun _ -> Agg.init ()) aggs in
          List.iter2 (fun a st -> Agg.step a st schema row) aggs states;
          current := Some (k, states)))
    rows;
  (match !current with Some (k0, states) -> flush k0 states | None -> ());
  List.rev !out

let exchange t (d : dist) cols =
  let parts = empty_parts t in
  Array.iter
    (fun rows ->
      List.iter
        (fun row ->
          let m = route t d.schema cols row in
          t.counters.rows_shuffled <- t.counters.rows_shuffled + 1;
          parts.(m) <- row :: parts.(m))
        rows)
    d.parts;
  (* restore arrival order per machine *)
  { schema = d.schema; parts = Array.map List.rev parts }

let pred_of_pairs pairs residual =
  let eqs =
    List.map (fun (a, b) -> Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)) pairs
  in
  let conj =
    match eqs @ Option.to_list residual with
    | [] -> Expr.Lit (Value.Int 1)
    | e :: rest -> List.fold_left (fun acc x -> Expr.And (acc, x)) e rest
  in
  conj

(* Check that the delivered properties recorded on a plan node hold on the
   rows it actually produced: a [Serial] stream occupies one machine, a
   [Hashed s] stream co-locates every s-tuple, and each partition is sorted
   per the claimed order.  A claimed partition or sort column that the
   delivered schema does not even contain is itself a violation. *)
let check_delivered t (n : Plan.t) (d : dist) =
  let violation fmt =
    Fmt.kstr (fun m -> t.prop_violations <- m :: t.prop_violations) fmt
  in
  let where = Physop.to_string n.Plan.op in
  (match n.Plan.props.Props.part with
  | Partition.Roundrobin -> ()
  | Partition.Serial ->
      let occupied =
        Array.fold_left (fun acc p -> if p = [] then acc else acc + 1) 0 d.parts
      in
      if occupied > 1 then
        violation "%s: claims serial but occupies %d machines" where occupied
  | Partition.Hashed s ->
      let idxs =
        List.filter_map (fun c -> Schema.index_opt c d.schema) (Colset.to_list s)
      in
      if List.length idxs <> Colset.cardinal s then
        violation "%s: claims hash%s but the delivered schema lacks %d of its columns"
          where (Colset.to_string s)
          (Colset.cardinal s - List.length idxs)
      else begin
        let homes = Hashtbl.create 64 in
        Array.iteri
          (fun m part ->
            List.iter
              (fun row ->
                let key = List.map (fun i -> row.(i)) idxs in
                match Hashtbl.find_opt homes key with
                | Some m0 when m0 <> m ->
                    violation
                      "%s: claims hash%s but a %s group spans machines %d and %d"
                      where (Colset.to_string s) (Colset.to_string s) m0 m
                | Some _ -> ()
                | None -> Hashtbl.add homes key m)
              part)
          d.parts
      end);
  (match n.Plan.props.Props.sort with
  | [] -> ()
  | order ->
      let idxs =
        List.filter_map
          (fun (c, dir) ->
            Option.map (fun i -> (i, dir)) (Schema.index_opt c d.schema))
          order
      in
      if List.length idxs <> List.length order then
        violation "%s: claims sort %s but the delivered schema lacks %d of its columns"
          where (Sortorder.to_string order)
          (List.length order - List.length idxs)
      else
        let cmp a b =
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = Value.compare a.(i) b.(i) in
                let c = match dir with Sortorder.Asc -> c | Sortorder.Desc -> -c in
                if c <> 0 then c else go rest
          in
          go idxs
        in
        Array.iteri
          (fun m part ->
            let rec sorted = function
              | a :: (b :: _ as rest) -> cmp a b <= 0 && sorted rest
              | _ -> true
            in
            if not (sorted part) then
              violation "%s: claims sort %s but machine %d is out of order"
                where (Sortorder.to_string order) m)
          d.parts)

(* Evaluate one stage's interior.  Boundary children are consumed from the
   stage's dependency list in left-to-right depth-first order — the order
   [Stage.build] recorded them — reading the producing stage's cached
   output through [read].  Physical identity is asserted at every
   consumption, so a compiler/evaluator walk divergence fails fast instead
   of silently wiring a stage to the wrong input.  Boundary operators
   appear in [eval_op] only as stage roots. *)
let execute_stage t ~is_sink (st : Stage.stage) ~read : dist =
  let deps = ref st.Stage.deps in
  let rec eval (n : Plan.t) : dist =
    let d = eval_op n in
    if t.verify_props then check_delivered t n d;
    d
  and eval_child (c : Plan.t) : dist =
    if Stage.boundary c then
      match !deps with
      | (b, sid) :: rest when b == c ->
          deps := rest;
          (match c.Plan.op with
          | Physop.P_spool ->
              t.counters.spool_reads <- t.counters.spool_reads + 1
          | _ -> ());
          read sid
      | _ -> invalid_arg "Engine: stage dependency consumed out of order"
    else eval c
  and eval_op (n : Plan.t) : dist =
    let schema = n.Plan.schema in
    match n.Plan.op with
    | Physop.P_extract { file; schema = fschema; _ } ->
        let table =
          Datagen.table ~config:t.datagen t.catalog ~file ~schema:fschema
        in
        t.counters.rows_extracted <-
          t.counters.rows_extracted + Table.cardinality table;
        let parts = empty_parts t in
        List.iteri
          (fun i row ->
            let m = i mod t.machines in
            parts.(m) <- row :: parts.(m))
          table.Table.rows;
        { schema = fschema; parts = Array.map List.rev parts }
    | Physop.P_filter { pred } ->
        let d = eval_child (List.hd n.Plan.children) in
        map_parts
          (List.filter (fun row -> Expr.eval_pred d.schema row pred))
          d schema
    | Physop.P_project { items } ->
        let d = eval_child (List.hd n.Plan.children) in
        map_parts
          (List.map (fun row ->
               Array.of_list
                 (List.map (fun (e, _) -> Expr.eval d.schema row e) items)))
          d schema
    | Physop.P_sort { order } ->
        let d = eval_child (List.hd n.Plan.children) in
        map_parts (sort_rows d.schema order) d schema
    | Physop.P_stream_agg { keys; aggs; scope = _ } ->
        let d = eval_child (List.hd n.Plan.children) in
        map_parts (stream_agg d.schema ~keys ~aggs) d schema
    | Physop.P_hash_agg { keys; aggs; scope = _ } ->
        let d = eval_child (List.hd n.Plan.children) in
        map_parts
          (fun rows ->
            (Table.group_by (Table.make d.schema rows) ~keys ~aggs).Table.rows)
          d schema
    | Physop.P_merge_join { kind; pairs; residual }
    | Physop.P_hash_join { kind; pairs; residual } -> (
        match n.Plan.children with
        | [ lc; rc ] ->
            (* left before right: the dependency cursor order is the
               compiler's left-to-right walk *)
            let l = eval_child lc in
            let r = eval_child rc in
            let pred = pred_of_pairs pairs residual in
            let parts = empty_parts t in
            for m = 0 to t.machines - 1 do
              let joined =
                Table.join ~kind:
                  (match kind with
                  | Slogical.Logop.Inner -> `Inner
                  | Slogical.Logop.Left_outer -> `Left_outer)
                  (Table.make l.schema l.parts.(m))
                  (Table.make r.schema r.parts.(m))
                  pred
              in
              parts.(m) <- joined.Table.rows
            done;
            { schema; parts }
        | _ -> invalid_arg "Engine: join expects two children")
    | Physop.P_union_all -> (
        match n.Plan.children with
        | [ lc; rc ] ->
            let l = eval_child lc in
            let r = eval_child rc in
            {
              schema;
              parts =
                Array.init t.machines (fun m -> l.parts.(m) @ r.parts.(m));
            }
        | _ -> invalid_arg "Engine: union expects two children")
    | Physop.P_spool ->
        (* stage root: materialize once; consumers read through the
           scheduler cache and count spool_reads at their boundary *)
        t.counters.spool_executions <- t.counters.spool_executions + 1;
        eval_child (List.hd n.Plan.children)
    | Physop.P_output { file } ->
        if not is_sink then
          invalid_arg "Engine: OUTPUT outside the sink stage";
        let d = eval_child (List.hd n.Plan.children) in
        let rows = Array.to_list d.parts |> List.concat in
        t.outputs_rev <- (file, Table.make d.schema rows) :: t.outputs_rev;
        d
    | Physop.P_sequence ->
        List.iter (fun c -> ignore (eval_child c)) n.Plan.children;
        { schema = []; parts = empty_parts t }
    | Physop.P_exchange { cols } ->
        let d = eval_child (List.hd n.Plan.children) in
        exchange t d cols
    | Physop.P_merge_exchange { cols } ->
        let d = eval_child (List.hd n.Plan.children) in
        let child_sort = (List.hd n.Plan.children).Plan.props.Props.sort in
        let ex = exchange t d cols in
        (* merge the sorted runs: re-sorting each partition is equivalent *)
        map_parts (sort_rows ex.schema child_sort) ex ex.schema
    | Physop.P_gather ->
        let d = eval_child (List.hd n.Plan.children) in
        let all = Array.to_list d.parts |> List.concat in
        let child_sort = (List.hd n.Plan.children).Plan.props.Props.sort in
        let all =
          if Sortorder.is_empty child_sort then all
          else sort_rows d.schema child_sort all
        in
        let parts = empty_parts t in
        parts.(0) <- all;
        t.counters.rows_shuffled <- t.counters.rows_shuffled + List.length all;
        { schema = d.schema; parts }
  in
  let d = eval st.Stage.root in
  (match !deps with
  | [] -> ()
  | _ -> invalid_arg "Engine: stage dependencies left unconsumed");
  d

let dist_rows (d : dist) =
  Array.fold_left (fun acc p -> acc + List.length p) 0 d.parts

let execute t (plan : Plan.t) : dist =
  let graph = Stage.build plan in
  let faults =
    Option.map (fun s -> Faults.create ~machines:t.machines s) t.faults
  in
  let max_attempts =
    match t.faults with
    | Some s -> s.Faults.max_attempts
    | None -> Faults.default_attempts
  in
  let outcome =
    Scheduler.run ~machines:t.machines ?faults ~max_attempts
      ~execute:(fun st ~read ->
        execute_stage t ~is_sink:(st.Stage.id = graph.Stage.sink) st ~read)
      ~rows:dist_rows graph
  in
  let m = outcome.Scheduler.metrics in
  let c = t.counters in
  c.stages_run <- c.stages_run + m.Scheduler.stages_run;
  c.vertices_run <- c.vertices_run + m.Scheduler.vertices_run;
  c.retries <- c.retries + m.Scheduler.retries;
  c.recomputed_rows <- c.recomputed_rows + m.Scheduler.recomputed_rows;
  c.partitions_lost <- c.partitions_lost + m.Scheduler.partitions_lost;
  c.machines_failed <- c.machines_failed + m.Scheduler.machines_failed;
  c_stages := !c_stages + m.Scheduler.stages_run;
  c_vertices := !c_vertices + m.Scheduler.vertices_run;
  c_retries := !c_retries + m.Scheduler.retries;
  c_recomputed := !c_recomputed + m.Scheduler.recomputed_rows;
  c_partitions_lost := !c_partitions_lost + m.Scheduler.partitions_lost;
  c_machines_failed := !c_machines_failed + m.Scheduler.machines_failed;
  t.last_attempts <- outcome.Scheduler.attempts;
  outcome.Scheduler.result

(* Run a root plan; returns the outputs in OUTPUT order.  Every per-run
   accumulator is reset first, so a reused engine starts clean: no stale
   outputs or violations, counters covering exactly this run. *)
let run t (plan : Plan.t) : (string * Table.t) list =
  t.outputs_rev <- [];
  t.prop_violations <- [];
  t.last_attempts <- [||];
  let c = t.counters in
  c.rows_shuffled <- 0;
  c.rows_extracted <- 0;
  c.spool_executions <- 0;
  c.spool_reads <- 0;
  c.stages_run <- 0;
  c.vertices_run <- 0;
  c.retries <- 0;
  c.recomputed_rows <- 0;
  c.partitions_lost <- 0;
  c.machines_failed <- 0;
  ignore (execute t plan);
  List.rev t.outputs_rev
