(** Per-kernel batch-time profiling for the vectorized executor.

    Disabled by default; every disabled entry point is one atomic load
    and a branch — no allocation, no clock read — so the hooks stay in
    the executor's kernel branches at zero production cost.  Enabled
    ([--profile-kernels]), each kernel execution lands its wall seconds
    in an [exec.kernel_seconds] histogram labeled [kernel] and [stage]
    in a process-global {!Sobs.Metrics} registry.  Profiling never
    changes outputs or counters. *)

val enabled : unit -> bool

val set : bool -> unit

(** Timestamp for a kernel about to run; [0.0] (no clock read, no
    allocation) when disabled. *)
val now : unit -> float

(** Record wall seconds since [t0] for one kernel execution of a stage.
    No-op when disabled. *)
val note : kernel:string -> stage:int -> float -> unit

(** The profiling registry's rows (empty until enabled and exercised). *)
val snapshot : unit -> Sobs.Metrics.row list

val reset : unit -> unit
