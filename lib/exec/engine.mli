(** Simulated distributed execution of physical plans, staged and
    domain-parallel.

    A stream is an array of per-machine row lists. Exchanges move rows with
    a commutative per-row hash over the partition columns, so inputs
    partitioned on equality-linked column sets are co-located.

    Execution is staged, SCOPE/Dryad style: {!Stage.build} cuts the plan
    at exchange / merge-exchange / gather / spool boundaries and
    {!Scheduler.run} executes the stages bottom-up in deterministic
    waves, caching each stage's output for its consumers — a spooled
    subexpression runs once however many consumers read it. With
    [workers > 1], independent stages of a wave and the per-machine
    vertex loops inside each stage fan out across a fixed pool of OCaml 5
    domains; outputs and all fault/retry accounting are byte-identical at
    every worker count. With a fault {!Faults.spec} installed, cached
    partitions can be lost between stages and are recovered by
    recomputing the producing stage. Counters record rows
    shuffled/extracted, spool executions/reads, and stage/retry
    accounting (also surfaced as the global [exec.*] counters in
    [Sutil.Counters]). *)

type dist = {
  schema : Relalg.Schema.t;
  parts : Relalg.Value.t array list array;
}

type counters = {
  mutable rows_shuffled : int;
  mutable rows_extracted : int;
  mutable spool_executions : int;
  mutable spool_reads : int;
  mutable stages_run : int;  (** stage executions, recoveries included *)
  mutable vertices_run : int;  (** one vertex per machine per execution *)
  mutable retries : int;  (** recovery re-executions of completed stages *)
  mutable recomputed_rows : int;  (** rows produced by those re-executions *)
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

type t = {
  machines : int;
  workers : int;  (** domain-pool width; 1 = fully sequential *)
  catalog : Relalg.Catalog.t;
  datagen : Datagen.config;
  faults : Faults.spec option;
      (** when set, every run draws deterministic fault events *)
  counters : counters;
  mu : Mutex.t;  (** guards [counters] merges from worker domains *)
  mutable outputs_rev : (string * Relalg.Table.t) list;
      (** OUTPUT tables in reverse script order; [run] returns them
          reversed *)
  verify_props : bool;
      (** when set, every operator's claimed delivered properties are
          checked against the rows it actually produced *)
  mutable prop_violations : string list;
      (** flattened in stage-id order — deterministic at every worker
          count *)
  mutable last_attempts : int array;
      (** per-stage execution counts of the most recent [execute] *)
  mutable last_seconds : float array;
      (** per-stage wall seconds of the most recent [execute] *)
  mutable last_wall : float;
      (** execution wall seconds of the most recent [execute] *)
  mutable last_busy : float array;
      (** per-worker busy seconds of the most recent [execute] *)
}

val create :
  ?datagen:Datagen.config ->
  ?verify_props:bool ->
  ?faults:Faults.spec ->
  ?workers:int ->
  machines:int ->
  Relalg.Catalog.t ->
  t

(** Hash-repartition a stream on a column set (counts shuffled rows).
    Sequential convenience entry point for tests and examples. *)
val exchange : t -> dist -> Relalg.Colset.t -> dist

(** Streaming aggregation over rows whose groups are contiguous. *)
val stream_agg :
  Relalg.Schema.t ->
  keys:string list ->
  aggs:Relalg.Agg.t list ->
  Relalg.Value.t array list ->
  Relalg.Value.t array list

(** Compile the plan to a stage graph and execute it, returning the sink
    stage's output stream. Counters accumulate across calls; outputs
    append. Raises {!Scheduler.Recovery_exhausted} when fault injection
    exceeds a stage's attempt budget. *)
val execute : t -> Sphys.Plan.t -> dist

(** Execute a root plan; returns the OUTPUT files in script order.
    Resets outputs, property violations and counters first, so a reused
    engine reports exactly this run. *)
val run : t -> Sphys.Plan.t -> (string * Relalg.Table.t) list
