(** Simulated distributed execution of physical plans, staged,
    domain-parallel and vectorized.

    A stream is an array of per-machine {!Batch.t} lists — columnar
    batches (one value array per column plus a selection vector) consumed
    and produced whole.  Filters narrow selection vectors, projections
    map columns, exchanges hash-route batch slices per destination
    machine with a commutative per-row hash (inputs partitioned on
    equality-linked column sets are co-located), and sort/aggregate
    kernels run over whole column arrays with contiguous-group streaming
    preserved across batch boundaries.

    Execution is staged, SCOPE/Dryad style: {!Stage.build} cuts the plan
    at exchange / merge-exchange / gather / spool boundaries and
    {!Scheduler.run} executes the stages bottom-up in deterministic
    waves, caching each stage's output — in batch form — for its
    consumers; a spooled subexpression runs once however many consumers
    read it.  With [workers > 1], independent stages of a wave fan out
    across a fixed pool of OCaml 5 domains (per-machine vertex loops join
    them only when the stage moves enough rows to amortize dispatch);
    outputs and all fault/retry accounting are byte-identical at every
    worker count {e and} every batch size.  With a fault {!Faults.spec}
    installed, cached partitions can be lost between stages and are
    recovered by recomputing the producing stage.  Counters record rows
    shuffled/extracted, spool executions/reads, batches produced, and
    stage/retry accounting (also surfaced as the global [exec.*] counters
    in [Sutil.Counters], with a rows-per-batch histogram in
    [Sobs.Hist]). *)

type dist = { schema : Relalg.Schema.t; parts : Batch.t list array }

type counters = {
  mutable rows_shuffled : int;
  mutable rows_extracted : int;
  mutable spool_executions : int;
  mutable spool_reads : int;
  mutable batches : int;  (** batches across committed stage outputs *)
  mutable stages_run : int;  (** stage executions, recoveries included *)
  mutable vertices_run : int;  (** one vertex per machine per execution *)
  mutable retries : int;  (** recovery re-executions of completed stages *)
  mutable recomputed_rows : int;  (** rows produced by those re-executions *)
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

type t = {
  machines : int;
  workers : int;  (** domain-pool width; 1 = fully sequential *)
  batch_size : int;  (** max rows per produced batch *)
  catalog : Relalg.Catalog.t;
  datagen : Datagen.config;
  faults : Faults.spec option;
      (** when set, every run draws deterministic fault events *)
  counters : counters;
  mu : Mutex.t;  (** guards [counters] merges from worker domains *)
  extract_mu : Mutex.t;  (** guards [extract_cache] *)
  extract_cache :
    (int * string * Relalg.Schema.t, int * Batch.t list array) Hashtbl.t;
      (** extract batches per (catalog version, file, schema): [Datagen]
          is deterministic, so serving the cache is indistinguishable
          from re-extracting; [rows_extracted] still counts every
          extract execution *)
  mutable outputs_rev : (string * Relalg.Table.t) list;
      (** OUTPUT tables in reverse script order; [run] returns them
          reversed *)
  verify_props : bool;
      (** when set, every operator's claimed delivered properties are
          checked against the rows it actually produced *)
  mutable prop_violations : string list;
      (** flattened in stage-id order — deterministic at every worker
          count *)
  mutable last_attempts : int array;
      (** per-stage execution counts of the most recent [execute] *)
  mutable last_seconds : float array;
      (** per-stage wall seconds of the most recent [execute] *)
  mutable last_wall : float;
      (** execution wall seconds of the most recent [execute] *)
  mutable last_busy : float array;
      (** per-worker busy seconds of the most recent [execute] *)
}

val default_batch_size : int

(** [workers] is capped at the host's hardware parallelism — an
    oversubscribed pool only adds scheduling latency — unless
    [oversubscribe] is set (the determinism tests use it to force true
    multi-domain runs on any host).  Results are byte-identical at every
    worker count either way. *)
val create :
  ?datagen:Datagen.config ->
  ?verify_props:bool ->
  ?faults:Faults.spec ->
  ?oversubscribe:bool ->
  ?workers:int ->
  ?batch_size:int ->
  machines:int ->
  Relalg.Catalog.t ->
  t

(** Total live rows of a stream. *)
val dist_rows : dist -> int

(** Total batches of a stream. *)
val dist_batches : dist -> int

(** Row view of one machine's partition, in live order. *)
val part_rows : dist -> int -> Relalg.Value.t array list

(** Build a stream from per-machine row lists (tests, examples): each
    non-empty partition becomes one batch. *)
val dist_of_parts : Relalg.Schema.t -> Relalg.Value.t array list array -> dist

(** Hash-repartition a stream on a column set (counts shuffled rows).
    Sequential convenience entry point for tests and examples. *)
val exchange : t -> dist -> Relalg.Colset.t -> dist

(** Streaming aggregation over rows whose groups are contiguous —
    row-level convenience wrapper around the batch kernel. *)
val stream_agg :
  Relalg.Schema.t ->
  keys:string list ->
  aggs:Relalg.Agg.t list ->
  Relalg.Value.t array list ->
  Relalg.Value.t array list

(** Compile the plan to a stage graph and execute it, returning the sink
    stage's output stream. Counters accumulate across calls; outputs
    append. Raises {!Scheduler.Recovery_exhausted} when fault injection
    exceeds a stage's attempt budget. *)
val execute : t -> Sphys.Plan.t -> dist

(** Execute a root plan; returns the OUTPUT files in script order.
    Resets outputs, property violations and counters first, so a reused
    engine reports exactly this run. *)
val run : t -> Sphys.Plan.t -> (string * Relalg.Table.t) list
