(** Simulated distributed execution of physical plans, staged.

    A stream is an array of per-machine row lists. Exchanges move rows with
    a commutative per-row hash over the partition columns, so inputs
    partitioned on equality-linked column sets are co-located.

    Execution is staged, SCOPE/Dryad style: {!Stage.build} cuts the plan
    at exchange / merge-exchange / gather / spool boundaries and
    {!Scheduler.run} executes the stages bottom-up, caching each stage's
    output for its consumers — a spooled subexpression runs once however
    many consumers read it. With a fault {!Faults.spec} installed, cached
    partitions can be lost between stages and are recovered by
    recomputing the producing stage. Counters record rows
    shuffled/extracted, spool executions/reads, and stage/retry
    accounting (also surfaced as the global [exec.*] counters in
    [Sutil.Counters]). *)

type dist = {
  schema : Relalg.Schema.t;
  parts : Relalg.Value.t array list array;
}

type counters = {
  mutable rows_shuffled : int;
  mutable rows_extracted : int;
  mutable spool_executions : int;
  mutable spool_reads : int;
  mutable stages_run : int;  (** stage executions, recoveries included *)
  mutable vertices_run : int;  (** one vertex per machine per execution *)
  mutable retries : int;  (** recovery re-executions of completed stages *)
  mutable recomputed_rows : int;  (** rows produced by those re-executions *)
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

type t = {
  machines : int;
  catalog : Relalg.Catalog.t;
  datagen : Datagen.config;
  faults : Faults.spec option;
      (** when set, every run draws deterministic fault events *)
  counters : counters;
  mutable outputs_rev : (string * Relalg.Table.t) list;
      (** OUTPUT tables in reverse script order; [run] returns them
          reversed *)
  verify_props : bool;
      (** when set, every operator's claimed delivered properties are
          checked against the rows it actually produced *)
  mutable prop_violations : string list;
  mutable last_attempts : int array;
      (** per-stage execution counts of the most recent [execute] *)
}

val create :
  ?datagen:Datagen.config ->
  ?verify_props:bool ->
  ?faults:Faults.spec ->
  machines:int ->
  Relalg.Catalog.t ->
  t

(** Hash-repartition a stream on a column set (counts shuffled rows). *)
val exchange : t -> dist -> Relalg.Colset.t -> dist

(** Streaming aggregation over rows whose groups are contiguous. *)
val stream_agg :
  Relalg.Schema.t ->
  keys:string list ->
  aggs:Relalg.Agg.t list ->
  Relalg.Value.t array list ->
  Relalg.Value.t array list

(** Compile the plan to a stage graph and execute it, returning the sink
    stage's output stream. Counters accumulate across calls; outputs
    append. Raises {!Scheduler.Recovery_exhausted} when fault injection
    exceeds a stage's attempt budget. *)
val execute : t -> Sphys.Plan.t -> dist

(** Execute a root plan; returns the OUTPUT files in script order.
    Resets outputs, property violations and counters first, so a reused
    engine reports exactly this run. *)
val run : t -> Sphys.Plan.t -> (string * Relalg.Table.t) list
