(* Per-kernel batch-time profiling for the vectorized executor.

   Off by default: like [Sobs.Trace], every disabled entry point is one
   atomic load and a branch — no allocation, no clock read — so the
   hooks can live inside [Engine.execute_stage]'s kernel branches
   without costing production runs anything.  Enabled (--profile-
   kernels), each kernel execution records its wall seconds into an
   [exec.kernel_seconds] histogram labeled by kernel and stage in a
   process-global [Sobs.Metrics] registry.

   Timing wraps only the kernel work (after the operator's children
   have been evaluated), so a kernel's distribution is its own cost,
   not its subtree's.  Profiling never touches outputs or the exec.*
   counters: enabling it is observationally pure — the determinism
   matrix in test_exec runs one profiled column to prove it. *)

let flag = Atomic.make false
let enabled () = Atomic.get flag
let set on = Atomic.set flag on

(* Process-global, like the exec.* counters: kernel × stage is a small
   closed label set, and a per-engine registry would force every engine
   accessor through the hot path.  [reset] swaps in a fresh registry so
   a reset profile is indistinguishable from a never-enabled one
   (snapshot returns [], not zeroed series). *)
let registry = Atomic.make (Sobs.Metrics.create ())

(* Kernel timestamps: 0.0 (static, no allocation) when disabled. *)
let now () = if Atomic.get flag then Unix.gettimeofday () else 0.0

let note ~kernel ~stage t0 =
  if Atomic.get flag then
    Sobs.Metrics.observe (Atomic.get registry) "exec.kernel_seconds"
      ~labels:[ ("kernel", kernel); ("stage", string_of_int stage) ]
      (Unix.gettimeofday () -. t0)

let snapshot () = Sobs.Metrics.snapshot (Atomic.get registry)
let reset () = Atomic.set registry (Sobs.Metrics.create ())
