(** Cross-validation of physical plans against the reference evaluator. *)

type outcome = {
  ok : bool;
  mismatches : string list;
  counters : Engine.counters;
  outputs : (string * Relalg.Table.t) list;
      (** the engine's OUTPUT tables, in script order *)
  attempts : int array;  (** per-stage execution counts of the run *)
  seconds : float array;  (** per-stage wall seconds, attempts summed *)
  wall : float;  (** execution wall seconds *)
  busy : float array;  (** per-worker busy seconds *)
  batch_size : int;  (** the engine's batch granularity for the run *)
}

(** Byte-identical output comparison: same files in the same order, same
    rows in the same order.  Stricter than [Table.same_contents] — this is
    what fault-recovery determinism promises. *)
val identical_outputs :
  (string * Relalg.Table.t) list -> (string * Relalg.Table.t) list -> bool

(** Execute the plan on a simulated cluster and compare every OUTPUT file
    against the reference results of the logical DAG; outputs with an
    ORDER BY are checked to be globally sorted, and with [~verify_props]
    every operator's claimed delivered properties are checked against the
    rows it actually produced.  [?faults] injects deterministic faults
    during execution (the outputs must still validate); [?workers] sets
    the executor's domain-pool width and [?batch_size] its columnar batch
    granularity — the outcome is identical for every
    value, only wall time changes. *)
val check :
  ?datagen:Datagen.config ->
  ?verify_props:bool ->
  ?faults:Faults.spec ->
  ?oversubscribe:bool ->
  ?workers:int ->
  ?batch_size:int ->
  machines:int ->
  Relalg.Catalog.t ->
  Slogical.Dag.t ->
  Sphys.Plan.t ->
  outcome
