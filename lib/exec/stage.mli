(** Stage-graph compilation: a physical plan DAG cut at data-movement and
    materialization boundaries (exchange, merge-exchange, gather, spool),
    SCOPE/Dryad style.

    A stage is a maximal operator subtree executed as one unit; boundary
    children become dependency edges to the stage producing them.  Spool
    boundaries are deduplicated by physical identity (one stage however
    many consumers), every other boundary is instantiated per reference —
    tree-expansion semantics, matching how the engine accounts each
    consumer's copy in the conventional baseline. *)

type stage = {
  id : int;
  root : Sphys.Plan.t;
  deps : (Sphys.Plan.t * int) list;
      (** boundary children of the interior in left-to-right depth-first
          (evaluation) order, each with its producing stage id *)
  nodes : int;  (** interior size, the root included *)
}

type graph = {
  stages : stage array;
      (** indexed by id, topologically ordered: every dependency's id is
          smaller than its consumer's *)
  sink : int;  (** the plan root's stage; always the last *)
  shared_interior : Sphys.Plan.t list;
      (** non-boundary nodes reachable from more than one interior
          position; executed once per reference (tree semantics) *)
}

(** Is the node a stage boundary (exchange / merge-exchange / gather /
    spool)? *)
val boundary : Sphys.Plan.t -> bool

val build : Sphys.Plan.t -> graph

(** Number of stages. *)
val size : graph -> int

(** Topological level per stage: 0 for dependency-free stages, else one
    more than the deepest dependency.  Equal-depth stages can execute
    concurrently in a fault-free run. *)
val depths : graph -> int array

(** Largest number of stages sharing a depth level — the fault-free
    parallelism available to the wave scheduler. *)
val width : graph -> int

(** One-line stage description ("stage 3 [Repartition] (5 operators, 1
    input)"). *)
val describe : stage -> string

val pp : graph Fmt.t
