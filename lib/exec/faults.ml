(* Deterministic fault injection for the staged executor.

   Real clusters lose spooled partitions and whole machines; SCOPE-style
   systems recover by recomputing the producing vertex.  This module
   draws such events from a seeded deterministic stream ([Sutil.Rng]) so
   a faulty run is exactly reproducible: the same seed, rate and plan
   produce the same loss sequence, and tests can assert byte-identical
   outputs against the fault-free run.

   Events are drawn once per stage completion — the scheduler's only
   synchronization points — over the set of currently cached stage
   outputs.  A [Kill_machine m] event models a transient machine loss:
   partition [m] of every cached stage output disappears at once. *)

type spec = { seed : int; rate : float; max_attempts : int }

let default_attempts = 16

let spec ?(rate = 0.15) ?(max_attempts = default_attempts) seed =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Faults.spec: rate must be in [0, 1)";
  if max_attempts < 1 then invalid_arg "Faults.spec: max_attempts must be >= 1";
  { seed; rate; max_attempts }

type event =
  | Lose_partition of { stage : int; machine : int }
  | Kill_machine of int

type t = { rng : Sutil.Rng.t; rate : float; machines : int }

let create ~machines (s : spec) =
  { rng = Sutil.Rng.create s.seed; rate = s.rate; machines }

(* One Bernoulli(rate) trial per completion; a firing trial is a machine
   kill one time in four, a single-partition loss otherwise. *)
let draw t ~completed:_ ~cached =
  if cached = [] || t.rate <= 0.0 then []
  else if Sutil.Rng.float t.rng 1.0 >= t.rate then []
  else if Sutil.Rng.int t.rng 4 = 0 then
    [ Kill_machine (Sutil.Rng.int t.rng t.machines) ]
  else
    let stage = Sutil.Rng.pick_list t.rng cached in
    [ Lose_partition { stage; machine = Sutil.Rng.int t.rng t.machines } ]

let pp_event ppf = function
  | Lose_partition { stage; machine } ->
      Fmt.pf ppf "lost partition %d of stage %d" machine stage
  | Kill_machine m -> Fmt.pf ppf "machine %d failed" m
