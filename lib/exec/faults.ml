(* Deterministic, schedule-independent fault injection for the staged
   executor.

   Real clusters lose spooled partitions and whole machines; SCOPE-style
   systems recover by recomputing the producing vertex.  This module
   draws such events deterministically — but unlike a single seeded
   stream consumed in completion order, every draw is keyed on
   [(seed, stage id, attempt)]: the completion of attempt [k] of stage
   [s] always sees the same dice, no matter how many other stages
   completed before it or on which worker domain it ran.  That is the
   property the parallel scheduler's determinism contract rests on —
   retry and loss counters are identical at any worker count, because
   the fault sequence is a function of the (deterministic) set of
   executions, not of their (schedule-dependent) interleaving.

   Events are drawn once per stage completion — the scheduler's barrier
   points — over the set of stage outputs cached so far, passed as a
   prefix of an incrementally-maintained array (first-cached order,
   itself deterministic under the wave schedule).  A [Kill_machine m]
   event models a transient machine loss: partition [m] of every cached
   stage output disappears at once. *)

type spec = { seed : int; rate : float; max_attempts : int }

let default_attempts = 16

let spec ?(rate = 0.15) ?(max_attempts = default_attempts) seed =
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Faults.spec: rate must be in [0, 1)";
  if max_attempts < 1 then invalid_arg "Faults.spec: max_attempts must be >= 1";
  { seed; rate; max_attempts }

type event =
  | Lose_partition of { stage : int; machine : int }
  | Kill_machine of int

type t = { seed : int; rate : float; machines : int }

let create ~machines (s : spec) =
  { seed = s.seed; rate = s.rate; machines }

(* Fold (seed, stage, attempt) into one well-spread splitmix64 seed.
   Collisions only correlate two draws statistically; determinism and
   schedule-independence hold for any mixing function. *)
let key_seed t ~stage ~attempt =
  let h = (t.seed * 0x9E3779B9) lxor (stage * 0x85EBCA6B) in
  (h * 0xC2B2AE35) lxor attempt

(* One Bernoulli(rate) trial per completion; a firing trial is a machine
   kill one time in four, a single-partition loss otherwise. *)
let draw t ~stage ~attempt ~cached ~cached_count =
  if cached_count = 0 || t.rate <= 0.0 then []
  else
    let rng = Sutil.Rng.create (key_seed t ~stage ~attempt) in
    if Sutil.Rng.float rng 1.0 >= t.rate then []
    else if Sutil.Rng.int rng 4 = 0 then
      [ Kill_machine (Sutil.Rng.int rng t.machines) ]
    else
      let stage = cached.(Sutil.Rng.int rng cached_count) in
      [ Lose_partition { stage; machine = Sutil.Rng.int rng t.machines } ]

let pp_event ppf = function
  | Lose_partition { stage; machine } ->
      Fmt.pf ppf "lost partition %d of stage %d" machine stage
  | Kill_machine m -> Fmt.pf ppf "machine %d failed" m
