(** Deterministic fault injection for the staged executor.

    Seeded partition-loss and machine-failure events drawn between stage
    executions: the same seed, rate and plan reproduce the same loss
    sequence, so faulty runs can be asserted byte-identical to fault-free
    ones. *)

type spec = {
  seed : int;
  rate : float;  (** per-stage-completion event probability, in [0, 1) *)
  max_attempts : int;  (** per-stage execution budget (first run included) *)
}

val default_attempts : int

(** [spec seed] with the default rate (0.15) and attempt budget.
    Raises [Invalid_argument] on a rate outside [0, 1) or a non-positive
    budget. *)
val spec : ?rate:float -> ?max_attempts:int -> int -> spec

type event =
  | Lose_partition of { stage : int; machine : int }
      (** one cached partition of one stage output disappears *)
  | Kill_machine of int
      (** transient machine loss: that partition of every cached stage
          output disappears at once *)

type t

val create : machines:int -> spec -> t

(** Events fired by the completion of stage [completed]; [cached] is the
    set of stage ids with a cached output (the just-completed stage
    included).  Deterministic in the call sequence. *)
val draw : t -> completed:int -> cached:int list -> event list

val pp_event : event Fmt.t
