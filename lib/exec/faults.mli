(** Deterministic, schedule-independent fault injection for the staged
    executor.

    Partition-loss and machine-failure events are drawn at stage
    completions, with the dice for each draw keyed on
    [(seed, stage, attempt)] rather than consumed from one sequential
    stream.  The same seed, rate and plan therefore reproduce the same
    loss sequence at {e any} worker count: a draw depends on which
    execution completed, never on how completions interleaved across
    domains.  Faulty runs can be asserted byte-identical to fault-free
    ones, and parallel runs to sequential ones. *)

type spec = {
  seed : int;
  rate : float;  (** per-stage-completion event probability, in [0, 1) *)
  max_attempts : int;  (** per-stage execution budget (first run included) *)
}

val default_attempts : int

(** [spec seed] with the default rate (0.15) and attempt budget.
    Raises [Invalid_argument] on a rate outside [0, 1) or a non-positive
    budget. *)
val spec : ?rate:float -> ?max_attempts:int -> int -> spec

type event =
  | Lose_partition of { stage : int; machine : int }
      (** one cached partition of one stage output disappears *)
  | Kill_machine of int
      (** transient machine loss: that partition of every cached stage
          output disappears at once *)

type t

val create : machines:int -> spec -> t

(** [draw t ~stage ~attempt ~cached ~cached_count] is the events fired
    by the completion of attempt [attempt] of stage [stage].  The first
    [cached_count] entries of [cached] are the stage ids with a cached
    output (the just-completed stage included), in first-cached order.
    The result is a pure function of the arguments — independent of any
    previous draw. *)
val draw :
  t ->
  stage:int ->
  attempt:int ->
  cached:int array ->
  cached_count:int ->
  event list

val pp_event : event Fmt.t
