open Relalg

(* Cross-validation of physical plans against the reference evaluator. *)

type outcome = {
  ok : bool;
  mismatches : string list;
  counters : Engine.counters;
  outputs : (string * Table.t) list;
  attempts : int array;
  seconds : float array;
  wall : float;
  busy : float array;
  batch_size : int;
}

(* ORDER BY specifications per output file, from the logical DAG. *)
let output_orders (dag : Slogical.Dag.t) =
  let live = Slogical.Dag.reachable dag in
  Array.to_list dag.Slogical.Dag.nodes
  |> List.filter_map (fun (n : Slogical.Dag.node) ->
         if live.(n.Slogical.Dag.id) then
           match n.Slogical.Dag.op with
           | Slogical.Logop.Output { file; order } when order <> [] ->
               Some (file, order)
           | _ -> None
         else None)

let rows_sorted (schema : Schema.t) order rows =
  let idxs = List.map (fun (c, desc) -> (Schema.index c schema, desc)) order in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, desc) :: rest ->
          let c = Value.compare a.(i) b.(i) in
          let c = if desc then -c else c in
          if c <> 0 then c else go rest
    in
    go idxs
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> cmp a b <= 0 && sorted rest
    | _ -> true
  in
  sorted rows

(* Byte-identical output comparison: same files in the same order, same
   rows in the same order.  Stricter than [Table.same_contents] (a
   multiset check) — this is what fault-recovery determinism promises. *)
let identical_outputs (a : (string * Table.t) list)
    (b : (string * Table.t) list) =
  let row_eq ra rb =
    Array.length ra = Array.length rb
    && Array.for_all2 Value.equal ra rb
  in
  List.length a = List.length b
  && List.for_all2
       (fun (fa, (ta : Table.t)) (fb, (tb : Table.t)) ->
         String.equal fa fb && ta.Table.schema = tb.Table.schema
         && List.equal row_eq ta.Table.rows tb.Table.rows)
       a b

(* Execute [plan] on a simulated cluster and compare every OUTPUT file's
   contents against the reference results for [dag]; outputs with an
   ORDER BY are additionally checked to be globally sorted. *)
let check ?(datagen = Datagen.default) ?(verify_props = false) ?faults
    ?oversubscribe ?(workers = 1) ?batch_size ~machines (catalog : Catalog.t)
    (dag : Slogical.Dag.t) (plan : Sphys.Plan.t) : outcome =
  let expected = Reference.run ~datagen catalog dag in
  let engine =
    Engine.create ~datagen ~verify_props ?faults ?oversubscribe ~workers
      ?batch_size ~machines catalog
  in
  let actual = Engine.run engine plan in
  let mismatches = ref [] in
  List.iter
    (fun (file, order) ->
      match List.assoc_opt file actual with
      | Some table ->
          if not (rows_sorted table.Table.schema order table.Table.rows) then
            mismatches :=
              Printf.sprintf "output %s violates its ORDER BY" file
              :: !mismatches
      | None -> ())
    (output_orders dag);
  if List.length expected <> List.length actual then
    mismatches :=
      [
        Printf.sprintf "expected %d outputs, plan produced %d"
          (List.length expected) (List.length actual);
      ]
  else
    List.iter2
      (fun (file_e, table_e) (file_a, table_a) ->
        if file_e <> file_a then
          mismatches :=
            Printf.sprintf "output order differs: %s vs %s" file_e file_a
            :: !mismatches
        else if not (Table.same_contents table_e table_a) then
          mismatches :=
            Printf.sprintf
              "output %s differs: expected %d rows, got %d rows (or contents)"
              file_e
              (Table.cardinality table_e)
              (Table.cardinality table_a)
            :: !mismatches)
      expected actual;
  mismatches := engine.Engine.prop_violations @ !mismatches;
  {
    ok = !mismatches = [];
    mismatches = !mismatches;
    counters = engine.Engine.counters;
    outputs = actual;
    attempts = engine.Engine.last_attempts;
    seconds = engine.Engine.last_seconds;
    wall = engine.Engine.last_wall;
    busy = engine.Engine.last_busy;
    batch_size = engine.Engine.batch_size;
  }
