(* Stage scheduler with fault recovery.

   Runs a [Stage.graph] bottom-up: every stage executes once in
   topological order, its output cached for downstream consumers.  When
   fault injection is active, events drawn after each completion can mark
   cached partitions lost; before a stage executes, every lost input is
   *recovered* by recomputing the producing stage — from that stage's own
   cached inputs when they are intact, recursively from source otherwise —
   under a per-stage attempt budget.

   The scheduler is generic in the stage-output type: the engine supplies
   [execute] (evaluate one stage's interior, reading dependencies through
   the cache) and [rows] (output size, for recompute accounting).  Faults
   only strike between executions, so a stage's inputs cannot vanish
   mid-evaluation. *)

type metrics = {
  mutable stages_run : int;  (* stage executions, recoveries included *)
  mutable vertices_run : int;  (* one vertex per machine per execution *)
  mutable retries : int;  (* re-executions of a previously completed stage *)
  mutable recomputed_rows : int;  (* rows produced by those re-executions *)
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

let fresh_metrics () =
  {
    stages_run = 0;
    vertices_run = 0;
    retries = 0;
    recomputed_rows = 0;
    partitions_lost = 0;
    machines_failed = 0;
  }

exception Recovery_exhausted of { stage : int; attempts : int }

type 'o outcome = {
  result : 'o;  (* the sink stage's output *)
  attempts : int array;  (* per-stage execution counts *)
  metrics : metrics;
}

let run ~machines ?faults ?(max_attempts = Faults.default_attempts) ~execute
    ~rows (graph : Stage.graph) : 'o outcome =
  let n = Array.length graph.Stage.stages in
  let cache : 'o option array = Array.make n None in
  (* lost.(sid) is empty until a fault strikes sid's cached output *)
  let lost : bool array array = Array.make n [||] in
  let attempts = Array.make n 0 in
  let metrics = fresh_metrics () in
  let available sid =
    cache.(sid) <> None && Array.for_all not lost.(sid)
  in
  let mark_lost sid m =
    if cache.(sid) <> None then begin
      if lost.(sid) = [||] then lost.(sid) <- Array.make machines false;
      if not lost.(sid).(m) then begin
        lost.(sid).(m) <- true;
        metrics.partitions_lost <- metrics.partitions_lost + 1
      end
    end
  in
  let inject completed =
    match faults with
    | None -> ()
    | Some f ->
        let cached = ref [] in
        for sid = n - 1 downto 0 do
          if cache.(sid) <> None then cached := sid :: !cached
        done;
        List.iter
          (function
            | Faults.Lose_partition { stage; machine } ->
                mark_lost stage machine
            | Faults.Kill_machine m ->
                metrics.machines_failed <- metrics.machines_failed + 1;
                List.iter (fun sid -> mark_lost sid m) !cached)
          (Faults.draw f ~completed ~cached:!cached)
  in
  let rec run_stage sid =
    let st = graph.Stage.stages.(sid) in
    ensure st;
    let recovery = cache.(sid) <> None in
    attempts.(sid) <- attempts.(sid) + 1;
    if attempts.(sid) > max_attempts then
      raise (Recovery_exhausted { stage = sid; attempts = attempts.(sid) });
    metrics.stages_run <- metrics.stages_run + 1;
    metrics.vertices_run <- metrics.vertices_run + machines;
    let out =
      execute st ~read:(fun dep ->
          match cache.(dep) with
          | Some o -> o
          | None -> invalid_arg "Scheduler: dependency executed out of order")
    in
    cache.(sid) <- Some out;
    lost.(sid) <- [||];
    if recovery then begin
      metrics.retries <- metrics.retries + 1;
      metrics.recomputed_rows <- metrics.recomputed_rows + rows out
    end;
    inject sid
  (* loop until every input is available at once: recovering one stage
     fires completion events that may lose another *)
  and ensure (st : Stage.stage) =
    match
      List.find_opt (fun (_, dep) -> not (available dep)) st.Stage.deps
    with
    | None -> ()
    | Some (_, dep) ->
        run_stage dep;
        ensure st
  in
  Array.iter (fun (st : Stage.stage) -> run_stage st.Stage.id) graph.Stage.stages;
  let result =
    match cache.(graph.Stage.sink) with
    | Some o -> o
    | None -> invalid_arg "Scheduler: sink stage did not complete"
  in
  { result; attempts; metrics }
