(* Deterministic wave scheduler with fault recovery.

   Runs a [Stage.graph] bottom-up in *waves*.  Each round the scheduler
   derives, from nothing but the current cache/lost state, the set of
   stages that must (re-)execute:

     needed  = stages that never ran, closed under "a needed stage's
               dependency whose cached output has lost partitions must
               be recomputed first";
     wave    = needed stages whose dependencies are all intact.

   The wave executes with no internal ordering constraints — stages in a
   wave never depend on each other, so a worker pool may run them in any
   interleaving — and then a barrier commits the results in ascending
   stage id: cache the output, clear lost flags, account metrics, and
   draw fault events for the completion.  Because the wave itself is a
   pure function of the committed state, and commits happen in a fixed
   order at the barrier, the logical schedule — which stage runs on
   which attempt, which fault events fire — is identical for every
   worker count.  Parallelism changes wall-clock time, nothing else.

   Faults only strike at barriers, so a stage's inputs cannot vanish
   mid-evaluation; the per-completion dice are keyed on
   [(seed, stage, attempt)] (see {!Faults}), so the drawn events do not
   depend on how completions interleave across workers either.

   The scheduler is generic in the stage-output type: the engine
   supplies [execute] (evaluate one stage's interior, reading
   dependencies through the cache) and [rows] (output size, for
   recompute accounting).  [execute] may be called concurrently from
   several domains when a pool is supplied. *)

type metrics = {
  mutable stages_run : int;  (* stage executions, recoveries included *)
  mutable vertices_run : int;  (* one vertex per machine per execution *)
  mutable retries : int;  (* re-executions of a previously completed stage *)
  mutable recomputed_rows : int;  (* rows produced by those re-executions *)
  mutable partitions_lost : int;
  mutable machines_failed : int;
}

(* Distribution of per-attempt stage wall time and output size; always
   on (one observation per stage attempt, far off any inner loop). *)
let stage_seconds_h = Sobs.Hist.hist "exec.stage_seconds"
let stage_rows_h = Sobs.Hist.hist "exec.stage_rows"

let fresh_metrics () =
  {
    stages_run = 0;
    vertices_run = 0;
    retries = 0;
    recomputed_rows = 0;
    partitions_lost = 0;
    machines_failed = 0;
  }

exception Recovery_exhausted of { stage : int; attempts : int }

type 'o outcome = {
  result : 'o;  (* the sink stage's output *)
  attempts : int array;  (* per-stage execution counts *)
  seconds : float array;  (* per-stage wall seconds, attempts summed *)
  metrics : metrics;
}

let run ~machines ?pool ?faults ?(max_attempts = Faults.default_attempts)
    ~execute ~rows (graph : Stage.graph) : 'o outcome =
  let n = Array.length graph.Stage.stages in
  let cache : 'o option array = Array.make n None in
  (* lost.(sid) is empty until a fault strikes sid's cached output *)
  let lost : bool array array = Array.make n [||] in
  let attempts = Array.make n 0 in
  let seconds = Array.make n 0.0 in
  let metrics = fresh_metrics () in
  (* stages with a cached output, in first-cached order — maintained
     incrementally instead of rescanning all [n] slots per completion *)
  let cached_ids = Array.make n 0 in
  let cached_count = ref 0 in
  let intact sid = cache.(sid) <> None && Array.for_all not lost.(sid) in
  let mark_lost sid m =
    if cache.(sid) <> None then begin
      if lost.(sid) = [||] then lost.(sid) <- Array.make machines false;
      if not lost.(sid).(m) then begin
        lost.(sid).(m) <- true;
        metrics.partitions_lost <- metrics.partitions_lost + 1
      end
    end
  in
  let inject sid =
    match faults with
    | None -> ()
    | Some f ->
        List.iter
          (function
            | Faults.Lose_partition { stage; machine } ->
                if Sobs.Trace.enabled () then
                  Sobs.Trace.instant ~pid:Sobs.Trace.pid_exec
                    ~args:
                      [
                        ("stage", Sobs.Trace.Int stage);
                        ("machine", Sobs.Trace.Int machine);
                      ]
                    "fault.lose_partition";
                mark_lost stage machine
            | Faults.Kill_machine m ->
                if Sobs.Trace.enabled () then
                  Sobs.Trace.instant ~pid:Sobs.Trace.pid_exec
                    ~args:[ ("machine", Sobs.Trace.Int m) ]
                    "fault.kill_machine";
                metrics.machines_failed <- metrics.machines_failed + 1;
                for i = 0 to !cached_count - 1 do
                  mark_lost cached_ids.(i) m
                done)
          (Faults.draw f ~stage:sid ~attempt:attempts.(sid) ~cached:cached_ids
             ~cached_count:!cached_count)
  in
  let read dep =
    match cache.(dep) with
    | Some o -> o
    | None -> invalid_arg "Scheduler: dependency executed out of order"
  in
  let pfor count f =
    match pool with
    | Some p -> Sutil.Pool.parallel_for p count f
    | None ->
        for i = 0 to count - 1 do
          f i
        done
  in
  let needed = Array.make n false in
  let rec demand sid =
    if not needed.(sid) then begin
      needed.(sid) <- true;
      List.iter
        (fun (_, dep) -> if not (intact dep) then demand dep)
        graph.Stage.stages.(sid).Stage.deps
    end
  in
  let running = ref true in
  while !running do
    Array.fill needed 0 n false;
    for sid = 0 to n - 1 do
      if cache.(sid) = None then demand sid
    done;
    let wave = ref [] in
    for sid = n - 1 downto 0 do
      if
        needed.(sid)
        && List.for_all
             (fun (_, dep) -> intact dep)
             graph.Stage.stages.(sid).Stage.deps
      then wave := sid :: !wave
    done;
    match !wave with
    | [] -> running := false
    | wave ->
        let wave = Array.of_list wave in
        let k = Array.length wave in
        (* charge attempts in id order before anything executes, so the
           budget error is raised at the same point for every worker
           count *)
        Array.iter
          (fun sid ->
            attempts.(sid) <- attempts.(sid) + 1;
            if attempts.(sid) > max_attempts then
              raise
                (Recovery_exhausted { stage = sid; attempts = attempts.(sid) }))
          wave;
        let outputs = Array.make k None in
        pfor k (fun i ->
            let sid = wave.(i) in
            if Sobs.Trace.enabled () then
              Sobs.Trace.begin_span ~pid:Sobs.Trace.pid_exec
                ~args:
                  [
                    ("stage", Sobs.Trace.Int sid);
                    ("attempt", Sobs.Trace.Int attempts.(sid));
                    ("worker", Sobs.Trace.Int (Sutil.Pool.current_slot ()));
                  ]
                (Printf.sprintf "stage %d" sid);
            let t0 = Unix.gettimeofday () in
            let out = execute graph.Stage.stages.(sid) ~read in
            let dt = Unix.gettimeofday () -. t0 in
            seconds.(sid) <- seconds.(sid) +. dt;
            Sobs.Hist.observe stage_seconds_h dt;
            if Sobs.Trace.enabled () then
              Sobs.Trace.end_span ~pid:Sobs.Trace.pid_exec
                (Printf.sprintf "stage %d" sid);
            outputs.(i) <- Some out);
        (* barrier: commit and draw faults in ascending stage id *)
        for i = 0 to k - 1 do
          let sid = wave.(i) in
          let out =
            match outputs.(i) with
            | Some o -> o
            | None -> invalid_arg "Scheduler: wave task produced no output"
          in
          let recovery = cache.(sid) <> None in
          if not recovery then begin
            cached_ids.(!cached_count) <- sid;
            incr cached_count
          end;
          cache.(sid) <- Some out;
          lost.(sid) <- [||];
          metrics.stages_run <- metrics.stages_run + 1;
          metrics.vertices_run <- metrics.vertices_run + machines;
          Sobs.Hist.observe stage_rows_h (float_of_int (rows out));
          if recovery then begin
            metrics.retries <- metrics.retries + 1;
            metrics.recomputed_rows <- metrics.recomputed_rows + rows out
          end;
          inject sid
        done
  done;
  let result =
    match cache.(graph.Stage.sink) with
    | Some o -> o
    | None -> invalid_arg "Scheduler: sink stage did not complete"
  in
  { result; attempts; seconds; metrics }

(* Replay measured per-stage durations through the same fault-free wave
   schedule with greedy longest-processing-time placement on [workers]
   slots.  Gives the makespan this graph would have on a machine with
   [workers] real cores — the honest figure to report when the host has
   fewer cores than the pool has domains. *)
let modeled_makespan ~workers ~seconds (graph : Stage.graph) =
  let workers = max 1 workers in
  let n = Array.length graph.Stage.stages in
  let finished = Array.make n false in
  let remaining = ref n in
  let total = ref 0.0 in
  while !remaining > 0 do
    let wave = ref [] in
    Array.iter
      (fun (st : Stage.stage) ->
        if
          (not finished.(st.Stage.id))
          && List.for_all (fun (_, dep) -> finished.(dep)) st.Stage.deps
        then wave := st.Stage.id :: !wave)
      graph.Stage.stages;
    let wave =
      List.sort (fun a b -> compare seconds.(b) seconds.(a)) !wave
    in
    if wave = [] then invalid_arg "Scheduler.modeled_makespan: cyclic graph";
    let load = Array.make workers 0.0 in
    List.iter
      (fun sid ->
        let slot = ref 0 in
        for w = 1 to workers - 1 do
          if load.(w) < load.(!slot) then slot := w
        done;
        load.(!slot) <- load.(!slot) +. seconds.(sid);
        finished.(sid) <- true;
        decr remaining)
      wave;
    total := !total +. Array.fold_left max 0.0 load
  done;
  !total
