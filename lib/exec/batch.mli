(** Columnar batches for the vectorized executor: one value array per
    schema column plus an optional selection vector of live physical row
    indices (ascending).  Filters narrow the selection vector without
    touching column data; the other kernels produce dense batches.

    Every kernel preserves — or deterministically defines — the live-row
    order of its inputs, matching what the row-at-a-time engine produced,
    so a stream's row sequence does not depend on how it is chunked into
    batches. *)

type t = {
  schema : Relalg.Schema.t;
  len : int;  (** physical rows in [cols] *)
  cols : Relalg.Value.t array array;
      (** [cols.(c).(i)]: column [c] of physical row [i] *)
  sel : int array option;
      (** live physical indices, ascending; [None] = all rows live *)
}

val schema : t -> Relalg.Schema.t

(** Number of live rows. *)
val live : t -> int

(** Physical index of the [i]-th live row. *)
val at : t -> int -> int

val of_rows : Relalg.Schema.t -> Relalg.Value.t array list -> t

(** Live rows in live order. *)
val to_rows : t -> Relalg.Value.t array list

(** Materialize the selection into dense columns. *)
val dense : t -> t

(** Concatenate live rows in list order into one dense batch. *)
val concat : Relalg.Schema.t -> t list -> t

(** Dense chunks of at most [size] live rows, empty batches dropped.
    Chunking changes only the framing of the row sequence, never the
    sequence itself. *)
val split : size:int -> t -> t list

(** Evaluate a compiled expression at physical row [p]. *)
val eval_at :
  Relalg.Value.t array array -> int -> Relalg.Expr.compiled -> Relalg.Value.t

(** Narrow the selection vector to live rows satisfying the predicate. *)
val filter : Relalg.Expr.compiled -> t -> t

(** One dense output column per compiled item, over the live rows. *)
val project : Relalg.Schema.t -> Relalg.Expr.compiled array -> t -> t

(** Stable sort on (column index, direction) keys — ties keep input
    order, like [List.stable_sort] over rows. *)
val sort : (int * Sphys.Sortorder.dir) list -> t -> t

(** Route live rows by the commutative key hash; one physical-index
    array per destination, in input row order — a selection into the
    batch, no column data copied. *)
val scatter_sel : machines:int -> int array -> t -> int array array

(** One dense batch from (source batch, physical indices) fragments,
    rows in fragment order. *)
val gather : Relalg.Schema.t -> (t * int array) list -> t

(** Streaming aggregation over contiguous groups, carrying state across
    batch boundaries; output rows in group-arrival order. *)
val stream_agg :
  Relalg.Schema.t ->
  key_idx:int array ->
  aggs:Relalg.Agg.t array ->
  cargs:Relalg.Expr.compiled array ->
  t list ->
  t

(** Hash aggregation mirroring [Table.group_by]: output rows in
    first-seen key order. *)
val hash_agg :
  Relalg.Schema.t ->
  key_idx:int array ->
  aggs:Relalg.Agg.t array ->
  cargs:Relalg.Expr.compiled array ->
  t list ->
  t

(** Nested-loop join in the row engine's output order (left order, then
    right order per left row); [`Left_outer] pads unmatched left rows
    with nulls.  The predicate is compiled against [left @ right]. *)
val join : kind:[ `Inner | `Left_outer ] -> Relalg.Expr.compiled -> t -> t -> t
