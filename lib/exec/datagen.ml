open Relalg

(* Deterministic synthetic data generation driven by the catalog.

   Execution runs on a scaled-down copy of each input: row counts are
   capped (the catalog describes 10^8-row files; the simulator exercises
   the same plans on a few thousand rows) and NDVs are scaled so grouping
   still aggregates.  The same file name always yields the same rows. *)

type config = { max_rows : int }

let default = { max_rows = 2_000 }

let scaled_rows config (stats : Catalog.file_stats) =
  min stats.Catalog.rows config.max_rows

let scaled_ndv config (stats : Catalog.file_stats) ndv =
  let rows = scaled_rows config stats in
  let scale =
    float_of_int rows /. float_of_int (max 1 stats.Catalog.rows)
  in
  (* keep small NDVs as they are; compress huge ones proportionally *)
  max 2 (min ndv (max 2 (int_of_float (float_of_int ndv *. scale) + 2)))

let value_for (ty : Schema.coltype) v =
  match ty with
  | Schema.Tint -> Value.Int v
  | Schema.Tfloat -> Value.Float (float_of_int v)
  | Schema.Tstr -> Value.Str (Printf.sprintf "v%d" v)

(* Generation is a pure function of (config, file, schema, stats) — the
   RNG is seeded from the file name alone — so tables are memoized on
   that structural key.  Every consumer (engine extracts, the reference
   evaluator, repeated runs on a reused engine) gets the same physical
   table it would have regenerated, draw for draw; only the splitmix64
   work is saved.  Guarded by a mutex: engine stages extract from pool
   domains.  The memo is bounded — property-based tests stream thousands
   of one-shot catalogs through here — by resetting when it outgrows
   [memo_cap]. *)
let memo :
    (int * string * Schema.t * Catalog.file_stats, Table.t) Hashtbl.t =
  Hashtbl.create 64

let memo_mu = Mutex.create ()
let memo_cap = 512

let generate config (stats : Catalog.file_stats) ~(file : string)
    ~(schema : Schema.t) : Table.t =
  let rows = scaled_rows config stats in
  let rng = Sutil.Rng.create (Hashtbl.hash file) in
  let gen_col (c : Schema.column) =
    let ndv = scaled_ndv config stats (Catalog.col_ndv stats c.Schema.name) in
    fun () -> value_for c.Schema.ty (Sutil.Rng.int rng ndv)
  in
  let gens = List.map gen_col schema in
  let data =
    List.init rows (fun _ -> Array.of_list (List.map (fun g -> g ()) gens))
  in
  Table.make schema data

(* The full (scaled) table of a catalog file, restricted to [schema]'s
   columns. *)
let table ?(config = default) (catalog : Catalog.t) ~(file : string)
    ~(schema : Schema.t) : Table.t =
  match Catalog.find catalog file with
  | None -> Table.empty schema
  | Some stats ->
      let key = (config.max_rows, file, schema, stats) in
      Mutex.protect memo_mu (fun () ->
          match Hashtbl.find_opt memo key with
          | Some t -> t
          | None ->
              let t = generate config stats ~file ~schema in
              if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
              Hashtbl.add memo key t;
              t)
