(* Aggregate functions.  AVG is decomposed into SUM/COUNT by the binder so
   that every aggregate here is trivially partitionable into a local
   pre-aggregation and a global combination step -- the property the
   two-stage (local/global) aggregation rewrite relies on. *)

type func = Sum | Count | Min | Max

type t = { func : func; arg : Expr.t; output : string }

let make func arg output = { func; arg; output }

(* State of one running aggregate. *)
type state = { mutable acc : Value.t; mutable count : int }

let init () = { acc = Value.Null; count = 0 }

(* Fold one already-evaluated argument value into the state; callers that
   precompiled [a.arg] (the batch executor, [Table.group_by]) evaluate it
   themselves and skip the per-row schema walk of [step]. *)
let step_value a st v =
  st.count <- st.count + 1;
  match a.func with
  | Sum -> st.acc <- Value.add st.acc v
  | Count -> ()
  | Min -> st.acc <- (if st.count = 1 then v else Value.min st.acc v)
  | Max -> st.acc <- (if st.count = 1 then v else Value.max st.acc v)

let step a st schema row = step_value a st (Expr.eval schema row a.arg)

let finish a st =
  match a.func with
  | Count -> Value.Int st.count
  | Sum -> (match st.acc with Value.Null -> Value.Int 0 | v -> v)
  | Min | Max -> st.acc

(* Local/global decomposition: the local step emits a partial column named
   [output]; the global step combines partials.  COUNT combines with SUM. *)
let global_combinator a =
  let arg = Expr.col a.output in
  match a.func with
  | Sum | Count -> { func = Sum; arg; output = a.output }
  | Min -> { func = Min; arg; output = a.output }
  | Max -> { func = Max; arg; output = a.output }

let func_name = function
  | Sum -> "Sum"
  | Count -> "Count"
  | Min -> "Min"
  | Max -> "Max"

let output_type schema a =
  match a.func with
  | Count -> Schema.Tint
  | Sum | Min | Max -> Expr.infer_type schema a.arg

let pp ppf a =
  Fmt.pf ppf "%s(%a) AS %s" (func_name a.func) Expr.pp a.arg a.output

let to_string a = Fmt.str "%a" pp a
