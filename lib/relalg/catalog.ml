(* File catalog: the statistics the optimizer's cardinality estimation and
   the synthetic data generator both consume.  Each registered input file
   carries a row count, an average row width and per-column
   number-of-distinct-values (NDV) statistics. *)

type col_stats = { col : Schema.column; ndv : int }

type file_stats = {
  path : string;
  rows : int;
  row_bytes : int;
  columns : col_stats list;
}

type t = {
  files : (string, file_stats) Hashtbl.t;
  mutable version : int;
      (* statistics epoch: bumped whenever an existing file's statistics
         change (or explicitly via [bump_version]), so long-lived plan
         caches keyed on it are invalidated exactly when cached plans may
         have gone stale.  Registering a *new* file leaves the version
         alone: plans optimized before the file existed cannot read it. *)
}

let create () = { files = Hashtbl.create 16; version = 0 }

let version t = t.version

let bump_version t = t.version <- t.version + 1

let register t stats =
  (match Hashtbl.find_opt t.files stats.path with
  | Some old when old <> stats -> bump_version t
  | _ -> ());
  Hashtbl.replace t.files stats.path stats

let find t path = Hashtbl.find_opt t.files path

let file_schema stats = List.map (fun c -> c.col) stats.columns

let col_ndv stats name =
  match
    List.find_opt (fun c -> c.col.Schema.name = name) stats.columns
  with
  | Some c -> c.ndv
  | None -> max 1 (stats.rows / 10)

(* NDV of a combined key: independence assumption capped by row count. *)
let colset_ndv stats cols =
  let product =
    List.fold_left (fun acc c -> acc * col_ndv stats c) 1 (Colset.to_list cols)
  in
  max 1 (min stats.rows product)

let mk_file ~path ~rows ~row_bytes cols =
  {
    path;
    rows;
    row_bytes;
    columns =
      List.map (fun (name, ty, ndv) -> { col = Schema.column name ty; ndv }) cols;
  }

(* Catalog used throughout the paper-reproduction experiments: the
   [test.log]/[test2.log] inputs of scripts S1-S4.  NDVs are chosen so that
   a single column (e.g. B) still provides enough distinct values to keep
   all cluster machines busy -- the regime where the paper's plan with
   repartitioning on {B} wins globally. *)
let default () =
  let t = create () in
  let cols =
    [
      ("A", Schema.Tint, 60);
      ("B", Schema.Tint, 1000);
      ("C", Schema.Tint, 60);
      ("D", Schema.Tint, 1_000_000);
    ]
  in
  register t (mk_file ~path:"test.log" ~rows:100_000_000 ~row_bytes:100 cols);
  register t (mk_file ~path:"test2.log" ~rows:80_000_000 ~row_bytes:100 cols);
  t

(* Ensure a file exists in the catalog, synthesizing default statistics for
   files mentioned by generated scripts. *)
let ensure t ~path ~schema =
  match find t path with
  | Some stats -> stats
  | None ->
      let rows = 50_000_000 in
      let stats =
        {
          path;
          rows;
          row_bytes = 20 * max 1 (List.length schema);
          columns =
            List.map
              (fun (col : Schema.column) -> { col; ndv = 500 }) schema;
        }
      in
      register t stats;
      stats
