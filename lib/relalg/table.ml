(* In-memory relations used by the simulated execution engine and the
   reference (naive) evaluator that tests compare against. *)

type t = { schema : Schema.t; rows : Value.t array list }

let make schema rows = { schema; rows }
let empty schema = { schema; rows = [] }
let cardinality t = List.length t.rows

let project t exprs_names =
  let schema' =
    List.map
      (fun (e, name) -> Schema.column name (Expr.infer_type t.schema e))
      exprs_names
  in
  let compiled = List.map (fun (e, _) -> Expr.compile t.schema e) exprs_names in
  let rows' =
    List.map
      (fun row -> Array.of_list (List.map (Expr.ceval row) compiled))
      t.rows
  in
  { schema = schema'; rows = rows' }

let filter t pred =
  let c = Expr.compile t.schema pred in
  { t with rows = List.filter (fun r -> Expr.ceval_pred r c) t.rows }

(* Reference group-by used to validate plan execution: hash rows by key
   tuple, run aggregate states per bucket. *)
let group_by t ~keys ~aggs =
  let key_idx = List.map (fun k -> Schema.index k t.schema) keys in
  (* aggregate arguments compiled once, not schema-walked per row *)
  let stepping =
    List.map (fun a -> (a, Expr.compile t.schema a.Agg.arg)) aggs
  in
  let tbl : (Value.t list, Value.t array * Agg.state list) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) key_idx in
      let states =
        match Hashtbl.find_opt tbl key with
        | Some (_, states) -> states
        | None ->
            let states = List.map (fun _ -> Agg.init ()) aggs in
            Hashtbl.add tbl key (row, states);
            order := key :: !order;
            states
      in
      List.iter2
        (fun (a, carg) st -> Agg.step_value a st (Expr.ceval row carg))
        stepping states)
    t.rows;
  let key_schema =
    List.map
      (fun k ->
        match Schema.find k t.schema with
        | Some c -> c
        | None -> Schema.column k Schema.Tint)
      keys
  in
  let agg_schema =
    List.map (fun a -> Schema.column a.Agg.output (Agg.output_type t.schema a)) aggs
  in
  let rows =
    List.rev_map
      (fun key ->
        let _, states = Hashtbl.find tbl key in
        Array.of_list (key @ List.map2 Agg.finish aggs states))
      !order
  in
  { schema = key_schema @ agg_schema; rows }

(* Positional concatenation join on an arbitrary predicate over the
   combined schema; [`Left_outer] pads unmatched left rows with nulls. *)
let join ?(kind = `Inner) a b pred =
  let schema = a.schema @ b.schema in
  let cpred = Expr.compile schema pred in
  let pad = Array.make (Schema.arity b.schema) Value.Null in
  let rows =
    List.concat_map
      (fun ra ->
        let matches =
          List.filter_map
            (fun rb ->
              let row = Array.append ra rb in
              if Expr.ceval_pred row cpred then Some row else None)
            b.rows
        in
        match (matches, kind) with
        | [], `Left_outer -> [ Array.append ra pad ]
        | _ -> matches)
      a.rows
  in
  { schema; rows }

let union_all a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Table.union_all: schema mismatch";
  { schema = a.schema; rows = a.rows @ b.rows }

(* Multiset-equality up to row order, for comparing plan outputs. *)
let same_contents a b =
  Schema.names a.schema = Schema.names b.schema
  &&
  let norm t =
    List.sort (fun x y -> Stdlib.compare (Array.to_list x) (Array.to_list y))
      t.rows
  in
  List.equal
    (fun x y -> Array.for_all2 Value.equal x y)
    (norm a) (norm b)

let pp ppf t =
  Fmt.pf ppf "%a@." Schema.pp t.schema;
  List.iter
    (fun row ->
      Fmt.pf ppf "%s@."
        (String.concat " | "
           (Array.to_list (Array.map Value.to_string row))))
    t.rows

let to_string t = Fmt.str "%a" pp t
