type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

(* Total order: Null < Int < Float < Str; ints and floats compare
   numerically against each other so that Sum results stay comparable. *)
let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Int.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Float x, Float y -> Float.compare x y
  | (Int _ | Float _), Str _ -> -1
  | Str _, (Int _ | Float _) -> 1
  | Str x, Str y -> String.compare x y

(* Same equivalence as [compare _ _ = 0] — the common same-constructor
   cases short-circuit past the ordering dispatch. *)
let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Null, Null -> true
  | Float x, Float y -> Float.equal x y
  | a, b -> compare a b = 0

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash x
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s

let is_truthy = function
  | Null -> false
  | Int x -> x <> 0
  | Float x -> x <> 0.0
  | Str s -> s <> ""

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Null -> 0.0
  | Str _ -> invalid_arg "Value.to_float: string value"

let add a b =
  match (a, b) with
  | Null, x | x, Null -> x
  | Int x, Int y -> Int (x + y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a +. to_float b)
  | Str x, Str y -> Str (x ^ y)
  | _ -> invalid_arg "Value.add: incompatible values"

let sub a b =
  match (a, b) with
  | Int x, Int y -> Int (x - y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a -. to_float b)
  | _ -> invalid_arg "Value.sub: non-numeric values"

let mul a b =
  match (a, b) with
  | Int x, Int y -> Int (x * y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a *. to_float b)
  | _ -> invalid_arg "Value.mul: non-numeric values"

let div a b =
  match (a, b) with
  | _, Int 0 -> Null
  | _, Float 0.0 -> Null
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a /. to_float b)
  | _ -> invalid_arg "Value.div: non-numeric values"

let modulo a b =
  match (a, b) with
  | _, Int 0 -> Null
  | Int x, Int y -> Int (x mod y)
  | _ -> invalid_arg "Value.modulo: non-integer values"

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Int x -> Fmt.int ppf x
  | Float x -> Fmt.float ppf x
  | Str s -> Fmt.pf ppf "%S" s

let to_string v = Fmt.str "%a" pp v
