type binop = Add | Sub | Mul | Div | Mod

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Lit of Value.t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t

let col c = Col c
let int_lit i = Lit (Value.Int i)
let str_lit s = Lit (Value.Str s)

let rec columns = function
  | Col c -> Colset.singleton c
  | Lit _ -> Colset.empty
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      Colset.union (columns a) (columns b)
  | Not a -> columns a

(* Rename every column reference through [f]; used when projecting through
   aliases. *)
let rec rename f = function
  | Col c -> Col (f c)
  | Lit v -> Lit v
  | Binop (op, a, b) -> Binop (op, rename f a, rename f b)
  | Cmp (op, a, b) -> Cmp (op, rename f a, rename f b)
  | And (a, b) -> And (rename f a, rename f b)
  | Or (a, b) -> Or (rename f a, rename f b)
  | Not a -> Not (rename f a)

let eval_binop op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b
  | Mod -> Value.modulo a b

let eval_cmp op a b =
  let c = Value.compare a b in
  let r =
    match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0
  in
  Value.Int (if r then 1 else 0)

(* Evaluate against a row laid out according to [schema]. *)
let rec eval schema (row : Value.t array) = function
  | Col c -> row.(Schema.index c schema)
  | Lit v -> v
  | Binop (op, a, b) -> eval_binop op (eval schema row a) (eval schema row b)
  | Cmp (op, a, b) -> eval_cmp op (eval schema row a) (eval schema row b)
  | And (a, b) ->
      if Value.is_truthy (eval schema row a) then eval schema row b
      else Value.Int 0
  | Or (a, b) ->
      if Value.is_truthy (eval schema row a) then Value.Int 1
      else eval schema row b
  | Not a -> Value.Int (if Value.is_truthy (eval schema row a) then 0 else 1)

let eval_pred schema row e = Value.is_truthy (eval schema row e)

(* Compiled form: every column reference is resolved to its row-layout
   position once, so per-row evaluation does no schema walking (no
   per-row string comparisons).  The constructors are public so columnar
   interpreters (the batch executor) can reuse the same compiled tree
   with their own data access pattern. *)
type compiled =
  | CCol of int
  | CLit of Value.t
  | CBinop of binop * compiled * compiled
  | CCmp of cmpop * compiled * compiled
  | CAnd of compiled * compiled
  | COr of compiled * compiled
  | CNot of compiled

let rec compile schema = function
  | Col c -> CCol (Schema.index c schema)
  | Lit v -> CLit v
  | Binop (op, a, b) -> CBinop (op, compile schema a, compile schema b)
  | Cmp (op, a, b) -> CCmp (op, compile schema a, compile schema b)
  | And (a, b) -> CAnd (compile schema a, compile schema b)
  | Or (a, b) -> COr (compile schema a, compile schema b)
  | Not a -> CNot (compile schema a)

(* Evaluate a compiled expression against one row.  Mirrors [eval]
   exactly (same short-circuiting, same Value semantics), minus the
   per-reference [Schema.index] lookup. *)
let rec ceval (row : Value.t array) = function
  | CCol i -> row.(i)
  | CLit v -> v
  | CBinop (op, a, b) -> eval_binop op (ceval row a) (ceval row b)
  | CCmp (op, a, b) -> eval_cmp op (ceval row a) (ceval row b)
  | CAnd (a, b) ->
      if Value.is_truthy (ceval row a) then ceval row b else Value.Int 0
  | COr (a, b) ->
      if Value.is_truthy (ceval row a) then Value.Int 1 else ceval row b
  | CNot a -> Value.Int (if Value.is_truthy (ceval row a) then 0 else 1)

let ceval_pred row e = Value.is_truthy (ceval row e)

let rec infer_type schema = function
  | Col c -> (
      match Schema.find c schema with
      | Some col -> col.Schema.ty
      | None -> Schema.Tint)
  | Lit (Value.Int _) -> Schema.Tint
  | Lit (Value.Float _) -> Schema.Tfloat
  | Lit (Value.Str _) -> Schema.Tstr
  | Lit Value.Null -> Schema.Tint
  | Binop (_, a, b) -> (
      match (infer_type schema a, infer_type schema b) with
      | Schema.Tfloat, _ | _, Schema.Tfloat -> Schema.Tfloat
      | Schema.Tstr, _ | _, Schema.Tstr -> Schema.Tstr
      | Schema.Tint, Schema.Tint -> Schema.Tint)
  | Cmp _ | And _ | Or _ | Not _ -> Schema.Tint

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Mod -> "%")

let pp_cmpop ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let rec pp ppf = function
  | Col c -> Fmt.string ppf c
  | Lit v -> Value.pp ppf v
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a pp_binop op pp b
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a pp_cmpop op pp b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(NOT %a)" pp a

let to_string e = Fmt.str "%a" pp e

(* Conjunction of equality comparisons "a.x = b.y" is the join-predicate
   shape the optimizer understands; extract those pairs when possible. *)
let rec equi_pairs = function
  | Cmp (Eq, Col a, Col b) -> Some [ (a, b) ]
  | And (l, r) -> (
      match (equi_pairs l, equi_pairs r) with
      | Some xs, Some ys -> Some (xs @ ys)
      | _ -> None)
  | _ -> None
