(** Scalar expressions and predicates over named columns. *)

type binop = Add | Sub | Mul | Div | Mod

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Lit of Value.t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t

val col : string -> t
val int_lit : int -> t
val str_lit : string -> t

(** Columns referenced by the expression. *)
val columns : t -> Colset.t

(** Rename every column reference through the given function. *)
val rename : (string -> string) -> t -> t

(** Evaluate against a row laid out per the schema.
    Raises [Not_found] when a referenced column is missing. *)
val eval : Schema.t -> Value.t array -> t -> Value.t

(** Evaluate as a predicate (SQL-ish truthiness). *)
val eval_pred : Schema.t -> Value.t array -> t -> bool

(** Compiled expression: column references resolved to row-layout
    positions once, so repeated evaluation does no schema walking.  The
    constructors are public so columnar interpreters can walk the same
    tree with their own data access pattern; [ceval]/[ceval_pred] mirror
    [eval]/[eval_pred] exactly. *)
type compiled =
  | CCol of int
  | CLit of Value.t
  | CBinop of binop * compiled * compiled
  | CCmp of cmpop * compiled * compiled
  | CAnd of compiled * compiled
  | COr of compiled * compiled
  | CNot of compiled

(** Resolve column references against the schema.
    Raises [Not_found] when a referenced column is missing. *)
val compile : Schema.t -> t -> compiled

val ceval : Value.t array -> compiled -> Value.t
val ceval_pred : Value.t array -> compiled -> bool
val eval_binop : binop -> Value.t -> Value.t -> Value.t
val eval_cmp : cmpop -> Value.t -> Value.t -> Value.t

val infer_type : Schema.t -> t -> Schema.coltype

(** Extract the [(left_col, right_col)] pairs of a pure conjunctive
    equality predicate; [None] when the predicate has any other shape. *)
val equi_pairs : t -> (string * string) list option

val pp_binop : binop Fmt.t
val pp_cmpop : cmpop Fmt.t
val pp : t Fmt.t
val to_string : t -> string
