(** Aggregate functions (SUM / COUNT / MIN / MAX) with an explicit
    local/global decomposition used by the two-stage aggregation rewrite.
    AVG is decomposed into SUM and COUNT by the binder. *)

type func = Sum | Count | Min | Max

type t = { func : func; arg : Expr.t; output : string }

val make : func -> Expr.t -> string -> t

(** Running-aggregate state. *)
type state

val init : unit -> state
val step : t -> state -> Schema.t -> Value.t array -> unit

(** Fold an already-evaluated argument value into the state — for callers
    that precompiled [arg] and evaluate it themselves. *)
val step_value : t -> state -> Value.t -> unit

val finish : t -> state -> Value.t

(** Aggregate that combines local partial results named [a.output] into the
    final value of the same name (e.g. global SUM over local COUNTs). *)
val global_combinator : t -> t

val func_name : func -> string
val output_type : Schema.t -> t -> Schema.coltype
val pp : t Fmt.t
val to_string : t -> string
