(** File catalog: per-file row counts, widths and per-column NDV statistics
    feeding both cardinality estimation and synthetic data generation. *)

type col_stats = { col : Schema.column; ndv : int }

type file_stats = {
  path : string;
  rows : int;
  row_bytes : int;
  columns : col_stats list;
}

type t

val create : unit -> t

(** Register a file's statistics.  Re-registering an existing path with
    {e different} statistics bumps the catalog {!version} (cached plans
    for scripts reading it are stale); registering a brand-new path does
    not (existing plans cannot reference it). *)
val register : t -> file_stats -> unit

(** Statistics epoch of the catalog, starting at 0.  Long-lived plan
    caches (the serve engine) key cached plans on it: a bump invalidates
    every plan optimized under an older version. *)
val version : t -> int

(** Explicitly start a new statistics epoch (e.g. the serve protocol's
    [#catalog-bump] directive). *)
val bump_version : t -> unit
val find : t -> string -> file_stats option

(** Schema induced by the catalog entry. *)
val file_schema : file_stats -> Schema.t

(** NDV of a column; a coarse default when the column is unknown. *)
val col_ndv : file_stats -> string -> int

(** NDV of a combined key under the independence assumption, capped by the
    row count. *)
val colset_ndv : file_stats -> Colset.t -> int

val mk_file :
  path:string ->
  rows:int ->
  row_bytes:int ->
  (string * Schema.coltype * int) list ->
  file_stats

(** Catalog pre-populated with the statistics used by the paper-script
    experiments ([test.log], [test2.log]). *)
val default : unit -> t

(** Look up a file, registering synthetic default statistics when absent. *)
val ensure : t -> path:string -> schema:Schema.t -> file_stats
